package mobiquery_test

import (
	"context"
	"fmt"
	"time"

	"mobiquery"
)

// ExampleOpen stands a service up over the default sensor field and shows
// that configuration problems come back as errors, not panics.
func ExampleOpen() {
	svc, err := mobiquery.Open(context.Background(), mobiquery.DefaultNetworkConfig())
	if err != nil {
		fmt.Println("open failed:", err)
		return
	}
	defer svc.Close()
	fmt.Printf("service over %d nodes\n", svc.NodeCount())

	_, err = mobiquery.Open(context.Background(), mobiquery.NetworkConfig{Nodes: -1})
	fmt.Println("invalid config is an error:", err != nil)
	// Output:
	// service over 200 nodes
	// invalid config is an error: true
}

// ExampleService_Subscribe streams three query periods to a user standing
// in the middle of the field: one aggregate per period, each evaluated
// under the spec's freshness window and deadline.
func ExampleService_Subscribe() {
	ctx := context.Background()
	svc, err := mobiquery.Open(ctx, mobiquery.DefaultNetworkConfig(),
		mobiquery.WithAlignedSampling())
	if err != nil {
		fmt.Println("open failed:", err)
		return
	}
	defer svc.Close()

	spec := mobiquery.QuerySpec{
		Radius:    150,             // meters around the user
		Period:    2 * time.Second, // one result per period
		Freshness: time.Second,     // readings must be this fresh
	}
	sub, err := svc.Subscribe(ctx, spec, mobiquery.StaticPosition(mobiquery.Pt(225, 225)))
	if err != nil {
		fmt.Println("subscribe failed:", err)
		return
	}

	// The default clock is manual, so the example is exactly
	// reproducible; WithRealTime ties it to the wall clock instead.
	for i := 0; i < 3; i++ {
		svc.Advance(2 * time.Second)
	}
	sub.Close()
	for r := range sub.Results() {
		status := "late"
		if r.OnTime {
			status = "on time"
		}
		fmt.Printf("k=%d value=%.0f %s\n", r.K, r.Value, status)
	}
	// Output:
	// k=1 value=20 on time
	// k=2 value=20 on time
	// k=3 value=20 on time
}
