package mobiquery

import (
	"runtime"
	"strconv"
	"time"

	"mobiquery/internal/core"
	"mobiquery/internal/obs"
)

// MetricsRegistry is the service's metrics registry (see Service.Metrics):
// internal/obs.Registry re-exported so front-ends outside the module
// internals (internal/server, custom embedders) can register their own
// families into the same /metrics exposition.
type MetricsRegistry = obs.Registry

// PeriodSpan is one traced subscription period's lifecycle record (see
// Subscription.TraceSpans): stage timestamps from armed through
// delivered/dropped, the serve class, and the outcome.
type PeriodSpan = obs.PeriodSpan

// TraceID is a caller-minted trace context identifying one subscription's
// causal trace across tiers (QuerySpec.Trace); zero means untraced.
type TraceID = obs.TraceID

// SpanID identifies one period's span within a trace; see MintSpanID.
type SpanID = obs.SpanID

// MintSpanID derives the deterministic span id for period k of a trace —
// both tiers (and offline validators) recompute it rather than carry it.
func MintSpanID(t TraceID, k int) SpanID { return obs.MintSpanID(t, k) }

// Metrics returns the service's metrics registry. Every Service carries
// one; render it with WritePrometheus (the server's GET /metrics does).
// The registry is safe for concurrent use, and additional families may be
// registered into it at any time.
func (s *Service) Metrics() *MetricsRegistry { return s.obs.reg }

// svcObs is the service's instrumentation: every hot-path metric is
// registered once at Open, so the record paths are bare atomic updates —
// Advance at one million idle subscribers stays 0-alloc with all of this
// enabled (bench-idle-1m is the proof).
type svcObs struct {
	reg *obs.Registry

	// Advance stage timings and tick counters (recorded live in Advance).
	ticks        *obs.Counter
	idleTicks    *obs.Counter
	stagePop     *obs.Histogram
	stageEval    *obs.Histogram
	stageFlush   *obs.Histogram
	stageDeliver *obs.Histogram
	popBatch     *obs.Histogram
	mergeDepth   *obs.Histogram

	// Per-serve-class evaluation ledger (recorded live in collectDue). The
	// classes partition evaluated periods: their counters sum to
	// delivered + dropped, which the loopback reconciliation test pins.
	classCount [obs.NumClasses]*obs.Counter
	classEval  [obs.NumClasses]*obs.Histogram

	// scratch is the reused ServiceStats snapshot behind the OnScrape
	// sampler (StatsInto keeps its StripeLens capacity), guarded by the
	// registry lock all OnScrape hooks run under.
	scratch ServiceStats
}

// obsMaxStage bounds the stage-latency histograms: anything past ~64 s of
// wall time in one stage lands in the +Inf bucket.
const obsMaxStage = int64(64 * time.Second)

// newSvcObs registers the service's metric families and the scrape-time
// ledger sampler. Called once from Open, after the engine exists.
func newSvcObs(s *Service) *svcObs {
	reg := obs.NewRegistry()
	o := &svcObs{reg: reg}

	o.ticks = reg.Counter("mobiquery_advance_ticks_total", "",
		"Advance calls (clock steps), idle or not")
	o.idleTicks = reg.Counter("mobiquery_advance_idle_ticks_total", "",
		"Advance calls on which no period was due")
	stage := func(name string) *obs.Histogram {
		return reg.Histogram("mobiquery_advance_stage_seconds", `stage="`+name+`"`,
			"wall time per Advance stage: pop (due-batch collection), evaluate (fan-out), flush (schedule re-arms), deliver (k-way merge + channel sends)",
			obsMaxStage, 1e-9)
	}
	o.stagePop = stage("pop")
	o.stageEval = stage("evaluate")
	o.stageFlush = stage("flush")
	o.stageDeliver = stage("deliver")
	o.popBatch = reg.Histogram("mobiquery_advance_pop_batch", "",
		"subscriptions popped due per non-empty Advance step", 1<<21, 1)
	o.mergeDepth = reg.Histogram("mobiquery_advance_merge_depth", "",
		"scheduler stripes contributing to each non-empty PopDue (k of the k-way merge)", 64, 1)

	for c := obs.Class(0); c < obs.NumClasses; c++ {
		lbl := `class="` + c.String() + `"`
		o.classCount[c] = reg.Counter("mobiquery_periods_evaluated_total", lbl,
			"periods evaluated by serve class; classes partition, so the sum equals delivered + dropped")
		o.classEval[c] = reg.Histogram("mobiquery_evaluate_seconds", lbl,
			"per-period engine evaluation latency by serve class", obsMaxStage, 1e-9)
	}

	// The delivery ledger and scheduler shape are sampled just in time for
	// each scrape from the same StatsInto snapshot /v1/stats is served
	// from, so the two surfaces always reconcile exactly.
	nowG := reg.Gauge("mobiquery_virtual_time_ns", "", "service virtual clock, nanoseconds")
	nodesG := reg.Gauge("mobiquery_nodes", "", "sensor nodes in the field")
	subsG := reg.Gauge("mobiquery_subscribers", "", "live subscriptions")
	drainG := reg.Gauge("mobiquery_draining", "", "1 while the service is draining")
	opened := reg.Counter("mobiquery_subscriptions_opened_total", "", "subscriptions opened over the service lifetime")
	closed := reg.Counter("mobiquery_subscriptions_closed_total", "", "subscriptions closed over the service lifetime")
	delivered := reg.Counter("mobiquery_results_delivered_total", "", "results handed to subscriber channels")
	dropped := reg.Counter("mobiquery_results_dropped_total", "", "results discarded against full subscriber buffers")
	late := reg.Counter("mobiquery_results_late_total", "", "results delivered past their deadline slack")
	pyrClassesG := reg.Gauge("mobiquery_pyramid_classes", "", "aggregate-pyramid boundary classes instantiated")
	pyrServes := reg.Counter("mobiquery_pyramid_serves_total", "", "periods answered from the aggregate tile pyramid")
	pyrBuilds := reg.Counter("mobiquery_pyramid_builds_total", "", "pyramid epoch ingests")
	stripesG := reg.Gauge("mobiquery_sched_stripes", "", "due-period scheduler stripe count")
	schedLenG := reg.Gauge("mobiquery_sched_entries", "", "armed schedule entries (one per live temporal query)")
	stripeG := make([]*obs.Gauge, s.engine.ScheduleStats().Stripes)
	for i := range stripeG {
		stripeG[i] = reg.Gauge("mobiquery_sched_stripe_entries",
			`stripe="`+strconv.Itoa(i)+`"`, "armed schedule entries per stripe (balance under load)")
	}

	// Go runtime self-metrics and the span-firehose ledger ride the same
	// scrape-time sampler: sampled just in time for each scrape, costing
	// the running service nothing between scrapes.
	heapG := reg.Gauge("mobiquery_go_heap_inuse_bytes", "", "heap bytes in in-use spans (runtime MemStats HeapInuse)")
	gcPause := reg.Counter("mobiquery_go_gc_pause_ns_total", "", "cumulative GC stop-the-world pause, nanoseconds")
	goroutinesG := reg.Gauge("mobiquery_go_goroutines", "", "live goroutines")
	gomaxprocsG := reg.Gauge("mobiquery_go_gomaxprocs", "", "effective GOMAXPROCS")
	buildInfo := reg.Gauge("mobiquery_build_info",
		`go_version="`+runtime.Version()+`",module="mobiquery"`,
		"constant 1, labeled with build metadata")
	buildInfo.Set(1)
	spansPub := reg.Counter("mobiquery_trace_spans_published_total", "",
		"period spans published to the service span firehose")
	spansDrop := reg.Counter("mobiquery_trace_spans_dropped_total", "",
		"firehose spans overwritten before any reader snapshotted them")

	var ms runtime.MemStats
	reg.OnScrape(func() {
		runtime.ReadMemStats(&ms)
		heapG.Set(int64(ms.HeapInuse))
		gcPause.Set(ms.PauseTotalNs)
		goroutinesG.Set(int64(runtime.NumGoroutine()))
		gomaxprocsG.Set(int64(runtime.GOMAXPROCS(0)))
		pub, drop := s.spans.Counts()
		spansPub.Set(pub)
		spansDrop.Set(drop)
	})

	reg.OnScrape(func() {
		st := &o.scratch
		s.StatsInto(st)
		nowG.Set(int64(st.Now))
		nodesG.Set(int64(st.Nodes))
		subsG.Set(int64(st.Subscribers))
		if st.Draining {
			drainG.Set(1)
		} else {
			drainG.Set(0)
		}
		opened.Set(st.Opened)
		closed.Set(st.Closed)
		delivered.Set(st.Delivered)
		dropped.Set(st.Dropped)
		late.Set(st.Late)
		pyrClassesG.Set(int64(st.PyramidClasses))
		pyrServes.Set(st.PyramidServes)
		pyrBuilds.Set(st.PyramidBuilds)
		stripesG.Set(int64(st.SchedStripes))
		schedLenG.Set(int64(st.SchedLen))
		for i, n := range st.SchedStripeLens {
			stripeG[i].Set(int64(n))
		}
	})
	return o
}

// StatsInto is Stats writing into a caller-owned snapshot, reusing its
// SchedStripeLens capacity — the allocation-free form for callers that
// snapshot repeatedly (the metrics scrape sampler, the /v1/stats handler).
// Everything else about the snapshot matches Stats exactly.
func (s *Service) StatsInto(st *ServiceStats) {
	s.mu.RLock()
	st.Now = s.now
	st.Subscribers = len(s.subs)
	st.Draining = s.draining
	pt, classes := s.pyramidTotalsLocked()
	st.PyramidClasses = classes
	st.PyramidServes = pt.Served
	st.PyramidBuilds = pt.Builds
	s.mu.RUnlock()
	st.Nodes = s.engine.NodeCount()
	st.Opened = s.totOpened.Load()
	st.Closed = s.totClosed.Load()
	st.Delivered = s.totDelivered.Load()
	st.Dropped = s.totDropped.Load()
	st.Late = s.totLate.Load()
	var ss core.ScheduleStats
	ss.StripeLens = st.SchedStripeLens[:0]
	s.engine.ScheduleStatsInto(&ss)
	st.SchedStripes = ss.Stripes
	st.SchedLen = ss.Len
	st.SchedStripeLens = ss.StripeLens
	st.SchedMergeDepth = ss.LastMergeDepth
}
