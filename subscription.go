package mobiquery

import (
	"context"
	"fmt"
	"math/rand"
	"sync"
	"time"

	"mobiquery/internal/core"
	"mobiquery/internal/corridor"
	"mobiquery/internal/geom"
	"mobiquery/internal/mobility"
	"mobiquery/internal/obs"
	"mobiquery/internal/prefetch"
	"mobiquery/internal/pyramid"
)

// Strategy selects how a subscription prefetches sensor data along the
// user's predicted motion (QuerySpec.Strategy). The zero value is on-demand
// sampling, exactly the behavior of a spec without a strategy.
type Strategy = prefetch.Strategy

// OnDemandStrategy samples the field as each period is collected — no
// prediction, no prefetching. The zero Strategy.
func OnDemandStrategy() Strategy { return Strategy{} }

// JITStrategy prefetches just in time (the paper's contribution): each
// period's readings are staged at the predicted pickup point by dispatching
// its chain at the latest safe moment (equation 10), holding per-user
// storage at the equation-12 constant.
func JITStrategy() Strategy { return Strategy{Kind: prefetch.JIT} }

// GreedyStrategy prefetches eagerly, keeping chains dispatched `lookahead`
// periods ahead (equation 11 storage); readings are captured when the
// freshness window opens and held until their boundary. lookahead 0 selects
// the smallest window that still meets every equation-10 deadline —
// a positive lookahead below that minimum can never stage a period on
// time, leaving the subscription in permanent on-demand fallback with
// Warmup set (see Strategy.Lookahead).
func GreedyStrategy(lookahead int) Strategy {
	return Strategy{Kind: prefetch.Greedy, Lookahead: lookahead}
}

// ErrorModel bounds the location error of a subscription's predicted
// positions: a fixed Base (meters) plus Growth (meters per second) of
// prediction age. The corridor inflates every predicted query circle by
// the bound; an actual position escaping it is a mispredict.
type ErrorModel = corridor.ErrorModel

// GPSErrorModel returns the ErrorModel covering a GPS predictor with the
// given per-reading error radius, re-profiling threshold (0 selects the
// predictor default), maximum user speed, and sampling period — the safe
// corridor inflation for subscriptions driven by GPSPredictedMotion.
func GPSErrorModel(err, threshold, maxSpeed float64, sampling time.Duration) ErrorModel {
	return corridor.GPSErrorModel(err, threshold, maxSpeed, sampling)
}

// CorridorSpec configures spatial corridor prefetching (QuerySpec.Corridor):
// the service sweeps the subscription's predicted query area over the next
// Lookahead period boundaries into an error-inflated corridor of spatial-
// index cells and stages per-boundary node snapshots ahead of each
// boundary, so staged periods are evaluated from warm, contiguous buffers
// instead of cold index scans. Results are bit-identical either way — a
// snapshot is served only when it provably covers the user's actual query
// circle on an unchanged node index; anything else (including a mispredict,
// which also forces an immediate re-plan from ground truth) falls back to
// the cold scan.
type CorridorSpec struct {
	// Lookahead is how many period boundaries ahead the corridor stages.
	// Zero disables the corridor entirely — the exact pre-corridor
	// behavior. Requires a prefetching Strategy when positive.
	Lookahead int
	// ErrorModel bounds the prediction error the corridor absorbs. The
	// zero model trusts predictions exactly: any deviation of the actual
	// position from the predicted one is a mispredict. Subscriptions fed
	// by noisy predictors should use GPSErrorModel or a custom bound.
	ErrorModel ErrorModel
}

// QuerySpec is the streaming form of the paper's spatiotemporal query
// tuple: one aggregate over a circle around the mobile user, due every
// Period, computed from sufficiently fresh readings.
type QuerySpec struct {
	// Radius is Rq: the query area is a circle of this radius (m) centered
	// on the user's current position.
	Radius float64
	// Period is Tperiod: one result is due every Period, the kth at
	// subscription time + k*Period.
	Period time.Duration
	// Deadline is the slack after each period boundary before the result
	// counts as late. Zero is strict: a result evaluated any time after
	// its boundary is marked late.
	Deadline time.Duration
	// Freshness is Tfresh: readings older than this at the period boundary
	// are excluded from the result (they show up in
	// QueryResult.StaleNodes). Zero disables the window.
	Freshness time.Duration
	// Aggregate selects the aggregation function; zero selects Avg.
	Aggregate AggKind
	// Lifetime bounds the session: the subscription closes itself after
	// Lifetime/Period results. Zero streams until Close or context
	// cancellation.
	Lifetime time.Duration
	// Strategy selects predictive sampling along the user's motion
	// (JITStrategy, GreedyStrategy). The zero value keeps on-demand
	// sampling — exactly the pre-strategy behavior.
	Strategy Strategy
	// Corridor enables spatial corridor prefetching on top of the
	// Strategy's temporal staging. The zero value disables it.
	Corridor CorridorSpec
	// Window widens each result to an aggregate over the last Window query
	// periods: the kth result merges the Window most recent single-period
	// evaluations (each taken at its own boundary position, staleness aged
	// to the current deadline), with QueryResult.WindowPeriods reporting
	// how many periods actually contributed (fewer during the first
	// Window-1 results). 0 or 1 keeps ordinary single-period results.
	// Requires the on-demand Strategy: a windowed result spans boundaries,
	// which the per-period prefetch ledger cannot attribute.
	Window int
	// Trace is an optional caller-minted trace context. When non-zero,
	// every period of the subscription carries a span identified by
	// (Trace, MintSpanID(Trace, k)); completed spans are attached to
	// QueryResult.Trace so a network front-end can echo them to the
	// client. Zero (the default) leaves the subscription untraced — the
	// per-period cost of the machinery is then a single comparison.
	Trace TraceID
}

// Validate reports specification errors, including the paper's feasibility
// assumption Tfresh <= Tperiod — relaxed for prefetching strategies, whose
// equation-10 hold windows let a held reading legitimately outlive a
// period.
func (q QuerySpec) Validate() error {
	if err := q.Strategy.Validate(); err != nil {
		return err
	}
	switch {
	case q.Radius <= 0:
		return fmt.Errorf("mobiquery: query radius %v must be positive", q.Radius)
	case q.Period <= 0:
		return fmt.Errorf("mobiquery: query period %v must be positive", q.Period)
	case q.Deadline < 0:
		return fmt.Errorf("mobiquery: deadline slack %v must be non-negative", q.Deadline)
	case q.Freshness < 0:
		return fmt.Errorf("mobiquery: freshness %v must be non-negative", q.Freshness)
	case q.Freshness > q.Period && !q.Strategy.Prefetching():
		return fmt.Errorf("mobiquery: freshness %v must not exceed period %v for on-demand sampling (a prefetching Strategy may hold readings across periods)", q.Freshness, q.Period)
	case q.Aggregate != 0 && !q.Aggregate.Valid():
		return fmt.Errorf("mobiquery: invalid aggregation %v", q.Aggregate)
	case q.Lifetime < 0:
		return fmt.Errorf("mobiquery: lifetime %v must be non-negative", q.Lifetime)
	case q.Lifetime != 0 && q.Lifetime < q.Period:
		return fmt.Errorf("mobiquery: lifetime %v shorter than one period %v", q.Lifetime, q.Period)
	case q.Corridor.Lookahead < 0:
		return fmt.Errorf("mobiquery: corridor lookahead %d must be non-negative", q.Corridor.Lookahead)
	case q.Corridor.Lookahead > 0 && !q.Strategy.Prefetching():
		return fmt.Errorf("mobiquery: corridor prefetching needs a prefetching Strategy (JITStrategy/GreedyStrategy)")
	case q.Window < 0:
		return fmt.Errorf("mobiquery: window %d must be non-negative", q.Window)
	case q.Window > 1 && q.Strategy.Prefetching():
		return fmt.Errorf("mobiquery: windowed aggregation (Window %d) requires the on-demand Strategy", q.Window)
	}
	if err := q.Corridor.ErrorModel.Validate(); err != nil {
		return err
	}
	return nil
}

// MotionSource supplies a subscriber's position over the service's virtual
// time. t is measured from the subscription instant. Implementations must
// be pure: the service may query any instant, in any order.
type MotionSource interface {
	PositionAt(t time.Duration) Point
}

// staticSource pins the user to one position.
type staticSource struct{ p Point }

func (s staticSource) PositionAt(time.Duration) Point { return s.p }

// StaticPosition returns a MotionSource for a user standing at p. Combine
// with Subscription.UpdateWaypoint to move the user by explicit updates.
func StaticPosition(p Point) MotionSource { return staticSource{p: p} }

// linearSource moves the user on a straight line.
type linearSource struct {
	start Point
	v     geom.Vec
}

func (l linearSource) PositionAt(t time.Duration) Point {
	return l.start.Add(l.v.Scale(t.Seconds()))
}

// LinearMotion returns a MotionSource for a user walking a straight line
// from start at (vx, vy) m/s.
func LinearMotion(start Point, vx, vy float64) MotionSource {
	return linearSource{start: start, v: geom.V(vx, vy)}
}

// ProfileSource is a MotionSource that also supplies its own stream of
// predicted motion profiles — typically a history-based predictor whose
// predictions carry location error, as opposed to the exact profiles the
// service otherwise synthesizes from the source's positions. A prefetching
// subscription backed by a ProfileSource plans (and, with a Corridor,
// stages) from the predictions while its actual positions keep following
// PositionAt — the paper's Section 6.3 location-error setting, live.
//
// The interface is sealed: construct implementations with
// GPSPredictedMotion.
type ProfileSource interface {
	MotionSource
	// predictedProfiles returns the profile stream in delivery order, all
	// times relative to the subscription instant.
	predictedProfiles() []mobility.TimedProfile
}

// CourseConfig describes a ground-truth random-direction course (the
// paper's evaluation mobility): the user starts at Start, draws a fresh
// heading and a speed in [SpeedMin, SpeedMax] every ChangeInterval, and
// reflects off the RegionSide × RegionSide boundary for Duration.
type CourseConfig struct {
	Seed           int64
	RegionSide     float64
	Start          Point
	SpeedMin       float64
	SpeedMax       float64
	ChangeInterval time.Duration
	Duration       time.Duration
}

// GPSConfig describes the noisy history-based predictor laid over a
// course: a GPS reading every Sampling with up to Error meters of uniform
// disk error, re-profiling (a fresh straight-line prediction) whenever a
// reading diverges from the active prediction by more than Threshold
// (zero selects a default above the noise floor).
type GPSConfig struct {
	Seed      int64
	Sampling  time.Duration
	Error     float64
	Threshold float64
}

// gpsMotion is the ProfileSource behind GPSPredictedMotion.
type gpsMotion struct {
	course   mobility.Course
	profiles []mobility.TimedProfile
}

func (g *gpsMotion) PositionAt(t time.Duration) Point { return g.course.PosAt(t) }

func (g *gpsMotion) predictedProfiles() []mobility.TimedProfile { return g.profiles }

// GPSPredictedMotion returns a ProfileSource whose ground truth follows a
// random-direction course while its predictions come from a noisy GPS
// predictor — actual positions and predicted profiles deliberately
// disagree, within gps.Error and the predictor's threshold. Pair it with a
// prefetching Strategy and a Corridor whose ErrorModel covers the
// predictor (see GPSErrorModel) to exercise spatial prefetching under
// location error. The source is deterministic in its seeds.
func GPSPredictedMotion(course CourseConfig, gps GPSConfig) (ProfileSource, error) {
	spec := mobility.CourseSpec{
		Region:         geom.Square(course.RegionSide),
		Start:          course.Start,
		SpeedMin:       course.SpeedMin,
		SpeedMax:       course.SpeedMax,
		ChangeInterval: course.ChangeInterval,
		Duration:       course.Duration,
	}
	if err := spec.Validate(); err != nil {
		return nil, err
	}
	if gps.Sampling <= 0 {
		return nil, fmt.Errorf("mobiquery: GPS sampling period %v must be positive", gps.Sampling)
	}
	if gps.Error < 0 {
		return nil, fmt.Errorf("mobiquery: GPS error %v must be non-negative", gps.Error)
	}
	c := mobility.NewRandomCourse(spec, rand.New(rand.NewSource(course.Seed)))
	predictor := mobility.GPSPredictor{
		Course:    c,
		Sampling:  gps.Sampling,
		Err:       gps.Error,
		Threshold: gps.Threshold,
		RNG:       rand.New(rand.NewSource(gps.Seed)),
	}
	return &gpsMotion{course: c, profiles: predictor.Profiles()}, nil
}

// shiftProfile translates a profile's course-relative times onto the
// service clock: a subscription opened at t0 sees the course's instant x
// at virtual time t0+x.
func shiftProfile(p mobility.Profile, t0 time.Duration) mobility.Profile {
	if t0 == 0 {
		return p
	}
	wps := p.Path.Waypoints()
	for i := range wps {
		wps[i].T += t0
	}
	p.Path = mobility.NewTrajectory(wps)
	p.TS += t0
	p.Generated += t0
	return p
}

// bootstrapProfile is the prediction a profile-driven subscription plans
// from before its predictor's first delivery: the user is assumed to hold
// the position they subscribed at (the predictor needs a couple of
// readings before it can do better).
func bootstrapProfile(p Point, t0 time.Duration) mobility.Profile {
	return mobility.Profile{
		Path:      mobility.Stationary(p, t0),
		TS:        t0,
		Generated: t0,
		Version:   0,
	}
}

// profileFromSource synthesizes the motion profile a prefetch planner works
// from at Subscribe time: positions sampled one period apart anchor a
// piecewise-linear predicted path, which extrapolates past its last sample
// with the final leg's velocity (so linear sources are predicted exactly,
// forever). The profile is generated the instant it takes effect (Ta = 0),
// so equation 16 charges the full warmup interval — the cost of joining
// with no advance notice.
func profileFromSource(src MotionSource, t0, period time.Duration) mobility.Profile {
	const legs = 8
	wps := make([]mobility.Waypoint, 0, legs+1)
	for i := 0; i <= legs; i++ {
		rel := time.Duration(i) * period
		wps = append(wps, mobility.Waypoint{T: t0 + rel, P: src.PositionAt(rel)})
	}
	return mobility.Profile{
		Path:      mobility.NewTrajectory(wps),
		TS:        t0,
		Generated: t0,
		Version:   1,
		// Validity 0: the prediction covers every future boundary.
	}
}

// waypointProfile builds the replacement profile after a ground-truth
// waypoint update: a straight line from the reported position at the
// velocity estimated from the previous update (or, lacking one, from the
// original motion source's local direction).
func waypointProfile(p Point, prev *Point, prevAt time.Duration, src MotionSource, t0, now, period time.Duration) mobility.Profile {
	var vel geom.Vec
	if prev != nil && now > prevAt {
		vel = p.Sub(*prev).Scale(1 / (now - prevAt).Seconds())
	} else {
		rel := now - t0
		vel = src.PositionAt(rel + period).Sub(src.PositionAt(rel)).Scale(1 / period.Seconds())
	}
	return mobility.Profile{
		Path:      mobility.LinearPath(p, vel, now, now+period),
		TS:        now,
		Generated: now,
		Version:   1,
	}
}

// SubscriptionStats summarizes a subscription's temporal ledger.
type SubscriptionStats struct {
	// Delivered counts results handed to the Results channel; Dropped
	// those discarded because the subscriber's buffer was full; Late those
	// delivered past their deadline slack.
	Delivered int
	Dropped   int
	Late      int
	// NextPeriod is the 1-based index of the next period due.
	NextPeriod int
}

// Subscription is one mobile user's live query session. Results arrive on
// the Results channel, one per query period; the channel is closed when
// the subscription ends (Close, context cancellation, service Close, or
// the spec's Lifetime running out).
type Subscription struct {
	svc  *Service
	id   uint32
	spec QuerySpec
	src  MotionSource
	t0   time.Duration
	agg  AggKind

	results chan QueryResult
	done    chan struct{} // closed with the subscription; wakes watchers

	// planner is the prefetch plan driving this subscription's predictive
	// sampling; nil for on-demand specs. Installed once at Subscribe (the
	// planner itself is concurrency-safe and re-planned in place).
	planner *prefetch.Planner
	// corridor is the spatial corridor cache staging node snapshots along
	// the predicted path; nil unless the spec asked for one. Like the
	// planner it is installed once and mutated in place.
	corridor *corridor.Cache
	// pyramid is the aggregate tile pyramid this subscription's boundary
	// class shares; nil when the spec is prefetching or the query area is
	// too small to benefit. Installed once at Subscribe.
	pyramid *pyramid.Pyramid

	// trace is the fixed-depth ring of recent period lifecycle spans
	// (TraceSpans); nil when the service was opened with WithTraceDepth(0).
	// Allocated once at Subscribe so the Advance path never does.
	// lastArmedNS is the wall time this subscription's schedule entry was
	// last re-armed — the end of the previous period's evaluation, or the
	// Subscribe instant — giving each span its armed→popped scheduler wait.
	// Written only from collectDue (serialized per subscription) and
	// Subscribe (before the subscription is visible to Advance).
	trace       *obs.TraceRing
	lastArmedNS int64

	// profiles is the predicted-profile stream of a ProfileSource-backed
	// subscription (absolute service times), with nextProfile the first
	// undelivered index; lastEvalPos/lastEvalAt remember the previous
	// boundary's ground-truth position for mispredict re-plan velocity.
	// All four are touched only from collectDue, which Advance serializes
	// per subscription.
	profiles    []mobility.TimedProfile
	nextProfile int
	lastEvalPos Point
	lastEvalAt  time.Duration
	haveEval    bool

	// mu guards the mutable session state. It is per-subscription so one
	// user's waypoint updates, stats reads, and deliveries never contend
	// with another's, and none of them block the service registry lock.
	mu       sync.Mutex
	manual   *Point // set by UpdateWaypoint; overrides src from then on
	manualAt time.Duration
	closed   bool
	stats    SubscriptionStats
}

// pendingResult is one evaluated period awaiting delivery (or, with
// expire set, a subscription whose spec Lifetime ran out at due). Workers
// produce them in parallel; Advance merges and delivers them serially in
// (due, id) order.
type pendingResult struct {
	sub    *Subscription
	due    time.Duration
	result QueryResult
	expire bool
	// span is the period's lifecycle record so far (armed → popped →
	// evaluated); deliver finishes it with the outcome stamp and hands it
	// to the subscription's trace ring.
	span obs.PeriodSpan
}

// Subscribe registers a streaming query for a mobile user whose position
// follows src, starting periods at the service's current virtual time. The
// user joins a live service: existing subscribers are unaffected. The
// subscription ends when ctx is canceled, Close is called, the service
// closes, or the spec's Lifetime elapses.
func (s *Service) Subscribe(ctx context.Context, spec QuerySpec, src MotionSource) (*Subscription, error) {
	if err := spec.Validate(); err != nil {
		return nil, err
	}
	if src == nil {
		return nil, fmt.Errorf("mobiquery: subscription needs a MotionSource")
	}
	agg := spec.Aggregate
	if agg == 0 {
		agg = Avg
	}

	s.mu.Lock()
	defer s.mu.Unlock()
	if s.closed {
		return nil, fmt.Errorf("mobiquery: service is closed")
	}
	if s.draining {
		return nil, fmt.Errorf("mobiquery: service is draining")
	}
	s.nextID++
	sub := &Subscription{
		svc:     s,
		id:      s.nextID,
		spec:    spec,
		src:     src,
		t0:      s.now,
		agg:     agg,
		results: make(chan QueryResult, s.opts.buffer),
		done:    make(chan struct{}),
		trace:   obs.NewTraceRing(s.opts.traceDepth),
	}
	sub.stats.NextPeriod = 1
	sub.lastArmedNS = time.Now().UnixNano()
	var planner *prefetch.Planner
	var cache *corridor.Cache
	if spec.Strategy.Prefetching() {
		// The initial prediction: for a ProfileSource, the predictor's own
		// stream (times shifted onto the service clock), bootstrapped from
		// a stationary guess until its first delivery; otherwise an exact
		// profile synthesized from the motion source.
		var prof mobility.Profile
		if ps, ok := src.(ProfileSource); ok {
			for _, tp := range ps.predictedProfiles() {
				sub.profiles = append(sub.profiles, mobility.TimedProfile{
					Deliver: tp.Deliver + s.now,
					Profile: shiftProfile(tp.Profile, s.now),
				})
			}
			prof = bootstrapProfile(src.PositionAt(0), s.now)
			for sub.nextProfile < len(sub.profiles) && sub.profiles[sub.nextProfile].Deliver <= s.now {
				prof = sub.profiles[sub.nextProfile].Profile
				sub.nextProfile++
			}
		} else {
			prof = profileFromSource(src, s.now, spec.Period)
		}
		var err error
		planner, err = prefetch.NewPlanner(prefetch.Config{
			Strategy: spec.Strategy,
			Radius:   spec.Radius,
			Period:   spec.Period,
			Deadline: spec.Deadline,
			Fresh:    spec.Freshness,
			Sleep:    s.cfg.SamplePeriod,
			T0:       s.now,
		}, prof)
		if err != nil {
			return nil, err
		}
		if spec.Corridor.Lookahead > 0 {
			cache, err = corridor.NewCache(corridor.Config{
				Lookahead: spec.Corridor.Lookahead,
				Model:     spec.Corridor.ErrorModel,
				Radius:    spec.Radius,
				Period:    spec.Period,
				T0:        s.now,
			}, s.engine.Index())
			if err != nil {
				return nil, err
			}
			cache.SetProfile(prof, s.now)
		}
	}
	err := s.engine.RegisterTemporalE(sub.id, spec.Radius, src.PositionAt(0),
		core.TemporalSpec{Period: spec.Period, Deadline: spec.Deadline, Fresh: spec.Freshness, Window: spec.Window}, s.now)
	if err != nil {
		return nil, err
	}
	if planner != nil {
		sub.planner = planner
		s.engine.SetQuerySampler(sub.id, planner.Sampler(s.sampler()))
		s.engine.SetQueryPlan(sub.id, planner)
		if cache != nil {
			sub.corridor = cache
			s.engine.SetQueryWarmer(sub.id, cache)
		}
	} else if spec.Window > 1 || spec.Radius >= pyramidMinRadiusCells*s.cell {
		// On-demand subscriptions with large areas (or lookback windows,
		// whose every result re-folds Window boundaries) aggregate through
		// the shared tile pyramid of their boundary class. Small areas keep
		// the flat scan: a handful of cells beats an epoch ingest.
		p, perr := s.pyramidFor(spec.Period, spec.Freshness)
		if perr != nil {
			return nil, perr
		}
		sub.pyramid = p
		s.engine.SetQueryAggIndex(sub.id, p)
	}
	s.subs[sub.id] = sub
	s.totOpened.Add(1)

	if ctx != nil && ctx.Done() != nil {
		go func() {
			select {
			case <-ctx.Done():
				sub.Close()
			case <-sub.done:
				// Closed some other way (Close, Lifetime, service
				// shutdown); don't outlive the subscription.
			}
		}()
	}
	return sub, nil
}

// ID returns the subscription's query id within the service.
func (sub *Subscription) ID() uint32 { return sub.id }

// Results is the stream of per-period query results. It is closed when
// the subscription ends; a subscriber that stops draining loses newest
// results (counted in Stats().Dropped) but never stalls the service.
func (sub *Subscription) Results() <-chan QueryResult { return sub.results }

// Spec returns the subscription's query specification.
func (sub *Subscription) Spec() QuerySpec { return sub.spec }

// UpdateWaypoint reports the user's actual position mid-run, overriding
// the MotionSource from this moment on (the source is a prediction; the
// waypoint is ground truth). Subsequent periods are evaluated at the
// updated position until the next update. A prefetching subscription
// re-plans from the reported position: chains are re-dispatched along the
// corrected path and the equation-16 warmup clock restarts, so the next
// few results carry Warmup=true — the paper's cost of a motion change.
func (sub *Subscription) UpdateWaypoint(p Point) error {
	now := sub.svc.Now()
	sub.mu.Lock()
	if sub.closed {
		sub.mu.Unlock()
		return fmt.Errorf("mobiquery: subscription %d is closed", sub.id)
	}
	prev, prevAt := sub.manual, sub.manualAt
	sub.manual = &p
	sub.manualAt = now
	sub.mu.Unlock()
	sub.svc.engine.UpdateWaypoint(sub.id, p)
	if sub.planner != nil {
		prof := waypointProfile(p, prev, prevAt, sub.src, sub.t0, now, sub.spec.Period)
		sub.planner.Replan(prof, now)
		if sub.corridor != nil {
			sub.corridor.SetProfile(prof, now)
		}
	}
	return nil
}

// PrefetchStats returns the prefetch planner's ledger, including the
// corridor cache's hit/mispredict counters when the spec asked for a
// corridor; ok is false for on-demand subscriptions, which have no
// planner.
func (sub *Subscription) PrefetchStats() (PrefetchStats, bool) {
	if sub.planner == nil {
		return PrefetchStats{}, false
	}
	st := sub.planner.Stats()
	if sub.corridor != nil {
		cs := sub.corridor.Stats()
		st.CorridorHits = cs.Hits
		st.CorridorMisses = cs.Misses
		st.CorridorMispredicts = cs.Mispredicts
		st.CorridorStaged = cs.StagedBoundaries
	}
	return st, true
}

// Stats returns the subscription's delivery ledger so far.
func (sub *Subscription) Stats() SubscriptionStats {
	sub.mu.Lock()
	defer sub.mu.Unlock()
	return sub.stats
}

// Close ends the subscription: the user leaves the service, the engine
// frees the query, and the Results channel is closed after any buffered
// results. Other subscribers are unaffected. Close is idempotent.
func (sub *Subscription) Close() error {
	sub.svc.removeSub(sub)
	return nil
}

// close tears the subscription down: marks it closed, ends the result
// stream, and frees the engine query. Idempotent; callers remove it from
// the service registry separately (removeSub, service Close).
func (sub *Subscription) close() {
	sub.mu.Lock()
	if sub.closed {
		sub.mu.Unlock()
		return
	}
	sub.closed = true
	// Closed under mu: deliver sends under the same lock, so a racing
	// Advance can never write to a closed channel.
	close(sub.results)
	close(sub.done)
	sub.mu.Unlock()
	sub.svc.totClosed.Add(1)
	sub.svc.engine.Deregister(sub.id)
}

// collectDue evaluates every period of this subscription due by virtual
// time now, appending one pendingResult per period (and an expire marker
// when the spec's Lifetime runs out). It runs on a dispatch worker and
// touches only this subscription's engine query and session state, so
// distinct subscriptions evaluate in parallel; delivery happens later, in
// the merged serial phase. Schedule re-arms go into the worker's private
// rb — Advance flushes each worker's batch once per stripe after the
// dispatch, so parallel workers never contend on the schedule locks.
// poppedNS is the wall time the Advance step's PopDue completed — the
// popped stamp shared by the first span of each subscription in the
// batch; catch-up periods armed mid-drain stamp their own arming instant
// instead, keeping every span chain monotone.
func (sub *Subscription) collectDue(now time.Duration, poppedNS int64, buf []pendingResult, rb *core.RearmBatch) []pendingResult {
	eng := sub.svc.engine
	for {
		sub.mu.Lock()
		closed, manual := sub.closed, sub.manual
		sub.mu.Unlock()
		if closed {
			return buf
		}
		_, due, ok := eng.NextDue(sub.id)
		if !ok {
			return buf
		}
		// The lifetime check precedes the due check: it depends only on
		// the period index, so a session whose clock stops exactly at
		// t0+Lifetime still closes its stream after the final result.
		if sub.spec.Lifetime > 0 && due > sub.t0+sub.spec.Lifetime {
			return append(buf, pendingResult{sub: sub, due: due, expire: true})
		}
		if due > now {
			return buf
		}
		// Predicted profiles delivered by this boundary govern its plan
		// and corridor: a fresher prediction re-plans (and re-sweeps)
		// before the boundary is evaluated.
		sub.pumpProfiles(due)
		// Ingest the boundary's epoch before evaluating against it. Every
		// subscription of the class calls this; the first arrivals build
		// the epoch cooperatively, the rest return immediately.
		if sub.pyramid != nil {
			sub.pyramid.EnsureEpoch(due)
		}
		// The waypoint is evaluated as of the period boundary, so coarse
		// clock steps still see the position the user held at the
		// deadline.
		var pos Point
		if manual != nil {
			pos = *manual
		} else {
			pos = sub.src.PositionAt(due - sub.t0)
		}
		eng.UpdateWaypoint(sub.id, pos)
		evalStartNS := time.Now().UnixNano()
		wr, ok := eng.EvaluateDueBatch(sub.id, now, rb)
		evalEndNS := time.Now().UnixNano()
		if !ok {
			return buf
		}
		// Classify the serve: the classes partition evaluated periods, so
		// the per-class counters sum to the delivery ledger (delivered +
		// dropped), which the loopback reconciliation test pins.
		class := obs.ClassCold
		switch {
		case wr.PyramidHit:
			class = obs.ClassPyramid
		case wr.CorridorHit:
			class = obs.ClassCorridor
		case sub.planner != nil:
			class = obs.ClassPlanned
		}
		so := sub.svc.obs
		so.classCount[class].Inc()
		so.classEval[class].Observe(evalEndNS - evalStartNS)
		if sub.planner != nil {
			sub.planner.NoteServed(wr.Prefetched)
		}
		if sub.corridor != nil {
			// An actual position outside the corridor already cost this
			// period its warm serve and staging credit (the evaluation ran
			// cold with honest accounting); re-plan immediately from the
			// observed ground truth so the next boundaries re-stage along
			// the corrected path.
			if mpAt, mpPos, ok := sub.corridor.TakeMispredict(); ok {
				var prevPos *Point
				if sub.haveEval {
					prevPos = &sub.lastEvalPos
				}
				prof := waypointProfile(mpPos, prevPos, sub.lastEvalAt, sub.src, sub.t0, mpAt, sub.spec.Period)
				sub.planner.Replan(prof, mpAt)
				sub.corridor.SetProfile(prof, mpAt)
			}
			// Top the staged window up relative to the boundary just
			// collected, so boundary k+1's snapshot is cut ahead of its
			// due time whatever the tick coarseness.
			sub.corridor.StageThrough(wr.Due)
		}
		sub.lastEvalPos, sub.lastEvalAt, sub.haveEval = pos, wr.Due, true
		// A traced subscription's span carries its wire identity: the
		// client-minted trace id plus the deterministic per-period span id
		// both tiers can recompute (see obs.MintSpanID).
		var sid obs.SpanID
		if sub.spec.Trace != 0 {
			sid = obs.MintSpanID(sub.spec.Trace, wr.K)
		}
		// A catch-up period (armed by the previous iteration of this very
		// drain, after the batch pop) never went back to the scheduler: its
		// logical pop instant is its armed instant, not the batch pop stamp
		// taken before the period existed — keeping armed <= popped and its
		// scheduler-wait segment honestly zero.
		popNS := poppedNS
		if sub.lastArmedNS > popNS {
			popNS = sub.lastArmedNS
		}
		buf = append(buf, pendingResult{
			sub: sub, due: wr.Due, result: sub.makeResult(wr),
			span: obs.PeriodSpan{
				Trace:       sub.spec.Trace,
				Span:        sid,
				K:           wr.K,
				Due:         wr.Due,
				ArmedNS:     sub.lastArmedNS,
				PoppedNS:    popNS,
				EvalStartNS: evalStartNS,
				EvalEndNS:   evalEndNS,
				Class:       class,
				Late:        wr.Late,
			},
		})
		// The evaluation just re-armed the schedule at the next boundary;
		// that instant is the next span's armed stamp.
		sub.lastArmedNS = evalEndNS
	}
}

// pumpProfiles installs every predicted profile delivered by virtual time
// upTo into the planner (and corridor, when present), in delivery order.
// Only ProfileSource-backed subscriptions have a stream; others no-op.
// Runs on the collectDue path, which Advance serializes per subscription.
func (sub *Subscription) pumpProfiles(upTo time.Duration) {
	for sub.nextProfile < len(sub.profiles) && sub.profiles[sub.nextProfile].Deliver <= upTo {
		tp := sub.profiles[sub.nextProfile]
		sub.nextProfile++
		sub.planner.Replan(tp.Profile, tp.Deliver)
		if sub.corridor != nil {
			sub.corridor.SetProfile(tp.Profile, tp.Deliver)
		}
	}
}

// makeResult converts one engine window evaluation into the public
// per-period result.
func (sub *Subscription) makeResult(wr core.WindowResult) QueryResult {
	qr := QueryResult{
		K:               wr.K,
		Deadline:        wr.Due,
		Received:        true,
		OnTime:          !wr.Late,
		Value:           wr.Data.Value(sub.agg),
		Contributors:    wr.Data.Count,
		AreaNodes:       wr.AreaNodes,
		EvaluatedAt:     wr.EvaluatedAt,
		Lateness:        wr.Lateness,
		StaleNodes:      wr.StaleNodes,
		MaxStaleness:    wr.MaxStaleness,
		Warmup:          wr.Warmup,
		PrefetchedNodes: wr.Prefetched,
		CorridorHit:     wr.CorridorHit,
		PyramidHit:      wr.PyramidHit,
		WindowPeriods:   wr.WindowPeriods,
	}
	if wr.AreaNodes > 0 {
		qr.Fidelity = float64(wr.Data.Count) / float64(wr.AreaNodes)
	} else {
		qr.Fidelity = 1 // empty area: vacuously perfect
	}
	qr.Success = qr.OnTime && qr.Fidelity >= SuccessThreshold
	return qr
}

// deliver hands one evaluated period to the subscriber, keeping the
// drop-vs-deliver ledger: when the buffer is full the result is discarded
// and counted in Stats().Dropped rather than stalling the service. span is
// the period's lifecycle record; deliver completes it (delivery stamp and
// outcome), records it in the subscription's trace ring, publishes it to
// the service span firehose, and — for a traced subscription — attaches a
// copy to the result so the network front-end can echo it to the client.
func (sub *Subscription) deliver(r *QueryResult, span *obs.PeriodSpan) {
	sub.mu.Lock()
	defer sub.mu.Unlock()
	if sub.closed {
		// The period was evaluated but the subscription closed mid-tick:
		// the result has nowhere to go, so count it against the service
		// drop ledger — the per-class evaluated counters were already
		// bumped, and they must keep partitioning delivered + dropped.
		sub.svc.totDropped.Add(1)
		return
	}
	sub.stats.NextPeriod = r.K + 1
	if !r.OnTime {
		sub.stats.Late++
		sub.svc.totLate.Add(1)
	}
	// The delivery stamp precedes the channel send so a traced result's
	// echoed span already carries it; the heap copy is per traced period —
	// untraced subscriptions keep the allocation-free path.
	span.DeliveredNS = time.Now().UnixNano()
	span.Outcome = obs.OutcomeDelivered
	if span.Trace != 0 {
		sp := new(obs.PeriodSpan)
		*sp = *span
		r.Trace = sp
	}
	select {
	case sub.results <- *r:
		sub.stats.Delivered++
		sub.svc.totDelivered.Add(1)
	default:
		span.Outcome = obs.OutcomeDropped
		sub.stats.Dropped++
		sub.svc.totDropped.Add(1)
	}
	sub.trace.Record(span)
	sub.svc.spans.Publish(span)
}

// TraceSpans appends the subscription's recent period lifecycle spans to
// buf, oldest first, and returns the result: one span per evaluated period
// still in the trace ring, stamped armed → popped → evaluated →
// delivered/dropped with its serve class. The ring keeps the last
// WithTraceDepth spans (default 16); with tracing disabled it is always
// empty. Safe for concurrent use with a running service.
func (sub *Subscription) TraceSpans(buf []PeriodSpan) []PeriodSpan {
	return sub.trace.Snapshot(buf)
}
