// Vehicle: the paper's high-speed regime (16-20 m/s). The query area moves
// quickly, so prefetching must race ahead of the user; the example compares
// just-in-time prefetching against the no-prefetching baseline and prints
// the per-period fidelity series (the Figure 5 view) for both.
package main

import (
	"fmt"
	"strings"
	"time"

	"mobiquery"
)

func main() {
	base := mobiquery.DefaultSimulation()
	base.Duration = 120 * time.Second
	base.Lifetime = 116 * time.Second
	base.SleepPeriod = 6 * time.Second
	base.SpeedMin, base.SpeedMax = 16, 20
	base.ChangeInterval = 50 * time.Second

	jit := base
	jit.Scheme = mobiquery.JIT
	np := base
	np.Scheme = mobiquery.NP

	fmt.Println("Vehicle scenario: 16-20 m/s user, 6 s sleep period")
	rj := mobiquery.Run(jit)
	rn := mobiquery.Run(np)
	fmt.Printf("MQ-JIT success %.1f%%   NP success %.1f%%\n\n", rj.SuccessRatio*100, rn.SuccessRatio*100)

	fmt.Println("per-period fidelity (each bar column is one query period):")
	fmt.Printf("%-7s %s\n", "MQ-JIT", spark(rj))
	fmt.Printf("%-7s %s\n", "NP", spark(rn))
	fmt.Println("\nprefetching keeps pace with a fast user; flooding at each period start cannot")
}

// spark renders fidelity values as a compact bar string.
func spark(r mobiquery.Result) string {
	levels := []rune("_.:-=+*#%@")
	var b strings.Builder
	for _, q := range r.Queries {
		idx := int(q.Fidelity * float64(len(levels)-1))
		if idx < 0 {
			idx = 0
		}
		if idx >= len(levels) {
			idx = len(levels) - 1
		}
		b.WriteRune(levels[idx])
	}
	return b.String()
}
