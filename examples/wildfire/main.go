// Wildfire: the paper's motivating scenario. A fireman walks through a
// sensor field while a hot spot (a drifting Gaussian temperature plume)
// advances; MobiQuery delivers a fresh temperature maximum for the area
// around him every two seconds, driven by a history-based GPS motion
// predictor with realistic location error.
package main

import (
	"fmt"
	"strings"
	"time"

	"mobiquery"
)

func main() {
	sim := mobiquery.DefaultSimulation()
	sim.Duration = 150 * time.Second
	sim.Lifetime = 146 * time.Second
	sim.SleepPeriod = 9 * time.Second
	sim.ChangeInterval = 70 * time.Second
	sim.Aggregate = mobiquery.Max
	// GPS-based motion prediction, 8 s sampling, 5 m error (Section 6.3).
	sim.Profiler = mobiquery.GPSPredictor
	sim.GPSError = 5
	// Ambient 20 C plus a 600 C fire front drifting across the field.
	sim.Field = mobiquery.PlumeField(mobiquery.Pt(400, 100), 600, 60, -1.2, 0.8)

	fmt.Println("Wildfire scenario: fireman with GPS predictor, drifting fire front")
	fmt.Println("querying MAX temperature within 150 m every 2 s")
	res := mobiquery.Run(sim)

	fmt.Printf("\nsuccess ratio %.1f%%   mean fidelity %.1f%%\n\n",
		res.SuccessRatio*100, res.MeanFidelity*100)
	fmt.Println("  time   max temp (C)  alert")
	for _, q := range res.Queries {
		if q.K%5 != 0 || !q.Received {
			continue
		}
		alert := ""
		if q.Value > 100 {
			alert = strings.Repeat("!", 1+int(q.Value)/200) + " FIRE NEARBY"
		}
		fmt.Printf("  %4ds  %10.1f    %s\n", int(q.Deadline.Seconds()), q.Value, alert)
	}
	fmt.Println("\nthe rising maximum shows the front entering the fireman's query area")
}
