// Rescue: the paper's second motivating scenario. A search-and-rescue
// robot follows a planned path, so its motion planner hands MobiQuery exact
// motion profiles ahead of time (positive advance time Ta). With Ta beyond
// the warmup threshold of equation (16), every motion change is absorbed
// without losing a single query period.
package main

import (
	"fmt"
	"time"

	"mobiquery"
)

func main() {
	run := func(ta time.Duration) mobiquery.Result {
		sim := mobiquery.DefaultSimulation()
		sim.Duration = 150 * time.Second
		sim.Lifetime = 146 * time.Second
		sim.SleepPeriod = 9 * time.Second
		sim.ChangeInterval = 70 * time.Second
		sim.SpeedMin, sim.SpeedMax = 2, 3 // a cautious robot
		sim.Profiler = mobiquery.Planner
		sim.AdvanceTime = ta
		sim.Aggregate = mobiquery.Avg
		sim.Field = mobiquery.GradientField(10, 0.05, 0.02) // terrain roughness map
		return mobiquery.Run(sim)
	}

	fmt.Println("Rescue robot: motion planner provides profiles Ta ahead of each turn")
	fmt.Println("(equation 16: warmup vanishes once Ta covers Tsleep + 2*Tfresh)")
	fmt.Println()
	fmt.Println("  Ta     success   warmup bound")
	for _, ta := range []time.Duration{-8 * time.Second, 0, 6 * time.Second, 12 * time.Second} {
		res := run(ta)
		bound := mobiquery.WarmupBound(9*time.Second, time.Second, 2*time.Second, ta)
		fmt.Printf("  %-5v  %5.1f%%    %v\n", ta, res.SuccessRatio*100, bound)
	}
	fmt.Println()
	fmt.Println("larger advance times let the network wake nodes just in time,")
	fmt.Println("exactly as the paper's Figure 6 shows")
}
