// Team: two firemen sweep the field from opposite corners, each running
// their own MobiQuery session over the same sensor network. Their prefetch
// chains and query trees share the channel — the concurrent-query load the
// paper's Section 5 storage and contention analysis is about.
package main

import (
	"fmt"
	"time"

	"mobiquery"
)

func main() {
	base := mobiquery.DefaultSimulation()
	base.Duration = 100 * time.Second
	base.Lifetime = 96 * time.Second
	base.SleepPeriod = 9 * time.Second

	members := []mobiquery.TeamMember{
		{QueryID: 1, Scheme: mobiquery.JIT, Start: mobiquery.Pt(40, 80), VelocityX: 3.5, VelocityY: 1.5},
		{QueryID: 2, Scheme: mobiquery.JIT, Start: mobiquery.Pt(410, 370), VelocityX: -3.5, VelocityY: -1.5},
	}

	fmt.Println("Team scenario: two firemen with independent queries, one network")
	results := mobiquery.RunTeam(base, members)
	for i, res := range results {
		fmt.Printf("fireman %d: success %.1f%%  mean fidelity %.1f%%\n",
			i+1, res.SuccessRatio*100, res.MeanFidelity*100)
	}
	fmt.Println("\nboth sessions hold their guarantees despite sharing the channel;")
	fmt.Println("just-in-time prefetching keeps each user's footprint small (eq. 12)")
}
