// Quickstart: run a paper-default MobiQuery session and print the headline
// metrics. This is the smallest possible use of the public API.
package main

import (
	"fmt"
	"time"

	"mobiquery"
)

func main() {
	sim := mobiquery.DefaultSimulation()
	sim.Duration = 120 * time.Second // trim the paper's 400 s for a demo
	sim.Lifetime = 116 * time.Second
	sim.SleepPeriod = 9 * time.Second

	fmt.Println("MobiQuery quickstart: walking user, 200 nodes, 9s sleep period")
	res := mobiquery.Run(sim)

	fmt.Printf("query periods     %d\n", len(res.Queries))
	fmt.Printf("success ratio     %.1f%%  (on-time with >=95%% fidelity)\n", res.SuccessRatio*100)
	fmt.Printf("mean fidelity     %.1f%%\n", res.MeanFidelity*100)
	fmt.Printf("backbone nodes    %d\n", res.BackboneNodes)
	fmt.Printf("sleeper power     %.3f W\n", res.PowerPerSleepingNode)
	fmt.Printf("prefetch length   %d trees ahead (eq.12 bound: %d)\n",
		res.MaxPrefetchLength,
		mobiquery.JITStorageBound(sim.SleepPeriod, sim.Freshness, sim.Period))

	fmt.Println("\nfirst ten query periods:")
	for _, q := range res.Queries[:10] {
		status := "ok"
		if !q.Success {
			status = "miss"
		}
		fmt.Printf("  k=%-2d  fidelity %5.1f%%  %d/%d nodes  %s\n",
			q.K, q.Fidelity*100, q.Contributors, q.AreaNodes, status)
	}
}
