// Quickstart: the session API. Open a MobiQuery service over a sensor
// field, subscribe a walking user's streaming query, and read one
// aggregate per period off the subscription channel — then compare with
// the one-shot batch API over the full discrete-event stack.
package main

import (
	"context"
	"fmt"
	"log"
	"time"

	"mobiquery"
)

func main() {
	ctx := context.Background()

	// --- Session API -----------------------------------------------------
	// One live service; users join and leave while it runs.
	svc, err := mobiquery.Open(ctx, mobiquery.DefaultNetworkConfig())
	if err != nil {
		log.Fatal(err)
	}
	defer svc.Close()
	fmt.Printf("service open: %d sensor nodes\n", svc.NodeCount())

	spec := mobiquery.QuerySpec{
		Radius:    150,                    // meters around the user
		Period:    2 * time.Second,        // one result per period
		Deadline:  200 * time.Millisecond, // slack before a result is late
		Freshness: time.Second,            // readings must be this fresh
		Lifetime:  20 * time.Second,       // ten periods, then auto-close
	}
	sub, err := svc.Subscribe(ctx, spec, mobiquery.LinearMotion(mobiquery.Pt(50, 100), 4, 0))
	if err != nil {
		log.Fatal(err)
	}

	// The default clock is manual (exactly reproducible); WithRealTime
	// ties it to the wall clock instead.
	go func() {
		for i := 0; i < 10; i++ {
			if err := svc.Advance(2 * time.Second); err != nil {
				return
			}
		}
	}()

	fmt.Println("\nstreaming results (walking user, 1s freshness window):")
	for r := range sub.Results() {
		status := "on time"
		if !r.OnTime {
			status = fmt.Sprintf("LATE by %v", r.Lateness)
		}
		fmt.Printf("  k=%-2d value %5.1f  %3d fresh / %d in-area sensors  staleness %v  %s\n",
			r.K, r.Value, r.Contributors, r.AreaNodes, r.MaxStaleness.Truncate(time.Millisecond), status)
	}
	st := sub.Stats()
	fmt.Printf("session over: %d delivered, %d late, %d dropped\n", st.Delivered, st.Late, st.Dropped)

	// --- Batch API -------------------------------------------------------
	// The same walking-user query through the paper's full discrete-event
	// stack (radio, PSM, prefetching), one shot.
	sim := mobiquery.DefaultSimulation()
	sim.Duration = 120 * time.Second
	sim.Lifetime = 116 * time.Second
	sim.SleepPeriod = 9 * time.Second
	res, err := mobiquery.RunE(sim)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("\nbatch run (9s sleep period, JIT prefetching):\n")
	fmt.Printf("  query periods   %d\n", len(res.Queries))
	fmt.Printf("  success ratio   %.1f%%  (on-time with >=95%% fidelity)\n", res.SuccessRatio*100)
	fmt.Printf("  mean fidelity   %.1f%%\n", res.MeanFidelity*100)
	fmt.Printf("  sleeper power   %.3f W\n", res.PowerPerSleepingNode)
	fmt.Printf("  prefetch length %d trees ahead (eq.12 bound: %d)\n",
		res.MaxPrefetchLength,
		mobiquery.JITStorageBound(sim.SleepPeriod, sim.Freshness, sim.Period))
}
