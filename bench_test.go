package mobiquery

// Benchmark harness: one bench per table and figure of the paper's
// evaluation. Each bench runs a reduced-scale version of the corresponding
// experiment (shorter sessions, fewer replicas) and reports the headline
// quantity via b.ReportMetric, so `go test -bench=.` regenerates the shape
// of every artifact quickly. The full-scale reproduction (paper durations,
// paper replica counts) is produced by cmd/mobiquery-experiments and
// recorded in EXPERIMENTS.md.

import (
	"context"
	"math/rand"
	"runtime"
	"testing"
	"time"

	"mobiquery/internal/analysis"
	"mobiquery/internal/core"
	"mobiquery/internal/experiment"
	"mobiquery/internal/field"
	"mobiquery/internal/geom"
	"mobiquery/internal/radio"
)

// geomPt and geomV keep the bench bodies concise.
func geomPt(x, y float64) geom.Point { return geom.Pt(x, y) }
func geomV(dx, dy float64) geom.Vec  { return geom.V(dx, dy) }

// benchOpts trims experiment scale so the full bench suite completes in a
// couple of minutes.
func benchOpts() experiment.Options {
	return experiment.Options{Runs: 1, BaseSeed: 1, Scale: 0.2}
}

// BenchmarkFig4SuccessRatio regenerates Figure 4: success ratio of MQ-JIT,
// MQ-GP and NP across sleep periods and user speeds. Reported metrics give
// the walking-user row at 15 s sleep.
func BenchmarkFig4SuccessRatio(b *testing.B) {
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		tables := experiment.Fig4(benchOpts())
		if len(tables) != 3 {
			b.Fatal("figure 4 shape broken")
		}
		last := tables[0].Rows[len(tables[0].Rows)-1]
		b.ReportMetric(last.Cells[0].Value, "JIT-success")
		b.ReportMetric(last.Cells[1].Value, "GP-success")
		b.ReportMetric(last.Cells[2].Value, "NP-success")
	}
}

// BenchmarkFig5DynamicBehavior regenerates Figure 5: per-period fidelity of
// MQ-JIT vs MQ-GP at 15 s sleep. Reports mean fidelity of both series.
func BenchmarkFig5DynamicBehavior(b *testing.B) {
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		tbl := experiment.Fig5(benchOpts())
		var gp, jit float64
		for _, r := range tbl.Rows {
			gp += r.Cells[0].Value
			jit += r.Cells[1].Value
		}
		n := float64(len(tbl.Rows))
		b.ReportMetric(gp/n, "GP-fidelity")
		b.ReportMetric(jit/n, "JIT-fidelity")
	}
}

// BenchmarkFig6AdvanceTime regenerates Figure 6: success ratio vs motion
// profile advance time. Reports the Ta=-6s and Ta=18s endpoints at 9 s
// sleep.
func BenchmarkFig6AdvanceTime(b *testing.B) {
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		tbl := experiment.Fig6(benchOpts())
		b.ReportMetric(tbl.Rows[0].Cells[1].Value, "Ta=-6s-success")
		b.ReportMetric(tbl.Rows[len(tbl.Rows)-1].Cells[1].Value, "Ta=18s-success")
	}
}

// BenchmarkFig7MotionChanges regenerates Figure 7: success ratio vs motion
// change interval, including GPS location error settings. Reports the
// toughest cell (42 s interval, 10 m error) and the easiest (210 s, Ta=6s).
func BenchmarkFig7MotionChanges(b *testing.B) {
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		tbls := experiment.Fig7(benchOpts())
		strict, target := tbls[0], tbls[1]
		b.ReportMetric(strict.Rows[0].Cells[4].Value, "42s-err10m-success")
		b.ReportMetric(target.Rows[0].Cells[4].Value, "42s-err10m-target-success")
		b.ReportMetric(strict.Rows[len(strict.Rows)-1].Cells[0].Value, "210s-Ta6-success")
	}
}

// BenchmarkFig8PowerConsumption regenerates Figure 8: average power per
// sleeping node for bare CCP and MobiQuery. Reports the 15 s sleep row.
func BenchmarkFig8PowerConsumption(b *testing.B) {
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		tbl := experiment.Fig8(benchOpts())
		last := tbl.Rows[len(tbl.Rows)-1]
		b.ReportMetric(last.Cells[0].Value, "CCP-watts")
		b.ReportMetric(last.Cells[1].Value, "JIT-watts")
	}
}

// BenchmarkTableStorageCost regenerates the Section 5.2 storage example:
// PLjit=4 vs PLgp=58 (14.5x) for the paper's walking-user parameters, both
// analytically and from simulation (at evaluation settings).
func BenchmarkTableStorageCost(b *testing.B) {
	b.ReportAllocs()
	q := analysis.QueryParams{Period: 10 * time.Second, Fresh: 5 * time.Second, Sleep: 15 * time.Second}
	vprfh := analysis.PrefetchSpeed(100, 5, 60, 5000)
	for i := 0; i < b.N; i++ {
		plJIT := analysis.StorageJIT(q)
		plGP := analysis.StorageGreedy(q, 600*time.Second, 4, vprfh)
		b.ReportMetric(float64(plJIT), "PL-jit")
		b.ReportMetric(float64(plGP), "PL-gp")

		// Simulation cross-check at evaluation settings (sleep 9 s).
		sc := experiment.Default().WithDuration(80 * time.Second)
		sc.SleepPeriod = 9 * time.Second
		res := experiment.Run(sc)
		b.ReportMetric(float64(res.MaxPrefetchLength), "PL-jit-simulated")
	}
}

// BenchmarkTableContention regenerates the Section 5.4 contention example:
// about 4 interfering trees under JIT vs 35 under greedy for a walking
// user, and v* ~ 131 mph.
func BenchmarkTableContention(b *testing.B) {
	b.ReportAllocs()
	c := analysis.ContentionParams{
		QueryParams: analysis.QueryParams{Period: 5 * time.Second, Fresh: 3 * time.Second, Sleep: 9 * time.Second},
		QueryRadius: 150,
		CommRange:   50,
	}
	for i := 0; i < b.N; i++ {
		b.ReportMetric(float64(c.InterferenceJIT(4)), "M-jit")
		b.ReportMetric(float64(c.InterferenceGreedy(4, 210)), "M-gp")
		b.ReportMetric(analysis.MetersPerSecondToMPH(c.CriticalSpeed()), "vstar-mph")
	}
}

// BenchmarkTablePrefetchSpeed regenerates the Section 5.2 vprfh estimate
// (~469 mph for MICA2-class hardware).
func BenchmarkTablePrefetchSpeed(b *testing.B) {
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		v := analysis.PrefetchSpeed(100, 5, 60, 5000)
		b.ReportMetric(analysis.MetersPerSecondToMPH(v), "vprfh-mph")
	}
}

// BenchmarkTableWarmup validates the equation (16) warmup bound against
// simulation (the Section 5.3 result Tw ~ Tsleep + 2*Tfresh - Ta).
func BenchmarkTableWarmup(b *testing.B) {
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		tbl := experiment.WarmupValidation(experiment.Options{Runs: 1, BaseSeed: 1, Scale: 0.4})
		for _, row := range tbl.Rows {
			if row.Label == "0" {
				b.ReportMetric(row.Cells[0].Value, "measured-periods")
				b.ReportMetric(row.Cells[1].Value, "bound-periods")
			}
		}
	}
}

// BenchmarkSingleRunJIT measures the cost of one paper-default simulation
// (200 nodes, 400 s): the engine's raw throughput.
func BenchmarkSingleRunJIT(b *testing.B) {
	b.ReportAllocs()
	sc := experiment.Default().WithDuration(120 * time.Second)
	sc.SleepPeriod = 9 * time.Second
	for i := 0; i < b.N; i++ {
		sc.Seed = int64(i + 1)
		res := experiment.Run(sc)
		b.ReportMetric(res.SuccessRatio, "success")
		b.ReportMetric(float64(res.EventsFired), "events")
	}
}

// BenchmarkAblationNoPrefetchHold quantifies the JIT hold's contribution:
// JIT versus greedy at identical settings (the DESIGN.md ablation).
func BenchmarkAblationNoPrefetchHold(b *testing.B) {
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		jit := experiment.Default().WithDuration(120 * time.Second)
		jit.SleepPeriod = 15 * time.Second
		gp := jit
		gp.Scheme = core.SchemeGP
		rj := experiment.Run(jit)
		rg := experiment.Run(gp)
		b.ReportMetric(rj.SuccessRatio, "JIT-success")
		b.ReportMetric(rg.SuccessRatio, "GP-success")
		b.ReportMetric(float64(rj.MediumStats.Collisions), "JIT-collisions")
		b.ReportMetric(float64(rg.MediumStats.Collisions), "GP-collisions")
	}
}

// BenchmarkAblationMechanisms runs the DESIGN.md ablation study at reduced
// scale: the full system against variants with the flood jitter or the
// forward lead removed, plus the GP/NP references.
func BenchmarkAblationMechanisms(b *testing.B) {
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		tbl := experiment.Ablation(experiment.Options{Runs: 1, BaseSeed: 1, Scale: 0.3})
		for _, row := range tbl.Rows {
			switch row.Label {
			case "full system (MQ-JIT)":
				b.ReportMetric(row.Cells[0].Value, "full-success")
			case "no flood jitter":
				b.ReportMetric(row.Cells[0].Value, "nojitter-success")
			case "no forward lead":
				b.ReportMetric(row.Cells[0].Value, "nolead-success")
			}
		}
	}
}

// benchEngine builds a populated query engine for the dispatch benchmarks:
// users queries of the paper's 150 m radius over a 20k-node field.
func benchEngine(users int, cfg core.EngineConfig) *core.QueryEngine {
	rng := rand.New(rand.NewSource(1))
	region := geom.Square(5000)
	e := core.NewQueryEngine(region, 150, field.Gradient{Base: 20, Slope: geom.V(0.001, 0.002)}, cfg)
	for i := 0; i < 20_000; i++ {
		e.UpsertNode(radio.NodeID(i), region.UniformPoint(rng))
	}
	for u := 1; u <= users; u++ {
		e.Register(uint32(u), 150, region.UniformPoint(rng))
	}
	return e
}

// BenchmarkMultiUserDispatchSerial measures the pre-sharding baseline: one
// serial loop evaluating every user's query area in turn.
func BenchmarkMultiUserDispatchSerial(b *testing.B) {
	b.ReportAllocs()
	e := benchEngine(2000, core.EngineConfig{})
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		res := e.EvaluateAllSerial(time.Duration(i) * time.Second)
		if len(res) != 2000 {
			b.Fatal("evaluation dropped users")
		}
	}
}

// BenchmarkMultiUserDispatchSharded measures the same workload through the
// sharded concurrent engine's worker pool. On a multi-core host this beats
// BenchmarkMultiUserDispatchSerial by roughly the core count; results are
// bit-identical between the two paths.
func BenchmarkMultiUserDispatchSharded(b *testing.B) {
	b.ReportAllocs()
	e := benchEngine(2000, core.EngineConfig{})
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		res := e.EvaluateAll(time.Duration(i) * time.Second)
		if len(res) != 2000 {
			b.Fatal("evaluation dropped users")
		}
	}
}

// BenchmarkScaleScenario runs the full multi-user scale harness (waypoint
// churn plus evaluation sweeps) at a reduced population and reports
// evaluations per second.
func BenchmarkScaleScenario(b *testing.B) {
	b.ReportAllocs()
	cfg := experiment.DefaultScale()
	cfg.Nodes = 20_000
	cfg.Users = 2000
	cfg.RegionSide = 5000
	cfg.Rounds = 2
	for i := 0; i < b.N; i++ {
		res := experiment.RunScale(cfg)
		b.ReportMetric(float64(res.Evaluations)/res.Elapsed.Seconds(), "evals/s")
		b.ReportMetric(res.MeanArea, "mean-area-nodes")
	}
}

// BenchmarkSessionStream measures the session API end to end: a service
// over a 20k-node field streaming 200 subscribers for 30 virtual seconds
// of 1 s periods with freshness windows. Reports periods per second of
// wall time.
func BenchmarkSessionStream(b *testing.B) {
	b.ReportAllocs()
	nc := NetworkConfig{Seed: 1, Nodes: 20_000, RegionSide: 5000, SamplePeriod: time.Second}
	spec := QuerySpec{Radius: 150, Period: time.Second, Freshness: time.Second}
	for i := 0; i < b.N; i++ {
		svc, err := Open(context.Background(), nc)
		if err != nil {
			b.Fatal(err)
		}
		rng := rand.New(rand.NewSource(1))
		region := geom.Square(nc.RegionSide)
		subs := make([]*Subscription, 200)
		for j := range subs {
			p := region.UniformPoint(rng)
			subs[j], err = svc.Subscribe(context.Background(), spec, LinearMotion(p, 2, 1))
			if err != nil {
				b.Fatal(err)
			}
		}
		start := time.Now()
		for tick := 0; tick < 30; tick++ {
			if err := svc.Advance(time.Second); err != nil {
				b.Fatal(err)
			}
		}
		elapsed := time.Since(start)
		delivered := 0
		for _, sub := range subs {
			st := sub.Stats()
			delivered += st.Delivered + st.Dropped
		}
		if delivered != 200*30 {
			b.Fatalf("streamed %d periods, want %d", delivered, 200*30)
		}
		b.ReportMetric(float64(delivered)/elapsed.Seconds(), "periods/s")
		svc.Close()
	}
}

// BenchmarkChurnScenario runs the dynamic-membership harness (streaming
// temporal evaluation with users joining and leaving) at a reduced
// population and reports evaluations per second.
func BenchmarkChurnScenario(b *testing.B) {
	b.ReportAllocs()
	cfg := experiment.DefaultChurn()
	cfg.Nodes = 2000
	cfg.RegionSide = 1000
	cfg.Static = 20
	cfg.Churners = 40
	cfg.Duration = 30 * time.Second
	for i := 0; i < b.N; i++ {
		res, err := experiment.RunChurn(cfg)
		if err != nil {
			b.Fatal(err)
		}
		b.ReportMetric(float64(res.Evaluations)/res.Elapsed.Seconds(), "evals/s")
		b.ReportMetric(res.MeanFresh, "fresh-sensors")
	}
}

// benchAdvanceService opens a service and loads it with subscribers, all
// sharing one period. The field density matches the paper-scale workload
// (~90 nodes per query area), so the dense benchmark measures realistic
// per-period evaluation while the idle benchmark isolates scheduling.
func benchAdvanceService(b *testing.B, subscribers int, period time.Duration, cfg ServiceConfig) *Service {
	b.Helper()
	nc := NetworkConfig{
		Seed: 1, Nodes: 5000, RegionSide: 2000,
		SamplePeriod: time.Second, Service: cfg,
	}
	svc, err := Open(context.Background(), nc)
	if err != nil {
		b.Fatal(err)
	}
	b.Cleanup(func() { svc.Close() })
	rng := rand.New(rand.NewSource(2))
	region := geom.Square(nc.RegionSide)
	spec := QuerySpec{Radius: 150, Period: period}
	for i := 0; i < subscribers; i++ {
		p := region.UniformPoint(rng)
		if _, err := svc.Subscribe(context.Background(), spec, StaticPosition(p)); err != nil {
			b.Fatal(err)
		}
	}
	return svc
}

// BenchmarkAdvanceIdle measures an Advance tick on which no period is due:
// 5k subscribers with hour-long periods, stepped 1 µs at a time. With the
// due-period scheduler this must be O(1) — independent of the subscriber
// count — where the pre-scheduler Advance scanned and sorted all 5k ids
// every tick.
func BenchmarkAdvanceIdle(b *testing.B) {
	b.ReportAllocs()
	svc := benchAdvanceService(b, 5000, time.Hour, ServiceConfig{})
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if err := svc.Advance(time.Microsecond); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkAdvanceDense is the opposite extreme: every subscriber's period
// comes due on every tick, so the whole population is evaluated per
// Advance, fanned across the worker pool.
func BenchmarkAdvanceDense(b *testing.B) {
	b.ReportAllocs()
	svc := benchAdvanceService(b, 1000, time.Second, ServiceConfig{})
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if err := svc.Advance(time.Second); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkAdvanceDenseSerial is BenchmarkAdvanceDense pinned to one
// worker: the serial-pump baseline the parallel dispatch is measured
// against.
func BenchmarkAdvanceDenseSerial(b *testing.B) {
	b.ReportAllocs()
	svc := benchAdvanceService(b, 1000, time.Second, ServiceConfig{Workers: 1})
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if err := svc.Advance(time.Second); err != nil {
			b.Fatal(err)
		}
	}
}

// benchPrefetchService opens a sleepy-field service (3 s duty cycle) and
// loads it with moving subscribers under the given prefetch strategy, all
// sharing one period — the planner-path analogue of benchAdvanceService.
func benchPrefetchService(b *testing.B, subscribers int, period time.Duration, strat Strategy) *Service {
	b.Helper()
	nc := NetworkConfig{
		Seed: 1, Nodes: 5000, RegionSide: 2000,
		SamplePeriod: 3 * time.Second,
	}
	svc, err := Open(context.Background(), nc)
	if err != nil {
		b.Fatal(err)
	}
	b.Cleanup(func() { svc.Close() })
	rng := rand.New(rand.NewSource(2))
	region := geom.Square(nc.RegionSide)
	spec := QuerySpec{Radius: 150, Period: period, Freshness: time.Second, Strategy: strat}
	for i := 0; i < subscribers; i++ {
		p := region.UniformPoint(rng)
		if _, err := svc.Subscribe(context.Background(), spec, LinearMotion(p, 2, 1)); err != nil {
			b.Fatal(err)
		}
	}
	return svc
}

// BenchmarkAdvancePrefetch measures the planner's cost on the Advance hot
// path for each strategy, in both regimes: dense (every subscriber's period
// due per tick, so each evaluation runs the per-query sampler and plan
// lookups) and idle (nothing due, pinning that planners add nothing to the
// O(1) scheduling path).
func BenchmarkAdvancePrefetch(b *testing.B) {
	strategies := []struct {
		name  string
		strat Strategy
	}{
		{"OnDemand", OnDemandStrategy()},
		{"JIT", JITStrategy()},
		{"Greedy", GreedyStrategy(0)},
	}
	for _, s := range strategies {
		b.Run(s.name+"Dense", func(b *testing.B) {
			b.ReportAllocs()
			svc := benchPrefetchService(b, 500, time.Second, s.strat)
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				if err := svc.Advance(time.Second); err != nil {
					b.Fatal(err)
				}
			}
		})
		b.Run(s.name+"Idle", func(b *testing.B) {
			b.ReportAllocs()
			svc := benchPrefetchService(b, 2000, time.Hour, s.strat)
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				if err := svc.Advance(time.Microsecond); err != nil {
					b.Fatal(err)
				}
			}
		})
	}
}

// BenchmarkAdvanceCorridor measures the corridor cache on the Advance hot
// path: the same sleepy-field workload as BenchmarkAdvancePrefetch under
// JIT, with a 3-boundary corridor staging node snapshots along the exact
// synthesized profiles. Dense measures warm staged evaluation plus the
// staging work itself; idle pins that the corridor adds nothing (and
// allocates nothing) to the O(1) scheduling path.
func BenchmarkAdvanceCorridor(b *testing.B) {
	spec := func() Strategy { return JITStrategy() }
	corridorOpt := func(q *QuerySpec) {
		q.Corridor = CorridorSpec{Lookahead: 3, ErrorModel: ErrorModel{Base: 5}}
	}
	open := func(b *testing.B, subscribers int, period time.Duration) *Service {
		b.Helper()
		nc := NetworkConfig{
			Seed: 1, Nodes: 5000, RegionSide: 2000,
			SamplePeriod: 3 * time.Second,
		}
		svc, err := Open(context.Background(), nc)
		if err != nil {
			b.Fatal(err)
		}
		b.Cleanup(func() { svc.Close() })
		rng := rand.New(rand.NewSource(2))
		region := geom.Square(nc.RegionSide)
		q := QuerySpec{Radius: 150, Period: period, Freshness: time.Second, Strategy: spec()}
		corridorOpt(&q)
		for i := 0; i < subscribers; i++ {
			p := region.UniformPoint(rng)
			if _, err := svc.Subscribe(context.Background(), q, LinearMotion(p, 2, 1)); err != nil {
				b.Fatal(err)
			}
		}
		return svc
	}
	b.Run("Dense", func(b *testing.B) {
		b.ReportAllocs()
		svc := open(b, 500, time.Second)
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			if err := svc.Advance(time.Second); err != nil {
				b.Fatal(err)
			}
		}
	})
	b.Run("Idle", func(b *testing.B) {
		b.ReportAllocs()
		svc := open(b, 2000, time.Hour)
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			if err := svc.Advance(time.Microsecond); err != nil {
				b.Fatal(err)
			}
		}
	})
}

// benchPyramidService opens a dense service and loads it with large-radius
// static subscribers sharing one period, so every boundary ingests one
// pyramid epoch and serves the whole population from it. Radius 900 over a
// 2000 m region keeps each disk clear of the unbounded edge cells while
// covering ~64 % of the field — the regime where tile decomposition pays.
func benchPyramidService(b *testing.B, subscribers int, period time.Duration) *Service {
	b.Helper()
	nc := NetworkConfig{
		Seed: 1, Nodes: 5000, RegionSide: 2000,
		SamplePeriod: time.Second,
	}
	svc, err := Open(context.Background(), nc)
	if err != nil {
		b.Fatal(err)
	}
	b.Cleanup(func() { svc.Close() })
	rng := rand.New(rand.NewSource(2))
	spec := QuerySpec{Radius: 900, Period: period}
	for i := 0; i < subscribers; i++ {
		p := geomPt(980+40*rng.Float64(), 980+40*rng.Float64())
		if _, err := svc.Subscribe(context.Background(), spec, StaticPosition(p)); err != nil {
			b.Fatal(err)
		}
	}
	return svc
}

// BenchmarkAdvancePyramid measures the aggregate tile pyramid on the
// Advance hot path. Dense makes every subscriber's period due each tick, so
// one epoch ingest (O(nodes)) is amortized over the population and each
// serve touches only covered-tile partials plus the boundary fringe —
// O(perimeter + log area) instead of the cold scan's O(area). The reported
// visit-advantage metric is ServedAreaNodes / (NodesIngested + FringeNodes),
// the factor by which pyramid serves beat the node visits a flat scan would
// have spent on the same evaluations. Idle pins that attached pyramids add
// nothing — and allocate nothing — on ticks where no period is due.
func BenchmarkAdvancePyramid(b *testing.B) {
	b.Run("Dense", func(b *testing.B) {
		b.ReportAllocs()
		svc := benchPyramidService(b, 300, time.Second)
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			if err := svc.Advance(time.Second); err != nil {
				b.Fatal(err)
			}
		}
		b.StopTimer()
		ps, _ := svc.PyramidStats()
		if ps.Served == 0 {
			b.Fatal("no pyramid serves: the aggregate index never attached")
		}
		if miss := ps.MissNoEpoch + ps.MissFreshness + ps.MissVersion; miss != 0 {
			b.Fatalf("%d pyramid misses on a static dense workload", miss)
		}
		visits := ps.NodesIngested + ps.FringeNodes
		b.ReportMetric(float64(ps.ServedAreaNodes)/float64(visits), "visit-advantage")
		b.ReportMetric(float64(ps.Served)/float64(b.N), "serves/op")
	})
	b.Run("Idle", func(b *testing.B) {
		b.ReportAllocs()
		svc := benchPyramidService(b, 2000, time.Hour)
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			if err := svc.Advance(time.Microsecond); err != nil {
				b.Fatal(err)
			}
		}
	})
}

// benchAdvance1MService opens a service carrying `subscribers` static
// subscriptions for the million-subscriber Advance benchmarks. Radius 25
// keeps each query disk to a handful of nodes (the cost under measurement
// is the scheduler and delivery machinery, not spatial evaluation) and
// below the pyramid attach threshold; result buffers of 1 keep the
// million result channels from dominating memory.
func benchAdvance1MService(b *testing.B, subscribers int, period time.Duration, cfg ServiceConfig) *Service {
	b.Helper()
	nc := NetworkConfig{
		Seed: 1, Nodes: 5000, RegionSide: 2000,
		SamplePeriod: time.Second, Service: cfg,
	}
	svc, err := Open(context.Background(), nc, WithResultBuffer(1))
	if err != nil {
		b.Fatal(err)
	}
	b.Cleanup(func() { svc.Close() })
	rng := rand.New(rand.NewSource(2))
	region := geom.Square(nc.RegionSide)
	spec := QuerySpec{Radius: 25, Period: period}
	for i := 0; i < subscribers; i++ {
		p := region.UniformPoint(rng)
		if _, err := svc.Subscribe(context.Background(), spec, StaticPosition(p)); err != nil {
			b.Fatal(err)
		}
	}
	return svc
}

// BenchmarkAdvance1M is the ROADMAP item-1 target at full scale: one
// million live subscribers on one service.
//
// Idle steps the clock 1 µs at a time with every period an hour out —
// the striped scheduler's lock-free head scan must keep the tick O(stripes)
// and allocation-free, and the benchmark hard-fails (not just reports) if
// the timed loop allocates at all, so `-benchtime=1x` in CI gates the
// invariant rather than asserting it locally.
//
// Dense makes all million periods due every op: PopDue's k-way merge,
// the parallel evaluation fan-out with per-worker batched re-arms, and the
// streaming delivery merge all at full width. DenseSerial is the same
// workload pinned to one worker — the scaling denominator, so
// Dense/DenseSerial measures what Workers>1 buys end to end (on a
// single-core host the two tie).
func BenchmarkAdvance1M(b *testing.B) {
	const subscribers = 1_000_000
	b.Run("Idle", func(b *testing.B) {
		b.ReportAllocs()
		svc := benchAdvance1MService(b, subscribers, time.Hour, ServiceConfig{})
		var before, after runtime.MemStats
		runtime.ReadMemStats(&before)
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			if err := svc.Advance(time.Microsecond); err != nil {
				b.Fatal(err)
			}
		}
		b.StopTimer()
		runtime.ReadMemStats(&after)
		// bench-compare exempts near-zero alloc baselines from its gate, so
		// the 0-alloc invariant is enforced here, where it cannot drift.
		if allocs := after.Mallocs - before.Mallocs; allocs != 0 {
			b.Fatalf("idle Advance at 1M subscribers allocated %d times over %d ops; the 0-alloc idle invariant is broken", allocs, b.N)
		}
	})
	dense := func(cfg ServiceConfig) func(*testing.B) {
		return func(b *testing.B) {
			b.ReportAllocs()
			svc := benchAdvance1MService(b, subscribers, time.Second, cfg)
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				if err := svc.Advance(time.Second); err != nil {
					b.Fatal(err)
				}
			}
			b.StopTimer()
			st := svc.Stats()
			if got, want := st.Delivered+st.Dropped, uint64(b.N)*subscribers; got != want {
				b.Fatalf("evaluated %d periods, want %d — the schedule lost subscribers", got, want)
			}
		}
	}
	b.Run("Dense", dense(ServiceConfig{}))
	b.Run("DenseSerial", dense(ServiceConfig{Workers: 1}))
}

// BenchmarkExtensionTwoUsers measures two concurrent mobile users sharing
// the network — the multi-user load the Section 5 contention analysis
// anticipates. Reports each user's success ratio.
func BenchmarkExtensionTwoUsers(b *testing.B) {
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		sc := experiment.Default().WithDuration(120 * time.Second)
		sc.SleepPeriod = 9 * time.Second
		rs := experiment.RunMulti(sc, []experiment.UserSpec{
			{QueryID: 1, Scheme: core.SchemeJIT, Start: geomPt(50, 100), Velocity: geomV(4, 0)},
			{QueryID: 2, Scheme: core.SchemeJIT, Start: geomPt(400, 350), Velocity: geomV(-4, 0)},
		})
		b.ReportMetric(rs[0].SuccessRatio, "user1-success")
		b.ReportMetric(rs[1].SuccessRatio, "user2-success")
	}
}
