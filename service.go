package mobiquery

import (
	"context"
	"fmt"
	"math/rand"
	"sync"
	"sync/atomic"
	"time"

	"mobiquery/internal/core"
	"mobiquery/internal/geom"
	"mobiquery/internal/obs"
	"mobiquery/internal/pyramid"
	"mobiquery/internal/radio"
)

// pyramidMinRadiusCells is the attach threshold for the aggregate tile
// pyramid: an on-demand subscription uses the pyramid when its query radius
// spans at least this many index cells (or it asked for a lookback Window).
// Below it the disk covers too few cells for tile decomposition to beat the
// flat scan it would replace.
const pyramidMinRadiusCells = 6

// NetworkConfig describes the sensor field a Service runs over: how many
// nodes, where, what they measure, and how often each refreshes its
// reading. Construct with DefaultNetworkConfig and override as needed.
type NetworkConfig struct {
	// Seed makes node placement and sampling phases reproducible.
	Seed int64
	// Nodes sensors are deployed uniformly over a RegionSide × RegionSide
	// square (m).
	Nodes      int
	RegionSide float64
	// SamplePeriod is how often each sensor refreshes its reading — the
	// duty-cycle analogue the freshness window is measured against. Nodes
	// sample out of phase with one another (deterministically from Seed)
	// unless WithAlignedSampling is given. Zero selects 1 s.
	SamplePeriod time.Duration
	// Field is what the sensors measure. Nil selects UniformField(20),
	// the paper's default reading.
	Field Field
	// Service sizes the concurrent query engine.
	Service ServiceConfig
}

// DefaultNetworkConfig returns the paper's Section 6.1 field: 200 nodes
// over 450 m × 450 m, sampling once per second.
func DefaultNetworkConfig() NetworkConfig {
	return NetworkConfig{
		Seed:         1,
		Nodes:        200,
		RegionSide:   450,
		SamplePeriod: time.Second,
	}
}

// Validate reports configuration errors without opening anything.
func (nc NetworkConfig) Validate() error {
	switch {
	case nc.Nodes <= 0:
		return fmt.Errorf("mobiquery: network Nodes must be positive, got %d", nc.Nodes)
	case nc.RegionSide <= 0:
		return fmt.Errorf("mobiquery: network RegionSide must be positive, got %v", nc.RegionSide)
	case nc.SamplePeriod < 0:
		return fmt.Errorf("mobiquery: network SamplePeriod must be non-negative, got %v", nc.SamplePeriod)
	case nc.Service.Shards < 0 || nc.Service.Workers < 0:
		return fmt.Errorf("mobiquery: service Shards and Workers must be non-negative")
	}
	return nil
}

func (nc NetworkConfig) withDefaults() NetworkConfig {
	if nc.SamplePeriod == 0 {
		nc.SamplePeriod = time.Second
	}
	if nc.Field == nil {
		nc.Field = UniformField(20)
	}
	return nc
}

// serviceOptions collects the Open options.
type serviceOptions struct {
	buffer        int
	aligned       bool
	tick          time.Duration
	traceDepth    int
	firehoseDepth int
}

// Option customizes an opened Service.
type Option func(*serviceOptions)

// WithResultBuffer sets the per-subscription result channel capacity
// (default 16). When a subscriber falls behind and its buffer fills, new
// results are dropped and counted in SubscriptionStats.Dropped rather than
// stalling the service.
func WithResultBuffer(n int) Option {
	return func(o *serviceOptions) { o.buffer = n }
}

// WithAlignedSampling makes every node sample in phase, at exact multiples
// of NetworkConfig.SamplePeriod. Staleness then becomes an exact function
// of the deadline alone, which the Example tests rely on; the default
// (per-node random phases) is the realistic setting.
func WithAlignedSampling() Option {
	return func(o *serviceOptions) { o.aligned = true }
}

// WithTraceDepth sets how many recent period lifecycle spans each
// subscription's trace ring retains (default 16; see
// Subscription.TraceSpans). 0 disables tracing entirely — subscriptions
// then carry no ring and the per-period tracing cost is one nil check.
// The ring is allocated once at Subscribe, so tracing adds nothing to the
// Advance hot path's allocation count at any depth.
func WithTraceDepth(n int) Option {
	return func(o *serviceOptions) {
		if n < 0 {
			n = 0
		}
		o.traceDepth = n
	}
}

// WithSpanFirehose sets how many completed period spans the service-wide
// span firehose ring retains (default 4096; see Service.FirehoseSpans and
// the server's GET /v1/trace). The firehose is deliberately lossy: at
// capacity the oldest span is overwritten and counted dropped, so slow
// readers never back-pressure the tick path. 0 disables it.
func WithSpanFirehose(n int) Option {
	return func(o *serviceOptions) {
		if n < 0 {
			n = 0
		}
		o.firehoseDepth = n
	}
}

// WithRealTime drives the service clock from the wall clock: virtual time
// advances by tick every tick of real time, so subscriptions stream
// results without explicit Advance calls. Without this option the clock is
// manual — the caller advances it with Service.Advance, which is exactly
// reproducible and is what tests and the experiment harness use.
func WithRealTime(tick time.Duration) Option {
	return func(o *serviceOptions) { o.tick = tick }
}

// Service is a live MobiQuery session: a sharded concurrent query engine
// standing over a sensor field, accepting streaming query subscriptions
// from mobile users while it runs. Open it once; Subscribe and Close
// subscriptions freely while other subscribers keep streaming — one
// subscriber's churn never changes another's results.
//
// The service runs on virtual time. By default the clock is manual
// (Advance); WithRealTime ties it to the wall clock. All methods are safe
// for concurrent use.
type Service struct {
	cfg    NetworkConfig
	opts   serviceOptions
	region geom.Rect
	cell   float64
	engine *core.QueryEngine

	// obs is the service's instrumentation: metric families registered at
	// Open so every hot-path record is a bare atomic update (observe.go).
	obs *svcObs

	// spans is the service-wide span firehose every completed period span
	// is published into (FirehoseSpans, GET /v1/trace); nil when opened
	// with WithSpanFirehose(0). Ring-buffered and drop-counted — publish
	// never allocates or blocks on a reader.
	spans *obs.SpanSink

	// pyramids holds one aggregate tile pyramid per boundary class — the
	// (period, freshness, phase) tuple whose subscriptions share the exact
	// same period-boundary instants, and therefore the same epochs. Guarded
	// by mu; entries live for the life of the service (classes are few and
	// epochs bounded by each pyramid's ring).
	pyramids map[pyrKey]*pyramid.Pyramid

	// mu guards the membership state only: the subscription registry and
	// the clock. Evaluation runs outside it, so Subscribe, Close, and
	// read-only introspection never wait on an in-flight Advance batch.
	mu       sync.RWMutex
	now      time.Duration
	subs     map[uint32]*Subscription
	nextID   uint32
	closed   bool
	draining bool
	stop     chan struct{}

	// Lifetime delivery totals across every subscription, live or closed
	// (ServiceStats). Atomics: deliver runs under per-subscription locks,
	// never a service-wide one.
	totOpened    atomic.Uint64
	totClosed    atomic.Uint64
	totDelivered atomic.Uint64
	totDropped   atomic.Uint64
	totLate      atomic.Uint64

	// advMu serializes Advance calls (the clock moves one step at a time)
	// and guards the scratch buffers below, which are reused across steps
	// so a steady-state Advance allocates nothing on the scheduling path.
	// rearms holds one schedule re-arm batch per dispatch worker (created
	// on the first non-empty step); lanes and cur are the delivery merge's
	// cursor heap and per-lane positions.
	advMu  sync.Mutex
	due    []core.DueEntry
	batch  []*Subscription
	outs   [][]pendingResult
	rearms []*core.RearmBatch
	lanes  []int
	cur    []int
}

// Open stands up a Service over the configured sensor field. Configuration
// problems are reported as errors, never panics. The service is closed by
// Close or by cancellation of ctx.
func Open(ctx context.Context, nc NetworkConfig, opts ...Option) (*Service, error) {
	if err := nc.Validate(); err != nil {
		return nil, err
	}
	o := serviceOptions{buffer: 16, traceDepth: 16, firehoseDepth: 4096}
	for _, opt := range opts {
		opt(&o)
	}
	if o.buffer <= 0 {
		return nil, fmt.Errorf("mobiquery: result buffer must be positive, got %d", o.buffer)
	}
	if o.tick < 0 {
		return nil, fmt.Errorf("mobiquery: real-time tick must be non-negative, got %v", o.tick)
	}
	nc = nc.withDefaults()

	region := geom.Square(nc.RegionSide)
	cell := nc.RegionSide / 32
	engine, err := core.NewQueryEngineE(region, cell, nc.Field,
		core.EngineConfig{Shards: nc.Service.Shards, Workers: nc.Service.Workers})
	if err != nil {
		return nil, err
	}

	s := &Service{
		cfg:      nc,
		opts:     o,
		region:   region,
		cell:     cell,
		engine:   engine,
		subs:     make(map[uint32]*Subscription),
		pyramids: make(map[pyrKey]*pyramid.Pyramid),
		stop:     make(chan struct{}),
		spans:    obs.NewSpanSink(o.firehoseDepth),
	}
	engine.SetSampler(s.sampler())
	s.obs = newSvcObs(s)

	// Node placement matches the scale harness: one serial RNG drained up
	// front, so the field depends only on the seed.
	rng := rand.New(rand.NewSource(nc.Seed))
	pos := make([]geom.Point, nc.Nodes)
	for i := range pos {
		pos[i] = region.UniformPoint(rng)
	}
	engine.Dispatch(nc.Nodes, func(i int) {
		engine.UpsertNode(radio.NodeID(i), pos[i])
	})

	if ctx != nil && ctx.Done() != nil {
		go func() {
			select {
			case <-ctx.Done():
				s.Close()
			case <-s.stop:
			}
		}()
	}
	if o.tick > 0 {
		go s.runClock(o.tick)
	}
	return s, nil
}

// sampler returns the node sampling schedule: node i samples every
// SamplePeriod, with phase 0 under aligned sampling and a deterministic
// per-node offset in [0, SamplePeriod) otherwise.
func (s *Service) sampler() core.Sampler {
	period := s.cfg.SamplePeriod
	if s.opts.aligned {
		return core.ScheduleSampler(period, func(int32) time.Duration { return 0 })
	}
	seed := uint64(s.cfg.Seed)
	return core.ScheduleSampler(period, func(id int32) time.Duration {
		return time.Duration(splitmix64(seed^(uint64(uint32(id))+0x9E3779B97F4A7C15)) % uint64(period))
	})
}

// pyrKey identifies a pyramid-sharing class of subscriptions: same period,
// same freshness window, and same boundary phase (subscription time modulo
// period), so every member's period boundaries land on identical instants
// and one epoch per boundary serves them all.
type pyrKey struct {
	period time.Duration
	fresh  time.Duration
	phase  time.Duration
}

// pyramidFor returns the boundary class's shared pyramid, creating it on
// first use. Caller holds s.mu.
func (s *Service) pyramidFor(period, fresh time.Duration) (*pyramid.Pyramid, error) {
	key := pyrKey{period: period, fresh: fresh, phase: s.now % period}
	if p := s.pyramids[key]; p != nil {
		return p, nil
	}
	p, err := pyramid.New(s.engine.Index(), pyramid.Config{
		Fresh:  fresh,
		Sample: s.sampler(),
		Field:  s.cfg.Field,
	})
	if err != nil {
		return nil, err
	}
	s.pyramids[key] = p
	return p, nil
}

// PyramidStats returns the service's aggregate-pyramid ledger summed across
// every boundary class, and the number of classes instantiated so far.
func (s *Service) PyramidStats() (PyramidStats, int) {
	s.mu.RLock()
	defer s.mu.RUnlock()
	return s.pyramidTotalsLocked()
}

// pyramidTotalsLocked sums every boundary class's ledger. Caller holds
// s.mu (either mode); p.Stats() is pure atomics, so holding it is cheap.
func (s *Service) pyramidTotalsLocked() (PyramidStats, int) {
	var tot PyramidStats
	for _, p := range s.pyramids {
		st := p.Stats()
		tot.Builds += st.Builds
		tot.DirtyBuilds += st.DirtyBuilds
		tot.Served += st.Served
		tot.MissNoEpoch += st.MissNoEpoch
		tot.MissFreshness += st.MissFreshness
		tot.MissVersion += st.MissVersion
		tot.NodesIngested += st.NodesIngested
		tot.FringeNodes += st.FringeNodes
		tot.ServedAreaNodes += st.ServedAreaNodes
		tot.CoveredTiles += st.CoveredTiles
		tot.FringeCells += st.FringeCells
	}
	return tot, len(s.pyramids)
}

// splitmix64 is the SplitMix64 finalizer: a tiny, well-mixed integer hash.
func splitmix64(x uint64) uint64 {
	x += 0x9E3779B97F4A7C15
	x = (x ^ (x >> 30)) * 0xBF58476D1CE4E5B9
	x = (x ^ (x >> 27)) * 0x94D049BB133111EB
	return x ^ (x >> 31)
}

// runClock is the real-time driver: one Advance(tick) per tick of wall
// time until the service closes.
func (s *Service) runClock(tick time.Duration) {
	t := time.NewTicker(tick)
	defer t.Stop()
	for {
		select {
		case <-s.stop:
			return
		case <-t.C:
			if s.Advance(tick) != nil {
				return
			}
		}
	}
}

// Now returns the service's current virtual time.
func (s *Service) Now() time.Duration {
	s.mu.RLock()
	defer s.mu.RUnlock()
	return s.now
}

// NodeCount returns the number of sensor nodes in the field.
func (s *Service) NodeCount() int { return s.engine.NodeCount() }

// Subscribers returns the number of live subscriptions. It takes only a
// read lock, so introspection never blocks Subscribe or an in-flight
// Advance.
func (s *Service) Subscribers() int {
	s.mu.RLock()
	defer s.mu.RUnlock()
	return len(s.subs)
}

// Drain puts the service into drain mode: new Subscribe calls fail while
// every existing subscription keeps streaming until it ends on its own
// (Lifetime, Close, context) — the graceful half of a shutdown. The clock
// keeps running; call Close once Subscribers reaches zero (or a grace
// period expires) to finish. Drain is idempotent and cannot be undone.
func (s *Service) Drain() {
	s.mu.Lock()
	s.draining = true
	s.mu.Unlock()
}

// Draining reports whether Drain has been called.
func (s *Service) Draining() bool {
	s.mu.RLock()
	defer s.mu.RUnlock()
	return s.draining
}

// ServiceStats is a point-in-time aggregate of the service's delivery
// ledger: the live membership plus lifetime totals accumulated across
// every subscription the service has ever carried, including closed ones.
// The totals obey Delivered + Dropped == sum of evaluated periods, the
// same accounting SubscriptionStats keeps per subscription.
type ServiceStats struct {
	// Now is the service's current virtual time; Nodes the sensor count;
	// Subscribers the live subscription count; Draining whether Drain has
	// been called.
	Now         time.Duration
	Nodes       int
	Subscribers int
	Draining    bool
	// Opened and Closed count subscriptions over the service's lifetime.
	Opened uint64
	Closed uint64
	// Delivered, Dropped, and Late total the per-subscription ledgers:
	// results handed to Results channels, results discarded against full
	// buffers, and results delivered past their deadline slack.
	Delivered uint64
	Dropped   uint64
	Late      uint64
	// PyramidClasses counts the aggregate-pyramid boundary classes the
	// service has instantiated; PyramidServes and PyramidBuilds total their
	// served evaluations and epoch ingests (see Service.PyramidStats for
	// the full ledger).
	PyramidClasses int
	PyramidServes  uint64
	PyramidBuilds  uint64
	// SchedStripes is the due-period scheduler's stripe count and SchedLen
	// its armed-entry total; SchedStripeLens breaks SchedLen down per
	// stripe (balance under load), and SchedMergeDepth is how many stripes
	// contributed to the most recent non-empty due batch — the k of its
	// k-way delivery merge.
	SchedStripes    int
	SchedLen        int
	SchedStripeLens []int
	SchedMergeDepth int
}

// Stats returns the service-wide delivery ledger. Like Subscribers it
// takes only the registry read lock, so introspection never blocks an
// in-flight Advance batch; the totals are atomics and may trail a
// concurrent delivery by an instant. Callers that snapshot repeatedly
// should use StatsInto (observe.go), which this wraps.
func (s *Service) Stats() ServiceStats {
	var st ServiceStats
	s.StatsInto(&st)
	return st
}

// Advance moves the service's virtual clock forward by d and delivers
// every query period that came due, in deadline order within each
// subscription. A period evaluated after its deadline slack — because the
// clock jumped past it in one coarse step, or because a real-time service
// stalled — is delivered marked late. Advance is exactly reproducible:
// the same configuration and call sequence yields the same results.
//
// The cost of a step is O(due): the engine's striped due-period schedule
// hands back exactly the subscriptions with a period boundary at or before
// the new time, so a tick on which nothing is due returns in constant time
// no matter how many subscribers are idle. Due subscriptions are evaluated
// in parallel across the engine's worker pool (waypoint update plus
// freshness-windowed evaluation per period), with each worker batching its
// schedule re-arms and flushing them once per stripe; the finished lanes
// are then streaming-merged and delivered serially in ascending
// (deadline, id) order, so results are byte-identical whatever the
// Shards/Workers configuration.
func (s *Service) Advance(d time.Duration) error {
	if d < 0 {
		return fmt.Errorf("mobiquery: cannot advance time backwards (%v)", d)
	}
	s.advMu.Lock()
	defer s.advMu.Unlock()
	s.mu.Lock()
	if s.closed {
		s.mu.Unlock()
		return fmt.Errorf("mobiquery: service is closed")
	}
	s.now += d
	now := s.now
	s.mu.Unlock()

	// Collect the due batch: one entry per subscription with a period
	// boundary reached, in (due, id) order. Nothing due — the common case
	// for a fine-grained clock over long-period queries — is a peek. The
	// stage stamps below are wall-clock reads and atomic histogram updates
	// only, so the instrumented idle path stays 0-alloc (bench-idle-1m).
	o := s.obs
	tickStart := time.Now()
	s.due = s.engine.PopDue(now, s.due[:0])
	popEnd := time.Now()
	o.ticks.Inc()
	o.stagePop.Observe(popEnd.Sub(tickStart).Nanoseconds())
	if len(s.due) == 0 {
		o.idleTicks.Inc()
		return nil
	}
	o.popBatch.Observe(int64(len(s.due)))
	o.mergeDepth.Observe(int64(s.engine.LastMergeDepth()))
	poppedNS := popEnd.UnixNano()
	s.batch = s.batch[:0]
	s.mu.RLock()
	for _, de := range s.due {
		// A schedule entry can outlive its subscription by one pop when a
		// Close races an evaluation re-arm; the registry is authoritative.
		if sub := s.subs[de.ID]; sub != nil {
			s.batch = append(s.batch, sub)
		}
	}
	s.mu.RUnlock()

	// Fan the due subscriptions across the worker pool. Each worker drains
	// every period of its subscription due by now into a private buffer and
	// accumulates its schedule re-arms in a private batch; subscriptions
	// are independent, so the fan-out cannot change results.
	if len(s.outs) < len(s.batch) {
		s.outs = append(s.outs, make([][]pendingResult, len(s.batch)-len(s.outs))...)
	}
	if s.rearms == nil {
		s.rearms = make([]*core.RearmBatch, s.engine.Workers())
		for i := range s.rearms {
			s.rearms[i] = s.engine.NewRearmBatch()
		}
	}
	outs, batch := s.outs[:len(s.batch)], s.batch
	rearms := s.rearms
	s.engine.DispatchWorkers(len(batch), func(worker, i int) {
		outs[i] = batch[i].collectDue(now, poppedNS, outs[i][:0], rearms[worker])
	})
	evalEnd := time.Now()
	o.stageEval.Observe(evalEnd.Sub(popEnd).Nanoseconds())
	// Flush the workers' deferred re-arms, one schedule stripe lock hold
	// per stripe per worker, so the next PopDue sees every next boundary.
	for _, rb := range rearms {
		s.engine.FlushRearms(rb)
	}
	flushEnd := time.Now()
	o.stageFlush.Observe(flushEnd.Sub(evalEnd).Nanoseconds())
	// Like the popped stamp, the flush stamp is shared by every span of
	// the step: the schedule re-arms complete once, for the whole batch.
	flushNS := flushEnd.UnixNano()

	// Deliver serially in deterministic (deadline, id) order — the same
	// total order the old collect-then-sort produced, but as a streaming
	// k-way merge: PopDue hands subscriptions out in (due, id) order and
	// each one drains its periods in ascending due, so every worker output
	// lane is already sorted and a cursor heap over the non-empty lanes
	// restores the global order in O(results · log lanes).
	if len(s.cur) < len(batch) {
		s.cur = append(s.cur, make([]int, len(batch)-len(s.cur))...)
	}
	cur := s.cur[:len(batch)]
	s.lanes = s.lanes[:0]
	for i := range outs {
		cur[i] = 0
		if len(outs[i]) > 0 {
			s.lanes = append(s.lanes, i)
		}
	}
	lanes := s.lanes
	less := func(a, b int) bool {
		pa, pb := &outs[a][cur[a]], &outs[b][cur[b]]
		if pa.due != pb.due {
			return pa.due < pb.due
		}
		return pa.sub.id < pb.sub.id
	}
	sift := func(i, n int) {
		for {
			min := i
			if l := 2*i + 1; l < n && less(lanes[l], lanes[min]) {
				min = l
			}
			if r := 2*i + 2; r < n && less(lanes[r], lanes[min]) {
				min = r
			}
			if min == i {
				return
			}
			lanes[i], lanes[min] = lanes[min], lanes[i]
			i = min
		}
	}
	n := len(lanes)
	for i := n/2 - 1; i >= 0; i-- {
		sift(i, n)
	}
	for n > 0 {
		l := lanes[0]
		p := &outs[l][cur[l]]
		if p.expire {
			s.removeSub(p.sub)
		} else {
			p.span.FlushNS = flushNS
			p.sub.deliver(&p.result, &p.span)
		}
		cur[l]++
		if cur[l] == len(outs[l]) {
			lanes[0] = lanes[n-1]
			n--
		}
		sift(0, n)
	}
	o.stageDeliver.Observe(time.Since(flushEnd).Nanoseconds())
	// Zero the pointer-holding scratch so a burst-sized batch doesn't pin
	// closed subscriptions for the life of the service. Capacities are
	// kept; only the windows used this step hold non-zero data.
	clear(s.batch)
	for i := range outs {
		clear(outs[i])
	}
	return nil
}

// FirehoseSpans appends the service-wide span firehose's buffered period
// spans to buf, oldest first, and returns the result along with the
// lifetime published and dropped span counts as of the snapshot. The
// firehose sees every completed period of every subscription (traced or
// not), ring-buffered to the WithSpanFirehose depth; with the firehose
// disabled it returns buf unchanged and zero counts. Safe for concurrent
// use with a running service.
func (s *Service) FirehoseSpans(buf []PeriodSpan) (spans []PeriodSpan, published, dropped uint64) {
	return s.spans.Snapshot(buf)
}

// removeSub unregisters sub from the service and tears it down. Safe to
// call more than once and from any goroutine.
func (s *Service) removeSub(sub *Subscription) {
	s.mu.Lock()
	delete(s.subs, sub.id)
	s.mu.Unlock()
	sub.close()
}

// Close shuts the service down: every subscription is closed (its Results
// channel drains then ends) and further Subscribe and Advance calls fail.
// Close is idempotent.
func (s *Service) Close() error {
	s.mu.Lock()
	if s.closed {
		s.mu.Unlock()
		return nil
	}
	s.closed = true
	close(s.stop)
	subs := make([]*Subscription, 0, len(s.subs))
	for _, sub := range s.subs {
		subs = append(subs, sub)
	}
	clear(s.subs)
	s.mu.Unlock()
	for _, sub := range subs {
		sub.close()
	}
	return nil
}
