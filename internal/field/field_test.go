package field

import (
	"math"
	"testing"
	"time"

	"mobiquery/internal/geom"
)

func TestUniform(t *testing.T) {
	f := Uniform{Value: 21.5}
	if got := f.Sample(geom.Pt(1, 2), 0); got != 21.5 {
		t.Errorf("Sample = %v", got)
	}
	if got := f.Sample(geom.Pt(400, 400), time.Hour); got != 21.5 {
		t.Errorf("Sample = %v", got)
	}
}

func TestGradient(t *testing.T) {
	f := Gradient{Origin: geom.Pt(0, 0), Slope: geom.V(0.1, 0), Base: 20}
	if got := f.Sample(geom.Pt(0, 0), 0); got != 20 {
		t.Errorf("base = %v", got)
	}
	if got := f.Sample(geom.Pt(100, 55), 0); math.Abs(got-30) > 1e-12 {
		t.Errorf("Sample(100,55) = %v, want 30", got)
	}
	if got := f.Sample(geom.Pt(-100, 0), 0); math.Abs(got-10) > 1e-12 {
		t.Errorf("Sample(-100,0) = %v, want 10", got)
	}
}

func TestGaussianPlumePeakAndDecay(t *testing.T) {
	f := GaussianPlume{Center: geom.Pt(100, 100), Amplitude: 500, Sigma: 30}
	if got := f.Sample(geom.Pt(100, 100), 0); got != 500 {
		t.Errorf("peak = %v, want 500", got)
	}
	near := f.Sample(geom.Pt(110, 100), 0)
	far := f.Sample(geom.Pt(200, 100), 0)
	if !(near < 500 && far < near) {
		t.Errorf("plume not decaying: near=%v far=%v", near, far)
	}
	// One sigma out: amplitude * exp(-0.5).
	want := 500 * math.Exp(-0.5)
	if got := f.Sample(geom.Pt(130, 100), 0); math.Abs(got-want) > 1e-9 {
		t.Errorf("1-sigma = %v, want %v", got, want)
	}
}

func TestGaussianPlumeDrift(t *testing.T) {
	f := GaussianPlume{Center: geom.Pt(0, 0), Amplitude: 100, Sigma: 10, Drift: geom.V(2, 0)}
	// After 50s the peak has moved to x=100.
	if got := f.Sample(geom.Pt(100, 0), 50*time.Second); got != 100 {
		t.Errorf("drifted peak = %v, want 100", got)
	}
	if got := f.Sample(geom.Pt(0, 0), 50*time.Second); got >= 1 {
		t.Errorf("old center still hot: %v", got)
	}
}

func TestSum(t *testing.T) {
	f := Sum{Uniform{Value: 20}, Gradient{Slope: geom.V(0.1, 0)}}
	if got := f.Sample(geom.Pt(10, 0), 0); math.Abs(got-21) > 1e-12 {
		t.Errorf("Sum = %v, want 21", got)
	}
	if got := (Sum{}).Sample(geom.Pt(1, 1), 0); got != 0 {
		t.Errorf("empty Sum = %v", got)
	}
}

func TestFunc(t *testing.T) {
	f := Func(func(p geom.Point, t2 time.Duration) float64 { return p.X + t2.Seconds() })
	if got := f.Sample(geom.Pt(3, 0), 2*time.Second); got != 5 {
		t.Errorf("Func = %v", got)
	}
}
