// Package field provides synthetic scalar sensor fields (temperature,
// gas concentration, ...) that nodes sample when answering queries. The
// MobiQuery protocol is agnostic to sensor semantics; these fields give the
// examples and experiments physically meaningful values, e.g. a drifting
// Gaussian hot spot standing in for the paper's wild-fire scenario.
package field

import (
	"math"

	"mobiquery/internal/geom"
	"mobiquery/internal/sim"
)

// Field yields a scalar sensor reading at any point and time.
type Field interface {
	Sample(p geom.Point, t sim.Time) float64
}

// Uniform is a constant field.
type Uniform struct {
	Value float64
}

// Sample implements Field.
func (u Uniform) Sample(geom.Point, sim.Time) float64 { return u.Value }

// Gradient is a planar ramp: Base plus Slope dotted with the offset from
// Origin. Useful for terrain-like data.
type Gradient struct {
	Origin geom.Point
	Slope  geom.Vec // units per meter
	Base   float64
}

// Sample implements Field.
func (g Gradient) Sample(p geom.Point, _ sim.Time) float64 {
	return g.Base + g.Slope.Dot(p.Sub(g.Origin))
}

// GaussianPlume is a bell-shaped hot spot of the given Amplitude and width
// Sigma whose center drifts at Drift meters/second — a toy fire front.
type GaussianPlume struct {
	Center    geom.Point
	Amplitude float64
	Sigma     float64
	Drift     geom.Vec
}

// Sample implements Field.
func (g GaussianPlume) Sample(p geom.Point, t sim.Time) float64 {
	c := g.Center.Add(g.Drift.Scale(t.Seconds()))
	d2 := p.Dist2(c)
	return g.Amplitude * math.Exp(-d2/(2*g.Sigma*g.Sigma))
}

// Sum composes fields additively.
type Sum []Field

// Sample implements Field.
func (s Sum) Sample(p geom.Point, t sim.Time) float64 {
	var v float64
	for _, f := range s {
		v += f.Sample(p, t)
	}
	return v
}

// Func adapts a plain function to the Field interface.
type Func func(p geom.Point, t sim.Time) float64

// Sample implements Field.
func (f Func) Sample(p geom.Point, t sim.Time) float64 { return f(p, t) }
