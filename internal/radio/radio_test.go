package radio

import (
	"testing"
	"time"

	"mobiquery/internal/energy"
	"mobiquery/internal/geom"
	"mobiquery/internal/sim"
)

func testMedium(eng *sim.Engine) *Medium {
	return NewMedium(eng, geom.Square(450), DefaultParams())
}

// collector records frames delivered to a node.
type collector struct{ frames []Frame }

func (c *collector) handle(f Frame) { c.frames = append(c.frames, f) }

func TestAirtime(t *testing.T) {
	p := DefaultParams() // 2 Mbps
	if got := p.Airtime(250); got != time.Millisecond {
		t.Errorf("Airtime(250B @ 2Mbps) = %v, want 1ms", got)
	}
	if got := p.Airtime(0); got <= 0 {
		t.Errorf("Airtime(0) = %v, want positive", got)
	}
}

func TestBasicDelivery(t *testing.T) {
	eng := sim.NewEngine(1)
	m := testMedium(eng)
	var a, b collector
	ra := m.Attach(0, geom.Pt(0, 0), a.handle)
	m.Attach(1, geom.Pt(50, 0), b.handle)

	eng.Schedule(0, func() { ra.Transmit(Frame{Dst: 1, Size: 100, Payload: "hi"}) })
	eng.Run(time.Second)

	if len(b.frames) != 1 {
		t.Fatalf("receiver got %d frames, want 1", len(b.frames))
	}
	f := b.frames[0]
	if f.Src != 0 || f.Dst != 1 || f.Payload != "hi" {
		t.Errorf("frame = %+v", f)
	}
	if len(a.frames) != 0 {
		t.Error("sender should not receive its own frame")
	}
	if s := m.Stats(); s.Deliveries != 1 || s.Transmissions != 1 {
		t.Errorf("stats = %+v", s)
	}
}

func TestOutOfRangeNotDelivered(t *testing.T) {
	eng := sim.NewEngine(1)
	m := testMedium(eng)
	var far collector
	ra := m.Attach(0, geom.Pt(0, 0), func(Frame) {})
	m.Attach(1, geom.Pt(106, 0), far.handle) // just beyond 105 m

	eng.Schedule(0, func() { ra.Transmit(Frame{Dst: Broadcast, Size: 100}) })
	eng.Run(time.Second)
	if len(far.frames) != 0 {
		t.Error("node beyond range received frame")
	}
}

func TestBroadcastReachesAllInRange(t *testing.T) {
	eng := sim.NewEngine(1)
	m := testMedium(eng)
	var got [3]collector
	ra := m.Attach(0, geom.Pt(100, 100), func(Frame) {})
	m.Attach(1, geom.Pt(150, 100), got[0].handle)
	m.Attach(2, geom.Pt(100, 150), got[1].handle)
	m.Attach(3, geom.Pt(100, 204), got[2].handle) // within 105

	eng.Schedule(0, func() { ra.Transmit(Frame{Dst: Broadcast, Size: 60}) })
	eng.Run(time.Second)
	for i := range got {
		if len(got[i].frames) != 1 {
			t.Errorf("node %d got %d frames, want 1", i+1, len(got[i].frames))
		}
	}
}

func TestSleepingReceiverMissesFrame(t *testing.T) {
	eng := sim.NewEngine(1)
	m := testMedium(eng)
	var b collector
	ra := m.Attach(0, geom.Pt(0, 0), func(Frame) {})
	rb := m.Attach(1, geom.Pt(50, 0), b.handle)

	eng.Schedule(0, func() {
		rb.SetOn(false)
		ra.Transmit(Frame{Dst: 1, Size: 100})
	})
	eng.Run(time.Second)
	if len(b.frames) != 0 {
		t.Error("sleeping receiver decoded a frame")
	}
	if m.Stats().MissedOff != 1 {
		t.Errorf("MissedOff = %d, want 1", m.Stats().MissedOff)
	}
}

func TestPowerOffMidReceptionCorrupts(t *testing.T) {
	eng := sim.NewEngine(1)
	m := testMedium(eng)
	var b collector
	ra := m.Attach(0, geom.Pt(0, 0), func(Frame) {})
	rb := m.Attach(1, geom.Pt(50, 0), b.handle)

	air := DefaultParams().Airtime(1000)
	eng.Schedule(0, func() { ra.Transmit(Frame{Dst: 1, Size: 1000}) })
	eng.Schedule(air/2, func() { rb.SetOn(false) })
	eng.Run(time.Second)
	if len(b.frames) != 0 {
		t.Error("receiver that slept mid-frame decoded it")
	}
}

func TestPowerOnMidTransmissionMisses(t *testing.T) {
	eng := sim.NewEngine(1)
	m := testMedium(eng)
	var b collector
	ra := m.Attach(0, geom.Pt(0, 0), func(Frame) {})
	rb := m.Attach(1, geom.Pt(50, 0), b.handle)

	air := DefaultParams().Airtime(1000)
	eng.Schedule(0, func() {
		rb.SetOn(false)
		ra.Transmit(Frame{Dst: 1, Size: 1000})
	})
	eng.Schedule(air/2, func() { rb.SetOn(true) })
	eng.Run(time.Second)
	if len(b.frames) != 0 {
		t.Error("receiver that woke mid-frame decoded it")
	}
}

func TestCollisionCorruptsBoth(t *testing.T) {
	eng := sim.NewEngine(1)
	m := testMedium(eng)
	var mid collector
	ra := m.Attach(0, geom.Pt(0, 100), func(Frame) {})
	rb := m.Attach(1, geom.Pt(200, 100), func(Frame) {})
	m.Attach(2, geom.Pt(100, 100), mid.handle) // in range of both senders

	// Hidden terminals: senders are out of range of each other (200 m apart)
	// and transmit overlapping frames.
	eng.Schedule(0, func() { ra.Transmit(Frame{Dst: 2, Size: 1000}) })
	eng.Schedule(DefaultParams().Airtime(1000)/2, func() { rb.Transmit(Frame{Dst: 2, Size: 1000}) })
	eng.Run(time.Second)
	if len(mid.frames) != 0 {
		t.Errorf("collision still delivered %d frames", len(mid.frames))
	}
	if m.Stats().Collisions != 2 {
		t.Errorf("Collisions = %d, want 2", m.Stats().Collisions)
	}
}

func TestNonOverlappingFramesBothDelivered(t *testing.T) {
	eng := sim.NewEngine(1)
	m := testMedium(eng)
	var mid collector
	ra := m.Attach(0, geom.Pt(0, 100), func(Frame) {})
	rb := m.Attach(1, geom.Pt(200, 100), func(Frame) {})
	m.Attach(2, geom.Pt(100, 100), mid.handle)

	air := DefaultParams().Airtime(1000)
	eng.Schedule(0, func() { ra.Transmit(Frame{Dst: 2, Size: 1000}) })
	eng.Schedule(air+2*DefaultParams().PropagationDelay, func() { rb.Transmit(Frame{Dst: 2, Size: 1000}) })
	eng.Run(time.Second)
	if len(mid.frames) != 2 {
		t.Errorf("got %d frames, want 2", len(mid.frames))
	}
}

func TestTransmitWhileReceivingMisses(t *testing.T) {
	eng := sim.NewEngine(1)
	m := testMedium(eng)
	var b collector
	ra := m.Attach(0, geom.Pt(0, 0), func(Frame) {})
	rb := m.Attach(1, geom.Pt(50, 0), b.handle)

	air := DefaultParams().Airtime(1000)
	eng.Schedule(0, func() { ra.Transmit(Frame{Dst: 1, Size: 1000}) })
	// Receiver starts its own transmission mid-reception: half duplex loses
	// the inbound frame.
	eng.Schedule(air/2, func() { rb.Transmit(Frame{Dst: 0, Size: 10}) })
	eng.Run(time.Second)
	if len(b.frames) != 0 {
		t.Error("half-duplex node decoded while transmitting")
	}
}

func TestReceiverBusyTransmittingAtStartMisses(t *testing.T) {
	eng := sim.NewEngine(1)
	m := testMedium(eng)
	var b collector
	ra := m.Attach(0, geom.Pt(0, 0), func(Frame) {})
	rb := m.Attach(1, geom.Pt(50, 0), b.handle)

	eng.Schedule(0, func() { rb.Transmit(Frame{Dst: Broadcast, Size: 2000}) })
	eng.Schedule(time.Microsecond, func() { ra.Transmit(Frame{Dst: 1, Size: 10}) })
	eng.Run(time.Second)
	if len(b.frames) != 0 {
		t.Error("node transmitting at frame start decoded it")
	}
	if m.Stats().MissedBusy != 1 {
		t.Errorf("MissedBusy = %d, want 1", m.Stats().MissedBusy)
	}
}

func TestCarrierSense(t *testing.T) {
	eng := sim.NewEngine(1)
	m := testMedium(eng)
	ra := m.Attach(0, geom.Pt(0, 0), func(Frame) {})
	rb := m.Attach(1, geom.Pt(50, 0), func(Frame) {})
	rc := m.Attach(2, geom.Pt(300, 0), func(Frame) {})

	var during, after, farDuring bool
	air := DefaultParams().Airtime(1000)
	eng.Schedule(0, func() { ra.Transmit(Frame{Dst: Broadcast, Size: 1000}) })
	eng.Schedule(air/2, func() {
		during = rb.CarrierSense()
		farDuring = rc.CarrierSense()
		if !ra.CarrierSense() {
			t.Error("sender should sense its own transmission")
		}
	})
	eng.Schedule(air*2, func() { after = rb.CarrierSense() })
	eng.Run(time.Second)
	if !during {
		t.Error("in-range node did not sense ongoing transmission")
	}
	if farDuring {
		t.Error("out-of-range node sensed transmission")
	}
	if after {
		t.Error("carrier sensed after transmission ended")
	}
}

func TestCarrierSenseWhileOff(t *testing.T) {
	eng := sim.NewEngine(1)
	m := testMedium(eng)
	ra := m.Attach(0, geom.Pt(0, 0), func(Frame) {})
	rb := m.Attach(1, geom.Pt(50, 0), func(Frame) {})
	eng.Schedule(0, func() {
		rb.SetOn(false)
		ra.Transmit(Frame{Dst: Broadcast, Size: 1000})
	})
	eng.Schedule(time.Microsecond*10, func() {
		if rb.CarrierSense() {
			t.Error("powered-off radio sensed carrier")
		}
	})
	eng.Run(time.Second)
}

func TestMoveChangesConnectivity(t *testing.T) {
	eng := sim.NewEngine(1)
	m := testMedium(eng)
	var b collector
	ra := m.Attach(0, geom.Pt(0, 0), func(Frame) {})
	rb := m.Attach(1, geom.Pt(300, 0), b.handle)

	if m.InRange(0, 1) {
		t.Error("nodes 300m apart reported in range")
	}
	eng.Schedule(0, func() {
		rb.Move(geom.Pt(60, 0))
		ra.Transmit(Frame{Dst: 1, Size: 100})
	})
	eng.Run(time.Second)
	if !m.InRange(0, 1) {
		t.Error("nodes 60m apart reported out of range")
	}
	if len(b.frames) != 1 {
		t.Errorf("moved node got %d frames, want 1", len(b.frames))
	}
}

func TestNodesWithin(t *testing.T) {
	eng := sim.NewEngine(1)
	m := testMedium(eng)
	m.Attach(0, geom.Pt(100, 100), func(Frame) {})
	m.Attach(1, geom.Pt(120, 100), func(Frame) {})
	m.Attach(2, geom.Pt(400, 400), func(Frame) {})
	ids := m.NodesWithin(nil, geom.Pt(110, 100), 30)
	if len(ids) != 2 {
		t.Errorf("NodesWithin = %v, want 2 nodes", ids)
	}
}

func TestEnergyMetering(t *testing.T) {
	eng := sim.NewEngine(1)
	m := testMedium(eng)
	ra := m.Attach(0, geom.Pt(0, 0), func(Frame) {})
	rb := m.Attach(1, geom.Pt(50, 0), func(Frame) {})
	ma := energy.NewMeter(energy.Cabletron80211(), eng.Now, energy.ModeIdle)
	mb := energy.NewMeter(energy.Cabletron80211(), eng.Now, energy.ModeIdle)
	ra.SetMeter(ma)
	rb.SetMeter(mb)

	air := DefaultParams().Airtime(1000) // 4 ms at 2 Mbps
	eng.Schedule(0, func() { ra.Transmit(Frame{Dst: 1, Size: 1000}) })
	eng.Run(10 * time.Millisecond)

	if got := ma.ModeTime(energy.ModeTx); got != air {
		t.Errorf("sender tx time = %v, want %v", got, air)
	}
	wantRx := air + DefaultParams().PropagationDelay
	if got := mb.ModeTime(energy.ModeRx); got != wantRx {
		t.Errorf("receiver rx time = %v, want %v", got, wantRx)
	}
	if got := mb.ModeTime(energy.ModeIdle); got != 10*time.Millisecond-wantRx {
		t.Errorf("receiver idle time = %v", got)
	}
}

func TestSleepEnergyMetering(t *testing.T) {
	eng := sim.NewEngine(1)
	m := testMedium(eng)
	r := m.Attach(0, geom.Pt(0, 0), func(Frame) {})
	mt := energy.NewMeter(energy.Cabletron80211(), eng.Now, energy.ModeIdle)
	r.SetMeter(mt)
	eng.Schedule(time.Second, func() { r.SetOn(false) })
	eng.Schedule(3*time.Second, func() { r.SetOn(true) })
	eng.Run(4 * time.Second)
	if got := mt.ModeTime(energy.ModeSleep); got != 2*time.Second {
		t.Errorf("sleep time = %v, want 2s", got)
	}
	if got := mt.ModeTime(energy.ModeIdle); got != 2*time.Second {
		t.Errorf("idle time = %v, want 2s", got)
	}
}

func TestTransmitWhileOffPanics(t *testing.T) {
	eng := sim.NewEngine(1)
	m := testMedium(eng)
	r := m.Attach(0, geom.Pt(0, 0), func(Frame) {})
	eng.Schedule(0, func() {
		r.SetOn(false)
		defer func() {
			if recover() == nil {
				t.Error("Transmit while off should panic")
			}
		}()
		r.Transmit(Frame{Dst: Broadcast, Size: 10})
	})
	eng.Run(time.Second)
}

func TestDoubleTransmitPanics(t *testing.T) {
	eng := sim.NewEngine(1)
	m := testMedium(eng)
	r := m.Attach(0, geom.Pt(0, 0), func(Frame) {})
	eng.Schedule(0, func() {
		r.Transmit(Frame{Dst: Broadcast, Size: 1000})
		defer func() {
			if recover() == nil {
				t.Error("double Transmit should panic")
			}
		}()
		r.Transmit(Frame{Dst: Broadcast, Size: 1000})
	})
	eng.Run(time.Second)
}

func TestDuplicateAttachPanics(t *testing.T) {
	eng := sim.NewEngine(1)
	m := testMedium(eng)
	m.Attach(0, geom.Pt(0, 0), func(Frame) {})
	defer func() {
		if recover() == nil {
			t.Error("duplicate Attach should panic")
		}
	}()
	m.Attach(0, geom.Pt(1, 1), func(Frame) {})
}

func TestThreeWayCollision(t *testing.T) {
	eng := sim.NewEngine(1)
	m := testMedium(eng)
	var mid collector
	r1 := m.Attach(1, geom.Pt(0, 100), func(Frame) {})
	r2 := m.Attach(2, geom.Pt(200, 100), func(Frame) {})
	r3 := m.Attach(3, geom.Pt(100, 200), func(Frame) {})
	m.Attach(0, geom.Pt(100, 100), mid.handle)

	air := DefaultParams().Airtime(1000)
	eng.Schedule(0, func() { r1.Transmit(Frame{Dst: 0, Size: 1000}) })
	eng.Schedule(air/4, func() { r2.Transmit(Frame{Dst: 0, Size: 1000}) })
	eng.Schedule(air/2, func() { r3.Transmit(Frame{Dst: 0, Size: 1000}) })
	eng.Run(time.Second)
	if len(mid.frames) != 0 {
		t.Errorf("three-way collision delivered %d frames", len(mid.frames))
	}
}

func BenchmarkTransmitBroadcast(b *testing.B) {
	eng := sim.NewEngine(1)
	m := testMedium(eng)
	rng := eng.RNG("bench")
	region := geom.Square(450)
	for i := 0; i < 200; i++ {
		m.Attach(NodeID(i), region.UniformPoint(rng), func(Frame) {})
	}
	src := m.Radio(0)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		eng.Schedule(eng.Now(), func() { src.Transmit(Frame{Dst: Broadcast, Size: 60}) })
		eng.Run(eng.Now() + time.Millisecond)
	}
}
