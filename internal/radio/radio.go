// Package radio models the shared wireless medium of the sensor network.
//
// The model is the classic unit-disk + collision abstraction used by ns-2
// era WSN studies: a frame transmitted by a node occupies the channel for
// size*8/bandwidth seconds and is heard by every powered-on node within the
// communication range. If two receptions overlap at a receiver, both are
// corrupted (no capture effect). A node that is transmitting, or whose radio
// is off for any part of a reception, misses the frame.
//
// The medium also provides physical carrier sense, which the MAC layer uses
// for CSMA, and drives per-node energy metering (tx/rx/idle/sleep).
package radio

import (
	"fmt"
	"time"

	"mobiquery/internal/energy"
	"mobiquery/internal/geom"
	"mobiquery/internal/sim"
)

// NodeID identifies a node attached to the medium. IDs are small dense
// non-negative integers assigned by the caller.
type NodeID int32

// Broadcast is the destination address for one-hop broadcast frames.
const Broadcast NodeID = -1

// Frame is a unit of transmission on the medium. Payload is opaque to the
// radio; Size (bytes) determines airtime. The MAC layer filters destination
// addresses; the radio delivers every decodable frame to the handler.
type Frame struct {
	Src     NodeID
	Dst     NodeID
	Size    int
	Payload any
}

// Params configures the physical layer.
type Params struct {
	// Range is the communication radius in meters (paper: 105 m).
	Range float64
	// Bandwidth is the link rate in bits per second (paper: 2 Mbps).
	Bandwidth float64
	// PropagationDelay is the fixed per-frame propagation latency.
	PropagationDelay time.Duration
}

// DefaultParams returns the physical-layer settings from the paper's
// evaluation (Section 6.1).
func DefaultParams() Params {
	return Params{Range: 105, Bandwidth: 2e6, PropagationDelay: time.Microsecond}
}

// Airtime returns how long a frame of size bytes occupies the channel.
func (p Params) Airtime(size int) time.Duration {
	if size <= 0 {
		size = 1
	}
	return time.Duration(float64(size*8) / p.Bandwidth * float64(time.Second))
}

// Stats aggregates medium-level counters across a run.
type Stats struct {
	Transmissions uint64 // frames put on the air
	Deliveries    uint64 // successful frame receptions
	Collisions    uint64 // receptions corrupted by overlap
	MissedOff     uint64 // receptions missed because the radio was off
	MissedBusy    uint64 // receptions missed because the receiver was transmitting
}

// Medium is the shared channel connecting all radios. Construct with
// NewMedium; the zero value is unusable.
type Medium struct {
	eng    *sim.Engine
	params Params
	region geom.Rect
	grid   *geom.Grid
	radios map[NodeID]*Radio
	active []*transmission
	stats  Stats
	buf    []int32 // scratch for range queries
}

// NewMedium creates a medium over the given deployment region.
func NewMedium(eng *sim.Engine, region geom.Rect, params Params) *Medium {
	if params.Range <= 0 || params.Bandwidth <= 0 {
		panic("radio: Range and Bandwidth must be positive")
	}
	return &Medium{
		eng:    eng,
		params: params,
		region: region,
		grid:   geom.NewGrid(region, params.Range),
		radios: make(map[NodeID]*Radio),
	}
}

// Params returns the physical-layer configuration.
func (m *Medium) Params() Params { return m.params }

// Region returns the deployment region the medium spans.
func (m *Medium) Region() geom.Rect { return m.region }

// Stats returns a snapshot of the medium counters.
func (m *Medium) Stats() Stats { return m.stats }

// Attach creates a radio for node id at position pos. The handler is invoked
// for every successfully decoded frame; it may be nil and set later with
// OnFrame (frames decoded before then are dropped). Radios start powered on.
// Attaching a duplicate id panics.
func (m *Medium) Attach(id NodeID, pos geom.Point, handler func(Frame)) *Radio {
	if id < 0 {
		panic(fmt.Sprintf("radio: invalid node id %d", id))
	}
	if _, dup := m.radios[id]; dup {
		panic(fmt.Sprintf("radio: duplicate node id %d", id))
	}
	r := &Radio{id: id, m: m, pos: pos, on: true, handler: handler}
	m.radios[id] = r
	m.grid.Insert(int32(id), pos)
	return r
}

// Radio returns the radio attached as id, or nil.
func (m *Medium) Radio(id NodeID) *Radio { return m.radios[id] }

// InRange reports whether nodes a and b are currently within communication
// range of each other.
func (m *Medium) InRange(a, b NodeID) bool {
	ra, rb := m.radios[a], m.radios[b]
	if ra == nil || rb == nil {
		return false
	}
	return ra.pos.Within(rb.pos, m.params.Range)
}

// NodesWithin appends the ids of all attached nodes within radius r of p.
func (m *Medium) NodesWithin(dst []NodeID, p geom.Point, r float64) []NodeID {
	m.buf = m.grid.Within(m.buf[:0], p, r)
	for _, id := range m.buf {
		dst = append(dst, NodeID(id))
	}
	return dst
}

// transmission is one in-flight frame.
type transmission struct {
	src        *Radio
	frame      Frame
	receptions []*reception
	done       bool
}

// reception tracks one (transmission, receiver) pair.
type reception struct {
	rx        *Radio
	corrupted bool
}

// Radio is a node's attachment point to the medium. All methods must be
// called from within the simulation loop.
type Radio struct {
	id           NodeID
	m            *Medium
	pos          geom.Point
	on           bool
	transmitting bool
	incoming     []*reception
	handler      func(Frame)
	meter        *energy.Meter
}

// ID returns the node id of this radio.
func (r *Radio) ID() NodeID { return r.id }

// OnFrame replaces the frame delivery handler. The MAC layer installs
// itself here after attachment.
func (r *Radio) OnFrame(fn func(Frame)) { r.handler = fn }

// Airtime returns how long a frame of size bytes occupies the channel on
// this radio's medium.
func (r *Radio) Airtime(size int) time.Duration { return r.m.params.Airtime(size) }

// PropagationDelay returns the medium's fixed per-frame propagation latency.
func (r *Radio) PropagationDelay() time.Duration { return r.m.params.PropagationDelay }

// Pos returns the radio's current position.
func (r *Radio) Pos() geom.Point { return r.pos }

// On reports whether the radio is powered.
func (r *Radio) On() bool { return r.on }

// Transmitting reports whether the radio is mid-transmission.
func (r *Radio) Transmitting() bool { return r.transmitting }

// SetMeter attaches an energy meter that will track this radio's mode.
func (r *Radio) SetMeter(mt *energy.Meter) {
	r.meter = mt
	r.updateMode()
}

// Meter returns the attached energy meter, or nil.
func (r *Radio) Meter() *energy.Meter { return r.meter }

// Move relocates the radio (used for the mobile proxy).
func (r *Radio) Move(p geom.Point) {
	r.pos = p
	r.m.grid.Move(int32(r.id), p)
}

// SetOn powers the radio on or off. Turning the radio off corrupts any
// in-progress receptions (the tail of the frame is lost). Turning it off
// mid-transmission is a protocol error and panics.
func (r *Radio) SetOn(on bool) {
	if r.on == on {
		return
	}
	if !on && r.transmitting {
		panic(fmt.Sprintf("radio: node %d powered off while transmitting", r.id))
	}
	r.on = on
	if !on {
		for _, rec := range r.incoming {
			rec.corrupted = true
		}
	}
	r.updateMode()
}

// CarrierSense reports whether the node detects energy on the channel: any
// in-flight transmission from a node within range, or its own transmission.
// A powered-off radio senses nothing.
func (r *Radio) CarrierSense() bool {
	if !r.on {
		return false
	}
	if r.transmitting {
		return true
	}
	for _, tx := range r.m.active {
		if tx.src.pos.Within(r.pos, r.m.params.Range) {
			return true
		}
	}
	return false
}

// Transmit puts a frame on the air and returns its airtime. The caller (the
// MAC) must ensure the radio is on and not already transmitting; violating
// either panics, as it indicates a MAC bug rather than a recoverable
// condition. Delivery outcomes are resolved when the frame's airtime ends.
func (r *Radio) Transmit(f Frame) time.Duration {
	if !r.on {
		panic(fmt.Sprintf("radio: node %d transmitted while off", r.id))
	}
	if r.transmitting {
		panic(fmt.Sprintf("radio: node %d transmitted while already transmitting", r.id))
	}
	f.Src = r.id
	m := r.m
	air := m.params.Airtime(f.Size)
	r.transmitting = true
	// Transmitting corrupts anything the node was receiving (half-duplex).
	for _, rec := range r.incoming {
		rec.corrupted = true
	}
	r.updateMode()

	tx := &transmission{src: r, frame: f}
	m.stats.Transmissions++
	m.buf = m.grid.Within(m.buf[:0], r.pos, m.params.Range)
	for _, rid := range m.buf {
		if NodeID(rid) == r.id {
			continue
		}
		rx := m.radios[NodeID(rid)]
		if !rx.on {
			m.stats.MissedOff++
			continue
		}
		if rx.transmitting {
			m.stats.MissedBusy++
			continue
		}
		rec := &reception{rx: rx}
		if len(rx.incoming) > 0 {
			// Overlapping signals at this receiver: everything is lost.
			for _, other := range rx.incoming {
				if !other.corrupted {
					other.corrupted = true
					m.stats.Collisions++
				}
			}
			rec.corrupted = true
			m.stats.Collisions++
		}
		rx.incoming = append(rx.incoming, rec)
		rx.updateMode()
		tx.receptions = append(tx.receptions, rec)
	}
	m.active = append(m.active, tx)
	// The sender is released when the frame leaves the air; receivers
	// resolve one propagation delay later.
	m.eng.After(air, func() {
		tx.src.transmitting = false
		tx.src.updateMode()
	})
	m.eng.After(air+m.params.PropagationDelay, func() { m.finish(tx) })
	return air
}

// finish resolves a transmission: completes receptions and delivers
// uncorrupted frames.
func (m *Medium) finish(tx *transmission) {
	if tx.done {
		return
	}
	tx.done = true
	for i, a := range m.active {
		if a == tx {
			m.active = append(m.active[:i], m.active[i+1:]...)
			break
		}
	}

	// First detach all receptions so handlers observe a consistent medium,
	// then deliver. Delivery order follows reception creation order, which
	// is deterministic.
	deliver := make([]*Radio, 0, len(tx.receptions))
	for _, rec := range tx.receptions {
		rx := rec.rx
		for i, cur := range rx.incoming {
			if cur == rec {
				rx.incoming = append(rx.incoming[:i], rx.incoming[i+1:]...)
				break
			}
		}
		if !rx.on {
			rec.corrupted = true
		}
		rx.updateMode()
		if !rec.corrupted {
			deliver = append(deliver, rx)
		}
	}
	for _, rx := range deliver {
		m.stats.Deliveries++
		if rx.handler != nil {
			rx.handler(tx.frame)
		}
	}
}

// updateMode reflects the radio's state into its energy meter.
func (r *Radio) updateMode() {
	if r.meter == nil {
		return
	}
	switch {
	case !r.on:
		r.meter.SetMode(energy.ModeSleep)
	case r.transmitting:
		r.meter.SetMode(energy.ModeTx)
	case len(r.incoming) > 0:
		r.meter.SetMode(energy.ModeRx)
	default:
		r.meter.SetMode(energy.ModeIdle)
	}
}
