package experiment

import (
	"fmt"
	"math"
	"math/rand"
	"time"

	"mobiquery/internal/core"
	"mobiquery/internal/field"
	"mobiquery/internal/geom"
	"mobiquery/internal/obs"
	"mobiquery/internal/radio"
)

// ScaleConfig describes the multi-user scale scenario: Users mobile users
// issuing instantaneous area queries over a field of Nodes sensors, driven
// directly through the core.QueryEngine (no radio simulation). It measures
// the query-dispatch layer itself at populations far beyond what the
// discrete-event stack can carry — the ROADMAP's "millions of users"
// direction.
type ScaleConfig struct {
	Seed int64

	// Nodes sensors are deployed uniformly over a RegionSide × RegionSide
	// square; each of Users mobile users issues one query of the given
	// Radius.
	Nodes      int
	Users      int
	RegionSide float64
	Radius     float64

	// Each round every user moves Step meters along a fixed random heading
	// (reflecting at the region boundary) and every query area is
	// re-evaluated; Rounds rounds are executed.
	Step   float64
	Rounds int

	// Shards and Workers size the engine (zero = defaults). Serial forces
	// the single-threaded dispatch baseline regardless of Workers.
	Shards  int
	Workers int
	Serial  bool

	// Field is the sensor field sampled during evaluation.
	Field field.Field
}

// DefaultScale returns the headline scale scenario: 10k concurrent users
// over a 100k-node field — 500× the paper's node count — with paper-scale
// query radii scaled into a 10 km region.
func DefaultScale() ScaleConfig {
	return ScaleConfig{
		Seed:       1,
		Nodes:      100_000,
		Users:      10_000,
		RegionSide: 10_000,
		Radius:     150,
		Step:       5,
		Rounds:     5,
		Field:      field.Gradient{Base: 20, Slope: geom.V(0.001, 0.002)},
	}
}

// Validate reports configuration errors.
func (c ScaleConfig) Validate() error {
	switch {
	case c.Nodes <= 0 || c.Users <= 0:
		return fmt.Errorf("experiment: scale Nodes and Users must be positive")
	case c.RegionSide <= 0 || c.Radius <= 0:
		return fmt.Errorf("experiment: scale RegionSide and Radius must be positive")
	case c.Step < 0 || c.Rounds <= 0:
		return fmt.Errorf("experiment: scale Step must be non-negative and Rounds positive")
	case c.Shards < 0 || c.Workers < 0:
		return fmt.Errorf("experiment: scale Shards and Workers must be non-negative")
	case c.Field == nil:
		return fmt.Errorf("experiment: scale Field must be set")
	}
	return nil
}

// ScaleResult summarizes one scale run. Every field except Elapsed is a
// pure function of the configuration (independent of Workers/Serial), which
// is how the tests pin down that sharded dispatch changes only wall time.
type ScaleResult struct {
	Config      ScaleConfig
	Evaluations int     // Users × Rounds area evaluations performed
	MeanArea    float64 // mean in-area sensor count per evaluation
	MeanValue   float64 // mean Avg aggregate over non-empty areas
	Checksum    uint64  // order-independent integer digest of all results
	Elapsed     time.Duration

	// Per-round sweep wall time, as log-bucket quantile upper bounds from
	// an obs histogram — the same latency shape /metrics would report, so
	// the experiment and the live service read on the same scale.
	SweepP50 time.Duration
	SweepP99 time.Duration
}

// resultDigest folds one per-user aggregate into the run digest. Each
// query's value is bit-exact regardless of sharding (per-area accumulation
// is id-sorted), so the digest hashes its exact bits; the fold is a wrapping
// uint64 sum, which is associative and commutative — the digest cannot
// depend on the order workers finish in, unlike the float64 accumulation it
// replaced (addition over float64 is non-associative, so the old digest
// could legitimately differ between serial and sharded runs).
func resultDigest(queryID uint32, v float64) uint64 {
	return (math.Float64bits(v) | 1) * uint64(queryID%97+1)
}

// RunScale executes the scale scenario: it indexes the node field, registers
// every user, then alternates concurrent waypoint updates with full
// query-area evaluation sweeps, all dispatched through the engine's worker
// pool (or a serial loop when cfg.Serial is set).
func RunScale(cfg ScaleConfig) ScaleResult {
	if err := cfg.Validate(); err != nil {
		panic(err)
	}
	rng := rand.New(rand.NewSource(cfg.Seed))
	region := geom.Square(cfg.RegionSide)

	// All randomness is drawn serially up front so the run's results do not
	// depend on goroutine interleaving.
	nodePos := make([]geom.Point, cfg.Nodes)
	for i := range nodePos {
		nodePos[i] = region.UniformPoint(rng)
	}
	userPos := make([]geom.Point, cfg.Users)
	userDir := make([]geom.Vec, cfg.Users)
	for i := range userPos {
		userPos[i] = region.UniformPoint(rng)
		userDir[i] = geom.FromAngle(rng.Float64() * 2 * math.Pi)
	}

	engCfg := core.EngineConfig{Shards: cfg.Shards, Workers: cfg.Workers}
	if cfg.Serial {
		engCfg.Workers = 1
	}
	e := core.NewQueryEngine(region, cfg.Radius, cfg.Field, engCfg)

	start := time.Now()
	e.Dispatch(cfg.Nodes, func(i int) {
		e.UpsertNode(radio.NodeID(i), nodePos[i])
	})
	e.Dispatch(cfg.Users, func(i int) {
		e.Register(uint32(i+1), cfg.Radius, userPos[i])
	})

	res := ScaleResult{Config: cfg}
	sweepLat := obs.NewHistogram(int64(10*time.Minute), 1e-9)
	var areaSum, valueSum float64
	var checksum uint64
	valued := 0
	for round := 0; round < cfg.Rounds; round++ {
		if round > 0 {
			e.Dispatch(cfg.Users, func(i int) {
				userDir[i] = region.Reflect(userPos[i], userDir[i])
				userPos[i] = region.Clamp(userPos[i].Add(userDir[i].Scale(cfg.Step)))
				e.UpdateWaypoint(uint32(i+1), userPos[i])
			})
		}
		at := time.Duration(round) * time.Second
		sweepStart := time.Now()
		var sweep []core.AreaResult
		if cfg.Serial {
			sweep = e.EvaluateAllSerial(at)
		} else {
			sweep = e.EvaluateAll(at)
		}
		sweepLat.Observe(time.Since(sweepStart).Nanoseconds())
		for _, ar := range sweep {
			res.Evaluations++
			areaSum += float64(len(ar.Nodes))
			if ar.Data.Count > 0 {
				v := ar.Data.Value(core.AggAvg)
				valueSum += v
				valued++
				checksum += resultDigest(ar.QueryID, v)
			}
		}
	}
	res.Elapsed = time.Since(start)
	if res.Evaluations > 0 {
		res.MeanArea = areaSum / float64(res.Evaluations)
	}
	if valued > 0 {
		res.MeanValue = valueSum / float64(valued)
	}
	res.Checksum = checksum
	res.SweepP50 = time.Duration(sweepLat.Quantile(0.5))
	res.SweepP99 = time.Duration(sweepLat.Quantile(0.99))
	return res
}
