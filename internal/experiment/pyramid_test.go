package experiment

import (
	"testing"
)

// smallPyramid shrinks the scenario for test wall time while keeping the
// disks large relative to the index cells, so covered tiles actually form.
func smallPyramid() PyramidConfig {
	cfg := DefaultPyramid()
	cfg.Users = 8
	cfg.Nodes = 1500
	cfg.Duration = 10e9 // 10 s
	return cfg
}

// TestRunPyramidMatchesFlat is the tentpole gate: each pyramid arm must
// reproduce its flat twin's digest exactly (bitwise, under the quantized
// field), while actually serving from the pyramid — not by falling back.
func TestRunPyramidMatchesFlat(t *testing.T) {
	res, err := RunPyramid(smallPyramid())
	if err != nil {
		t.Fatal(err)
	}
	for _, pair := range [][2]string{{"flat", "pyramid"}, {"flat/window", "pyramid/window"}} {
		flat, ok1 := res.Arm(pair[0])
		pyr, ok2 := res.Arm(pair[1])
		if !ok1 || !ok2 {
			t.Fatalf("missing arms %v", pair)
		}
		if flat.Evaluations == 0 {
			t.Fatalf("%s: no evaluations", pair[0])
		}
		if pyr.Evaluations != flat.Evaluations {
			t.Fatalf("%s: %d evaluations, %s has %d", pair[1], pyr.Evaluations, pair[0], flat.Evaluations)
		}
		if pyr.Digest != flat.Digest {
			t.Fatalf("%s digest %x != %s digest %x: pyramid serves changed observable results",
				pair[1], pyr.Digest, pair[0], flat.Digest)
		}
		if pyr.ColdEvaluations != 0 || pyr.PyramidServes != pyr.Evaluations {
			t.Fatalf("%s: %d/%d served from the pyramid (%d cold) — the gate declined provable serves",
				pair[1], pyr.PyramidServes, pyr.Evaluations, pyr.ColdEvaluations)
		}
		if flat.PyramidServes != 0 {
			t.Fatalf("%s: %d pyramid serves on the flat arm", pair[0], flat.PyramidServes)
		}
		if pyr.Index.CoveredTiles == 0 || pyr.Index.Builds == 0 {
			t.Fatalf("%s: index ledger %+v shows no decomposition", pair[1], pyr.Index)
		}
	}
	// The windowed arms must actually merge: every result past the first
	// Window-1 folds Window periods, so the digests must differ from the
	// single-period arms'.
	flat, _ := res.Arm("flat")
	win, _ := res.Arm("flat/window")
	if flat.Digest == win.Digest {
		t.Fatal("windowed digest equals single-period digest: Window did nothing")
	}
}

// TestRunPyramidSizingInvariance pins the repo-wide concurrency invariant
// on the new subsystem: digests must not move under any Shards × Workers
// sizing, for every arm.
func TestRunPyramidSizingInvariance(t *testing.T) {
	if testing.Short() {
		t.Skip("runs the pyramid scenario four times")
	}
	cfg := smallPyramid()
	ref, err := RunPyramid(cfg)
	if err != nil {
		t.Fatal(err)
	}
	for _, workers := range []int{1, 3} {
		for _, shards := range []int{1, 16} {
			c := cfg
			c.Workers, c.Shards = workers, shards
			got, err := RunPyramid(c)
			if err != nil {
				t.Fatal(err)
			}
			for i, arm := range got.Arms {
				if arm.Digest != ref.Arms[i].Digest {
					t.Fatalf("workers=%d shards=%d arm %s: digest %x, reference %x",
						workers, shards, arm.Label, arm.Digest, ref.Arms[i].Digest)
				}
			}
		}
	}
}
