package experiment

import (
	"fmt"
	"time"

	"mobiquery/internal/core"
	"mobiquery/internal/geom"
	"mobiquery/internal/metrics"
	"mobiquery/internal/mobility"
	"mobiquery/internal/sim"
)

// Options controls figure reproduction cost/fidelity.
type Options struct {
	// Runs is the number of topologies averaged per data point (the paper
	// uses 3 for Figure 4 and 5 elsewhere).
	Runs int
	// BaseSeed seeds the first run; replicas use consecutive seeds.
	BaseSeed int64
	// Scale shrinks run durations for quick smoke benches: 1 reproduces
	// the paper's durations, 0.25 runs quarter-length sessions.
	Scale float64
}

// DefaultOptions reproduces the paper's settings.
func DefaultOptions() Options { return Options{Runs: 3, BaseSeed: 1, Scale: 1} }

// duration scales a paper run length, keeping at least 60 seconds.
func (o Options) duration(d time.Duration) time.Duration {
	if o.Scale <= 0 || o.Scale >= 1 {
		return d
	}
	scaled := time.Duration(float64(d) * o.Scale)
	if scaled < 60*time.Second {
		scaled = 60 * time.Second
	}
	return scaled
}

func (o Options) runs(paper int) int {
	if o.Runs > 0 {
		return o.Runs
	}
	return paper
}

// Fig4 reproduces Figure 4: success ratio for MQ-JIT, MQ-GP and NP across
// sleep periods (3-15 s) and user speed ranges (walking, running, vehicle),
// with accurate full-path motion profiles.
func Fig4(opts Options) []Table {
	sleeps := []time.Duration{3 * time.Second, 6 * time.Second, 9 * time.Second, 12 * time.Second, 15 * time.Second}
	speeds := []struct {
		label    string
		min, max float64
	}{
		{"3-5 m/s (walking)", 3, 5},
		{"6-10 m/s (running)", 6, 10},
		{"16-20 m/s (vehicle)", 16, 20},
	}
	schemes := []core.Scheme{core.SchemeJIT, core.SchemeGP, core.SchemeNP}
	runs := opts.runs(3)

	tables := make([]Table, 0, len(speeds))
	for _, sp := range speeds {
		tbl := Table{
			ID:      "Figure 4",
			Title:   fmt.Sprintf("success ratio, user speed %s", sp.label),
			Columns: []string{"sleep(s)", "MQ-JIT", "MQ-GP", "NP"},
		}
		for _, sleep := range sleeps {
			row := Row{Label: fmt.Sprintf("%.0f", sleep.Seconds())}
			for _, scheme := range schemes {
				base := Default().WithDuration(opts.duration(400 * time.Second))
				base.SleepPeriod = sleep
				base.Scheme = scheme
				base.SpeedMin, base.SpeedMax = sp.min, sp.max
				rs := RunMany(Replicate(base, opts.BaseSeed, runs))
				mean, _ := metrics.MeanCI95(SuccessRatios(rs))
				row.Cells = append(row.Cells, Cell{Value: mean})
			}
			tbl.Rows = append(tbl.Rows, row)
		}
		tables = append(tables, tbl)
	}
	return tables
}

// Fig5 reproduces Figure 5: per-period data fidelity of MQ-JIT and MQ-GP
// over a 400 s session at 15 s sleep period (the dynamic-behaviour plot).
func Fig5(opts Options) Table {
	tbl := Table{
		ID:      "Figure 5",
		Title:   "data fidelity per query period (sleep 15 s, walking user)",
		Columns: []string{"period", "MQ-GP", "MQ-JIT"},
	}
	run := func(scheme core.Scheme) []metrics.QueryRecord {
		sc := Default().WithDuration(opts.duration(400 * time.Second))
		sc.Scheme = scheme
		sc.Seed = opts.BaseSeed
		return Run(sc).Records
	}
	gp := run(core.SchemeGP)
	jit := run(core.SchemeJIT)
	n := len(gp)
	if len(jit) < n {
		n = len(jit)
	}
	for i := 0; i < n; i++ {
		tbl.Rows = append(tbl.Rows, Row{
			Label: fmt.Sprintf("%d", gp[i].K),
			Cells: []Cell{{Value: gp[i].Fidelity}, {Value: jit[i].Fidelity}},
		})
	}
	return tbl
}

// Fig6 reproduces Figure 6: MQ-JIT success ratio versus the motion-profile
// advance time Ta, for sleep periods 3/9/15 s. Motion changes every 70 s
// over 500 s sessions; 5 runs with 95% CIs.
func Fig6(opts Options) Table {
	tas := []time.Duration{-6 * time.Second, 0, 6 * time.Second, 12 * time.Second, 18 * time.Second}
	sleeps := []time.Duration{3 * time.Second, 9 * time.Second, 15 * time.Second}
	runs := opts.runs(5)
	tbl := Table{
		ID:      "Figure 6",
		Title:   "MQ-JIT success ratio vs advance time (motion change every 70 s)",
		Columns: []string{"Ta(s)", "sleep 3s", "sleep 9s", "sleep 15s"},
	}
	for _, ta := range tas {
		row := Row{Label: fmt.Sprintf("%.0f", ta.Seconds())}
		for _, sleep := range sleeps {
			base := Default().WithDuration(opts.duration(500 * time.Second))
			base.SleepPeriod = sleep
			base.ChangeInterval = 70 * time.Second
			base.Profiler = ProfilerExact
			base.AdvanceTime = ta
			rs := RunMany(Replicate(base, opts.BaseSeed, runs))
			mean, ci := metrics.MeanCI95(SuccessRatios(rs))
			row.Cells = append(row.Cells, Cell{Value: mean, CI: ci, HasCI: true})
		}
		tbl.Rows = append(tbl.Rows, row)
	}
	return tbl
}

// Fig7 reproduces Figure 7: MQ-JIT success ratio versus the interval
// between motion changes, for advance times 6/0/-8 s and for the GPS
// predictor with 5 m and 10 m location errors (sleep period 9 s). It
// returns two tables over the same runs: success under the strict
// true-area fidelity and under the targeted-area fidelity.
func Fig7(opts Options) []Table {
	intervals := []time.Duration{42 * time.Second, 52 * time.Second, 70 * time.Second, 105 * time.Second, 210 * time.Second}
	settings := []struct {
		label string
		mut   func(*Scenario)
	}{
		{"Ta=6s", func(s *Scenario) { s.Profiler = ProfilerExact; s.AdvanceTime = 6 * time.Second }},
		{"Ta=0s", func(s *Scenario) { s.Profiler = ProfilerExact; s.AdvanceTime = 0 }},
		{"Ta=-8s", func(s *Scenario) { s.Profiler = ProfilerExact; s.AdvanceTime = -8 * time.Second }},
		{"Ta=-8s err=5m", func(s *Scenario) { s.Profiler = ProfilerGPS; s.GPSError = 5 }},
		{"Ta=-8s err=10m", func(s *Scenario) { s.Profiler = ProfilerGPS; s.GPSError = 10 }},
	}
	runs := opts.runs(5)
	cols := []string{"interval(s)", "Ta=6s", "Ta=0s", "Ta=-8s", "Ta=-8s err=5m", "Ta=-8s err=10m"}
	strict := Table{
		ID:      "Figure 7",
		Title:   "MQ-JIT success ratio vs motion-change interval (sleep 9 s), true-area fidelity",
		Columns: cols,
		Notes:   "fidelity scored against the area around the user's true position",
	}
	target := Table{
		ID:      "Figure 7 (targeted-area reading)",
		Title:   "same runs, fidelity scored against the area each result targeted",
		Columns: cols,
		Notes:   "the paper's fidelity definition is ambiguous between the two readings; its curves match this one",
	}
	for _, iv := range intervals {
		strictRow := Row{Label: fmt.Sprintf("%.0f", iv.Seconds())}
		targetRow := Row{Label: strictRow.Label}
		for _, st := range settings {
			base := Default().WithDuration(opts.duration(500 * time.Second))
			base.SleepPeriod = 9 * time.Second
			base.ChangeInterval = iv
			st.mut(&base)
			rs := RunMany(Replicate(base, opts.BaseSeed, runs))
			mean, ci := metrics.MeanCI95(SuccessRatios(rs))
			strictRow.Cells = append(strictRow.Cells, Cell{Value: mean, CI: ci, HasCI: true})
			tmean, tci := metrics.MeanCI95(TargetSuccessRatios(rs))
			targetRow.Cells = append(targetRow.Cells, Cell{Value: tmean, CI: tci, HasCI: true})
		}
		strict.Rows = append(strict.Rows, strictRow)
		target.Rows = append(target.Rows, targetRow)
	}
	return []Table{strict, target}
}

// Fig8 reproduces Figure 8: average power per sleeping node for bare CCP,
// MQ-JIT with Ta=-3 s, and MQ-JIT with Ta=9 s, across sleep periods.
func Fig8(opts Options) Table {
	sleeps := []time.Duration{3 * time.Second, 9 * time.Second, 15 * time.Second}
	settings := []struct {
		label string
		mut   func(*Scenario)
	}{
		{"CCP", func(s *Scenario) { s.Idle = true }},
		{"MQ-JIT Ta=-3s", func(s *Scenario) { s.Profiler = ProfilerExact; s.AdvanceTime = -3 * time.Second }},
		{"MQ-JIT Ta=9s", func(s *Scenario) { s.Profiler = ProfilerExact; s.AdvanceTime = 9 * time.Second }},
	}
	runs := opts.runs(5)
	tbl := Table{
		ID:      "Figure 8",
		Title:   "average power per sleeping node (W), motion change every 70 s",
		Columns: []string{"sleep(s)", "CCP", "MQ-JIT Ta=-3s", "MQ-JIT Ta=9s"},
	}
	for _, sleep := range sleeps {
		row := Row{Label: fmt.Sprintf("%.0f", sleep.Seconds())}
		for _, st := range settings {
			base := Default().WithDuration(opts.duration(400 * time.Second))
			base.SleepPeriod = sleep
			base.ChangeInterval = 70 * time.Second
			st.mut(&base)
			rs := RunMany(Replicate(base, opts.BaseSeed, runs))
			mean, _ := metrics.MeanCI95(SleeperPowers(rs))
			row.Cells = append(row.Cells, Cell{Value: mean})
		}
		tbl.Rows = append(tbl.Rows, row)
	}
	return tbl
}

// WarmupValidation cross-checks the equation (16) warmup bound against the
// simulator: for each advance time it measures the mean number of
// consecutive sub-threshold periods after each motion change and prints it
// next to the analytical bound.
func WarmupValidation(opts Options) Table {
	tas := []time.Duration{-8 * time.Second, -3 * time.Second, 0, 6 * time.Second, 12 * time.Second}
	tbl := Table{
		ID:      "Warmup (eq. 16)",
		Title:   "measured warmup periods after motion changes vs analytical bound (sleep 9 s)",
		Columns: []string{"Ta(s)", "measured", "bound"},
	}
	for _, ta := range tas {
		base := Default().WithDuration(opts.duration(500 * time.Second))
		base.SleepPeriod = 9 * time.Second
		base.ChangeInterval = 70 * time.Second
		base.Profiler = ProfilerExact
		base.AdvanceTime = ta
		base.Seed = opts.BaseSeed
		res := Run(base)

		course := reconstructCourse(base)
		t0 := queryStart(sim.NewEngine(base.Seed), base)
		measured := MeasureWarmup(res.Records, course.Changes, base.Spec.Period, t0)
		bound := float64(base.SleepPeriod+2*base.Spec.Fresh-ta) / float64(base.Spec.Period)
		if bound < 0 {
			bound = 0
		}
		tbl.Rows = append(tbl.Rows, Row{
			Label: fmt.Sprintf("%.0f", ta.Seconds()),
			Cells: []Cell{{Value: measured}, {Value: bound}},
		})
	}
	tbl.Notes = "bound is the vprfh>>vuser approximation Tw ~ (Tsleep + 2*Tfresh - Ta)/Tperiod"
	return tbl
}

// reconstructCourse rebuilds the deterministic course used by a scenario:
// named RNG streams depend only on (seed, name), so the course can be
// regenerated without re-running the simulation.
func reconstructCourse(sc Scenario) mobility.Course {
	eng := sim.NewEngine(sc.Seed)
	return mobility.NewRandomCourse(mobility.CourseSpec{
		Region:         geom.Square(sc.RegionSide),
		Start:          geom.Pt(0, 0),
		SpeedMin:       sc.SpeedMin,
		SpeedMax:       sc.SpeedMax,
		ChangeInterval: sc.ChangeInterval,
		Duration:       sc.Duration,
	}, eng.RNG("course"))
}

// MeasureWarmup returns the mean number of consecutive failed periods
// immediately following each motion change.
func MeasureWarmup(records []metrics.QueryRecord, changes []sim.Time, period time.Duration, t0 sim.Time) float64 {
	if len(changes) == 0 || len(records) == 0 {
		return 0
	}
	byK := make(map[int]metrics.QueryRecord, len(records))
	for _, r := range records {
		byK[r.K] = r
	}
	total, counted := 0.0, 0
	for _, ch := range changes {
		// First deadline at or after the change; allow the streak to start
		// up to two periods later (the period spanning the change may have
		// completed collection before the divergence mattered).
		k := int((ch-t0)/sim.Time(period)) + 1
		start := -1
		for off := 0; off < 2; off++ {
			if r, ok := byK[k+off]; ok && !r.Success {
				start = k + off
				break
			}
		}
		streak := 0
		if start >= 0 {
			for {
				r, ok := byK[start+streak]
				if !ok || r.Success {
					break
				}
				streak++
			}
		}
		if _, ok := byK[k]; ok {
			total += float64(streak)
			counted++
		}
	}
	if counted == 0 {
		return 0
	}
	return total / float64(counted)
}
