package experiment

import (
	"time"

	"mobiquery/internal/core"
	"mobiquery/internal/metrics"
)

// Ablation quantifies the engineering decisions DESIGN.md documents: each
// row removes one mechanism from the full system and reports the resulting
// success ratio and medium-level collision count (sleep period 9 s, walking
// user, accurate profiles).
func Ablation(opts Options) Table {
	variants := []struct {
		label string
		mut   func(*Scenario)
	}{
		{"full system (MQ-JIT)", func(*Scenario) {}},
		{"no flood jitter", func(s *Scenario) { s.DisableFloodJitter = true }},
		{"no forward lead", func(s *Scenario) { s.DisableForwardLead = true }},
		{"greedy prefetch (MQ-GP)", func(s *Scenario) { s.Scheme = core.SchemeGP }},
		{"no prefetch (NP)", func(s *Scenario) { s.Scheme = core.SchemeNP }},
	}
	runs := opts.runs(3)
	tbl := Table{
		ID:      "Ablation",
		Title:   "contribution of each mechanism (sleep 9 s, walking user)",
		Columns: []string{"variant", "success", "mean fidelity", "collisions"},
	}
	for _, v := range variants {
		base := Default().WithDuration(opts.duration(400 * time.Second))
		base.SleepPeriod = 9 * time.Second
		v.mut(&base)
		rs := RunMany(Replicate(base, opts.BaseSeed, runs))
		success, _ := metrics.MeanCI95(SuccessRatios(rs))
		var fid, col float64
		for _, r := range rs {
			fid += r.MeanFidelity
			col += float64(r.MediumStats.Collisions)
		}
		n := float64(len(rs))
		tbl.Rows = append(tbl.Rows, Row{
			Label: v.label,
			Cells: []Cell{{Value: success}, {Value: fid / n}, {Value: col / n}},
		})
	}
	return tbl
}
