package experiment

import (
	"fmt"
	"math"
	"math/rand"
	"time"

	"mobiquery/internal/core"
	"mobiquery/internal/field"
	"mobiquery/internal/geom"
	"mobiquery/internal/mobility"
	"mobiquery/internal/prefetch"
	"mobiquery/internal/radio"
	"mobiquery/internal/sim"
)

// PrefetchConfig describes the strategy-comparison scenario: the same
// mobile-user population, sensor field, and coarse service clock run three
// times — on-demand, just-in-time, and greedy prefetching — so the live
// effect of predictive sampling along the motion profile (lateness,
// staleness, prefetched readings, storage) is measured head to head. The
// field's duty cycle deliberately exceeds the freshness window and the
// clock tick deliberately misaligns with the period, which is exactly the
// regime the paper's prefetching exists for.
type PrefetchConfig struct {
	Seed int64

	// Nodes sensors over a RegionSide × RegionSide square, each refreshing
	// its reading every SamplePeriod (the duty-cycle analogue, out of phase
	// with one another).
	Nodes        int
	RegionSide   float64
	SamplePeriod time.Duration

	// Every user queries a circle of Radius under the same contract: one
	// result per Period, due within Deadline slack, from readings no staler
	// than Fresh.
	Radius   float64
	Period   time.Duration
	Deadline time.Duration
	Fresh    time.Duration

	// Users mobile users walk straight lines for Duration while the
	// virtual clock advances by Tick (chosen to misalign with Period, so
	// on-demand collection runs late).
	Users    int
	Duration time.Duration
	Tick     time.Duration

	// Lookahead is Greedy's chain window (periods ahead); zero selects the
	// planner's minimal safe default. Replans > 0 injects that many
	// ground-truth waypoint re-plans per user, spread over the run.
	Lookahead int
	Replans   int

	// Shards and Workers size the engine (zero = defaults).
	Shards  int
	Workers int

	// Field is the sensor field sampled during evaluation.
	Field field.Field
}

// DefaultPrefetch returns the headline comparison: 40 walking users over a
// 5k-node field whose 3 s duty cycle dwarfs the 1 s freshness window,
// evaluated on a 300 ms clock against 1 s periods with 100 ms slack.
func DefaultPrefetch() PrefetchConfig {
	return PrefetchConfig{
		Seed:         1,
		Nodes:        5000,
		RegionSide:   2000,
		SamplePeriod: 3 * time.Second,
		Radius:       150,
		Period:       time.Second,
		Deadline:     100 * time.Millisecond,
		Fresh:        time.Second,
		Users:        40,
		Duration:     30 * time.Second,
		Tick:         300 * time.Millisecond,
		Lookahead:    12,
		Field:        field.Gradient{Base: 20, Slope: geom.V(0.001, 0.002)},
	}
}

// Validate reports configuration errors.
func (c PrefetchConfig) Validate() error {
	switch {
	case c.Nodes <= 0 || c.Users <= 0:
		return fmt.Errorf("experiment: prefetch Nodes and Users must be positive")
	case c.RegionSide <= 0 || c.Radius <= 0:
		return fmt.Errorf("experiment: prefetch RegionSide and Radius must be positive")
	case c.SamplePeriod <= 0:
		return fmt.Errorf("experiment: prefetch SamplePeriod must be positive")
	case c.Period <= 0 || c.Deadline < 0 || c.Fresh < 0:
		return fmt.Errorf("experiment: prefetch Period must be positive, Deadline and Fresh non-negative")
	case c.Tick <= 0 || c.Duration < c.Period:
		return fmt.Errorf("experiment: prefetch Tick must be positive and Duration at least one Period")
	case c.Lookahead < 0 || c.Replans < 0:
		return fmt.Errorf("experiment: prefetch Lookahead and Replans must be non-negative")
	case c.Shards < 0 || c.Workers < 0:
		return fmt.Errorf("experiment: prefetch Shards and Workers must be non-negative")
	case c.Field == nil:
		return fmt.Errorf("experiment: prefetch Field must be set")
	}
	return nil
}

// StrategyOutcome is one strategy's ledger over the shared workload.
type StrategyOutcome struct {
	Strategy prefetch.Strategy

	// Evaluations counts delivered periods; Late those past the deadline
	// slack; WarmupPeriods those inside an equation-16 warmup interval.
	Evaluations   int
	Late          int
	WarmupPeriods int

	// StaleExclusions counts in-area readings rejected by the freshness
	// window; PrefetchedReadings those served from the plan; MeanStaleness
	// averages each period's oldest contributing reading age.
	StaleExclusions    int
	PrefetchedReadings int
	MeanStaleness      time.Duration

	// PeakOutstanding is the largest per-user count of dispatched,
	// unconsumed chains — the live equation-11/12 storage metric (zero on
	// demand).
	PeakOutstanding int

	// Digest is an order-independent digest of every user's per-period
	// outcome; identical configurations must agree on it regardless of
	// Shards and Workers.
	Digest uint64
}

// PrefetchResult is the three-strategy comparison.
type PrefetchResult struct {
	Config   PrefetchConfig
	OnDemand StrategyOutcome
	JIT      StrategyOutcome
	Greedy   StrategyOutcome
	Elapsed  time.Duration
}

// Outcomes lists the three ledgers in comparison order.
func (r PrefetchResult) Outcomes() []StrategyOutcome {
	return []StrategyOutcome{r.OnDemand, r.JIT, r.Greedy}
}

// prefetchUser is one user's precomputed linear course plus the per-pass
// accumulator. Randomness is drawn serially up front; starts sit inside
// the region's inner band so courses never leave the field.
type prefetchUser struct {
	id    uint32
	start geom.Point
	vel   geom.Vec

	planner *prefetch.Planner

	evals, late, warm, stale, prefetched int
	stalenessSum                         time.Duration
	peakOut                              int
	digest                               uint64
}

func (u *prefetchUser) posAt(t sim.Time) geom.Point {
	return u.start.Add(u.vel.Scale(t.Seconds()))
}

// profileAt is the user's exact straight-line motion profile generated at
// time t with no advance notice (Ta = 0), mirroring what the session API
// synthesizes on Subscribe and UpdateWaypoint.
func (u *prefetchUser) profileAt(t sim.Time, period time.Duration) mobility.Profile {
	return mobility.Profile{
		Path:      mobility.LinearPath(u.posAt(t), u.vel, t, t+period),
		TS:        t,
		Generated: t,
		Version:   1,
	}
}

// RunPrefetch executes the comparison: one pass per strategy over an
// identical field, sampling schedule, and user population, each pass driven
// through the engine's temporal path with per-query planners exactly as the
// session API wires them.
func RunPrefetch(cfg PrefetchConfig) (PrefetchResult, error) {
	if err := cfg.Validate(); err != nil {
		return PrefetchResult{}, err
	}
	rng := rand.New(rand.NewSource(cfg.Seed))
	region := geom.Square(cfg.RegionSide)

	nodePos := make([]geom.Point, cfg.Nodes)
	for i := range nodePos {
		nodePos[i] = region.UniformPoint(rng)
	}
	phase := make([]sim.Time, cfg.Nodes)
	for i := range phase {
		phase[i] = time.Duration(rng.Int63n(int64(cfg.SamplePeriod)))
	}
	inner := geom.NewRect(0.15*cfg.RegionSide, 0.15*cfg.RegionSide, 0.85*cfg.RegionSide, 0.85*cfg.RegionSide)
	users := make([]*prefetchUser, cfg.Users)
	for i := range users {
		start := inner.UniformPoint(rng)
		speed := 1 + rng.Float64()*4
		users[i] = &prefetchUser{
			id:    uint32(i + 1),
			start: start,
			vel:   geom.FromAngle(rng.Float64() * 2 * math.Pi).Scale(speed),
		}
	}

	res := PrefetchResult{Config: cfg}
	start := time.Now()
	strategies := []prefetch.Strategy{
		{},
		{Kind: prefetch.JIT},
		{Kind: prefetch.Greedy, Lookahead: cfg.Lookahead},
	}
	for i, strat := range strategies {
		out, err := runPrefetchPass(cfg, strat, region, nodePos, phase, users)
		if err != nil {
			return PrefetchResult{}, err
		}
		switch i {
		case 0:
			res.OnDemand = out
		case 1:
			res.JIT = out
		case 2:
			res.Greedy = out
		}
	}
	res.Elapsed = time.Since(start)
	return res, nil
}

// runPrefetchPass runs one strategy over the shared workload.
func runPrefetchPass(cfg PrefetchConfig, strat prefetch.Strategy, region geom.Rect,
	nodePos []geom.Point, phase []sim.Time, users []*prefetchUser) (StrategyOutcome, error) {
	eng, err := core.NewQueryEngineE(region, cfg.Radius, cfg.Field,
		core.EngineConfig{Shards: cfg.Shards, Workers: cfg.Workers})
	if err != nil {
		return StrategyOutcome{}, err
	}
	base := core.ScheduleSampler(cfg.SamplePeriod, func(id int32) sim.Time { return phase[id] })
	eng.SetSampler(base)
	eng.Dispatch(len(nodePos), func(i int) {
		eng.UpsertNode(radio.NodeID(i), nodePos[i])
	})

	spec := core.TemporalSpec{Period: cfg.Period, Deadline: cfg.Deadline, Fresh: cfg.Fresh}
	byID := make(map[uint32]*prefetchUser, len(users))
	for _, u := range users {
		*u = prefetchUser{id: u.id, start: u.start, vel: u.vel} // reset the pass accumulator
		byID[u.id] = u
		if err := eng.RegisterTemporalE(u.id, cfg.Radius, u.posAt(0), spec, 0); err != nil {
			return StrategyOutcome{}, err
		}
		if strat.Prefetching() {
			u.planner, err = prefetch.NewPlanner(prefetch.Config{
				Strategy: strat,
				Radius:   cfg.Radius,
				Period:   cfg.Period,
				Deadline: cfg.Deadline,
				Fresh:    cfg.Fresh,
				Sleep:    cfg.SamplePeriod,
			}, u.profileAt(0, cfg.Period))
			if err != nil {
				return StrategyOutcome{}, err
			}
			eng.SetQuerySampler(u.id, u.planner.Sampler(base))
			eng.SetQueryPlan(u.id, u.planner)
		}
	}

	// Ground-truth waypoint re-plans, spread evenly over the run; the
	// courses are straight lines so the correction is exact — what the
	// replan costs is the restarted equation-16 warmup.
	replanEvery := sim.Time(0)
	if cfg.Replans > 0 {
		replanEvery = cfg.Duration / sim.Time(cfg.Replans+1)
	}
	replansDone := 0

	pump := newDuePump(eng, byID)
	for t := cfg.Tick; t <= cfg.Duration; t += cfg.Tick {
		if replanEvery > 0 && replansDone < cfg.Replans && t >= sim.Time(replansDone+1)*replanEvery {
			replansDone++
			for _, u := range users {
				eng.UpdateWaypoint(u.id, u.posAt(t))
				if u.planner != nil {
					u.planner.Replan(u.profileAt(t, cfg.Period), t)
				}
			}
		}
		// As in the churn harness, only users with a period due this tick
		// are touched, and each user's evaluation is a pure function of the
		// shared field and their own course and plan — the worker fan-out
		// cannot change results.
		pump.tick(t, func(u *prefetchUser, id uint32, nextDue sim.Time) bool {
			eng.UpdateWaypoint(id, u.posAt(nextDue))
			wr, ok := eng.EvaluateDue(id, t)
			if !ok {
				return false
			}
			u.evals++
			u.stale += wr.StaleNodes
			u.prefetched += wr.Prefetched
			if u.planner != nil {
				u.planner.NoteServed(wr.Prefetched)
			}
			u.stalenessSum += wr.MaxStaleness
			if wr.Late {
				u.late++
			}
			if wr.Warmup {
				u.warm++
			}
			if u.planner != nil {
				if out := u.planner.Outstanding(wr.Due); out > u.peakOut {
					u.peakOut = out
				}
			}
			u.digest = u.digest*1099511628211 ^ uint64(wr.K)
			u.digest = u.digest*1099511628211 ^ math.Float64bits(wr.Data.Value(core.AggAvg))
			u.digest = u.digest*1099511628211 ^ uint64(wr.Lateness)
			u.digest = u.digest*1099511628211 ^ uint64(wr.MaxStaleness)
			u.digest = u.digest*1099511628211 ^ uint64(wr.Prefetched)
			if wr.Warmup {
				u.digest = u.digest*1099511628211 ^ 1
			}
			return true
		})
	}

	out := StrategyOutcome{Strategy: strat}
	if strat.Kind == prefetch.Greedy && len(users) > 0 && users[0].planner != nil {
		out.Strategy = users[0].planner.Stats().Strategy // default lookahead resolved
	}
	var stalenessSum time.Duration
	for _, u := range users {
		out.Evaluations += u.evals
		out.Late += u.late
		out.WarmupPeriods += u.warm
		out.StaleExclusions += u.stale
		out.PrefetchedReadings += u.prefetched
		stalenessSum += u.stalenessSum
		if u.peakOut > out.PeakOutstanding {
			out.PeakOutstanding = u.peakOut
		}
		out.Digest += (u.digest | 1) * uint64(u.id)
	}
	if out.Evaluations > 0 {
		out.MeanStaleness = stalenessSum / time.Duration(out.Evaluations)
	}
	return out, nil
}
