package experiment

import (
	"fmt"
	"time"

	"mobiquery/internal/ccp"
	"mobiquery/internal/core"
	"mobiquery/internal/deploy"
	"mobiquery/internal/geom"
	"mobiquery/internal/mac"
	"mobiquery/internal/metrics"
	"mobiquery/internal/mobility"
	"mobiquery/internal/netstack"
	"mobiquery/internal/radio"
	"mobiquery/internal/sim"
)

// UserSpec describes one mobile user of a multi-user run: a straight-line
// course from Start at Velocity (m/s) with an exact motion profile, issuing
// its own query under the given scheme.
type UserSpec struct {
	QueryID  uint32
	Scheme   core.Scheme
	Start    geom.Point
	Velocity geom.Vec
}

// RunMulti executes one scenario with several concurrent mobile users
// sharing the sensor network, and returns one evaluated result per user (in
// input order). The scenario's own motion fields are ignored; each user
// follows its UserSpec course.
func RunMulti(sc Scenario, users []UserSpec) []RunResult {
	if err := sc.Validate(); err != nil {
		panic(err)
	}
	if len(users) == 0 {
		panic("experiment: RunMulti needs at least one user")
	}
	eng := sim.NewEngine(sc.Seed)
	region := geom.Square(sc.RegionSide)

	topo := deploy.Uniform(region, sc.Nodes, eng.RNG("deploy"))
	ccpCfg := ccp.DefaultConfig()
	ccpCfg.SensingRange = sc.SensingRange
	ccpCfg.CommRange = sc.CommRange
	sel := ccp.Select(region, topo.Positions, ccpCfg, eng.RNG("ccp"))

	radioParams := radio.Params{Range: sc.CommRange, Bandwidth: sc.Bandwidth, PropagationDelay: time.Microsecond}
	macCfg := mac.DefaultConfig(sc.SleepPeriod)
	macCfg.ActiveWindow = sc.ActiveWindow
	nw := netstack.NewNetwork(eng, region, radioParams, macCfg)
	for i, p := range topo.Positions {
		role := mac.RoleDutyCycled
		if sel.Active[i] {
			role = mac.RoleAlwaysOn
		}
		nw.AddNode(radio.NodeID(i), p, role)
	}

	courses := make([]mobility.Course, len(users))
	proxies := make([]radio.NodeID, len(users))
	for i, u := range users {
		courses[i] = mobility.Course{
			Trajectory: mobility.LinearPath(u.Start, u.Velocity, 0, sc.Duration),
		}
		proxies[i] = radio.NodeID(sc.Nodes + i)
		nw.AddProxy(proxies[i], u.Start)
	}

	coreCfg := core.DefaultConfig(sc.Spec)
	coreCfg.ScopeMargin = sc.CommRange / 2
	coreCfg.T0 = queryStart(eng, sc)
	coreCfg.Engine = core.EngineConfig{Shards: sc.Shards, Workers: sc.Workers}
	svc := core.NewService(nw, coreCfg, sc.Field, core.Hooks{})
	seen := make(map[uint32]bool, len(users))
	for i, u := range users {
		if u.QueryID == 0 || seen[u.QueryID] {
			panic(fmt.Sprintf("experiment: user %d needs a unique non-zero QueryID", i))
		}
		seen[u.QueryID] = true
		svc.AddUser(u.QueryID, u.Scheme, sc.Spec, courses[i],
			mobility.OracleProfiler{Course: courses[i]}, proxies[i])
	}

	nw.Start()
	svc.Start()
	eng.Run(sc.Duration + 2*time.Second)

	// Per-user evaluation is independent, so it fans out across the service
	// engine's worker pool; every user reads the same sharded node index.
	// Results are deterministic: evaluation is pure and out[i] is written
	// only by the worker that drew index i.
	idx := svc.Engine().Index()
	out := make([]RunResult, len(users))
	svc.Engine().Dispatch(len(users), func(i int) {
		u := users[i]
		res := RunResult{
			Scenario:    sc,
			Records:     metrics.EvaluateAggIndexed(svc.ResultsFor(u.QueryID), courses[i], idx, sc.Spec.Radius, sc.Spec.Period, sc.Spec.Agg),
			MediumStats: nw.Medium().Stats(),
			NetStats:    nw.Stats(),
			EventsFired: eng.EventsFired(),
		}
		res.SuccessRatio = metrics.SuccessRatio(res.Records)
		res.TargetSuccessRatio = metrics.TargetSuccessRatio(res.Records)
		res.MeanFidelity = metrics.MeanFidelity(res.Records)
		res.BackboneNodes = sel.NumActive
		out[i] = res
	})
	return out
}
