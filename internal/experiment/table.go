package experiment

import (
	"fmt"
	"strings"
)

// Cell is one measured table entry with an optional 95% confidence
// half-width.
type Cell struct {
	Value float64
	CI    float64
	HasCI bool
}

// Row is one labelled table row.
type Row struct {
	Label string
	Cells []Cell
}

// Table is a formatted reproduction of one paper artifact (or a panel of
// one).
type Table struct {
	ID      string // e.g. "Figure 4"
	Title   string
	Columns []string // first column is the row-label header
	Rows    []Row
	Notes   string
}

// Format renders the table as aligned text.
func (t Table) Format() string {
	var b strings.Builder
	fmt.Fprintf(&b, "%s — %s\n", t.ID, t.Title)
	widths := make([]int, len(t.Columns))
	for i, c := range t.Columns {
		widths[i] = len(c)
	}
	cells := make([][]string, len(t.Rows))
	for r, row := range t.Rows {
		line := make([]string, 0, len(row.Cells)+1)
		line = append(line, row.Label)
		for _, c := range row.Cells {
			if c.HasCI {
				line = append(line, fmt.Sprintf("%.3f ±%.3f", c.Value, c.CI))
			} else {
				line = append(line, fmt.Sprintf("%.3f", c.Value))
			}
		}
		cells[r] = line
		for i, s := range line {
			if i < len(widths) && len(s) > widths[i] {
				widths[i] = len(s)
			}
		}
	}
	for i, c := range t.Columns {
		if i > 0 {
			b.WriteString("  ")
		}
		fmt.Fprintf(&b, "%-*s", widths[i], c)
	}
	b.WriteByte('\n')
	for _, line := range cells {
		for i, s := range line {
			if i > 0 {
				b.WriteString("  ")
			}
			if i < len(widths) {
				fmt.Fprintf(&b, "%-*s", widths[i], s)
			} else {
				b.WriteString(s)
			}
		}
		b.WriteByte('\n')
	}
	if t.Notes != "" {
		fmt.Fprintf(&b, "note: %s\n", t.Notes)
	}
	return b.String()
}
