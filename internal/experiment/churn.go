package experiment

import (
	"fmt"
	"math"
	"math/rand"
	"time"

	"mobiquery/internal/core"
	"mobiquery/internal/field"
	"mobiquery/internal/geom"
	"mobiquery/internal/radio"
	"mobiquery/internal/sim"
)

// ChurnConfig describes the dynamic-membership scenario: a static
// population of streaming users holds session-long subscriptions while
// churners join and leave mid-run, all driven through the engine's
// temporal API (RegisterTemporalE / EvaluateDue) — the service-shaped
// workload the session API exposes publicly. The scenario's acceptance
// property is that churn never perturbs the static users' results.
type ChurnConfig struct {
	Seed int64

	// Nodes sensors over a RegionSide × RegionSide square, each refreshing
	// its reading every SamplePeriod (out of phase with one another).
	Nodes        int
	RegionSide   float64
	SamplePeriod time.Duration

	// Every user queries a circle of Radius under the same temporal
	// contract: one result per Period, due within Deadline slack, from
	// readings no staler than Fresh.
	Radius   float64
	Period   time.Duration
	Deadline time.Duration
	Fresh    time.Duration

	// Static users subscribe at t=0 and stay; Churners join at staggered
	// times and leave again before the run ends. The virtual clock
	// advances by Tick for Duration.
	Static   int
	Churners int
	Duration time.Duration
	Tick     time.Duration

	// Shards and Workers size the engine (zero = defaults).
	Shards  int
	Workers int

	// Field is the sensor field sampled during evaluation.
	Field field.Field
}

// DefaultChurn returns the headline churn scenario: 50 resident streaming
// users over a 5k-node field with 100 users cycling through mid-run.
func DefaultChurn() ChurnConfig {
	return ChurnConfig{
		Seed:         1,
		Nodes:        5000,
		RegionSide:   2000,
		SamplePeriod: time.Second,
		Radius:       150,
		Period:       2 * time.Second,
		Deadline:     0,
		Fresh:        time.Second,
		Static:       50,
		Churners:     100,
		Duration:     60 * time.Second,
		Tick:         100 * time.Millisecond,
		Field:        field.Gradient{Base: 20, Slope: geom.V(0.001, 0.002)},
	}
}

// Validate reports configuration errors.
func (c ChurnConfig) Validate() error {
	switch {
	case c.Nodes <= 0 || c.Static <= 0 || c.Churners < 0:
		return fmt.Errorf("experiment: churn Nodes and Static must be positive, Churners non-negative")
	case c.RegionSide <= 0 || c.Radius <= 0:
		return fmt.Errorf("experiment: churn RegionSide and Radius must be positive")
	case c.SamplePeriod <= 0:
		return fmt.Errorf("experiment: churn SamplePeriod must be positive")
	case c.Period <= 0 || c.Deadline < 0 || c.Fresh < 0:
		return fmt.Errorf("experiment: churn Period must be positive, Deadline and Fresh non-negative")
	case c.Tick <= 0 || c.Duration < c.Period:
		return fmt.Errorf("experiment: churn Tick must be positive and Duration at least one Period")
	case c.Shards < 0 || c.Workers < 0:
		return fmt.Errorf("experiment: churn Shards and Workers must be non-negative")
	case c.Field == nil:
		return fmt.Errorf("experiment: churn Field must be set")
	}
	return nil
}

// ChurnResult summarizes one churn run. StaticDigest is a pure function of
// the configuration minus the churners: a run with Churners=0 and an
// otherwise identical one must agree on it, which is how the tests pin the
// isolation property of dynamic membership.
type ChurnResult struct {
	Config ChurnConfig

	// Evaluations counts delivered periods across all users; Late those
	// past the deadline slack; StaleExclusions the total in-area readings
	// rejected by the freshness window.
	Evaluations     int
	Late            int
	StaleExclusions int

	// Joins and Leaves count churner arrivals and departures that actually
	// happened; PeakLive is the largest concurrent population.
	Joins    int
	Leaves   int
	PeakLive int

	// MeanFresh is the mean number of contributing (fresh) sensors per
	// evaluation.
	MeanFresh float64

	// StaticDigest is an order-independent digest of every static user's
	// per-period outcome (index, value bits, lateness, staleness).
	StaticDigest uint64

	Elapsed time.Duration
}

// churnUser is one user's precomputed session: course and membership
// window. All randomness is drawn serially up front so results cannot
// depend on goroutine interleaving.
type churnUser struct {
	id      uint32
	start   geom.Point
	vel     geom.Vec
	joinAt  sim.Time // 0 for static users
	leaveAt sim.Time // past Duration for static users
	joined  bool
	gone    bool

	evals  int
	late   int
	stale  int
	fresh  int
	digest uint64
	static bool
}

// posAt returns the user's position at virtual time t, clamped to region.
func (u *churnUser) posAt(region geom.Rect, t sim.Time) geom.Point {
	dt := (t - u.joinAt).Seconds()
	return region.Clamp(u.start.Add(u.vel.Scale(dt)))
}

// RunChurn executes the churn scenario: it stands the engine up over the
// node field, subscribes the static population, then advances the virtual
// clock tick by tick, admitting and removing churners mid-run while every
// live user's due periods are evaluated through the freshness-windowed
// temporal path, fanned across the worker pool.
func RunChurn(cfg ChurnConfig) (ChurnResult, error) {
	if err := cfg.Validate(); err != nil {
		return ChurnResult{}, err
	}
	rng := rand.New(rand.NewSource(cfg.Seed))
	region := geom.Square(cfg.RegionSide)

	nodePos := make([]geom.Point, cfg.Nodes)
	for i := range nodePos {
		nodePos[i] = region.UniformPoint(rng)
	}
	phase := make([]sim.Time, cfg.Nodes)
	for i := range phase {
		phase[i] = time.Duration(rng.Int63n(int64(cfg.SamplePeriod)))
	}

	users := make([]*churnUser, 0, cfg.Static+cfg.Churners)
	course := func() (geom.Point, geom.Vec) {
		start := region.UniformPoint(rng)
		speed := 1 + rng.Float64()*4
		return start, geom.FromAngle(rng.Float64() * 2 * math.Pi).Scale(speed)
	}
	for i := 0; i < cfg.Static; i++ {
		start, vel := course()
		users = append(users, &churnUser{
			id: uint32(i + 1), start: start, vel: vel,
			leaveAt: cfg.Duration + cfg.Period, static: true,
		})
	}
	// Churners draw their randomness after the static users, from the same
	// serial stream: removing them (Churners=0) leaves the static
	// population's placement, courses, and node field untouched.
	for j := 0; j < cfg.Churners; j++ {
		start, vel := course()
		joinAt := time.Duration(rng.Int63n(int64(cfg.Duration * 7 / 10)))
		dwell := cfg.Duration/10 + time.Duration(rng.Int63n(int64(cfg.Duration/5)))
		users = append(users, &churnUser{
			id: uint32(cfg.Static + j + 1), start: start, vel: vel,
			joinAt: joinAt, leaveAt: joinAt + dwell,
		})
	}

	eng, err := core.NewQueryEngineE(region, cfg.Radius, cfg.Field,
		core.EngineConfig{Shards: cfg.Shards, Workers: cfg.Workers})
	if err != nil {
		return ChurnResult{}, err
	}
	eng.SetSampler(core.ScheduleSampler(cfg.SamplePeriod, func(id int32) sim.Time {
		return phase[id]
	}))

	start := time.Now()
	eng.Dispatch(cfg.Nodes, func(i int) {
		eng.UpsertNode(radio.NodeID(i), nodePos[i])
	})

	spec := core.TemporalSpec{Period: cfg.Period, Deadline: cfg.Deadline, Fresh: cfg.Fresh}
	res := ChurnResult{Config: cfg}
	join := func(u *churnUser, at sim.Time) error {
		u.joined = true
		return eng.RegisterTemporalE(u.id, cfg.Radius, u.posAt(region, at), spec, at)
	}
	for _, u := range users {
		if u.static {
			if err := join(u, 0); err != nil {
				return ChurnResult{}, err
			}
		}
	}

	byID := make(map[uint32]*churnUser, len(users))
	for _, u := range users {
		byID[u.id] = u
	}
	liveCount := cfg.Static
	if liveCount > res.PeakLive {
		res.PeakLive = liveCount
	}
	pump := newDuePump(eng, byID)
	for t := cfg.Tick; t <= cfg.Duration; t += cfg.Tick {
		// Membership changes first: arrivals register with periods counted
		// from their join tick, departures free their ids immediately.
		for _, u := range users {
			if u.static || u.gone {
				continue
			}
			if !u.joined && u.joinAt < t {
				if err := join(u, t); err != nil {
					return ChurnResult{}, err
				}
				res.Joins++
				liveCount++
			}
			if u.joined && u.leaveAt <= t {
				u.gone = true
				eng.Deregister(u.id)
				res.Leaves++
				liveCount--
			}
		}
		if liveCount > res.PeakLive {
			res.PeakLive = liveCount
		}
		// Only users with a period actually due this tick are touched
		// (duePump pops them in (due, id) order and drains each on a
		// worker); per-user evaluation is a pure function of the node field
		// and that user's course, so the fan-out cannot change results.
		pump.tick(t, func(u *churnUser, id uint32, boundary sim.Time) bool {
			eng.UpdateWaypoint(id, u.posAt(region, boundary))
			wr, ok := eng.EvaluateDue(id, t)
			if !ok {
				return false
			}
			u.evals++
			u.fresh += wr.Data.Count
			u.stale += wr.StaleNodes
			if wr.Late {
				u.late++
			}
			// Per-user fold is ordered (periods are); the cross-user
			// fold below is a wrapping sum, so worker finish order
			// cannot leak into the digest.
			u.digest = u.digest*1099511628211 ^ uint64(wr.K)
			u.digest = u.digest*1099511628211 ^ math.Float64bits(wr.Data.Value(core.AggAvg))
			u.digest = u.digest*1099511628211 ^ uint64(wr.Lateness)
			u.digest = u.digest*1099511628211 ^ uint64(wr.MaxStaleness)
			return true
		})
	}

	freshSum := 0
	for _, u := range users {
		res.Evaluations += u.evals
		res.Late += u.late
		res.StaleExclusions += u.stale
		freshSum += u.fresh
		if u.static {
			res.StaticDigest += (u.digest | 1) * uint64(u.id)
		}
	}
	if res.Evaluations > 0 {
		res.MeanFresh = float64(freshSum) / float64(res.Evaluations)
	}
	res.Elapsed = time.Since(start)
	return res, nil
}
