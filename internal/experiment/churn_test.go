package experiment

import (
	"testing"
	"time"

	"mobiquery/internal/field"
)

func smallChurn() ChurnConfig {
	cfg := DefaultChurn()
	cfg.Nodes = 1500
	cfg.RegionSide = 1000
	cfg.Static = 8
	cfg.Churners = 20
	cfg.Duration = 20 * time.Second
	return cfg
}

func TestChurnValidate(t *testing.T) {
	if err := DefaultChurn().Validate(); err != nil {
		t.Fatalf("default churn config invalid: %v", err)
	}
	bad := []func(*ChurnConfig){
		func(c *ChurnConfig) { c.Nodes = 0 },
		func(c *ChurnConfig) { c.Static = 0 },
		func(c *ChurnConfig) { c.Churners = -1 },
		func(c *ChurnConfig) { c.Radius = 0 },
		func(c *ChurnConfig) { c.SamplePeriod = 0 },
		func(c *ChurnConfig) { c.Period = 0 },
		func(c *ChurnConfig) { c.Deadline = -1 },
		func(c *ChurnConfig) { c.Tick = 0 },
		func(c *ChurnConfig) { c.Duration = c.Period / 2 },
		func(c *ChurnConfig) { c.Field = nil },
	}
	for i, mutate := range bad {
		cfg := DefaultChurn()
		mutate(&cfg)
		if _, err := RunChurn(cfg); err == nil {
			t.Errorf("mutation %d: expected a configuration error", i)
		}
	}
}

func TestChurnRunsAndCounts(t *testing.T) {
	cfg := smallChurn()
	res, err := RunChurn(cfg)
	if err != nil {
		t.Fatalf("RunChurn: %v", err)
	}
	// Static users stream for the whole run: Duration/Period results each.
	staticPeriods := cfg.Static * int(cfg.Duration/cfg.Period)
	if res.Evaluations < staticPeriods {
		t.Errorf("evaluations = %d, want at least the static population's %d", res.Evaluations, staticPeriods)
	}
	if res.Joins == 0 || res.Leaves == 0 {
		t.Errorf("churn did not churn: %d joins, %d leaves", res.Joins, res.Leaves)
	}
	if res.Joins < res.Leaves {
		t.Errorf("more leaves (%d) than joins (%d)", res.Leaves, res.Joins)
	}
	if res.PeakLive < cfg.Static || res.PeakLive > cfg.Static+cfg.Churners {
		t.Errorf("peak live population %d outside [%d, %d]", res.PeakLive, cfg.Static, cfg.Static+cfg.Churners)
	}
	// Period and tick are aligned, so nothing should be late; the 1 s
	// sampling against a 1 s freshness window keeps everything fresh.
	if res.Late != 0 {
		t.Errorf("aligned ticks produced %d late results", res.Late)
	}
	if res.MeanFresh <= 0 {
		t.Error("no sensor ever contributed; geometry or sampling is off")
	}
}

// TestChurnDoesNotPerturbStaticUsers pins the isolation property behind
// dynamic membership: the static users' full per-period outcome digest is
// identical whether or not a churning population shares the engine.
func TestChurnDoesNotPerturbStaticUsers(t *testing.T) {
	withChurn := smallChurn()
	alone := withChurn
	alone.Churners = 0
	a, err := RunChurn(withChurn)
	if err != nil {
		t.Fatal(err)
	}
	b, err := RunChurn(alone)
	if err != nil {
		t.Fatal(err)
	}
	if a.StaticDigest != b.StaticDigest {
		t.Fatalf("churners changed the static users' results: digest %#x with churn, %#x without", a.StaticDigest, b.StaticDigest)
	}
	if b.Joins != 0 || b.Leaves != 0 {
		t.Errorf("churner-free run reported churn: %d/%d", b.Joins, b.Leaves)
	}
}

// TestChurnDeterministicAcrossWorkerCounts pins the concurrency invariant
// on the temporal path: pool width and shard count never change results.
func TestChurnDeterministicAcrossWorkerCounts(t *testing.T) {
	base := smallChurn()
	ref, err := RunChurn(base)
	if err != nil {
		t.Fatal(err)
	}
	for _, w := range []int{1, 3} {
		for _, s := range []int{1, 16} {
			cfg := base
			cfg.Workers = w
			cfg.Shards = s
			got, err := RunChurn(cfg)
			if err != nil {
				t.Fatal(err)
			}
			if got.StaticDigest != ref.StaticDigest || got.Evaluations != ref.Evaluations ||
				got.StaleExclusions != ref.StaleExclusions || got.MeanFresh != ref.MeanFresh {
				t.Fatalf("workers=%d shards=%d: results moved (digest %#x vs %#x)", w, s, got.StaticDigest, ref.StaticDigest)
			}
		}
	}
}

// TestChurnCoarseTicksGoLate pins the deadline ledger: when the clock
// advances in steps coarser than the deadline slack allows, periods come
// due mid-step and their results are marked late.
func TestChurnCoarseTicksGoLate(t *testing.T) {
	cfg := smallChurn()
	cfg.Churners = 0
	cfg.Period = time.Second
	cfg.Fresh = time.Second
	cfg.Tick = 300 * time.Millisecond // does not divide the period
	cfg.Deadline = 0
	res, err := RunChurn(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if res.Late == 0 {
		t.Fatal("misaligned ticks produced no late results; deadline accounting is dead")
	}
	// A generous slack forgives the misalignment entirely.
	cfg.Deadline = cfg.Tick
	res2, err := RunChurn(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if res2.Late != 0 {
		t.Fatalf("slack of one tick still left %d late results", res2.Late)
	}
}

func TestChurnStaleExclusions(t *testing.T) {
	cfg := smallChurn()
	cfg.Churners = 0
	cfg.SamplePeriod = 1500 * time.Millisecond // slower than the window
	cfg.Fresh = 500 * time.Millisecond
	cfg.Field = field.Uniform{Value: 7}
	res, err := RunChurn(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if res.StaleExclusions == 0 {
		t.Fatal("sampling slower than the freshness window excluded nothing; the window is dead")
	}
}
