package experiment

import (
	"testing"

	"mobiquery/internal/field"
)

func smallScale() ScaleConfig {
	cfg := DefaultScale()
	cfg.Nodes = 3000
	cfg.Users = 400
	cfg.RegionSide = 2000
	cfg.Rounds = 3
	return cfg
}

func TestScaleValidate(t *testing.T) {
	if err := DefaultScale().Validate(); err != nil {
		t.Fatalf("default scale config invalid: %v", err)
	}
	bad := []func(*ScaleConfig){
		func(c *ScaleConfig) { c.Nodes = 0 },
		func(c *ScaleConfig) { c.Users = -1 },
		func(c *ScaleConfig) { c.Radius = 0 },
		func(c *ScaleConfig) { c.Rounds = 0 },
		func(c *ScaleConfig) { c.Step = -1 },
		func(c *ScaleConfig) { c.Shards = -2 },
		func(c *ScaleConfig) { c.Workers = -2 },
		func(c *ScaleConfig) { c.Field = nil },
	}
	for i, mutate := range bad {
		cfg := DefaultScale()
		mutate(&cfg)
		if err := cfg.Validate(); err == nil {
			t.Errorf("mutation %d: expected validation error", i)
		}
	}
}

// TestScaleShardedMatchesSerial pins the acceptance property of the
// concurrent engine: sharded dispatch changes wall time, never results.
func TestScaleShardedMatchesSerial(t *testing.T) {
	serial := smallScale()
	serial.Serial = true
	sharded := smallScale()
	sharded.Shards = 8
	sharded.Workers = 8
	a := RunScale(serial)
	b := RunScale(sharded)
	if a.Evaluations != b.Evaluations || a.Evaluations != 400*3 {
		t.Fatalf("evaluations %d vs %d, want %d", a.Evaluations, b.Evaluations, 400*3)
	}
	if a.MeanArea != b.MeanArea || a.MeanValue != b.MeanValue || a.Checksum != b.Checksum {
		t.Fatalf("serial %+v diverges from sharded %+v", a, b)
	}
	if a.MeanArea <= 0 {
		t.Fatal("scale scenario evaluated empty areas everywhere; geometry is off")
	}
}

// TestScaleDeterministicAcrossWorkerCounts re-runs one configuration at
// several pool widths and shard counts; the digest must never move.
func TestScaleDeterministicAcrossWorkerCounts(t *testing.T) {
	base := smallScale()
	ref := RunScale(base)
	for _, w := range []int{1, 2, 5} {
		for _, s := range []int{1, 4, 64} {
			cfg := base
			cfg.Workers = w
			cfg.Shards = s
			got := RunScale(cfg)
			if got.Checksum != ref.Checksum || got.MeanArea != ref.MeanArea {
				t.Fatalf("workers=%d shards=%d: checksum %v, want %v", w, s, got.Checksum, ref.Checksum)
			}
		}
	}
}

func TestScaleUniformFieldMeanValue(t *testing.T) {
	cfg := smallScale()
	cfg.Field = field.Uniform{Value: 42}
	res := RunScale(cfg)
	if res.MeanValue != 42 {
		t.Fatalf("MeanValue over uniform field = %v, want 42", res.MeanValue)
	}
}

// TestScaleSweepQuantiles pins the sweep-latency readout: every round
// observed, quantiles positive and ordered.
func TestScaleSweepQuantiles(t *testing.T) {
	res := RunScale(smallScale())
	if res.SweepP50 <= 0 || res.SweepP99 <= 0 {
		t.Fatalf("sweep quantiles not recorded: p50=%v p99=%v", res.SweepP50, res.SweepP99)
	}
	if res.SweepP50 > res.SweepP99 {
		t.Fatalf("sweep p50 %v > p99 %v", res.SweepP50, res.SweepP99)
	}
}
