// Package experiment assembles full MobiQuery simulations from scenario
// descriptions and reproduces every table and figure of the paper's
// evaluation. Individual runs are deterministic in the scenario seed;
// sweeps fan out across CPU cores.
package experiment

import (
	"fmt"
	"time"

	"mobiquery/internal/ccp"
	"mobiquery/internal/core"
	"mobiquery/internal/deploy"
	"mobiquery/internal/energy"
	"mobiquery/internal/field"
	"mobiquery/internal/geom"
	"mobiquery/internal/mac"
	"mobiquery/internal/metrics"
	"mobiquery/internal/mobility"
	"mobiquery/internal/netstack"
	"mobiquery/internal/radio"
	"mobiquery/internal/sim"
)

// ProfilerKind selects how motion profiles are generated (Section 6).
type ProfilerKind int

const (
	// ProfilerOracle delivers the exact full-course profile at time zero
	// (Section 6.2, "accurate motion profiles").
	ProfilerOracle ProfilerKind = iota + 1
	// ProfilerExact delivers an exact per-leg profile Ta before each motion
	// change (Section 6.3 advance-time experiments).
	ProfilerExact
	// ProfilerGPS estimates each leg from two noisy GPS fixes taken
	// GPSSampling apart (Section 6.3 location-error experiments).
	ProfilerGPS
)

// Scenario fully describes one simulation run. The zero value is not
// runnable; start from Default.
type Scenario struct {
	Seed int64

	// Deployment.
	Nodes      int
	RegionSide float64

	// Radio/MAC.
	Bandwidth    float64
	CommRange    float64
	SensingRange float64
	ActiveWindow time.Duration
	SleepPeriod  time.Duration

	// Query.
	Scheme core.Scheme
	Spec   core.QuerySpec

	// User motion.
	SpeedMin       float64
	SpeedMax       float64
	ChangeInterval time.Duration
	Duration       time.Duration

	// Motion profiles.
	Profiler    ProfilerKind
	AdvanceTime time.Duration // Ta for ProfilerExact
	GPSSampling time.Duration // delta for ProfilerGPS
	GPSError    float64       // max location error for ProfilerGPS

	// Field sampled by the sensors.
	Field field.Field

	// Idle suppresses the query service entirely: the network runs only
	// CCP + PSM. Used for the Figure 8 power baseline.
	Idle bool

	// Ablation switches (see DESIGN.md "Engineering decisions"): disable
	// the flood rebroadcast jitter or the equation (10) forward lead to
	// measure their contribution.
	DisableFloodJitter bool
	DisableForwardLead bool

	// Shards and Workers size the service's concurrent query engine
	// (spatial shards of the node index, worker-pool width for multi-user
	// dispatch). Zero selects sane defaults; concurrency never changes a
	// run's results, only its wall time.
	Shards  int
	Workers int
}

// Default returns the paper's Section 6.1 experimental settings: 200 nodes
// in 450x450 m, 100 ms active window, Rq=150 m, Tperiod=2 s, Tfresh=1 s,
// 2 Mbps radios with 105 m range, a walking user (3-5 m/s) changing course
// every 50 s for 400 s, and an oracle profile.
func Default() Scenario {
	duration := 400 * time.Second
	return Scenario{
		Seed:         1,
		Nodes:        200,
		RegionSide:   450,
		Bandwidth:    2e6,
		CommRange:    105,
		SensingRange: 50,
		ActiveWindow: 100 * time.Millisecond,
		SleepPeriod:  15 * time.Second,
		Scheme:       core.SchemeJIT,
		Spec: core.QuerySpec{
			Agg:      core.AggAvg,
			Radius:   150,
			Period:   2 * time.Second,
			Fresh:    time.Second,
			Lifetime: duration - 4*time.Second,
		},
		SpeedMin:       3,
		SpeedMax:       5,
		ChangeInterval: 50 * time.Second,
		Duration:       duration,
		Profiler:       ProfilerOracle,
		GPSSampling:    8 * time.Second,
		Field:          field.Uniform{Value: 20},
	}
}

// WithDuration returns a copy of s with the run duration (and query
// lifetime) adjusted consistently.
func (s Scenario) WithDuration(d time.Duration) Scenario {
	s.Duration = d
	s.Spec.Lifetime = d - 4*time.Second
	return s
}

// Validate reports scenario errors.
func (s Scenario) Validate() error {
	switch {
	case s.Nodes <= 0:
		return fmt.Errorf("experiment: Nodes must be positive")
	case s.RegionSide <= 0:
		return fmt.Errorf("experiment: RegionSide must be positive")
	case s.Bandwidth <= 0 || s.CommRange <= 0 || s.SensingRange <= 0:
		return fmt.Errorf("experiment: radio parameters must be positive")
	case s.Duration <= 0:
		return fmt.Errorf("experiment: Duration must be positive")
	case s.Profiler < ProfilerOracle || s.Profiler > ProfilerGPS:
		return fmt.Errorf("experiment: unknown profiler kind %d", s.Profiler)
	case s.Field == nil:
		return fmt.Errorf("experiment: Field must be set")
	case s.Shards < 0 || s.Workers < 0:
		return fmt.Errorf("experiment: Shards and Workers must be non-negative")
	}
	return s.Spec.Validate()
}

// RunResult holds everything measured in one run.
type RunResult struct {
	Scenario Scenario

	Records      []metrics.QueryRecord
	SuccessRatio float64
	// TargetSuccessRatio scores each result against the area it targeted
	// instead of the user's true area; the two coincide under exact motion
	// profiles (see metrics.QueryRecord.TargetFidelity).
	TargetSuccessRatio float64
	MeanFidelity       float64

	// Power, in watts, averaged per node over the run.
	PowerSleeper  float64
	PowerBackbone float64

	// Storage metrics (Section 5.2).
	MaxPrefetchLength  int
	MeanPrefetchLength float64
	MaxTreesPerNode    int
	TreeSetups         int

	BackboneNodes int
	MediumStats   radio.Stats
	NetStats      netstack.Stats
	EventsFired   uint64
}

// DebugResult pairs a RunResult with core protocol counters.
type DebugResult struct {
	RunResult
	Debug core.DebugCounters
}

// RunWithDebug is Run plus protocol diagnosis counters.
func RunWithDebug(sc Scenario) DebugResult {
	res, dbg := run(sc)
	return DebugResult{RunResult: res, Debug: dbg}
}

// queryStart draws the query issue time's phase relative to the PSM
// schedule from the run's deterministic "t0" stream. It must be derived
// identically wherever a scenario's timeline is reconstructed.
func queryStart(eng *sim.Engine, sc Scenario) sim.Time {
	return 200*time.Millisecond + time.Duration(eng.RNG("t0").Int63n(int64(sc.Spec.Period)))
}

// Run executes one scenario to completion and evaluates it.
func Run(sc Scenario) RunResult {
	res, _ := run(sc)
	return res
}

func run(sc Scenario) (RunResult, core.DebugCounters) {
	if err := sc.Validate(); err != nil {
		panic(err)
	}
	eng := sim.NewEngine(sc.Seed)
	region := geom.Square(sc.RegionSide)

	topo := deploy.Uniform(region, sc.Nodes, eng.RNG("deploy"))
	ccpCfg := ccp.DefaultConfig()
	ccpCfg.SensingRange = sc.SensingRange
	ccpCfg.CommRange = sc.CommRange
	sel := ccp.Select(region, topo.Positions, ccpCfg, eng.RNG("ccp"))

	radioParams := radio.Params{
		Range:            sc.CommRange,
		Bandwidth:        sc.Bandwidth,
		PropagationDelay: time.Microsecond,
	}
	macCfg := mac.DefaultConfig(sc.SleepPeriod)
	macCfg.ActiveWindow = sc.ActiveWindow

	nw := netstack.NewNetwork(eng, region, radioParams, macCfg)
	if sc.DisableFloodJitter {
		nw.SetFloodJitter(0)
	}
	for i, p := range topo.Positions {
		role := mac.RoleDutyCycled
		if sel.Active[i] {
			role = mac.RoleAlwaysOn
		}
		nw.AddNode(radio.NodeID(i), p, role)
	}

	course := mobility.NewRandomCourse(mobility.CourseSpec{
		Region:         region,
		Start:          geom.Pt(0, 0), // the user starts from a corner (Sec 6.2)
		SpeedMin:       sc.SpeedMin,
		SpeedMax:       sc.SpeedMax,
		ChangeInterval: sc.ChangeInterval,
		Duration:       sc.Duration,
	}, eng.RNG("course"))
	proxyID := radio.NodeID(sc.Nodes)
	nw.AddProxy(proxyID, course.PosAt(0))

	var profiler mobility.Profiler
	switch sc.Profiler {
	case ProfilerOracle:
		profiler = mobility.OracleProfiler{Course: course}
	case ProfilerExact:
		profiler = mobility.ExactProfiler{Course: course, Ta: sc.AdvanceTime}
	case ProfilerGPS:
		profiler = mobility.GPSPredictor{
			Course:   course,
			Sampling: sc.GPSSampling,
			Err:      sc.GPSError,
			RNG:      eng.RNG("gps"),
		}
	}

	coreCfg := core.DefaultConfig(sc.Spec)
	coreCfg.Scheme = sc.Scheme
	coreCfg.ScopeMargin = sc.CommRange / 2
	coreCfg.Engine = core.EngineConfig{Shards: sc.Shards, Workers: sc.Workers}
	// The query's issue time is arbitrary relative to the synchronized PSM
	// schedule; draw the phase per run. A fixed phase resonates when the
	// sleep period is a multiple of the query period (NP's recruit windows
	// then always miss the sampling interval).
	coreCfg.T0 = queryStart(eng, sc)
	if sc.DisableForwardLead {
		coreCfg.ForwardLead = 0
	}
	backboneFrac := float64(sel.NumActive) / float64(sc.Nodes)
	rp := deploy.SuggestPickupRadius(topo, backboneFrac, 0.9)
	if rp < 25 {
		rp = 25
	}
	if rp > 60 {
		rp = 60
	}
	coreCfg.PickupRadius = rp

	tracker := metrics.NewStorageTracker(coreCfg.T0, sc.Spec.Period)
	hooks := core.Hooks{OnTreeUp: tracker.Add, OnTreeDown: tracker.Remove}
	var svc *core.Service
	if !sc.Idle {
		svc = core.New(nw, coreCfg, sc.Field, course, profiler, proxyID, hooks)
	}

	nw.Start()
	if svc != nil {
		svc.Start()
	}
	eng.Run(sc.Duration + 2*time.Second)

	var results []core.PeriodResult
	var debug core.DebugCounters
	if svc != nil {
		results = svc.Results()
		debug = svc.Debug()
	}
	res := RunResult{
		Scenario:           sc,
		Records:            metrics.EvaluateAgg(results, course, topo.Positions, sc.Spec.Radius, sc.Spec.Period, sc.Spec.Agg),
		MaxPrefetchLength:  tracker.MaxPrefetchLength(),
		MeanPrefetchLength: tracker.MeanPrefetchLength(),
		MaxTreesPerNode:    tracker.MaxTreesPerNode(),
		TreeSetups:         tracker.Setups(),
		BackboneNodes:      sel.NumActive,
		MediumStats:        nw.Medium().Stats(),
		NetStats:           nw.Stats(),
		EventsFired:        eng.EventsFired(),
	}
	res.SuccessRatio = metrics.SuccessRatio(res.Records)
	res.TargetSuccessRatio = metrics.TargetSuccessRatio(res.Records)
	res.MeanFidelity = metrics.MeanFidelity(res.Records)

	var sleepers, backbone []energy.Report
	for i := range topo.Positions {
		rep := nw.Node(radio.NodeID(i)).Meter().Snapshot()
		if sel.Active[i] {
			backbone = append(backbone, rep)
		} else {
			sleepers = append(sleepers, rep)
		}
	}
	res.PowerSleeper = energy.Aggregate(sleepers).AveragePower
	res.PowerBackbone = energy.Aggregate(backbone).AveragePower
	return res, debug
}
