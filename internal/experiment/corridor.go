package experiment

import (
	"fmt"
	"math"
	"math/rand"
	"time"

	"mobiquery/internal/core"
	"mobiquery/internal/corridor"
	"mobiquery/internal/field"
	"mobiquery/internal/geom"
	"mobiquery/internal/mobility"
	"mobiquery/internal/prefetch"
	"mobiquery/internal/radio"
	"mobiquery/internal/sim"
)

// CorridorConfig describes the corridor-comparison scenario: the same
// turning mobile-user population and sleepy sensor field evaluated five
// ways — on demand, just-in-time prefetching from exact per-leg motion
// profiles, JIT from a noisy GPS predictor's profiles, and both profile
// modes again with the spatial corridor cache staging node snapshots along
// the predicted path. It measures what the corridor buys (warm staged
// evaluations instead of cold index scans) and what prediction error costs
// (mispredicts, late periods), on top of PR 4's timing-only planner.
type CorridorConfig struct {
	Seed int64

	// Nodes sensors over a RegionSide × RegionSide square, refreshing every
	// SamplePeriod, out of phase.
	Nodes        int
	RegionSide   float64
	SamplePeriod time.Duration

	// The shared query contract, as in the prefetch scenario.
	Radius   float64
	Period   time.Duration
	Deadline time.Duration
	Fresh    time.Duration

	// Users follow random-direction ground-truth courses (speed in
	// [SpeedMin, SpeedMax], new heading every ChangeInterval) for Duration,
	// evaluated on a Tick clock misaligned with Period.
	Users          int
	SpeedMin       float64
	SpeedMax       float64
	ChangeInterval time.Duration
	Duration       time.Duration
	Tick           time.Duration

	// GPSSampling and GPSError parameterize the noisy profile modes'
	// history-based predictor (the paper's Section 6.3 location error).
	GPSSampling time.Duration
	GPSError    float64

	// Lookahead is how many boundaries ahead the corridor stages.
	// ErrorBound is the noisy arms' corridor inflation in meters; zero
	// selects a practical default (the predictor's re-profiling threshold
	// plus two GPS error radii) — deliberately tighter than the proven
	// worst case, so sharp turns surface as mispredicts.
	Lookahead  int
	ErrorBound float64

	// Shards and Workers size the engine (zero = defaults).
	Shards  int
	Workers int

	// Field is the sensor field sampled during evaluation.
	Field field.Field
}

// DefaultCorridor returns the headline comparison: the prefetch scenario's
// 40-user/5k-node sleepy field, but with turning courses and a 2 s / 5 m
// GPS predictor feeding the planners.
func DefaultCorridor() CorridorConfig {
	return CorridorConfig{
		Seed:           1,
		Nodes:          5000,
		RegionSide:     2000,
		SamplePeriod:   3 * time.Second,
		Radius:         150,
		Period:         time.Second,
		Deadline:       100 * time.Millisecond,
		Fresh:          time.Second,
		Users:          40,
		SpeedMin:       1,
		SpeedMax:       5,
		ChangeInterval: 8 * time.Second,
		Duration:       30 * time.Second,
		Tick:           300 * time.Millisecond,
		GPSSampling:    2 * time.Second,
		GPSError:       5,
		Lookahead:      4,
		Field:          field.Gradient{Base: 20, Slope: geom.V(0.001, 0.002)},
	}
}

// Validate reports configuration errors.
func (c CorridorConfig) Validate() error {
	switch {
	case c.Nodes <= 0 || c.Users <= 0:
		return fmt.Errorf("experiment: corridor Nodes and Users must be positive")
	case c.RegionSide <= 0 || c.Radius <= 0:
		return fmt.Errorf("experiment: corridor RegionSide and Radius must be positive")
	case c.SamplePeriod <= 0:
		return fmt.Errorf("experiment: corridor SamplePeriod must be positive")
	case c.Period <= 0 || c.Deadline < 0 || c.Fresh < 0:
		return fmt.Errorf("experiment: corridor Period must be positive, Deadline and Fresh non-negative")
	case c.SpeedMin <= 0 || c.SpeedMax < c.SpeedMin:
		return fmt.Errorf("experiment: corridor speed range [%v, %v] invalid", c.SpeedMin, c.SpeedMax)
	case c.ChangeInterval <= 0:
		return fmt.Errorf("experiment: corridor ChangeInterval must be positive")
	case c.Tick <= 0 || c.Duration < c.Period:
		return fmt.Errorf("experiment: corridor Tick must be positive and Duration at least one Period")
	case c.GPSSampling <= 0 || c.GPSError < 0:
		return fmt.Errorf("experiment: corridor GPSSampling must be positive and GPSError non-negative")
	case c.Lookahead <= 0 || c.ErrorBound < 0:
		return fmt.Errorf("experiment: corridor Lookahead must be positive and ErrorBound non-negative")
	case c.Shards < 0 || c.Workers < 0:
		return fmt.Errorf("experiment: corridor Shards and Workers must be non-negative")
	case c.Field == nil:
		return fmt.Errorf("experiment: corridor Field must be set")
	}
	return nil
}

// noisyBound resolves the noisy arms' corridor inflation.
func (c CorridorConfig) noisyBound() float64 {
	if c.ErrorBound > 0 {
		return c.ErrorBound
	}
	return mobility.DefaultThreshold(c.GPSError) + 2*c.GPSError
}

// exactBound is the exact arms' inflation: per-leg exact profiles predict
// the course bit-for-bit away from partial-segment interpolation, so a few
// meters absorb float noise and the instant between a heading change and
// its profile delivery.
const exactBound = 2.0

// CorridorOutcome is one arm's ledger over the shared workload.
type CorridorOutcome struct {
	// Label names the arm; Strategy echoes the planner strategy (zero for
	// on-demand); Noisy and Corridor say which profile mode and whether
	// the spatial cache ran.
	Label    string
	Strategy prefetch.Strategy
	Noisy    bool
	Corridor bool

	// Evaluations counts delivered periods; Late those past the deadline
	// slack; WarmupPeriods those inside an equation-16 warmup interval.
	Evaluations   int
	Late          int
	WarmupPeriods int

	// StaleExclusions and PrefetchedReadings as in the prefetch scenario;
	// MeanStaleness averages each period's oldest contributor age.
	StaleExclusions    int
	PrefetchedReadings int
	MeanStaleness      time.Duration

	// StagedHits counts periods served warm from a corridor stage;
	// ColdEvaluations those served by the cold index scan (the two
	// partition Evaluations). Mispredicts counts boundaries whose actual
	// position escaped the corridor; Replans profile replacements
	// (predictor deliveries plus mispredict corrections).
	StagedHits      int
	ColdEvaluations int
	Mispredicts     int
	Replans         int

	// WarmEvalNs and ColdEvalNs are mean wall nanoseconds per warm and
	// cold evaluation — the corridor's evaluation-cost claim, measured.
	// Wall time: reported, never part of the digest.
	WarmEvalNs float64
	ColdEvalNs float64

	// Digest is an order-independent digest of every user's per-period
	// outcome values (not the warm/cold route, which must not change
	// them); identical configurations must agree on it regardless of
	// Shards and Workers, and a corridor arm must agree with its
	// corridor-less twin whenever no mispredict forced an extra re-plan.
	Digest uint64
}

// StagedHitRate returns StagedHits / Evaluations.
func (o CorridorOutcome) StagedHitRate() float64 {
	if o.Evaluations == 0 {
		return 0
	}
	return float64(o.StagedHits) / float64(o.Evaluations)
}

// CorridorResult is the five-arm comparison.
type CorridorResult struct {
	Config  CorridorConfig
	Arms    []CorridorOutcome
	Elapsed time.Duration
}

// Arm returns the outcome with the given label, by value.
func (r CorridorResult) Arm(label string) (CorridorOutcome, bool) {
	for _, a := range r.Arms {
		if a.Label == label {
			return a, true
		}
	}
	return CorridorOutcome{}, false
}

// corridorUser is one user's precomputed ground truth and profile streams
// plus the per-pass accumulator.
type corridorUser struct {
	id     uint32
	course mobility.Course
	exact  []mobility.TimedProfile
	noisy  []mobility.TimedProfile

	planner *prefetch.Planner
	cache   *corridor.Cache
	stream  []mobility.TimedProfile
	nextP   int

	evals, late, warm, stale, prefetched int
	hits, cold, mispredicts              int
	stalenessSum                         time.Duration
	warmNs, coldNs                       int64
	digest                               uint64
}

// corridorArm names one pass.
type corridorArm struct {
	label    string
	strat    prefetch.Strategy
	noisy    bool
	corridor bool
}

func corridorArms() []corridorArm {
	jit := prefetch.Strategy{Kind: prefetch.JIT}
	return []corridorArm{
		{label: "on-demand"},
		{label: "jit/exact", strat: jit},
		{label: "jit/noisy", strat: jit, noisy: true},
		{label: "jit+corridor/exact", strat: jit, corridor: true},
		{label: "jit+corridor/noisy", strat: jit, noisy: true, corridor: true},
	}
}

// RunCorridor executes the comparison: one pass per arm over an identical
// field, sampling schedule, user population, and profile streams, each
// driven through the engine's temporal path with per-query planners and
// (for the corridor arms) per-query corridor caches, exactly as the
// session API wires them.
func RunCorridor(cfg CorridorConfig) (CorridorResult, error) {
	if err := cfg.Validate(); err != nil {
		return CorridorResult{}, err
	}
	rng := rand.New(rand.NewSource(cfg.Seed))
	region := geom.Square(cfg.RegionSide)

	nodePos := make([]geom.Point, cfg.Nodes)
	for i := range nodePos {
		nodePos[i] = region.UniformPoint(rng)
	}
	phase := make([]sim.Time, cfg.Nodes)
	for i := range phase {
		phase[i] = time.Duration(rng.Int63n(int64(cfg.SamplePeriod)))
	}

	// Ground truth and both profile streams are drawn serially up front —
	// per-user sub-seeds from the master stream — so every arm sees the
	// same workload and no pass order or dispatch interleaving can change
	// what a user does.
	inner := geom.NewRect(0.15*cfg.RegionSide, 0.15*cfg.RegionSide, 0.85*cfg.RegionSide, 0.85*cfg.RegionSide)
	users := make([]*corridorUser, cfg.Users)
	for i := range users {
		courseRNG := rand.New(rand.NewSource(rng.Int63()))
		gpsRNG := rand.New(rand.NewSource(rng.Int63()))
		course := mobility.NewRandomCourse(mobility.CourseSpec{
			Region:         region,
			Start:          inner.UniformPoint(courseRNG),
			SpeedMin:       cfg.SpeedMin,
			SpeedMax:       cfg.SpeedMax,
			ChangeInterval: cfg.ChangeInterval,
			Duration:       cfg.Duration,
		}, courseRNG)
		users[i] = &corridorUser{
			id:     uint32(i + 1),
			course: course,
			exact:  mobility.ExactProfiler{Course: course}.Profiles(),
			noisy: mobility.GPSPredictor{
				Course:   course,
				Sampling: cfg.GPSSampling,
				Err:      cfg.GPSError,
				RNG:      gpsRNG,
			}.Profiles(),
		}
	}

	res := CorridorResult{Config: cfg}
	start := time.Now()
	for _, arm := range corridorArms() {
		out, err := runCorridorPass(cfg, arm, region, nodePos, phase, users)
		if err != nil {
			return CorridorResult{}, err
		}
		res.Arms = append(res.Arms, out)
	}
	res.Elapsed = time.Since(start)
	return res, nil
}

// pump installs every profile delivered by `upTo` into the user's planner
// and cache, mirroring the session layer's collectDue pump.
func (u *corridorUser) pump(upTo sim.Time) {
	for u.nextP < len(u.stream) && u.stream[u.nextP].Deliver <= upTo {
		tp := u.stream[u.nextP]
		u.nextP++
		u.planner.Replan(tp.Profile, tp.Deliver)
		if u.cache != nil {
			u.cache.SetProfile(tp.Profile, tp.Deliver)
		}
	}
}

// truthProfile is the ground-truth correction issued after a mispredict: a
// straight line from the user's actual position at their actual heading —
// what a waypoint report carries.
func (u *corridorUser) truthProfile(at sim.Time, period time.Duration) mobility.Profile {
	vel := u.course.VelAt(at)
	if vel.Len() == 0 {
		return mobility.Profile{Path: mobility.Stationary(u.course.PosAt(at), at), TS: at, Generated: at}
	}
	return mobility.Profile{
		Path:      mobility.LinearPath(u.course.PosAt(at), vel, at, at+period),
		TS:        at,
		Generated: at,
	}
}

// runCorridorPass runs one arm over the shared workload.
func runCorridorPass(cfg CorridorConfig, arm corridorArm, region geom.Rect,
	nodePos []geom.Point, phase []sim.Time, users []*corridorUser) (CorridorOutcome, error) {
	eng, err := core.NewQueryEngineE(region, cfg.Radius, cfg.Field,
		core.EngineConfig{Shards: cfg.Shards, Workers: cfg.Workers})
	if err != nil {
		return CorridorOutcome{}, err
	}
	base := core.ScheduleSampler(cfg.SamplePeriod, func(id int32) sim.Time { return phase[id] })
	eng.SetSampler(base)
	eng.Dispatch(len(nodePos), func(i int) {
		eng.UpsertNode(radio.NodeID(i), nodePos[i])
	})

	bound := exactBound
	if arm.noisy {
		bound = cfg.noisyBound()
	}
	spec := core.TemporalSpec{Period: cfg.Period, Deadline: cfg.Deadline, Fresh: cfg.Fresh}
	byID := make(map[uint32]*corridorUser, len(users))
	for _, u := range users {
		*u = corridorUser{id: u.id, course: u.course, exact: u.exact, noisy: u.noisy}
		byID[u.id] = u
		if err := eng.RegisterTemporalE(u.id, cfg.Radius, u.course.PosAt(0), spec, 0); err != nil {
			return CorridorOutcome{}, err
		}
		if !arm.strat.Prefetching() {
			continue
		}
		u.stream = u.exact
		if arm.noisy {
			u.stream = u.noisy
		}
		// Initial prediction: the last profile delivered by t=0, or a
		// stationary bootstrap until the predictor's first delivery —
		// exactly the session API's Subscribe behavior.
		prof := mobility.Profile{Path: mobility.Stationary(u.course.PosAt(0), 0)}
		for u.nextP < len(u.stream) && u.stream[u.nextP].Deliver <= 0 {
			prof = u.stream[u.nextP].Profile
			u.nextP++
		}
		u.planner, err = prefetch.NewPlanner(prefetch.Config{
			Strategy: arm.strat,
			Radius:   cfg.Radius,
			Period:   cfg.Period,
			Deadline: cfg.Deadline,
			Fresh:    cfg.Fresh,
			Sleep:    cfg.SamplePeriod,
		}, prof)
		if err != nil {
			return CorridorOutcome{}, err
		}
		eng.SetQuerySampler(u.id, u.planner.Sampler(base))
		eng.SetQueryPlan(u.id, u.planner)
		if arm.corridor {
			u.cache, err = corridor.NewCache(corridor.Config{
				Lookahead: cfg.Lookahead,
				Model:     corridor.ErrorModel{Base: bound},
				Radius:    cfg.Radius,
				Period:    cfg.Period,
			}, eng.Index())
			if err != nil {
				return CorridorOutcome{}, err
			}
			u.cache.SetProfile(prof, 0)
			eng.SetQueryWarmer(u.id, u.cache)
		}
	}

	pump := newDuePump(eng, byID)
	for t := cfg.Tick; t <= cfg.Duration; t += cfg.Tick {
		// Each user's evaluation depends only on the shared field and
		// their own course, streams, plan, and cache — the worker fan-out
		// cannot change results.
		pump.tick(t, func(u *corridorUser, id uint32, nextDue sim.Time) bool {
			if u.planner != nil {
				u.pump(nextDue)
			}
			eng.UpdateWaypoint(id, u.course.PosAt(nextDue))
			evalStart := time.Now()
			wr, ok := eng.EvaluateDue(id, t)
			evalNs := time.Since(evalStart).Nanoseconds()
			if !ok {
				return false
			}
			u.evals++
			u.stale += wr.StaleNodes
			u.prefetched += wr.Prefetched
			u.stalenessSum += wr.MaxStaleness
			if wr.Late {
				u.late++
			}
			if wr.Warmup {
				u.warm++
			}
			if wr.CorridorHit {
				u.hits++
				u.warmNs += evalNs
			} else {
				u.cold++
				u.coldNs += evalNs
			}
			if u.planner != nil {
				u.planner.NoteServed(wr.Prefetched)
			}
			if u.cache != nil {
				if mpAt, _, ok := u.cache.TakeMispredict(); ok {
					u.mispredicts++
					prof := u.truthProfile(mpAt, cfg.Period)
					u.planner.Replan(prof, mpAt)
					u.cache.SetProfile(prof, mpAt)
				}
				u.cache.StageThrough(wr.Due)
			}
			u.digest = u.digest*1099511628211 ^ uint64(wr.K)
			u.digest = u.digest*1099511628211 ^ math.Float64bits(wr.Data.Value(core.AggAvg))
			u.digest = u.digest*1099511628211 ^ uint64(wr.Lateness)
			u.digest = u.digest*1099511628211 ^ uint64(wr.MaxStaleness)
			u.digest = u.digest*1099511628211 ^ uint64(wr.Prefetched)
			if wr.Warmup {
				u.digest = u.digest*1099511628211 ^ 1
			}
			return true
		})
	}

	out := CorridorOutcome{Label: arm.label, Strategy: arm.strat, Noisy: arm.noisy, Corridor: arm.corridor}
	var stalenessSum time.Duration
	var warmNs, coldNs int64
	for _, u := range users {
		out.Evaluations += u.evals
		out.Late += u.late
		out.WarmupPeriods += u.warm
		out.StaleExclusions += u.stale
		out.PrefetchedReadings += u.prefetched
		out.StagedHits += u.hits
		out.ColdEvaluations += u.cold
		out.Mispredicts += u.mispredicts
		stalenessSum += u.stalenessSum
		warmNs += u.warmNs
		coldNs += u.coldNs
		if u.planner != nil {
			out.Replans += u.planner.Stats().Replans
		}
		out.Digest += (u.digest | 1) * uint64(u.id)
	}
	if out.Evaluations > 0 {
		out.MeanStaleness = stalenessSum / time.Duration(out.Evaluations)
	}
	if out.StagedHits > 0 {
		out.WarmEvalNs = float64(warmNs) / float64(out.StagedHits)
	}
	if out.ColdEvaluations > 0 {
		out.ColdEvalNs = float64(coldNs) / float64(out.ColdEvaluations)
	}
	return out, nil
}
