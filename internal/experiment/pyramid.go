package experiment

import (
	"fmt"
	"math"
	"math/rand"
	"time"

	"mobiquery/internal/core"
	"mobiquery/internal/field"
	"mobiquery/internal/geom"
	"mobiquery/internal/mobility"
	"mobiquery/internal/pyramid"
	"mobiquery/internal/radio"
	"mobiquery/internal/sim"
)

// PyramidConfig describes the aggregate-pyramid comparison: a population of
// mobile users running large-radius on-demand aggregate queries over a
// dense sensor field, evaluated twice with identical workloads — once by
// flat area scans, once with the hierarchical tile pyramid answering each
// boundary from covered coarse tiles plus a disk-tested fringe — and then
// both again with a lookback Window, whose every result merges the last
// Window boundaries. The pyramid arms must reproduce the flat arms' digests
// exactly; the ledger reports what the decomposition saved.
type PyramidConfig struct {
	Seed int64

	// Nodes sensors over a RegionSide × RegionSide square, refreshing every
	// SamplePeriod, out of phase.
	Nodes        int
	RegionSide   float64
	SamplePeriod time.Duration

	// The shared query contract. Radius is deliberately large: tile
	// decomposition pays off when the disk spans many index cells.
	Radius   float64
	Period   time.Duration
	Deadline time.Duration
	Fresh    time.Duration
	// Window is the lookback depth of the windowed arms (≥ 2).
	Window int

	// Users follow random-direction courses (speed in [SpeedMin,
	// SpeedMax], new heading every ChangeInterval) for Duration, evaluated
	// on a Tick clock misaligned with Period.
	Users          int
	SpeedMin       float64
	SpeedMax       float64
	ChangeInterval time.Duration
	Duration       time.Duration
	Tick           time.Duration

	// Shards and Workers size the engine (zero = defaults).
	Shards  int
	Workers int

	// Field is the sensor field sampled during evaluation. The default is
	// QuantizedField, under which every partial sum is exactly
	// representable and the flat-vs-pyramid digest comparison is bitwise
	// rather than approximate.
	Field field.Field
}

// QuantizedField returns a deterministic position- and time-dependent field
// whose values are multiples of 1/64 with bounded magnitude. Sums of such
// values are exactly representable in float64, so float addition over them
// is associative: folds that differ only in grouping (the flat scan's
// id-major order vs the pyramid's tile-major order) produce bit-identical
// sums, which lets digest comparisons demand exact equality.
func QuantizedField() field.Field {
	return field.Func(func(p geom.Point, t sim.Time) float64 {
		q := math.Floor(p.X/16+p.Y/32) + math.Floor(float64(t/time.Millisecond)/256)
		return math.Mod(q, 512) / 64
	})
}

// DefaultPyramid returns the headline comparison: 30 users sweeping 400 m
// disks over a 4k-node field, 1 s periods, with 3-period lookback windows
// on the windowed arms.
func DefaultPyramid() PyramidConfig {
	return PyramidConfig{
		Seed:           1,
		Nodes:          4000,
		RegionSide:     2000,
		SamplePeriod:   3 * time.Second,
		Radius:         400,
		Period:         time.Second,
		Deadline:       100 * time.Millisecond,
		Fresh:          time.Second,
		Window:         3,
		Users:          30,
		SpeedMin:       1,
		SpeedMax:       5,
		ChangeInterval: 8 * time.Second,
		Duration:       30 * time.Second,
		Tick:           300 * time.Millisecond,
		Field:          QuantizedField(),
	}
}

// Validate reports configuration errors.
func (c PyramidConfig) Validate() error {
	switch {
	case c.Nodes <= 0 || c.Users <= 0:
		return fmt.Errorf("experiment: pyramid Nodes and Users must be positive")
	case c.RegionSide <= 0 || c.Radius <= 0:
		return fmt.Errorf("experiment: pyramid RegionSide and Radius must be positive")
	case c.SamplePeriod <= 0:
		return fmt.Errorf("experiment: pyramid SamplePeriod must be positive")
	case c.Period <= 0 || c.Deadline < 0 || c.Fresh < 0:
		return fmt.Errorf("experiment: pyramid Period must be positive, Deadline and Fresh non-negative")
	case c.Window < 2:
		return fmt.Errorf("experiment: pyramid Window %d must be at least 2", c.Window)
	case c.SpeedMin <= 0 || c.SpeedMax < c.SpeedMin:
		return fmt.Errorf("experiment: pyramid speed range [%v, %v] invalid", c.SpeedMin, c.SpeedMax)
	case c.ChangeInterval <= 0:
		return fmt.Errorf("experiment: pyramid ChangeInterval must be positive")
	case c.Tick <= 0 || c.Duration < c.Period:
		return fmt.Errorf("experiment: pyramid Tick must be positive and Duration at least one Period")
	case c.Shards < 0 || c.Workers < 0:
		return fmt.Errorf("experiment: pyramid Shards and Workers must be non-negative")
	case c.Field == nil:
		return fmt.Errorf("experiment: pyramid Field must be set")
	}
	return nil
}

// PyramidOutcome is one arm's ledger over the shared workload.
type PyramidOutcome struct {
	// Label names the arm; Pyramid says whether the tile pyramid served it
	// and Window the lookback depth (0 for the single-period arms).
	Label   string
	Pyramid bool
	Window  int

	// Evaluations counts delivered periods; Late those past the deadline
	// slack; PyramidServes those answered by tile decomposition and
	// ColdEvaluations those by flat scans (the two partition Evaluations).
	Evaluations     int
	Late            int
	PyramidServes   int
	ColdEvaluations int

	// StaleExclusions totals in-area sensors excluded for freshness;
	// MeanStaleness averages each period's oldest contributor age.
	StaleExclusions int
	MeanStaleness   time.Duration

	// Index is the pyramid's own ledger (zero for the flat arms): epoch
	// ingests, node-visit accounting, decomposition sizes.
	Index pyramid.Stats

	// Digest is an order-independent digest of every user's per-period
	// outcome values (never the serve route). Identical configurations
	// must agree on it regardless of Shards and Workers, and each pyramid
	// arm must agree with its flat twin exactly — under the default
	// quantized field, bit for bit.
	Digest uint64
}

// PyramidResult is the four-arm comparison.
type PyramidResult struct {
	Config  PyramidConfig
	Arms    []PyramidOutcome
	Elapsed time.Duration
}

// Arm returns the outcome with the given label, by value.
func (r PyramidResult) Arm(label string) (PyramidOutcome, bool) {
	for _, a := range r.Arms {
		if a.Label == label {
			return a, true
		}
	}
	return PyramidOutcome{}, false
}

// pyramidUser is one user's precomputed ground truth plus the per-pass
// accumulator.
type pyramidUser struct {
	id     uint32
	course mobility.Course

	evals, late, hits, cold, stale int
	stalenessSum                   time.Duration
	digest                         uint64
}

// pyramidArm names one pass.
type pyramidArm struct {
	label   string
	pyramid bool
	window  int
}

func pyramidArms(window int) []pyramidArm {
	return []pyramidArm{
		{label: "flat"},
		{label: "pyramid", pyramid: true},
		{label: "flat/window", window: window},
		{label: "pyramid/window", pyramid: true, window: window},
	}
}

// RunPyramid executes the comparison: one pass per arm over an identical
// field, sampling schedule, and user population, each driven through the
// engine's temporal path; the pyramid arms additionally share one tile
// pyramid per pass, ingested cooperatively by the dispatch workers exactly
// as the session API drives it.
func RunPyramid(cfg PyramidConfig) (PyramidResult, error) {
	if err := cfg.Validate(); err != nil {
		return PyramidResult{}, err
	}
	rng := rand.New(rand.NewSource(cfg.Seed))
	region := geom.Square(cfg.RegionSide)

	nodePos := make([]geom.Point, cfg.Nodes)
	for i := range nodePos {
		nodePos[i] = region.UniformPoint(rng)
	}
	phase := make([]sim.Time, cfg.Nodes)
	for i := range phase {
		phase[i] = time.Duration(rng.Int63n(int64(cfg.SamplePeriod)))
	}

	// Courses are drawn serially up front so every arm sees the same
	// workload whatever the pass order or dispatch interleaving.
	inner := geom.NewRect(0.15*cfg.RegionSide, 0.15*cfg.RegionSide, 0.85*cfg.RegionSide, 0.85*cfg.RegionSide)
	users := make([]*pyramidUser, cfg.Users)
	for i := range users {
		courseRNG := rand.New(rand.NewSource(rng.Int63()))
		users[i] = &pyramidUser{
			id: uint32(i + 1),
			course: mobility.NewRandomCourse(mobility.CourseSpec{
				Region:         region,
				Start:          inner.UniformPoint(courseRNG),
				SpeedMin:       cfg.SpeedMin,
				SpeedMax:       cfg.SpeedMax,
				ChangeInterval: cfg.ChangeInterval,
				Duration:       cfg.Duration,
			}, courseRNG),
		}
	}

	res := PyramidResult{Config: cfg}
	start := time.Now()
	for _, arm := range pyramidArms(cfg.Window) {
		out, err := runPyramidPass(cfg, arm, region, nodePos, phase, users)
		if err != nil {
			return PyramidResult{}, err
		}
		res.Arms = append(res.Arms, out)
	}
	res.Elapsed = time.Since(start)
	return res, nil
}

// runPyramidPass runs one arm over the shared workload.
func runPyramidPass(cfg PyramidConfig, arm pyramidArm, region geom.Rect,
	nodePos []geom.Point, phase []sim.Time, users []*pyramidUser) (PyramidOutcome, error) {
	// The index cell is an eighth of the query radius: the disk spans ~16
	// cells across, enough room for covered tiles at several levels.
	eng, err := core.NewQueryEngineE(region, cfg.Radius/8, cfg.Field,
		core.EngineConfig{Shards: cfg.Shards, Workers: cfg.Workers})
	if err != nil {
		return PyramidOutcome{}, err
	}
	base := core.ScheduleSampler(cfg.SamplePeriod, func(id int32) sim.Time { return phase[id] })
	eng.SetSampler(base)
	eng.Dispatch(len(nodePos), func(i int) {
		eng.UpsertNode(radio.NodeID(i), nodePos[i])
	})

	spec := core.TemporalSpec{Period: cfg.Period, Deadline: cfg.Deadline, Fresh: cfg.Fresh, Window: arm.window}
	byID := make(map[uint32]*pyramidUser, len(users))
	for _, u := range users {
		*u = pyramidUser{id: u.id, course: u.course}
		byID[u.id] = u
		if err := eng.RegisterTemporalE(u.id, cfg.Radius, u.course.PosAt(0), spec, 0); err != nil {
			return PyramidOutcome{}, err
		}
	}
	var pyr *pyramid.Pyramid
	if arm.pyramid {
		pyr, err = pyramid.New(eng.Index(), pyramid.Config{
			Fresh:  cfg.Fresh,
			Sample: base,
			Field:  cfg.Field,
		})
		if err != nil {
			return PyramidOutcome{}, err
		}
		for _, u := range users {
			eng.SetQueryAggIndex(u.id, pyr)
		}
	}

	pump := newDuePump(eng, byID)
	for t := cfg.Tick; t <= cfg.Duration; t += cfg.Tick {
		// Each user's evaluation depends only on the shared field and their
		// own course; epoch ingest is cooperative, so the fan-out cannot
		// change results.
		pump.tick(t, func(u *pyramidUser, id uint32, nextDue sim.Time) bool {
			if pyr != nil {
				pyr.EnsureEpoch(nextDue)
			}
			eng.UpdateWaypoint(id, u.course.PosAt(nextDue))
			wr, ok := eng.EvaluateDue(id, t)
			if !ok {
				return false
			}
			u.evals++
			u.stale += wr.StaleNodes
			u.stalenessSum += wr.MaxStaleness
			if wr.Late {
				u.late++
			}
			if wr.PyramidHit {
				u.hits++
			} else {
				u.cold++
			}
			// Every value a subscriber could observe — and never the
			// serve route, which must not change them.
			u.digest = u.digest*1099511628211 ^ uint64(wr.K)
			u.digest = u.digest*1099511628211 ^ uint64(wr.Data.Count)
			u.digest = u.digest*1099511628211 ^ math.Float64bits(wr.Data.Sum)
			u.digest = u.digest*1099511628211 ^ math.Float64bits(wr.Data.Min)
			u.digest = u.digest*1099511628211 ^ math.Float64bits(wr.Data.Max)
			u.digest = u.digest*1099511628211 ^ uint64(wr.AreaNodes)
			u.digest = u.digest*1099511628211 ^ uint64(wr.StaleNodes)
			u.digest = u.digest*1099511628211 ^ uint64(wr.MaxStaleness)
			u.digest = u.digest*1099511628211 ^ uint64(wr.Lateness)
			u.digest = u.digest*1099511628211 ^ uint64(wr.WindowPeriods)
			return true
		})
	}

	out := PyramidOutcome{Label: arm.label, Pyramid: arm.pyramid, Window: arm.window}
	var stalenessSum time.Duration
	for _, u := range users {
		out.Evaluations += u.evals
		out.Late += u.late
		out.PyramidServes += u.hits
		out.ColdEvaluations += u.cold
		out.StaleExclusions += u.stale
		stalenessSum += u.stalenessSum
		out.Digest += (u.digest | 1) * uint64(u.id)
	}
	if out.Evaluations > 0 {
		out.MeanStaleness = stalenessSum / time.Duration(out.Evaluations)
	}
	if pyr != nil {
		out.Index = pyr.Stats()
	}
	return out, nil
}
