package experiment

import (
	"testing"
	"time"
)

func smallCorridor() CorridorConfig {
	// ChangeInterval stays at the default 8 s: the equation-10 margin here
	// is 6 periods, so each leg's profile can stage boundaries 6..8 of its
	// window — shorten the legs below 7 s and every period is warmup.
	cfg := DefaultCorridor()
	cfg.Nodes = 1500
	cfg.RegionSide = 1000
	cfg.Users = 10
	cfg.Duration = 20 * time.Second
	return cfg
}

func TestCorridorValidate(t *testing.T) {
	if err := DefaultCorridor().Validate(); err != nil {
		t.Fatalf("default corridor config invalid: %v", err)
	}
	bad := []func(*CorridorConfig){
		func(c *CorridorConfig) { c.Nodes = 0 },
		func(c *CorridorConfig) { c.Users = 0 },
		func(c *CorridorConfig) { c.Radius = 0 },
		func(c *CorridorConfig) { c.SamplePeriod = 0 },
		func(c *CorridorConfig) { c.Period = 0 },
		func(c *CorridorConfig) { c.SpeedMin = 0 },
		func(c *CorridorConfig) { c.SpeedMax = c.SpeedMin / 2 },
		func(c *CorridorConfig) { c.ChangeInterval = 0 },
		func(c *CorridorConfig) { c.Tick = 0 },
		func(c *CorridorConfig) { c.Duration = c.Period / 2 },
		func(c *CorridorConfig) { c.GPSSampling = 0 },
		func(c *CorridorConfig) { c.GPSError = -1 },
		func(c *CorridorConfig) { c.Lookahead = 0 },
		func(c *CorridorConfig) { c.ErrorBound = -1 },
		func(c *CorridorConfig) { c.Field = nil },
	}
	for i, mutate := range bad {
		cfg := DefaultCorridor()
		mutate(&cfg)
		if _, err := RunCorridor(cfg); err == nil {
			t.Errorf("mutation %d: expected a configuration error", i)
		}
	}
}

// TestCorridorWarmPathBitIdentical pins the headline invariant: the
// corridor arm over exact profiles produces exactly the plain-JIT digest —
// staging changes how nodes are enumerated, never what the answer is — and
// both corridor arms actually serve warm periods, leaving fewer cold
// evaluations than their corridor-less twins.
func TestCorridorWarmPathBitIdentical(t *testing.T) {
	res, err := RunCorridor(smallCorridor())
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Arms) != 5 {
		t.Fatalf("got %d arms, want 5", len(res.Arms))
	}
	jitExact, _ := res.Arm("jit/exact")
	jitNoisy, _ := res.Arm("jit/noisy")
	corrExact, _ := res.Arm("jit+corridor/exact")
	corrNoisy, _ := res.Arm("jit+corridor/noisy")
	onDemand, _ := res.Arm("on-demand")

	if corrExact.Digest != jitExact.Digest {
		t.Errorf("corridor changed exact-profile results: %#x vs %#x", corrExact.Digest, jitExact.Digest)
	}
	if corrExact.Late != jitExact.Late || corrExact.StaleExclusions != jitExact.StaleExclusions ||
		corrExact.PrefetchedReadings != jitExact.PrefetchedReadings {
		t.Errorf("corridor/exact ledgers diverged from jit/exact:\n%+v\n%+v", corrExact, jitExact)
	}
	for _, arm := range []CorridorOutcome{corrExact, corrNoisy} {
		if arm.StagedHits == 0 {
			t.Errorf("%s served no warm periods", arm.Label)
		}
		if arm.StagedHits+arm.ColdEvaluations != arm.Evaluations {
			t.Errorf("%s: hits %d + cold %d != evaluations %d", arm.Label, arm.StagedHits, arm.ColdEvaluations, arm.Evaluations)
		}
	}
	if corrNoisy.ColdEvaluations >= jitNoisy.ColdEvaluations {
		t.Errorf("corridor did not reduce cold evaluations on the noisy workload (%d vs %d)",
			corrNoisy.ColdEvaluations, jitNoisy.ColdEvaluations)
	}
	if corrExact.ColdEvaluations >= jitExact.ColdEvaluations {
		t.Errorf("corridor did not reduce cold evaluations on the exact workload (%d vs %d)",
			corrExact.ColdEvaluations, jitExact.ColdEvaluations)
	}
	for _, arm := range []CorridorOutcome{onDemand, jitExact, jitNoisy} {
		if arm.StagedHits != 0 || arm.Mispredicts != 0 {
			t.Errorf("corridor-less arm %s carries corridor artifacts: %+v", arm.Label, arm)
		}
	}
	if onDemand.Late == 0 {
		t.Error("on-demand baseline shows no late periods; the comparison is vacuous")
	}
	if jitNoisy.PrefetchedReadings == 0 || jitExact.PrefetchedReadings == 0 {
		t.Error("prefetching arms served no prefetched readings")
	}
}

// TestCorridorDigestPinned pins determinism and the concurrency invariant
// on the new scenario: identical configurations agree on every arm digest
// whatever the shard and worker sizing, and a re-run changes nothing.
func TestCorridorDigestPinned(t *testing.T) {
	base := smallCorridor()
	ref, err := RunCorridor(base)
	if err != nil {
		t.Fatal(err)
	}
	again, err := RunCorridor(base)
	if err != nil {
		t.Fatal(err)
	}
	for i, out := range again.Arms {
		if out.Digest != ref.Arms[i].Digest {
			t.Fatalf("%s: digest moved between identical runs (%#x vs %#x)", out.Label, out.Digest, ref.Arms[i].Digest)
		}
	}
	for _, w := range []int{1, 3} {
		for _, s := range []int{1, 16} {
			cfg := base
			cfg.Workers = w
			cfg.Shards = s
			got, err := RunCorridor(cfg)
			if err != nil {
				t.Fatal(err)
			}
			for i, out := range got.Arms {
				want := ref.Arms[i]
				if out.Digest != want.Digest || out.Late != want.Late ||
					out.StagedHits != want.StagedHits || out.Mispredicts != want.Mispredicts {
					t.Fatalf("workers=%d shards=%d %s: results moved (digest %#x vs %#x, hits %d vs %d)",
						w, s, out.Label, out.Digest, want.Digest, out.StagedHits, want.StagedHits)
				}
			}
		}
	}
}

// TestCorridorTightBoundMispredicts pins the mispredict path at scenario
// level: squeezing the noisy arms' inflation below the predictor's real
// error forces mispredicts, every one of which re-plans (replans grow with
// them), while exact arms stay clean.
func TestCorridorTightBoundMispredicts(t *testing.T) {
	cfg := smallCorridor()
	cfg.ErrorBound = 8 // far below the ~35 m practical bound
	res, err := RunCorridor(cfg)
	if err != nil {
		t.Fatal(err)
	}
	corrNoisy, _ := res.Arm("jit+corridor/noisy")
	corrExact, _ := res.Arm("jit+corridor/exact")
	if corrNoisy.Mispredicts == 0 {
		t.Error("a tight bound over noisy profiles produced no mispredicts")
	}
	loose, err := RunCorridor(smallCorridor())
	if err != nil {
		t.Fatal(err)
	}
	looseNoisy, _ := loose.Arm("jit+corridor/noisy")
	if corrNoisy.Replans-looseNoisy.Replans < corrNoisy.Mispredicts-looseNoisy.Mispredicts {
		t.Errorf("mispredicts (%d) did not all re-plan (replans %d vs loose %d/%d)",
			corrNoisy.Mispredicts, corrNoisy.Replans, looseNoisy.Mispredicts, looseNoisy.Replans)
	}
	if corrExact.Mispredicts != 0 {
		t.Errorf("exact profiles mispredicted %d times under a bound that only squeezes noise", corrExact.Mispredicts)
	}
}
