package experiment

import (
	"runtime"
	"sync"
)

// RunMany executes scenarios in parallel across CPU cores and returns the
// results in input order. Each scenario remains internally deterministic.
func RunMany(scenarios []Scenario) []RunResult {
	results := make([]RunResult, len(scenarios))
	workers := runtime.NumCPU()
	if workers > len(scenarios) {
		workers = len(scenarios)
	}
	if workers < 1 {
		workers = 1
	}
	jobs := make(chan int)
	var wg sync.WaitGroup
	wg.Add(workers)
	for w := 0; w < workers; w++ {
		go func() {
			defer wg.Done()
			for i := range jobs {
				results[i] = Run(scenarios[i])
			}
		}()
	}
	for i := range scenarios {
		jobs <- i
	}
	close(jobs)
	wg.Wait()
	return results
}

// Replicate returns n copies of sc with seeds base+0..n-1, the paper's
// "runs with different network topologies".
func Replicate(sc Scenario, base int64, n int) []Scenario {
	out := make([]Scenario, n)
	for i := range out {
		s := sc
		s.Seed = base + int64(i)
		out[i] = s
	}
	return out
}

// SuccessRatios extracts the success ratio from each result.
func SuccessRatios(rs []RunResult) []float64 {
	out := make([]float64, len(rs))
	for i, r := range rs {
		out[i] = r.SuccessRatio
	}
	return out
}

// TargetSuccessRatios extracts the targeted-area success ratio from each
// result.
func TargetSuccessRatios(rs []RunResult) []float64 {
	out := make([]float64, len(rs))
	for i, r := range rs {
		out[i] = r.TargetSuccessRatio
	}
	return out
}

// SleeperPowers extracts the per-sleeping-node average power from each
// result.
func SleeperPowers(rs []RunResult) []float64 {
	out := make([]float64, len(rs))
	for i, r := range rs {
		out[i] = r.PowerSleeper
	}
	return out
}
