package experiment

import (
	"strings"
	"testing"
	"time"

	"mobiquery/internal/core"
	"mobiquery/internal/metrics"
	"mobiquery/internal/sim"
)

func TestScenarioValidate(t *testing.T) {
	if err := Default().Validate(); err != nil {
		t.Fatalf("default scenario invalid: %v", err)
	}
	tests := []struct {
		name string
		mut  func(*Scenario)
	}{
		{"zero nodes", func(s *Scenario) { s.Nodes = 0 }},
		{"zero region", func(s *Scenario) { s.RegionSide = 0 }},
		{"zero bandwidth", func(s *Scenario) { s.Bandwidth = 0 }},
		{"zero duration", func(s *Scenario) { s.Duration = 0 }},
		{"bad profiler", func(s *Scenario) { s.Profiler = 0 }},
		{"nil field", func(s *Scenario) { s.Field = nil }},
	}
	for _, tt := range tests {
		t.Run(tt.name, func(t *testing.T) {
			s := Default()
			tt.mut(&s)
			if s.Validate() == nil {
				t.Error("want validation error")
			}
		})
	}
}

func TestWithDuration(t *testing.T) {
	s := Default().WithDuration(100 * time.Second)
	if s.Duration != 100*time.Second || s.Spec.Lifetime != 96*time.Second {
		t.Errorf("WithDuration: %v / %v", s.Duration, s.Spec.Lifetime)
	}
}

func TestRunDeterministic(t *testing.T) {
	sc := Default().WithDuration(60 * time.Second)
	sc.SleepPeriod = 3 * time.Second
	a := Run(sc)
	b := Run(sc)
	if a.SuccessRatio != b.SuccessRatio || a.MeanFidelity != b.MeanFidelity {
		t.Errorf("same seed differs: %.4f/%.4f vs %.4f/%.4f",
			a.SuccessRatio, a.MeanFidelity, b.SuccessRatio, b.MeanFidelity)
	}
	if a.EventsFired != b.EventsFired {
		t.Errorf("event counts differ: %d vs %d", a.EventsFired, b.EventsFired)
	}
	if a.MediumStats != b.MediumStats {
		t.Errorf("medium stats differ: %+v vs %+v", a.MediumStats, b.MediumStats)
	}
}

func TestRunSeedsDiffer(t *testing.T) {
	sc := Default().WithDuration(60 * time.Second)
	sc2 := sc
	sc2.Seed = 2
	if Run(sc).EventsFired == Run(sc2).EventsFired {
		t.Log("different seeds produced equal event counts (possible but unlikely)")
	}
}

func TestRunManyMatchesRunAndOrder(t *testing.T) {
	base := Default().WithDuration(60 * time.Second)
	base.SleepPeriod = 3 * time.Second
	scs := Replicate(base, 1, 3)
	many := RunMany(scs)
	if len(many) != 3 {
		t.Fatalf("results = %d", len(many))
	}
	for i, sc := range scs {
		if many[i].Scenario.Seed != sc.Seed {
			t.Errorf("result %d has seed %d", i, many[i].Scenario.Seed)
		}
	}
	single := Run(scs[1])
	if many[1].SuccessRatio != single.SuccessRatio {
		t.Errorf("parallel run differs from serial: %.4f vs %.4f", many[1].SuccessRatio, single.SuccessRatio)
	}
}

func TestReplicate(t *testing.T) {
	scs := Replicate(Default(), 10, 4)
	for i, sc := range scs {
		if sc.Seed != 10+int64(i) {
			t.Errorf("seed %d = %d", i, sc.Seed)
		}
	}
}

func TestJITBeatsNP(t *testing.T) {
	jit := Default().WithDuration(120 * time.Second)
	jit.SleepPeriod = 9 * time.Second
	np := jit
	np.Scheme = core.SchemeNP
	rj, rn := Run(jit), Run(np)
	if rj.SuccessRatio <= rn.SuccessRatio {
		t.Errorf("JIT (%.2f) must beat NP (%.2f)", rj.SuccessRatio, rn.SuccessRatio)
	}
	if rn.SuccessRatio > 0.35 {
		t.Errorf("NP success = %.2f, paper reports below 0.35", rn.SuccessRatio)
	}
	if rj.SuccessRatio < 0.80 {
		t.Errorf("JIT success = %.2f, expected near 1 minus warmup", rj.SuccessRatio)
	}
}

func TestJITStorageMatchesEq12(t *testing.T) {
	for _, tt := range []struct {
		sleep time.Duration
		want  int
	}{{3 * time.Second, 4}, {9 * time.Second, 7}, {15 * time.Second, 10}} {
		sc := Default().WithDuration(90 * time.Second)
		sc.SleepPeriod = tt.sleep
		res := Run(sc)
		// Allow one extra for teardown lag.
		if res.MaxPrefetchLength < tt.want-1 || res.MaxPrefetchLength > tt.want+1 {
			t.Errorf("sleep %v: PL=%d, eq.(12) gives %d", tt.sleep, res.MaxPrefetchLength, tt.want)
		}
	}
}

func TestGPStoresWholeSession(t *testing.T) {
	sc := Default().WithDuration(90 * time.Second)
	sc.Scheme = core.SchemeGP
	res := Run(sc)
	if res.MaxPrefetchLength < sc.Spec.Periods()-5 {
		t.Errorf("greedy PL=%d, want near %d", res.MaxPrefetchLength, sc.Spec.Periods())
	}
}

func TestIdleScenarioHasNoQueries(t *testing.T) {
	sc := Default().WithDuration(60 * time.Second)
	sc.Idle = true
	res := Run(sc)
	if res.TreeSetups != 0 || len(res.Records) != 0 {
		t.Errorf("idle run produced protocol activity: %d setups", res.TreeSetups)
	}
	if res.PowerSleeper <= 0.13 || res.PowerSleeper >= 0.2 {
		t.Errorf("idle sleeper power = %.3f W, want slightly above the 0.13 W sleep floor", res.PowerSleeper)
	}
	if res.PowerBackbone < 0.8 {
		t.Errorf("backbone power = %.3f W, want ~0.83 W idle", res.PowerBackbone)
	}
}

func TestQueryPowerAboveIdle(t *testing.T) {
	idle := Default().WithDuration(90 * time.Second)
	idle.SleepPeriod = 9 * time.Second
	idle.Idle = true
	busy := idle
	busy.Idle = false
	ri, rb := Run(idle), Run(busy)
	delta := rb.PowerSleeper - ri.PowerSleeper
	if delta <= 0 {
		t.Errorf("querying must cost energy: delta = %.4f W", delta)
	}
	if delta > 0.05 {
		t.Errorf("delta = %.3f W, paper reports the increase stays below 0.05 W", delta)
	}
}

func TestTableFormat(t *testing.T) {
	tbl := Table{
		ID:      "Figure X",
		Title:   "demo",
		Columns: []string{"x", "a", "b"},
		Rows: []Row{
			{Label: "1", Cells: []Cell{{Value: 0.5}, {Value: 0.25, CI: 0.01, HasCI: true}}},
		},
		Notes: "hello",
	}
	out := tbl.Format()
	for _, want := range []string{"Figure X", "demo", "0.500", "0.250 ±0.010", "note: hello"} {
		if !strings.Contains(out, want) {
			t.Errorf("formatted table missing %q:\n%s", want, out)
		}
	}
}

func TestMeasureWarmup(t *testing.T) {
	mk := func(k int, success bool) metrics.QueryRecord {
		return metrics.QueryRecord{K: k, Success: success}
	}
	var recs []metrics.QueryRecord
	for k := 1; k <= 40; k++ {
		// A change at 20s (k=10.25): periods 11-14 fail.
		recs = append(recs, mk(k, k < 11 || k > 14))
	}
	changes := []sim.Time{20 * time.Second}
	got := MeasureWarmup(recs, changes, 2*time.Second, 500*time.Millisecond)
	if got != 4 {
		t.Errorf("MeasureWarmup = %v, want 4", got)
	}
	if MeasureWarmup(nil, changes, 2*time.Second, 0) != 0 {
		t.Error("empty records should measure 0")
	}
	if MeasureWarmup(recs, nil, 2*time.Second, 0) != 0 {
		t.Error("no changes should measure 0")
	}
}

func TestReconstructCourseMatchesRun(t *testing.T) {
	sc := Default().WithDuration(60 * time.Second)
	c1 := reconstructCourse(sc)
	c2 := reconstructCourse(sc)
	if c1.PosAt(30*time.Second) != c2.PosAt(30*time.Second) {
		t.Error("course reconstruction not deterministic")
	}
}

func TestOptionsScaling(t *testing.T) {
	o := Options{Scale: 0.25}
	if got := o.duration(400 * time.Second); got != 100*time.Second {
		t.Errorf("scaled duration = %v", got)
	}
	if got := o.duration(100 * time.Second); got != 60*time.Second {
		t.Errorf("scaled duration floor = %v", got)
	}
	if got := (Options{}).duration(400 * time.Second); got != 400*time.Second {
		t.Errorf("unscaled duration = %v", got)
	}
	if got := (Options{Runs: 2}).runs(5); got != 2 {
		t.Errorf("runs override = %d", got)
	}
	if got := (Options{}).runs(5); got != 5 {
		t.Errorf("default runs = %d", got)
	}
}

// TestFigureSmoke runs every figure at drastically reduced scale to ensure
// the harness executes end to end. Shape assertions live in the benches and
// EXPERIMENTS.md; here we only require well-formed output.
func TestFigureSmoke(t *testing.T) {
	if testing.Short() {
		t.Skip("figure smoke is expensive")
	}
	opts := Options{Runs: 1, BaseSeed: 1, Scale: 0.2}
	for _, tbl := range Fig4(opts) {
		if len(tbl.Rows) != 5 {
			t.Errorf("Fig4 rows = %d", len(tbl.Rows))
		}
	}
	if tbl := Fig5(opts); len(tbl.Rows) < 20 {
		t.Errorf("Fig5 rows = %d", len(tbl.Rows))
	}
	if tbl := Fig6(opts); len(tbl.Rows) != 5 {
		t.Errorf("Fig6 rows = %d", len(tbl.Rows))
	}
	for _, tbl := range Fig7(opts) {
		if len(tbl.Rows) != 5 {
			t.Errorf("Fig7 rows = %d", len(tbl.Rows))
		}
	}
	if tbl := Fig8(opts); len(tbl.Rows) != 3 {
		t.Errorf("Fig8 rows = %d", len(tbl.Rows))
	}
	if tbl := WarmupValidation(opts); len(tbl.Rows) != 5 {
		t.Errorf("Warmup rows = %d", len(tbl.Rows))
	}
}
