package experiment

import (
	"testing"
	"time"

	"mobiquery/internal/analysis"
	"mobiquery/internal/geom"
	"mobiquery/internal/mobility"
	"mobiquery/internal/prefetch"
)

func smallPrefetch() PrefetchConfig {
	cfg := DefaultPrefetch()
	cfg.Nodes = 1500
	cfg.RegionSide = 1000
	cfg.Users = 10
	cfg.Duration = 20 * time.Second
	return cfg
}

func TestPrefetchValidate(t *testing.T) {
	if err := DefaultPrefetch().Validate(); err != nil {
		t.Fatalf("default prefetch config invalid: %v", err)
	}
	bad := []func(*PrefetchConfig){
		func(c *PrefetchConfig) { c.Nodes = 0 },
		func(c *PrefetchConfig) { c.Users = 0 },
		func(c *PrefetchConfig) { c.Radius = 0 },
		func(c *PrefetchConfig) { c.SamplePeriod = 0 },
		func(c *PrefetchConfig) { c.Period = 0 },
		func(c *PrefetchConfig) { c.Deadline = -1 },
		func(c *PrefetchConfig) { c.Tick = 0 },
		func(c *PrefetchConfig) { c.Duration = c.Period / 2 },
		func(c *PrefetchConfig) { c.Lookahead = -1 },
		func(c *PrefetchConfig) { c.Replans = -1 },
		func(c *PrefetchConfig) { c.Field = nil },
	}
	for i, mutate := range bad {
		cfg := DefaultPrefetch()
		mutate(&cfg)
		if _, err := RunPrefetch(cfg); err == nil {
			t.Errorf("mutation %d: expected a configuration error", i)
		}
	}
}

// TestPrefetchBeatsOnDemand pins the scenario's headline claim: both
// prefetching strategies deliver fewer late periods and fewer stale
// exclusions than on-demand collection over the identical workload, with
// prefetched readings actually doing the work.
func TestPrefetchBeatsOnDemand(t *testing.T) {
	cfg := smallPrefetch()
	res, err := RunPrefetch(cfg)
	if err != nil {
		t.Fatalf("RunPrefetch: %v", err)
	}
	od, jit, gp := res.OnDemand, res.JIT, res.Greedy
	// Users × the periods the tick grid reaches (the last tick lands at
	// 19.8 s, short of the period-20 boundary).
	lastTick := cfg.Duration / cfg.Tick * cfg.Tick
	wantEvals := cfg.Users * int(lastTick/cfg.Period)
	for _, out := range res.Outcomes() {
		if out.Evaluations != wantEvals {
			t.Errorf("%v: %d evaluations, want %d", out.Strategy, out.Evaluations, wantEvals)
		}
	}
	if od.Late == 0 || od.StaleExclusions == 0 {
		t.Fatalf("on-demand baseline shows no pain (late %d, stale %d); the comparison is vacuous", od.Late, od.StaleExclusions)
	}
	if jit.Late >= od.Late || gp.Late >= od.Late {
		t.Errorf("late periods: on-demand %d, jit %d, greedy %d — prefetching should win", od.Late, jit.Late, gp.Late)
	}
	if jit.StaleExclusions >= od.StaleExclusions || gp.StaleExclusions >= od.StaleExclusions {
		t.Errorf("stale exclusions: on-demand %d, jit %d, greedy %d — prefetching should win", od.StaleExclusions, jit.StaleExclusions, gp.StaleExclusions)
	}
	if jit.PrefetchedReadings == 0 || gp.PrefetchedReadings == 0 {
		t.Error("prefetching strategies served no prefetched readings")
	}
	if od.PrefetchedReadings != 0 || od.WarmupPeriods != 0 || od.PeakOutstanding != 0 {
		t.Errorf("on-demand pass carries prefetch artifacts: %+v", od)
	}
	if jit.WarmupPeriods == 0 {
		t.Error("zero-advance profiles should cost warmup periods (equation 16)")
	}
	// JIT readings are captured at the boundary; greedy holds them from the
	// window opening, so its contributors run staler.
	if jit.MeanStaleness >= gp.MeanStaleness {
		t.Errorf("mean staleness: jit %v should be below greedy %v", jit.MeanStaleness, gp.MeanStaleness)
	}
}

// TestPrefetchStorageMatchesAnalysis pins the live storage ledger to the
// Section 5.2 closed forms: JIT's outstanding chains stay at the
// equation-12 constant while Greedy holds its full lookahead window.
func TestPrefetchStorageMatchesAnalysis(t *testing.T) {
	cfg := smallPrefetch()
	res, err := RunPrefetch(cfg)
	if err != nil {
		t.Fatal(err)
	}
	q := analysis.QueryParams{Period: cfg.Period, Fresh: cfg.Fresh, Sleep: cfg.SamplePeriod}
	if want := analysis.StorageJIT(q); res.JIT.PeakOutstanding != want {
		t.Errorf("JIT peak outstanding = %d, want the equation-12 constant %d", res.JIT.PeakOutstanding, want)
	}
	if res.Greedy.PeakOutstanding != cfg.Lookahead {
		t.Errorf("Greedy peak outstanding = %d, want the lookahead %d", res.Greedy.PeakOutstanding, cfg.Lookahead)
	}
	if res.Greedy.PeakOutstanding <= res.JIT.PeakOutstanding {
		t.Error("greedy should store more chains ahead than JIT (equations 11 vs 12)")
	}
	if res.Greedy.Strategy.Lookahead != cfg.Lookahead {
		t.Errorf("resolved greedy strategy = %+v", res.Greedy.Strategy)
	}
}

// TestPrefetchDigestPinned pins determinism and the concurrency invariant:
// identical configurations agree on every strategy digest, whatever the
// shard and worker sizing, and a re-run changes nothing.
func TestPrefetchDigestPinned(t *testing.T) {
	base := smallPrefetch()
	ref, err := RunPrefetch(base)
	if err != nil {
		t.Fatal(err)
	}
	again, err := RunPrefetch(base)
	if err != nil {
		t.Fatal(err)
	}
	for i, out := range again.Outcomes() {
		if out.Digest != ref.Outcomes()[i].Digest {
			t.Fatalf("%v: digest moved between identical runs (%#x vs %#x)", out.Strategy, out.Digest, ref.Outcomes()[i].Digest)
		}
	}
	for _, w := range []int{1, 3} {
		for _, s := range []int{1, 16} {
			cfg := base
			cfg.Workers = w
			cfg.Shards = s
			got, err := RunPrefetch(cfg)
			if err != nil {
				t.Fatal(err)
			}
			for i, out := range got.Outcomes() {
				want := ref.Outcomes()[i]
				if out.Digest != want.Digest || out.Late != want.Late || out.StaleExclusions != want.StaleExclusions {
					t.Fatalf("workers=%d shards=%d %v: results moved (digest %#x vs %#x)", w, s, out.Strategy, out.Digest, want.Digest)
				}
			}
		}
	}
}

// TestPrefetchReplansCostWarmup pins the motion-change cost: injecting
// ground-truth re-plans multiplies warmup periods without perturbing the
// on-demand baseline.
func TestPrefetchReplansCostWarmup(t *testing.T) {
	base := smallPrefetch()
	ref, err := RunPrefetch(base)
	if err != nil {
		t.Fatal(err)
	}
	replanned := base
	replanned.Replans = 2
	got, err := RunPrefetch(replanned)
	if err != nil {
		t.Fatal(err)
	}
	if got.JIT.WarmupPeriods <= ref.JIT.WarmupPeriods {
		t.Errorf("re-plans did not add warmup periods (%d vs %d)", got.JIT.WarmupPeriods, ref.JIT.WarmupPeriods)
	}
	if got.OnDemand.Digest != ref.OnDemand.Digest {
		t.Error("re-plans perturbed the on-demand baseline, which has no planner")
	}
}

// TestGreedyShortLookaheadStaysLate pins the equation-10 failure mode: a
// lookahead window smaller than the forward margin can never stage a period
// by its boundary, so every greedy period stays as late as on-demand ones.
func TestGreedyShortLookaheadStaysLate(t *testing.T) {
	cfg := smallPrefetch()
	cfg.Lookahead = 2 // margin is (3s + 2*1s)/1s = 5 periods
	res, err := RunPrefetch(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if res.Greedy.PrefetchedReadings != 0 {
		t.Errorf("a too-short lookahead still served %d prefetched readings", res.Greedy.PrefetchedReadings)
	}
	if res.Greedy.Late != res.OnDemand.Late {
		t.Errorf("unstaged greedy lateness (%d) should match on-demand (%d)", res.Greedy.Late, res.OnDemand.Late)
	}
	if _, err := prefetch.NewPlanner(prefetch.Config{
		Strategy: prefetch.Strategy{Kind: prefetch.Greedy, Lookahead: 2},
		Radius:   1, Period: time.Second,
	}, mobility.Profile{Path: mobility.Stationary(geom.Pt(0, 0), 0)}); err != nil {
		t.Fatalf("short lookahead is legal, just ineffective: %v", err)
	}
}
