package experiment

import (
	"mobiquery/internal/core"
	"mobiquery/internal/sim"
)

// duePump is the shared clock driver of the experiment harnesses: the one
// PopDue pump loop that churn, prefetch, corridor, and pyramid each used to
// carry a private copy of. Per tick it pops every query with a period
// boundary at or before t — in the scheduler's deterministic (due, id)
// order — and drains each popped query's due periods on a dispatch worker.
// A tick on which nothing is due (most of them, at Tick << Period) is the
// scheduler's O(stripes) idle peek.
//
// The pump owns the pop and user-lookup scratch so steady-state ticks do
// not allocate; one pump drives one engine from one goroutine.
type duePump[U any] struct {
	eng   *core.QueryEngine
	byID  map[uint32]U
	due   []core.DueEntry
	users []U
}

// newDuePump returns a pump over eng resolving popped query ids through
// byID. The map is referenced, not copied: harnesses that register users
// mid-run (churn) just keep the map current between ticks.
func newDuePump[U any](eng *core.QueryEngine, byID map[uint32]U) *duePump[U] {
	return &duePump[U]{eng: eng, byID: byID}
}

// tick advances the pump to virtual time t: every query with a boundary due
// by t is popped and drained on a dispatch worker, calling step once per
// due boundary in ascending boundary order. step reports whether draining
// this query may continue; returning false (the harness's EvaluateDue
// refused — the query vanished mid-drain) stops its loop. step runs
// concurrently for distinct users and must only touch u's own state, the
// engine, and harness state that is itself safe to share — the same
// contract the four private loops relied on.
func (p *duePump[U]) tick(t sim.Time, step func(u U, id uint32, boundary sim.Time) bool) {
	p.due = p.eng.PopDue(t, p.due[:0])
	if len(p.due) == 0 {
		return
	}
	p.users = p.users[:0]
	for _, de := range p.due {
		p.users = append(p.users, p.byID[de.ID])
	}
	due, users := p.due, p.users
	p.eng.Dispatch(len(users), func(i int) {
		u, id := users[i], due[i].ID
		for {
			_, boundary, ok := p.eng.NextDue(id)
			if !ok || boundary > t {
				return
			}
			if !step(u, id, boundary) {
				return
			}
		}
	})
}
