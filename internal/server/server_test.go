package server

import (
	"bytes"
	"context"
	"encoding/json"
	"fmt"
	"io"
	"net/http"
	"net/http/httptest"
	"runtime"
	"strings"
	"testing"
	"time"

	"mobiquery"
	"mobiquery/internal/wire"
)

// testConfig is the shared small field: deterministic in its seed.
func testConfig(sc mobiquery.ServiceConfig) mobiquery.NetworkConfig {
	nc := mobiquery.DefaultNetworkConfig()
	nc.Seed = 3
	nc.Nodes = 300
	nc.Service = sc
	return nc
}

func testSpec() wire.Spec {
	return wire.Spec{
		RadiusM:     150,
		PeriodNS:    int64(2 * time.Second),
		DeadlineNS:  int64(200 * time.Millisecond),
		FreshnessNS: int64(time.Second),
	}
}

// harness is a served service under a manual clock.
type harness struct {
	svc *mobiquery.Service
	srv *Server
	ts  *httptest.Server
}

func newHarness(t *testing.T, sc mobiquery.ServiceConfig) *harness {
	t.Helper()
	svc, err := mobiquery.Open(context.Background(), testConfig(sc), mobiquery.WithResultBuffer(64))
	if err != nil {
		t.Fatalf("Open: %v", err)
	}
	srv := New(svc, Options{AllowAdvance: true})
	ts := httptest.NewServer(srv)
	t.Cleanup(func() {
		ts.Close()
		svc.Close()
	})
	return &harness{svc: svc, srv: srv, ts: ts}
}

// subscribe opens a subscribe stream and decodes the ack.
func (h *harness) subscribe(t *testing.T, ctx context.Context, req wire.SubscribeRequest) (ack wire.Frame, dec *wire.Decoder, closeBody func()) {
	t.Helper()
	body, err := json.Marshal(req)
	if err != nil {
		t.Fatalf("marshal: %v", err)
	}
	hr, err := http.NewRequestWithContext(ctx, http.MethodPost, h.ts.URL+"/v1/subscribe", bytes.NewReader(body))
	if err != nil {
		t.Fatalf("request: %v", err)
	}
	resp, err := h.ts.Client().Do(hr)
	if err != nil {
		t.Fatalf("subscribe: %v", err)
	}
	if resp.StatusCode != http.StatusOK {
		msg, _ := io.ReadAll(resp.Body)
		resp.Body.Close()
		t.Fatalf("subscribe: status %d: %s", resp.StatusCode, msg)
	}
	dec = wire.NewDecoder(resp.Body)
	if err := dec.Decode(&ack); err != nil {
		t.Fatalf("ack: %v", err)
	}
	if ack.Type != wire.FrameAck || ack.ID == 0 {
		t.Fatalf("first frame is %+v, want an ack with an id", ack)
	}
	return ack, dec, func() { resp.Body.Close() }
}

// advance moves the served virtual clock.
func (h *harness) advance(t *testing.T, d time.Duration) {
	t.Helper()
	body, _ := json.Marshal(wire.AdvanceRequest{DNS: int64(d)})
	resp, err := h.ts.Client().Post(h.ts.URL+"/v1/advance", "application/json", bytes.NewReader(body))
	if err != nil {
		t.Fatalf("advance: %v", err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		msg, _ := io.ReadAll(resp.Body)
		t.Fatalf("advance: status %d: %s", resp.StatusCode, msg)
	}
}

func TestHealthAndStats(t *testing.T) {
	h := newHarness(t, mobiquery.ServiceConfig{})
	resp, err := http.Get(h.ts.URL + "/healthz")
	if err != nil {
		t.Fatalf("healthz: %v", err)
	}
	var hl wire.Health
	if err := json.NewDecoder(resp.Body).Decode(&hl); err != nil {
		t.Fatalf("decode health: %v", err)
	}
	resp.Body.Close()
	if !hl.OK || hl.Subscribers != 0 {
		t.Errorf("health %+v", hl)
	}

	resp, err = http.Get(h.ts.URL + "/v1/stats")
	if err != nil {
		t.Fatalf("stats: %v", err)
	}
	var st wire.ServiceStats
	if err := json.NewDecoder(resp.Body).Decode(&st); err != nil {
		t.Fatalf("decode stats: %v", err)
	}
	resp.Body.Close()
	if st.Nodes != 300 || st.Opened != 0 || st.Draining {
		t.Errorf("stats %+v", st)
	}
	if st.SchedStripes < 1 || st.SchedLen != 0 {
		t.Errorf("empty service scheduler stats %+v", st)
	}

	// One live subscription means one scheduled period, and the striped
	// scheduler's shape survives the wire round trip.
	_, _, done := h.subscribe(t, context.Background(), wire.SubscribeRequest{
		Spec:   testSpec(),
		Motion: wire.Motion{Kind: "static", XM: 225, YM: 225},
	})
	defer done()
	resp, err = http.Get(h.ts.URL + "/v1/stats")
	if err != nil {
		t.Fatalf("stats: %v", err)
	}
	st = wire.ServiceStats{}
	if err := json.NewDecoder(resp.Body).Decode(&st); err != nil {
		t.Fatalf("decode stats: %v", err)
	}
	resp.Body.Close()
	if st.Subscribers != 1 || st.SchedLen != 1 {
		t.Errorf("scheduler stats after subscribe %+v", st)
	}
	if sum := 0; true {
		for _, n := range st.SchedStripeLens {
			sum += n
		}
		if len(st.SchedStripeLens) != st.SchedStripes || sum != st.SchedLen {
			t.Errorf("stripe lens %v inconsistent with stripes=%d len=%d",
				st.SchedStripeLens, st.SchedStripes, st.SchedLen)
		}
	}
}

func TestSubscribeStreamsResultsAndEndFrame(t *testing.T) {
	h := newHarness(t, mobiquery.ServiceConfig{})
	req := wire.SubscribeRequest{
		Spec:   testSpec(),
		Motion: wire.Motion{Kind: "static", XM: 225, YM: 225},
	}
	req.Spec.LifetimeNS = int64(6 * time.Second) // 3 periods, then the stream ends
	_, dec, done := h.subscribe(t, context.Background(), req)
	defer done()

	for i := 0; i < 8; i++ {
		h.advance(t, time.Second)
	}
	var results []wire.Result
	var end *wire.Frame
	for end == nil {
		var f wire.Frame
		if err := dec.Decode(&f); err != nil {
			t.Fatalf("stream: %v (after %d results)", err, len(results))
		}
		switch f.Type {
		case wire.FrameResult:
			results = append(results, *f.Result)
		case wire.FrameEnd:
			end = &f
		default:
			t.Fatalf("unexpected frame %+v", f)
		}
	}
	if len(results) != 3 {
		t.Fatalf("got %d results, want 3", len(results))
	}
	for i, r := range results {
		if r.K != i+1 || !r.Received || r.Contributors == 0 {
			t.Errorf("result %d: %+v", i, r)
		}
	}
	if end.Stats == nil || end.Stats.Delivered != 3 || end.Stats.Dropped != 0 {
		t.Errorf("end frame stats %+v", end.Stats)
	}
	// The handler unregistered its stream.
	waitFor(t, "stream unregistered", func() bool { return h.srv.Streams() == 0 })
}

// TestClientDisconnectTearsDownSubscription pins the teardown contract:
// when the client goes away the subscription closes (the engine query is
// freed, Subscribers drops) and no handler goroutine leaks.
func TestClientDisconnectTearsDownSubscription(t *testing.T) {
	h := newHarness(t, mobiquery.ServiceConfig{})
	before := runtime.NumGoroutine()

	ctx, cancel := context.WithCancel(context.Background())
	req := wire.SubscribeRequest{Spec: testSpec(), Motion: wire.Motion{Kind: "linear", XM: 225, YM: 225, VXMPS: 2}}
	_, dec, done := h.subscribe(t, ctx, req)
	defer done()
	h.advance(t, 2*time.Second)
	var f wire.Frame
	if err := dec.Decode(&f); err != nil || f.Type != wire.FrameResult {
		t.Fatalf("first result: %+v err=%v", f, err)
	}
	if h.svc.Subscribers() != 1 || h.srv.Streams() != 1 {
		t.Fatalf("live: %d subscribers, %d streams", h.svc.Subscribers(), h.srv.Streams())
	}

	cancel() // client walks away mid-stream

	waitFor(t, "subscription closed", func() bool { return h.svc.Subscribers() == 0 })
	waitFor(t, "stream unregistered", func() bool { return h.srv.Streams() == 0 })
	h.ts.Client().CloseIdleConnections()
	waitFor(t, "goroutines returned", func() bool {
		runtime.GC()
		return runtime.NumGoroutine() <= before+2
	})
	// The service keeps working for everyone else.
	if _, _, done2 := h.subscribe(t, context.Background(), req); done2 != nil {
		done2()
	}
}

func TestWaypointClientStream(t *testing.T) {
	h := newHarness(t, mobiquery.ServiceConfig{})
	ack, dec, done := h.subscribe(t, context.Background(), wire.SubscribeRequest{
		Spec:   testSpec(),
		Motion: wire.Motion{Kind: "static", XM: 10, YM: 10}, // corner: few nodes
	})
	defer done()

	// Stream three waypoint updates; the last moves the user to the field
	// center, where the query circle holds many more nodes.
	var body bytes.Buffer
	enc := wire.NewEncoder(&body)
	for _, wp := range []wire.Waypoint{{XM: 50, YM: 50}, {XM: 150, YM: 150}, {XM: 225, YM: 225}} {
		enc.Encode(wp)
	}
	resp, err := http.Post(fmt.Sprintf("%s/v1/subscriptions/%d/waypoints", h.ts.URL, ack.ID), "application/x-ndjson", &body)
	if err != nil {
		t.Fatalf("waypoints: %v", err)
	}
	var reply wire.WaypointReply
	if err := json.NewDecoder(resp.Body).Decode(&reply); err != nil {
		t.Fatalf("reply: %v", err)
	}
	resp.Body.Close()
	if reply.Applied != 3 {
		t.Fatalf("applied %d waypoints, want 3", reply.Applied)
	}

	h.advance(t, 2*time.Second)
	var f wire.Frame
	if err := dec.Decode(&f); err != nil || f.Type != wire.FrameResult {
		t.Fatalf("result after waypoints: %+v err=%v", f, err)
	}
	// A 150 m circle at the center of the 450 m field covers far more of
	// the 300 nodes than the same circle in the corner would.
	if f.Result.AreaNodes < 50 {
		t.Errorf("result evaluated at the corner? area nodes %d", f.Result.AreaNodes)
	}

	// Per-subscription stats endpoint sees the delivery.
	resp, err = http.Get(fmt.Sprintf("%s/v1/subscriptions/%d/stats", h.ts.URL, ack.ID))
	if err != nil {
		t.Fatalf("sub stats: %v", err)
	}
	var info wire.SubscriptionInfo
	if err := json.NewDecoder(resp.Body).Decode(&info); err != nil {
		t.Fatalf("decode sub stats: %v", err)
	}
	resp.Body.Close()
	if info.ID != ack.ID || info.Stats.Delivered != 1 {
		t.Errorf("sub stats %+v", info)
	}

	// Unknown and malformed ids are clean client errors.
	for path, want := range map[string]int{
		"/v1/subscriptions/999999/stats": http.StatusNotFound,
		"/v1/subscriptions/zebra/stats":  http.StatusBadRequest,
	} {
		resp, err := http.Get(h.ts.URL + path)
		if err != nil {
			t.Fatalf("%s: %v", path, err)
		}
		resp.Body.Close()
		if resp.StatusCode != want {
			t.Errorf("%s: status %d, want %d", path, resp.StatusCode, want)
		}
	}
}

func TestBadRequestsAreClientErrors(t *testing.T) {
	h := newHarness(t, mobiquery.ServiceConfig{})
	cases := []struct {
		body string
		want int
	}{
		{"{not json", http.StatusBadRequest},
		{`{"spec":{"radius_m":100,"period_ns":1000000000,"strategy":"psychic"},"motion":{"kind":"static"}}`, http.StatusBadRequest},
		{`{"spec":{"radius_m":100,"period_ns":1000000000},"motion":{"kind":"teleport"}}`, http.StatusBadRequest},
		// Valid wire shape, invalid spec: rejected by Subscribe.
		{`{"spec":{"radius_m":-1,"period_ns":1000000000},"motion":{"kind":"static"}}`, http.StatusUnprocessableEntity},
	}
	for _, tc := range cases {
		resp, err := http.Post(h.ts.URL+"/v1/subscribe", "application/json", strings.NewReader(tc.body))
		if err != nil {
			t.Fatalf("post: %v", err)
		}
		resp.Body.Close()
		if resp.StatusCode != tc.want {
			t.Errorf("body %q: status %d, want %d", tc.body, resp.StatusCode, tc.want)
		}
	}
}

func TestDrainRejectsNewSubscribesKeepsStreams(t *testing.T) {
	h := newHarness(t, mobiquery.ServiceConfig{})
	req := wire.SubscribeRequest{Spec: testSpec(), Motion: wire.Motion{Kind: "static", XM: 225, YM: 225}}
	_, dec, done := h.subscribe(t, context.Background(), req)
	defer done()

	h.svc.Drain()

	body, _ := json.Marshal(req)
	resp, err := http.Post(h.ts.URL+"/v1/subscribe", "application/json", bytes.NewReader(body))
	if err != nil {
		t.Fatalf("post: %v", err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusUnprocessableEntity {
		t.Fatalf("subscribe while draining: status %d, want 422", resp.StatusCode)
	}

	// The existing stream keeps delivering.
	h.advance(t, 2*time.Second)
	var f wire.Frame
	if err := dec.Decode(&f); err != nil || f.Type != wire.FrameResult {
		t.Fatalf("result while draining: %+v err=%v", f, err)
	}
	if st := h.svc.Stats(); !st.Draining {
		t.Error("service stats should report draining")
	}
}

func TestAdvanceDisabledWithoutOption(t *testing.T) {
	svc, err := mobiquery.Open(context.Background(), testConfig(mobiquery.ServiceConfig{}))
	if err != nil {
		t.Fatalf("Open: %v", err)
	}
	defer svc.Close()
	ts := httptest.NewServer(New(svc, Options{}))
	defer ts.Close()
	body, _ := json.Marshal(wire.AdvanceRequest{DNS: int64(time.Second)})
	resp, err := http.Post(ts.URL+"/v1/advance", "application/json", bytes.NewReader(body))
	if err != nil {
		t.Fatalf("post: %v", err)
	}
	resp.Body.Close()
	if resp.StatusCode == http.StatusOK {
		t.Error("advance should not exist on a server without AllowAdvance")
	}
}

// waitFor polls cond for up to 5 s.
func waitFor(t *testing.T, what string, cond func() bool) {
	t.Helper()
	deadline := time.Now().Add(5 * time.Second)
	for time.Now().Before(deadline) {
		if cond() {
			return
		}
		time.Sleep(5 * time.Millisecond)
	}
	t.Fatalf("timed out waiting for %s", what)
}
