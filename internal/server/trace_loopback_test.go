package server

import (
	"context"
	"net/http"
	"strconv"
	"testing"
	"time"

	"mobiquery"
	"mobiquery/internal/wire"
)

// TestTracedLoopbackChainsReconcileExactly is the acceptance test for
// cross-tier tracing: a deterministic manual-clock run where EVERY
// subscription carries a trace context, so the joined client+server span
// set must cover every evaluated period. It pins three properties at
// once:
//
//   - every delivered period's joined chain is monotone: send <= ack,
//     armed <= popped <= eval_start <= eval_end <= flush <= delivered <=
//     wire <= recv (same host, same clock — no skew clamp needed here)
//   - no span is an orphan: its span id equals MintSpanID(trace, k), its
//     trace id equals the one its client minted, and period indices per
//     trace are gapless from 1
//   - the per-class span counts equal the /metrics ledger's
//     mobiquery_periods_evaluated_total{class} exactly — tracing and the
//     metrics ledger describe the same events, not two approximations
func TestTracedLoopbackChainsReconcileExactly(t *testing.T) {
	h := newHarness(t, mobiquery.ServiceConfig{})

	// Two subscriptions covering two serve classes: radius 150 attaches
	// the aggregate pyramid, radius 50 stays a cold index scan.
	traces := map[uint64]wire.Spec{}
	pyramid := testSpec()
	pyramid.TraceID = wire.FormatID(0xA11CE)
	traces[0xA11CE] = pyramid
	cold := testSpec()
	cold.RadiusM = 50
	cold.TraceID = wire.FormatID(0xB0B)
	traces[0xB0B] = cold

	type stream struct {
		trace uint64
		dec   *wire.Decoder
		send  int64
		ack   int64
	}
	var streams []*stream
	for tid, spec := range traces {
		send := time.Now().UnixNano()
		_, dec, done := h.subscribe(t, context.Background(), wire.SubscribeRequest{
			Spec:   spec,
			Motion: wire.Motion{Kind: "static", XM: 225, YM: 225},
		})
		defer done()
		streams = append(streams, &stream{trace: tid, dec: dec, send: send, ack: time.Now().UnixNano()})
	}

	const periods = 4
	for i := 0; i < 2*periods; i++ {
		h.advance(t, time.Second) // period 2 s: every other tick delivers
	}

	// Join client receive stamps onto the echoed server spans.
	var joined []wire.ClientSpan
	for _, st := range streams {
		for k := 1; k <= periods; k++ {
			var f wire.Frame
			if err := st.dec.Decode(&f); err != nil {
				t.Fatalf("trace %x period %d: %v", st.trace, k, err)
			}
			recv := time.Now().UnixNano()
			if f.Type != wire.FrameResult || f.Result == nil {
				t.Fatalf("trace %x period %d: frame %+v", st.trace, k, f)
			}
			sp := f.Result.Trace
			if sp == nil {
				t.Fatalf("trace %x period %d: result frame carries no span", st.trace, k)
			}
			joined = append(joined, wire.ClientSpan{
				Sub: uint32(f.Result.K), SendNS: st.send, AckNS: st.ack, RecvNS: recv, Server: *sp,
			})

			// Orphan-free: the ids are the ones this test minted.
			if got, _ := wire.ParseID(sp.TraceID); got != st.trace {
				t.Errorf("trace %x period %d: echoed trace id %q", st.trace, k, sp.TraceID)
			}
			want := mobiquery.MintSpanID(mobiquery.TraceID(st.trace), k)
			if got, _ := wire.ParseID(sp.SpanID); mobiquery.SpanID(got) != want {
				t.Errorf("trace %x period %d: span id %q, want %s",
					st.trace, k, sp.SpanID, wire.FormatID(uint64(want)))
			}
			if sp.K != k {
				t.Errorf("trace %x: period %d arrived as k=%d (gap or reorder)", st.trace, k, sp.K)
			}
			if sp.Outcome != "delivered" {
				t.Errorf("trace %x period %d: outcome %q", st.trace, k, sp.Outcome)
			}

			// Monotone across tiers, on one host's one clock.
			chain := []struct {
				name string
				ns   int64
			}{
				{"send", st.send}, {"ack", st.ack},
				{"armed", sp.ArmedNS}, {"popped", sp.PoppedNS},
				{"eval_start", sp.EvalStartNS}, {"eval_end", sp.EvalEndNS},
				{"flush", sp.FlushNS}, {"delivered", sp.DeliveredNS},
				{"wire", sp.WireNS}, {"recv", recv},
			}
			for j := 1; j < len(chain); j++ {
				if chain[j].ns == 0 {
					t.Fatalf("trace %x period %d: %s never stamped", st.trace, k, chain[j].name)
				}
				// The subscribe ack races the first period's arming; the
				// cross-tier ordering starts at the engine chain.
				if chain[j-1].name == "ack" && chain[j].name == "armed" && k == 1 {
					continue
				}
				if chain[j].ns < chain[j-1].ns {
					t.Errorf("trace %x period %d: %s (%d) precedes %s (%d)",
						st.trace, k, chain[j].name, chain[j].ns, chain[j-1].name, chain[j-1].ns)
				}
			}
		}
	}

	// Exact ledger equality: every subscription was traced, so per-class
	// span counts ARE the evaluated-period counters.
	classCount := map[string]float64{}
	for _, cs := range joined {
		classCount[cs.Server.Class]++
	}
	_, samples := fetchMetrics(t, h)
	for _, class := range []string{"cold", "planned", "corridor", "pyramid"} {
		ledger := samples[`mobiquery_periods_evaluated_total{class="`+class+`"}`]
		if classCount[class] != ledger {
			t.Errorf("class %s: %v traced spans, ledger says %v evaluated",
				class, classCount[class], ledger)
		}
	}
	if classCount["pyramid"] == 0 || classCount["cold"] == 0 {
		t.Errorf("workload did not cover both serve classes: %v", classCount)
	}
	if got := samples["mobiquery_trace_spans_published_total"]; got != float64(len(joined)) {
		t.Errorf("firehose published %v spans, %d delivered", got, len(joined))
	}
}

// TestTracedCatchUpSpansStayMonotone pins the stamp semantics of
// catch-up periods: one coarse manual-clock advance spanning several
// periods drains them all in a single collectDue call, so periods after
// the first are armed AFTER the batch's PopDue completed. Their logical
// pop instant is their arming moment (they never returned to the
// scheduler), so popped == armed and the chain stays monotone — the
// exact property mobiquery-tracestat's integrity gate rejects violations
// of, and one a per-tick workload can never exercise.
func TestTracedCatchUpSpansStayMonotone(t *testing.T) {
	h := newHarness(t, mobiquery.ServiceConfig{})
	spec := testSpec()
	spec.PeriodNS = int64(time.Second)
	spec.TraceID = wire.FormatID(0xCA7C4)
	_, dec, done := h.subscribe(t, context.Background(), wire.SubscribeRequest{
		Spec:   spec,
		Motion: wire.Motion{Kind: "static", XM: 225, YM: 225},
	})
	defer done()

	const periods = 4
	h.advance(t, periods*time.Second) // one batch drains all four periods

	for k := 1; k <= periods; k++ {
		var f wire.Frame
		if err := dec.Decode(&f); err != nil {
			t.Fatalf("period %d: %v", k, err)
		}
		if f.Type != wire.FrameResult || f.Result == nil || f.Result.Trace == nil {
			t.Fatalf("period %d: frame %+v", k, f)
		}
		sp := f.Result.Trace
		if sp.K != k {
			t.Fatalf("period %d arrived as k=%d", k, sp.K)
		}
		chain := []struct {
			name string
			ns   int64
		}{
			{"armed", sp.ArmedNS}, {"popped", sp.PoppedNS},
			{"eval_start", sp.EvalStartNS}, {"eval_end", sp.EvalEndNS},
			{"flush", sp.FlushNS}, {"delivered", sp.DeliveredNS},
			{"wire", sp.WireNS},
		}
		for j := 0; j < len(chain); j++ {
			if chain[j].ns == 0 {
				t.Errorf("period %d: %s never stamped", k, chain[j].name)
			}
			if j > 0 && chain[j].ns < chain[j-1].ns {
				t.Errorf("period %d: %s (%d) precedes %s (%d)",
					k, chain[j].name, chain[j].ns, chain[j-1].name, chain[j-1].ns)
			}
		}
		// Catch-up periods never waited in the scheduler: the popped stamp
		// IS the armed stamp, so the sched segment is honestly zero.
		if k > 1 && sp.PoppedNS != sp.ArmedNS {
			t.Errorf("catch-up period %d: popped %d != armed %d (should reuse the arming instant)",
				k, sp.PoppedNS, sp.ArmedNS)
		}
	}
}

// TestFirehoseEndpoint pins GET /v1/trace: NDJSON spans with the
// published/dropped accounting headers, readable without disturbing the
// tick path.
func TestFirehoseEndpoint(t *testing.T) {
	h := newHarness(t, mobiquery.ServiceConfig{})
	spec := testSpec()
	spec.TraceID = wire.FormatID(0xFEED)
	_, dec, done := h.subscribe(t, context.Background(), wire.SubscribeRequest{
		Spec:   spec,
		Motion: wire.Motion{Kind: "static", XM: 225, YM: 225},
	})
	defer done()
	// An untraced subscription publishes into the firehose too.
	_, _, done2 := h.subscribe(t, context.Background(), wire.SubscribeRequest{
		Spec:   testSpec(),
		Motion: wire.Motion{Kind: "static", XM: 225, YM: 225},
	})
	defer done2()
	for i := 0; i < 6; i++ {
		h.advance(t, time.Second) // 3 periods per subscription
	}
	var f wire.Frame
	if err := dec.Decode(&f); err != nil {
		t.Fatalf("first traced result: %v", err)
	}

	resp, err := http.Get(h.ts.URL + "/v1/trace")
	if err != nil {
		t.Fatalf("firehose: %v", err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("firehose: status %d", resp.StatusCode)
	}
	if ct := resp.Header.Get("Content-Type"); ct != "application/x-ndjson" {
		t.Fatalf("firehose content type %q", ct)
	}
	published, err := strconv.ParseUint(resp.Header.Get("X-Mobiquery-Trace-Published"), 10, 64)
	if err != nil {
		t.Fatalf("published header: %v", err)
	}
	dropped, err := strconv.ParseUint(resp.Header.Get("X-Mobiquery-Trace-Dropped"), 10, 64)
	if err != nil {
		t.Fatalf("dropped header: %v", err)
	}
	if published != 6 || dropped != 0 {
		t.Errorf("accounting %d published / %d dropped, want 6/0", published, dropped)
	}

	var spans []wire.TraceSpan
	traced := 0
	fdec := wire.NewDecoder(resp.Body)
	for {
		var sp wire.TraceSpan
		if err := fdec.Decode(&sp); err != nil {
			break
		}
		if sp.DeliveredNS == 0 || sp.Outcome != "delivered" {
			t.Errorf("incomplete firehose span: %+v", sp)
		}
		if sp.TraceID != "" {
			traced++
			if got, _ := wire.ParseID(sp.TraceID); got != 0xFEED {
				t.Errorf("unexpected trace id %q", sp.TraceID)
			}
		}
		spans = append(spans, sp)
	}
	if uint64(len(spans)) != published {
		t.Errorf("stream carried %d spans, headers promised %d", len(spans), published)
	}
	// Both the traced and the untraced subscription flowed through.
	if traced != 3 || len(spans)-traced != 3 {
		t.Errorf("span mix %d traced / %d untraced, want 3/3", traced, len(spans)-traced)
	}
}
