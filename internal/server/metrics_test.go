package server

import (
	"bufio"
	"context"
	"io"
	"net/http"
	"sort"
	"strconv"
	"strings"
	"testing"
	"time"

	"mobiquery"
	"mobiquery/internal/obs"
	"mobiquery/internal/wire"
)

// fetchMetrics GETs /metrics, validates the exposition, and returns the
// raw text plus a flat sample map ("name{labels}" -> value).
func fetchMetrics(t *testing.T, h *harness) (string, map[string]float64) {
	t.Helper()
	resp, err := http.Get(h.ts.URL + "/metrics")
	if err != nil {
		t.Fatalf("metrics: %v", err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("metrics: status %d", resp.StatusCode)
	}
	if ct := resp.Header.Get("Content-Type"); !strings.HasPrefix(ct, "text/plain; version=0.0.4") {
		t.Fatalf("metrics content type %q", ct)
	}
	raw, err := io.ReadAll(resp.Body)
	if err != nil {
		t.Fatalf("read metrics: %v", err)
	}
	text := string(raw)
	if _, _, err := obs.ValidateExposition(strings.NewReader(text)); err != nil {
		t.Fatalf("exposition invalid: %v\n%s", err, text)
	}
	samples := make(map[string]float64)
	sc := bufio.NewScanner(strings.NewReader(text))
	for sc.Scan() {
		line := sc.Text()
		if line == "" || strings.HasPrefix(line, "#") {
			continue
		}
		sp := strings.LastIndexByte(line, ' ')
		v, err := strconv.ParseFloat(line[sp+1:], 64)
		if err != nil {
			t.Fatalf("bad sample line %q: %v", line, err)
		}
		samples[line[:sp]] = v
	}
	return text, samples
}

// TestMetricsGolden pins the /metrics surface: the exact family set (as
// sorted # TYPE lines) and the deterministic counter values after a
// manual-clock run.
func TestMetricsGolden(t *testing.T) {
	h := newHarness(t, mobiquery.ServiceConfig{})
	_, dec, done := h.subscribe(t, context.Background(), wire.SubscribeRequest{
		Spec:   testSpec(),
		Motion: wire.Motion{Kind: "static", XM: 225, YM: 225},
	})
	defer done()
	for i := 0; i < 4; i++ {
		h.advance(t, time.Second) // 4 x 1 s over a 2 s period: 2 delivered
	}
	var f wire.Frame
	if err := dec.Decode(&f); err != nil || f.Type != wire.FrameResult {
		t.Fatalf("first result: %+v err=%v", f, err)
	}

	text, samples := fetchMetrics(t, h)

	var types []string
	for _, line := range strings.Split(text, "\n") {
		if strings.HasPrefix(line, "# TYPE ") {
			types = append(types, line)
		}
	}
	sort.Strings(types)
	want := []string{
		"# TYPE mobiquery_advance_idle_ticks_total counter",
		"# TYPE mobiquery_advance_merge_depth histogram",
		"# TYPE mobiquery_advance_pop_batch histogram",
		"# TYPE mobiquery_advance_stage_seconds histogram",
		"# TYPE mobiquery_advance_ticks_total counter",
		"# TYPE mobiquery_build_info gauge",
		"# TYPE mobiquery_draining gauge",
		"# TYPE mobiquery_evaluate_seconds histogram",
		"# TYPE mobiquery_go_gc_pause_ns_total counter",
		"# TYPE mobiquery_go_gomaxprocs gauge",
		"# TYPE mobiquery_go_goroutines gauge",
		"# TYPE mobiquery_go_heap_inuse_bytes gauge",
		"# TYPE mobiquery_http_request_seconds histogram",
		"# TYPE mobiquery_http_requests_total counter",
		"# TYPE mobiquery_nodes gauge",
		"# TYPE mobiquery_periods_evaluated_total counter",
		"# TYPE mobiquery_pyramid_builds_total counter",
		"# TYPE mobiquery_pyramid_classes gauge",
		"# TYPE mobiquery_pyramid_serves_total counter",
		"# TYPE mobiquery_results_delivered_total counter",
		"# TYPE mobiquery_results_dropped_total counter",
		"# TYPE mobiquery_results_late_total counter",
		"# TYPE mobiquery_sched_entries gauge",
		"# TYPE mobiquery_sched_stripe_entries gauge",
		"# TYPE mobiquery_sched_stripes gauge",
		"# TYPE mobiquery_subscribers gauge",
		"# TYPE mobiquery_subscriptions_closed_total counter",
		"# TYPE mobiquery_subscriptions_opened_total counter",
		"# TYPE mobiquery_trace_spans_dropped_total counter",
		"# TYPE mobiquery_trace_spans_published_total counter",
		"# TYPE mobiquery_virtual_time_ns gauge",
	}
	if len(types) != len(want) {
		t.Fatalf("got %d TYPE lines, want %d:\n%s", len(types), len(want), strings.Join(types, "\n"))
	}
	for i := range want {
		if types[i] != want[i] {
			t.Errorf("TYPE line %d: %q, want %q", i, types[i], want[i])
		}
	}

	for name, v := range map[string]float64{
		"mobiquery_advance_ticks_total":        4,
		"mobiquery_advance_idle_ticks_total":   2,
		"mobiquery_results_delivered_total":    2,
		"mobiquery_results_dropped_total":      0,
		"mobiquery_subscribers":                1,
		"mobiquery_subscriptions_opened_total": 1,
		"mobiquery_nodes":                      300,
		"mobiquery_virtual_time_ns":            4e9,
		"mobiquery_advance_pop_batch_count":    2,
		"mobiquery_draining":                   0,
	} {
		if got, ok := samples[name]; !ok || got != v {
			t.Errorf("%s = %v (present=%v), want %v", name, got, ok, v)
		}
	}
	// Runtime self-metrics sample live values, and the build-info gauge
	// carries the toolchain labels at constant 1.
	var buildInfo bool
	for k, v := range samples {
		if strings.HasPrefix(k, `mobiquery_build_info{go_version="go`) &&
			strings.Contains(k, `module="mobiquery"`) && v == 1 {
			buildInfo = true
		}
	}
	if !buildInfo {
		t.Error("mobiquery_build_info{go_version=...,module=\"mobiquery\"} 1 missing")
	}
	if samples["mobiquery_go_gomaxprocs"] < 1 {
		t.Errorf("gomaxprocs = %v, want >= 1", samples["mobiquery_go_gomaxprocs"])
	}
	if samples["mobiquery_go_goroutines"] < 1 {
		t.Errorf("goroutines = %v, want >= 1", samples["mobiquery_go_goroutines"])
	}
	if samples["mobiquery_go_heap_inuse_bytes"] <= 0 {
		t.Errorf("heap in-use = %v, want positive", samples["mobiquery_go_heap_inuse_bytes"])
	}

	// The advance route itself was hit four times before the scrape.
	if got := samples[`mobiquery_http_requests_total{route="advance"}`]; got != 4 {
		t.Errorf("advance route requests = %v, want 4", got)
	}
	if got := samples[`mobiquery_http_request_seconds_count{route="advance"}`]; got != 4 {
		t.Errorf("advance route latency count = %v, want 4", got)
	}
}

// TestTraceEndpoint pins GET /v1/subscriptions/{id}/trace: NDJSON span
// lines oldest first, stage-ordered timestamps, and clean errors for
// unknown ids.
func TestTraceEndpoint(t *testing.T) {
	h := newHarness(t, mobiquery.ServiceConfig{})
	ack, dec, done := h.subscribe(t, context.Background(), wire.SubscribeRequest{
		Spec:   testSpec(),
		Motion: wire.Motion{Kind: "static", XM: 225, YM: 225},
	})
	defer done()
	for i := 0; i < 3; i++ {
		h.advance(t, 2*time.Second)
	}
	var f wire.Frame
	if err := dec.Decode(&f); err != nil || f.Type != wire.FrameResult {
		t.Fatalf("first result: %+v err=%v", f, err)
	}

	resp, err := http.Get(h.ts.URL + "/v1/subscriptions/" + strconv.FormatUint(uint64(ack.ID), 10) + "/trace")
	if err != nil {
		t.Fatalf("trace: %v", err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("trace: status %d", resp.StatusCode)
	}
	if ct := resp.Header.Get("Content-Type"); ct != "application/x-ndjson" {
		t.Fatalf("trace content type %q", ct)
	}
	var spans []wire.TraceSpan
	tdec := wire.NewDecoder(resp.Body)
	for {
		var sp wire.TraceSpan
		if err := tdec.Decode(&sp); err != nil {
			break
		}
		spans = append(spans, sp)
	}
	if len(spans) != 3 {
		t.Fatalf("got %d spans, want 3", len(spans))
	}
	for i, sp := range spans {
		if sp.K != i+1 {
			t.Errorf("span %d: k = %d, want %d", i, sp.K, i+1)
		}
		if sp.DueNS != int64(sp.K)*int64(2*time.Second) {
			t.Errorf("span %d: due %d", i, sp.DueNS)
		}
		if sp.Outcome != "delivered" {
			t.Errorf("span %d: outcome %q", i, sp.Outcome)
		}
		if sp.Class == "" {
			t.Errorf("span %d: empty class", i)
		}
		if !(sp.ArmedNS <= sp.PoppedNS && sp.PoppedNS <= sp.EvalStartNS &&
			sp.EvalStartNS <= sp.EvalEndNS && sp.EvalEndNS <= sp.FlushNS &&
			sp.FlushNS <= sp.DeliveredNS) {
			t.Errorf("span %d: stamps out of stage order: %+v", i, sp)
		}
		if sp.TraceID != "" || sp.SpanID != "" {
			t.Errorf("span %d: untraced subscription carries ids: %+v", i, sp)
		}
	}

	for path, want := range map[string]int{
		"/v1/subscriptions/999999/trace": http.StatusNotFound,
		"/v1/subscriptions/zebra/trace":  http.StatusBadRequest,
	} {
		resp, err := http.Get(h.ts.URL + path)
		if err != nil {
			t.Fatalf("%s: %v", path, err)
		}
		resp.Body.Close()
		if resp.StatusCode != want {
			t.Errorf("%s: status %d, want %d", path, resp.StatusCode, want)
		}
	}
}

// TestMetricsReconcileWithStats pins the two observability surfaces
// against each other after a mixed pyramid/cold workload: the /metrics
// ledger equals /v1/stats field for field, the serve-class counters
// partition delivered+dropped, and each class's latency histogram count
// equals its class counter.
func TestMetricsReconcileWithStats(t *testing.T) {
	h := newHarness(t, mobiquery.ServiceConfig{})
	// One pyramid-served subscription (radius 150 attaches the aggregate
	// pyramid) and one cold on-demand subscription (radius 50 is below the
	// attachment threshold).
	small := testSpec()
	small.RadiusM = 50
	_, _, done1 := h.subscribe(t, context.Background(), wire.SubscribeRequest{
		Spec: testSpec(), Motion: wire.Motion{Kind: "static", XM: 225, YM: 225}})
	defer done1()
	_, _, done2 := h.subscribe(t, context.Background(), wire.SubscribeRequest{
		Spec: small, Motion: wire.Motion{Kind: "linear", XM: 150, YM: 150, VXMPS: 2}})
	defer done2()
	for i := 0; i < 10; i++ {
		h.advance(t, time.Second)
	}

	_, samples := fetchMetrics(t, h)
	resp, err := http.Get(h.ts.URL + "/v1/stats")
	if err != nil {
		t.Fatalf("stats: %v", err)
	}
	var st wire.ServiceStats
	if err := wire.NewDecoder(resp.Body).Decode(&st); err != nil {
		t.Fatalf("decode stats: %v", err)
	}
	resp.Body.Close()

	if st.Delivered == 0 || st.PyramidServes == 0 {
		t.Fatalf("workload did not exercise delivery and the pyramid: %+v", st)
	}

	// Ledger: /metrics == /v1/stats (the scrape samples the same StatsInto
	// snapshot the stats endpoint serves).
	for name, want := range map[string]float64{
		"mobiquery_results_delivered_total":    float64(st.Delivered),
		"mobiquery_results_dropped_total":      float64(st.Dropped),
		"mobiquery_results_late_total":         float64(st.Late),
		"mobiquery_pyramid_serves_total":       float64(st.PyramidServes),
		"mobiquery_pyramid_builds_total":       float64(st.PyramidBuilds),
		"mobiquery_pyramid_classes":            float64(st.PyramidClasses),
		"mobiquery_subscriptions_opened_total": float64(st.Opened),
		"mobiquery_subscriptions_closed_total": float64(st.Closed),
		"mobiquery_subscribers":                float64(st.Subscribers),
		"mobiquery_sched_entries":              float64(st.SchedLen),
		"mobiquery_sched_stripes":              float64(st.SchedStripes),
	} {
		if got := samples[name]; got != want {
			t.Errorf("%s = %v, /v1/stats says %v", name, got, want)
		}
	}

	// Serve classes partition evaluated periods.
	classes := []string{"cold", "planned", "corridor", "pyramid"}
	var classSum float64
	for _, c := range classes {
		evaluated := samples[`mobiquery_periods_evaluated_total{class="`+c+`"}`]
		classSum += evaluated
		if histCount := samples[`mobiquery_evaluate_seconds_count{class="`+c+`"}`]; histCount != evaluated {
			t.Errorf("class %s: histogram count %v != evaluated counter %v", c, histCount, evaluated)
		}
	}
	if classSum != float64(st.Delivered+st.Dropped) {
		t.Errorf("class counters sum to %v, want delivered+dropped = %d", classSum, st.Delivered+st.Dropped)
	}
	if pyr := samples[`mobiquery_periods_evaluated_total{class="pyramid"}`]; pyr == 0 {
		t.Error("pyramid class never served despite a pyramid-attached subscription")
	}
	if cold := samples[`mobiquery_periods_evaluated_total{class="cold"}`]; cold == 0 {
		t.Error("cold class never served despite an on-demand subscription")
	}

	// Advance stage histograms all saw every tick.
	for _, stage := range []string{"pop", "evaluate", "flush", "deliver"} {
		name := `mobiquery_advance_stage_seconds_count{stage="` + stage + `"}`
		if stage == "pop" {
			if got := samples[name]; got != 10 {
				t.Errorf("%s = %v, want 10 (every tick pops)", name, got)
			}
			continue
		}
		if got, busy := samples[name], 10-samples["mobiquery_advance_idle_ticks_total"]; got != busy {
			t.Errorf("%s = %v, want %v (non-idle ticks)", name, got, busy)
		}
	}
}
