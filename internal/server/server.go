// Package server is the network front-end over the mobiquery session
// API: an http.Handler exposing Open/Subscribe as streaming HTTP
// endpoints speaking the internal/wire NDJSON protocol. Over TLS,
// net/http negotiates HTTP/2 and the subscribe stream rides one h2
// server-streamed response; over plain TCP the same bytes flow as
// HTTP/1.1 chunked transfer — the protocol is identical either way.
//
// Endpoints:
//
//	GET  /healthz                        liveness + virtual clock
//	GET  /metrics                        Prometheus text exposition of the
//	                                     service registry (+ per-route HTTP
//	                                     request metrics)
//	GET  /v1/stats                       service-wide delivery ledger
//	GET  /v1/subscriptions/{id}/trace    recent period lifecycle spans,
//	                                     one NDJSON line per period
//	GET  /v1/trace                       service-wide span firehose: the
//	                                     ring-buffered recent spans of every
//	                                     subscription, one NDJSON line each,
//	                                     bounded and lossy (drop-counted in
//	                                     the X-Mobiquery-Trace-Dropped
//	                                     header, never blocking the tick
//	                                     path)
//	POST /v1/subscribe                   body: one wire.SubscribeRequest;
//	                                     response: ack, result*, end frames
//	POST /v1/subscriptions/{id}/waypoints  body: wire.Waypoint per line,
//	                                     applied as each arrives (client
//	                                     streaming); reply: applied count
//	GET  /v1/subscriptions/{id}/stats    per-subscription + prefetch ledger
//	POST /v1/advance                     manual-clock servers only: move
//	                                     the virtual clock (tests, smoke)
//
// A subscribe stream ends when the subscription does (Lifetime, service
// drain/close) — the end frame carries the final delivery ledger — or
// when the client disconnects, which tears the subscription down
// immediately: no goroutine or engine query outlives its stream.
package server

import (
	"net/http"
	"strconv"
	"sync"
	"time"

	"mobiquery"
	"mobiquery/internal/wire"
)

// Options configures the handler.
type Options struct {
	// AllowAdvance enables POST /v1/advance, which drives the service's
	// virtual clock from the network. Only meaningful for a service
	// opened without WithRealTime (tests and deterministic smoke runs);
	// a real-time service should leave it off.
	AllowAdvance bool
}

// Server is the front-end handler. Create with New.
type Server struct {
	svc  *mobiquery.Service
	opts Options
	mux  *http.ServeMux

	// mu guards the id -> subscription registry of streams this server
	// opened, so the waypoint and stats endpoints can address them. An
	// entry lives exactly as long as its subscribe handler.
	mu   sync.Mutex
	subs map[uint32]*mobiquery.Subscription

	// statsMu guards the reused /v1/stats snapshot: the handler writes
	// the response while holding it because the wire view aliases the
	// snapshot's stripe-occupancy slice.
	statsMu      sync.Mutex
	statsScratch mobiquery.ServiceStats
}

// httpMaxLatency bounds the per-route request-latency histograms;
// subscribe streams (which live as long as the subscription) are not
// instrumented, so a minute of headroom is plenty for every other route.
const httpMaxLatency = int64(64 * time.Second)

// New returns a Server handling the wire protocol over svc.
func New(svc *mobiquery.Service, opts Options) *Server {
	s := &Server{
		svc:  svc,
		opts: opts,
		mux:  http.NewServeMux(),
		subs: make(map[uint32]*mobiquery.Subscription),
	}
	s.handle("GET /healthz", "healthz", s.handleHealth)
	// The scrape instruments itself too: the wrapper records after the
	// exposition renders, so each scrape shows the count as of the
	// previous one — standard self-measurement lag.
	s.handle("GET /metrics", "metrics", s.handleMetrics)
	s.handle("GET /v1/stats", "stats", s.handleStats)
	// The subscribe stream stays uninstrumented: its "latency" is the
	// subscription lifetime, which would drown the request histograms.
	s.mux.HandleFunc("POST /v1/subscribe", s.handleSubscribe)
	s.handle("POST /v1/subscriptions/{id}/waypoints", "waypoints", s.handleWaypoints)
	s.handle("GET /v1/subscriptions/{id}/stats", "sub_stats", s.handleSubStats)
	s.handle("GET /v1/subscriptions/{id}/trace", "trace", s.handleTrace)
	s.handle("GET /v1/trace", "firehose", s.handleFirehose)
	if opts.AllowAdvance {
		s.handle("POST /v1/advance", "advance", s.handleAdvance)
	}
	return s
}

// handle registers pattern on the mux wrapped with per-route request
// metrics in the service registry. Registration is get-or-create, so a
// second Server over the same Service shares the same families.
func (s *Server) handle(pattern, route string, h http.HandlerFunc) {
	reg := s.svc.Metrics()
	lbl := `route="` + route + `"`
	total := reg.Counter("mobiquery_http_requests_total", lbl,
		"HTTP requests served, by route (subscribe streams excluded)")
	lat := reg.Histogram("mobiquery_http_request_seconds", lbl,
		"HTTP request wall time, by route (subscribe streams excluded)",
		httpMaxLatency, 1e-9)
	s.mux.HandleFunc(pattern, func(w http.ResponseWriter, r *http.Request) {
		start := time.Now()
		h(w, r)
		total.Inc()
		lat.Observe(time.Since(start).Nanoseconds())
	})
}

// ServeHTTP implements http.Handler.
func (s *Server) ServeHTTP(w http.ResponseWriter, r *http.Request) { s.mux.ServeHTTP(w, r) }

// Streams reports the number of subscribe streams currently open on this
// server (distinct from the service's Subscribers, which may include
// in-process subscriptions).
func (s *Server) Streams() int {
	s.mu.Lock()
	defer s.mu.Unlock()
	return len(s.subs)
}

func (s *Server) handleHealth(w http.ResponseWriter, r *http.Request) {
	st := s.svc.Stats()
	writeJSON(w, http.StatusOK, wire.Health{OK: true, NowNS: int64(st.Now), Subscribers: st.Subscribers})
}

func (s *Server) handleStats(w http.ResponseWriter, r *http.Request) {
	s.statsMu.Lock()
	defer s.statsMu.Unlock()
	s.svc.StatsInto(&s.statsScratch)
	writeJSON(w, http.StatusOK, wire.FromServiceStats(s.statsScratch))
}

// handleMetrics renders the service registry as Prometheus text
// exposition format 0.0.4.
func (s *Server) handleMetrics(w http.ResponseWriter, r *http.Request) {
	w.Header().Set("Content-Type", "text/plain; version=0.0.4; charset=utf-8")
	s.svc.Metrics().WritePrometheus(w)
}

// handleTrace streams a subscription's recent period lifecycle spans,
// oldest first, one NDJSON line each.
func (s *Server) handleTrace(w http.ResponseWriter, r *http.Request) {
	sub, ok := s.lookup(w, r)
	if !ok {
		return
	}
	spans := sub.TraceSpans(nil)
	w.Header().Set("Content-Type", "application/x-ndjson")
	enc := wire.NewEncoder(w)
	for i := range spans {
		if enc.Encode(wire.FromPeriodSpan(spans[i])) != nil {
			return
		}
	}
}

// handleFirehose streams the service-wide span firehose: every completed
// period span still in the ring, oldest first, one NDJSON line each. The
// response is a bounded snapshot, not a tail — ring capacity caps the
// body, and spans overwritten before this snapshot are only counted, so
// the endpoint can never apply back-pressure to the tick path. The
// lifetime published/dropped counts ride response headers (they are also
// on /metrics as mobiquery_trace_spans_{published,dropped}_total).
func (s *Server) handleFirehose(w http.ResponseWriter, r *http.Request) {
	spans, published, dropped := s.svc.FirehoseSpans(nil)
	w.Header().Set("Content-Type", "application/x-ndjson")
	w.Header().Set("X-Mobiquery-Trace-Published", strconv.FormatUint(published, 10))
	w.Header().Set("X-Mobiquery-Trace-Dropped", strconv.FormatUint(dropped, 10))
	enc := wire.NewEncoder(w)
	for i := range spans {
		if enc.Encode(wire.FromPeriodSpan(spans[i])) != nil {
			return
		}
	}
}

// handleSubscribe opens a subscription from the request body and streams
// its results until the subscription or the client goes away.
func (s *Server) handleSubscribe(w http.ResponseWriter, r *http.Request) {
	var req wire.SubscribeRequest
	if err := wire.NewDecoder(r.Body).Decode(&req); err != nil {
		http.Error(w, "wire: bad subscribe request: "+err.Error(), http.StatusBadRequest)
		return
	}
	spec, err := req.Spec.QuerySpec()
	if err != nil {
		http.Error(w, err.Error(), http.StatusBadRequest)
		return
	}
	src, err := req.Motion.Source()
	if err != nil {
		http.Error(w, err.Error(), http.StatusBadRequest)
		return
	}
	// The request context tears the subscription down on disconnect: the
	// Results channel then closes and the stream loop below ends.
	sub, err := s.svc.Subscribe(r.Context(), spec, src)
	if err != nil {
		http.Error(w, err.Error(), http.StatusUnprocessableEntity)
		return
	}
	s.mu.Lock()
	s.subs[sub.ID()] = sub
	s.mu.Unlock()
	defer func() {
		s.mu.Lock()
		delete(s.subs, sub.ID())
		s.mu.Unlock()
		sub.Close()
	}()

	w.Header().Set("Content-Type", "application/x-ndjson")
	rc := http.NewResponseController(w)
	enc := wire.NewEncoder(w)
	// Periods count from the service's now at Subscribe; the ack hands
	// the client that origin so it can anchor deadline arithmetic.
	ack := wire.Frame{Type: wire.FrameAck, ID: sub.ID(), NowNS: int64(s.svc.Now())}
	if enc.Encode(ack) != nil || rc.Flush() != nil {
		return
	}
	ctx := r.Context()
	for {
		select {
		case <-ctx.Done():
			return
		case res, ok := <-sub.Results():
			if !ok {
				st := wire.FromSubStats(sub.Stats())
				f := wire.Frame{Type: wire.FrameEnd, ID: sub.ID(), Stats: &st}
				if enc.Encode(f) == nil {
					rc.Flush()
				}
				return
			}
			rf := wire.FromResult(res)
			if rf.Trace != nil {
				// The wire-write stamp closes the server's segment chain:
				// taken the instant the frame is handed to the wire, so
				// the client's receive stamp measures only the network and
				// its own scheduling.
				rf.Trace.WireNS = time.Now().UnixNano()
			}
			f := wire.Frame{Type: wire.FrameResult, ID: sub.ID(), Result: &rf}
			if enc.Encode(f) != nil || rc.Flush() != nil {
				return
			}
		}
	}
}

// handleWaypoints applies a client-streamed body of ground-truth position
// updates to a subscription this server opened, each as it arrives.
func (s *Server) handleWaypoints(w http.ResponseWriter, r *http.Request) {
	sub, ok := s.lookup(w, r)
	if !ok {
		return
	}
	dec := wire.NewDecoder(r.Body)
	applied := 0
	for {
		var wp wire.Waypoint
		if err := dec.Decode(&wp); err != nil {
			break // EOF ends the stream; garbage ends it early
		}
		if sub.UpdateWaypoint(mobiquery.Pt(wp.XM, wp.YM)) != nil {
			break // subscription closed mid-stream
		}
		applied++
	}
	writeJSON(w, http.StatusOK, wire.WaypointReply{Applied: applied})
}

func (s *Server) handleSubStats(w http.ResponseWriter, r *http.Request) {
	sub, ok := s.lookup(w, r)
	if !ok {
		return
	}
	info := wire.SubscriptionInfo{ID: sub.ID(), Stats: wire.FromSubStats(sub.Stats())}
	if ps, ok := sub.PrefetchStats(); ok {
		wps := wire.FromPrefetchStats(ps)
		info.Prefetch = &wps
	}
	writeJSON(w, http.StatusOK, info)
}

func (s *Server) handleAdvance(w http.ResponseWriter, r *http.Request) {
	var req wire.AdvanceRequest
	if err := wire.NewDecoder(r.Body).Decode(&req); err != nil {
		http.Error(w, "wire: bad advance request: "+err.Error(), http.StatusBadRequest)
		return
	}
	if err := s.svc.Advance(time.Duration(req.DNS)); err != nil {
		http.Error(w, err.Error(), http.StatusUnprocessableEntity)
		return
	}
	writeJSON(w, http.StatusOK, wire.Health{OK: true, NowNS: int64(s.svc.Now()), Subscribers: s.svc.Subscribers()})
}

// lookup resolves the {id} path value to a subscription opened on this
// server, writing the error response when it can't.
func (s *Server) lookup(w http.ResponseWriter, r *http.Request) (*mobiquery.Subscription, bool) {
	id, err := strconv.ParseUint(r.PathValue("id"), 10, 32)
	if err != nil {
		http.Error(w, "bad subscription id", http.StatusBadRequest)
		return nil, false
	}
	s.mu.Lock()
	sub := s.subs[uint32(id)]
	s.mu.Unlock()
	if sub == nil {
		http.Error(w, "no such subscription", http.StatusNotFound)
		return nil, false
	}
	return sub, true
}

func writeJSON(w http.ResponseWriter, code int, v any) {
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(code)
	wire.NewEncoder(w).Encode(v)
}
