// Package server is the network front-end over the mobiquery session
// API: an http.Handler exposing Open/Subscribe as streaming HTTP
// endpoints speaking the internal/wire NDJSON protocol. Over TLS,
// net/http negotiates HTTP/2 and the subscribe stream rides one h2
// server-streamed response; over plain TCP the same bytes flow as
// HTTP/1.1 chunked transfer — the protocol is identical either way.
//
// Endpoints:
//
//	GET  /healthz                        liveness + virtual clock
//	GET  /v1/stats                       service-wide delivery ledger
//	POST /v1/subscribe                   body: one wire.SubscribeRequest;
//	                                     response: ack, result*, end frames
//	POST /v1/subscriptions/{id}/waypoints  body: wire.Waypoint per line,
//	                                     applied as each arrives (client
//	                                     streaming); reply: applied count
//	GET  /v1/subscriptions/{id}/stats    per-subscription + prefetch ledger
//	POST /v1/advance                     manual-clock servers only: move
//	                                     the virtual clock (tests, smoke)
//
// A subscribe stream ends when the subscription does (Lifetime, service
// drain/close) — the end frame carries the final delivery ledger — or
// when the client disconnects, which tears the subscription down
// immediately: no goroutine or engine query outlives its stream.
package server

import (
	"net/http"
	"strconv"
	"sync"
	"time"

	"mobiquery"
	"mobiquery/internal/wire"
)

// Options configures the handler.
type Options struct {
	// AllowAdvance enables POST /v1/advance, which drives the service's
	// virtual clock from the network. Only meaningful for a service
	// opened without WithRealTime (tests and deterministic smoke runs);
	// a real-time service should leave it off.
	AllowAdvance bool
}

// Server is the front-end handler. Create with New.
type Server struct {
	svc  *mobiquery.Service
	opts Options
	mux  *http.ServeMux

	// mu guards the id -> subscription registry of streams this server
	// opened, so the waypoint and stats endpoints can address them. An
	// entry lives exactly as long as its subscribe handler.
	mu   sync.Mutex
	subs map[uint32]*mobiquery.Subscription
}

// New returns a Server handling the wire protocol over svc.
func New(svc *mobiquery.Service, opts Options) *Server {
	s := &Server{
		svc:  svc,
		opts: opts,
		mux:  http.NewServeMux(),
		subs: make(map[uint32]*mobiquery.Subscription),
	}
	s.mux.HandleFunc("GET /healthz", s.handleHealth)
	s.mux.HandleFunc("GET /v1/stats", s.handleStats)
	s.mux.HandleFunc("POST /v1/subscribe", s.handleSubscribe)
	s.mux.HandleFunc("POST /v1/subscriptions/{id}/waypoints", s.handleWaypoints)
	s.mux.HandleFunc("GET /v1/subscriptions/{id}/stats", s.handleSubStats)
	if opts.AllowAdvance {
		s.mux.HandleFunc("POST /v1/advance", s.handleAdvance)
	}
	return s
}

// ServeHTTP implements http.Handler.
func (s *Server) ServeHTTP(w http.ResponseWriter, r *http.Request) { s.mux.ServeHTTP(w, r) }

// Streams reports the number of subscribe streams currently open on this
// server (distinct from the service's Subscribers, which may include
// in-process subscriptions).
func (s *Server) Streams() int {
	s.mu.Lock()
	defer s.mu.Unlock()
	return len(s.subs)
}

func (s *Server) handleHealth(w http.ResponseWriter, r *http.Request) {
	st := s.svc.Stats()
	writeJSON(w, http.StatusOK, wire.Health{OK: true, NowNS: int64(st.Now), Subscribers: st.Subscribers})
}

func (s *Server) handleStats(w http.ResponseWriter, r *http.Request) {
	writeJSON(w, http.StatusOK, wire.FromServiceStats(s.svc.Stats()))
}

// handleSubscribe opens a subscription from the request body and streams
// its results until the subscription or the client goes away.
func (s *Server) handleSubscribe(w http.ResponseWriter, r *http.Request) {
	var req wire.SubscribeRequest
	if err := wire.NewDecoder(r.Body).Decode(&req); err != nil {
		http.Error(w, "wire: bad subscribe request: "+err.Error(), http.StatusBadRequest)
		return
	}
	spec, err := req.Spec.QuerySpec()
	if err != nil {
		http.Error(w, err.Error(), http.StatusBadRequest)
		return
	}
	src, err := req.Motion.Source()
	if err != nil {
		http.Error(w, err.Error(), http.StatusBadRequest)
		return
	}
	// The request context tears the subscription down on disconnect: the
	// Results channel then closes and the stream loop below ends.
	sub, err := s.svc.Subscribe(r.Context(), spec, src)
	if err != nil {
		http.Error(w, err.Error(), http.StatusUnprocessableEntity)
		return
	}
	s.mu.Lock()
	s.subs[sub.ID()] = sub
	s.mu.Unlock()
	defer func() {
		s.mu.Lock()
		delete(s.subs, sub.ID())
		s.mu.Unlock()
		sub.Close()
	}()

	w.Header().Set("Content-Type", "application/x-ndjson")
	rc := http.NewResponseController(w)
	enc := wire.NewEncoder(w)
	// Periods count from the service's now at Subscribe; the ack hands
	// the client that origin so it can anchor deadline arithmetic.
	ack := wire.Frame{Type: wire.FrameAck, ID: sub.ID(), NowNS: int64(s.svc.Now())}
	if enc.Encode(ack) != nil || rc.Flush() != nil {
		return
	}
	ctx := r.Context()
	for {
		select {
		case <-ctx.Done():
			return
		case res, ok := <-sub.Results():
			if !ok {
				st := wire.FromSubStats(sub.Stats())
				f := wire.Frame{Type: wire.FrameEnd, ID: sub.ID(), Stats: &st}
				if enc.Encode(f) == nil {
					rc.Flush()
				}
				return
			}
			rf := wire.FromResult(res)
			f := wire.Frame{Type: wire.FrameResult, ID: sub.ID(), Result: &rf}
			if enc.Encode(f) != nil || rc.Flush() != nil {
				return
			}
		}
	}
}

// handleWaypoints applies a client-streamed body of ground-truth position
// updates to a subscription this server opened, each as it arrives.
func (s *Server) handleWaypoints(w http.ResponseWriter, r *http.Request) {
	sub, ok := s.lookup(w, r)
	if !ok {
		return
	}
	dec := wire.NewDecoder(r.Body)
	applied := 0
	for {
		var wp wire.Waypoint
		if err := dec.Decode(&wp); err != nil {
			break // EOF ends the stream; garbage ends it early
		}
		if sub.UpdateWaypoint(mobiquery.Pt(wp.XM, wp.YM)) != nil {
			break // subscription closed mid-stream
		}
		applied++
	}
	writeJSON(w, http.StatusOK, wire.WaypointReply{Applied: applied})
}

func (s *Server) handleSubStats(w http.ResponseWriter, r *http.Request) {
	sub, ok := s.lookup(w, r)
	if !ok {
		return
	}
	info := wire.SubscriptionInfo{ID: sub.ID(), Stats: wire.FromSubStats(sub.Stats())}
	if ps, ok := sub.PrefetchStats(); ok {
		wps := wire.FromPrefetchStats(ps)
		info.Prefetch = &wps
	}
	writeJSON(w, http.StatusOK, info)
}

func (s *Server) handleAdvance(w http.ResponseWriter, r *http.Request) {
	var req wire.AdvanceRequest
	if err := wire.NewDecoder(r.Body).Decode(&req); err != nil {
		http.Error(w, "wire: bad advance request: "+err.Error(), http.StatusBadRequest)
		return
	}
	if err := s.svc.Advance(time.Duration(req.DNS)); err != nil {
		http.Error(w, err.Error(), http.StatusUnprocessableEntity)
		return
	}
	writeJSON(w, http.StatusOK, wire.Health{OK: true, NowNS: int64(s.svc.Now()), Subscribers: s.svc.Subscribers()})
}

// lookup resolves the {id} path value to a subscription opened on this
// server, writing the error response when it can't.
func (s *Server) lookup(w http.ResponseWriter, r *http.Request) (*mobiquery.Subscription, bool) {
	id, err := strconv.ParseUint(r.PathValue("id"), 10, 32)
	if err != nil {
		http.Error(w, "bad subscription id", http.StatusBadRequest)
		return nil, false
	}
	s.mu.Lock()
	sub := s.subs[uint32(id)]
	s.mu.Unlock()
	if sub == nil {
		http.Error(w, "no such subscription", http.StatusNotFound)
		return nil, false
	}
	return sub, true
}

func writeJSON(w http.ResponseWriter, code int, v any) {
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(code)
	wire.NewEncoder(w).Encode(v)
}
