package server

import (
	"context"
	"encoding/json"
	"testing"
	"time"

	"mobiquery"
	"mobiquery/internal/wire"
)

// loopbackCase is one spec/motion pairing driven both in-process and over
// the wire.
type loopbackCase struct {
	name   string
	spec   wire.Spec
	motion wire.Motion
	steps  int
	step   time.Duration
	want   int // results expected
}

func loopbackCases() []loopbackCase {
	onDemand := testSpec()
	jitCorridor := testSpec()
	jitCorridor.Strategy = "jit"
	jitCorridor.CorridorLookahead = 4
	jitCorridor.ErrBaseM = 20
	jitCorridor.ErrGrowthMPS = 2
	return []loopbackCase{
		{
			name:   "ondemand/linear",
			spec:   onDemand,
			motion: wire.Motion{Kind: "linear", XM: 150, YM: 150, VXMPS: 3, VYMPS: 1},
			steps:  12, step: time.Second, want: 6,
		},
		{
			name: "jit+corridor/gps-course",
			spec: jitCorridor,
			motion: wire.Motion{
				Kind: "course", Seed: 11, XM: 200, YM: 200,
				RegionSideM: 450, SpeedMinMPS: 1, SpeedMaxMPS: 3,
				ChangeIntervalNS: int64(10 * time.Second), DurationNS: int64(time.Minute),
				GPSSeed: 12, GPSSamplingNS: int64(time.Second), GPSErrM: 5,
			},
			steps: 12, step: time.Second, want: 6,
		},
	}
}

// inProcess runs the case directly against the session API.
func inProcess(t *testing.T, sc mobiquery.ServiceConfig, c loopbackCase) []wire.Result {
	t.Helper()
	svc, err := mobiquery.Open(context.Background(), testConfig(sc), mobiquery.WithResultBuffer(64))
	if err != nil {
		t.Fatalf("Open: %v", err)
	}
	defer svc.Close()
	spec, err := c.spec.QuerySpec()
	if err != nil {
		t.Fatalf("spec: %v", err)
	}
	src, err := c.motion.Source()
	if err != nil {
		t.Fatalf("motion: %v", err)
	}
	sub, err := svc.Subscribe(context.Background(), spec, src)
	if err != nil {
		t.Fatalf("Subscribe: %v", err)
	}
	for i := 0; i < c.steps; i++ {
		if err := svc.Advance(c.step); err != nil {
			t.Fatalf("Advance: %v", err)
		}
	}
	sub.Close()
	var out []wire.Result
	for r := range sub.Results() {
		out = append(out, wire.FromResult(r))
	}
	return out
}

// overWire runs the same case through the HTTP front-end under a manual
// clock driven by the advance endpoint.
func overWire(t *testing.T, sc mobiquery.ServiceConfig, c loopbackCase) []wire.Result {
	t.Helper()
	h := newHarness(t, sc)
	_, dec, done := h.subscribe(t, context.Background(), wire.SubscribeRequest{Spec: c.spec, Motion: c.motion})
	defer done()
	for i := 0; i < c.steps; i++ {
		h.advance(t, c.step)
	}
	var out []wire.Result
	for len(out) < c.want {
		var f wire.Frame
		if err := dec.Decode(&f); err != nil {
			t.Fatalf("stream: %v (after %d results)", err, len(out))
		}
		if f.Type != wire.FrameResult {
			t.Fatalf("unexpected frame %+v", f)
		}
		out = append(out, *f.Result)
	}
	return out
}

// TestLoopbackByteIdentical pins the front-end's fidelity contract: the
// results a client receives over the network are byte-identical (as wire
// frames) to what the same seed and call sequence yields in-process, and
// both are invariant to the engine's Shards/Workers sizing.
func TestLoopbackByteIdentical(t *testing.T) {
	configs := []mobiquery.ServiceConfig{
		{Shards: 1, Workers: 1},
		{Shards: 8, Workers: 4},
		{}, // auto sizing
	}
	for _, c := range loopbackCases() {
		t.Run(c.name, func(t *testing.T) {
			ref := inProcess(t, configs[0], c)
			if len(ref) != c.want {
				t.Fatalf("in-process run yielded %d results, want %d", len(ref), c.want)
			}
			refBytes := encodeAll(t, ref)
			for _, sc := range configs {
				if got := encodeAll(t, inProcess(t, sc, c)); got != refBytes {
					t.Errorf("in-process results vary with ServiceConfig %+v:\n got %s\nwant %s", sc, got, refBytes)
				}
				if got := encodeAll(t, overWire(t, sc, c)); got != refBytes {
					t.Errorf("networked results differ from in-process under %+v:\n got %s\nwant %s", sc, got, refBytes)
				}
			}
		})
	}
}

// encodeAll renders a result sequence as one JSON byte string for exact
// comparison.
func encodeAll(t *testing.T, rs []wire.Result) string {
	t.Helper()
	b, err := json.Marshal(rs)
	if err != nil {
		t.Fatalf("marshal: %v", err)
	}
	return string(b)
}
