package core

import (
	"testing"
	"time"

	"mobiquery/internal/geom"
	"mobiquery/internal/mobility"
	"mobiquery/internal/radio"
	"mobiquery/internal/sim"
)

// failNode powers a node's radio off permanently, retrying around in-flight
// transmissions — crash-style failure injection.
func failNode(eng *sim.Engine, r *rig, id radio.NodeID, at sim.Time) {
	var try func()
	try = func() {
		rad := r.nw.Node(id).MAC().Radio()
		if rad.Transmitting() {
			eng.After(10*time.Millisecond, try)
			return
		}
		rad.SetOn(false)
	}
	eng.Schedule(at, try)
}

// TestBackboneNodeFailuresDegradeGracefully kills several backbone nodes
// mid-session. The protocol must neither panic nor stop delivering; the
// report fallbacks and anycast rerouting absorb the losses.
func TestBackboneNodeFailuresDegradeGracefully(t *testing.T) {
	course := stationaryCourse(geom.Pt(220, 220))
	r := buildRig(t, SchemeJIT, course, mobility.OracleProfiler{Course: course}, 3*time.Second, 36*time.Second, Hooks{})

	// Kill three backbone grid nodes near the query area at 15 s.
	for i, id := range []radio.NodeID{6, 7, 11} {
		failNode(r.eng, r, id, sec(15)+sim.Time(i)*sec(0.2))
	}
	r.eng.Run(42 * time.Second)

	received := 0
	for _, pr := range r.svc.Results() {
		if pr.K <= 8 { // pre-failure periods
			continue
		}
		if pr.Received && pr.OnTime {
			received++
		}
	}
	if received < 7 {
		t.Errorf("only %d/10 post-failure periods delivered; failures should degrade, not destroy", received)
	}
}

// TestLeafFailuresOnlyCostFidelity kills duty-cycled leaves: results keep
// flowing and only their own contributions disappear.
func TestLeafFailuresOnlyCostFidelity(t *testing.T) {
	course := stationaryCourse(geom.Pt(220, 220))
	r := buildRig(t, SchemeJIT, course, mobility.OracleProfiler{Course: course}, 3*time.Second, 30*time.Second, Hooks{})

	// Leaves occupy ids 25.. in the rig layout (after the 5x5 backbone).
	for i := radio.NodeID(25); i < 29; i++ {
		failNode(r.eng, r, i, sec(12))
	}
	r.eng.Run(36 * time.Second)

	for _, pr := range r.svc.Results() {
		if pr.K > 7 && (!pr.Received || !pr.OnTime) {
			t.Errorf("k=%d lost entirely after leaf failures", pr.K)
		}
	}
}

// TestProxyOutOfFieldStillServed drives the user outside the deployment:
// results must still be produced for areas straddling the boundary (the
// collector is simply the nearest reachable node).
func TestProxyOutOfFieldStillServed(t *testing.T) {
	// User walks off the east edge of the backbone grid.
	path := mobility.LinearPath(geom.Pt(300, 220), geom.V(5, 0), 0, sec(30))
	course := mobility.Course{Trajectory: path}
	r := buildRig(t, SchemeJIT, course, mobility.OracleProfiler{Course: course}, 3*time.Second, 24*time.Second, Hooks{})
	r.eng.Run(30 * time.Second)

	received := 0
	for _, pr := range r.svc.Results() {
		if pr.Received {
			received++
		}
	}
	if received < 6 {
		t.Errorf("only %d periods delivered while skirting the field edge", received)
	}
}
