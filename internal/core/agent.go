package core

import (
	"math/rand"
	"sort"
	"time"

	"mobiquery/internal/geom"
	"mobiquery/internal/mac"
	"mobiquery/internal/netstack"
	"mobiquery/internal/radio"
	"mobiquery/internal/sim"
)

// treeKey identifies one query tree instance on a node. Version is part of
// the key: after a motion change, the new chain may rebuild period k's tree
// at a different pickup point while the old one still exists.
type treeKey struct {
	qid     uint32
	version int
	k       int
}

// treeState is a node's per-tree protocol state: its parent, the partial
// aggregate accumulated from its subtree, and the timers driving sampling
// and the sub-deadline flush of equation (1).
type treeState struct {
	key      treeKey
	root     radio.NodeID
	rootPos  geom.Point
	pickup   geom.Point
	deadline sim.Time
	spec     QuerySpec
	parent   radio.NodeID // -1 at the root
	inArea   bool
	acc      Partial
	flushed  bool
	dead     bool

	sampleTimer   *sim.Timer
	flushTimer    *sim.Timer
	teardownTimer *sim.Timer
}

// forwardState tracks a collector's pending/last prefetch forward for one
// query, so cancel messages can chase (or cap) the chain.
type forwardState struct {
	version    int
	k          int // period this node collected for
	nextPickup geom.Point
	forwarded  bool
	holdTimer  *sim.Timer
	msg        *prefetchMsg // pending forward, mutable until sent
}

// agent is the MobiQuery protocol instance on one node (sensor nodes and
// the proxy alike; the proxy's agent has isSensor=false and a resultSink).
type agent struct {
	svc  *Service
	node *netstack.Node
	// isSensor nodes sample the field and count toward fidelity. Proxies
	// participate in trees (as NP roots) but never sample.
	isSensor bool
	// resultSinks (proxy agents only) consume results for the queries this
	// node serves as gateway for.
	resultSinks map[uint32]func(resultMsg)

	rng        *rand.Rand
	trees      map[treeKey]*treeState
	leafJoined map[treeKey]*leafState
	pending    map[treeKey]*treeState // trees awaiting leaf recruitment
	recruitArm bool                   // a recruit tick is scheduled
	forwards   map[uint32]*forwardState
	gates      map[uint32]gate
}

// gate records the newest motion-profile version a node knows of and the
// first period that version governs. Older-version state remains valid for
// periods before fromK: the old profile is still in effect until the new
// one's ts (Section 4.1.2's validity model).
type gate struct {
	version int
	fromK   int
}

// stale reports whether protocol state (version, k) has been superseded.
func (g gate) stale(version, k int) bool {
	return version < g.version && k >= g.fromK
}

// advance merges a newly learned (version, fromK) pair into the gate.
func (g gate) advance(version, fromK int) gate {
	if version > g.version {
		return gate{version: version, fromK: fromK}
	}
	if version == g.version && fromK < g.fromK {
		g.fromK = fromK
	}
	return g
}

// leafState is a duty-cycled node's membership in one query tree.
type leafState struct {
	parent      radio.NodeID
	sampleAt    sim.Time
	deadline    sim.Time
	wakeTimer   *sim.Timer
	sampleTimer *sim.Timer
}

func newAgent(svc *Service, node *netstack.Node, isSensor bool) *agent {
	a := &agent{
		svc:         svc,
		node:        node,
		isSensor:    isSensor,
		rng:         svc.eng.RNG("core"),
		resultSinks: make(map[uint32]func(resultMsg)),
		trees:       make(map[treeKey]*treeState),
		leafJoined:  make(map[treeKey]*leafState),
		pending:     make(map[treeKey]*treeState),
		forwards:    make(map[uint32]*forwardState),
		gates:       make(map[uint32]gate),
	}
	node.Handle(portPrefetch, a.onPrefetch)
	node.HandleFlood(portSetup, a.onSetup)
	node.Handle(portRecruit, a.onRecruit)
	node.Handle(portReport, a.onReport)
	node.Handle(portResultRelay, a.onResultRelay)
	node.Handle(portCancel, a.onCancel)
	return a
}

func (a *agent) eng() *sim.Engine { return a.svc.eng }
func (a *agent) now() sim.Time    { return a.svc.eng.Now() }

// jitter draws a uniform delay in [0, max) to decorrelate transmissions
// that the protocol would otherwise schedule at identical instants on many
// nodes (window starts, shared sub-deadlines).
func (a *agent) jitter(max time.Duration) time.Duration {
	if max <= 0 {
		return 0
	}
	return time.Duration(a.rng.Int63n(int64(max)))
}

// ---------------------------------------------------------------- prefetch

// onPrefetch runs on the node chosen as collector for period msg.K: it
// disseminates the query tree and schedules the next prefetch forward
// according to the active scheme (just-in-time hold or greedy).
func (a *agent) onPrefetch(_ radio.NodeID, body any) {
	msg, ok := body.(prefetchMsg)
	if !ok {
		return
	}
	g := a.gates[msg.QueryID]
	if g.stale(msg.Version, msg.K) {
		return // superseded by a newer motion profile
	}
	a.gates[msg.QueryID] = g.advance(msg.Version, msg.FromK)

	fw := a.forwards[msg.QueryID]
	if fw != nil && fw.version == msg.Version && fw.k >= msg.K {
		return // duplicate delivery of a prefetch we already handled
	}

	now := a.now()
	deadline := msg.Spec.Deadline(msg.T0, msg.K)
	if now < deadline-a.svc.cfg.CollectorMargin {
		// Disseminate the query tree for this period. The flood scope
		// extends past the query area so boundary leaves still find a
		// router/recruiter, per DESIGN.md.
		scope := geom.Circle{C: msg.Pickup, R: msg.Spec.Radius + a.svc.cfg.ScopeMargin}
		a.node.StartFlood(scope, portSetup, setupMsg{
			QueryID:  msg.QueryID,
			Version:  msg.Version,
			K:        msg.K,
			Root:     a.node.ID(),
			RootPos:  a.node.Pos(),
			Pickup:   msg.Pickup,
			Deadline: deadline,
			Spec:     msg.Spec,
		}, setupSize)
	}

	// Forward the prefetch toward the next pickup point, unless the chain
	// has reached the query lifetime or its cap (a newer profile version
	// takes over from there).
	nextK := msg.K + 1
	capped := msg.UpToK > 0 && nextK >= msg.UpToK
	if g := a.gates[msg.QueryID]; g.version > msg.Version && nextK >= g.fromK {
		capped = true
	}
	if capped || msg.Spec.Deadline(msg.T0, nextK) > msg.T0+msg.Spec.Lifetime {
		a.forwards[msg.QueryID] = &forwardState{version: msg.Version, k: msg.K, forwarded: false}
		return
	}
	nextDeadline := msg.Spec.Deadline(msg.T0, nextK)
	nextPickup := msg.Profile.PredictAt(nextDeadline)
	sendAt := now
	if msg.Scheme == SchemeJIT {
		// Equation (10): the kth collector forwards no later than
		// k*Tperiod - Tsleep - 2*Tfresh (query-relative); holding until
		// (just under) that bound is what limits storage and contention.
		// The ForwardLead safety margin also de-phases tree setups from
		// collection bursts: Tsleep + 2*Tfresh is congruent to Tfresh modulo
		// Tperiod for the paper's parameters, so without it every setup
		// flood would land exactly on a sample instant.
		hold := msg.Spec.Deadline(msg.T0, msg.K) - a.svc.sleepPeriod() - 2*msg.Spec.Fresh - a.svc.cfg.ForwardLead
		if hold > sendAt {
			sendAt = hold
		}
	}
	fwdMsg := msg
	fwdMsg.K = nextK
	fwdMsg.Pickup = nextPickup
	st := &forwardState{version: msg.Version, k: msg.K, nextPickup: nextPickup, msg: &fwdMsg}
	if fw != nil && fw.holdTimer != nil {
		a.eng().Cancel(fw.holdTimer)
	}
	if fw != nil && fw.forwarded && fw.version < msg.Version && fw.k+1 >= msg.FromK {
		// This node sat on an older chain whose remainder is now stale;
		// chase it down before the slot is reused for the new chain. The
		// flag is cleared first: GeoSend can deliver locally and re-enter
		// the cancel handler synchronously.
		fw.forwarded = false
		a.node.GeoSend(fw.nextPickup, a.svc.cfg.PickupRadius, portCancel,
			cancelMsg{QueryID: msg.QueryID, NewVersion: msg.Version, FromK: msg.FromK}, cancelSize)
	}
	a.forwards[msg.QueryID] = st
	send := func() {
		st.forwarded = true
		st.holdTimer = nil
		a.svc.hooks.onPrefetchForward(msg.K, nextK, a.now())
		a.node.GeoSend(nextPickup, a.svc.cfg.PickupRadius, portPrefetch, *st.msg, prefetchSize)
	}
	if sendAt <= now {
		send()
	} else {
		st.holdTimer = a.eng().Schedule(sendAt, send)
	}
}

// onCancel tears down state belonging to superseded motion profiles and
// chases the old chain onward.
func (a *agent) onCancel(_ radio.NodeID, body any) {
	msg, ok := body.(cancelMsg)
	if !ok {
		return
	}
	a.gates[msg.QueryID] = a.gates[msg.QueryID].advance(msg.NewVersion, msg.FromK)
	now := a.now()
	victims := make([]*treeState, 0, len(a.trees))
	for key, ts := range a.trees {
		if key.qid != msg.QueryID || !a.gates[msg.QueryID].stale(key.version, key.k) {
			continue
		}
		// Trees already sampling may still deliver a useful result to the
		// diverged user; only cancel those whose sampling lies ahead.
		if ts.deadline-ts.spec.Fresh > now {
			victims = append(victims, ts)
		}
	}
	sort.Slice(victims, func(i, j int) bool { return victims[i].key.k < victims[j].key.k })
	for _, ts := range victims {
		a.teardown(ts)
	}
	fw := a.forwards[msg.QueryID]
	if fw == nil || fw.version >= msg.NewVersion {
		return
	}
	if fw.msg != nil && fw.msg.K < msg.FromK {
		// The pending forward still serves the valid prefix of the old
		// profile; cap the chain at the new version's first period.
		if fw.msg.UpToK == 0 || fw.msg.UpToK > msg.FromK {
			fw.msg.UpToK = msg.FromK
		}
	} else if fw.holdTimer != nil {
		a.eng().Cancel(fw.holdTimer)
		fw.holdTimer = nil
	}
	if fw.forwarded {
		// Chase the chain onward: downstream collectors either cap their
		// still-valid prefix at FromK or cancel outright. Clear the flag
		// before sending: GeoSend can deliver locally and re-enter this
		// handler synchronously.
		fw.forwarded = false // chase once
		a.node.GeoSend(fw.nextPickup, a.svc.cfg.PickupRadius, portCancel, msg, cancelSize)
	}
}

// ------------------------------------------------------------ tree setup

// onSetup handles one copy of a query-tree setup flood. Always-on nodes
// join the tree (first relay heard becomes the parent); duty-cycled nodes
// that happen to be awake join directly as leaves.
func (a *agent) onSetup(relay, _ radio.NodeID, body any, _ int) {
	msg, ok := body.(setupMsg)
	if !ok {
		return
	}
	if a.gates[msg.QueryID].stale(msg.Version, msg.K) {
		return
	}
	key := treeKey{msg.QueryID, msg.Version, msg.K}
	now := a.now()
	sampleAt := msg.Deadline - msg.Spec.Fresh

	if a.node.Role() == mac.RoleDutyCycled {
		a.joinAsLeaf(key, relay, msg.Pickup, msg.Spec.Radius, sampleAt, msg.Deadline)
		return
	}

	if _, exists := a.trees[key]; exists {
		return // first-heard relay is the parent; later copies are ignored
	}
	if now >= msg.Deadline-a.svc.cfg.CollectorMargin {
		return // too late for this period
	}
	ts := &treeState{
		key:      key,
		root:     msg.Root,
		rootPos:  msg.RootPos,
		pickup:   msg.Pickup,
		deadline: msg.Deadline,
		spec:     msg.Spec,
		parent:   relay,
		inArea:   a.isSensor && a.node.Pos().Within(msg.Pickup, msg.Spec.Radius),
		acc:      NewPartial(),
	}
	if a.node.ID() == msg.Root {
		ts.parent = -1
	}
	a.trees[key] = ts
	a.svc.hooks.onTreeUp(a.node.ID(), msg.K, now)

	if ts.inArea {
		at := sampleAt
		if at < now {
			at = now // late (warmup) setup: sample immediately, still fresh
		}
		ts.sampleTimer = a.eng().Schedule(at, func() { a.sampleInto(ts) })
	}
	ts.flushTimer = a.eng().Schedule(a.flushAt(ts), func() { a.flush(ts) })
	ts.teardownTimer = a.eng().Schedule(msg.Deadline+a.svc.cfg.TeardownGrace, func() { a.teardown(ts) })

	// Arm leaf recruitment for the coming active windows.
	a.pending[key] = ts
	a.armRecruit()
}

// flushAt computes the node's sub-deadline per equation (1), clamped so
// that (a) the flush happens after the node's own sample, and (b) children
// beat the root's result dispatch.
func (a *agent) flushAt(ts *treeState) sim.Time {
	now := a.now()
	if ts.parent < 0 {
		at := ts.deadline - a.svc.cfg.CollectorMargin
		if at < now {
			at = now
		}
		return at
	}
	frac := a.node.Pos().Dist(ts.rootPos) / (a.svc.cfg.PickupRadius + ts.spec.Radius)
	du := ts.deadline - sim.Time(frac*float64(ts.spec.Fresh))
	sampleAt := ts.deadline - ts.spec.Fresh
	if min := sampleAt + a.svc.cfg.FlushMargin; du < min {
		du = min // routers beyond Rp+Rq must still wait for leaf samples
	}
	du += a.jitter(20 * time.Millisecond) // decorrelate clamped flushes
	if max := ts.deadline - a.svc.cfg.CollectorMargin - 10*time.Millisecond; du > max {
		du = max // collector-adjacent nodes must beat the result dispatch
	}
	if du < now {
		du = now
	}
	return du
}

// sampleInto reads the sensor and folds the reading into the tree's
// accumulator. The reading is taken at or after deadline-Tfresh, so it is
// fresh at delivery by construction.
func (a *agent) sampleInto(ts *treeState) {
	if ts.dead || ts.flushed {
		return
	}
	v := a.svc.field.Sample(a.node.Pos(), a.now())
	ts.acc.AddReading(a.node.ID(), v)
}

// flush sends the accumulated partial to the parent (or dispatches the
// result at the root). Reports arriving after the flush are dropped — the
// timeout behaviour of Section 4.4.
func (a *agent) flush(ts *treeState) {
	if ts.dead || ts.flushed {
		return
	}
	ts.flushed = true
	if ts.parent < 0 {
		a.dispatchResult(ts)
		return
	}
	if ts.acc.Count == 0 {
		return // nothing to contribute
	}
	msg := reportMsg{QueryID: ts.key.qid, Version: ts.key.version, K: ts.key.k, Data: ts.acc}
	a.svc.debug.MemberFlushes++
	a.node.Send(ts.parent, portReport, msg, reportSize, func(ok bool) {
		if !ok {
			a.svc.debug.MemberFlushFails++
			a.reportFallback(ts.rootPos, ts.deadline, msg)
		}
	})
}

// onReport merges a child's partial into the local accumulator, provided
// this node still holds the tree and has not flushed.
func (a *agent) onReport(_ radio.NodeID, body any) {
	msg, ok := body.(reportMsg)
	if !ok {
		return
	}
	key := treeKey{msg.QueryID, msg.Version, msg.K}
	ts := a.trees[key]
	if ts == nil || ts.dead {
		a.svc.debug.ReportsNoTree++
		return
	}
	if ts.flushed {
		a.svc.debug.ReportsLate++
		// The sub-deadline timeout stops this node *waiting*, not the data:
		// late partials are passed through unaggregated while the collector
		// can still use them (TAG-style late forwarding). Only the root has
		// truly finished once it dispatched.
		if ts.parent >= 0 && a.now() < ts.deadline-a.svc.cfg.CollectorMargin {
			a.node.Send(ts.parent, portReport, msg, reportSize, nil)
		}
		return
	}
	a.svc.debug.ReportsMerged++
	ts.acc.Merge(msg.Data)
}

// dispatchResult sends the aggregated result from the collector to the
// user. If the proxy is in radio range it is addressed directly; otherwise
// one geographic relay toward the proxy's announced position is attempted.
func (a *agent) dispatchResult(ts *treeState) {
	msg := resultMsg{
		QueryID:    ts.key.qid,
		Version:    ts.key.version,
		K:          ts.key.k,
		Root:       ts.root,
		Pickup:     ts.pickup,
		Data:       ts.acc,
		Dispatched: a.now(),
	}
	a.deliverResult(msg)
}

// deliverResult moves a result toward its query's proxy from this node.
func (a *agent) deliverResult(msg resultMsg) {
	if sink := a.resultSinks[msg.QueryID]; sink != nil {
		sink(msg)
		return
	}
	proxy := a.svc.proxies[msg.QueryID]
	if proxy == nil {
		return // unknown query (stale state after user departure)
	}
	if a.svc.nw.InRange(a.node.ID(), proxy.ID()) {
		a.node.Send(proxy.ID(), portResult, msg, resultSize, nil)
		return
	}
	if msg.Relayed {
		return // the user is not where we thought; the result is lost
	}
	// The proxy periodically announces its position to nearby nodes (it is
	// always on); route toward that position and retry the direct hop.
	msg.Relayed = true
	a.node.GeoSend(proxy.Pos(), a.svc.cfg.PickupRadius, portResultRelay, msg, resultSize)
}

// onResultRelay continues a geo-relayed result toward the proxy.
func (a *agent) onResultRelay(_ radio.NodeID, body any) {
	msg, ok := body.(resultMsg)
	if !ok {
		return
	}
	a.deliverResult(msg)
}

// ------------------------------------------------------------ recruitment

// armRecruit schedules the next batched recruit broadcast if one is not
// already armed. Recruit broadcasts happen inside common active windows so
// duty-cycled nodes can hear them.
func (a *agent) armRecruit() {
	if a.recruitArm || len(a.pending) == 0 {
		return
	}
	at := a.svc.macCfg.BroadcastTime(a.now()) + a.jitter(20*time.Millisecond)
	a.recruitArm = true
	a.eng().Schedule(at, a.recruitTick)
}

// recruitTick broadcasts one batched recruit message covering every pending
// tree whose sampling time is still usefully ahead, then re-arms for the
// next window while any tree remains pending.
func (a *agent) recruitTick() {
	a.recruitArm = false
	now := a.now()
	// Deterministic entry order: map iteration order must not leak into
	// the event sequence (leaf joins draw jitter per entry).
	keys := make([]treeKey, 0, len(a.pending))
	for key := range a.pending {
		keys = append(keys, key)
	}
	sort.Slice(keys, func(i, j int) bool {
		a, b := keys[i], keys[j]
		if a.qid != b.qid {
			return a.qid < b.qid
		}
		if a.version != b.version {
			return a.version < b.version
		}
		return a.k < b.k
	})
	var entries []recruitEntry
	for _, key := range keys {
		ts := a.pending[key]
		if ts.dead {
			delete(a.pending, key)
			continue
		}
		sampleAt := ts.deadline - ts.spec.Fresh
		if sampleAt <= now+a.svc.cfg.RecruitLead {
			delete(a.pending, key) // too late for sleepers to join
			continue
		}
		entries = append(entries, recruitEntry{
			QueryID:  key.qid,
			Version:  key.version,
			K:        key.k,
			Pickup:   ts.pickup,
			Radius:   ts.spec.Radius,
			SampleAt: sampleAt,
			Deadline: ts.deadline,
		})
	}
	if len(entries) > 0 {
		msg := recruitMsg{Entries: entries}
		a.svc.debug.RecruitBcasts++
		a.node.Broadcast(portRecruit, msg, msg.size())
	}
	if len(a.pending) > 0 {
		// Re-arm for the next window: entries stay pending until their
		// sample time passes, so sleepers that missed this window (or whose
		// copy collided) get another chance.
		a.recruitArm = true
		a.eng().Schedule(a.svc.macCfg.NextWindowStart(now)+a.jitter(20*time.Millisecond), a.recruitTick)
	}
}

// onRecruit lets a duty-cycled node join advertised trees as a leaf.
func (a *agent) onRecruit(src radio.NodeID, body any) {
	msg, ok := body.(recruitMsg)
	if !ok {
		return
	}
	if a.node.Role() != mac.RoleDutyCycled {
		return // tree members already joined via the setup flood
	}
	for _, e := range msg.Entries {
		key := treeKey{e.QueryID, e.Version, e.K}
		a.joinAsLeaf(key, src, e.Pickup, e.Radius, e.SampleAt, e.Deadline)
	}
}

// joinAsLeaf schedules a sleeping node's just-in-time participation: wake
// at the sample time, read the sensor, report to the parent, sleep again.
func (a *agent) joinAsLeaf(key treeKey, parent radio.NodeID, pickup geom.Point, radius float64, sampleAt, deadline sim.Time) {
	if !a.isSensor || !a.node.Pos().Within(pickup, radius) {
		return
	}
	if a.gates[key.qid].stale(key.version, key.k) {
		return
	}
	if _, joined := a.leafJoined[key]; joined {
		return
	}
	now := a.now()
	if sampleAt < now {
		if now >= deadline {
			return
		}
		sampleAt = now // heard the setup late but can still contribute
	}
	a.svc.debug.LeafJoins++
	ls := &leafState{parent: parent, sampleAt: sampleAt, deadline: deadline}
	ls.wakeTimer = a.node.MAC().WakeAt(sampleAt, sampleAt+a.svc.cfg.LeafAwake)
	reportAt := sampleAt + time.Millisecond + a.jitter(30*time.Millisecond)
	ls.sampleTimer = a.eng().Schedule(reportAt, func() { a.leafReport(key, ls) })
	a.leafJoined[key] = ls
}

// leafReport performs the leaf's single sample-and-transmit.
func (a *agent) leafReport(key treeKey, ls *leafState) {
	if a.gates[key.qid].stale(key.version, key.k) {
		return // canceled while asleep
	}
	p := NewPartial()
	p.AddReading(a.node.ID(), a.svc.field.Sample(a.node.Pos(), a.now()))
	msg := reportMsg{QueryID: key.qid, Version: key.version, K: key.k, Data: p}
	a.svc.debug.LeafReports++
	a.node.Send(ls.parent, portReport, msg, reportSize, func(ok bool) {
		if !ok {
			a.svc.debug.LeafReportFails++
			a.reportFallback(a.svc.nw.Node(ls.parent).Pos(), ls.deadline, msg)
		}
	})
}

// reportFallback reroutes a report whose tree link failed at the MAC layer:
// the partial is forwarded geographically toward the collector, where any
// tree member that receives it merges it (or passes it along if already
// flushed). This is the standard network-layer answer to a dead link and
// keeps single MAC failures from erasing whole subtrees.
func (a *agent) reportFallback(rootPos geom.Point, deadline sim.Time, msg reportMsg) {
	if a.now() >= deadline-a.svc.cfg.CollectorMargin {
		return // too late to matter
	}
	a.svc.debug.ReportFallbacks++
	a.node.GeoSend(rootPos, 30, portReport, msg, reportSize)
}

// ------------------------------------------------------------- teardown

// teardown removes a tree's state and cancels its timers.
func (a *agent) teardown(ts *treeState) {
	if ts.dead {
		return
	}
	ts.dead = true
	a.eng().Cancel(ts.sampleTimer)
	a.eng().Cancel(ts.flushTimer)
	a.eng().Cancel(ts.teardownTimer)
	delete(a.trees, ts.key)
	delete(a.pending, ts.key)
	a.svc.hooks.onTreeDown(a.node.ID(), ts.key.k, a.now())
}

// liveTrees returns the number of query trees currently held (a storage
// metric).
func (a *agent) liveTrees() int { return len(a.trees) }
