package core

import (
	"fmt"
	"math/rand"
	"sync"
	"sync/atomic"
	"testing"
	"time"

	"mobiquery/internal/field"
	"mobiquery/internal/geom"
	"mobiquery/internal/sim"
)

// scheduleTestEngine builds an engine over an empty node field: window
// evaluation then visits no sensors, so scheduler tests exercise the
// temporal bookkeeping without spatial cost.
func scheduleTestEngine(t testing.TB, workers int) *QueryEngine {
	t.Helper()
	e, err := NewQueryEngineE(geom.Square(100), 10, field.Uniform{Value: 1}, EngineConfig{Workers: workers})
	if err != nil {
		t.Fatal(err)
	}
	return e
}

// TestSchedulePopOrder pins the pop contract: entries come out in
// ascending (due, id) order, ties broken by id, regardless of insertion
// order.
func TestSchedulePopOrder(t *testing.T) {
	s := NewSchedule()
	s.Upsert(3, 10*time.Second)
	s.Upsert(1, 20*time.Second)
	s.Upsert(2, 10*time.Second)
	s.Upsert(4, 5*time.Second)
	got := s.PopDue(15*time.Second, nil)
	want := []DueEntry{{4, 5 * time.Second}, {2, 10 * time.Second}, {3, 10 * time.Second}}
	if len(got) != len(want) {
		t.Fatalf("popped %v, want %v", got, want)
	}
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("popped %v, want %v", got, want)
		}
	}
	if n := s.Len(); n != 1 {
		t.Fatalf("schedule holds %d entries after pop, want 1", n)
	}
	if e, ok := s.NextDue(); !ok || e.ID != 1 {
		t.Fatalf("peek = %v/%v, want id 1", e, ok)
	}
	// Upsert moves an existing entry.
	s.Upsert(1, time.Second)
	if got := s.PopDue(time.Second, nil); len(got) != 1 || got[0].ID != 1 {
		t.Fatalf("rescheduled pop = %v, want id 1", got)
	}
	// Remove of a missing id is a no-op; popping an empty schedule too.
	s.Remove(99)
	if got := s.PopDue(time.Hour, nil); len(got) != 0 {
		t.Fatalf("empty schedule popped %v", got)
	}
}

// TestSchedulePropertyAgainstBruteForce drives 10k temporal queries
// through a long random interleaving of RegisterTemporalE, EvaluateDue,
// Deregister, and PopDue, checking after every operation batch that the
// engine's schedule agrees exactly with a brute-force O(n) scan over a
// shadow map of every query's next due period.
func TestSchedulePropertyAgainstBruteForce(t *testing.T) {
	const nIDs = 10_000
	e := scheduleTestEngine(t, 1)
	rng := rand.New(rand.NewSource(7))

	// shadow mirrors what the schedule must hold: next due per live query.
	shadow := make(map[uint32]sim.Time, nIDs)
	spec := func(id uint32) TemporalSpec {
		return TemporalSpec{Period: time.Duration(1+id%7) * time.Second}
	}

	register := func(id uint32, now sim.Time) {
		if _, live := shadow[id]; live {
			return
		}
		if err := e.RegisterTemporalE(id, 5, geom.Pt(50, 50), spec(id), now); err != nil {
			t.Fatal(err)
		}
		shadow[id] = now + spec(id).Period
	}
	for id := uint32(1); id <= nIDs; id++ {
		register(id, 0)
	}

	now := sim.Time(0)
	for step := 0; step < 200; step++ {
		now += sim.Time(rng.Int63n(int64(3 * time.Second)))
		// A burst of random churn and direct evaluations between pops.
		for i := 0; i < 50; i++ {
			id := uint32(1 + rng.Intn(nIDs))
			switch rng.Intn(3) {
			case 0:
				e.Deregister(id)
				delete(shadow, id)
			case 1:
				register(id, now)
			case 2:
				due, live := shadow[id]
				wr, ok := e.EvaluateDue(id, now)
				wantOK := live && due <= now
				if ok != wantOK {
					t.Fatalf("step %d: EvaluateDue(%d, %v) ok=%v, want %v", step, id, now, ok, wantOK)
				}
				if ok {
					shadow[id] = wr.Due + spec(id).Period
				}
			}
		}

		// The scheduler's pop must equal the brute-force scan: every live
		// query with a due period, in ascending (due, id) order.
		var want []DueEntry
		for id, due := range shadow {
			if due <= now {
				want = append(want, DueEntry{ID: id, Due: due})
			}
		}
		got := e.PopDue(now, nil)
		if len(got) != len(want) {
			t.Fatalf("step %d: popped %d entries, brute force finds %d", step, len(got), len(want))
		}
		seen := make(map[uint32]sim.Time, len(got))
		for i, de := range got {
			if i > 0 && (got[i-1].Due > de.Due || (got[i-1].Due == de.Due && got[i-1].ID >= de.ID)) {
				t.Fatalf("step %d: pop order violated at %d: %v then %v", step, i, got[i-1], de)
			}
			if shadow[de.ID] != de.Due {
				t.Fatalf("step %d: popped (%d, %v), shadow says next due %v", step, de.ID, de.Due, shadow[de.ID])
			}
			seen[de.ID] = de.Due
		}
		for _, w := range want {
			if seen[w.ID] != w.Due {
				t.Fatalf("step %d: brute force expects %v, not popped", step, w)
			}
		}
		// Drive every popped query forward like a clock driver would, so
		// the schedule is re-armed for the next round.
		for _, de := range got {
			for shadow[de.ID] <= now {
				wr, ok := e.EvaluateDue(de.ID, now)
				if !ok {
					t.Fatalf("step %d: popped query %d refused evaluation", step, de.ID)
				}
				shadow[de.ID] = wr.Due + spec(de.ID).Period
			}
		}
	}
	if len(shadow) == 0 {
		t.Fatal("property test degenerated: no live queries left")
	}
}

// TestScheduleConcurrentChurn hammers the schedule from many goroutines —
// registration, evaluation, deregistration, and pops on overlapping id
// ranges — and checks it converges to exactly one entry per live temporal
// query. Run under -race this doubles as the scheduler's race test.
func TestScheduleConcurrentChurn(t *testing.T) {
	e := scheduleTestEngine(t, 4)
	const (
		goroutines = 8
		perG       = 300
		idSpace    = 64 // overlapping ranges force contention
	)
	var wg sync.WaitGroup
	for g := 0; g < goroutines; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			rng := rand.New(rand.NewSource(int64(g)))
			spec := TemporalSpec{Period: time.Second}
			for i := 0; i < perG; i++ {
				id := uint32(1 + rng.Intn(idSpace))
				now := sim.Time(rng.Int63n(int64(time.Minute)))
				switch rng.Intn(4) {
				case 0:
					_ = e.RegisterTemporalE(id, 5, geom.Pt(50, 50), spec, now)
				case 1:
					e.Deregister(id)
				case 2:
					e.EvaluateDue(id, now)
				case 3:
					for _, de := range e.PopDue(now, nil) {
						// Re-arm popped queries as a clock driver would.
						e.EvaluateDue(de.ID, de.Due)
					}
				}
			}
		}(g)
	}
	wg.Wait()

	// Quiesce: every live temporal query must hold exactly one schedule
	// entry, at its NextDue.
	live := 0
	for id := uint32(1); id <= idSpace; id++ {
		if _, _, ok := e.NextDue(id); ok {
			live++
		}
	}
	if n := e.sched.Len(); n != live {
		t.Fatalf("schedule holds %d entries, %d queries live", n, live)
	}
	far := sim.Time(1000 * time.Hour)
	popped := e.PopDue(far, nil)
	if len(popped) != live {
		t.Fatalf("draining pop returned %d entries, %d queries live", len(popped), live)
	}
	for _, de := range popped {
		_, due, ok := e.NextDue(de.ID)
		if !ok || due != de.Due {
			t.Fatalf("entry %v disagrees with NextDue (%v, %v)", de, due, ok)
		}
	}
}

// TestScheduleStripedMatchesSingle is the striping property test: over 10k
// randomized upsert/remove/pop interleavings, every striped layout must
// produce element-wise identical PopDue output (and identical Len) to the
// single-stripe baseline. This is the determinism argument the service's
// digest pins rest on — stripe count is a pure concurrency knob.
func TestScheduleStripedMatchesSingle(t *testing.T) {
	if got := NewScheduleStriped(3).StripeCount(); got != 4 {
		t.Fatalf("StripeCount(3 requested) = %d, want rounded up to 4", got)
	}
	if got := NewScheduleStriped(1000).StripeCount(); got != maxScheduleStripes {
		t.Fatalf("StripeCount(1000 requested) = %d, want clamp %d", got, maxScheduleStripes)
	}
	rng := rand.New(rand.NewSource(11))
	single := NewSchedule()
	striped := []*Schedule{NewScheduleStriped(4), NewScheduleStriped(16), NewScheduleStriped(64)}
	all := append([]*Schedule{single}, striped...)

	const idSpace = 512
	now := sim.Time(0)
	var want, got []DueEntry
	for op := 0; op < 10_000; op++ {
		switch rng.Intn(5) {
		case 0, 1:
			id := uint32(1 + rng.Intn(idSpace))
			due := now + sim.Time(rng.Int63n(int64(10*time.Second)))
			for _, s := range all {
				s.Upsert(id, due)
			}
		case 2:
			id := uint32(1 + rng.Intn(idSpace))
			for _, s := range all {
				s.Remove(id)
			}
		default:
			now += sim.Time(rng.Int63n(int64(3 * time.Second)))
			want = single.PopDue(now, want[:0])
			for _, s := range striped {
				got = s.PopDue(now, got[:0])
				if len(got) != len(want) {
					t.Fatalf("op %d: %d stripes popped %d entries, single-heap popped %d",
						op, s.StripeCount(), len(got), len(want))
				}
				for i := range want {
					if got[i] != want[i] {
						t.Fatalf("op %d: %d stripes popped %v at %d, single-heap %v",
							op, s.StripeCount(), got[i], i, want[i])
					}
				}
				if len(want) > 0 {
					st := s.Stats()
					if st.LastMergeDepth < 1 || st.LastMergeDepth > s.StripeCount() {
						t.Fatalf("op %d: merge depth %d outside [1, %d]", op, st.LastMergeDepth, s.StripeCount())
					}
				}
			}
		}
		if op%1000 == 0 {
			for _, s := range striped {
				if s.Len() != single.Len() {
					t.Fatalf("op %d: %d stripes hold %d entries, single-heap %d",
						op, s.StripeCount(), s.Len(), single.Len())
				}
			}
		}
	}
	// Final drain: whatever is left must come out identically too.
	far := sim.Time(1000 * time.Hour)
	want = single.PopDue(far, want[:0])
	for _, s := range striped {
		got = s.PopDue(far, got[:0])
		if len(got) != len(want) {
			t.Fatalf("final drain: %d stripes popped %d, single-heap %d", s.StripeCount(), len(got), len(want))
		}
		for i := range want {
			if got[i] != want[i] {
				t.Fatalf("final drain: entry %d = %v, single-heap %v", i, got[i], want[i])
			}
		}
	}
	if len(want) == 0 {
		t.Fatal("property test degenerated: nothing left to drain")
	}
}

// TestScheduleStripedConcurrentChurn hammers a striped schedule directly
// from many goroutines — upserts, removes, pops, peeks, and stats on
// overlapping id ranges spanning every stripe — then checks the quiesced
// invariants: a draining pop is sorted, duplicate-free, agrees with Stats,
// and empties the schedule. Under -race this is the scheduler's
// cross-stripe race test (the engine-level TestScheduleConcurrentChurn
// covers the registry integration).
func TestScheduleStripedConcurrentChurn(t *testing.T) {
	s := NewScheduleStriped(8)
	const (
		goroutines = 8
		perG       = 2000
		idSpace    = 256 // spans every stripe; overlap forces contention
	)
	var wg sync.WaitGroup
	for g := 0; g < goroutines; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			rng := rand.New(rand.NewSource(int64(100 + g)))
			var buf []DueEntry
			for i := 0; i < perG; i++ {
				id := uint32(1 + rng.Intn(idSpace))
				now := sim.Time(rng.Int63n(int64(time.Minute)))
				switch rng.Intn(6) {
				case 0, 1, 2:
					s.Upsert(id, now+sim.Time(rng.Int63n(int64(time.Second))))
				case 3:
					s.Remove(id)
				case 4:
					buf = s.PopDue(now, buf[:0])
					for _, de := range buf {
						// Re-arm popped entries as a clock driver would.
						s.Upsert(de.ID, de.Due+sim.Time(time.Second))
					}
				case 5:
					s.NextDue()
					s.Stats()
				}
			}
		}(g)
	}
	wg.Wait()

	st := s.Stats()
	if st.Len != s.Len() {
		t.Fatalf("Stats().Len = %d, Len() = %d", st.Len, s.Len())
	}
	sum := 0
	for _, n := range st.StripeLens {
		sum += n
	}
	if sum != st.Len {
		t.Fatalf("stripe lens sum to %d, Len is %d", sum, st.Len)
	}
	popped := s.PopDue(sim.Time(1000*time.Hour), nil)
	if len(popped) != st.Len {
		t.Fatalf("draining pop returned %d entries, schedule held %d", len(popped), st.Len)
	}
	seen := make(map[uint32]bool, len(popped))
	for i, de := range popped {
		if i > 0 && !dueLess(popped[i-1], de) {
			t.Fatalf("drain order violated at %d: %v then %v", i, popped[i-1], de)
		}
		if seen[de.ID] {
			t.Fatalf("id %d popped twice", de.ID)
		}
		seen[de.ID] = true
	}
	if n := s.Len(); n != 0 {
		t.Fatalf("schedule holds %d entries after full drain", n)
	}
}

// BenchmarkSchedulePopIdle measures the idle-tick cost with 100k queries
// scheduled and nothing due: the peek that makes Advance O(1).
func BenchmarkSchedulePopIdle(b *testing.B) {
	s := NewSchedule()
	for id := uint32(1); id <= 100_000; id++ {
		s.Upsert(id, time.Hour+sim.Time(id))
	}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if got := s.PopDue(time.Minute, nil); len(got) != 0 {
			b.Fatal("nothing should be due")
		}
	}
}

// BenchmarkScheduleScanBaseline is the pre-scheduler idle tick over the
// same population: a brute-force scan of every query's next due. This is
// what each Advance cost before the schedule existed.
func BenchmarkScheduleScanBaseline(b *testing.B) {
	next := make(map[uint32]sim.Time, 100_000)
	for id := uint32(1); id <= 100_000; id++ {
		next[id] = time.Hour + sim.Time(id)
	}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		n := 0
		for _, due := range next {
			if due <= time.Minute {
				n++
			}
		}
		if n != 0 {
			b.Fatal("nothing should be due")
		}
	}
}

// BenchmarkScheduleContended measures the striping payoff under parallel
// load: GOMAXPROCS goroutines hammer Upsert (the re-arm pattern of parallel
// EvaluateDue workers) with a PopDue-and-re-arm cycle mixed in, over 100k
// and 1M resident entries at stripe counts 1, 4, and 16. On one core the
// stripe counts tie (the mutex is never contended); the spread between
// stripes=1 and stripes=16 on a multicore box is the serialization the
// striped scheduler removes.
func BenchmarkScheduleContended(b *testing.B) {
	for _, entries := range []int{100_000, 1_000_000} {
		for _, stripes := range []int{1, 4, 16} {
			b.Run(fmt.Sprintf("entries=%d/stripes=%d", entries, stripes), func(b *testing.B) {
				s := NewScheduleStriped(stripes)
				if s.StripeCount() != stripes {
					b.Fatalf("stripe count %d, want %d", s.StripeCount(), stripes)
				}
				// Entry id hashing spreads ids across stripes; dues start
				// one hour out so the population stays resident.
				base := sim.Time(time.Hour)
				for id := 1; id <= entries; id++ {
					s.Upsert(uint32(id), base+sim.Time(id))
				}
				var ctr atomic.Int64
				b.ReportAllocs()
				b.ResetTimer()
				b.RunParallel(func(pb *testing.PB) {
					var buf []DueEntry
					for pb.Next() {
						i := ctr.Add(1)
						// Re-arm a pseudo-random resident entry further out.
						id := uint32(1 + (uint64(i)*2654435761)%uint64(entries))
						s.Upsert(id, base+sim.Time(i)+sim.Time(entries))
						if i%1024 == 0 {
							// A popper sweeps anything the re-arms left due
							// and re-arms it, like an Advance batch would.
							buf = s.PopDue(base+sim.Time(i), buf[:0])
							for _, de := range buf {
								s.Upsert(de.ID, de.Due+sim.Time(entries))
							}
						}
					}
				})
			})
		}
	}
}

// BenchmarkScheduleCycle measures the steady-state per-query cost of the
// heap itself: pop one due entry and re-arm it one period later, 100k
// queries resident. This is the O(log n) bound the 4-ary layout was
// picked to minimize; swap arity to compare layouts.
func BenchmarkScheduleCycle(b *testing.B) {
	s := NewSchedule()
	const n = 100_000
	period := sim.Time(n) // ids 1..n due at 1..n: one due per tick
	for id := uint32(1); id <= n; id++ {
		s.Upsert(id, sim.Time(id))
	}
	var buf []DueEntry
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		now := sim.Time(i + 1)
		buf = s.PopDue(now, buf[:0])
		for _, de := range buf {
			s.Upsert(de.ID, de.Due+period)
		}
	}
}

// TestScheduleStatsInto pins the allocation-reusing snapshot: it matches
// Stats exactly, reuses the caller's StripeLens capacity, and a warm call
// allocates nothing.
func TestScheduleStatsInto(t *testing.T) {
	s := NewScheduleStriped(8)
	for id := uint32(1); id <= 100; id++ {
		s.Upsert(id, sim.Time(id)*time.Millisecond)
	}
	s.PopDue(20*time.Millisecond, nil)

	var into ScheduleStats
	s.StatsInto(&into)
	direct := s.Stats()
	if into.Stripes != direct.Stripes || into.Len != direct.Len ||
		into.LastMergeDepth != direct.LastMergeDepth ||
		len(into.StripeLens) != len(direct.StripeLens) {
		t.Fatalf("StatsInto = %+v, Stats = %+v", into, direct)
	}
	for i := range into.StripeLens {
		if into.StripeLens[i] != direct.StripeLens[i] {
			t.Fatalf("stripe %d: StatsInto %d != Stats %d", i, into.StripeLens[i], direct.StripeLens[i])
		}
	}
	if into.LastMergeDepth != s.LastMergeDepth() {
		t.Fatalf("LastMergeDepth accessor %d != snapshot %d", s.LastMergeDepth(), into.LastMergeDepth)
	}
	before := &into.StripeLens[0]
	if allocs := testing.AllocsPerRun(100, func() { s.StatsInto(&into) }); allocs != 0 {
		t.Fatalf("warm StatsInto allocates %v per run", allocs)
	}
	if &into.StripeLens[0] != before {
		t.Fatalf("warm StatsInto replaced the StripeLens backing array")
	}
}
