package core

import (
	"math/rand"
	"sync"
	"testing"
	"time"

	"mobiquery/internal/field"
	"mobiquery/internal/geom"
	"mobiquery/internal/radio"
	"mobiquery/internal/sim"
)

// TestEngineChurnUnderRace hammers the engine with every mutating operation
// at once — registration, deregistration, re-registration of freed ids,
// waypoint updates, node churn, full sweeps, and streaming evaluations —
// and is meaningful mainly under `go test -race`. It pins the service-shaped
// contract: users may join and leave while evaluation is in flight.
func TestEngineChurnUnderRace(t *testing.T) {
	region := geom.Square(1000)
	e := NewQueryEngine(region, 100, field.Uniform{Value: 20}, EngineConfig{Shards: 8, Workers: 8})
	rng := rand.New(rand.NewSource(1))
	for i := 0; i < 200; i++ {
		e.UpsertNode(radio.NodeID(i), region.UniformPoint(rng))
	}

	const (
		stable   = 24 // queries that live for the whole test
		churners = 8  // goroutines cycling their own id through reg/dereg
		loops    = 60
	)
	for u := 1; u <= stable; u++ {
		if u%2 == 0 {
			e.Register(uint32(u), 150, geom.Pt(float64(u*10), 500))
			continue
		}
		spec := TemporalSpec{Period: time.Second, Deadline: 50 * time.Millisecond, Fresh: time.Second}
		if err := e.RegisterTemporalE(uint32(u), 150, geom.Pt(float64(u*10), 500), spec, 0); err != nil {
			t.Fatal(err)
		}
	}

	var wg sync.WaitGroup
	// Churners: deregister and immediately re-register the same id, so a
	// sweep in flight keeps meeting queries that appear and disappear.
	for c := 0; c < churners; c++ {
		wg.Add(1)
		go func(c int) {
			defer wg.Done()
			id := uint32(1000 + c)
			rng := rand.New(rand.NewSource(int64(c)))
			for i := 0; i < loops; i++ {
				if err := e.RegisterE(id, 150, region.UniformPoint(rng)); err != nil {
					t.Errorf("churner %d: re-register of freed id: %v", c, err)
					return
				}
				e.UpdateWaypoint(id, region.UniformPoint(rng))
				_, _ = e.Evaluate(id, 0)
				e.Deregister(id)
			}
		}(c)
	}
	// Waypoint writers over the stable population.
	for w := 0; w < 4; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			rng := rand.New(rand.NewSource(int64(100 + w)))
			for i := 0; i < loops; i++ {
				e.UpdateWaypoint(uint32(rng.Intn(stable)+1), region.UniformPoint(rng))
			}
		}(w)
	}
	// Full sweeps racing the churn.
	wg.Add(1)
	go func() {
		defer wg.Done()
		for i := 0; i < loops/2; i++ {
			if res := e.EvaluateAll(sim.Time(i) * time.Second); len(res) < stable {
				t.Errorf("sweep %d returned %d results, below the stable population %d", i, len(res), stable)
				return
			}
		}
	}()
	// Streaming evaluations of the temporal queries, two goroutines per
	// query id so EvaluateDue's period counter is contested.
	for g := 0; g < 2; g++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := 1; i <= loops; i++ {
				for u := 1; u <= stable; u += 2 {
					_, _ = e.EvaluateDue(uint32(u), sim.Time(i)*time.Second)
				}
			}
		}()
	}
	// Node churn under the evaluations.
	wg.Add(1)
	go func() {
		defer wg.Done()
		rng := rand.New(rand.NewSource(7))
		for i := 0; i < loops*4; i++ {
			e.UpsertNode(radio.NodeID(i%200), region.UniformPoint(rng))
			if i%9 == 0 {
				e.RemoveNode(radio.NodeID(rng.Intn(200)))
			}
		}
	}()
	wg.Wait()

	if n := e.QueryCount(); n != stable {
		t.Fatalf("QueryCount after churn = %d, want %d", n, stable)
	}
	// Each temporal query was offered period indices 1..loops by two racing
	// goroutines; EvaluateDue must have advanced each exactly once per due
	// period, never double-counting.
	for u := 1; u <= stable; u += 2 {
		st, ok := e.Stats(uint32(u))
		if !ok {
			t.Fatalf("temporal query %d lost its state", u)
		}
		if st.Evaluated != loops || st.NextK != loops+1 {
			t.Errorf("query %d: evaluated %d periods (next %d), want %d", u, st.Evaluated, st.NextK, loops)
		}
	}
}
