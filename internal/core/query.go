// Package core implements the MobiQuery spatiotemporal query service: the
// query gateway on the mobile proxy, per-node protocol agents (prefetching,
// query dissemination, data collection with in-network aggregation), the
// just-in-time and greedy prefetching schemes, and the No-Prefetching
// baseline from the paper's evaluation.
package core

import (
	"fmt"
	"math"
	"time"

	"mobiquery/internal/radio"
	"mobiquery/internal/sim"
)

// AggKind selects the in-network aggregation function F of a query.
type AggKind uint8

// Supported aggregation functions.
const (
	AggCount AggKind = iota + 1
	AggSum
	AggMin
	AggMax
	AggAvg
)

// String returns the aggregation function name.
func (a AggKind) String() string {
	switch a {
	case AggCount:
		return "count"
	case AggSum:
		return "sum"
	case AggMin:
		return "min"
	case AggMax:
		return "max"
	case AggAvg:
		return "avg"
	default:
		return fmt.Sprintf("AggKind(%d)", int(a))
	}
}

// Valid reports whether a is a known aggregation function.
func (a AggKind) Valid() bool { return a >= AggCount && a <= AggAvg }

// QuerySpec is the user-facing specification of a spatiotemporal query,
// mirroring the paper's tuple (alpha, F, A(Pu(t)), Tperiod, Tfresh, Td).
// The sensor type alpha is implicit in the field being sampled.
type QuerySpec struct {
	// Agg is the aggregation function F.
	Agg AggKind
	// Radius is Rq: the query area is a circle of this radius centered on
	// the user (paper: 150 m).
	Radius float64
	// Period is Tperiod: a new result is due every Period (paper: 2 s).
	Period time.Duration
	// Fresh is Tfresh: readings older than this at the deadline are
	// unacceptable (paper: 1 s).
	Fresh time.Duration
	// Lifetime is Td: the query session duration.
	Lifetime time.Duration
}

// Validate reports specification errors, including the paper's feasibility
// assumption Tfresh <= Tperiod.
func (s QuerySpec) Validate() error {
	switch {
	case !s.Agg.Valid():
		return fmt.Errorf("core: invalid aggregation %v", s.Agg)
	case s.Radius <= 0:
		return fmt.Errorf("core: query radius %v must be positive", s.Radius)
	case s.Period <= 0:
		return fmt.Errorf("core: query period %v must be positive", s.Period)
	case s.Fresh <= 0:
		return fmt.Errorf("core: freshness bound %v must be positive", s.Fresh)
	case s.Fresh > s.Period:
		return fmt.Errorf("core: freshness %v must not exceed period %v", s.Fresh, s.Period)
	case s.Lifetime < s.Period:
		return fmt.Errorf("core: lifetime %v shorter than one period %v", s.Lifetime, s.Period)
	}
	return nil
}

// Periods returns the number of query periods in the session.
func (s QuerySpec) Periods() int { return int(s.Lifetime / s.Period) }

// Deadline returns the absolute deadline of the kth result (1-based) for a
// query issued at t0.
func (s QuerySpec) Deadline(t0 sim.Time, k int) sim.Time {
	return t0 + sim.Time(k)*s.Period
}

// Partial is a decomposable partial aggregate carried up the query tree.
// Count/Sum/Min/Max support every AggKind in one fixed-size record, the
// standard TAG construction. Contribs lists the contributing sensor nodes;
// it is bookkeeping for fidelity evaluation and does not count toward the
// on-air packet size (a real deployment would not transmit it).
type Partial struct {
	Count    int
	Sum      float64
	Min      float64
	Max      float64
	Contribs []radio.NodeID
}

// NewPartial returns an empty partial aggregate.
func NewPartial() Partial {
	return Partial{Min: math.Inf(1), Max: math.Inf(-1)}
}

// AddReading folds one sensor reading from node id into p.
func (p *Partial) AddReading(id radio.NodeID, v float64) {
	p.Count++
	p.Sum += v
	if v < p.Min {
		p.Min = v
	}
	if v > p.Max {
		p.Max = v
	}
	p.Contribs = append(p.Contribs, id)
}

// Merge folds another partial aggregate into p.
func (p *Partial) Merge(q Partial) {
	p.Count += q.Count
	p.Sum += q.Sum
	if q.Min < p.Min {
		p.Min = q.Min
	}
	if q.Max > p.Max {
		p.Max = q.Max
	}
	p.Contribs = append(p.Contribs, q.Contribs...)
}

// Value evaluates the aggregate under the given function. Min/Max/Avg of an
// empty partial return NaN.
func (p Partial) Value(a AggKind) float64 {
	switch a {
	case AggCount:
		return float64(p.Count)
	case AggSum:
		return p.Sum
	case AggMin:
		if p.Count == 0 {
			return math.NaN()
		}
		return p.Min
	case AggMax:
		if p.Count == 0 {
			return math.NaN()
		}
		return p.Max
	case AggAvg:
		if p.Count == 0 {
			return math.NaN()
		}
		return p.Sum / float64(p.Count)
	default:
		return math.NaN()
	}
}
