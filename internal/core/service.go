package core

import (
	"fmt"
	"sort"
	"time"

	"mobiquery/internal/field"
	"mobiquery/internal/mac"
	"mobiquery/internal/mobility"
	"mobiquery/internal/netstack"
	"mobiquery/internal/radio"
	"mobiquery/internal/sim"
)

// Scheme selects the prefetching strategy.
type Scheme int

const (
	// SchemeJIT is just-in-time prefetching: each collector holds the
	// prefetch message until the equation (10) bound.
	SchemeJIT Scheme = iota + 1
	// SchemeGP is greedy prefetching: forward immediately.
	SchemeGP
	// SchemeNP is the No-Prefetching baseline: the user floods the query at
	// each period start.
	SchemeNP
)

// String returns the scheme's evaluation label (MQ-JIT, MQ-GP, NP).
func (s Scheme) String() string {
	switch s {
	case SchemeJIT:
		return "MQ-JIT"
	case SchemeGP:
		return "MQ-GP"
	case SchemeNP:
		return "NP"
	default:
		return fmt.Sprintf("Scheme(%d)", int(s))
	}
}

// Config parameterizes a MobiQuery service instance.
type Config struct {
	// QueryID labels the single query session of this service.
	QueryID uint32
	// Spec is the spatiotemporal query specification.
	Spec QuerySpec
	// Scheme selects JIT, GP, or NP.
	Scheme Scheme
	// T0 is the query issue time. A small offset (default 500 ms)
	// de-synchronizes the query from the PSM schedule, as in a real
	// deployment.
	T0 sim.Time
	// PickupRadius is Rp: anycast delivery radius around pickup points.
	PickupRadius float64
	// ScopeMargin extends the setup flood past Rq so boundary leaves have a
	// recruiting router (default Rc/2).
	ScopeMargin float64
	// ForwardLead is a safety margin subtracted from the equation (10)
	// just-in-time hold bound. It keeps prefetch forwarding (and the tree
	// setup it triggers) clear of the collection burst at deadline-Tfresh.
	ForwardLead time.Duration
	// CollectorMargin is how long before the deadline the collector
	// dispatches the result to the user.
	CollectorMargin time.Duration
	// FlushMargin is the minimum gap between a node's sample time and its
	// sub-deadline flush.
	FlushMargin time.Duration
	// RecruitLead is the minimum time before a tree's sample instant for a
	// recruit entry to still be worth broadcasting.
	RecruitLead time.Duration
	// LeafAwake is how long a recruited leaf stays awake past its sample
	// time to deliver the report.
	LeafAwake time.Duration
	// TeardownGrace is how long after its deadline a tree's state persists.
	TeardownGrace time.Duration
	// MoveTick is the proxy position update granularity.
	MoveTick time.Duration
	// Engine sizes the concurrent multi-user query engine (spatial shards
	// and dispatch workers). Zero values select sane defaults.
	Engine EngineConfig
}

// DefaultConfig returns the configuration used throughout the paper's
// evaluation for the given query spec.
func DefaultConfig(spec QuerySpec) Config {
	return Config{
		QueryID:         1,
		Spec:            spec,
		Scheme:          SchemeJIT,
		T0:              500 * time.Millisecond,
		ForwardLead:     250 * time.Millisecond,
		PickupRadius:    40,
		ScopeMargin:     52.5, // Rc/2 with the default 105 m range
		CollectorMargin: 30 * time.Millisecond,
		FlushMargin:     150 * time.Millisecond,
		RecruitLead:     20 * time.Millisecond,
		LeafAwake:       250 * time.Millisecond,
		TeardownGrace:   time.Second,
		MoveTick:        100 * time.Millisecond,
	}
}

// Validate reports configuration errors.
func (c Config) Validate() error {
	if err := c.Spec.Validate(); err != nil {
		return err
	}
	switch {
	case c.Scheme < SchemeJIT || c.Scheme > SchemeNP:
		return fmt.Errorf("core: invalid scheme %d", int(c.Scheme))
	case c.PickupRadius <= 0:
		return fmt.Errorf("core: pickup radius must be positive")
	case c.ScopeMargin < 0:
		return fmt.Errorf("core: scope margin must be non-negative")
	case c.CollectorMargin <= 0 || c.CollectorMargin >= c.Spec.Fresh:
		return fmt.Errorf("core: collector margin %v must be within (0, Tfresh)", c.CollectorMargin)
	case c.FlushMargin <= c.CollectorMargin:
		return fmt.Errorf("core: flush margin %v must exceed collector margin %v", c.FlushMargin, c.CollectorMargin)
	case c.LeafAwake <= 0 || c.TeardownGrace <= 0 || c.MoveTick <= 0 || c.RecruitLead < 0:
		return fmt.Errorf("core: durations must be positive")
	case c.ForwardLead < 0:
		return fmt.Errorf("core: forward lead must be non-negative")
	}
	return c.Engine.Validate()
}

// Hooks receive protocol events for metrics collection. Any field may be
// nil.
type Hooks struct {
	// OnTreeUp fires when a node instantiates query-tree state for period k.
	OnTreeUp func(node radio.NodeID, k int, at sim.Time)
	// OnTreeDown fires when that state is released.
	OnTreeDown func(node radio.NodeID, k int, at sim.Time)
	// OnPrefetchForward fires when a prefetch message is forwarded from the
	// collector of period fromK toward period toK's pickup point.
	OnPrefetchForward func(fromK, toK int, at sim.Time)
}

// hookSet wraps Hooks with nil-safety.
type hookSet struct{ h Hooks }

func (hs hookSet) onTreeUp(n radio.NodeID, k int, at sim.Time) {
	if hs.h.OnTreeUp != nil {
		hs.h.OnTreeUp(n, k, at)
	}
}

func (hs hookSet) onTreeDown(n radio.NodeID, k int, at sim.Time) {
	if hs.h.OnTreeDown != nil {
		hs.h.OnTreeDown(n, k, at)
	}
}

func (hs hookSet) onPrefetchForward(fromK, toK int, at sim.Time) {
	if hs.h.OnPrefetchForward != nil {
		hs.h.OnPrefetchForward(fromK, toK, at)
	}
}

// Debug counters for protocol diagnosis (aggregated across agents).
type DebugCounters struct {
	RecruitBcasts    uint64
	LeafJoins        uint64
	LeafReports      uint64
	LeafReportFails  uint64
	MemberFlushes    uint64
	MemberFlushFails uint64
	ReportsMerged    uint64
	ReportsLate      uint64 // arrived after the parent flushed
	ReportsNoTree    uint64 // arrived at a node without matching tree state
	ReportFallbacks  uint64 // reports rerouted geographically after link failure
}

// Service wires MobiQuery agents onto every node of a network plus one
// query gateway per mobile user. The single-user constructor New covers the
// paper's evaluation; AddUser supports multiple concurrent users, each with
// their own query, scheme and motion profiles.
type Service struct {
	eng      *sim.Engine
	nw       *netstack.Network
	cfg      Config
	macCfg   mac.Config
	field    field.Field
	agents   map[radio.NodeID]*agent
	gateways map[uint32]*Gateway
	proxies  map[uint32]*netstack.Node
	engine   *QueryEngine
	hooks    hookSet
	started  bool
	debug    DebugCounters
}

// Debug returns protocol diagnosis counters accumulated during the run.
func (s *Service) Debug() DebugCounters { return s.debug }

// New builds a MobiQuery service over an un-started network with a single
// mobile user. proxyID must identify a node previously added with AddProxy;
// every other node gets a sensor agent. Call Start after
// netstack.Network.Start.
func New(nw *netstack.Network, cfg Config, fld field.Field, course mobility.Course, profiler mobility.Profiler, proxyID radio.NodeID, hooks Hooks) *Service {
	s := NewService(nw, cfg, fld, hooks)
	s.AddUser(cfg.QueryID, cfg.Scheme, cfg.Spec, course, profiler, proxyID)
	return s
}

// NewService builds a service with no users yet; cfg supplies the shared
// protocol constants (margins, pickup radius, T0) and defaults for
// AddUser. Register users with AddUser before Start.
func NewService(nw *netstack.Network, cfg Config, fld field.Field, hooks Hooks) *Service {
	if err := cfg.Validate(); err != nil {
		panic(err)
	}
	s := &Service{
		eng:      nw.Engine(),
		nw:       nw,
		cfg:      cfg,
		macCfg:   nw.MACConfig(),
		field:    fld,
		agents:   make(map[radio.NodeID]*agent),
		gateways: make(map[uint32]*Gateway),
		proxies:  make(map[uint32]*netstack.Node),
		hooks:    hookSet{h: hooks},
	}
	for _, id := range nw.NodeIDs() {
		s.agents[id] = newAgent(s, nw.Node(id), true)
	}
	return s
}

// AddUser registers a mobile user: a proxy node (added to the network with
// AddProxy before NewService) issuing one query with the given scheme and
// spec, following course with motion profiles from profiler. QueryIDs must
// be unique. Must be called before Start.
func (s *Service) AddUser(queryID uint32, scheme Scheme, spec QuerySpec, course mobility.Course, profiler mobility.Profiler, proxyID radio.NodeID) *Gateway {
	if s.started {
		panic("core: AddUser after Start")
	}
	if err := spec.Validate(); err != nil {
		panic(err)
	}
	if _, dup := s.gateways[queryID]; dup {
		panic(fmt.Sprintf("core: duplicate query id %d", queryID))
	}
	proxy := s.nw.Node(proxyID)
	if proxy == nil {
		panic(fmt.Sprintf("core: proxy node %d not found", proxyID))
	}
	ag := s.agents[proxyID]
	if ag == nil {
		panic(fmt.Sprintf("core: proxy %d has no agent (added after NewService?)", proxyID))
	}
	ag.isSensor = false
	g := newGateway(s, queryID, scheme, spec, course, profiler, proxy)
	s.gateways[queryID] = g
	s.proxies[queryID] = proxy
	ag.resultSinks[queryID] = g.recordResult
	if len(ag.resultSinks) == 1 {
		proxy.Handle(portResult, func(_ radio.NodeID, body any) {
			if msg, ok := body.(resultMsg); ok {
				if sink := ag.resultSinks[msg.QueryID]; sink != nil {
					sink(msg)
				}
			}
		})
	}
	return g
}

// Start launches every registered query session. Must be called after the
// network's Start, at simulation time zero.
//
// Start also stands up the service's concurrent query engine: sensor-node
// indexing and per-user query registration are independent, so both are
// dispatched through the engine's worker pool rather than a serial loop.
// The per-gateway protocol kickoff stays serial in ascending query-id
// order — it schedules events into the shared discrete-event engine, whose
// determinism depends on scheduling order.
func (s *Service) Start() {
	if s.started {
		panic("core: Service started twice")
	}
	if len(s.gateways) == 0 {
		panic("core: Start with no users registered")
	}
	s.started = true

	s.engine = NewQueryEngine(s.nw.Region(), s.nw.Medium().Params().Range, s.field, s.cfg.Engine)
	sensors := make([]radio.NodeID, 0, len(s.agents))
	for id, ag := range s.agents {
		if ag.isSensor {
			sensors = append(sensors, id)
		}
	}
	sort.Slice(sensors, func(i, j int) bool { return sensors[i] < sensors[j] })
	s.engine.Dispatch(len(sensors), func(i int) {
		s.engine.UpsertNode(sensors[i], s.nw.Node(sensors[i]).Pos())
	})

	ids := make([]uint32, 0, len(s.gateways))
	for qid := range s.gateways {
		ids = append(ids, qid)
	}
	sort.Slice(ids, func(i, j int) bool { return ids[i] < ids[j] })
	s.engine.Dispatch(len(ids), func(i int) {
		g := s.gateways[ids[i]]
		s.engine.Register(g.qid, g.spec.Radius, g.proxy.Pos())
	})
	for _, qid := range ids {
		s.gateways[qid].start()
	}
}

// Engine returns the concurrent query engine. Nil before Start.
func (s *Service) Engine() *QueryEngine { return s.engine }

// EvaluateAreas returns the instantaneous area evaluation of every
// registered user at the current virtual time, fanned across the engine's
// worker pool: the oracle view of "which sensors should answer each user
// right now", in ascending query-id order.
func (s *Service) EvaluateAreas() []AreaResult {
	return s.engine.EvaluateAll(s.eng.Now())
}

// Results returns the per-period outcomes of the sole user (panics with
// several users; use ResultsFor).
func (s *Service) Results() []PeriodResult {
	if len(s.gateways) != 1 {
		panic("core: Results with multiple users; use ResultsFor")
	}
	for _, g := range s.gateways {
		return g.Results()
	}
	return nil
}

// ResultsFor returns the per-period outcomes of one user's query.
func (s *Service) ResultsFor(queryID uint32) []PeriodResult {
	g := s.gateways[queryID]
	if g == nil {
		return nil
	}
	return g.Results()
}

// LiveTrees returns how many query trees node id currently stores.
func (s *Service) LiveTrees(id radio.NodeID) int {
	ag := s.agents[id]
	if ag == nil {
		return 0
	}
	return ag.liveTrees()
}

// Config returns the service configuration.
func (s *Service) Config() Config { return s.cfg }

// sleepPeriod exposes the PSM sleep period for the equation (10) hold rule.
func (s *Service) sleepPeriod() time.Duration { return s.macCfg.SleepPeriod }
