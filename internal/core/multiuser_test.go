package core

import (
	"testing"
	"time"

	"mobiquery/internal/field"
	"mobiquery/internal/geom"
	"mobiquery/internal/mac"
	"mobiquery/internal/mobility"
	"mobiquery/internal/netstack"
	"mobiquery/internal/radio"
	"mobiquery/internal/sim"
)

// buildMultiRig assembles the grid network with two proxies whose queries
// run concurrently.
func buildMultiRig(t *testing.T) (*sim.Engine, *Service) {
	t.Helper()
	eng := sim.NewEngine(11)
	nw := netstack.NewNetwork(eng, geom.Square(450), radio.DefaultParams(), mac.DefaultConfig(3*time.Second))
	id := radio.NodeID(0)
	for y := 60.0; y <= 380; y += 80 {
		for x := 60.0; x <= 380; x += 80 {
			nw.AddNode(id, geom.Pt(x, y), mac.RoleAlwaysOn)
			id++
		}
	}
	for y := 100.0; y <= 340; y += 80 {
		for x := 100.0; x <= 340; x += 80 {
			nw.AddNode(id, geom.Pt(x, y), mac.RoleDutyCycled)
			id++
		}
	}
	courseA := mobility.Course{Trajectory: mobility.LinearPath(geom.Pt(100, 150), geom.V(4, 0), 0, 40*time.Second)}
	courseB := mobility.Course{Trajectory: mobility.LinearPath(geom.Pt(340, 300), geom.V(-4, 0), 0, 40*time.Second)}
	proxyA := id
	nw.AddProxy(proxyA, courseA.PosAt(0))
	proxyB := proxyA + 1
	nw.AddProxy(proxyB, courseB.PosAt(0))

	spec := validSpec()
	spec.Lifetime = 30 * time.Second
	cfg := DefaultConfig(spec)
	svc := NewService(nw, cfg, field.Uniform{Value: 20}, Hooks{})
	svc.AddUser(1, SchemeJIT, spec, courseA, mobility.OracleProfiler{Course: courseA}, proxyA)
	svc.AddUser(2, SchemeJIT, spec, courseB, mobility.OracleProfiler{Course: courseB}, proxyB)
	nw.Start()
	svc.Start()
	return eng, svc
}

// TestTwoConcurrentUsers runs two users with crossing paths: both must
// receive on-time results, and their result streams must stay separated by
// query id.
func TestTwoConcurrentUsers(t *testing.T) {
	eng, svc := buildMultiRig(t)
	eng.Run(36 * time.Second)

	for _, qid := range []uint32{1, 2} {
		results := svc.ResultsFor(qid)
		if len(results) != 15 {
			t.Fatalf("query %d: %d results, want 15", qid, len(results))
		}
		good := 0
		for _, pr := range results {
			if pr.Received && pr.OnTime && pr.Data.Count > 0 {
				good++
			}
		}
		if good < 12 {
			t.Errorf("query %d: only %d/15 on-time periods under concurrency", qid, good)
		}
	}
	if svc.ResultsFor(99) != nil {
		t.Error("unknown query id should yield nil")
	}
}

func TestResultsPanicsWithMultipleUsers(t *testing.T) {
	_, svc := buildMultiRig(t)
	defer func() {
		if recover() == nil {
			t.Error("Results with two users should panic")
		}
	}()
	svc.Results()
}

func TestAddUserValidation(t *testing.T) {
	eng := sim.NewEngine(1)
	nw := netstack.NewNetwork(eng, geom.Square(450), radio.DefaultParams(), mac.DefaultConfig(3*time.Second))
	nw.AddNode(0, geom.Pt(10, 10), mac.RoleAlwaysOn)
	nw.AddProxy(1, geom.Pt(20, 20))
	course := stationaryCourse(geom.Pt(100, 100))
	spec := validSpec()
	svc := NewService(nw, DefaultConfig(spec), field.Uniform{}, Hooks{})
	svc.AddUser(1, SchemeJIT, spec, course, mobility.OracleProfiler{Course: course}, 1)

	mustPanic := func(name string, f func()) {
		defer func() {
			if recover() == nil {
				t.Errorf("%s should panic", name)
			}
		}()
		f()
	}
	mustPanic("duplicate query id", func() {
		svc.AddUser(1, SchemeJIT, spec, course, mobility.OracleProfiler{Course: course}, 1)
	})
	mustPanic("unknown proxy", func() {
		svc.AddUser(2, SchemeJIT, spec, course, mobility.OracleProfiler{Course: course}, 42)
	})
	mustPanic("bad spec", func() {
		bad := spec
		bad.Radius = 0
		svc.AddUser(3, SchemeJIT, bad, course, mobility.OracleProfiler{Course: course}, 1)
	})
}

func TestStartWithoutUsersPanics(t *testing.T) {
	eng := sim.NewEngine(1)
	nw := netstack.NewNetwork(eng, geom.Square(450), radio.DefaultParams(), mac.DefaultConfig(3*time.Second))
	nw.AddNode(0, geom.Pt(10, 10), mac.RoleAlwaysOn)
	svc := NewService(nw, DefaultConfig(validSpec()), field.Uniform{}, Hooks{})
	nw.Start()
	defer func() {
		if recover() == nil {
			t.Error("Start without users should panic")
		}
	}()
	svc.Start()
}

// TestMixedSchemesPerUser runs a JIT user and an NP user side by side: the
// JIT user must clearly outperform the NP user in the same network.
func TestMixedSchemesPerUser(t *testing.T) {
	eng := sim.NewEngine(13)
	nw := netstack.NewNetwork(eng, geom.Square(450), radio.DefaultParams(), mac.DefaultConfig(9*time.Second))
	id := radio.NodeID(0)
	for y := 60.0; y <= 380; y += 80 {
		for x := 60.0; x <= 380; x += 80 {
			nw.AddNode(id, geom.Pt(x, y), mac.RoleAlwaysOn)
			id++
		}
	}
	for y := 100.0; y <= 340; y += 80 {
		for x := 100.0; x <= 340; x += 80 {
			nw.AddNode(id, geom.Pt(x, y), mac.RoleDutyCycled)
			id++
		}
	}
	courseA := mobility.Course{Trajectory: mobility.LinearPath(geom.Pt(100, 150), geom.V(4, 0), 0, 60*time.Second)}
	courseB := mobility.Course{Trajectory: mobility.LinearPath(geom.Pt(340, 300), geom.V(-4, 0), 0, 60*time.Second)}
	pa := id
	nw.AddProxy(pa, courseA.PosAt(0))
	pb := pa + 1
	nw.AddProxy(pb, courseB.PosAt(0))

	spec := validSpec()
	spec.Lifetime = 50 * time.Second
	svc := NewService(nw, DefaultConfig(spec), field.Uniform{Value: 20}, Hooks{})
	svc.AddUser(1, SchemeJIT, spec, courseA, mobility.OracleProfiler{Course: courseA}, pa)
	svc.AddUser(2, SchemeNP, spec, courseB, mobility.OracleProfiler{Course: courseB}, pb)
	nw.Start()
	svc.Start()
	eng.Run(56 * time.Second)

	count := func(qid uint32) int {
		full := 0
		for _, pr := range svc.ResultsFor(qid) {
			if pr.Received && pr.OnTime && pr.Data.Count >= 15 {
				full++
			}
		}
		return full
	}
	jit, np := count(1), count(2)
	if jit <= np {
		t.Errorf("JIT user (%d full periods) should beat NP user (%d) in the same network", jit, np)
	}
}
