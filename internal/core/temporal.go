package core

import (
	"fmt"
	"slices"
	"time"

	"mobiquery/internal/geom"
	"mobiquery/internal/radio"
	"mobiquery/internal/sim"
)

// Sampler reports when node id most recently refreshed its reading at or
// before virtual time at; ok is false when the node has not sampled yet.
// It models the duty-cycled sampling schedule of the sensor field: under
// PSM a node's reading is only as fresh as its last wake-up, which is what
// the paper's Tfresh window is measured against. A Sampler must be pure
// (same arguments, same answer) and safe for concurrent use.
type Sampler func(id int32, at sim.Time) (sim.Time, bool)

// AreaSampler is the per-query form of Sampler used by prefetch-planned
// queries: it additionally sees the node's position — so a plan can decide
// whether the node falls inside a predicted pickup area — and reports
// whether the reading it served came from the prefetch plan rather than
// the node sampling schedule. Like Sampler it must be pure and safe for
// concurrent use.
type AreaSampler func(id int32, pos geom.Point, at sim.Time) (t sim.Time, ok bool, prefetched bool)

// PrefetchPlan is what a temporal query consults about its prefetch state;
// internal/prefetch.Planner implements it. A nil plan (the default) keeps
// the on-demand behavior exactly.
type PrefetchPlan interface {
	// PeriodStatus returns the plan's view of the period due at `due`, as
	// one atomic snapshot (so a re-plan racing the evaluation cannot split
	// staging and warmup across two plans): ready is when the prefetched
	// answer was staged at the user's pickup point (meaningful only when
	// staged is true); warmup marks a covered period whose chain missed
	// its forward deadline, which the evaluation then serves on-demand.
	PeriodStatus(due sim.Time) (ready sim.Time, staged, warmup bool)
}

// CorridorWarmer is the spatial companion of PrefetchPlan: it holds
// pre-staged node snapshots along the user's predicted corridor;
// internal/corridor.Cache implements it. A nil warmer (the default) keeps
// the cold grid scan exactly.
type CorridorWarmer interface {
	// VisitStaged streams the staged nodes of the boundary due at `due`
	// that fall inside the actual query circle (center, radius), in
	// ascending id order, and reports true — or reports false without
	// calling fn when the boundary must be served by the cold radius scan
	// (nothing staged, the snapshot outdated by node churn, or the actual
	// position outside the staged corridor — a mispredict the warmer
	// records). A true return must enumerate exactly the nodes the cold
	// scan would: the engine serves the period from this buffer verbatim.
	VisitStaged(due sim.Time, center geom.Point, radius float64, fn func(id int32, pos geom.Point)) bool
}

// AggServe is an aggregate-index answer to one windowed evaluation: the
// whole-disk partial aggregate plus the accounting the cold scan would have
// produced. Data carries Count/Sum/Min/Max only — contributor ids are not
// enumerated (skipping that enumeration is the point of the index), so
// Data.Contribs is nil.
type AggServe struct {
	// Data is the fresh in-area aggregate (Contribs nil).
	Data Partial
	// AreaNodes counts every in-disk node; StaleNodes those excluded for
	// missing the freshness window — identical to the cold scan's counts.
	AreaNodes  int
	StaleNodes int
	// MaxStaleness is the age at the boundary of the oldest contributing
	// reading; Newest the timestamp of the newest one (meaningful only when
	// Data.Count > 0).
	MaxStaleness time.Duration
	Newest       sim.Time
}

// AggIndex is the aggregate-index hook of a temporal query:
// internal/pyramid.Pyramid implements it. ServeWindow answers the whole
// freshness-windowed disk aggregate at a period boundary from precomputed
// multiresolution tile partials, or reports ok=false when it cannot prove
// the answer equals the cold radius scan — no epoch ingested for this
// boundary, a freshness window it was not built under, or the node index
// mutated since ingest. A true return must account exactly the member set
// the cold scan would: same in-area nodes, same freshness decisions, same
// Count/Min/Max bit for bit (Sum is folded in the index's deterministic
// tile-major order, which differs from the cold scan's id-major order only
// by float-addition grouping). A nil index (the default) keeps the cold
// path exactly.
type AggIndex interface {
	ServeWindow(due sim.Time, center geom.Point, radius float64, fresh time.Duration) (AggServe, bool)
}

// TemporalSpec is the temporal contract of a streaming query: one result
// per Period, due Deadline after each period boundary, computed from
// readings no staler than Fresh at the boundary. It is the engine-level
// counterpart of the paper's (Tperiod, Td, Tfresh) triple for queries
// evaluated through the instantaneous engine rather than the radio stack.
type TemporalSpec struct {
	// Period is Tperiod: one result is due every Period.
	Period time.Duration
	// Deadline is the slack after a period boundary before the result
	// counts as late. Zero means strict: any evaluation after the boundary
	// is late.
	Deadline time.Duration
	// Fresh is Tfresh: readings older than this at the period boundary are
	// excluded from the result. Zero disables the window (any reading
	// qualifies, however old).
	Fresh time.Duration
	// Window is the number of consecutive period boundaries each result
	// aggregates over: every delivered result merges the last Window
	// periods' evaluations (each at its own boundary position), oldest
	// first. 0 or 1 keeps plain per-period results.
	Window int
}

// Validate reports specification errors.
func (ts TemporalSpec) Validate() error {
	switch {
	case ts.Period <= 0:
		return fmt.Errorf("core: temporal period %v must be positive", ts.Period)
	case ts.Deadline < 0:
		return fmt.Errorf("core: temporal deadline slack %v must be non-negative", ts.Deadline)
	case ts.Fresh < 0:
		return fmt.Errorf("core: freshness window %v must be non-negative", ts.Fresh)
	case ts.Window < 0:
		return fmt.Errorf("core: aggregation window %d must be non-negative", ts.Window)
	}
	return nil
}

// temporalState is the per-query evaluation state behind the streaming
// methods: which period is due next, the newest reading consumed so far,
// and the deadline ledger. Guarded by its own mutex so streaming
// evaluations of distinct queries never contend.
type temporalState struct {
	spec        TemporalSpec
	t0          sim.Time
	nextK       int // 1-based index of the next period to evaluate
	lastReading sim.Time
	hasReading  bool
	evaluated   int
	late        int
	// scratch is the window evaluation's hit buffer and nodes the
	// contributor-id buffer, both reused across this query's periods (a
	// dense prefetch Advance used to reallocate Nodes per evaluation).
	// Guarded by the owning liveQuery's tmu like the rest of the state, so
	// no pooling or clearing discipline is needed.
	scratch []areaHit
	nodes   []radio.NodeID
	// winRing holds the last spec.Window single-period evaluations of a
	// windowed query (allocated on first use, entries reused in place) and
	// winContribs the merged-contributor scratch; winNext/winLen are the
	// ring cursor and fill. Guarded by tmu like the rest.
	winRing     []windowPeriod
	winNext     int
	winLen      int
	winContribs []radio.NodeID
}

// windowPeriod is one single-period evaluation retained for N-period
// window merging. Contribs in data points into entry-owned storage.
type windowPeriod struct {
	due        sim.Time
	data       Partial
	areaNodes  int
	staleNodes int
	maxStale   time.Duration
	prefetched int
}

// TemporalStats is a snapshot of one query's temporal accounting.
type TemporalStats struct {
	// NextK is the 1-based index of the next period due.
	NextK int
	// Evaluated and Late count periods evaluated so far and how many of
	// them missed their deadline.
	Evaluated int
	Late      int
	// LastReading is the newest reading timestamp consumed by any window
	// evaluation; HasReading is false until one contributing reading has
	// been seen.
	LastReading sim.Time
	HasReading  bool
}

// WindowResult is one period's freshness-windowed evaluation. The embedded
// AreaResult covers only the fresh contributors; stale in-area nodes are
// counted but excluded from the aggregate.
//
// Nodes aliases a per-query scratch buffer: it is valid until the same
// query's next EvaluateDue, which reuses the storage. Callers that keep
// contributor ids across periods must copy them.
type WindowResult struct {
	AreaResult
	// K is the 1-based period index; the result was due at Due and
	// actually evaluated at EvaluatedAt.
	K           int
	Due         sim.Time
	EvaluatedAt sim.Time
	// Late reports EvaluatedAt > Due + spec.Deadline; Lateness is then
	// EvaluatedAt - Due (zero when on time).
	Late     bool
	Lateness time.Duration
	// AreaNodes counts every in-area node; StaleNodes those excluded for
	// missing the freshness window.
	AreaNodes  int
	StaleNodes int
	// MaxStaleness is the age at Due of the oldest contributing reading.
	MaxStaleness time.Duration
	// Prefetched counts contributing readings served from the query's
	// prefetch plan rather than the node sampling schedule; Warmup marks a
	// period inside the plan's equation-16 warmup interval. Both stay zero
	// for queries without a plan.
	Prefetched int
	Warmup     bool
	// CorridorHit reports the period's node enumeration was served from the
	// query's corridor warmer (a warm, pre-staged buffer) rather than a
	// cold grid radius scan. The result values are identical either way;
	// only the evaluation cost differs. Always false without a warmer.
	CorridorHit bool
	// PyramidHit reports the period's aggregate was served from the query's
	// aggregate index (SetQueryAggIndex) instead of a cold radius scan.
	// Values and accounting are identical either way; Nodes and
	// Data.Contribs stay empty on a pyramid serve, since skipping the
	// per-node enumeration is exactly what the index buys. Always false
	// without an index.
	PyramidHit bool
	// WindowPeriods is how many period boundaries the result aggregates
	// over (spec.Window at steady state, ramping up from 1 at session
	// start); zero for plain per-period queries.
	WindowPeriods int
}

// ScheduleSampler builds the standard periodic sampling schedule: node id
// samples at phase(id) + n*period for n >= 0, so its newest reading at
// time `at` was taken at the last such instant, and before its first
// sample the node has no reading at all. phase must be pure and return
// values in [0, period).
func ScheduleSampler(period time.Duration, phase func(id int32) sim.Time) Sampler {
	return func(id int32, at sim.Time) (sim.Time, bool) {
		ph := phase(id)
		if at < ph {
			return 0, false
		}
		return ph + (at-ph)/period*period, true
	}
}

// SetSampler installs the node sampling schedule used by windowed
// evaluation. A nil sampler (the default) means readings are taken at the
// evaluation instant itself — the instantaneous oracle the batch paths
// use. Must be called before any evaluation starts; it is not synchronized
// with concurrent evaluations.
func (e *QueryEngine) SetSampler(s Sampler) { e.sampler = s }

// SetQuerySampler installs a per-query sampler on a temporal query,
// overriding the engine-global Sampler for that query's windowed
// evaluations — this is how a prefetch planner feeds planned readings into
// evaluation. It reports whether the query exists and carries a temporal
// contract. Safe to call concurrently with evaluations: the new sampler
// takes effect from the next period.
func (e *QueryEngine) SetQuerySampler(queryID uint32, s AreaSampler) bool {
	q := e.temporal(queryID)
	if q == nil {
		return false
	}
	q.tmu.Lock()
	q.sampler = s
	q.tmu.Unlock()
	return true
}

// SetQueryPlan attaches a prefetch plan to a temporal query: EvaluateDue
// then credits periods the plan staged by their boundary as evaluated at
// the boundary, and flags warmup periods. It reports whether the query
// exists and carries a temporal contract.
func (e *QueryEngine) SetQueryPlan(queryID uint32, p PrefetchPlan) bool {
	q := e.temporal(queryID)
	if q == nil {
		return false
	}
	q.tmu.Lock()
	q.plan = p
	q.tmu.Unlock()
	return true
}

// SetQueryWarmer attaches a corridor warmer to a temporal query: windowed
// evaluations then ask it for a pre-staged node snapshot before falling
// back to the cold grid scan, and report warm serves in
// WindowResult.CorridorHit. A nil warmer (the default) keeps the cold path
// bit-identical. It reports whether the query exists and carries a
// temporal contract.
func (e *QueryEngine) SetQueryWarmer(queryID uint32, w CorridorWarmer) bool {
	q := e.temporal(queryID)
	if q == nil {
		return false
	}
	q.tmu.Lock()
	q.warmer = w
	q.tmu.Unlock()
	return true
}

// SetQueryAggIndex attaches an aggregate index to a temporal query:
// windowed evaluations then ask it for the whole-disk aggregate before
// falling back to the cold radius scan (or the corridor warmer, which takes
// precedence when both are attached), and report index serves in
// WindowResult.PyramidHit. The index is consulted only while the query has
// no per-query sampler: a prefetch planner's sampler serves plan-staged
// readings the index never ingested, so those queries always take their
// own path. It reports whether the query exists and carries a temporal
// contract.
func (e *QueryEngine) SetQueryAggIndex(queryID uint32, ix AggIndex) bool {
	q := e.temporal(queryID)
	if q == nil {
		return false
	}
	q.tmu.Lock()
	q.aggIndex = ix
	q.tmu.Unlock()
	return true
}

// RegisterTemporalE registers a live query carrying a temporal contract:
// periods are counted from t0, with the first result due at t0+Period.
// The query is then driven with NextDue/EvaluateDue instead of Evaluate.
func (e *QueryEngine) RegisterTemporalE(queryID uint32, radius float64, pos geom.Point, spec TemporalSpec, t0 sim.Time) error {
	if err := spec.Validate(); err != nil {
		return err
	}
	return e.register(queryID, radius, pos, &temporalState{spec: spec, t0: t0, nextK: 1})
}

// temporal returns the query and its temporal state, or nil if the query
// is unknown or was registered without a temporal contract.
func (e *QueryEngine) temporal(queryID uint32) *liveQuery {
	st := e.stripe(queryID)
	st.mu.RLock()
	q := st.queries[queryID]
	st.mu.RUnlock()
	if q == nil || q.temporal == nil {
		return nil
	}
	return q
}

// NextDue returns the index and due time of the next unevaluated period of
// a temporal query. ok is false for unknown or non-temporal queries.
func (e *QueryEngine) NextDue(queryID uint32) (k int, due sim.Time, ok bool) {
	q := e.temporal(queryID)
	if q == nil {
		return 0, 0, false
	}
	q.tmu.Lock()
	t := q.temporal
	k, due = t.nextK, t.t0+sim.Time(t.nextK)*t.spec.Period
	q.tmu.Unlock()
	return k, due, true
}

// EvaluateDue evaluates the next period of a temporal query if its
// boundary has been reached by now. It returns ok=false when the query is
// unknown, has no temporal contract, or its next period is not yet due.
// The result is computed as of the period boundary — waypoint read at call
// time, readings as-of the boundary, freshness measured against it — while
// lateness compares now against the boundary plus the deadline slack.
// Calls for distinct queries proceed in parallel; calls for one query are
// serialized and advance its period counter exactly once each.
func (e *QueryEngine) EvaluateDue(queryID uint32, now sim.Time) (WindowResult, bool) {
	return e.evaluateDue(queryID, now, nil)
}

// EvaluateDueBatch is EvaluateDue with the schedule re-arm deferred into rb
// instead of taking the schedule stripe lock per call: a worker draining a
// due batch accumulates its re-arms and the driver flushes them once per
// stripe with FlushRearms after the batch completes. Between the evaluation
// and the flush the query is absent from the schedule — identical to the
// window EvaluateDue itself has between pop and re-arm, just longer — and
// NextDue (computed from temporal state, not the schedule) still reports
// the following boundary, so drain loops are unaffected. rb must be
// flushed before the next PopDue that should see these boundaries.
func (e *QueryEngine) EvaluateDueBatch(queryID uint32, now sim.Time, rb *RearmBatch) (WindowResult, bool) {
	return e.evaluateDue(queryID, now, rb)
}

func (e *QueryEngine) evaluateDue(queryID uint32, now sim.Time, rb *RearmBatch) (WindowResult, bool) {
	q := e.temporal(queryID)
	if q == nil {
		return WindowResult{}, false
	}
	q.tmu.Lock()
	defer q.tmu.Unlock()
	t := q.temporal
	due := t.t0 + sim.Time(t.nextK)*t.spec.Period
	if due > now {
		return WindowResult{}, false
	}
	res := e.evaluateWindow(q, t.spec, due)
	res.K = t.nextK
	res.Due = due
	res.EvaluatedAt = now
	if q.plan != nil {
		// A period the prefetch chain staged at the pickup point by its
		// boundary was materially available to the user then — the clock
		// tick that collects it merely relays a finished answer, so the
		// period is accounted as evaluated when it was staged, not when
		// the tick got to it. The credit requires the whole delivered
		// answer to have been staged: every contributing reading from the
		// plan (or a genuinely empty area). A partially mispredicted
		// pickup circle means the on-demand remainder only existed at the
		// tick, so the period keeps honest tick/lateness accounting, as do
		// unstaged (warmup) periods.
		ready, staged, warmup := q.plan.PeriodStatus(due)
		covered := res.Prefetched == res.Data.Count &&
			(res.Data.Count > 0 || res.AreaNodes == 0)
		if staged && ready <= now && covered {
			if ready < due {
				ready = due
			}
			res.EvaluatedAt = ready
		}
		res.Warmup = warmup
	}
	if res.EvaluatedAt > due+t.spec.Deadline {
		res.Late = true
		res.Lateness = res.EvaluatedAt - due
	}
	if t.spec.Window > 1 {
		res = t.mergeWindow(res)
	}
	t.nextK++
	t.evaluated++
	if res.Late {
		t.late++
	}
	// Re-arm the due-period schedule at the next boundary so PopDue keeps
	// handing this query out exactly when a period is due. Batched callers
	// only record the boundary here; FlushRearms applies it later under the
	// schedule stripe lock, skipping queries whose dead flag a Deregister
	// set in the meantime. The immediate path re-arms now — but only if q
	// is still the registered query: a Deregister (or Deregister plus
	// re-register of the same id) that raced this evaluation owns the
	// schedule entry now, and re-arming at our stale boundary would
	// resurrect a removed entry or clobber the new registration's. The
	// stripe read lock excludes both (they write under the stripe lock).
	next := t.t0 + sim.Time(t.nextK)*t.spec.Period
	if rb != nil {
		rb.add(q, next, e.sched.stripeIndex(q.id))
		return res, true
	}
	st := e.stripe(q.id)
	st.mu.RLock()
	if st.queries[q.id] == q {
		e.sched.Upsert(q.id, next)
	}
	st.mu.RUnlock()
	return res, true
}

// Stats returns the temporal accounting snapshot of one query. ok is
// false for unknown or non-temporal queries.
func (e *QueryEngine) Stats(queryID uint32) (TemporalStats, bool) {
	q := e.temporal(queryID)
	if q == nil {
		return TemporalStats{}, false
	}
	q.tmu.Lock()
	defer q.tmu.Unlock()
	t := q.temporal
	return TemporalStats{
		NextK:       t.nextK,
		Evaluated:   t.evaluated,
		Late:        t.late,
		LastReading: t.lastReading,
		HasReading:  t.hasReading,
	}, true
}

// evaluateWindow computes the freshness-windowed area result of q as of
// the period boundary `due`. Caller holds q.tmu. A corridor warmer, when
// attached, serves the boundary from its pre-staged snapshot whenever it
// can prove the snapshot is exact (covered and current); otherwise — and
// always without a warmer — the cold radius scan runs, bit-identical by
// contract. The warm path lives in its own function so the cold path's
// visit closure never escapes through the warmer interface: queries
// without a corridor pay nothing for its existence.
func (e *QueryEngine) evaluateWindow(q *liveQuery, spec TemporalSpec, due sim.Time) WindowResult {
	if q.warmer != nil {
		if out, ok := e.evaluateWindowWarm(q, spec, due); ok {
			return out
		}
	}
	if q.aggIndex != nil && q.sampler == nil {
		if out, ok := e.evaluateWindowAgg(q, spec, due); ok {
			return out
		}
	}
	center := *q.pos.Load()
	out := WindowResult{
		AreaResult: AreaResult{QueryID: q.id, Center: center, Radius: q.radius, Data: NewPartial()},
	}
	hits := q.temporal.scratch[:0]
	e.grid.VisitWithin(center, q.radius, func(id int32, pos geom.Point) {
		e.addAreaHit(q, spec, due, &out, &hits, id, pos)
	})
	e.finishWindow(q, &out, hits, due)
	return out
}

// evaluateWindowWarm asks the query's corridor warmer for the boundary's
// staged snapshot; ok is false when the warmer declined (nothing staged,
// stale snapshot, or a mispredict) and the caller must run the cold scan.
// Caller holds q.tmu.
func (e *QueryEngine) evaluateWindowWarm(q *liveQuery, spec TemporalSpec, due sim.Time) (WindowResult, bool) {
	center := *q.pos.Load()
	out := WindowResult{
		AreaResult:  AreaResult{QueryID: q.id, Center: center, Radius: q.radius, Data: NewPartial()},
		CorridorHit: true,
	}
	hits := q.temporal.scratch[:0]
	if !q.warmer.VisitStaged(due, center, q.radius, func(id int32, pos geom.Point) {
		e.addAreaHit(q, spec, due, &out, &hits, id, pos)
	}) {
		return WindowResult{}, false
	}
	e.finishWindow(q, &out, hits, due)
	return out, true
}

// evaluateWindowAgg asks the query's aggregate index for the boundary's
// whole-disk aggregate; ok is false when the index declined (no epoch for
// the boundary, freshness mismatch, or node-index skew since ingest) and
// the caller must run the cold scan. Caller holds q.tmu.
func (e *QueryEngine) evaluateWindowAgg(q *liveQuery, spec TemporalSpec, due sim.Time) (WindowResult, bool) {
	center := *q.pos.Load()
	sv, ok := q.aggIndex.ServeWindow(due, center, q.radius, spec.Fresh)
	if !ok {
		return WindowResult{}, false
	}
	out := WindowResult{
		AreaResult:   AreaResult{QueryID: q.id, Center: center, Radius: q.radius, Data: sv.Data},
		PyramidHit:   true,
		AreaNodes:    sv.AreaNodes,
		StaleNodes:   sv.StaleNodes,
		MaxStaleness: sv.MaxStaleness,
	}
	t := q.temporal
	if sv.Data.Count > 0 && (!t.hasReading || sv.Newest > t.lastReading) {
		t.lastReading = sv.Newest
		t.hasReading = true
	}
	return out, true
}

// addAreaHit is the shared per-node collection body of a windowed
// evaluation: freshness-window the node's reading and record the hit.
func (e *QueryEngine) addAreaHit(q *liveQuery, spec TemporalSpec, due sim.Time, out *WindowResult, hits *[]areaHit, id int32, pos geom.Point) {
	out.AreaNodes++
	sample, ok, prefetched := due, true, false
	switch {
	case q.sampler != nil:
		sample, ok, prefetched = q.sampler(id, pos, due)
	case e.sampler != nil:
		sample, ok = e.sampler(id, due)
	}
	if !ok || (spec.Fresh > 0 && due-sample > spec.Fresh) || sample > due {
		out.StaleNodes++
		return
	}
	*hits = append(*hits, areaHit{id: id, pos: pos, sample: sample, prefetched: prefetched})
}

// mergeWindow folds the current single-period evaluation into the query's
// N-period ring and returns the windowed result: the last spec.Window
// periods' aggregates merged oldest first (each period was evaluated at its
// own boundary position), with summed node accounting and staleness
// re-aged to the current boundary. The current period's timing fields
// (Due, EvaluatedAt, Late, PyramidHit, ...) are kept: the window is a data
// aggregate, not a delivery contract. Caller holds the owning query's tmu.
func (t *temporalState) mergeWindow(cur WindowResult) WindowResult {
	w := t.spec.Window
	if t.winRing == nil {
		t.winRing = make([]windowPeriod, w)
	}
	e := &t.winRing[t.winNext]
	t.winNext = (t.winNext + 1) % w
	if t.winLen < w {
		t.winLen++
	}
	e.due = cur.Due
	e.areaNodes = cur.AreaNodes
	e.staleNodes = cur.StaleNodes
	e.maxStale = cur.MaxStaleness
	e.prefetched = cur.Prefetched
	contribs := e.data.Contribs
	e.data = cur.Data
	e.data.Contribs = append(contribs[:0], cur.Data.Contribs...)

	out := cur
	out.Data = NewPartial()
	out.AreaNodes, out.StaleNodes, out.MaxStaleness, out.Prefetched = 0, 0, 0, 0
	t.winContribs = t.winContribs[:0]
	for i := 0; i < t.winLen; i++ {
		p := &t.winRing[(t.winNext+w-t.winLen+i)%w]
		out.Data.Count += p.data.Count
		out.Data.Sum += p.data.Sum
		if p.data.Count > 0 {
			if p.data.Min < out.Data.Min {
				out.Data.Min = p.data.Min
			}
			if p.data.Max > out.Data.Max {
				out.Data.Max = p.data.Max
			}
			// A reading's age grows with every boundary it is carried
			// across: re-age each period's staleness to the current due.
			if aged := p.maxStale + time.Duration(cur.Due-p.due); aged > out.MaxStaleness {
				out.MaxStaleness = aged
			}
		}
		t.winContribs = append(t.winContribs, p.data.Contribs...)
		out.AreaNodes += p.areaNodes
		out.StaleNodes += p.staleNodes
		out.Prefetched += p.prefetched
	}
	out.Data.Contribs = t.winContribs
	out.WindowPeriods = t.winLen
	return out
}

// finishWindow sorts the collected hits and folds them into the result,
// reusing the query's scratch buffers. Caller holds q.tmu.
func (e *QueryEngine) finishWindow(q *liveQuery, out *WindowResult, hits []areaHit, due sim.Time) {
	// Sort by id so Nodes and float accumulation order are deterministic
	// regardless of shard layout, exactly as the instantaneous path does.
	slices.SortFunc(hits, hitsByID)
	t := q.temporal
	// One Grow on the first period instead of append doubling; every later
	// period of this query reuses the buffer allocation-free.
	out.Nodes = slices.Grow(t.nodes[:0], len(hits))
	for _, h := range hits {
		out.Nodes = append(out.Nodes, radio.NodeID(h.id))
		out.Data.AddReading(radio.NodeID(h.id), e.fld.Sample(h.pos, h.sample))
		if h.prefetched {
			out.Prefetched++
		}
		if age := due - h.sample; age > out.MaxStaleness {
			out.MaxStaleness = age
		}
		if !t.hasReading || h.sample > t.lastReading {
			t.lastReading = h.sample
			t.hasReading = true
		}
	}
	t.scratch = hits
	t.nodes = out.Nodes
}
