package core

import (
	"cmp"
	"fmt"
	"runtime"
	"slices"
	"sync"
	"sync/atomic"

	"mobiquery/internal/field"
	"mobiquery/internal/geom"
	"mobiquery/internal/radio"
	"mobiquery/internal/sim"
)

// EngineConfig sizes the concurrent multi-user query engine: how many
// spatial shards the node index uses and how many workers the dispatch pool
// runs. Zero values select sane defaults, so the zero EngineConfig is valid.
type EngineConfig struct {
	// Shards is the spatial shard count of the node index
	// (<=0 selects geom.DefaultShards).
	Shards int
	// Workers is the worker-pool size used to fan independent users'
	// work across cores (<=0 selects GOMAXPROCS).
	Workers int
}

func (c EngineConfig) normalized() EngineConfig {
	if c.Shards <= 0 {
		c.Shards = geom.DefaultShards
	}
	if c.Workers <= 0 {
		c.Workers = runtime.GOMAXPROCS(0)
	}
	return c
}

// Validate reports configuration errors (negative knobs; zero means auto).
func (c EngineConfig) Validate() error {
	if c.Shards < 0 {
		return fmt.Errorf("core: engine shards must be non-negative, got %d", c.Shards)
	}
	if c.Workers < 0 {
		return fmt.Errorf("core: engine workers must be non-negative, got %d", c.Workers)
	}
	return nil
}

// queryStripes is the number of hash stripes of the query registry. It
// bounds contention between concurrent Register/UpdateWaypoint calls for
// different users.
const queryStripes = 64

// liveQuery is one registered user query: a radius around a mobile
// waypoint. The waypoint is published through an atomic pointer so updates
// never block evaluation. Queries registered through RegisterTemporalE
// additionally carry streaming evaluation state (see temporal.go), guarded
// by tmu so per-period evaluations of one query are serialized while
// distinct queries never contend.
type liveQuery struct {
	id       uint32
	radius   float64
	pos      atomic.Pointer[geom.Point]
	tmu      sync.Mutex
	temporal *temporalState
	// dead is set by Deregister (under the registry stripe write lock,
	// before the schedule entry is removed) so a batched re-arm holding only
	// the schedule stripe lock can tell a deregistered query from a live one
	// without touching the registry — see FlushRearms.
	dead atomic.Bool
	// sampler overrides the engine-global Sampler for this query's windowed
	// evaluations, plan is the prefetch plan EvaluateDue consults, warmer
	// serves pre-staged corridor snapshots to evaluateWindow, and aggIndex
	// answers whole-disk aggregates from a multiresolution tile pyramid;
	// all four are nil (pure on-demand, cold-scan behavior) unless
	// installed via SetQuerySampler/SetQueryPlan/SetQueryWarmer/
	// SetQueryAggIndex. Guarded by tmu.
	sampler  AreaSampler
	plan     PrefetchPlan
	warmer   CorridorWarmer
	aggIndex AggIndex
}

type engineStripe struct {
	mu      sync.RWMutex
	queries map[uint32]*liveQuery
}

// QueryEngine is the sharded, concurrent multi-user query engine: a spatial
// index of sensor-node positions (geom.ShardedGrid) plus a registry of live
// user queries, with all per-user work — registration, waypoint updates,
// and query-area evaluation — safe to issue from many goroutines at once
// and fanned across a worker pool by EvaluateAll/Dispatch.
//
// It answers the instantaneous form of the paper's spatiotemporal query:
// "which sensors are inside the circle of radius Rq around each user right
// now, and what is the aggregate of their readings". The discrete-event
// Service uses it as its oracle node index; the experiment scale harness
// drives it directly with tens of thousands of users.
type QueryEngine struct {
	cfg     EngineConfig
	grid    *geom.ShardedGrid
	fld     field.Field
	sampler Sampler
	stripes [queryStripes]engineStripe
	nq      atomic.Int64
	// sched tracks every temporal query's next period boundary, keyed
	// (due, id), so PopDue hands a clock driver exactly the queries with a
	// period due — an idle tick costs O(1) instead of O(queries).
	sched *Schedule
}

// NewQueryEngine creates an engine over region. cellSize tunes the spatial
// hash (the typical query radius or the radio range are good choices); fld
// is the sensor field sampled during evaluation. It panics on invalid
// input; NewQueryEngineE is the error-returning variant.
func NewQueryEngine(region geom.Rect, cellSize float64, fld field.Field, cfg EngineConfig) *QueryEngine {
	e, err := NewQueryEngineE(region, cellSize, fld, cfg)
	if err != nil {
		panic(err)
	}
	return e
}

// NewQueryEngineE is NewQueryEngine reporting invalid input as an error.
func NewQueryEngineE(region geom.Rect, cellSize float64, fld field.Field, cfg EngineConfig) (*QueryEngine, error) {
	if err := cfg.Validate(); err != nil {
		return nil, err
	}
	if fld == nil {
		return nil, fmt.Errorf("core: query engine needs a field")
	}
	cfg = cfg.normalized()
	e := &QueryEngine{
		cfg:  cfg,
		grid: geom.NewShardedGrid(region, cellSize, cfg.Shards),
		fld:  fld,
		// One schedule stripe per worker (rounded to a power of two): the
		// contention on the schedule comes from the workers' re-arms, and
		// any stripe count pops identically, so sizing is purely a
		// concurrency knob — Shards/Workers invariance holds by the merge.
		sched: NewScheduleStriped(cfg.Workers),
	}
	for i := range e.stripes {
		e.stripes[i].queries = make(map[uint32]*liveQuery)
	}
	return e, nil
}

// Workers returns the dispatch pool size.
func (e *QueryEngine) Workers() int { return e.cfg.Workers }

// Index returns the underlying sharded node index.
func (e *QueryEngine) Index() *geom.ShardedGrid { return e.grid }

// UpsertNode records (or moves) a sensor node's position. Safe for
// concurrent use across distinct node ids.
func (e *QueryEngine) UpsertNode(id radio.NodeID, p geom.Point) {
	e.grid.Insert(int32(id), p)
}

// RemoveNode drops a sensor node from the index (a failed node). Removing
// an unknown node is a no-op.
func (e *QueryEngine) RemoveNode(id radio.NodeID) { e.grid.Remove(int32(id)) }

// NodeCount returns the number of indexed sensor nodes.
func (e *QueryEngine) NodeCount() int { return e.grid.Len() }

func (e *QueryEngine) stripe(queryID uint32) *engineStripe {
	return &e.stripes[(queryID*2654435761)%queryStripes]
}

// Register adds a live user query of the given radius centered at pos.
// QueryIDs must be unique and non-zero; radius must be positive. Distinct
// users may register concurrently. It panics on invalid input; RegisterE
// is the error-returning variant.
func (e *QueryEngine) Register(queryID uint32, radius float64, pos geom.Point) {
	if err := e.RegisterE(queryID, radius, pos); err != nil {
		panic(err)
	}
}

// RegisterE is Register reporting invalid input (zero id, non-positive
// radius, duplicate id) as an error. A query id freed by Deregister may be
// registered again.
func (e *QueryEngine) RegisterE(queryID uint32, radius float64, pos geom.Point) error {
	return e.register(queryID, radius, pos, nil)
}

func (e *QueryEngine) register(queryID uint32, radius float64, pos geom.Point, t *temporalState) error {
	if queryID == 0 {
		return fmt.Errorf("core: query id must be non-zero")
	}
	if radius <= 0 {
		return fmt.Errorf("core: query radius must be positive")
	}
	q := &liveQuery{id: queryID, radius: radius, temporal: t}
	p := pos
	q.pos.Store(&p)
	st := e.stripe(queryID)
	st.mu.Lock()
	if _, dup := st.queries[queryID]; dup {
		st.mu.Unlock()
		return fmt.Errorf("core: duplicate query id %d", queryID)
	}
	st.queries[queryID] = q
	if t != nil {
		// Scheduled under the stripe lock so a concurrent Deregister of
		// the same id cannot observe the query without its schedule entry.
		e.sched.Upsert(queryID, t.t0+sim.Time(t.nextK)*t.spec.Period)
	}
	st.mu.Unlock()
	e.nq.Add(1)
	return nil
}

// Deregister removes a live query. Unknown ids are a no-op.
func (e *QueryEngine) Deregister(queryID uint32) {
	st := e.stripe(queryID)
	st.mu.Lock()
	q, ok := st.queries[queryID]
	delete(st.queries, queryID)
	if ok {
		// dead is set before the schedule entry is removed: a deferred
		// re-arm that checks it under the schedule stripe lock either sees
		// it (and skips) or upserts first — in which case this Remove, which
		// serializes on the same stripe lock, deletes the stale entry right
		// after. Either way the entry cannot be resurrected.
		q.dead.Store(true)
		e.sched.Remove(queryID)
	}
	st.mu.Unlock()
	if ok {
		e.nq.Add(-1)
	}
}

// PopDue removes and returns every temporal query whose next period
// boundary is at or before now, appended to buf in ascending (due, id)
// order. A popped query is the caller's to drive: each EvaluateDue
// re-arms it at its following boundary, so a clock driver loops
// EvaluateDue until the next boundary passes now and the schedule stays
// consistent. When no period is due the call is an O(1) peek — this is
// what makes an idle Advance independent of the subscriber count.
func (e *QueryEngine) PopDue(now sim.Time, buf []DueEntry) []DueEntry {
	return e.sched.PopDue(now, buf)
}

// ScheduleStats snapshots the due-period scheduler: stripe count, total and
// per-stripe entry counts, and the fan-in of the last non-empty PopDue.
func (e *QueryEngine) ScheduleStats() ScheduleStats { return e.sched.Stats() }

// ScheduleStatsInto is ScheduleStats writing into a caller-owned snapshot,
// reusing its StripeLens capacity (see Schedule.StatsInto).
func (e *QueryEngine) ScheduleStatsInto(out *ScheduleStats) { e.sched.StatsInto(out) }

// LastMergeDepth returns the stripe fan-in of the most recent non-empty
// PopDue as one atomic load (see Schedule.LastMergeDepth).
func (e *QueryEngine) LastMergeDepth() int { return e.sched.LastMergeDepth() }

// rearmEntry is one deferred schedule re-arm: query q's next boundary is
// due. The liveQuery pointer (not the bare id) is carried so the flush can
// check q.dead — the id alone could since have been freed and re-registered
// to a different query.
type rearmEntry struct {
	q   *liveQuery
	due sim.Time
}

// RearmBatch collects deferred schedule re-arms, bucketed by schedule
// stripe. EvaluateDueBatch appends to it instead of taking the schedule
// lock per query; FlushRearms then takes each touched stripe's lock exactly
// once. One batch belongs to one worker at a time (it is not synchronized);
// create per-worker batches with NewRearmBatch and reuse them across
// Advance steps — a flushed batch is empty and allocation-free to refill.
type RearmBatch struct {
	byStripe [][]rearmEntry
}

// NewRearmBatch returns an empty re-arm batch sized for e's scheduler.
func (e *QueryEngine) NewRearmBatch() *RearmBatch {
	return &RearmBatch{byStripe: make([][]rearmEntry, e.sched.StripeCount())}
}

// add records q's next boundary. Consecutive re-arms of the same query
// coalesce: when a driver drains several due periods of one query in a row,
// only the final boundary needs to reach the schedule.
func (rb *RearmBatch) add(q *liveQuery, due sim.Time, stripe int) {
	b := rb.byStripe[stripe]
	if n := len(b); n > 0 && b[n-1].q == q {
		b[n-1].due = due
		return
	}
	rb.byStripe[stripe] = append(b, rearmEntry{q: q, due: due})
}

// FlushRearms applies every deferred re-arm in rb to the schedule, one
// stripe lock hold per touched stripe, and resets rb for reuse. Queries
// deregistered since their evaluation are skipped (see liveQuery.dead);
// the ordering argument for why a racing Deregister can never leave a
// resurrected entry is on Deregister.
func (e *QueryEngine) FlushRearms(rb *RearmBatch) {
	for i, bucket := range rb.byStripe {
		if len(bucket) == 0 {
			continue
		}
		st := &e.sched.stripes[i]
		st.mu.Lock()
		for _, en := range bucket {
			if !en.q.dead.Load() {
				st.upsert(en.q.id, en.due)
			}
		}
		st.publishHead()
		st.mu.Unlock()
		// Zero the liveQuery pointers so a burst-sized batch doesn't pin
		// closed queries for the batch's (service-long) lifetime.
		clear(bucket)
		rb.byStripe[i] = bucket[:0]
	}
}

// UpdateWaypoint moves a user's query center (the user walked). It reports
// whether the query is registered. Updates for distinct users never
// contend, and evaluation in flight sees either the old or the new point.
func (e *QueryEngine) UpdateWaypoint(queryID uint32, pos geom.Point) bool {
	st := e.stripe(queryID)
	st.mu.RLock()
	q := st.queries[queryID]
	st.mu.RUnlock()
	if q == nil {
		return false
	}
	p := pos
	q.pos.Store(&p)
	return true
}

// QueryCount returns the number of registered live queries.
func (e *QueryEngine) QueryCount() int { return int(e.nq.Load()) }

// AreaResult is the instantaneous evaluation of one user's query area.
type AreaResult struct {
	QueryID uint32
	// Center and Radius are the evaluated circle.
	Center geom.Point
	Radius float64
	// Nodes lists the in-area sensor nodes in ascending id order.
	Nodes []radio.NodeID
	// Data aggregates the in-area readings at the evaluation instant.
	Data Partial
}

// areaHit is one in-area sensor collected during evaluation, with the
// timestamp of the reading consumed (the evaluation instant on the
// instantaneous path; the node's newest sample on the windowed path).
type areaHit struct {
	id     int32
	pos    geom.Point
	sample sim.Time
	// prefetched marks a reading served from the query's prefetch plan
	// (always false on the instantaneous path).
	prefetched bool
}

// hitsByID orders collected hits by node id so Nodes, Contribs, and float
// accumulation order are deterministic regardless of shard layout and
// insertion interleaving.
func hitsByID(a, b areaHit) int { return cmp.Compare(a.id, b.id) }

// hitPool recycles the per-evaluation hit scratch: EvaluateAll over
// thousands of users would otherwise grow-and-discard one slice per user
// per sweep.
var hitPool = sync.Pool{New: func() any { return new([]areaHit) }}

// evaluate computes one query's area result at virtual time at. Pure with
// respect to engine state: it only reads immutable bucket snapshots and the
// query's atomic waypoint, so any number of evaluations run in parallel.
func (e *QueryEngine) evaluate(q *liveQuery, at sim.Time) AreaResult {
	center := *q.pos.Load()
	res := AreaResult{QueryID: q.id, Center: center, Radius: q.radius, Data: NewPartial()}
	scratch := hitPool.Get().(*[]areaHit)
	hits := (*scratch)[:0]
	e.grid.VisitWithin(center, q.radius, func(id int32, pos geom.Point) {
		hits = append(hits, areaHit{id: id, pos: pos})
	})
	slices.SortFunc(hits, hitsByID)
	res.Nodes = make([]radio.NodeID, 0, len(hits))
	for _, h := range hits {
		res.Nodes = append(res.Nodes, radio.NodeID(h.id))
		res.Data.AddReading(radio.NodeID(h.id), e.fld.Sample(h.pos, at))
	}
	*scratch = hits
	hitPool.Put(scratch)
	return res
}

// Evaluate computes one registered query's area result at virtual time at.
func (e *QueryEngine) Evaluate(queryID uint32, at sim.Time) (AreaResult, bool) {
	st := e.stripe(queryID)
	st.mu.RLock()
	q := st.queries[queryID]
	st.mu.RUnlock()
	if q == nil {
		return AreaResult{}, false
	}
	return e.evaluate(q, at), true
}

// snapshot returns the registered queries sorted by id.
func (e *QueryEngine) snapshot() []*liveQuery {
	out := make([]*liveQuery, 0, e.nq.Load())
	for i := range e.stripes {
		st := &e.stripes[i]
		st.mu.RLock()
		for _, q := range st.queries {
			out = append(out, q)
		}
		st.mu.RUnlock()
	}
	slices.SortFunc(out, func(a, b *liveQuery) int { return cmp.Compare(a.id, b.id) })
	return out
}

// EvaluateAll evaluates every registered query at virtual time at,
// dispatching independent users across the worker pool. Results are in
// ascending query-id order and identical to EvaluateAllSerial.
func (e *QueryEngine) EvaluateAll(at sim.Time) []AreaResult {
	qs := e.snapshot()
	out := make([]AreaResult, len(qs))
	e.Dispatch(len(qs), func(i int) { out[i] = e.evaluate(qs[i], at) })
	return out
}

// EvaluateAllSerial is EvaluateAll through a plain serial loop: the
// pre-sharding dispatch path, kept as the benchmark baseline.
func (e *QueryEngine) EvaluateAllSerial(at sim.Time) []AreaResult {
	qs := e.snapshot()
	out := make([]AreaResult, len(qs))
	for i, q := range qs {
		out[i] = e.evaluate(q, at)
	}
	return out
}

// Dispatch runs fn(0..n-1) across the engine's worker pool and returns when
// all calls have completed. Workers pull indices from a shared queue, so
// uneven per-user costs balance out. fn must be safe for concurrent
// invocation with distinct arguments; with one worker (or n<2) the calls
// run serially in order.
func (e *QueryEngine) Dispatch(n int, fn func(i int)) {
	e.DispatchWorkers(n, func(_, i int) { fn(i) })
}

// DispatchWorkers is Dispatch with the worker's index (0..Workers-1) passed
// to fn alongside the work index, so callers can hand each worker private
// scratch (a RearmBatch, an output lane) without synchronization. Which
// worker runs which index is nondeterministic; with one worker (or n<2)
// every call runs serially on worker 0.
func (e *QueryEngine) DispatchWorkers(n int, fn func(worker, i int)) {
	if n <= 0 {
		return
	}
	w := e.cfg.Workers
	if w > n {
		w = n
	}
	if w <= 1 {
		for i := 0; i < n; i++ {
			fn(0, i)
		}
		return
	}
	var next atomic.Int64
	var wg sync.WaitGroup
	wg.Add(w)
	for k := 0; k < w; k++ {
		go func(worker int) {
			defer wg.Done()
			for {
				i := next.Add(1) - 1
				if i >= int64(n) {
					return
				}
				fn(worker, int(i))
			}
		}(k)
	}
	wg.Wait()
}
