package core

import (
	"math"
	"testing"
	"time"

	"mobiquery/internal/field"
	"mobiquery/internal/geom"
	"mobiquery/internal/sim"
)

func TestTemporalSpecValidate(t *testing.T) {
	good := TemporalSpec{Period: time.Second, Deadline: 100 * time.Millisecond, Fresh: time.Second}
	if err := good.Validate(); err != nil {
		t.Fatalf("valid spec rejected: %v", err)
	}
	bad := []TemporalSpec{
		{Period: 0},
		{Period: -time.Second},
		{Period: time.Second, Deadline: -1},
		{Period: time.Second, Fresh: -1},
	}
	for i, ts := range bad {
		if ts.Validate() == nil {
			t.Errorf("spec %d (%+v): expected validation error", i, ts)
		}
	}
}

func TestNewQueryEngineEAndRegisterE(t *testing.T) {
	if _, err := NewQueryEngineE(geom.Square(100), 10, nil, EngineConfig{}); err == nil {
		t.Error("nil field should be an error")
	}
	if _, err := NewQueryEngineE(geom.Square(100), 10, field.Uniform{Value: 1}, EngineConfig{Shards: -1}); err == nil {
		t.Error("negative shards should be an error")
	}
	e := testEngine(EngineConfig{})
	if err := e.RegisterE(0, 10, geom.Pt(0, 0)); err == nil {
		t.Error("zero id should be an error")
	}
	if err := e.RegisterE(1, 0, geom.Pt(0, 0)); err == nil {
		t.Error("zero radius should be an error")
	}
	if err := e.RegisterE(1, 10, geom.Pt(0, 0)); err != nil {
		t.Fatalf("RegisterE: %v", err)
	}
	if err := e.RegisterE(1, 10, geom.Pt(0, 0)); err == nil {
		t.Error("duplicate id should be an error")
	}
	// A deregistered id is free for re-registration.
	e.Deregister(1)
	if err := e.RegisterE(1, 20, geom.Pt(5, 5)); err != nil {
		t.Fatalf("re-register after deregister: %v", err)
	}
}

// temporalEngine builds a three-node engine with a fixed sampling history:
// node 0 sampled at 1.5 s, node 1 at 200 ms, node 2 never.
func temporalEngine(t *testing.T) *QueryEngine {
	t.Helper()
	e := NewQueryEngine(geom.Square(1000), 100, field.Gradient{Base: 10, Slope: geom.V(1, 0)}, EngineConfig{})
	samples := map[int32]sim.Time{0: 1500 * time.Millisecond, 1: 200 * time.Millisecond}
	e.SetSampler(func(id int32, at sim.Time) (sim.Time, bool) {
		s, ok := samples[id]
		if !ok || s > at {
			return 0, false
		}
		return s, true
	})
	e.UpsertNode(0, geom.Pt(10, 0))
	e.UpsertNode(1, geom.Pt(20, 0))
	e.UpsertNode(2, geom.Pt(30, 0))
	return e
}

func TestEvaluateDueFreshnessWindow(t *testing.T) {
	e := temporalEngine(t)
	spec := TemporalSpec{Period: 2 * time.Second, Fresh: time.Second}
	if err := e.RegisterTemporalE(7, 100, geom.Pt(0, 0), spec, 0); err != nil {
		t.Fatalf("RegisterTemporalE: %v", err)
	}

	// Not yet due before the first period boundary.
	if _, ok := e.EvaluateDue(7, 1999*time.Millisecond); ok {
		t.Fatal("EvaluateDue before the boundary should not fire")
	}
	k, due, ok := e.NextDue(7)
	if !ok || k != 1 || due != 2*time.Second {
		t.Fatalf("NextDue = (%d, %v, %v), want (1, 2s, true)", k, due, ok)
	}

	// At the boundary: node 0 (age 500 ms) is fresh; node 1 (age 1.8 s)
	// and node 2 (never sampled) are stale.
	res, ok := e.EvaluateDue(7, 2*time.Second)
	if !ok {
		t.Fatal("EvaluateDue at the boundary should fire")
	}
	if res.K != 1 || res.Due != 2*time.Second || res.EvaluatedAt != 2*time.Second {
		t.Errorf("period header = %d/%v/%v", res.K, res.Due, res.EvaluatedAt)
	}
	if res.Late || res.Lateness != 0 {
		t.Errorf("on-time evaluation marked late (%v)", res.Lateness)
	}
	if res.AreaNodes != 3 || res.StaleNodes != 2 || len(res.Nodes) != 1 || res.Nodes[0] != 0 {
		t.Errorf("area %d stale %d nodes %v, want 3/2/[0]", res.AreaNodes, res.StaleNodes, res.Nodes)
	}
	if res.MaxStaleness != 500*time.Millisecond {
		t.Errorf("MaxStaleness = %v, want 500ms", res.MaxStaleness)
	}
	// Node 0 sits at x=10 under the gradient: reading 10 + 10*1 = 20.
	if v := res.Data.Value(AggAvg); v != 20 {
		t.Errorf("aggregate = %v, want 20", v)
	}

	st, ok := e.Stats(7)
	if !ok {
		t.Fatal("Stats of temporal query missing")
	}
	if st.NextK != 2 || st.Evaluated != 1 || st.Late != 0 {
		t.Errorf("stats = %+v", st)
	}
	if !st.HasReading || st.LastReading != 1500*time.Millisecond {
		t.Errorf("last reading = %v/%v, want 1.5s/true", st.LastReading, st.HasReading)
	}
}

func TestEvaluateDueZeroFreshAcceptsAnyReading(t *testing.T) {
	e := temporalEngine(t)
	spec := TemporalSpec{Period: 2 * time.Second} // Fresh 0: unbounded window
	if err := e.RegisterTemporalE(9, 100, geom.Pt(0, 0), spec, 0); err != nil {
		t.Fatal(err)
	}
	res, ok := e.EvaluateDue(9, 2*time.Second)
	if !ok {
		t.Fatal("EvaluateDue should fire")
	}
	// Both sampled nodes contribute however old; the never-sampled node
	// still cannot.
	if len(res.Nodes) != 2 || res.StaleNodes != 1 {
		t.Fatalf("nodes %v stale %d, want [0 1] / 1", res.Nodes, res.StaleNodes)
	}
	if res.MaxStaleness != 1800*time.Millisecond {
		t.Errorf("MaxStaleness = %v, want 1.8s", res.MaxStaleness)
	}
}

func TestEvaluateDueDeadlineAccounting(t *testing.T) {
	e := temporalEngine(t)
	spec := TemporalSpec{Period: 2 * time.Second, Deadline: 100 * time.Millisecond, Fresh: time.Second}
	if err := e.RegisterTemporalE(3, 100, geom.Pt(0, 0), spec, 0); err != nil {
		t.Fatal(err)
	}
	// Jump straight to 6.05 s: periods 1 (due 2 s) and 2 (due 4 s) are
	// past the slack and late; period 3 (due 6 s) is within it.
	now := 6050 * time.Millisecond
	var got []WindowResult
	for {
		res, ok := e.EvaluateDue(3, now)
		if !ok {
			break
		}
		got = append(got, res)
	}
	if len(got) != 3 {
		t.Fatalf("evaluated %d periods, want 3", len(got))
	}
	wantLate := []struct {
		late     bool
		lateness time.Duration
	}{
		{true, 4050 * time.Millisecond},
		{true, 2050 * time.Millisecond},
		{false, 0},
	}
	for i, res := range got {
		if res.K != i+1 || res.Due != time.Duration(i+1)*2*time.Second {
			t.Errorf("period %d header = %d/%v", i, res.K, res.Due)
		}
		if res.Late != wantLate[i].late || res.Lateness != wantLate[i].lateness {
			t.Errorf("period %d late = %v/%v, want %v/%v",
				i, res.Late, res.Lateness, wantLate[i].late, wantLate[i].lateness)
		}
	}
	st, _ := e.Stats(3)
	if st.Evaluated != 3 || st.Late != 2 || st.NextK != 4 {
		t.Errorf("stats = %+v, want 3 evaluated / 2 late / next 4", st)
	}
}

func TestEvaluateDueNonTemporalAndUnknown(t *testing.T) {
	e := temporalEngine(t)
	e.Register(5, 100, geom.Pt(0, 0)) // plain instantaneous query
	if _, ok := e.EvaluateDue(5, time.Hour); ok {
		t.Error("EvaluateDue fired for a non-temporal query")
	}
	if _, _, ok := e.NextDue(5); ok {
		t.Error("NextDue answered for a non-temporal query")
	}
	if _, ok := e.Stats(5); ok {
		t.Error("Stats answered for a non-temporal query")
	}
	if _, ok := e.EvaluateDue(999, time.Hour); ok {
		t.Error("EvaluateDue fired for an unknown query")
	}
	if err := e.RegisterTemporalE(6, 100, geom.Pt(0, 0), TemporalSpec{}, 0); err == nil {
		t.Error("zero period should be rejected")
	}
}

func TestEvaluateDueDefaultSamplerIsInstantaneous(t *testing.T) {
	// Without a sampler the windowed path degenerates to the oracle:
	// readings taken at the boundary itself, nothing stale.
	e := NewQueryEngine(geom.Square(1000), 100, field.Uniform{Value: 42}, EngineConfig{})
	e.UpsertNode(0, geom.Pt(10, 0))
	e.UpsertNode(1, geom.Pt(20, 0))
	if err := e.RegisterTemporalE(1, 100, geom.Pt(0, 0), TemporalSpec{Period: time.Second, Fresh: time.Millisecond}, 0); err != nil {
		t.Fatal(err)
	}
	res, ok := e.EvaluateDue(1, time.Second)
	if !ok {
		t.Fatal("EvaluateDue should fire")
	}
	if len(res.Nodes) != 2 || res.StaleNodes != 0 || res.MaxStaleness != 0 {
		t.Errorf("instantaneous window = %d nodes / %d stale / %v staleness",
			len(res.Nodes), res.StaleNodes, res.MaxStaleness)
	}
	if v := res.Data.Value(AggAvg); v != 42 {
		t.Errorf("aggregate = %v, want 42", v)
	}
	if math.IsNaN(res.Data.Value(AggMin)) {
		t.Error("min of populated window is NaN")
	}
}
