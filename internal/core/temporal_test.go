package core

import (
	"math"
	"testing"
	"time"

	"mobiquery/internal/field"
	"mobiquery/internal/geom"
	"mobiquery/internal/sim"
)

func TestTemporalSpecValidate(t *testing.T) {
	good := TemporalSpec{Period: time.Second, Deadline: 100 * time.Millisecond, Fresh: time.Second}
	if err := good.Validate(); err != nil {
		t.Fatalf("valid spec rejected: %v", err)
	}
	bad := []TemporalSpec{
		{Period: 0},
		{Period: -time.Second},
		{Period: time.Second, Deadline: -1},
		{Period: time.Second, Fresh: -1},
	}
	for i, ts := range bad {
		if ts.Validate() == nil {
			t.Errorf("spec %d (%+v): expected validation error", i, ts)
		}
	}
}

func TestNewQueryEngineEAndRegisterE(t *testing.T) {
	if _, err := NewQueryEngineE(geom.Square(100), 10, nil, EngineConfig{}); err == nil {
		t.Error("nil field should be an error")
	}
	if _, err := NewQueryEngineE(geom.Square(100), 10, field.Uniform{Value: 1}, EngineConfig{Shards: -1}); err == nil {
		t.Error("negative shards should be an error")
	}
	e := testEngine(EngineConfig{})
	if err := e.RegisterE(0, 10, geom.Pt(0, 0)); err == nil {
		t.Error("zero id should be an error")
	}
	if err := e.RegisterE(1, 0, geom.Pt(0, 0)); err == nil {
		t.Error("zero radius should be an error")
	}
	if err := e.RegisterE(1, 10, geom.Pt(0, 0)); err != nil {
		t.Fatalf("RegisterE: %v", err)
	}
	if err := e.RegisterE(1, 10, geom.Pt(0, 0)); err == nil {
		t.Error("duplicate id should be an error")
	}
	// A deregistered id is free for re-registration.
	e.Deregister(1)
	if err := e.RegisterE(1, 20, geom.Pt(5, 5)); err != nil {
		t.Fatalf("re-register after deregister: %v", err)
	}
}

// temporalEngine builds a three-node engine with a fixed sampling history:
// node 0 sampled at 1.5 s, node 1 at 200 ms, node 2 never.
func temporalEngine(t *testing.T) *QueryEngine {
	t.Helper()
	e := NewQueryEngine(geom.Square(1000), 100, field.Gradient{Base: 10, Slope: geom.V(1, 0)}, EngineConfig{})
	samples := map[int32]sim.Time{0: 1500 * time.Millisecond, 1: 200 * time.Millisecond}
	e.SetSampler(func(id int32, at sim.Time) (sim.Time, bool) {
		s, ok := samples[id]
		if !ok || s > at {
			return 0, false
		}
		return s, true
	})
	e.UpsertNode(0, geom.Pt(10, 0))
	e.UpsertNode(1, geom.Pt(20, 0))
	e.UpsertNode(2, geom.Pt(30, 0))
	return e
}

func TestEvaluateDueFreshnessWindow(t *testing.T) {
	e := temporalEngine(t)
	spec := TemporalSpec{Period: 2 * time.Second, Fresh: time.Second}
	if err := e.RegisterTemporalE(7, 100, geom.Pt(0, 0), spec, 0); err != nil {
		t.Fatalf("RegisterTemporalE: %v", err)
	}

	// Not yet due before the first period boundary.
	if _, ok := e.EvaluateDue(7, 1999*time.Millisecond); ok {
		t.Fatal("EvaluateDue before the boundary should not fire")
	}
	k, due, ok := e.NextDue(7)
	if !ok || k != 1 || due != 2*time.Second {
		t.Fatalf("NextDue = (%d, %v, %v), want (1, 2s, true)", k, due, ok)
	}

	// At the boundary: node 0 (age 500 ms) is fresh; node 1 (age 1.8 s)
	// and node 2 (never sampled) are stale.
	res, ok := e.EvaluateDue(7, 2*time.Second)
	if !ok {
		t.Fatal("EvaluateDue at the boundary should fire")
	}
	if res.K != 1 || res.Due != 2*time.Second || res.EvaluatedAt != 2*time.Second {
		t.Errorf("period header = %d/%v/%v", res.K, res.Due, res.EvaluatedAt)
	}
	if res.Late || res.Lateness != 0 {
		t.Errorf("on-time evaluation marked late (%v)", res.Lateness)
	}
	if res.AreaNodes != 3 || res.StaleNodes != 2 || len(res.Nodes) != 1 || res.Nodes[0] != 0 {
		t.Errorf("area %d stale %d nodes %v, want 3/2/[0]", res.AreaNodes, res.StaleNodes, res.Nodes)
	}
	if res.MaxStaleness != 500*time.Millisecond {
		t.Errorf("MaxStaleness = %v, want 500ms", res.MaxStaleness)
	}
	// Node 0 sits at x=10 under the gradient: reading 10 + 10*1 = 20.
	if v := res.Data.Value(AggAvg); v != 20 {
		t.Errorf("aggregate = %v, want 20", v)
	}

	st, ok := e.Stats(7)
	if !ok {
		t.Fatal("Stats of temporal query missing")
	}
	if st.NextK != 2 || st.Evaluated != 1 || st.Late != 0 {
		t.Errorf("stats = %+v", st)
	}
	if !st.HasReading || st.LastReading != 1500*time.Millisecond {
		t.Errorf("last reading = %v/%v, want 1.5s/true", st.LastReading, st.HasReading)
	}
}

func TestEvaluateDueZeroFreshAcceptsAnyReading(t *testing.T) {
	e := temporalEngine(t)
	spec := TemporalSpec{Period: 2 * time.Second} // Fresh 0: unbounded window
	if err := e.RegisterTemporalE(9, 100, geom.Pt(0, 0), spec, 0); err != nil {
		t.Fatal(err)
	}
	res, ok := e.EvaluateDue(9, 2*time.Second)
	if !ok {
		t.Fatal("EvaluateDue should fire")
	}
	// Both sampled nodes contribute however old; the never-sampled node
	// still cannot.
	if len(res.Nodes) != 2 || res.StaleNodes != 1 {
		t.Fatalf("nodes %v stale %d, want [0 1] / 1", res.Nodes, res.StaleNodes)
	}
	if res.MaxStaleness != 1800*time.Millisecond {
		t.Errorf("MaxStaleness = %v, want 1.8s", res.MaxStaleness)
	}
}

func TestEvaluateDueDeadlineAccounting(t *testing.T) {
	e := temporalEngine(t)
	spec := TemporalSpec{Period: 2 * time.Second, Deadline: 100 * time.Millisecond, Fresh: time.Second}
	if err := e.RegisterTemporalE(3, 100, geom.Pt(0, 0), spec, 0); err != nil {
		t.Fatal(err)
	}
	// Jump straight to 6.05 s: periods 1 (due 2 s) and 2 (due 4 s) are
	// past the slack and late; period 3 (due 6 s) is within it.
	now := 6050 * time.Millisecond
	var got []WindowResult
	for {
		res, ok := e.EvaluateDue(3, now)
		if !ok {
			break
		}
		got = append(got, res)
	}
	if len(got) != 3 {
		t.Fatalf("evaluated %d periods, want 3", len(got))
	}
	wantLate := []struct {
		late     bool
		lateness time.Duration
	}{
		{true, 4050 * time.Millisecond},
		{true, 2050 * time.Millisecond},
		{false, 0},
	}
	for i, res := range got {
		if res.K != i+1 || res.Due != time.Duration(i+1)*2*time.Second {
			t.Errorf("period %d header = %d/%v", i, res.K, res.Due)
		}
		if res.Late != wantLate[i].late || res.Lateness != wantLate[i].lateness {
			t.Errorf("period %d late = %v/%v, want %v/%v",
				i, res.Late, res.Lateness, wantLate[i].late, wantLate[i].lateness)
		}
	}
	st, _ := e.Stats(3)
	if st.Evaluated != 3 || st.Late != 2 || st.NextK != 4 {
		t.Errorf("stats = %+v, want 3 evaluated / 2 late / next 4", st)
	}
}

func TestEvaluateDueNonTemporalAndUnknown(t *testing.T) {
	e := temporalEngine(t)
	e.Register(5, 100, geom.Pt(0, 0)) // plain instantaneous query
	if _, ok := e.EvaluateDue(5, time.Hour); ok {
		t.Error("EvaluateDue fired for a non-temporal query")
	}
	if _, _, ok := e.NextDue(5); ok {
		t.Error("NextDue answered for a non-temporal query")
	}
	if _, ok := e.Stats(5); ok {
		t.Error("Stats answered for a non-temporal query")
	}
	if _, ok := e.EvaluateDue(999, time.Hour); ok {
		t.Error("EvaluateDue fired for an unknown query")
	}
	if err := e.RegisterTemporalE(6, 100, geom.Pt(0, 0), TemporalSpec{}, 0); err == nil {
		t.Error("zero period should be rejected")
	}
}

// fakePlan is a scripted PrefetchPlan: boundaries in staged are ready at
// the boundary itself; boundaries before warmupUntil are warmup.
type fakePlan struct {
	staged      map[sim.Time]bool
	warmupUntil sim.Time
}

func (f fakePlan) PeriodStatus(due sim.Time) (sim.Time, bool, bool) {
	return due, f.staged[due], due < f.warmupUntil
}

// TestPerQuerySamplerOverridesGlobal pins the per-query sampler hook: a
// query with its own AreaSampler ignores the engine-global schedule, serves
// plan readings to the nodes the sampler marks, and counts them in
// Prefetched — while other queries keep the global schedule.
func TestPerQuerySamplerOverridesGlobal(t *testing.T) {
	e := temporalEngine(t)
	spec := TemporalSpec{Period: 2 * time.Second, Fresh: time.Second}
	if err := e.RegisterTemporalE(1, 100, geom.Pt(0, 0), spec, 0); err != nil {
		t.Fatal(err)
	}
	if err := e.RegisterTemporalE(2, 100, geom.Pt(0, 0), spec, 0); err != nil {
		t.Fatal(err)
	}
	// Query 1's sampler: nodes left of x=25 get a fresh prefetched reading
	// captured at the boundary; the rest are unsampled.
	ok := e.SetQuerySampler(1, func(id int32, pos geom.Point, at sim.Time) (sim.Time, bool, bool) {
		if pos.X < 25 {
			return at, true, true
		}
		return 0, false, false
	})
	if !ok {
		t.Fatal("SetQuerySampler rejected a temporal query")
	}

	res, ok := e.EvaluateDue(1, 2*time.Second)
	if !ok {
		t.Fatal("EvaluateDue should fire")
	}
	// Nodes 0 (x=10) and 1 (x=20) prefetched fresh; node 2 (x=30) unsampled.
	if res.Prefetched != 2 || len(res.Nodes) != 2 || res.StaleNodes != 1 {
		t.Errorf("prefetched/nodes/stale = %d/%d/%d, want 2/2/1", res.Prefetched, len(res.Nodes), res.StaleNodes)
	}
	if res.MaxStaleness != 0 {
		t.Errorf("boundary-captured readings should have zero staleness, got %v", res.MaxStaleness)
	}

	// Query 2 still sees the global schedule: only node 0 is fresh.
	res2, _ := e.EvaluateDue(2, 2*time.Second)
	if res2.Prefetched != 0 || len(res2.Nodes) != 1 || res2.StaleNodes != 2 {
		t.Errorf("global-sampler query: prefetched/nodes/stale = %d/%d/%d, want 0/1/2", res2.Prefetched, len(res2.Nodes), res2.StaleNodes)
	}

	// The hooks are temporal-only.
	e.Register(5, 100, geom.Pt(0, 0))
	if e.SetQuerySampler(5, nil) || e.SetQueryPlan(5, nil) {
		t.Error("per-query hooks accepted a non-temporal query")
	}
	if e.SetQuerySampler(99, nil) || e.SetQueryPlan(99, nil) {
		t.Error("per-query hooks accepted an unknown query")
	}
}

// fakeWarmer is a scripted CorridorWarmer: it serves the fixed node list
// (filtered to the evaluated circle) for boundaries in staged, and refuses
// everything else.
type fakeWarmer struct {
	staged map[sim.Time]bool
	nodes  []struct {
		id  int32
		pos geom.Point
	}
	serves, refusals int
}

func (f *fakeWarmer) VisitStaged(due sim.Time, center geom.Point, radius float64, fn func(id int32, pos geom.Point)) bool {
	if !f.staged[due] {
		f.refusals++
		return false
	}
	for _, n := range f.nodes {
		if n.pos.Dist2(center) <= radius*radius {
			fn(n.id, n.pos)
		}
	}
	f.serves++
	return true
}

// TestCorridorWarmerServesStagedBoundaries pins the warmer hook: a staged
// boundary is enumerated from the warmer's buffer (CorridorHit true) with
// results identical to the cold scan, an unstaged boundary falls back to
// the cold scan, and a query without a warmer never sets CorridorHit.
func TestCorridorWarmerServesStagedBoundaries(t *testing.T) {
	e := temporalEngine(t)
	spec := TemporalSpec{Period: 2 * time.Second, Fresh: 10 * time.Second}
	if err := e.RegisterTemporalE(1, 100, geom.Pt(0, 0), spec, 0); err != nil {
		t.Fatal(err)
	}
	if err := e.RegisterTemporalE(2, 100, geom.Pt(0, 0), spec, 0); err != nil {
		t.Fatal(err)
	}
	// The warmer's snapshot is exactly the grid's nodes — the contract a
	// real corridor cache proves with coverage and version checks.
	w := &fakeWarmer{staged: map[sim.Time]bool{2 * time.Second: true}}
	for _, n := range []struct {
		id int32
		x  float64
	}{{0, 10}, {1, 20}, {2, 30}} {
		w.nodes = append(w.nodes, struct {
			id  int32
			pos geom.Point
		}{n.id, geom.Pt(n.x, 0)})
	}
	if !e.SetQueryWarmer(1, w) {
		t.Fatal("SetQueryWarmer rejected a temporal query")
	}

	warm, ok := e.EvaluateDue(1, 2*time.Second)
	if !ok || !warm.CorridorHit {
		t.Fatalf("staged boundary not served warm (ok %v, hit %v)", ok, warm.CorridorHit)
	}
	cold, ok := e.EvaluateDue(2, 2*time.Second)
	if !ok || cold.CorridorHit {
		t.Fatalf("warmer-less query reported a corridor hit (ok %v)", ok)
	}
	if warm.AreaNodes != cold.AreaNodes || warm.StaleNodes != cold.StaleNodes ||
		len(warm.Nodes) != len(cold.Nodes) || warm.Data.Sum != cold.Data.Sum {
		t.Errorf("warm result diverged from cold: %+v vs %+v", warm, cold)
	}
	if w.serves != 1 {
		t.Errorf("warmer served %d boundaries, want 1", w.serves)
	}

	// Boundary 2 (due 4s) is not staged: cold fallback, no hit.
	fallback, ok := e.EvaluateDue(1, 4*time.Second)
	if !ok || fallback.CorridorHit {
		t.Fatalf("unstaged boundary reported a corridor hit (ok %v)", ok)
	}
	if w.refusals != 1 {
		t.Errorf("warmer refused %d boundaries, want 1", w.refusals)
	}

	// The hook is temporal-only, like the sampler and plan hooks.
	e.Register(5, 100, geom.Pt(0, 0))
	if e.SetQueryWarmer(5, w) || e.SetQueryWarmer(99, w) {
		t.Error("SetQueryWarmer accepted a non-temporal or unknown query")
	}
}

// TestWindowResultNodesReused pins the contributor-buffer contract: Nodes
// aliases a per-query scratch reused by the next EvaluateDue of the same
// query, so dense streaming allocates no fresh id slice per period.
func TestWindowResultNodesReused(t *testing.T) {
	e := temporalEngine(t)
	spec := TemporalSpec{Period: time.Second, Fresh: 10 * time.Second}
	if err := e.RegisterTemporalE(1, 100, geom.Pt(0, 0), spec, 0); err != nil {
		t.Fatal(err)
	}
	first, ok := e.EvaluateDue(1, 2*time.Second)
	if !ok || len(first.Nodes) == 0 {
		t.Fatalf("first period: ok %v, %d nodes", ok, len(first.Nodes))
	}
	second, ok := e.EvaluateDue(1, 2*time.Second)
	if !ok || len(second.Nodes) == 0 {
		t.Fatalf("second period: ok %v, %d nodes", ok, len(second.Nodes))
	}
	if &first.Nodes[0] != &second.Nodes[0] {
		t.Error("consecutive periods did not reuse the contributor buffer")
	}
}

// TestEvaluateDueCreditsStagedPeriods pins the plan hook in the deadline
// ledger: a period the plan staged by its boundary is accounted as
// evaluated at the boundary even when the clock tick collecting it runs
// late, while unstaged (warmup) periods keep tick accounting.
func TestEvaluateDueCreditsStagedPeriods(t *testing.T) {
	e := temporalEngine(t)
	spec := TemporalSpec{Period: 2 * time.Second, Deadline: 100 * time.Millisecond}
	if err := e.RegisterTemporalE(4, 100, geom.Pt(0, 0), spec, 0); err != nil {
		t.Fatal(err)
	}
	plan := fakePlan{
		staged:      map[sim.Time]bool{4 * time.Second: true, 6 * time.Second: true},
		warmupUntil: 4 * time.Second,
	}
	if !e.SetQueryPlan(4, plan) {
		t.Fatal("SetQueryPlan rejected a temporal query")
	}
	// The plan's chains cover the whole area: every reading is prefetched,
	// captured at the boundary (boundary credit requires actual coverage).
	e.SetQuerySampler(4, func(id int32, pos geom.Point, at sim.Time) (sim.Time, bool, bool) {
		return at, true, true
	})
	now := 6500 * time.Millisecond // all three periods collected in one step
	var got []WindowResult
	for {
		res, ok := e.EvaluateDue(4, now)
		if !ok {
			break
		}
		got = append(got, res)
	}
	if len(got) != 3 {
		t.Fatalf("evaluated %d periods, want 3", len(got))
	}
	// Period 1 (due 2s): unstaged warmup, evaluated at the tick, late.
	if !got[0].Late || got[0].EvaluatedAt != now || !got[0].Warmup {
		t.Errorf("warmup period = late %v / at %v / warmup %v, want late tick accounting", got[0].Late, got[0].EvaluatedAt, got[0].Warmup)
	}
	if got[0].Lateness != now-2*time.Second {
		t.Errorf("warmup lateness = %v, want %v", got[0].Lateness, now-2*time.Second)
	}
	// Periods 2 and 3 (due 4s, 6s): staged at their boundaries, on time.
	for i, res := range got[1:] {
		if res.Late || res.Lateness != 0 || res.Warmup {
			t.Errorf("staged period %d marked late (%v) or warmup (%v)", i+2, res.Lateness, res.Warmup)
		}
		if res.EvaluatedAt != res.Due {
			t.Errorf("staged period %d evaluated at %v, want its boundary %v", i+2, res.EvaluatedAt, res.Due)
		}
	}
	st, _ := e.Stats(4)
	if st.Late != 1 {
		t.Errorf("ledger late = %d, want 1", st.Late)
	}
}

// TestStagedCreditRequiresCoverage pins the prediction-miss rule: a plan
// that claims a period staged but whose chains served no reading to the
// actual (non-empty) query area gets no boundary credit — the answer was
// really assembled on demand at the tick, and the ledger says so.
func TestStagedCreditRequiresCoverage(t *testing.T) {
	e := temporalEngine(t)
	spec := TemporalSpec{Period: 2 * time.Second, Deadline: 100 * time.Millisecond}
	if err := e.RegisterTemporalE(8, 100, geom.Pt(0, 0), spec, 0); err != nil {
		t.Fatal(err)
	}
	// Staged per the plan, but the per-query sampler never marks a reading
	// prefetched — the chains went to a mispredicted area.
	e.SetQueryPlan(8, fakePlan{staged: map[sim.Time]bool{2 * time.Second: true}})
	e.SetQuerySampler(8, func(id int32, pos geom.Point, at sim.Time) (sim.Time, bool, bool) {
		return at, true, false
	})
	now := 2500 * time.Millisecond
	res, ok := e.EvaluateDue(8, now)
	if !ok {
		t.Fatal("EvaluateDue should fire")
	}
	if res.Prefetched != 0 || res.AreaNodes == 0 {
		t.Fatalf("setup broken: prefetched %d over %d area nodes", res.Prefetched, res.AreaNodes)
	}
	if res.EvaluatedAt != now || !res.Late || res.Lateness != now-2*time.Second {
		t.Errorf("uncovered staged period credited: at %v late %v (%v), want tick accounting", res.EvaluatedAt, res.Late, res.Lateness)
	}
	// Over an empty area the staged empty answer is the answer: credit.
	if err := e.RegisterTemporalE(9, 50, geom.Pt(900, 900), spec, 0); err != nil {
		t.Fatal(err)
	}
	e.SetQueryPlan(9, fakePlan{staged: map[sim.Time]bool{2 * time.Second: true}})
	res, ok = e.EvaluateDue(9, now)
	if !ok {
		t.Fatal("EvaluateDue should fire")
	}
	if res.AreaNodes != 0 || res.Late || res.EvaluatedAt != 2*time.Second {
		t.Errorf("empty-area staged period = %d nodes / late %v / at %v, want boundary credit", res.AreaNodes, res.Late, res.EvaluatedAt)
	}
}

func TestEvaluateDueDefaultSamplerIsInstantaneous(t *testing.T) {
	// Without a sampler the windowed path degenerates to the oracle:
	// readings taken at the boundary itself, nothing stale.
	e := NewQueryEngine(geom.Square(1000), 100, field.Uniform{Value: 42}, EngineConfig{})
	e.UpsertNode(0, geom.Pt(10, 0))
	e.UpsertNode(1, geom.Pt(20, 0))
	if err := e.RegisterTemporalE(1, 100, geom.Pt(0, 0), TemporalSpec{Period: time.Second, Fresh: time.Millisecond}, 0); err != nil {
		t.Fatal(err)
	}
	res, ok := e.EvaluateDue(1, time.Second)
	if !ok {
		t.Fatal("EvaluateDue should fire")
	}
	if len(res.Nodes) != 2 || res.StaleNodes != 0 || res.MaxStaleness != 0 {
		t.Errorf("instantaneous window = %d nodes / %d stale / %v staleness",
			len(res.Nodes), res.StaleNodes, res.MaxStaleness)
	}
	if v := res.Data.Value(AggAvg); v != 42 {
		t.Errorf("aggregate = %v, want 42", v)
	}
	if math.IsNaN(res.Data.Value(AggMin)) {
		t.Error("min of populated window is NaN")
	}
}
