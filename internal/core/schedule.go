package core

import (
	"math"
	"sync"
	"sync/atomic"

	"mobiquery/internal/sim"
)

// DueEntry is one scheduled period boundary: query ID's next result is due
// at Due.
type DueEntry struct {
	ID  uint32
	Due sim.Time
}

// dueLess orders entries by (Due, ID): a total order, so pops are
// deterministic regardless of insertion interleaving.
func dueLess(a, b DueEntry) bool {
	if a.Due != b.Due {
		return a.Due < b.Due
	}
	return a.ID < b.ID
}

// stripeEmpty is the published head of a stripe with no entries: later than
// any real due time, so the idle fast path skips the stripe with one load.
const stripeEmpty = math.MaxInt64

// scheduleStripe is one partition of the scheduler: the entries of every
// query id hashing to this stripe, in a 4-ary min-heap with a position map
// for O(log n) upsert and remove by id, behind the stripe's own leaf mutex.
// A 4-ary layout was chosen over the classic binary heap and over a
// hierarchical timing wheel after benchmarking (see BenchmarkSchedule* in
// schedule_test.go): the shallower tree does fewer cache-missing hops per
// sift than arity 2, and unlike a timing wheel it needs no tick cascading,
// imposes no resolution floor on periods, and pops in exactly the sorted
// order the deterministic k-way merge needs.
type scheduleStripe struct {
	mu   sync.Mutex
	heap []DueEntry
	pos  map[uint32]int // query id -> index in heap
	// head is the stripe's minimum due time (stripeEmpty when empty),
	// written only under mu and read lock-free by PopDue's idle fast path —
	// always authoritative for this stripe, so no cross-stripe coherence
	// protocol is needed.
	head atomic.Int64
	// drain is the stripe's popped-prefix scratch for PopDue's merge. It is
	// filled under mu and read after mu is released; the popper mutex
	// (Schedule.popMu) is what guards it across that window.
	drain []DueEntry
}

// Schedule is the due-period scheduler behind O(due) ticking: a priority
// queue of (Due, ID) pairs, one per live temporal query, ordered by due
// time with ties broken by ascending id. Advancing the clock pops exactly
// the queries whose next boundary has been reached — an idle tick peeks
// the per-stripe heads and returns, independent of how many queries are
// registered.
//
// The queue is striped: entries are partitioned by id across power-of-two
// stripes, each a heap behind its own leaf lock, so re-arm Upserts from
// parallel workers for different stripes never contend. PopDue restores
// the global (due, id) order with a deterministic k-way merge over the
// stripes' sorted due prefixes — output is element-wise identical for any
// stripe count (TestScheduleStripedMatchesSingle pins this), which is what
// keeps the service's delivery contract and digest pins stripe-blind.
//
// All methods are safe for concurrent use; stripe mutexes are leaf locks
// (nothing else is acquired under them), and poppers serialize on popMu.
type Schedule struct {
	stripes []scheduleStripe
	mask    uint32
	// popMu serializes PopDue's drain-and-merge (and guards cursors), so
	// concurrent poppers cannot interleave entries out of (due, id) order.
	// Upsert and Remove never take it.
	popMu   sync.Mutex
	cursors []mergeCursor
	// mergeDepth is the number of stripes that contributed entries to the
	// most recent non-empty PopDue — the merge's fan-in, a balance signal.
	mergeDepth atomic.Int64
}

// NewSchedule returns an empty single-stripe scheduler: the zero-contention
// layout, and the baseline the striped property tests compare against.
func NewSchedule() *Schedule {
	return NewScheduleStriped(1)
}

// maxScheduleStripes bounds the stripe count: beyond the registry's own 64
// stripes more partitions buy no concurrency, and the idle fast path scans
// one atomic per stripe.
const maxScheduleStripes = 64

// NewScheduleStriped returns an empty scheduler with at least n stripes,
// rounded up to a power of two and clamped to [1, 64]. Any stripe count
// yields identical PopDue output; n only tunes lock contention.
func NewScheduleStriped(n int) *Schedule {
	p := 1
	for p < n && p < maxScheduleStripes {
		p <<= 1
	}
	s := &Schedule{stripes: make([]scheduleStripe, p), mask: uint32(p - 1)}
	for i := range s.stripes {
		s.stripes[i].pos = make(map[uint32]int)
		s.stripes[i].head.Store(stripeEmpty)
	}
	return s
}

// StripeCount returns the number of stripes.
func (s *Schedule) StripeCount() int { return len(s.stripes) }

// stripeIndex maps a query id to its stripe. Exposed within the package so
// the engine's batched re-arm can bucket by stripe without re-hashing.
func (s *Schedule) stripeIndex(id uint32) int { return int(id & s.mask) }

func (s *Schedule) stripeFor(id uint32) *scheduleStripe {
	return &s.stripes[id&s.mask]
}

// Len returns the number of scheduled queries.
func (s *Schedule) Len() int {
	n := 0
	for i := range s.stripes {
		st := &s.stripes[i]
		st.mu.Lock()
		n += len(st.heap)
		st.mu.Unlock()
	}
	return n
}

// Upsert schedules (or reschedules) query id's next boundary at due.
func (s *Schedule) Upsert(id uint32, due sim.Time) {
	st := s.stripeFor(id)
	st.mu.Lock()
	st.upsert(id, due)
	st.publishHead()
	st.mu.Unlock()
}

// Remove drops query id from the schedule. Unknown ids are a no-op.
func (s *Schedule) Remove(id uint32) {
	st := s.stripeFor(id)
	st.mu.Lock()
	if i, ok := st.pos[id]; ok {
		st.removeAt(i)
		st.publishHead()
	}
	st.mu.Unlock()
}

// NextDue peeks the earliest scheduled boundary without popping it. ok is
// false when nothing is scheduled.
func (s *Schedule) NextDue() (DueEntry, bool) {
	var best DueEntry
	found := false
	for i := range s.stripes {
		st := &s.stripes[i]
		st.mu.Lock()
		if len(st.heap) > 0 && (!found || dueLess(st.heap[0], best)) {
			best, found = st.heap[0], true
		}
		st.mu.Unlock()
	}
	return best, found
}

// PopDue removes and returns every entry with Due <= now, appended to buf
// in ascending (Due, ID) order. Popped queries stay out of the schedule
// until rescheduled (EvaluateDue re-arms a query at its next boundary), so
// the caller owns driving each popped query forward. When nothing is due
// the call is a lock-free scan of the per-stripe heads: O(stripes), no
// allocation — this is what keeps an idle Advance independent of the
// subscriber count.
func (s *Schedule) PopDue(now sim.Time, buf []DueEntry) []DueEntry {
	due := false
	for i := range s.stripes {
		if s.stripes[i].head.Load() <= int64(now) {
			due = true
			break
		}
	}
	if !due {
		return buf
	}

	// Something is (or just was) due: drain each stripe's due prefix under
	// its leaf lock, then merge the sorted runs back into one (due, id)
	// stream. popMu serializes poppers and owns the drain/cursor scratch.
	s.popMu.Lock()
	defer s.popMu.Unlock()
	cur := s.cursors[:0]
	for i := range s.stripes {
		st := &s.stripes[i]
		st.mu.Lock()
		st.drain = st.drain[:0]
		for len(st.heap) > 0 && st.heap[0].Due <= now {
			st.drain = append(st.drain, st.heap[0])
			st.removeAt(0)
		}
		st.publishHead()
		st.mu.Unlock()
		if len(st.drain) > 0 {
			cur = append(cur, mergeCursor{entries: st.drain})
		}
	}
	s.cursors = cur
	if len(cur) == 0 {
		// The due entry was popped or removed between the head scan and the
		// drain (concurrent popper or Remove) — nothing left for us.
		return buf
	}
	s.mergeDepth.Store(int64(len(cur)))
	if len(cur) == 1 {
		return append(buf, cur[0].entries...)
	}
	return mergeDue(cur, buf)
}

// ScheduleStats is a point-in-time snapshot of the striped scheduler.
type ScheduleStats struct {
	// Stripes is the stripe count; Len the total number of scheduled
	// queries; StripeLens the per-stripe entry counts (balance).
	Stripes    int
	Len        int
	StripeLens []int
	// LastMergeDepth is how many stripes contributed entries to the most
	// recent non-empty PopDue — the k of its k-way merge.
	LastMergeDepth int
}

// Stats snapshots the scheduler. Each stripe is read under its own lock;
// the snapshot is per-stripe consistent, not globally atomic.
func (s *Schedule) Stats() ScheduleStats {
	var out ScheduleStats
	s.StatsInto(&out)
	return out
}

// StatsInto is Stats writing into a caller-owned snapshot, reusing its
// StripeLens capacity — the allocation-free form for periodic samplers
// (a metrics scrape, the /v1/stats handler) that snapshot on every call.
func (s *Schedule) StatsInto(out *ScheduleStats) {
	out.Stripes = len(s.stripes)
	out.Len = 0
	out.LastMergeDepth = int(s.mergeDepth.Load())
	out.StripeLens = out.StripeLens[:0]
	for i := range s.stripes {
		st := &s.stripes[i]
		st.mu.Lock()
		n := len(st.heap)
		st.mu.Unlock()
		out.StripeLens = append(out.StripeLens, n)
		out.Len += n
	}
}

// LastMergeDepth returns the stripe fan-in of the most recent non-empty
// PopDue — one atomic load, cheap enough for the per-tick metrics path
// where a full Stats snapshot (one lock hold per stripe) is not.
func (s *Schedule) LastMergeDepth() int { return int(s.mergeDepth.Load()) }

// mergeCursor is one stripe's sorted due run inside PopDue's k-way merge.
type mergeCursor struct {
	entries []DueEntry
	next    int
}

// mergeDue merges the cursors' sorted runs into buf in (due, id) order via
// a binary heap of cursors — O(total · log k) for k contributing stripes.
// Caller holds popMu (the cursors alias stripe drain scratch).
func mergeDue(cur []mergeCursor, buf []DueEntry) []DueEntry {
	less := func(a, b *mergeCursor) bool {
		return dueLess(a.entries[a.next], b.entries[b.next])
	}
	sift := func(i, n int) {
		for {
			min := i
			if l := 2*i + 1; l < n && less(&cur[l], &cur[min]) {
				min = l
			}
			if r := 2*i + 2; r < n && less(&cur[r], &cur[min]) {
				min = r
			}
			if min == i {
				return
			}
			cur[i], cur[min] = cur[min], cur[i]
			i = min
		}
	}
	n := len(cur)
	for i := n/2 - 1; i >= 0; i-- {
		sift(i, n)
	}
	for n > 0 {
		c := &cur[0]
		buf = append(buf, c.entries[c.next])
		c.next++
		if c.next == len(c.entries) {
			cur[0] = cur[n-1]
			n--
		}
		sift(0, n)
	}
	return buf
}

// publishHead republishes the stripe's minimum due for the lock-free idle
// scan. Caller holds st.mu.
func (st *scheduleStripe) publishHead() {
	if len(st.heap) == 0 {
		st.head.Store(stripeEmpty)
		return
	}
	st.head.Store(int64(st.heap[0].Due))
}

// upsert schedules (or reschedules) id at due within this stripe. Caller
// holds st.mu and republishes the head afterwards — batched re-arms upsert
// many entries under one lock hold and publish once.
func (st *scheduleStripe) upsert(id uint32, due sim.Time) {
	if i, ok := st.pos[id]; ok {
		old := st.heap[i].Due
		st.heap[i].Due = due
		if due < old {
			st.siftUp(i)
		} else if due > old {
			st.siftDown(i)
		}
		return
	}
	st.heap = append(st.heap, DueEntry{ID: id, Due: due})
	i := len(st.heap) - 1
	st.pos[id] = i
	st.siftUp(i)
}

// removeAt deletes the entry at heap index i. Caller holds st.mu.
func (st *scheduleStripe) removeAt(i int) {
	last := len(st.heap) - 1
	delete(st.pos, st.heap[i].ID)
	if i != last {
		moved := st.heap[last]
		st.heap[i] = moved
		st.pos[moved.ID] = i
	}
	st.heap = st.heap[:last]
	if i < last {
		// The displaced entry may belong above or below its new slot.
		st.siftDown(i)
		st.siftUp(i)
	}
}

// arity is the heap branching factor.
const arity = 4

func (st *scheduleStripe) siftUp(i int) {
	e := st.heap[i]
	for i > 0 {
		parent := (i - 1) / arity
		if !dueLess(e, st.heap[parent]) {
			break
		}
		st.heap[i] = st.heap[parent]
		st.pos[st.heap[i].ID] = i
		i = parent
	}
	st.heap[i] = e
	st.pos[e.ID] = i
}

func (st *scheduleStripe) siftDown(i int) {
	n := len(st.heap)
	e := st.heap[i]
	for {
		first := i*arity + 1
		if first >= n {
			break
		}
		min := first
		end := first + arity
		if end > n {
			end = n
		}
		for c := first + 1; c < end; c++ {
			if dueLess(st.heap[c], st.heap[min]) {
				min = c
			}
		}
		if !dueLess(st.heap[min], e) {
			break
		}
		st.heap[i] = st.heap[min]
		st.pos[st.heap[i].ID] = i
		i = min
	}
	st.heap[i] = e
	st.pos[e.ID] = i
}
