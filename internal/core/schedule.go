package core

import (
	"sync"

	"mobiquery/internal/sim"
)

// DueEntry is one scheduled period boundary: query ID's next result is due
// at Due.
type DueEntry struct {
	ID  uint32
	Due sim.Time
}

// Schedule is the due-period scheduler behind O(due) ticking: a priority
// queue of (Due, ID) pairs, one per live temporal query, ordered by due
// time with ties broken by ascending id. Advancing the clock pops exactly
// the queries whose next boundary has been reached — an idle tick peeks
// the minimum and returns, independent of how many queries are registered.
//
// The implementation is a 4-ary min-heap with a position map for O(log n)
// upsert and remove by id. A 4-ary layout was chosen over the classic
// binary heap and over a hierarchical timing wheel after benchmarking
// (see BenchmarkSchedule* in schedule_test.go): the shallower tree does
// fewer cache-missing hops per sift than arity 2, and unlike a timing
// wheel it needs no tick cascading, imposes no resolution floor on
// periods, and pops in exactly the (due, id) order the service's
// deterministic delivery contract requires — a wheel's buckets would need
// a per-tick sort to match it.
//
// All methods are safe for concurrent use; the heap mutex is a leaf lock
// (nothing else is acquired under it).
type Schedule struct {
	mu   sync.Mutex
	heap []DueEntry
	pos  map[uint32]int // query id -> index in heap
}

// NewSchedule returns an empty scheduler.
func NewSchedule() *Schedule {
	return &Schedule{pos: make(map[uint32]int)}
}

// Len returns the number of scheduled queries.
func (s *Schedule) Len() int {
	s.mu.Lock()
	defer s.mu.Unlock()
	return len(s.heap)
}

// less orders entries by (Due, ID): a total order, so heap pops are
// deterministic regardless of insertion interleaving.
func (s *Schedule) less(a, b DueEntry) bool {
	if a.Due != b.Due {
		return a.Due < b.Due
	}
	return a.ID < b.ID
}

// Upsert schedules (or reschedules) query id's next boundary at due.
func (s *Schedule) Upsert(id uint32, due sim.Time) {
	s.mu.Lock()
	defer s.mu.Unlock()
	if i, ok := s.pos[id]; ok {
		old := s.heap[i].Due
		s.heap[i].Due = due
		if due < old {
			s.siftUp(i)
		} else if due > old {
			s.siftDown(i)
		}
		return
	}
	s.heap = append(s.heap, DueEntry{ID: id, Due: due})
	i := len(s.heap) - 1
	s.pos[id] = i
	s.siftUp(i)
}

// Remove drops query id from the schedule. Unknown ids are a no-op.
func (s *Schedule) Remove(id uint32) {
	s.mu.Lock()
	defer s.mu.Unlock()
	i, ok := s.pos[id]
	if !ok {
		return
	}
	s.removeAt(i)
}

// NextDue peeks the earliest scheduled boundary without popping it. ok is
// false when nothing is scheduled.
func (s *Schedule) NextDue() (DueEntry, bool) {
	s.mu.Lock()
	defer s.mu.Unlock()
	if len(s.heap) == 0 {
		return DueEntry{}, false
	}
	return s.heap[0], true
}

// PopDue removes and returns every entry with Due <= now, appended to buf
// in ascending (Due, ID) order. Popped queries stay out of the schedule
// until rescheduled (EvaluateDue re-arms a query at its next boundary), so
// the caller owns driving each popped query forward. When nothing is due
// the call is a peek: O(1), no allocation.
func (s *Schedule) PopDue(now sim.Time, buf []DueEntry) []DueEntry {
	s.mu.Lock()
	defer s.mu.Unlock()
	for len(s.heap) > 0 && s.heap[0].Due <= now {
		buf = append(buf, s.heap[0])
		s.removeAt(0)
	}
	return buf
}

// removeAt deletes the entry at heap index i. Caller holds s.mu.
func (s *Schedule) removeAt(i int) {
	last := len(s.heap) - 1
	delete(s.pos, s.heap[i].ID)
	if i != last {
		moved := s.heap[last]
		s.heap[i] = moved
		s.pos[moved.ID] = i
	}
	s.heap = s.heap[:last]
	if i < last {
		// The displaced entry may belong above or below its new slot.
		s.siftDown(i)
		s.siftUp(i)
	}
}

// arity is the heap branching factor.
const arity = 4

func (s *Schedule) siftUp(i int) {
	e := s.heap[i]
	for i > 0 {
		parent := (i - 1) / arity
		if !s.less(e, s.heap[parent]) {
			break
		}
		s.heap[i] = s.heap[parent]
		s.pos[s.heap[i].ID] = i
		i = parent
	}
	s.heap[i] = e
	s.pos[e.ID] = i
}

func (s *Schedule) siftDown(i int) {
	n := len(s.heap)
	e := s.heap[i]
	for {
		first := i*arity + 1
		if first >= n {
			break
		}
		min := first
		end := first + arity
		if end > n {
			end = n
		}
		for c := first + 1; c < end; c++ {
			if s.less(s.heap[c], s.heap[min]) {
				min = c
			}
		}
		if !s.less(s.heap[min], e) {
			break
		}
		s.heap[i] = s.heap[min]
		s.pos[s.heap[i].ID] = i
		i = min
	}
	s.heap[i] = e
	s.pos[e.ID] = i
}
