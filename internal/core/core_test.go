package core

import (
	"math"
	"testing"
	"testing/quick"
	"time"

	"mobiquery/internal/field"
	"mobiquery/internal/geom"
	"mobiquery/internal/mac"
	"mobiquery/internal/mobility"
	"mobiquery/internal/netstack"
	"mobiquery/internal/radio"
	"mobiquery/internal/sim"
)

func sec(s float64) sim.Time { return sim.Time(s * float64(time.Second)) }

func TestAggKind(t *testing.T) {
	names := map[AggKind]string{
		AggCount: "count", AggSum: "sum", AggMin: "min", AggMax: "max", AggAvg: "avg",
	}
	for k, want := range names {
		if k.String() != want || !k.Valid() {
			t.Errorf("AggKind %d: String=%q Valid=%v", k, k.String(), k.Valid())
		}
	}
	if AggKind(0).Valid() || AggKind(99).Valid() {
		t.Error("invalid kinds reported valid")
	}
	if AggKind(99).String() != "AggKind(99)" {
		t.Errorf("unknown kind String = %q", AggKind(99).String())
	}
}

func validSpec() QuerySpec {
	return QuerySpec{
		Agg:      AggAvg,
		Radius:   150,
		Period:   2 * time.Second,
		Fresh:    time.Second,
		Lifetime: 60 * time.Second,
	}
}

func TestQuerySpecValidate(t *testing.T) {
	if err := validSpec().Validate(); err != nil {
		t.Fatalf("valid spec rejected: %v", err)
	}
	tests := []struct {
		name string
		mut  func(*QuerySpec)
	}{
		{"bad agg", func(s *QuerySpec) { s.Agg = 0 }},
		{"zero radius", func(s *QuerySpec) { s.Radius = 0 }},
		{"zero period", func(s *QuerySpec) { s.Period = 0 }},
		{"zero fresh", func(s *QuerySpec) { s.Fresh = 0 }},
		{"fresh exceeds period", func(s *QuerySpec) { s.Fresh = 3 * time.Second }},
		{"lifetime under period", func(s *QuerySpec) { s.Lifetime = time.Second }},
	}
	for _, tt := range tests {
		t.Run(tt.name, func(t *testing.T) {
			s := validSpec()
			tt.mut(&s)
			if s.Validate() == nil {
				t.Error("want validation error")
			}
		})
	}
}

func TestQuerySpecPeriodsAndDeadline(t *testing.T) {
	s := validSpec()
	if got := s.Periods(); got != 30 {
		t.Errorf("Periods = %d, want 30", got)
	}
	if got := s.Deadline(sec(0.5), 3); got != sec(6.5) {
		t.Errorf("Deadline(3) = %v, want 6.5s", got)
	}
}

func TestPartialAggregation(t *testing.T) {
	p := NewPartial()
	p.AddReading(1, 10)
	p.AddReading(2, 30)
	q := NewPartial()
	q.AddReading(3, 20)
	p.Merge(q)

	if p.Count != 3 {
		t.Errorf("Count = %d", p.Count)
	}
	if got := p.Value(AggCount); got != 3 {
		t.Errorf("count = %v", got)
	}
	if got := p.Value(AggSum); got != 60 {
		t.Errorf("sum = %v", got)
	}
	if got := p.Value(AggAvg); got != 20 {
		t.Errorf("avg = %v", got)
	}
	if got := p.Value(AggMin); got != 10 {
		t.Errorf("min = %v", got)
	}
	if got := p.Value(AggMax); got != 30 {
		t.Errorf("max = %v", got)
	}
	if len(p.Contribs) != 3 {
		t.Errorf("contribs = %v", p.Contribs)
	}
}

func TestPartialEmptyValues(t *testing.T) {
	p := NewPartial()
	if got := p.Value(AggCount); got != 0 {
		t.Errorf("empty count = %v", got)
	}
	for _, k := range []AggKind{AggMin, AggMax, AggAvg} {
		if got := p.Value(k); !math.IsNaN(got) {
			t.Errorf("empty %v = %v, want NaN", k, got)
		}
	}
	if got := p.Value(AggKind(77)); !math.IsNaN(got) {
		t.Errorf("unknown agg = %v, want NaN", got)
	}
}

func TestQuickPartialMergeConsistency(t *testing.T) {
	// Merging partials in any split yields the same aggregate as folding
	// all readings into one.
	f := func(vals []float64, split uint8) bool {
		if len(vals) == 0 {
			return true
		}
		cut := int(split) % len(vals)
		a, b := NewPartial(), NewPartial()
		all := NewPartial()
		for i, v := range vals {
			v = math.Mod(v, 1e6)
			if math.IsNaN(v) {
				v = 0
			}
			all.AddReading(radio.NodeID(i), v)
			if i < cut {
				a.AddReading(radio.NodeID(i), v)
			} else {
				b.AddReading(radio.NodeID(i), v)
			}
		}
		a.Merge(b)
		return a.Count == all.Count &&
			math.Abs(a.Sum-all.Sum) < 1e-9*(1+math.Abs(all.Sum)) &&
			a.Min == all.Min && a.Max == all.Max
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Error(err)
	}
}

func TestSchemeString(t *testing.T) {
	if SchemeJIT.String() != "MQ-JIT" || SchemeGP.String() != "MQ-GP" || SchemeNP.String() != "NP" {
		t.Error("scheme labels wrong")
	}
	if Scheme(9).String() != "Scheme(9)" {
		t.Error("unknown scheme label wrong")
	}
}

func TestConfigValidate(t *testing.T) {
	cfg := DefaultConfig(validSpec())
	if err := cfg.Validate(); err != nil {
		t.Fatalf("default config rejected: %v", err)
	}
	tests := []struct {
		name string
		mut  func(*Config)
	}{
		{"bad scheme", func(c *Config) { c.Scheme = 0 }},
		{"zero pickup radius", func(c *Config) { c.PickupRadius = 0 }},
		{"negative scope margin", func(c *Config) { c.ScopeMargin = -1 }},
		{"collector margin too large", func(c *Config) { c.CollectorMargin = 2 * time.Second }},
		{"flush under collector margin", func(c *Config) { c.FlushMargin = c.CollectorMargin / 2 }},
		{"zero leaf awake", func(c *Config) { c.LeafAwake = 0 }},
		{"negative forward lead", func(c *Config) { c.ForwardLead = -time.Second }},
	}
	for _, tt := range tests {
		t.Run(tt.name, func(t *testing.T) {
			c := DefaultConfig(validSpec())
			tt.mut(&c)
			if c.Validate() == nil {
				t.Error("want validation error")
			}
		})
	}
}

func TestGate(t *testing.T) {
	var g gate
	if g.stale(1, 5) {
		t.Error("zero gate should pass everything")
	}
	g = g.advance(2, 10)
	if !g.stale(1, 10) || !g.stale(1, 50) {
		t.Error("older version at/after fromK should be stale")
	}
	if g.stale(1, 9) {
		t.Error("older version before fromK remains valid")
	}
	if g.stale(2, 10) || g.stale(3, 0) {
		t.Error("current/newer versions are never stale")
	}
	// Same version with smaller fromK widens the gate.
	g = g.advance(2, 7)
	if !g.stale(1, 8) {
		t.Error("advance with lower fromK should widen")
	}
	// Older announcements don't regress the gate.
	g = g.advance(1, 0)
	if g.version != 2 {
		t.Error("advance must not regress the version")
	}
}

// rig builds a tiny deterministic network: a 3x3 backbone grid spanning the
// query area plus duty-cycled leaves, a stationary or moving user, and a
// MobiQuery service.
type rig struct {
	eng    *sim.Engine
	nw     *netstack.Network
	svc    *Service
	course mobility.Course
}

// buildRig assembles the test network. leaves maps node ids to positions.
func buildRig(t *testing.T, scheme Scheme, course mobility.Course, profiler mobility.Profiler, sleep time.Duration, lifetime time.Duration, hooks Hooks) *rig {
	t.Helper()
	eng := sim.NewEngine(7)
	nw := netstack.NewNetwork(eng, geom.Square(450), radio.DefaultParams(), mac.DefaultConfig(sleep))
	id := radio.NodeID(0)
	// Backbone grid at 80 m spacing covering the course area.
	for y := 60.0; y <= 380; y += 80 {
		for x := 60.0; x <= 380; x += 80 {
			nw.AddNode(id, geom.Pt(x, y), mac.RoleAlwaysOn)
			id++
		}
	}
	// Duty-cycled leaves offset from the grid.
	for y := 100.0; y <= 340; y += 80 {
		for x := 100.0; x <= 340; x += 80 {
			nw.AddNode(id, geom.Pt(x, y), mac.RoleDutyCycled)
			id++
		}
	}
	proxyID := id
	nw.AddProxy(proxyID, course.PosAt(0))
	spec := validSpec()
	spec.Lifetime = lifetime
	cfg := DefaultConfig(spec)
	cfg.Scheme = scheme
	svc := New(nw, cfg, field.Gradient{Slope: geom.V(0.1, 0), Base: 20}, course, profiler, proxyID, hooks)
	nw.Start()
	svc.Start()
	return &rig{eng: eng, nw: nw, svc: svc, course: course}
}

func stationaryCourse(p geom.Point) mobility.Course {
	return mobility.Course{Trajectory: mobility.Stationary(p, 0)}
}

func TestJITStationaryUserDeliversFreshResults(t *testing.T) {
	course := stationaryCourse(geom.Pt(220, 220))
	r := buildRig(t, SchemeJIT, course, mobility.OracleProfiler{Course: course}, 9*time.Second, 30*time.Second, Hooks{})
	r.eng.Run(35 * time.Second)

	results := r.svc.Results()
	if len(results) != 15 {
		t.Fatalf("got %d period results, want 15", len(results))
	}
	for _, pr := range results {
		if !pr.Received || !pr.OnTime {
			t.Errorf("k=%d: received=%v onTime=%v", pr.K, pr.Received, pr.OnTime)
			continue
		}
		if pr.Arrival > pr.Deadline {
			t.Errorf("k=%d arrived %v after deadline %v", pr.K, pr.Arrival, pr.Deadline)
		}
		if pr.Data.Count == 0 {
			t.Errorf("k=%d: empty aggregate", pr.K)
		}
		// The gradient field at x=220 averages near 42 over the area.
		avg := pr.Data.Value(AggAvg)
		if avg < 30 || avg > 55 {
			t.Errorf("k=%d: avg = %v, implausible for the gradient field", pr.K, avg)
		}
	}
	// After warmup every backbone node and leaf in the area contributes.
	last := results[len(results)-1]
	if last.Data.Count < 20 {
		t.Errorf("steady-state aggregate has only %d contributors", last.Data.Count)
	}
}

func TestFreshnessInvariant(t *testing.T) {
	// Every contributing reading is sampled no earlier than deadline-Tfresh:
	// by construction samples happen at deadline-Tfresh or later, so the
	// result's arrival minus Tfresh bounds every sample age. Verify via
	// latency: arrival <= deadline and sampling >= deadline-Tfresh means
	// age <= Tfresh at arrival.
	course := stationaryCourse(geom.Pt(220, 220))
	r := buildRig(t, SchemeJIT, course, mobility.OracleProfiler{Course: course}, 3*time.Second, 20*time.Second, Hooks{})
	r.eng.Run(25 * time.Second)
	for _, pr := range r.svc.Results() {
		if pr.Received && pr.Arrival > pr.Deadline {
			t.Errorf("k=%d: late arrival violates the deadline/freshness pair", pr.K)
		}
	}
}

func TestStorageBoundJIT(t *testing.T) {
	// The number of distinct live periods never exceeds PLjit =
	// ceil((Tsleep+2*Tfresh)/Tperiod) + 1 (+1 tolerance for teardown lag).
	course := stationaryCourse(geom.Pt(220, 220))
	live := make(map[int]int)
	maxLive := 0
	hooks := Hooks{
		OnTreeUp: func(_ radio.NodeID, k int, _ sim.Time) {
			live[k]++
			if len(live) > maxLive {
				maxLive = len(live)
			}
		},
		OnTreeDown: func(_ radio.NodeID, k int, _ sim.Time) {
			live[k]--
			if live[k] <= 0 {
				delete(live, k)
			}
		},
	}
	sleep := 9 * time.Second
	r := buildRig(t, SchemeJIT, course, mobility.OracleProfiler{Course: course}, sleep, 40*time.Second, hooks)
	r.eng.Run(45 * time.Second)

	pljit := int(math.Ceil(float64(sleep+2*time.Second)/float64(2*time.Second))) + 1
	if maxLive > pljit+1 {
		t.Errorf("max live periods = %d exceeds PLjit bound %d", maxLive, pljit+1)
	}
	if maxLive < 2 {
		t.Errorf("max live periods = %d, prefetching apparently inactive", maxLive)
	}
}

func TestGPBuildsAllTreesUpFront(t *testing.T) {
	course := stationaryCourse(geom.Pt(220, 220))
	maxK := 0
	var atTime sim.Time
	hooks := Hooks{OnTreeUp: func(_ radio.NodeID, k int, at sim.Time) {
		if k > maxK {
			maxK, atTime = k, at
		}
	}}
	r := buildRig(t, SchemeGP, course, mobility.OracleProfiler{Course: course}, 9*time.Second, 30*time.Second, hooks)
	r.eng.Run(35 * time.Second)
	if maxK < 15 {
		t.Fatalf("greedy prefetching built trees only up to k=%d", maxK)
	}
	if atTime > sec(5) {
		t.Errorf("greedy chain took %v to reach the last area; should be near-instant", atTime)
	}
}

func TestNPBaselineDegradesWithSleep(t *testing.T) {
	course := stationaryCourse(geom.Pt(220, 220))
	success := func(sleep time.Duration) float64 {
		r := buildRig(t, SchemeNP, course, mobility.OracleProfiler{Course: course}, sleep, 40*time.Second, Hooks{})
		r.eng.Run(45 * time.Second)
		ok := 0
		for _, pr := range r.svc.Results() {
			if pr.Received && pr.OnTime && pr.Data.Count >= 20 {
				ok++
			}
		}
		return float64(ok) / 20
	}
	short := success(3 * time.Second)
	long := success(15 * time.Second)
	if short < long {
		t.Errorf("NP at sleep 3s (%.2f) should beat sleep 15s (%.2f)", short, long)
	}
	if long > 0.5 {
		t.Errorf("NP at sleep 15s = %.2f, should be poor", long)
	}
}

func TestCancelOnMotionChangePreservesValidPrefix(t *testing.T) {
	// A user walking straight, with a profile change mid-run that predicts
	// the same path (version bump without divergence): results must not
	// degrade around the change.
	path := mobility.LinearPath(geom.Pt(100, 220), geom.V(4, 0), 0, sec(40))
	course := mobility.Course{Trajectory: path, Changes: []sim.Time{sec(20)}}
	profiler := mobility.ExactProfiler{Course: course, Ta: 6 * time.Second}
	r := buildRig(t, SchemeJIT, course, profiler, 3*time.Second, 36*time.Second, Hooks{})
	r.eng.Run(42 * time.Second)

	missed := 0
	for _, pr := range r.svc.Results() {
		if pr.K <= 4 {
			continue // warmup
		}
		if !pr.Received || !pr.OnTime || pr.Data.Count < 10 {
			missed++
		}
	}
	if missed > 2 {
		t.Errorf("%d degraded periods around a benign profile change", missed)
	}
}

func TestResultsOrderedAndComplete(t *testing.T) {
	course := stationaryCourse(geom.Pt(220, 220))
	r := buildRig(t, SchemeJIT, course, mobility.OracleProfiler{Course: course}, 3*time.Second, 20*time.Second, Hooks{})
	r.eng.Run(25 * time.Second)
	results := r.svc.Results()
	for i, pr := range results {
		if pr.K != i+1 {
			t.Fatalf("results out of order at %d: k=%d", i, pr.K)
		}
	}
}

func TestServiceStartTwicePanics(t *testing.T) {
	course := stationaryCourse(geom.Pt(220, 220))
	r := buildRig(t, SchemeJIT, course, mobility.OracleProfiler{Course: course}, 3*time.Second, 20*time.Second, Hooks{})
	defer func() {
		if recover() == nil {
			t.Error("second Start should panic")
		}
	}()
	r.svc.Start()
}

func TestNewPanicsWithoutProxy(t *testing.T) {
	eng := sim.NewEngine(1)
	nw := netstack.NewNetwork(eng, geom.Square(450), radio.DefaultParams(), mac.DefaultConfig(3*time.Second))
	nw.AddNode(0, geom.Pt(10, 10), mac.RoleAlwaysOn)
	course := stationaryCourse(geom.Pt(220, 220))
	defer func() {
		if recover() == nil {
			t.Error("New with missing proxy should panic")
		}
	}()
	New(nw, DefaultConfig(validSpec()), field.Uniform{}, course, mobility.OracleProfiler{Course: course}, 99, Hooks{})
}

func TestLiveTrees(t *testing.T) {
	course := stationaryCourse(geom.Pt(220, 220))
	r := buildRig(t, SchemeJIT, course, mobility.OracleProfiler{Course: course}, 9*time.Second, 30*time.Second, Hooks{})
	r.eng.Run(10 * time.Second)
	total := 0
	for _, id := range r.nw.NodeIDs() {
		total += r.svc.LiveTrees(id)
	}
	if total == 0 {
		t.Error("no live trees mid-session")
	}
	if r.svc.LiveTrees(9999) != 0 {
		t.Error("unknown node should hold no trees")
	}
}

func TestCircleOverlap(t *testing.T) {
	if got := circleOverlap(0, 150); got != 1 {
		t.Errorf("coincident overlap = %v", got)
	}
	if got := circleOverlap(300, 150); got != 0 {
		t.Errorf("disjoint overlap = %v", got)
	}
	if got := circleOverlap(400, 150); got != 0 {
		t.Errorf("far disjoint overlap = %v", got)
	}
	mid := circleOverlap(150, 150)
	if mid <= 0.3 || mid >= 0.5 {
		t.Errorf("overlap at d=r should be ~0.39, got %v", mid)
	}
	// Monotonically decreasing in distance.
	prev := 1.0
	for d := 10.0; d < 320; d += 10 {
		cur := circleOverlap(d, 150)
		if cur > prev+1e-12 {
			t.Fatalf("overlap not monotone at d=%v", d)
		}
		prev = cur
	}
}

func TestCancelPreservesPreChangePeriods(t *testing.T) {
	// A sharp 90-degree turn at 20s with profiles delivered at the change
	// (Ta=0). Trees for periods before the turn belong to the old profile's
	// still-valid prefix and must not be torn down; only state at or after
	// the new profile's first period may go.
	wps := []mobility.Waypoint{
		{T: 0, P: geom.Pt(100, 220)},
		{T: sec(20), P: geom.Pt(180, 220)},
		{T: sec(40), P: geom.Pt(180, 300)},
	}
	course := mobility.Course{
		Trajectory: mobility.NewTrajectory(wps),
		Changes:    []sim.Time{sec(20)},
	}
	profiler := mobility.ExactProfiler{Course: course, Ta: 0}

	var tearDowns []int // period indices torn down before their deadline
	hooks := Hooks{}
	r := buildRig(t, SchemeJIT, course, profiler, 3*time.Second, 36*time.Second, hooks)

	// Count teardowns that happen well before the period's own deadline
	// (natural teardown fires TeardownGrace after it).
	downBefore := make(map[int]sim.Time)
	_ = downBefore
	r.svc.hooks.h.OnTreeDown = func(_ radio.NodeID, k int, at sim.Time) {
		deadline := r.svc.cfg.Spec.Deadline(r.svc.cfg.T0, k)
		if at < deadline-time.Second {
			tearDowns = append(tearDowns, k)
		}
	}
	r.eng.Run(42 * time.Second)

	// The change at 20s is period k ~ (20-0.5)/2 = ~10. No tree for a
	// period with deadline before the change may be canceled early.
	for _, k := range tearDowns {
		deadline := r.svc.cfg.Spec.Deadline(r.svc.cfg.T0, k)
		if deadline <= sec(20) {
			t.Errorf("tree for pre-change period k=%d (deadline %v) was torn down early", k, deadline)
		}
	}
	// And results across the turn stay intact (modulo warmup right after).
	for _, pr := range r.svc.Results() {
		if pr.K >= 5 && pr.K <= 9 && (!pr.Received || !pr.OnTime) {
			t.Errorf("pre-turn period k=%d lost", pr.K)
		}
	}
}
