package core

import (
	"mobiquery/internal/geom"
	"mobiquery/internal/mobility"
	"mobiquery/internal/netstack"
	"mobiquery/internal/radio"
	"mobiquery/internal/sim"
)

// Protocol ports.
const (
	portPrefetch    netstack.Port = 10 // geo-routed prefetch messages
	portSetup       netstack.Port = 11 // query-tree setup floods
	portRecruit     netstack.Port = 12 // active-window leaf recruitment
	portReport      netstack.Port = 13 // data reports up the tree
	portResult      netstack.Port = 14 // final result to the proxy
	portResultRelay netstack.Port = 15 // geo relay of results toward the user
	portCancel      netstack.Port = 16 // prefetch cancellation chase
)

// On-air payload sizes in bytes. The prefetch size matches the paper's
// Section 5.2 example (60 bytes).
const (
	prefetchSize    = 60
	setupSize       = 40
	recruitBaseSize = 24
	recruitPerEntry = 12
	reportSize      = 36
	resultSize      = 36
	cancelSize      = 16
)

// prefetchMsg forewarns the collector near pickup point K. It carries the
// query spec and the motion profile, as in the paper's design.
//
// FromK is the first period this profile version is responsible for; state
// from older versions remains valid for earlier periods (the old profile is
// still in effect before the motion change it predicts). UpToK, when
// non-zero, caps the chain: a superseded chain keeps serving periods below
// the new version's FromK and stops there.
type prefetchMsg struct {
	QueryID uint32
	Version int
	K       int
	FromK   int
	UpToK   int // exclusive; 0 = query lifetime
	Scheme  Scheme
	Pickup  geom.Point
	T0      sim.Time
	Spec    QuerySpec
	Profile mobility.Profile
}

// setupMsg builds the query tree for period K, flooded inside the query
// area (plus a router margin) by the collector.
type setupMsg struct {
	QueryID  uint32
	Version  int
	K        int
	Root     radio.NodeID
	RootPos  geom.Point
	Pickup   geom.Point
	Deadline sim.Time
	Spec     QuerySpec
}

// recruitEntry invites sleeping nodes into one pending query tree.
type recruitEntry struct {
	QueryID  uint32
	Version  int
	K        int
	Pickup   geom.Point
	Radius   float64
	SampleAt sim.Time
	Deadline sim.Time
}

// recruitMsg is the per-active-window batched leaf recruitment broadcast.
// The sender is the prospective parent.
type recruitMsg struct {
	Entries []recruitEntry
}

// size returns the on-air size of the batch.
func (m recruitMsg) size() int { return recruitBaseSize + recruitPerEntry*len(m.Entries) }

// reportMsg carries a partial aggregate toward the collector.
type reportMsg struct {
	QueryID uint32
	Version int
	K       int
	Data    Partial
}

// resultMsg is the aggregated query result travelling from the collector to
// the proxy. Pickup identifies the area the aggregate covers (the query
// area is the circle of radius Rq around it), letting the gateway judge how
// well a result matches its actual position.
type resultMsg struct {
	QueryID    uint32
	Version    int
	K          int
	Root       radio.NodeID
	Pickup     geom.Point
	Data       Partial
	Dispatched sim.Time
	Relayed    bool // one geographic relay attempt has been spent
}

// cancelMsg chases a superseded prefetch chain: state with version below
// NewVersion is torn down for periods at or after FromK. Earlier periods
// belong to the still-valid prefix of the old motion profile.
type cancelMsg struct {
	QueryID    uint32
	NewVersion int
	FromK      int
}
