package core

import (
	"math"
	"math/rand"
	"sync"
	"testing"
	"time"

	"mobiquery/internal/field"
	"mobiquery/internal/geom"
	"mobiquery/internal/radio"
)

func testEngine(cfg EngineConfig) *QueryEngine {
	return NewQueryEngine(geom.Square(1000), 100, field.Gradient{Base: 10, Slope: geom.V(0.01, 0)}, cfg)
}

func TestQueryEngineEvaluateMatchesBruteForce(t *testing.T) {
	rng := rand.New(rand.NewSource(3))
	region := geom.Square(1000)
	fld := field.Gradient{Base: 10, Slope: geom.V(0.01, 0.02)}
	e := NewQueryEngine(region, 100, fld, EngineConfig{Shards: 4, Workers: 4})
	positions := make(map[radio.NodeID]geom.Point)
	for i := 0; i < 500; i++ {
		p := region.UniformPoint(rng)
		positions[radio.NodeID(i)] = p
		e.UpsertNode(radio.NodeID(i), p)
	}
	at := 5 * time.Second
	for trial := 0; trial < 20; trial++ {
		center := region.UniformPoint(rng)
		radius := 50 + rng.Float64()*300
		qid := uint32(trial + 1)
		e.Register(qid, radius, center)
		res, ok := e.Evaluate(qid, at)
		if !ok {
			t.Fatalf("trial %d: registered query not found", trial)
		}
		want := NewPartial()
		var wantNodes []radio.NodeID
		for id := radio.NodeID(0); id < 500; id++ {
			if positions[id].Within(center, radius) {
				wantNodes = append(wantNodes, id)
				want.AddReading(id, fld.Sample(positions[id], at))
			}
		}
		if len(res.Nodes) != len(wantNodes) {
			t.Fatalf("trial %d: %d nodes, want %d", trial, len(res.Nodes), len(wantNodes))
		}
		for i := range res.Nodes {
			if res.Nodes[i] != wantNodes[i] {
				t.Fatalf("trial %d: nodes %v, want %v", trial, res.Nodes, wantNodes)
			}
		}
		if res.Data.Count != want.Count || math.Abs(res.Data.Sum-want.Sum) > 1e-9 ||
			res.Data.Min != want.Min || res.Data.Max != want.Max {
			t.Fatalf("trial %d: partial %+v, want %+v", trial, res.Data, want)
		}
	}
}

func TestQueryEngineShardedMatchesSerial(t *testing.T) {
	rng := rand.New(rand.NewSource(9))
	region := geom.Square(2000)
	e := NewQueryEngine(region, 150, field.Uniform{Value: 20}, EngineConfig{Shards: 8, Workers: 8})
	for i := 0; i < 2000; i++ {
		e.UpsertNode(radio.NodeID(i), region.UniformPoint(rng))
	}
	for u := 1; u <= 200; u++ {
		e.Register(uint32(u), 150, region.UniformPoint(rng))
	}
	at := time.Second
	par := e.EvaluateAll(at)
	ser := e.EvaluateAllSerial(at)
	if len(par) != 200 || len(ser) != 200 {
		t.Fatalf("result counts %d/%d, want 200", len(par), len(ser))
	}
	for i := range par {
		if par[i].QueryID != ser[i].QueryID || par[i].Center != ser[i].Center {
			t.Fatalf("result %d: header mismatch %+v vs %+v", i, par[i], ser[i])
		}
		if len(par[i].Nodes) != len(ser[i].Nodes) {
			t.Fatalf("result %d: %d nodes vs %d", i, len(par[i].Nodes), len(ser[i].Nodes))
		}
		for j := range par[i].Nodes {
			if par[i].Nodes[j] != ser[i].Nodes[j] {
				t.Fatalf("result %d: node order diverged", i)
			}
		}
		if par[i].Data.Sum != ser[i].Data.Sum || par[i].Data.Count != ser[i].Data.Count {
			t.Fatalf("result %d: aggregate diverged", i)
		}
	}
}

func TestQueryEngineRegistry(t *testing.T) {
	e := testEngine(EngineConfig{})
	e.Register(7, 100, geom.Pt(1, 2))
	if n := e.QueryCount(); n != 1 {
		t.Fatalf("QueryCount = %d, want 1", n)
	}
	if !e.UpdateWaypoint(7, geom.Pt(3, 4)) {
		t.Error("UpdateWaypoint of registered query reported false")
	}
	if e.UpdateWaypoint(8, geom.Pt(0, 0)) {
		t.Error("UpdateWaypoint of unknown query reported true")
	}
	if res, ok := e.Evaluate(7, 0); !ok || res.Center != geom.Pt(3, 4) {
		t.Errorf("Evaluate after waypoint update: %+v, %v", res, ok)
	}
	if _, ok := e.Evaluate(999, 0); ok {
		t.Error("Evaluate of unknown query reported ok")
	}
	e.Deregister(7)
	e.Deregister(7) // idempotent
	if n := e.QueryCount(); n != 0 {
		t.Fatalf("QueryCount after deregister = %d, want 0", n)
	}
}

func TestQueryEngineRejectsBadConfig(t *testing.T) {
	for _, tc := range []struct {
		name string
		fn   func()
	}{
		{"zero query id", func() { testEngine(EngineConfig{}).Register(0, 10, geom.Pt(0, 0)) }},
		{"non-positive radius", func() { testEngine(EngineConfig{}).Register(1, 0, geom.Pt(0, 0)) }},
		{"duplicate id", func() {
			e := testEngine(EngineConfig{})
			e.Register(1, 10, geom.Pt(0, 0))
			e.Register(1, 10, geom.Pt(0, 0))
		}},
		{"negative shards", func() { testEngine(EngineConfig{Shards: -1}) }},
		{"negative workers", func() { testEngine(EngineConfig{Workers: -1}) }},
	} {
		func() {
			defer func() {
				if recover() == nil {
					t.Errorf("%s: expected panic", tc.name)
				}
			}()
			tc.fn()
		}()
	}
}

// TestQueryEngineConcurrentUsers exercises concurrent registration,
// waypoint updates, node churn, and evaluation; run with -race.
func TestQueryEngineConcurrentUsers(t *testing.T) {
	region := geom.Square(1000)
	e := NewQueryEngine(region, 100, field.Uniform{Value: 20}, EngineConfig{Shards: 8, Workers: 8})
	const users = 64
	var wg sync.WaitGroup
	for u := 1; u <= users; u++ {
		wg.Add(1)
		go func(u int) {
			defer wg.Done()
			rng := rand.New(rand.NewSource(int64(u)))
			e.Register(uint32(u), 150, region.UniformPoint(rng))
			for i := 0; i < 50; i++ {
				e.UpdateWaypoint(uint32(u), region.UniformPoint(rng))
				if _, ok := e.Evaluate(uint32(u), 0); !ok {
					t.Errorf("user %d: own query vanished", u)
					return
				}
			}
		}(u)
	}
	wg.Add(1)
	go func() {
		defer wg.Done()
		rng := rand.New(rand.NewSource(99))
		for i := 0; i < 500; i++ {
			e.UpsertNode(radio.NodeID(i%100), region.UniformPoint(rng))
			if i%10 == 0 {
				e.RemoveNode(radio.NodeID(rng.Intn(100)))
			}
		}
	}()
	wg.Add(1)
	go func() {
		defer wg.Done()
		for i := 0; i < 20; i++ {
			_ = e.EvaluateAll(0)
		}
	}()
	wg.Wait()
	if n := e.QueryCount(); n != users {
		t.Fatalf("QueryCount = %d, want %d", n, users)
	}
	if got := len(e.EvaluateAll(0)); got != users {
		t.Fatalf("EvaluateAll returned %d results, want %d", got, users)
	}
}

func TestDispatchCoversAllIndicesOnce(t *testing.T) {
	e := testEngine(EngineConfig{Workers: 7})
	const n = 1000
	var hits [n]int32
	var mu sync.Mutex
	e.Dispatch(n, func(i int) {
		mu.Lock()
		hits[i]++
		mu.Unlock()
	})
	for i, h := range hits {
		if h != 1 {
			t.Fatalf("index %d dispatched %d times", i, h)
		}
	}
	e.Dispatch(0, func(int) { t.Error("fn called for n=0") })
}
