package core

import (
	"math"

	"mobiquery/internal/geom"
	"mobiquery/internal/mobility"
	"mobiquery/internal/netstack"
	"mobiquery/internal/sim"
)

// PeriodResult is the outcome of one query period as seen by the user.
type PeriodResult struct {
	K        int
	Deadline sim.Time
	Received bool
	Arrival  sim.Time
	OnTime   bool
	Version  int        // motion-profile version that produced the result
	Pickup   geom.Point // center of the area the result covers
	Data     Partial
}

// Gateway is the query gateway running on the user's proxy (Section 4): it
// issues the query with attached motion profiles, starts and cancels
// prefetch chains as profiles change, floods NP queries directly, and
// receives results.
type Gateway struct {
	svc      *Service
	qid      uint32
	scheme   Scheme
	spec     QuerySpec
	t0       sim.Time
	proxy    *netstack.Node
	course   mobility.Course
	profiles []mobility.TimedProfile

	version     int
	lastProfile mobility.Profile
	holds       []*gwHold
	firstPickup geom.Point
	forwarded   bool

	results map[int]PeriodResult
	scores  map[int]float64
}

// gwHold is a pending (just-in-time held) chain launch at the gateway.
type gwHold struct {
	version int
	k       int
	timer   *sim.Timer
	msg     prefetchMsg
}

func newGateway(svc *Service, qid uint32, scheme Scheme, spec QuerySpec, course mobility.Course, profiler mobility.Profiler, proxy *netstack.Node) *Gateway {
	return &Gateway{
		svc:      svc,
		qid:      qid,
		scheme:   scheme,
		spec:     spec,
		t0:       svc.cfg.T0,
		proxy:    proxy,
		course:   course,
		profiles: profiler.Profiles(),
		results:  make(map[int]PeriodResult),
		scores:   make(map[int]float64),
	}
}

// start schedules the proxy's movement, the profile deliveries (JIT/GP), or
// the per-period floods (NP).
func (g *Gateway) start() {
	g.moveTick()

	if g.scheme == SchemeNP {
		for k := 1; k <= g.spec.Periods(); k++ {
			k := k
			issueAt := g.spec.Deadline(g.t0, k) - g.spec.Period
			if issueAt < 0 {
				issueAt = 0
			}
			g.svc.eng.Schedule(issueAt, func() { g.npFlood(k) })
		}
		return
	}
	for _, tp := range g.profiles {
		tp := tp
		deliver := tp.Deliver
		if deliver < g.t0 {
			deliver = g.t0
		}
		g.svc.eng.Schedule(deliver, func() { g.onProfile(tp.Profile) })
	}
}

// moveTick advances the proxy along the ground-truth course and pushes the
// new position to the query engine as the user's current waypoint.
func (g *Gateway) moveTick() {
	pos := g.course.PosAt(g.svc.eng.Now())
	g.proxy.Move(pos)
	g.svc.engine.UpdateWaypoint(g.qid, pos)
	g.svc.eng.After(g.svc.cfg.MoveTick, g.moveTick)
}

// onProfile reacts to a new motion profile. Periods whose deadlines fall
// before the profile's effective time ts still belong to the old profile
// (Section 4.1.2's validity model): the old chain keeps serving them and is
// capped at the new profile's first period FromK. State for periods at or
// after FromK under old versions is canceled, and a new chain is launched
// with the just-in-time hold when the scheme calls for it.
func (g *Gateway) onProfile(p mobility.Profile) {
	cfg := g.svc.cfg
	now := g.svc.eng.Now()
	if p.Version <= g.version {
		return
	}

	// First period governed by the new profile: deadline past its ts (and
	// far enough ahead to be actionable).
	effective := p.TS
	if effective < now {
		effective = now
	}
	fromK := int((effective-g.t0)/sim.Time(g.spec.Period)) + 1
	if fromK < 1 {
		fromK = 1
	}
	for fromK <= g.spec.Periods() && g.spec.Deadline(g.t0, fromK) <= now+cfg.CollectorMargin {
		fromK++
	}

	// Cancel superseded holds at the gateway and chase the launched chain.
	kept := g.holds[:0]
	for _, h := range g.holds {
		if h.k >= fromK {
			g.svc.eng.Cancel(h.timer)
			continue
		}
		// Still-valid prefix: cap it at the new version's first period.
		if h.msg.UpToK == 0 || h.msg.UpToK > fromK {
			h.msg.UpToK = fromK
		}
		kept = append(kept, h)
	}
	g.holds = kept
	if g.forwarded {
		g.proxy.GeoSend(g.firstPickup, cfg.PickupRadius, portCancel,
			cancelMsg{QueryID: g.qid, NewVersion: p.Version, FromK: fromK}, cancelSize)
	}
	g.version = p.Version
	g.lastProfile = p

	if fromK > g.spec.Periods() {
		return // query lifetime exhausted
	}
	pickup := p.PredictAt(g.spec.Deadline(g.t0, fromK))
	msg := prefetchMsg{
		QueryID: g.qid,
		Version: p.Version,
		K:       fromK,
		FromK:   fromK,
		Scheme:  g.scheme,
		Pickup:  pickup,
		T0:      g.t0,
		Spec:    g.spec,
		Profile: p,
	}
	sendAt := now
	if g.scheme == SchemeJIT {
		// The gateway plays the role of collector k-1 in equation (10).
		hold := g.spec.Deadline(g.t0, fromK-1) - g.svc.sleepPeriod() - 2*g.spec.Fresh - cfg.ForwardLead
		if hold > sendAt {
			sendAt = hold
		}
	}
	h := &gwHold{version: p.Version, k: fromK, msg: msg}
	send := func() {
		if g.version != h.version {
			return // superseded while holding
		}
		g.firstPickup = h.msg.Pickup
		g.forwarded = true
		g.svc.hooks.onPrefetchForward(h.k-1, h.k, g.svc.eng.Now())
		g.proxy.GeoSend(h.msg.Pickup, cfg.PickupRadius, portPrefetch, h.msg, prefetchSize)
	}
	if sendAt <= now {
		send()
	} else {
		h.timer = g.svc.eng.Schedule(sendAt, send)
		g.holds = append(g.holds, h)
	}
}

// npFlood implements the No-Prefetching baseline: at each period start the
// user broadcasts the query into the current area, rooted at the proxy.
func (g *Gateway) npFlood(k int) {
	pos := g.proxy.Pos()
	scope := geom.Circle{C: pos, R: g.spec.Radius + g.svc.cfg.ScopeMargin}
	g.proxy.StartFlood(scope, portSetup, setupMsg{
		QueryID:  g.qid,
		Version:  0,
		K:        k,
		Root:     g.proxy.ID(),
		RootPos:  pos,
		Pickup:   pos,
		Deadline: g.spec.Deadline(g.t0, k),
		Spec:     g.spec,
	}, setupSize)
}

// recordResult stores the best result received for each period. On-time
// beats late; among those, results are scored by expected in-area coverage:
// contributor count scaled by how much the result's area (the circle of
// radius Rq around its pickup point) overlaps the user's actual query area.
// After a motion change this naturally hands over from the old chain's
// drifting results to the new chain's as the latter warms up.
func (g *Gateway) recordResult(msg resultMsg) {
	now := g.svc.eng.Now()
	deadline := g.spec.Deadline(g.t0, msg.K)
	pr := PeriodResult{
		K:        msg.K,
		Deadline: deadline,
		Received: true,
		Arrival:  now,
		OnTime:   now <= deadline,
		Version:  msg.Version,
		Pickup:   msg.Pickup,
		Data:     msg.Data,
	}
	score := float64(msg.Data.Count) *
		circleOverlap(msg.Pickup.Dist(g.proxy.Pos()), g.spec.Radius)
	old, exists := g.results[msg.K]
	if exists {
		oldScore := g.scores[msg.K]
		if old.OnTime && !pr.OnTime {
			return
		}
		if old.OnTime == pr.OnTime && oldScore >= score {
			return
		}
	}
	g.results[msg.K] = pr
	g.scores[msg.K] = score
}

// circleOverlap returns the fractional overlap area of two circles of equal
// radius r whose centers are d apart (1 when coincident, 0 when disjoint).
func circleOverlap(d, r float64) float64 {
	if d >= 2*r {
		return 0
	}
	if d <= 0 {
		return 1
	}
	// Lens area of two equal circles divided by the circle area.
	lens := 2*r*r*math.Acos(d/(2*r)) - d/2*math.Sqrt(4*r*r-d*d)
	return lens / (math.Pi * r * r)
}

// Results returns one entry per query period, in order; periods with no
// delivered result have Received=false.
func (g *Gateway) Results() []PeriodResult {
	out := make([]PeriodResult, 0, g.spec.Periods())
	for k := 1; k <= g.spec.Periods(); k++ {
		if pr, ok := g.results[k]; ok {
			out = append(out, pr)
			continue
		}
		out = append(out, PeriodResult{
			K:        k,
			Deadline: g.spec.Deadline(g.t0, k),
		})
	}
	return out
}
