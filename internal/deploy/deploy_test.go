package deploy

import (
	"math"
	"math/rand"
	"testing"

	"mobiquery/internal/geom"
)

func TestUniformPlacement(t *testing.T) {
	rng := rand.New(rand.NewSource(1))
	region := geom.Square(450)
	topo := Uniform(region, 200, rng)
	if topo.Len() != 200 {
		t.Fatalf("Len = %d", topo.Len())
	}
	for i, p := range topo.Positions {
		if !region.Contains(p) {
			t.Fatalf("node %d at %v outside region", i, p)
		}
	}
}

func TestUniformDeterministic(t *testing.T) {
	a := Uniform(geom.Square(450), 50, rand.New(rand.NewSource(5)))
	b := Uniform(geom.Square(450), 50, rand.New(rand.NewSource(5)))
	for i := range a.Positions {
		if a.Positions[i] != b.Positions[i] {
			t.Fatal("same seed produced different topologies")
		}
	}
}

func TestUniformZeroNodes(t *testing.T) {
	topo := Uniform(geom.Square(450), 0, rand.New(rand.NewSource(1)))
	if topo.Len() != 0 {
		t.Errorf("Len = %d, want 0", topo.Len())
	}
}

func TestUniformNegativePanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Error("negative count should panic")
		}
	}()
	Uniform(geom.Square(450), -1, rand.New(rand.NewSource(1)))
}

func TestUniformMinSeparation(t *testing.T) {
	rng := rand.New(rand.NewSource(2))
	topo := UniformMinSeparation(geom.Square(450), 100, 20, rng)
	if topo.Len() != 100 {
		t.Fatalf("Len = %d", topo.Len())
	}
	tooClose := 0
	for i := 0; i < topo.Len(); i++ {
		for j := i + 1; j < topo.Len(); j++ {
			if topo.Positions[i].Within(topo.Positions[j], 20) {
				tooClose++
			}
		}
	}
	// The sampler accepts rare failures after maxTries; nearly all pairs
	// must respect the separation.
	if tooClose > 2 {
		t.Errorf("%d pairs violate min separation", tooClose)
	}
}

func TestDensity(t *testing.T) {
	topo := Uniform(geom.Square(450), 200, rand.New(rand.NewSource(1)))
	want := 200.0 / (450 * 450)
	if got := topo.Density(); math.Abs(got-want) > 1e-12 {
		t.Errorf("Density = %v, want %v", got, want)
	}
}

func TestNodesIn(t *testing.T) {
	topo := Topology{
		Region: geom.Square(100),
		Positions: []geom.Point{
			geom.Pt(10, 10), geom.Pt(50, 50), geom.Pt(52, 50), geom.Pt(90, 90),
		},
	}
	got := topo.NodesIn(geom.Circle{C: geom.Pt(50, 50), R: 10})
	if len(got) != 2 || got[0] != 1 || got[1] != 2 {
		t.Errorf("NodesIn = %v, want [1 2]", got)
	}
}

func TestSuggestPickupRadius(t *testing.T) {
	topo := Uniform(geom.Square(450), 200, rand.New(rand.NewSource(1)))
	rp := SuggestPickupRadius(topo, 0.3, 0.9)
	if rp < 20 || rp > 120 {
		t.Errorf("Rp = %.1f m, want a plausible anycast radius", rp)
	}
	// Higher confidence needs a larger radius.
	if SuggestPickupRadius(topo, 0.3, 0.99) <= rp {
		t.Error("higher confidence should give larger Rp")
	}
	// Denser backbone needs a smaller radius.
	if SuggestPickupRadius(topo, 0.6, 0.9) >= rp {
		t.Error("denser backbone should give smaller Rp")
	}
}

func TestSuggestPickupRadiusPanics(t *testing.T) {
	topo := Uniform(geom.Square(450), 10, rand.New(rand.NewSource(1)))
	for _, args := range [][2]float64{{0, 0.9}, {0.3, 0}, {0.3, 1}} {
		func() {
			defer func() { _ = recover() }()
			SuggestPickupRadius(topo, args[0], args[1])
			t.Errorf("SuggestPickupRadius(%v) should panic", args)
		}()
	}
}

func TestExpectedNeighbors(t *testing.T) {
	topo := Uniform(geom.Square(450), 200, rand.New(rand.NewSource(1)))
	// 200 nodes, range 105: lambda*pi*r^2 = 200/202500 * pi * 11025 ~ 34.
	got := topo.ExpectedNeighbors(105)
	if got < 30 || got > 40 {
		t.Errorf("ExpectedNeighbors = %.1f, want about 34", got)
	}
}
