// Package deploy generates sensor network topologies for the MobiQuery
// simulator and derives density-dependent protocol parameters.
package deploy

import (
	"fmt"
	"math"
	"math/rand"

	"mobiquery/internal/geom"
)

// Topology is a static placement of sensor nodes; node i sits at
// Positions[i].
type Topology struct {
	Region    geom.Rect
	Positions []geom.Point
}

// Uniform places n nodes uniformly at random in region, the deployment
// model of the paper's evaluation (200 nodes in 450 m x 450 m).
func Uniform(region geom.Rect, n int, rng *rand.Rand) Topology {
	if n < 0 {
		panic(fmt.Sprintf("deploy: negative node count %d", n))
	}
	pts := make([]geom.Point, n)
	for i := range pts {
		pts[i] = region.UniformPoint(rng)
	}
	return Topology{Region: region, Positions: pts}
}

// UniformMinSeparation places n nodes uniformly with a minimum pairwise
// separation, rejecting draws closer than minSep to an accepted point. It
// gives up on a draw after maxTries attempts and accepts it anyway, so the
// function always terminates.
func UniformMinSeparation(region geom.Rect, n int, minSep float64, rng *rand.Rand) Topology {
	const maxTries = 64
	pts := make([]geom.Point, 0, n)
	for len(pts) < n {
		p := region.UniformPoint(rng)
		ok := true
		for try := 0; try < maxTries; try++ {
			ok = true
			for _, q := range pts {
				if p.Within(q, minSep) {
					ok = false
					break
				}
			}
			if ok {
				break
			}
			p = region.UniformPoint(rng)
		}
		pts = append(pts, p)
	}
	return Topology{Region: region, Positions: pts}
}

// Len returns the number of nodes.
func (t Topology) Len() int { return len(t.Positions) }

// Density returns nodes per square meter.
func (t Topology) Density() float64 {
	area := t.Region.Area()
	if area <= 0 {
		return 0
	}
	return float64(len(t.Positions)) / area
}

// NodesIn returns the indices of nodes inside the circle, in index order.
func (t Topology) NodesIn(c geom.Circle) []int {
	var out []int
	for i, p := range t.Positions {
		if c.Contains(p) {
			out = append(out, i)
		}
	}
	return out
}

// SuggestPickupRadius returns a pickup-point anycast radius Rp such that a
// circle of that radius contains at least one backbone node with the given
// probability, assuming backbone nodes form a Poisson field with intensity
// backboneFraction * density. The paper notes Rp "may vary depending on the
// density of the sensor network"; this is that calculation.
func SuggestPickupRadius(t Topology, backboneFraction, confidence float64) float64 {
	if backboneFraction <= 0 || confidence <= 0 || confidence >= 1 {
		panic("deploy: backboneFraction must be positive and confidence in (0,1)")
	}
	lambda := t.Density() * backboneFraction
	if lambda <= 0 {
		return math.Inf(1)
	}
	// P(no backbone node within Rp) = exp(-lambda*pi*Rp^2) = 1 - confidence.
	return math.Sqrt(-math.Log(1-confidence) / (lambda * math.Pi))
}

// ExpectedNeighbors returns the mean number of neighbours per node at the
// given communication range (ignoring boundary effects).
func (t Topology) ExpectedNeighbors(commRange float64) float64 {
	return t.Density() * math.Pi * commRange * commRange
}
