package wire

import (
	"bytes"
	"io"
	"math"
	"reflect"
	"slices"
	"testing"
	"time"

	"mobiquery"
	"mobiquery/internal/obs"
)

// fullResult exercises every QueryResult field with values that stress
// JSON round-tripping: negative durations, non-representable-in-float32
// floats, and all flags set.
func fullResult() mobiquery.QueryResult {
	return mobiquery.QueryResult{
		K:               17,
		Deadline:        34 * time.Second,
		Received:        true,
		OnTime:          false,
		Value:           20.000000000000004,
		Contributors:    41,
		AreaNodes:       44,
		Fidelity:        41.0 / 44.0,
		Success:         false,
		EvaluatedAt:     34*time.Second + 123456789*time.Nanosecond,
		Lateness:        123456789 * time.Nanosecond,
		StaleNodes:      3,
		MaxStaleness:    999999999 * time.Nanosecond,
		Warmup:          true,
		PrefetchedNodes: 38,
		CorridorHit:     true,
	}
}

func TestResultRoundTripExact(t *testing.T) {
	orig := fullResult()
	var buf bytes.Buffer
	if err := NewEncoder(&buf).Encode(Frame{Type: FrameResult, Result: ptr(FromResult(orig))}); err != nil {
		t.Fatalf("encode: %v", err)
	}
	var f Frame
	if err := NewDecoder(&buf).Decode(&f); err != nil {
		t.Fatalf("decode: %v", err)
	}
	if f.Type != FrameResult || f.Result == nil {
		t.Fatalf("frame came back as %+v", f)
	}
	if got := f.Result.QueryResult(); got != orig {
		t.Errorf("round trip changed the result:\n got %+v\nwant %+v", got, orig)
	}
}

func TestResultRoundTripZeroAndExtremes(t *testing.T) {
	cases := []mobiquery.QueryResult{
		{},
		{K: 1, Deadline: time.Nanosecond, Value: math.MaxFloat64, Fidelity: 1},
		{K: 2, Value: math.SmallestNonzeroFloat64, Lateness: -time.Second},
	}
	for i, orig := range cases {
		var buf bytes.Buffer
		if err := NewEncoder(&buf).Encode(FromResult(orig)); err != nil {
			t.Fatalf("case %d encode: %v", i, err)
		}
		var r Result
		if err := NewDecoder(&buf).Decode(&r); err != nil {
			t.Fatalf("case %d decode: %v", i, err)
		}
		if got := r.QueryResult(); got != orig {
			t.Errorf("case %d: got %+v want %+v", i, got, orig)
		}
	}
}

func TestStreamOfFramesDecodesInOrder(t *testing.T) {
	var buf bytes.Buffer
	enc := NewEncoder(&buf)
	frames := []Frame{
		{Type: FrameAck, ID: 7, NowNS: int64(3 * time.Second)},
		{Type: FrameResult, Result: ptr(FromResult(fullResult()))},
		{Type: FrameEnd, Stats: &SubStats{Delivered: 1, NextPeriod: 2}},
	}
	for _, f := range frames {
		if err := enc.Encode(f); err != nil {
			t.Fatalf("encode: %v", err)
		}
	}
	// NDJSON: one line per frame.
	if got := bytes.Count(buf.Bytes(), []byte("\n")); got != len(frames) {
		t.Errorf("stream has %d lines, want %d", got, len(frames))
	}
	dec := NewDecoder(&buf)
	for i, want := range frames {
		var f Frame
		if err := dec.Decode(&f); err != nil {
			t.Fatalf("frame %d: %v", i, err)
		}
		if !reflect.DeepEqual(f, want) {
			t.Errorf("frame %d: got %+v want %+v", i, f, want)
		}
	}
	var f Frame
	if err := dec.Decode(&f); err != io.EOF {
		t.Errorf("after the last frame: err=%v, want io.EOF", err)
	}
}

func TestSpecConversion(t *testing.T) {
	s := Spec{
		RadiusM:           150,
		PeriodNS:          int64(2 * time.Second),
		DeadlineNS:        int64(200 * time.Millisecond),
		FreshnessNS:       int64(time.Second),
		LifetimeNS:        int64(time.Minute),
		Aggregate:         "max",
		Strategy:          "jit",
		CorridorLookahead: 4,
		ErrBaseM:          12,
		ErrGrowthMPS:      1.5,
	}
	q, err := s.QuerySpec()
	if err != nil {
		t.Fatalf("QuerySpec: %v", err)
	}
	want := mobiquery.QuerySpec{
		Radius:    150,
		Period:    2 * time.Second,
		Deadline:  200 * time.Millisecond,
		Freshness: time.Second,
		Lifetime:  time.Minute,
		Aggregate: mobiquery.Max,
		Strategy:  mobiquery.JITStrategy(),
		Corridor: mobiquery.CorridorSpec{
			Lookahead:  4,
			ErrorModel: mobiquery.ErrorModel{Base: 12, Growth: 1.5},
		},
	}
	if q != want {
		t.Errorf("converted spec:\n got %+v\nwant %+v", q, want)
	}
	if err := q.Validate(); err != nil {
		t.Errorf("converted spec does not validate: %v", err)
	}

	// The defaults: empty strategy and aggregate are the session defaults.
	q, err = Spec{RadiusM: 100, PeriodNS: int64(time.Second)}.QuerySpec()
	if err != nil {
		t.Fatalf("minimal spec: %v", err)
	}
	if q.Strategy != mobiquery.OnDemandStrategy() || q.Aggregate != 0 {
		t.Errorf("minimal spec defaults: %+v", q)
	}

	// Greedy carries its lookahead.
	q, err = Spec{RadiusM: 100, PeriodNS: int64(time.Second), Strategy: "greedy", Lookahead: 9}.QuerySpec()
	if err != nil {
		t.Fatalf("greedy spec: %v", err)
	}
	if q.Strategy != mobiquery.GreedyStrategy(9) {
		t.Errorf("greedy lookahead lost: %+v", q.Strategy)
	}

	for _, bad := range []Spec{
		{RadiusM: 100, PeriodNS: 1, Aggregate: "median"},
		{RadiusM: 100, PeriodNS: 1, Strategy: "psychic"},
	} {
		if _, err := bad.QuerySpec(); err == nil {
			t.Errorf("spec %+v: expected a conversion error", bad)
		}
	}
}

func TestMotionConversion(t *testing.T) {
	src, err := Motion{Kind: "static", XM: 3, YM: 4}.Source()
	if err != nil {
		t.Fatalf("static: %v", err)
	}
	if p := src.PositionAt(time.Hour); p != mobiquery.Pt(3, 4) {
		t.Errorf("static position drifted to %v", p)
	}

	src, err = Motion{Kind: "linear", XM: 10, YM: 20, VXMPS: 2, VYMPS: -1}.Source()
	if err != nil {
		t.Fatalf("linear: %v", err)
	}
	if p := src.PositionAt(3 * time.Second); p != mobiquery.Pt(16, 17) {
		t.Errorf("linear position at 3s: %v, want (16,17)", p)
	}

	course := Motion{
		Kind: "course", Seed: 5, XM: 200, YM: 200,
		RegionSideM: 450, SpeedMinMPS: 1, SpeedMaxMPS: 3,
		ChangeIntervalNS: int64(10 * time.Second), DurationNS: int64(time.Minute),
		GPSSeed: 6, GPSSamplingNS: int64(time.Second), GPSErrM: 5,
	}
	src, err = course.Source()
	if err != nil {
		t.Fatalf("course: %v", err)
	}
	// The course is deterministic in its seeds: two builds agree.
	src2, err := course.Source()
	if err != nil {
		t.Fatalf("course again: %v", err)
	}
	for _, at := range []time.Duration{0, 7 * time.Second, 42 * time.Second} {
		if p, p2 := src.PositionAt(at), src2.PositionAt(at); p != p2 {
			t.Errorf("course not deterministic at %v: %v vs %v", at, p, p2)
		}
	}
	if _, ok := src.(mobiquery.ProfileSource); !ok {
		t.Error("course source should carry predicted profiles")
	}

	if _, err := (Motion{Kind: "teleport"}).Source(); err == nil {
		t.Error("unknown motion kind should be an error")
	}
	if _, err := (Motion{Kind: "course", RegionSideM: -1}).Source(); err == nil {
		t.Error("invalid course should surface the mobility validation error")
	}
}

func TestLedgerConversions(t *testing.T) {
	ss := mobiquery.ServiceStats{
		Now: 5 * time.Second, Nodes: 200, Subscribers: 3, Draining: true,
		Opened: 9, Closed: 6, Delivered: 100, Dropped: 2, Late: 1,
		SchedStripes: 4, SchedLen: 3, SchedStripeLens: []int{2, 0, 1, 0},
		SchedMergeDepth: 2,
	}
	w := FromServiceStats(ss)
	if w.NowNS != int64(5*time.Second) || w.Nodes != 200 || w.Subscribers != 3 ||
		!w.Draining || w.Opened != 9 || w.Closed != 6 || w.Delivered != 100 ||
		w.Dropped != 2 || w.Late != 1 {
		t.Errorf("service stats mapped to %+v", w)
	}
	if w.SchedStripes != 4 || w.SchedLen != 3 || w.SchedMergeDepth != 2 ||
		!slices.Equal(w.SchedStripeLens, []int{2, 0, 1, 0}) {
		t.Errorf("scheduler stats mapped to %+v", w)
	}
	st := mobiquery.SubscriptionStats{Delivered: 4, Dropped: 1, Late: 2, NextPeriod: 6}
	if got := FromSubStats(st); got != (SubStats{Delivered: 4, Dropped: 1, Late: 2, NextPeriod: 6}) {
		t.Errorf("sub stats mapped to %+v", got)
	}
}

func ptr[T any](v T) *T { return &v }

// fullSpan exercises every PeriodSpan field.
func fullSpan() mobiquery.PeriodSpan {
	return mobiquery.PeriodSpan{
		Trace:       mobiquery.TraceID(0xDEADBEEFCAFE0123),
		Span:        mobiquery.MintSpanID(mobiquery.TraceID(0xDEADBEEFCAFE0123), 5),
		K:           5,
		Due:         10 * time.Second,
		ArmedNS:     1_000,
		PoppedNS:    2_000,
		EvalStartNS: 3_000,
		EvalEndNS:   4_000,
		FlushNS:     4_500,
		DeliveredNS: 5_000,
		WireNS:      6_000,
		Class:       obs.ClassPyramid,
		Outcome:     obs.OutcomeDelivered,
		Late:        true,
	}
}

func TestFormatParseID(t *testing.T) {
	for _, v := range []uint64{0, 1, 0xFF, 1 << 53, math.MaxUint64} {
		s := FormatID(v)
		if v == 0 {
			if s != "" {
				t.Fatalf("FormatID(0) = %q, want empty (untraced)", s)
			}
		} else if len(s) != 16 {
			t.Fatalf("FormatID(%d) = %q, want 16 hex chars", v, s)
		}
		got, err := ParseID(s)
		if err != nil || got != v {
			t.Fatalf("ParseID(FormatID(%d)) = %d, %v", v, got, err)
		}
	}
	for _, bad := range []string{"xyz", "-1", "10000000000000000ff"} {
		if _, err := ParseID(bad); err == nil {
			t.Errorf("ParseID(%q) accepted", bad)
		}
	}
}

func TestTraceSpanRoundTripExact(t *testing.T) {
	orig := fullSpan()
	var buf bytes.Buffer
	if err := NewEncoder(&buf).Encode(FromPeriodSpan(orig)); err != nil {
		t.Fatalf("encode: %v", err)
	}
	raw := bytes.Clone(buf.Bytes())
	var ts TraceSpan
	if err := NewDecoder(&buf).Decode(&ts); err != nil {
		t.Fatalf("decode: %v", err)
	}
	got, err := ts.PeriodSpan()
	if err != nil {
		t.Fatalf("PeriodSpan: %v", err)
	}
	if got != orig {
		t.Errorf("round trip changed the span:\n got %+v\nwant %+v", got, orig)
	}
	// Ids ride as 16-char hex strings: uint64s above 2^53 do not survive
	// JSON numbers, so the wire must never carry them numerically.
	if !bytes.Contains(raw, []byte(`"trace_id":"deadbeefcafe0123"`)) {
		t.Errorf("trace id not hex on the wire: %s", raw)
	}

	if _, err := (TraceSpan{TraceID: "zz"}).PeriodSpan(); err == nil {
		t.Error("bad trace id accepted")
	}
	if _, err := (TraceSpan{Class: "psychic"}).PeriodSpan(); err == nil {
		t.Error("bad class accepted")
	}
}

// TestTracedResultRoundTrip pins the traced result frame: the span rides
// the frame, and an untraced result's encoding is byte-identical to the
// pre-tracing wire format (no "trace" key at all).
func TestTracedResultRoundTrip(t *testing.T) {
	orig := fullResult()
	span := fullSpan()
	orig.Trace = &span
	var buf bytes.Buffer
	if err := NewEncoder(&buf).Encode(FromResult(orig)); err != nil {
		t.Fatalf("encode: %v", err)
	}
	var r Result
	if err := NewDecoder(&buf).Decode(&r); err != nil {
		t.Fatalf("decode: %v", err)
	}
	got := r.QueryResult()
	if got.Trace == nil || *got.Trace != span {
		t.Errorf("span changed on the wire:\n got %+v\nwant %+v", got.Trace, span)
	}
	got.Trace, orig.Trace = nil, nil
	if got != orig {
		t.Errorf("result fields changed:\n got %+v\nwant %+v", got, orig)
	}

	var untraced bytes.Buffer
	if err := NewEncoder(&untraced).Encode(FromResult(fullResult())); err != nil {
		t.Fatalf("encode untraced: %v", err)
	}
	if bytes.Contains(untraced.Bytes(), []byte("trace")) {
		t.Errorf("untraced result leaks a trace key: %s", untraced.Bytes())
	}
}

func TestSpecTraceIDConversion(t *testing.T) {
	s := Spec{RadiusM: 100, PeriodNS: int64(time.Second), TraceID: "00000000000000ff"}
	q, err := s.QuerySpec()
	if err != nil {
		t.Fatalf("QuerySpec: %v", err)
	}
	if q.Trace != 0xFF {
		t.Errorf("trace id converted to %#x, want 0xff", uint64(q.Trace))
	}
	s.TraceID = ""
	if q, err = s.QuerySpec(); err != nil || q.Trace != 0 {
		t.Errorf("absent trace id: %v trace %#x, want untraced", err, uint64(q.Trace))
	}
	s.TraceID = "not-hex"
	if _, err := s.QuerySpec(); err == nil {
		t.Error("malformed trace id accepted")
	}
}
