// Package wire is the NDJSON frame protocol spoken between
// mobiquery-serve and its clients (cmd/mobiquery-loadgen, tests, curl).
//
// Every message is one compact JSON object on its own line. A subscribe
// call carries one SubscribeRequest as its request body and streams Frame
// lines back: exactly one "ack" frame first, then one "result" frame per
// query period, then one "end" frame carrying the subscription's final
// delivery ledger when the stream closes cleanly. Waypoint updates are
// client-streamed the other way: a request body of Waypoint lines, each
// applied as it arrives.
//
// The frame schema is the session API rendered losslessly: durations are
// int64 nanoseconds, floats are float64 (encoding/json round-trips both
// exactly), so a Result decoded from the wire reconstructs the original
// mobiquery.QueryResult byte for byte — the loopback tests pin this.
package wire

import (
	"encoding/json"
	"fmt"
	"io"
	"strconv"
	"time"

	"mobiquery"
	"mobiquery/internal/obs"
)

// FormatID renders a trace or span id as the wire's fixed-width lowercase
// hex — 64-bit ids travel as strings because JSON numbers lose integer
// precision past 2^53. FormatID(0) is "" (the untraced value omits).
func FormatID(v uint64) string {
	if v == 0 {
		return ""
	}
	var b [16]byte
	for i := 15; i >= 0; i-- {
		b[i] = "0123456789abcdef"[v&0xf]
		v >>= 4
	}
	return string(b[:])
}

// ParseID is the inverse of FormatID; "" parses as 0 (untraced).
func ParseID(s string) (uint64, error) {
	if s == "" {
		return 0, nil
	}
	v, err := strconv.ParseUint(s, 16, 64)
	if err != nil {
		return 0, fmt.Errorf("wire: bad trace/span id %q", s)
	}
	return v, nil
}

// Spec is QuerySpec on the wire. The zero values of the optional fields
// select the same defaults the session API does (no deadline slack, no
// freshness window, unbounded lifetime, Avg aggregation, on-demand
// sampling, no corridor).
type Spec struct {
	RadiusM     float64 `json:"radius_m"`
	PeriodNS    int64   `json:"period_ns"`
	DeadlineNS  int64   `json:"deadline_ns,omitempty"`
	FreshnessNS int64   `json:"freshness_ns,omitempty"`
	LifetimeNS  int64   `json:"lifetime_ns,omitempty"`
	// Aggregate is one of "count", "sum", "min", "max", "avg"; empty
	// selects avg.
	Aggregate string `json:"aggregate,omitempty"`
	// Strategy is one of "ondemand" (default when empty), "jit", or
	// "greedy"; Lookahead is greedy's chains-ahead window (0 = minimal).
	Strategy  string `json:"strategy,omitempty"`
	Lookahead int    `json:"lookahead,omitempty"`
	// CorridorLookahead enables spatial corridor prefetching that many
	// period boundaries ahead (requires a prefetching Strategy);
	// ErrBaseM/ErrGrowthMPS are the corridor's location-error model.
	CorridorLookahead int     `json:"corridor_lookahead,omitempty"`
	ErrBaseM          float64 `json:"err_base_m,omitempty"`
	ErrGrowthMPS      float64 `json:"err_growth_mps,omitempty"`
	// TraceID is an optional client-minted trace context, 16 lowercase hex
	// digits. When set, every result frame of the subscription echoes the
	// period's server-side lifecycle span under that trace, letting the
	// client join its own receive timestamps onto the server's segment
	// chain. Empty leaves the subscription untraced.
	TraceID string `json:"trace_id,omitempty"`
}

// aggNames maps the wire aggregation names; the zero AggKind means "use
// the session default" (Avg), which "" selects.
var aggNames = map[string]mobiquery.AggKind{
	"":      0,
	"count": mobiquery.Count,
	"sum":   mobiquery.Sum,
	"min":   mobiquery.Min,
	"max":   mobiquery.Max,
	"avg":   mobiquery.Avg,
}

// QuerySpec converts the wire spec to the session form. Unknown
// aggregate/strategy names are errors; everything else is left to
// QuerySpec.Validate at Subscribe time.
func (s Spec) QuerySpec() (mobiquery.QuerySpec, error) {
	agg, ok := aggNames[s.Aggregate]
	if !ok {
		return mobiquery.QuerySpec{}, fmt.Errorf("wire: unknown aggregate %q", s.Aggregate)
	}
	q := mobiquery.QuerySpec{
		Radius:    s.RadiusM,
		Period:    time.Duration(s.PeriodNS),
		Deadline:  time.Duration(s.DeadlineNS),
		Freshness: time.Duration(s.FreshnessNS),
		Lifetime:  time.Duration(s.LifetimeNS),
		Aggregate: agg,
	}
	switch s.Strategy {
	case "", "ondemand":
		q.Strategy = mobiquery.OnDemandStrategy()
	case "jit":
		q.Strategy = mobiquery.JITStrategy()
	case "greedy":
		q.Strategy = mobiquery.GreedyStrategy(s.Lookahead)
	default:
		return mobiquery.QuerySpec{}, fmt.Errorf("wire: unknown strategy %q", s.Strategy)
	}
	if s.CorridorLookahead > 0 {
		q.Corridor = mobiquery.CorridorSpec{
			Lookahead:  s.CorridorLookahead,
			ErrorModel: mobiquery.ErrorModel{Base: s.ErrBaseM, Growth: s.ErrGrowthMPS},
		}
	}
	tid, err := ParseID(s.TraceID)
	if err != nil {
		return mobiquery.QuerySpec{}, err
	}
	q.Trace = mobiquery.TraceID(tid)
	return q, nil
}

// Motion is a MotionSource on the wire.
type Motion struct {
	// Kind is "static", "linear", or "course". Static pins the user at
	// (XM, YM); linear adds a (VXMPS, VYMPS) velocity; course follows a
	// seeded random-direction ground-truth course with a noisy GPS
	// predictor supplying the motion profiles (the Section 6.3 setting).
	Kind  string  `json:"kind"`
	XM    float64 `json:"x_m,omitempty"`
	YM    float64 `json:"y_m,omitempty"`
	VXMPS float64 `json:"vx_mps,omitempty"`
	VYMPS float64 `json:"vy_mps,omitempty"`
	// Course parameters (kind "course").
	Seed             int64   `json:"seed,omitempty"`
	RegionSideM      float64 `json:"region_side_m,omitempty"`
	SpeedMinMPS      float64 `json:"speed_min_mps,omitempty"`
	SpeedMaxMPS      float64 `json:"speed_max_mps,omitempty"`
	ChangeIntervalNS int64   `json:"change_interval_ns,omitempty"`
	DurationNS       int64   `json:"duration_ns,omitempty"`
	// GPS predictor parameters (kind "course").
	GPSSeed       int64   `json:"gps_seed,omitempty"`
	GPSSamplingNS int64   `json:"gps_sampling_ns,omitempty"`
	GPSErrM       float64 `json:"gps_err_m,omitempty"`
	GPSThresholdM float64 `json:"gps_threshold_m,omitempty"`
}

// Source builds the session MotionSource the wire motion describes.
func (m Motion) Source() (mobiquery.MotionSource, error) {
	switch m.Kind {
	case "static":
		return mobiquery.StaticPosition(mobiquery.Pt(m.XM, m.YM)), nil
	case "linear":
		return mobiquery.LinearMotion(mobiquery.Pt(m.XM, m.YM), m.VXMPS, m.VYMPS), nil
	case "course":
		return mobiquery.GPSPredictedMotion(
			mobiquery.CourseConfig{
				Seed:           m.Seed,
				RegionSide:     m.RegionSideM,
				Start:          mobiquery.Pt(m.XM, m.YM),
				SpeedMin:       m.SpeedMinMPS,
				SpeedMax:       m.SpeedMaxMPS,
				ChangeInterval: time.Duration(m.ChangeIntervalNS),
				Duration:       time.Duration(m.DurationNS),
			},
			mobiquery.GPSConfig{
				Seed:      m.GPSSeed,
				Sampling:  time.Duration(m.GPSSamplingNS),
				Error:     m.GPSErrM,
				Threshold: m.GPSThresholdM,
			})
	default:
		return nil, fmt.Errorf("wire: unknown motion kind %q", m.Kind)
	}
}

// SubscribeRequest is the body of POST /v1/subscribe.
type SubscribeRequest struct {
	Spec   Spec   `json:"spec"`
	Motion Motion `json:"motion"`
}

// Frame types on a subscribe stream.
const (
	FrameAck    = "ack"
	FrameResult = "result"
	FrameEnd    = "end"
	FrameError  = "error"
)

// Frame is one line of a subscribe stream. Type discriminates: an ack
// frame carries ID and NowNS (the service virtual time the subscription's
// periods count from), a result frame carries Result, an end frame
// carries the final Stats, an error frame carries Error.
type Frame struct {
	Type   string    `json:"type"`
	ID     uint32    `json:"id,omitempty"`
	NowNS  int64     `json:"now_ns,omitempty"`
	Result *Result   `json:"result,omitempty"`
	Stats  *SubStats `json:"stats,omitempty"`
	Error  string    `json:"error,omitempty"`
}

// Result is QueryResult on the wire, field for field.
type Result struct {
	K               int     `json:"k"`
	DeadlineNS      int64   `json:"deadline_ns"`
	Received        bool    `json:"received"`
	OnTime          bool    `json:"on_time"`
	Value           float64 `json:"value"`
	Contributors    int     `json:"contributors"`
	AreaNodes       int     `json:"area_nodes"`
	Fidelity        float64 `json:"fidelity"`
	Success         bool    `json:"success"`
	EvaluatedAtNS   int64   `json:"evaluated_at_ns"`
	LatenessNS      int64   `json:"lateness_ns"`
	StaleNodes      int     `json:"stale_nodes"`
	MaxStalenessNS  int64   `json:"max_staleness_ns"`
	Warmup          bool    `json:"warmup,omitempty"`
	PrefetchedNodes int     `json:"prefetched_nodes,omitempty"`
	CorridorHit     bool    `json:"corridor_hit,omitempty"`
	// Trace is the period's echoed server-side span, present only on
	// traced subscriptions (Spec.TraceID set). The server stamps WireNS
	// the instant the frame is handed to the wire.
	Trace *TraceSpan `json:"trace,omitempty"`
}

// FromResult renders a session result for the wire.
func FromResult(r mobiquery.QueryResult) Result {
	w := Result{
		K:               r.K,
		DeadlineNS:      int64(r.Deadline),
		Received:        r.Received,
		OnTime:          r.OnTime,
		Value:           r.Value,
		Contributors:    r.Contributors,
		AreaNodes:       r.AreaNodes,
		Fidelity:        r.Fidelity,
		Success:         r.Success,
		EvaluatedAtNS:   int64(r.EvaluatedAt),
		LatenessNS:      int64(r.Lateness),
		StaleNodes:      r.StaleNodes,
		MaxStalenessNS:  int64(r.MaxStaleness),
		Warmup:          r.Warmup,
		PrefetchedNodes: r.PrefetchedNodes,
		CorridorHit:     r.CorridorHit,
	}
	if r.Trace != nil {
		ts := FromPeriodSpan(*r.Trace)
		w.Trace = &ts
	}
	return w
}

// QueryResult reconstructs the session result the frame was rendered
// from. FromResult and QueryResult are exact inverses.
func (r Result) QueryResult() mobiquery.QueryResult {
	q := mobiquery.QueryResult{
		K:               r.K,
		Deadline:        time.Duration(r.DeadlineNS),
		Received:        r.Received,
		OnTime:          r.OnTime,
		Value:           r.Value,
		Contributors:    r.Contributors,
		AreaNodes:       r.AreaNodes,
		Fidelity:        r.Fidelity,
		Success:         r.Success,
		EvaluatedAt:     time.Duration(r.EvaluatedAtNS),
		Lateness:        time.Duration(r.LatenessNS),
		StaleNodes:      r.StaleNodes,
		MaxStaleness:    time.Duration(r.MaxStalenessNS),
		Warmup:          r.Warmup,
		PrefetchedNodes: r.PrefetchedNodes,
		CorridorHit:     r.CorridorHit,
	}
	if r.Trace != nil {
		// A frame produced by FromResult always parses; a hand-built frame
		// with an invalid class or outcome reconstructs with those fields
		// zero rather than failing the whole result.
		sp, _ := r.Trace.PeriodSpan()
		q.Trace = &sp
	}
	return q
}

// SubStats is SubscriptionStats on the wire (an end frame, and the
// per-subscription stats endpoint).
type SubStats struct {
	Delivered  int `json:"delivered"`
	Dropped    int `json:"dropped"`
	Late       int `json:"late"`
	NextPeriod int `json:"next_period"`
}

// FromSubStats renders a subscription's ledger for the wire.
func FromSubStats(st mobiquery.SubscriptionStats) SubStats {
	return SubStats{
		Delivered:  st.Delivered,
		Dropped:    st.Dropped,
		Late:       st.Late,
		NextPeriod: st.NextPeriod,
	}
}

// Waypoint is one client-streamed ground-truth position update (a line
// of the waypoints request body).
type Waypoint struct {
	XM float64 `json:"x_m"`
	YM float64 `json:"y_m"`
}

// WaypointReply closes a waypoint stream: how many updates were applied.
type WaypointReply struct {
	Applied int `json:"applied"`
}

// ServiceStats is mobiquery.ServiceStats on the wire (GET /v1/stats).
type ServiceStats struct {
	NowNS       int64  `json:"now_ns"`
	Nodes       int    `json:"nodes"`
	Subscribers int    `json:"subscribers"`
	Draining    bool   `json:"draining,omitempty"`
	Opened      uint64 `json:"opened"`
	Closed      uint64 `json:"closed"`
	Delivered   uint64 `json:"delivered"`
	Dropped     uint64 `json:"dropped"`
	Late        uint64 `json:"late"`

	// Aggregate tile pyramid: instantiated boundary classes, periods
	// answered from tiles, and epoch ingests.
	PyramidClasses int    `json:"pyramid_classes"`
	PyramidServes  uint64 `json:"pyramid_serves"`
	PyramidBuilds  uint64 `json:"pyramid_builds"`

	// Scheduler shape: stripe count, total scheduled periods, per-stripe
	// occupancy, and the width of the last PopDue merge.
	SchedStripes    int   `json:"sched_stripes"`
	SchedLen        int   `json:"sched_len"`
	SchedStripeLens []int `json:"sched_stripe_lens,omitempty"`
	SchedMergeDepth int   `json:"sched_merge_depth"`
}

// FromServiceStats renders the service ledger for the wire.
func FromServiceStats(st mobiquery.ServiceStats) ServiceStats {
	return ServiceStats{
		NowNS:       int64(st.Now),
		Nodes:       st.Nodes,
		Subscribers: st.Subscribers,
		Draining:    st.Draining,
		Opened:      st.Opened,
		Closed:      st.Closed,
		Delivered:   st.Delivered,
		Dropped:     st.Dropped,
		Late:        st.Late,

		PyramidClasses: st.PyramidClasses,
		PyramidServes:  st.PyramidServes,
		PyramidBuilds:  st.PyramidBuilds,

		SchedStripes:    st.SchedStripes,
		SchedLen:        st.SchedLen,
		SchedStripeLens: st.SchedStripeLens,
		SchedMergeDepth: st.SchedMergeDepth,
	}
}

// PrefetchStats is the planner/corridor ledger on the wire, attached to
// the per-subscription stats endpoint for prefetching subscriptions.
type PrefetchStats struct {
	Strategy            string `json:"strategy"`
	Replans             int    `json:"replans"`
	Served              int64  `json:"served"`
	WarmupUntilNS       int64  `json:"warmup_until_ns"`
	CorridorHits        int64  `json:"corridor_hits,omitempty"`
	CorridorMisses      int64  `json:"corridor_misses,omitempty"`
	CorridorMispredicts int64  `json:"corridor_mispredicts,omitempty"`
	CorridorStaged      int64  `json:"corridor_staged,omitempty"`
}

// FromPrefetchStats renders the planner ledger for the wire.
func FromPrefetchStats(st mobiquery.PrefetchStats) PrefetchStats {
	return PrefetchStats{
		Strategy:            st.Strategy.String(),
		Replans:             st.Replans,
		Served:              st.Served,
		WarmupUntilNS:       int64(st.WarmupUntil),
		CorridorHits:        st.CorridorHits,
		CorridorMisses:      st.CorridorMisses,
		CorridorMispredicts: st.CorridorMispredicts,
		CorridorStaged:      st.CorridorStaged,
	}
}

// TraceSpan is one traced period lifecycle on the wire: a line of the
// NDJSON bodies of GET /v1/subscriptions/{id}/trace and GET /v1/trace,
// and the echo on a traced result frame. Timestamps are wall-clock
// nanoseconds; zero means the stage was never reached. TraceID and
// SpanID are fixed-width lowercase hex (FormatID), empty when the
// subscription carries no trace context.
type TraceSpan struct {
	TraceID     string `json:"trace_id,omitempty"`
	SpanID      string `json:"span_id,omitempty"`
	K           int    `json:"k"`
	DueNS       int64  `json:"due_ns"`
	ArmedNS     int64  `json:"armed_ns"`
	PoppedNS    int64  `json:"popped_ns"`
	EvalStartNS int64  `json:"eval_start_ns"`
	EvalEndNS   int64  `json:"eval_end_ns"`
	FlushNS     int64  `json:"flush_ns"`
	DeliveredNS int64  `json:"delivered_ns"`
	WireNS      int64  `json:"wire_ns,omitempty"`
	Class       string `json:"class"`
	Outcome     string `json:"outcome"`
	Late        bool   `json:"late,omitempty"`
}

// FromPeriodSpan renders a traced period for the wire.
func FromPeriodSpan(sp mobiquery.PeriodSpan) TraceSpan {
	return TraceSpan{
		TraceID:     FormatID(uint64(sp.Trace)),
		SpanID:      FormatID(uint64(sp.Span)),
		K:           sp.K,
		DueNS:       int64(sp.Due),
		ArmedNS:     sp.ArmedNS,
		PoppedNS:    sp.PoppedNS,
		EvalStartNS: sp.EvalStartNS,
		EvalEndNS:   sp.EvalEndNS,
		FlushNS:     sp.FlushNS,
		DeliveredNS: sp.DeliveredNS,
		WireNS:      sp.WireNS,
		Class:       sp.Class.String(),
		Outcome:     sp.Outcome.String(),
		Late:        sp.Late,
	}
}

// PeriodSpan reconstructs the session span the wire form was rendered
// from; FromPeriodSpan and PeriodSpan are exact inverses. The numeric
// fields are filled even when an id, class, or outcome fails to parse —
// the error then reports the first offender, with that field left zero.
func (t TraceSpan) PeriodSpan() (mobiquery.PeriodSpan, error) {
	sp := mobiquery.PeriodSpan{
		K:           t.K,
		Due:         time.Duration(t.DueNS),
		ArmedNS:     t.ArmedNS,
		PoppedNS:    t.PoppedNS,
		EvalStartNS: t.EvalStartNS,
		EvalEndNS:   t.EvalEndNS,
		FlushNS:     t.FlushNS,
		DeliveredNS: t.DeliveredNS,
		WireNS:      t.WireNS,
		Late:        t.Late,
	}
	tid, err := ParseID(t.TraceID)
	if err != nil {
		return sp, err
	}
	sid, err := ParseID(t.SpanID)
	if err != nil {
		return sp, err
	}
	sp.Trace, sp.Span = mobiquery.TraceID(tid), mobiquery.SpanID(sid)
	class, ok := obs.ParseClass(t.Class)
	if !ok {
		return sp, fmt.Errorf("wire: unknown serve class %q", t.Class)
	}
	outcome, ok := obs.ParseOutcome(t.Outcome)
	if !ok {
		return sp, fmt.Errorf("wire: unknown span outcome %q", t.Outcome)
	}
	sp.Class, sp.Outcome = class, outcome
	return sp, nil
}

// ClientSpan is one line of the loadgen's TRACE_pr.ndjson: the server's
// echoed period span joined with the client's own wall-clock stamps for
// the subscription — when the subscribe request was sent, when the ack
// arrived, and when this result frame was read off the wire. Server and
// client clocks are the same host under the smoke harness; across real
// hosts the cross-tier segment (WireNS → RecvNS) absorbs the skew.
type ClientSpan struct {
	Sub    uint32    `json:"sub"`
	SendNS int64     `json:"send_ns"`
	AckNS  int64     `json:"ack_ns"`
	RecvNS int64     `json:"recv_ns"`
	Server TraceSpan `json:"server"`
}

// SubscriptionInfo is the body of GET /v1/subscriptions/{id}/stats.
type SubscriptionInfo struct {
	ID       uint32         `json:"id"`
	Stats    SubStats       `json:"stats"`
	Prefetch *PrefetchStats `json:"prefetch,omitempty"`
}

// Health is the body of GET /healthz.
type Health struct {
	OK          bool  `json:"ok"`
	NowNS       int64 `json:"now_ns"`
	Subscribers int   `json:"subscribers"`
}

// AdvanceRequest is the body of POST /v1/advance (manual-clock servers
// only): move the service's virtual clock forward by DNS nanoseconds.
type AdvanceRequest struct {
	DNS int64 `json:"d_ns"`
}

// Encoder writes NDJSON: one compact JSON value per line. json.Encoder
// already emits exactly that for flat objects; the type exists so both
// ends share one definition of the framing.
type Encoder struct{ enc *json.Encoder }

// NewEncoder returns an Encoder writing to w.
func NewEncoder(w io.Writer) *Encoder { return &Encoder{enc: json.NewEncoder(w)} }

// Encode writes one frame line.
func (e *Encoder) Encode(v any) error { return e.enc.Encode(v) }

// Decoder reads a stream of NDJSON values.
type Decoder struct{ dec *json.Decoder }

// NewDecoder returns a Decoder reading from r.
func NewDecoder(r io.Reader) *Decoder { return &Decoder{dec: json.NewDecoder(r)} }

// Decode reads the next value into v; io.EOF ends a clean stream.
func (d *Decoder) Decode(v any) error { return d.dec.Decode(v) }
