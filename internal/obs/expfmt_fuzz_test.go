package obs

import (
	"strings"
	"testing"
)

// FuzzValidateExposition throws arbitrary scrape bodies at the validator.
// The properties: it never panics, it is deterministic, an accepted
// exposition's counts are sane (samples only exist under a family or as
// untyped lines the validator rejects, so families > 0 whenever
// samples > 0), and acceptance is insensitive to a trailing newline.
func FuzzValidateExposition(f *testing.F) {
	seeds := []string{
		"",
		"\n",
		"# just a comment\n",
		"# HELP ok fine\n# TYPE ok counter\nok 1\n",
		"# TYPE ok counter\nok{a=\"x,y\",b=\"z\"} 3 1700000000000\n",
		"# TYPE h histogram\nh_bucket{le=\"1\"} 2\nh_bucket{le=\"+Inf\"} 3\nh_sum 1.5\nh_count 3\n",
		"# TYPE g gauge\ng 0\ng{x=\"1\"} -2.5e-3\n",
		"# TYPE ok counter\nok{path=\"/v1/{id}/trace\",q=\"a\\\"b}\"} 3\n",
		// Known-invalid shapes, so mutation starts near the boundaries.
		"1bad 3\n",
		"# TYPE ok counter\nok abc\n",
		"# TYPE ok counter\nok{a=\"x 3\n",
		"# TYPE h histogram\nh_bucket{le=\"1\"} 5\nh_bucket{le=\"+Inf\"} 3\nh_sum 1\nh_count 3\n",
		"# TYPE ok counter\n# TYPE ok counter\nok 1\n",
		"# TYPE ok widget\nok 1\n",
		"# TYPE ok counter\nok NaN\nok{} +Inf\n",
		"# TYPE \xff\xfe counter\n",
	}
	for _, s := range seeds {
		f.Add(s)
	}
	f.Fuzz(func(t *testing.T, in string) {
		families, samples, err := ValidateExposition(strings.NewReader(in))
		f2, s2, err2 := ValidateExposition(strings.NewReader(in))
		if families != f2 || samples != s2 || (err == nil) != (err2 == nil) {
			t.Fatalf("validator is nondeterministic: (%d,%d,%v) vs (%d,%d,%v)",
				families, samples, err, f2, s2, err2)
		}
		if err != nil {
			return
		}
		if families < 0 || samples < 0 {
			t.Fatalf("negative counts: %d families, %d samples", families, samples)
		}
		if samples > 0 && families == 0 {
			t.Fatalf("%d samples accepted with no TYPE line", samples)
		}
		// A valid exposition stays valid with a trailing blank line.
		if _, _, err := ValidateExposition(strings.NewReader(in + "\n")); err != nil {
			t.Fatalf("trailing newline flipped acceptance: %v", err)
		}
	})
}
