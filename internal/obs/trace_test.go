package obs

import (
	"sync"
	"testing"
	"time"
)

func TestMintSpanID(t *testing.T) {
	if MintSpanID(1, 1) != MintSpanID(1, 1) {
		t.Fatal("span ids are not deterministic")
	}
	// Distinct within a trace and across traces, at least over a window
	// far wider than any subscription lifetime.
	seen := map[SpanID]bool{}
	for _, trace := range []TraceID{1, 2, 0xDEADBEEF} {
		for k := 1; k <= 10_000; k++ {
			id := MintSpanID(trace, k)
			if id == 0 {
				t.Fatalf("MintSpanID(%d, %d) = 0", trace, k)
			}
			if seen[id] {
				t.Fatalf("span id collision at trace %d k %d", trace, k)
			}
			seen[id] = true
		}
	}
}

func TestClassOutcomeRoundTrip(t *testing.T) {
	for c := Class(0); c < NumClasses; c++ {
		got, ok := ParseClass(c.String())
		if !ok || got != c {
			t.Errorf("ParseClass(%q) = %v, %v", c.String(), got, ok)
		}
	}
	if _, ok := ParseClass("unknown"); ok {
		t.Error("ParseClass should reject the unknown sentinel")
	}
	for _, o := range []Outcome{OutcomeDelivered, OutcomeDropped} {
		got, ok := ParseOutcome(o.String())
		if !ok || got != o {
			t.Errorf("ParseOutcome(%q) = %v, %v", o.String(), got, ok)
		}
	}
	if _, ok := ParseOutcome("lost"); ok {
		t.Error("ParseOutcome should reject unknown names")
	}
}

func TestSpanSink(t *testing.T) {
	var nilSink *SpanSink
	nilSink.Publish(&PeriodSpan{K: 1})
	if out, pub, drop := nilSink.Snapshot(nil); len(out) != 0 || pub != 0 || drop != 0 {
		t.Fatalf("nil sink snapshot = %d spans, %d/%d", len(out), pub, drop)
	}
	if NewSpanSink(0) != nil {
		t.Fatal("depth 0 should return a nil sink")
	}

	sink := NewSpanSink(4)
	for k := 1; k <= 3; k++ {
		sink.Publish(&PeriodSpan{K: k})
	}
	out, pub, drop := sink.Snapshot(nil)
	if len(out) != 3 || out[0].K != 1 || out[2].K != 3 || pub != 3 || drop != 0 {
		t.Fatalf("partial snapshot = %+v (%d/%d)", out, pub, drop)
	}
	// Overflow: the ring keeps the newest 4, counts the overwritten.
	for k := 4; k <= 10; k++ {
		sink.Publish(&PeriodSpan{K: k})
	}
	out, pub, drop = sink.Snapshot(out[:0])
	if len(out) != 4 || pub != 10 || drop != 6 {
		t.Fatalf("wrapped snapshot: %d spans, %d published, %d dropped", len(out), pub, drop)
	}
	for i, want := range []int{7, 8, 9, 10} {
		if out[i].K != want {
			t.Fatalf("wrapped snapshot[%d].K = %d, want %d", i, out[i].K, want)
		}
	}
	if p, d := sink.Counts(); p != 10 || d != 6 {
		t.Fatalf("Counts = %d/%d, want 10/6", p, d)
	}
}

// TestTraceRingConcurrent races recorders against snapshotters; the race
// detector is the assertion, plus every observed span must be internally
// consistent (K stamped into both fields, never torn).
func TestTraceRingConcurrent(t *testing.T) {
	ring := NewTraceRing(8)
	var writers, readers sync.WaitGroup
	stop := make(chan struct{})
	for r := 0; r < 2; r++ {
		readers.Add(1)
		go func() {
			defer readers.Done()
			var buf []PeriodSpan
			for {
				select {
				case <-stop:
					return
				default:
				}
				buf = ring.Snapshot(buf[:0])
				for _, sp := range buf {
					if int64(sp.K) != sp.ArmedNS || time.Duration(sp.K) != sp.Due {
						t.Errorf("torn span: %+v", sp)
						return
					}
				}
			}
		}()
	}
	for w := 0; w < 4; w++ {
		writers.Add(1)
		go func() {
			defer writers.Done()
			for k := 1; k <= 500; k++ {
				ring.Record(&PeriodSpan{K: k, Due: time.Duration(k), ArmedNS: int64(k)})
			}
		}()
	}
	writers.Wait()
	close(stop)
	readers.Wait()
}

// TestSpanSinkConcurrent races publishers against snapshotters and checks
// the published count is exact and no span is torn.
func TestSpanSinkConcurrent(t *testing.T) {
	sink := NewSpanSink(16)
	const writers, perWriter = 4, 500
	var wg sync.WaitGroup
	stop := make(chan struct{})
	var readers sync.WaitGroup
	for r := 0; r < 2; r++ {
		readers.Add(1)
		go func() {
			defer readers.Done()
			var buf []PeriodSpan
			for {
				select {
				case <-stop:
					return
				default:
				}
				out, pub, drop := sink.Snapshot(buf[:0])
				buf = out
				if drop > pub {
					t.Errorf("dropped %d > published %d", drop, pub)
					return
				}
				for _, sp := range out {
					if int64(sp.K) != sp.ArmedNS {
						t.Errorf("torn span: %+v", sp)
						return
					}
				}
			}
		}()
	}
	for w := 0; w < writers; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for k := 1; k <= perWriter; k++ {
				sink.Publish(&PeriodSpan{K: k, ArmedNS: int64(k)})
			}
		}()
	}
	wg.Wait()
	close(stop)
	readers.Wait()
	if pub, _ := sink.Counts(); pub != writers*perWriter {
		t.Fatalf("published = %d, want %d", pub, writers*perWriter)
	}
}

func BenchmarkSpanSinkPublish(b *testing.B) {
	sink := NewSpanSink(4096)
	span := PeriodSpan{K: 1, Due: time.Second, Class: ClassPyramid}
	benchNoAlloc(b, func(i int) {
		span.K = i
		sink.Publish(&span)
	})
}

// BenchmarkTraceSnapshot pins that a reader reusing its buffer snapshots
// a full ring without allocating — the firehose handler's steady state.
func BenchmarkTraceSnapshot(b *testing.B) {
	sink := NewSpanSink(256)
	for k := 1; k <= 512; k++ {
		sink.Publish(&PeriodSpan{K: k})
	}
	buf := make([]PeriodSpan, 0, 256)
	benchNoAlloc(b, func(int) {
		buf, _, _ = sink.Snapshot(buf[:0])
	})
}
