package obs

import (
	"runtime"
	"strings"
	"sync"
	"testing"
	"time"
)

// TestHistogramBucketProperty sweeps values across the full range and pins
// the bucketing invariants: every value lands in exactly one bucket, that
// bucket's inclusive bounds contain it, and the bounds table is strictly
// increasing (so the cumulative exposition is monotone by construction).
func TestHistogramBucketProperty(t *testing.T) {
	h := NewHistogram(int64(64*time.Second), 1e-9)
	for i := 1; i < len(h.bounds); i++ {
		if h.bounds[i] <= h.bounds[i-1] {
			t.Fatalf("bounds not strictly increasing at %d: %d <= %d", i, h.bounds[i], h.bounds[i-1])
		}
	}
	// Exhaustive over the small range, then boundary-straddling probes over
	// every octave: the bucket must be the unique one whose half-open
	// (prevBound, bound] interval contains the value.
	check := func(v int64) {
		t.Helper()
		idx := h.index(v)
		if idx < 0 || idx >= len(h.bkts) {
			t.Fatalf("value %d: bucket index %d out of range", v, idx)
		}
		if idx == len(h.bkts)-1 {
			if v <= h.bounds[len(h.bounds)-1] {
				t.Fatalf("value %d landed in overflow but max bound is %d", v, h.bounds[len(h.bounds)-1])
			}
			return
		}
		if v > h.bounds[idx] {
			t.Fatalf("value %d above its bucket bound %d (idx %d)", v, h.bounds[idx], idx)
		}
		if idx > 0 && v <= h.bounds[idx-1] {
			t.Fatalf("value %d at or below previous bound %d (idx %d)", v, h.bounds[idx-1], idx)
		}
	}
	for v := int64(0); v < 4096; v++ {
		check(v)
	}
	for _, b := range h.bounds {
		for _, v := range []int64{b - 1, b, b + 1} {
			if v >= 0 {
				check(v)
			}
		}
	}
	// Far beyond the range: overflow bucket.
	huge := h.bounds[len(h.bounds)-1] * 16
	if got := h.index(huge); got != len(h.bkts)-1 {
		t.Fatalf("value %d: want overflow bucket %d, got %d", huge, len(h.bkts)-1, got)
	}

	// Count/Sum bookkeeping, including the negative clamp.
	h.Observe(-5)
	h.Observe(10)
	h.Observe(huge)
	if h.Count() != 3 {
		t.Fatalf("count = %d, want 3", h.Count())
	}
	if h.Sum() != 10+huge {
		t.Fatalf("sum = %d, want %d", h.Sum(), 10+huge)
	}
	var cum uint64
	for i := 0; i < h.NumBuckets(); i++ {
		_, n, _ := h.Bucket(i)
		cum += n
	}
	if cum != h.Count() {
		t.Fatalf("bucket sum %d != count %d", cum, h.Count())
	}
}

// TestHistogramQuantile pins the quantile estimator's bucket-upper-bound
// semantics.
func TestHistogramQuantile(t *testing.T) {
	h := NewHistogram(1<<20, 1)
	if h.Quantile(0.5) != 0 {
		t.Fatalf("empty histogram quantile should be 0")
	}
	for v := int64(0); v < 100; v++ {
		h.Observe(v)
	}
	if q := h.Quantile(0); q < 0 || q > 1 {
		t.Fatalf("q0 = %d, want a bound at the bottom of the range", q)
	}
	med := h.Quantile(0.5)
	if med < 49 || med > 63 {
		t.Fatalf("median bound %d outside the plausible bucket range [49, 63]", med)
	}
	if max := h.Quantile(1); max < 99 {
		t.Fatalf("q1 = %d, want >= 99", max)
	}
}

// TestConcurrentIncrement hammers one counter, one gauge, and one histogram
// from many goroutines; run under -race this doubles as the data-race
// check, and the totals pin that no increment is lost.
func TestConcurrentIncrement(t *testing.T) {
	r := NewRegistry()
	c := r.Counter("t_total", "", "test counter")
	g := r.Gauge("t_gauge", "", "test gauge")
	h := r.Histogram("t_seconds", "", "test histogram", int64(time.Second), 1e-9)
	const workers, per = 8, 10000
	var wg sync.WaitGroup
	wg.Add(workers)
	for w := 0; w < workers; w++ {
		go func(w int) {
			defer wg.Done()
			for i := 0; i < per; i++ {
				c.Inc()
				g.Add(1)
				h.Observe(int64(w*per + i))
			}
		}(w)
	}
	wg.Wait()
	if c.Load() != workers*per {
		t.Fatalf("counter = %d, want %d", c.Load(), workers*per)
	}
	if g.Load() != workers*per {
		t.Fatalf("gauge = %d, want %d", g.Load(), workers*per)
	}
	if h.Count() != workers*per {
		t.Fatalf("histogram count = %d, want %d", h.Count(), workers*per)
	}
	var sb strings.Builder
	if err := r.WritePrometheus(&sb); err != nil {
		t.Fatalf("WritePrometheus: %v", err)
	}
	if _, _, err := ValidateExposition(strings.NewReader(sb.String())); err != nil {
		t.Fatalf("exposition invalid: %v\n%s", err, sb.String())
	}
}

// TestRegistryExposition pins the rendered format end to end: family order,
// get-or-create identity, OnScrape sampling, label rendering, histogram
// bucket elision with +Inf/_sum/_count, and validator acceptance.
func TestRegistryExposition(t *testing.T) {
	r := NewRegistry()
	c := r.Counter("app_things_total", `kind="a"`, "things processed")
	if c2 := r.Counter("app_things_total", `kind="a"`, "things processed"); c2 != c {
		t.Fatalf("get-or-create returned a different counter")
	}
	cb := r.Counter("app_things_total", `kind="b"`, "things processed")
	g := r.Gauge("app_level", "", "current level")
	h := r.Histogram("app_op_seconds", "", "op latency", int64(time.Second), 1e-9)
	r.OnScrape(func() { g.Set(42) })

	c.Add(3)
	cb.Inc()
	h.Observe(0)
	h.Observe(7)
	h.Observe(int64(2 * time.Second)) // overflow

	var sb strings.Builder
	if err := r.WritePrometheus(&sb); err != nil {
		t.Fatalf("WritePrometheus: %v", err)
	}
	out := sb.String()
	for _, want := range []string{
		"# HELP app_things_total things processed\n# TYPE app_things_total counter\n" +
			"app_things_total{kind=\"a\"} 3\napp_things_total{kind=\"b\"} 1\n",
		"# TYPE app_level gauge\napp_level 42\n",
		"# TYPE app_op_seconds histogram\n",
		"app_op_seconds_bucket{le=\"0\"} 1\n",
		"app_op_seconds_bucket{le=\"7e-09\"} 2\n",
		"app_op_seconds_bucket{le=\"+Inf\"} 3\n",
		"app_op_seconds_count 3\n",
	} {
		if !strings.Contains(out, want) {
			t.Fatalf("exposition missing %q:\n%s", want, out)
		}
	}
	// Elision: only observed buckets (plus +Inf) appear.
	if n := strings.Count(out, "app_op_seconds_bucket"); n != 3 {
		t.Fatalf("want 3 bucket lines after elision, got %d:\n%s", n, out)
	}
	fams, samples, err := ValidateExposition(strings.NewReader(out))
	if err != nil {
		t.Fatalf("exposition invalid: %v\n%s", err, out)
	}
	if fams != 3 || samples < 8 {
		t.Fatalf("validator saw %d families / %d samples, want 3 / >=8", fams, samples)
	}
	types := r.TypeLines()
	if len(types) != 3 || types[0] != "# TYPE app_level gauge" {
		t.Fatalf("TypeLines = %q", types)
	}
}

// TestRegistryKindConflict pins the registration panic on kind mismatch.
func TestRegistryKindConflict(t *testing.T) {
	r := NewRegistry()
	r.Counter("x_total", "", "x")
	defer func() {
		if recover() == nil {
			t.Fatalf("want panic registering x_total as gauge")
		}
	}()
	r.Gauge("x_total", "", "x")
}

// TestTraceRing pins ring semantics: nil rings are no-ops, a partial ring
// snapshots in insertion order, and a wrapped ring keeps the newest depth
// spans oldest-first.
func TestTraceRing(t *testing.T) {
	var nilRing *TraceRing
	nilRing.Record(&PeriodSpan{K: 1})
	if got := nilRing.Snapshot(nil); len(got) != 0 {
		t.Fatalf("nil ring snapshot = %d spans", len(got))
	}
	if NewTraceRing(0) != nil {
		t.Fatalf("depth 0 should return a nil ring")
	}

	ring := NewTraceRing(4)
	for k := 1; k <= 3; k++ {
		ring.Record(&PeriodSpan{K: k})
	}
	got := ring.Snapshot(nil)
	if len(got) != 3 || got[0].K != 1 || got[2].K != 3 {
		t.Fatalf("partial snapshot = %+v", got)
	}
	for k := 4; k <= 10; k++ {
		ring.Record(&PeriodSpan{K: k})
	}
	got = ring.Snapshot(got[:0])
	if len(got) != 4 {
		t.Fatalf("wrapped snapshot has %d spans, want 4", len(got))
	}
	for i, want := range []int{7, 8, 9, 10} {
		if got[i].K != want {
			t.Fatalf("wrapped snapshot[%d].K = %d, want %d", i, got[i].K, want)
		}
	}
}

// TestValidateExpositionRejects pins the validator against the malformed
// lines CI is meant to catch.
func TestValidateExpositionRejects(t *testing.T) {
	cases := map[string]string{
		"bad metric name":  "# TYPE ok counter\n1bad 3\n",
		"no value":         "# TYPE ok counter\nok\n",
		"bad value":        "# TYPE ok counter\nok abc\n",
		"no TYPE":          "orphan 3\n",
		"unterminated":     "# TYPE ok counter\nok{a=\"x 3\n",
		"bad label name":   "# TYPE ok counter\nok{1a=\"x\"} 3\n",
		"bucket no le":     "# TYPE h histogram\nh_bucket 1\nh_sum 1\nh_count 1\n",
		"non-monotone":     "# TYPE h histogram\nh_bucket{le=\"1\"} 5\nh_bucket{le=\"+Inf\"} 3\nh_sum 1\nh_count 3\n",
		"inf != count":     "# TYPE h histogram\nh_bucket{le=\"+Inf\"} 3\nh_sum 1\nh_count 4\n",
		"missing +Inf":     "# TYPE h histogram\nh_bucket{le=\"1\"} 3\nh_sum 1\nh_count 3\n",
		"duplicate TYPE":   "# TYPE ok counter\n# TYPE ok counter\nok 1\n",
		"unknown kind":     "# TYPE ok widget\nok 1\n",
		"trailing garbage": "# TYPE ok counter\nok 3 12 9\n",
	}
	for name, in := range cases {
		if _, _, err := ValidateExposition(strings.NewReader(in)); err == nil {
			t.Errorf("%s: validator accepted %q", name, in)
		}
	}
	good := "# some comment\n# HELP ok fine\n# TYPE ok counter\nok{a=\"x,y\",b=\"z\"} 3 1700000000000\n\n"
	if _, _, err := ValidateExposition(strings.NewReader(good)); err != nil {
		t.Fatalf("validator rejected valid exposition: %v", err)
	}
	// '}' and escaped quotes inside a quoted label value are legal — the
	// closing-brace scan must not stop inside the value.
	braces := "# TYPE ok counter\nok{path=\"/v1/{id}/trace\",q=\"a\\\"b}\"} 3\n"
	if _, _, err := ValidateExposition(strings.NewReader(braces)); err != nil {
		t.Fatalf("validator rejected label value containing '}': %v", err)
	}
}

// The record-path benchmarks hard-fail on any allocation in the timed loop
// — the same enforcement pattern as BenchmarkAdvance1M/Idle, and the teeth
// behind the 0-alloc claim (bench-compare's -allocfloor exempts near-zero
// baselines, so the in-benchmark check is what actually gates).

func benchNoAlloc(b *testing.B, f func(i int)) {
	b.Helper()
	var before, after runtime.MemStats
	runtime.GC()
	runtime.ReadMemStats(&before)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		f(i)
	}
	b.StopTimer()
	runtime.ReadMemStats(&after)
	if mallocs := after.Mallocs - before.Mallocs; mallocs > uint64(b.N/1000) {
		b.Fatalf("record path allocated: %d mallocs over %d iterations", mallocs, b.N)
	}
}

func BenchmarkCounterInc(b *testing.B) {
	c := NewRegistry().Counter("bench_total", "", "bench")
	benchNoAlloc(b, func(int) { c.Inc() })
}

func BenchmarkHistogramObserve(b *testing.B) {
	h := NewRegistry().Histogram("bench_seconds", "", "bench", int64(64*time.Second), 1e-9)
	benchNoAlloc(b, func(i int) { h.Observe(int64(i) * 37) })
}

func BenchmarkTraceRecord(b *testing.B) {
	ring := NewTraceRing(16)
	span := PeriodSpan{K: 1, Due: time.Second, Class: ClassCold}
	benchNoAlloc(b, func(i int) {
		span.K = i
		ring.Record(&span)
	})
}
