package obs

import (
	"bufio"
	"fmt"
	"io"
	"strconv"
	"strings"
)

// ValidateExposition checks a Prometheus text exposition (format 0.0.4)
// for structural validity: well-formed HELP/TYPE comments, every sample
// line parseable as `name{labels} value [timestamp]` with a legal metric
// name and label syntax and a float-parseable value, every sample's base
// family announced by a TYPE line first, and every histogram child's
// cumulative _bucket series monotone with its +Inf bucket equal to its
// _count. It returns the family and sample counts so callers can report
// coverage; any violation is an error naming the offending line.
//
// The validator is deliberately small — it gates CI smoke artifacts against
// malformed instrumentation, it does not implement the full scrape parser.
func ValidateExposition(r io.Reader) (families, samples int, err error) {
	sc := bufio.NewScanner(r)
	sc.Buffer(make([]byte, 0, 64*1024), 1024*1024)
	types := make(map[string]string) // family name -> kind
	// histogram reconciliation state, keyed by family + child labels
	// (le stripped): last cumulative bucket value, +Inf value, count value.
	type histState struct {
		lastCum  float64
		hasInf   bool
		infVal   float64
		hasCount bool
		countVal float64
	}
	hists := make(map[string]*histState)
	lineNo := 0
	for sc.Scan() {
		lineNo++
		line := sc.Text()
		if strings.TrimSpace(line) == "" {
			continue
		}
		if strings.HasPrefix(line, "#") {
			kind, name, rest, cerr := parseComment(line)
			if cerr != nil {
				return 0, 0, fmt.Errorf("line %d: %v", lineNo, cerr)
			}
			if kind == "TYPE" {
				switch rest {
				case "counter", "gauge", "histogram", "summary", "untyped":
				default:
					return 0, 0, fmt.Errorf("line %d: unknown metric type %q", lineNo, rest)
				}
				if _, dup := types[name]; dup {
					return 0, 0, fmt.Errorf("line %d: duplicate TYPE for %q", lineNo, name)
				}
				types[name] = rest
				families++
			}
			continue
		}
		name, labels, value, perr := parseSample(line)
		if perr != nil {
			return 0, 0, fmt.Errorf("line %d: %v", lineNo, perr)
		}
		samples++
		base, suffix := baseName(name, types)
		if types[base] == "" {
			return 0, 0, fmt.Errorf("line %d: sample %q has no preceding TYPE line", lineNo, name)
		}
		if types[base] != "histogram" {
			continue
		}
		key := base + "\x00" + stripLabel(labels, "le")
		st := hists[key]
		if st == nil {
			st = &histState{}
			hists[key] = st
		}
		switch suffix {
		case "_bucket":
			le, ok := labelValue(labels, "le")
			if !ok {
				return 0, 0, fmt.Errorf("line %d: histogram bucket without le label", lineNo)
			}
			if value+1e-9 < st.lastCum {
				return 0, 0, fmt.Errorf("line %d: histogram %s cumulative bucket decreased (%g after %g)", lineNo, base, value, st.lastCum)
			}
			st.lastCum = value
			if le == "+Inf" {
				st.hasInf = true
				st.infVal = value
			}
		case "_count":
			st.hasCount = true
			st.countVal = value
		}
	}
	if serr := sc.Err(); serr != nil {
		return 0, 0, serr
	}
	for key, st := range hists {
		base := key[:strings.IndexByte(key, 0)]
		if !st.hasInf {
			return 0, 0, fmt.Errorf("histogram %s: missing +Inf bucket", base)
		}
		if !st.hasCount {
			return 0, 0, fmt.Errorf("histogram %s: missing _count", base)
		}
		if st.infVal != st.countVal {
			return 0, 0, fmt.Errorf("histogram %s: +Inf bucket %g != _count %g", base, st.infVal, st.countVal)
		}
	}
	return families, samples, nil
}

// parseComment validates a `# HELP name ...` / `# TYPE name kind` line
// (other comments pass through with empty kind).
func parseComment(line string) (kind, name, rest string, err error) {
	body := strings.TrimPrefix(line, "#")
	body = strings.TrimLeft(body, " ")
	fields := strings.SplitN(body, " ", 3)
	if len(fields) == 0 || (fields[0] != "HELP" && fields[0] != "TYPE") {
		return "", "", "", nil // free-form comment
	}
	if len(fields) < 2 || !validMetricName(fields[1]) {
		return "", "", "", fmt.Errorf("malformed %s comment %q", fields[0], line)
	}
	if fields[0] == "TYPE" && len(fields) < 3 {
		return "", "", "", fmt.Errorf("TYPE comment missing kind: %q", line)
	}
	if len(fields) == 3 {
		rest = fields[2]
	}
	return fields[0], fields[1], rest, nil
}

// parseSample splits one sample line into name, raw label body, and value.
func parseSample(line string) (name, labels string, value float64, err error) {
	rest := line
	if i := strings.IndexByte(rest, '{'); i >= 0 {
		name = rest[:i]
		j := labelEnd(rest[i:])
		if j < 0 {
			return "", "", 0, fmt.Errorf("unterminated label braces: %q", line)
		}
		labels = rest[i+1 : i+j]
		rest = strings.TrimLeft(rest[i+j+1:], " \t")
	} else {
		sp := strings.IndexAny(rest, " \t")
		if sp < 0 {
			return "", "", 0, fmt.Errorf("sample line without value: %q", line)
		}
		name = rest[:sp]
		rest = strings.TrimLeft(rest[sp:], " \t")
	}
	if !validMetricName(name) {
		return "", "", 0, fmt.Errorf("invalid metric name %q", name)
	}
	if err := validLabels(labels); err != nil {
		return "", "", 0, fmt.Errorf("%v in %q", err, line)
	}
	fields := strings.Fields(rest)
	if len(fields) < 1 || len(fields) > 2 {
		return "", "", 0, fmt.Errorf("expected value [timestamp], got %q", rest)
	}
	v, perr := parseValue(fields[0])
	if perr != nil {
		return "", "", 0, fmt.Errorf("bad sample value %q", fields[0])
	}
	if len(fields) == 2 {
		if _, terr := strconv.ParseInt(fields[1], 10, 64); terr != nil {
			return "", "", 0, fmt.Errorf("bad timestamp %q", fields[1])
		}
	}
	return name, labels, v, nil
}

// labelEnd returns the index in s (which starts at the opening '{') of the
// '}' closing the label body, skipping over quoted values — where '}' and
// backslash-escaped quotes are legal — or -1 when unterminated.
func labelEnd(s string) int {
	inQuote := false
	for k := 1; k < len(s); k++ {
		switch {
		case inQuote && s[k] == '\\':
			k++
		case s[k] == '"':
			inQuote = !inQuote
		case !inQuote && s[k] == '}':
			return k
		}
	}
	return -1
}

// parseValue parses a sample value, accepting the format's +Inf/-Inf/NaN.
func parseValue(s string) (float64, error) {
	return strconv.ParseFloat(s, 64)
}

func validMetricName(s string) bool {
	if s == "" {
		return false
	}
	for i, c := range s {
		ok := c == '_' || c == ':' ||
			(c >= 'a' && c <= 'z') || (c >= 'A' && c <= 'Z') ||
			(i > 0 && c >= '0' && c <= '9')
		if !ok {
			return false
		}
	}
	return true
}

// validLabels checks the raw label body: comma-separated name="value"
// pairs with legal label names and terminated quoted values.
func validLabels(s string) error {
	for s != "" {
		eq := strings.IndexByte(s, '=')
		if eq <= 0 {
			return fmt.Errorf("malformed label pair")
		}
		lname := strings.TrimSpace(s[:eq])
		if !validLabelName(lname) {
			return fmt.Errorf("invalid label name %q", lname)
		}
		rest := s[eq+1:]
		if len(rest) == 0 || rest[0] != '"' {
			return fmt.Errorf("unquoted label value")
		}
		end := -1
		for i := 1; i < len(rest); i++ {
			if rest[i] == '\\' {
				i++
				continue
			}
			if rest[i] == '"' {
				end = i
				break
			}
		}
		if end < 0 {
			return fmt.Errorf("unterminated label value")
		}
		s = rest[end+1:]
		if s == "" {
			break
		}
		if s[0] != ',' {
			return fmt.Errorf("expected comma between labels")
		}
		s = s[1:]
	}
	return nil
}

func validLabelName(s string) bool {
	if s == "" {
		return false
	}
	for i, c := range s {
		ok := c == '_' ||
			(c >= 'a' && c <= 'z') || (c >= 'A' && c <= 'Z') ||
			(i > 0 && c >= '0' && c <= '9')
		if !ok {
			return false
		}
	}
	return true
}

// baseName resolves a sample name to its announcing family: histogram and
// summary series use the _bucket/_sum/_count suffixes of their base name.
func baseName(name string, types map[string]string) (base, suffix string) {
	for _, suf := range []string{"_bucket", "_sum", "_count"} {
		if strings.HasSuffix(name, suf) {
			b := strings.TrimSuffix(name, suf)
			if k := types[b]; k == "histogram" || k == "summary" {
				return b, suf
			}
		}
	}
	return name, ""
}

// labelValue extracts one label's (unescaped-as-written) value from a raw
// label body.
func labelValue(labels, key string) (string, bool) {
	for _, part := range splitLabels(labels) {
		if k, v, ok := strings.Cut(part, "="); ok && strings.TrimSpace(k) == key {
			return strings.Trim(v, `"`), true
		}
	}
	return "", false
}

// stripLabel returns the label body with one label removed — the child
// identity of a histogram series across its le-varying buckets.
func stripLabel(labels, key string) string {
	parts := splitLabels(labels)
	out := parts[:0]
	for _, part := range parts {
		if k, _, ok := strings.Cut(part, "="); ok && strings.TrimSpace(k) == key {
			continue
		}
		out = append(out, part)
	}
	return strings.Join(out, ",")
}

// splitLabels splits a raw label body on commas outside quoted values.
func splitLabels(labels string) []string {
	if labels == "" {
		return nil
	}
	var parts []string
	start, inQuote := 0, false
	for i := 0; i < len(labels); i++ {
		switch labels[i] {
		case '\\':
			if inQuote {
				i++
			}
		case '"':
			inQuote = !inQuote
		case ',':
			if !inQuote {
				parts = append(parts, labels[start:i])
				start = i + 1
			}
		}
	}
	return append(parts, labels[start:])
}
