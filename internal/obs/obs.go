// Package obs is the dependency-free observability core: atomic counters
// and gauges, fixed-boundary log-spaced histograms whose record path is
// 0-alloc and lock-free, and a registry rendering the lot in Prometheus
// text exposition format (version 0.0.4). It also carries the period
// lifecycle tracer (trace.go) and a tiny exposition validator (expfmt.go).
//
// The record path is the design constraint: Counter.Inc, Gauge.Set, and
// Histogram.Observe are a handful of atomic operations with no allocation,
// no lock, and no time lookup, so they are safe to call from Advance's
// 1M-subscriber hot loop. All rendering cost (label formatting, bucket
// bounds, cumulative sums) is paid at registration or scrape time.
package obs

import (
	"fmt"
	"io"
	"math"
	"math/bits"
	"sort"
	"strconv"
	"strings"
	"sync"
	"sync/atomic"
)

// Counter is a monotonically increasing counter. The zero value is unusable;
// obtain one from Registry.Counter.
type Counter struct {
	labels string
	v      atomic.Uint64
}

// Inc adds one.
func (c *Counter) Inc() { c.v.Add(1) }

// Add adds n.
func (c *Counter) Add(n uint64) { c.v.Add(n) }

// Set overwrites the counter's value. It exists for scrape-time sampling of
// an external monotone ledger (the service's lifetime delivery totals) into
// the exposition; instrumented code paths should use Inc/Add.
func (c *Counter) Set(n uint64) { c.v.Store(n) }

// Load returns the current value.
func (c *Counter) Load() uint64 { return c.v.Load() }

// Gauge is a value that can go up and down. Obtain from Registry.Gauge.
type Gauge struct {
	labels string
	v      atomic.Int64
}

// Set replaces the gauge's value.
func (g *Gauge) Set(n int64) { g.v.Store(n) }

// Add adjusts the gauge by n (negative to decrease).
func (g *Gauge) Add(n int64) { g.v.Add(n) }

// Load returns the current value.
func (g *Gauge) Load() int64 { return g.v.Load() }

// Histogram bucket geometry: values below histLinear get one bucket each
// (exact small counts — merge depths, tiny batches); above that, each
// power-of-two octave splits into histSub log-linear sub-buckets, giving a
// worst-case relative bucket width of 1/histSub across the whole range. The
// bucket index is pure arithmetic (bits.Len64 + shift + mask), never a
// search, so Observe stays O(1) whatever the range.
const (
	histLinear  = 16
	histSubBits = 2
	histSub     = 1 << histSubBits
	// histMinOct is the first octave with sub-bucket resolution: values in
	// [16, 31] are octave 4.
	histMinOct = 4
)

// Histogram is a fixed-boundary log-spaced histogram over non-negative
// int64 values (typically nanoseconds or sizes). Observe is lock-free and
// allocation-free. Obtain from Registry.Histogram, or standalone from
// NewHistogram for non-exported uses (experiment harnesses).
type Histogram struct {
	labels string
	scale  float64 // multiplies bounds and sum at exposition (1e-9: ns → s)
	maxOct int
	bounds []int64 // inclusive upper bound per bucket; last bucket is +Inf
	count  atomic.Uint64
	sum    atomic.Int64
	bkts   []atomic.Uint64
}

// NewHistogram returns a histogram resolving values up to max (larger
// observations land in the +Inf overflow bucket). scale multiplies bucket
// bounds and the sum at exposition time — pass 1e-9 to record nanoseconds
// and expose seconds, 1 for dimensionless sizes.
func NewHistogram(max int64, scale float64) *Histogram {
	if max < histLinear {
		max = histLinear
	}
	maxOct := bits.Len64(uint64(max)) - 1
	n := histLinear + (maxOct-histMinOct+1)*histSub + 1
	h := &Histogram{scale: scale, maxOct: maxOct, bkts: make([]atomic.Uint64, n)}
	h.bounds = make([]int64, 0, n-1)
	for v := int64(0); v < histLinear; v++ {
		h.bounds = append(h.bounds, v)
	}
	for oct := histMinOct; oct <= maxOct; oct++ {
		base := int64(1) << oct
		step := int64(1) << (oct - histSubBits)
		for s := int64(1); s <= histSub; s++ {
			h.bounds = append(h.bounds, base+s*step-1)
		}
	}
	return h
}

// index maps a value to its bucket: O(1) arithmetic, no search.
func (h *Histogram) index(v int64) int {
	if v < histLinear { // covers v < 0 too (clamped into bucket 0 by caller)
		return int(v)
	}
	oct := bits.Len64(uint64(v)) - 1
	if oct > h.maxOct {
		return len(h.bkts) - 1
	}
	sub := int((uint64(v) >> uint(oct-histSubBits)) & (histSub - 1))
	return histLinear + (oct-histMinOct)*histSub + sub
}

// Observe records one value. Negative values clamp to zero. Lock-free and
// allocation-free.
func (h *Histogram) Observe(v int64) {
	if v < 0 {
		v = 0
	}
	h.bkts[h.index(v)].Add(1)
	h.count.Add(1)
	h.sum.Add(v)
}

// Count returns the number of observations.
func (h *Histogram) Count() uint64 { return h.count.Load() }

// Sum returns the sum of observed values in recorded (unscaled) units.
func (h *Histogram) Sum() int64 { return h.sum.Load() }

// NumBuckets returns the bucket count including the +Inf overflow bucket.
func (h *Histogram) NumBuckets() int { return len(h.bkts) }

// Bucket returns bucket i's inclusive upper bound in recorded units and its
// (non-cumulative) count. The last bucket's bound is reported as
// math.MaxInt64 semantics via ok=false.
func (h *Histogram) Bucket(i int) (bound int64, count uint64, ok bool) {
	if i == len(h.bkts)-1 {
		return 0, h.bkts[i].Load(), false
	}
	return h.bounds[i], h.bkts[i].Load(), true
}

// Quantile returns an upper bound on the q-quantile of the observed values
// in recorded units: the inclusive upper bound of the bucket the quantile
// falls in (the largest finite bound for observations in the overflow
// bucket). q is clamped to [0, 1]; a histogram with no observations
// reports 0.
func (h *Histogram) Quantile(q float64) int64 {
	total := h.count.Load()
	if total == 0 {
		return 0
	}
	if q < 0 {
		q = 0
	}
	if q > 1 {
		q = 1
	}
	// Nearest-rank: the smallest rank covering fraction q, so p99 over 100
	// observations targets rank 99 (truncation would hand back rank 98).
	target := uint64(math.Ceil(q * float64(total)))
	if target < 1 {
		target = 1
	}
	if target > total {
		target = total
	}
	var cum uint64
	for i := range h.bkts {
		cum += h.bkts[i].Load()
		if cum >= target {
			if i == len(h.bkts)-1 {
				return h.bounds[len(h.bounds)-1]
			}
			return h.bounds[i]
		}
	}
	return h.bounds[len(h.bounds)-1]
}

// metric kinds for the registry's families.
type metricKind int

const (
	counterKind metricKind = iota
	gaugeKind
	histogramKind
)

func (k metricKind) String() string {
	switch k {
	case counterKind:
		return "counter"
	case gaugeKind:
		return "gauge"
	default:
		return "histogram"
	}
}

// family is one metric name: a TYPE, a HELP string, and the label-distinct
// children registered under it, in registration order.
type family struct {
	name string
	help string
	kind metricKind

	counters   []*Counter
	gauges     []*Gauge
	histograms []*Histogram
}

// Registry holds metric families and renders them as Prometheus text. All
// registration methods are get-or-create: asking for the same
// (name, labels) twice returns the original, so independent components can
// share a family without coordination. Registering one name under two kinds
// panics — that is a programming error, not runtime input.
type Registry struct {
	mu       sync.Mutex
	fams     []*family
	byName   map[string]*family
	onScrape []func()
}

// NewRegistry returns an empty registry.
func NewRegistry() *Registry {
	return &Registry{byName: make(map[string]*family)}
}

// OnScrape registers fn to run (under the registry lock, in registration
// order) at the start of every WritePrometheus call. Use it to sample
// externally-maintained ledgers into gauges and Set counters just in time
// for the exposition.
func (r *Registry) OnScrape(fn func()) {
	r.mu.Lock()
	r.onScrape = append(r.onScrape, fn)
	r.mu.Unlock()
}

// familyFor returns the named family, creating it with the given kind and
// help on first use. Caller holds r.mu.
func (r *Registry) familyFor(name, help string, kind metricKind) *family {
	if f := r.byName[name]; f != nil {
		if f.kind != kind {
			panic(fmt.Sprintf("obs: metric %q registered as both %s and %s", name, f.kind, kind))
		}
		return f
	}
	f := &family{name: name, help: help, kind: kind}
	r.byName[name] = f
	r.fams = append(r.fams, f)
	return f
}

// Counter returns the counter for (name, labels), creating it on first use.
// labels is the raw label body rendered inside the braces (e.g.
// `class="cold"`), or empty for an unlabeled metric.
func (r *Registry) Counter(name, labels, help string) *Counter {
	r.mu.Lock()
	defer r.mu.Unlock()
	f := r.familyFor(name, help, counterKind)
	for _, c := range f.counters {
		if c.labels == labels {
			return c
		}
	}
	c := &Counter{labels: labels}
	f.counters = append(f.counters, c)
	return c
}

// Gauge returns the gauge for (name, labels), creating it on first use.
func (r *Registry) Gauge(name, labels, help string) *Gauge {
	r.mu.Lock()
	defer r.mu.Unlock()
	f := r.familyFor(name, help, gaugeKind)
	for _, g := range f.gauges {
		if g.labels == labels {
			return g
		}
	}
	g := &Gauge{labels: labels}
	f.gauges = append(f.gauges, g)
	return g
}

// Histogram returns the histogram for (name, labels), creating it on first
// use with NewHistogram(max, scale). max and scale are fixed by the first
// registration; later calls with the same (name, labels) return the
// original regardless.
func (r *Registry) Histogram(name, labels, help string, max int64, scale float64) *Histogram {
	r.mu.Lock()
	defer r.mu.Unlock()
	f := r.familyFor(name, help, histogramKind)
	for _, h := range f.histograms {
		if h.labels == labels {
			return h
		}
	}
	h := NewHistogram(max, scale)
	h.labels = labels
	f.histograms = append(f.histograms, h)
	return h
}

// WritePrometheus renders every family in registration order as Prometheus
// text exposition format 0.0.4, running the OnScrape hooks first. Histogram
// buckets with no new observations since the previous bound are elided
// (the cumulative series stays monotone and the +Inf bucket is always
// present, which the format permits); _count is computed from the bucket
// reads so count and +Inf always agree within one exposition.
func (r *Registry) WritePrometheus(w io.Writer) error {
	r.mu.Lock()
	defer r.mu.Unlock()
	for _, fn := range r.onScrape {
		fn()
	}
	var b strings.Builder
	for _, f := range r.fams {
		fmt.Fprintf(&b, "# HELP %s %s\n", f.name, escapeHelp(f.help))
		fmt.Fprintf(&b, "# TYPE %s %s\n", f.name, f.kind)
		switch f.kind {
		case counterKind:
			for _, c := range f.counters {
				writeSample(&b, f.name, "", c.labels, strconv.FormatUint(c.v.Load(), 10))
			}
		case gaugeKind:
			for _, g := range f.gauges {
				writeSample(&b, f.name, "", g.labels, strconv.FormatInt(g.v.Load(), 10))
			}
		case histogramKind:
			for _, h := range f.histograms {
				writeHistogram(&b, f.name, h)
			}
		}
	}
	_, err := io.WriteString(w, b.String())
	return err
}

// writeHistogram renders one histogram child: cumulative _bucket series
// (zero-delta buckets elided, +Inf always present), then _sum and _count.
func writeHistogram(b *strings.Builder, name string, h *Histogram) {
	var cum uint64
	for i := range h.bkts {
		n := h.bkts[i].Load()
		cum += n
		last := i == len(h.bkts)-1
		if n == 0 && !last {
			continue
		}
		le := "+Inf"
		if !last {
			// 9 significant digits: enough to keep adjacent bounds (≥ ~3%
			// apart) distinct while avoiding float artifacts like
			// 7.000000000000001e-09 from the ns→s scale multiply.
			le = strconv.FormatFloat(float64(h.bounds[i])*h.scale, 'g', 9, 64)
		}
		lbl := h.labels
		if lbl != "" {
			lbl += ","
		}
		lbl += `le="` + le + `"`
		writeSample(b, name, "_bucket", lbl, strconv.FormatUint(cum, 10))
	}
	writeSample(b, name, "_sum", h.labels,
		strconv.FormatFloat(float64(h.sum.Load())*h.scale, 'g', -1, 64))
	writeSample(b, name, "_count", h.labels, strconv.FormatUint(cum, 10))
}

// writeSample renders one `name suffix{labels} value` line.
func writeSample(b *strings.Builder, name, suffix, labels, value string) {
	b.WriteString(name)
	b.WriteString(suffix)
	if labels != "" {
		b.WriteByte('{')
		b.WriteString(labels)
		b.WriteByte('}')
	}
	b.WriteByte(' ')
	b.WriteString(value)
	b.WriteByte('\n')
}

// escapeHelp escapes backslashes and newlines per the exposition format.
func escapeHelp(s string) string {
	s = strings.ReplaceAll(s, `\`, `\\`)
	return strings.ReplaceAll(s, "\n", `\n`)
}

// TypeLines returns the registry's `# TYPE name kind` lines sorted by
// metric name — the deterministic skeleton of the exposition, which golden
// tests pin without depending on timing-valued samples.
func (r *Registry) TypeLines() []string {
	r.mu.Lock()
	defer r.mu.Unlock()
	out := make([]string, 0, len(r.fams))
	for _, f := range r.fams {
		out = append(out, fmt.Sprintf("# TYPE %s %s", f.name, f.kind))
	}
	sort.Strings(out)
	return out
}
