package obs

import (
	"sync"
	"time"
)

// Class is the serve class of one evaluated period: which machinery
// answered it. The classes partition evaluated periods, so per-class
// counters sum to the delivery ledger's evaluated total.
type Class uint8

const (
	// ClassCold is a flat index scan with no prediction machinery.
	ClassCold Class = iota
	// ClassPlanned is a prefetching subscription's period served through
	// its plan (readings staged in time, enumeration still by index).
	ClassPlanned
	// ClassCorridor is a period served warm from a staged corridor
	// snapshot.
	ClassCorridor
	// ClassPyramid is a period answered from the aggregate tile pyramid.
	ClassPyramid

	// NumClasses is the number of serve classes.
	NumClasses = 4
)

// String returns the class's label value in the exposition.
func (c Class) String() string {
	switch c {
	case ClassCold:
		return "cold"
	case ClassPlanned:
		return "planned"
	case ClassCorridor:
		return "corridor"
	case ClassPyramid:
		return "pyramid"
	default:
		return "unknown"
	}
}

// Outcome is how a period span ended.
type Outcome uint8

const (
	// OutcomeDelivered means the result reached the subscriber's channel.
	OutcomeDelivered Outcome = iota
	// OutcomeDropped means the subscriber's buffer was full and the result
	// was discarded (counted, never blocking).
	OutcomeDropped
)

// String returns the outcome's wire name.
func (o Outcome) String() string {
	if o == OutcomeDropped {
		return "dropped"
	}
	return "delivered"
}

// PeriodSpan is one subscription period's lifecycle: stamped as it moves
// armed → popped → evaluated → merged/delivered. Due is virtual service
// time; the *NS fields are wall-clock unix nanoseconds, so stage latencies
// are differences between consecutive stamps (Armed is the wall time the
// period's schedule entry was last re-armed — the end of the previous
// period's evaluation — so Popped-Armed is time spent waiting in the
// scheduler).
type PeriodSpan struct {
	K           int           // 1-based period index
	Due         time.Duration // virtual due time
	ArmedNS     int64
	PoppedNS    int64
	EvalStartNS int64
	EvalEndNS   int64
	DeliveredNS int64 // merge + delivery complete
	Class       Class
	Outcome     Outcome
	Late        bool
}

// TraceRing is a fixed-depth ring of the most recent period spans of one
// subscription. A nil ring is valid and ignores everything — tracing
// disabled costs one nil check per period. Record and Snapshot are
// mutually safe; Record is called from the delivery path (serialized per
// subscription), Snapshot from introspection handlers.
type TraceRing struct {
	mu    sync.Mutex
	spans []PeriodSpan
	next  int
	full  bool
}

// NewTraceRing returns a ring holding the last depth spans; depth <= 0
// returns nil (tracing disabled).
func NewTraceRing(depth int) *TraceRing {
	if depth <= 0 {
		return nil
	}
	return &TraceRing{spans: make([]PeriodSpan, depth)}
}

// Record appends one completed span, evicting the oldest at capacity.
func (r *TraceRing) Record(s *PeriodSpan) {
	if r == nil {
		return
	}
	r.mu.Lock()
	r.spans[r.next] = *s
	r.next++
	if r.next == len(r.spans) {
		r.next = 0
		r.full = true
	}
	r.mu.Unlock()
}

// Snapshot appends the ring's spans to buf, oldest first, and returns it.
// A nil ring appends nothing.
func (r *TraceRing) Snapshot(buf []PeriodSpan) []PeriodSpan {
	if r == nil {
		return buf
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	if r.full {
		buf = append(buf, r.spans[r.next:]...)
	}
	return append(buf, r.spans[:r.next]...)
}
