package obs

import (
	"sync"
	"time"
)

// Class is the serve class of one evaluated period: which machinery
// answered it. The classes partition evaluated periods, so per-class
// counters sum to the delivery ledger's evaluated total.
type Class uint8

const (
	// ClassCold is a flat index scan with no prediction machinery.
	ClassCold Class = iota
	// ClassPlanned is a prefetching subscription's period served through
	// its plan (readings staged in time, enumeration still by index).
	ClassPlanned
	// ClassCorridor is a period served warm from a staged corridor
	// snapshot.
	ClassCorridor
	// ClassPyramid is a period answered from the aggregate tile pyramid.
	ClassPyramid

	// NumClasses is the number of serve classes.
	NumClasses = 4
)

// String returns the class's label value in the exposition.
func (c Class) String() string {
	switch c {
	case ClassCold:
		return "cold"
	case ClassPlanned:
		return "planned"
	case ClassCorridor:
		return "corridor"
	case ClassPyramid:
		return "pyramid"
	default:
		return "unknown"
	}
}

// ParseClass is the inverse of Class.String; ok is false for unknown
// names (including "unknown" itself, which no real span carries).
func ParseClass(s string) (Class, bool) {
	switch s {
	case "cold":
		return ClassCold, true
	case "planned":
		return ClassPlanned, true
	case "corridor":
		return ClassCorridor, true
	case "pyramid":
		return ClassPyramid, true
	default:
		return 0, false
	}
}

// Outcome is how a period span ended.
type Outcome uint8

const (
	// OutcomeDelivered means the result reached the subscriber's channel.
	OutcomeDelivered Outcome = iota
	// OutcomeDropped means the subscriber's buffer was full and the result
	// was discarded (counted, never blocking).
	OutcomeDropped
)

// String returns the outcome's wire name.
func (o Outcome) String() string {
	if o == OutcomeDropped {
		return "dropped"
	}
	return "delivered"
}

// ParseOutcome is the inverse of Outcome.String.
func ParseOutcome(s string) (Outcome, bool) {
	switch s {
	case "delivered":
		return OutcomeDelivered, true
	case "dropped":
		return OutcomeDropped, true
	default:
		return 0, false
	}
}

// TraceID identifies one subscription's causal trace across tiers: minted
// by the client (wire trace context) or the embedder, carried by every
// span of the subscription, and echoed on result frames so client-side
// receive stamps can be joined onto the server's segment chain. Zero
// means untraced.
type TraceID uint64

// SpanID identifies one period's span within a trace. Span ids are not
// random: MintSpanID derives them deterministically from (trace, period),
// so both tiers — and any offline validator — can recompute the id a
// span must carry, which makes orphaned or mis-joined spans detectable.
type SpanID uint64

// MintSpanID derives the span id for period k (1-based) of a trace. The
// derivation is a SplitMix64 finalizer over the trace/period pair: cheap,
// stateless, collision-free within a trace, and reproducible anywhere.
func MintSpanID(t TraceID, k int) SpanID {
	x := uint64(t) ^ (uint64(uint32(k)) * 0x9E3779B97F4A7C15)
	x += 0x9E3779B97F4A7C15
	x = (x ^ (x >> 30)) * 0xBF58476D1CE4E5B9
	x = (x ^ (x >> 27)) * 0x94D049BB133111EB
	return SpanID(x ^ (x >> 31))
}

// PeriodSpan is one subscription period's lifecycle: stamped as it moves
// armed → popped → evaluated → flushed → merged/delivered → written to
// the wire. Due is virtual service time; the *NS fields are wall-clock
// unix nanoseconds, so stage latencies are differences between
// consecutive stamps (Armed is the wall time the period's schedule entry
// was last re-armed — the end of the previous period's evaluation — so
// Popped-Armed is time spent waiting in the scheduler; a catch-up period
// drained in the same batch that armed it carries Popped == Armed, since
// it never returned to the scheduler). FlushNS is when
// the Advance step's schedule re-arms finished (shared by every span of
// the step, like PoppedNS); WireNS is stamped by the network front-end
// the instant the result frame is handed to the wire, and stays zero for
// in-process deliveries. Trace and Span are zero unless the subscription
// carries a trace context.
type PeriodSpan struct {
	Trace       TraceID
	Span        SpanID
	K           int           // 1-based period index
	Due         time.Duration // virtual due time
	ArmedNS     int64
	PoppedNS    int64
	EvalStartNS int64
	EvalEndNS   int64
	FlushNS     int64
	DeliveredNS int64 // merge + delivery complete
	WireNS      int64 // result frame written to the wire (networked only)
	Class       Class
	Outcome     Outcome
	Late        bool
}

// TraceRing is a fixed-depth ring of the most recent period spans of one
// subscription. A nil ring is valid and ignores everything — tracing
// disabled costs one nil check per period. Record and Snapshot are
// mutually safe; Record is called from the delivery path (serialized per
// subscription), Snapshot from introspection handlers, and both copy
// under the mutex so a reader never observes a half-written span.
type TraceRing struct {
	mu    sync.Mutex
	spans []PeriodSpan
	next  int
	full  bool
}

// NewTraceRing returns a ring holding the last depth spans; depth <= 0
// returns nil (tracing disabled).
func NewTraceRing(depth int) *TraceRing {
	if depth <= 0 {
		return nil
	}
	return &TraceRing{spans: make([]PeriodSpan, depth)}
}

// Record appends one completed span, evicting the oldest at capacity.
func (r *TraceRing) Record(s *PeriodSpan) {
	if r == nil {
		return
	}
	r.mu.Lock()
	r.spans[r.next] = *s
	r.next++
	if r.next == len(r.spans) {
		r.next = 0
		r.full = true
	}
	r.mu.Unlock()
}

// Snapshot appends the ring's spans to buf, oldest first, and returns it.
// A nil ring appends nothing. The appends allocate only when buf lacks
// capacity, so a caller reusing its buffer snapshots allocation-free.
func (r *TraceRing) Snapshot(buf []PeriodSpan) []PeriodSpan {
	if r == nil {
		return buf
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	if r.full {
		buf = append(buf, r.spans[r.next:]...)
	}
	return append(buf, r.spans[:r.next]...)
}

// SpanSink is the service-wide span firehose: a fixed ring every
// completed period span is published into, regardless of subscription.
// It is deliberately lossy — at capacity the oldest span is overwritten
// and counted dropped — so the tick path pays one short mutex hold and a
// struct copy per delivered period, never an allocation and never a
// block on a slow reader. A nil sink ignores everything.
type SpanSink struct {
	mu        sync.Mutex
	spans     []PeriodSpan
	next      int
	full      bool
	published uint64
	dropped   uint64
}

// NewSpanSink returns a sink ring-buffering the last depth spans;
// depth <= 0 returns nil (firehose disabled).
func NewSpanSink(depth int) *SpanSink {
	if depth <= 0 {
		return nil
	}
	return &SpanSink{spans: make([]PeriodSpan, depth)}
}

// Publish records one completed span, overwriting (and drop-counting)
// the oldest at capacity. Allocation-free.
func (s *SpanSink) Publish(sp *PeriodSpan) {
	if s == nil {
		return
	}
	s.mu.Lock()
	if s.full {
		s.dropped++
	}
	s.spans[s.next] = *sp
	s.next++
	if s.next == len(s.spans) {
		s.next = 0
		s.full = true
	}
	s.published++
	s.mu.Unlock()
}

// Snapshot appends the sink's buffered spans to buf oldest first and
// returns it along with the lifetime published and dropped counts as of
// the snapshot instant.
func (s *SpanSink) Snapshot(buf []PeriodSpan) (out []PeriodSpan, published, dropped uint64) {
	if s == nil {
		return buf, 0, 0
	}
	s.mu.Lock()
	defer s.mu.Unlock()
	if s.full {
		buf = append(buf, s.spans[s.next:]...)
	}
	return append(buf, s.spans[:s.next]...), s.published, s.dropped
}

// Counts returns the lifetime published and dropped span counts — the
// scrape-time sampling hook behind the firehose counters.
func (s *SpanSink) Counts() (published, dropped uint64) {
	if s == nil {
		return 0, 0
	}
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.published, s.dropped
}
