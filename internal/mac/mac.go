// Package mac implements the link layer of the MobiQuery simulator: a
// CSMA/CA medium access control with unicast acknowledgements and retries,
// plus an IEEE 802.11 PSM-style power-saving mode.
//
// Power saving follows the model of the paper's evaluation (Section 6.1):
// all duty-cycled nodes share a synchronized schedule with an active window
// (100 ms) at the start of every sleep period (3-15 s), giving duty cycles
// of 3.3 % down to 0.67 %. Backbone nodes selected by the coverage protocol
// run with Role RoleAlwaysOn and never sleep. Upper layers can override the
// schedule with WakeUntil/WakeAt, which is exactly the hook MobiQuery's
// prefetching uses to wake nodes "just in time".
package mac

import (
	"fmt"
	"math/rand"
	"time"

	"mobiquery/internal/radio"
	"mobiquery/internal/sim"
)

// Role describes a node's power management class.
type Role int

const (
	// RoleAlwaysOn nodes (the CCP backbone and the user's proxy) keep their
	// radio powered for the whole run.
	RoleAlwaysOn Role = iota + 1
	// RoleDutyCycled nodes sleep except during the common active window and
	// explicit wake overrides.
	RoleDutyCycled
)

// String returns the role name.
func (r Role) String() string {
	switch r {
	case RoleAlwaysOn:
		return "always-on"
	case RoleDutyCycled:
		return "duty-cycled"
	default:
		return fmt.Sprintf("Role(%d)", int(r))
	}
}

// Config holds link-layer parameters. All duty-cycled nodes share the same
// ActiveWindow and SleepPeriod (synchronized clocks, per the paper's
// assumptions).
type Config struct {
	// ActiveWindow is how long duty-cycled nodes stay awake at the start of
	// each sleep period (paper: 100 ms).
	ActiveWindow time.Duration
	// SleepPeriod is the full schedule period; the duty cycle is
	// ActiveWindow/SleepPeriod (paper: 3 s to 15 s).
	SleepPeriod time.Duration

	// CSMA timing.
	SlotTime time.Duration
	SIFS     time.Duration
	DIFS     time.Duration
	CWMin    int // initial contention window, in slots
	CWMax    int // maximum contention window, in slots

	// RetryLimit is the number of retransmissions after the first attempt
	// of a unicast frame before it is dropped.
	RetryLimit int
	// AckSize is the on-air size of an acknowledgement frame in bytes.
	AckSize int
	// HeaderSize is the MAC framing overhead added to every payload.
	HeaderSize int
	// QueueCap bounds the transmit queue; excess frames are dropped.
	QueueCap int
}

// DefaultConfig returns 802.11-flavoured CSMA parameters with the given
// sleep period and the paper's 100 ms active window.
func DefaultConfig(sleepPeriod time.Duration) Config {
	return Config{
		ActiveWindow: 100 * time.Millisecond,
		SleepPeriod:  sleepPeriod,
		SlotTime:     20 * time.Microsecond,
		SIFS:         10 * time.Microsecond,
		DIFS:         50 * time.Microsecond,
		CWMin:        32,
		CWMax:        1024,
		RetryLimit:   5,
		AckSize:      14,
		HeaderSize:   12,
		QueueCap:     256,
	}
}

// Validate reports configuration errors.
func (c Config) Validate() error {
	switch {
	case c.ActiveWindow <= 0:
		return fmt.Errorf("mac: ActiveWindow %v must be positive", c.ActiveWindow)
	case c.SleepPeriod <= c.ActiveWindow:
		return fmt.Errorf("mac: SleepPeriod %v must exceed ActiveWindow %v", c.SleepPeriod, c.ActiveWindow)
	case c.SlotTime <= 0 || c.SIFS <= 0 || c.DIFS <= 0:
		return fmt.Errorf("mac: CSMA timings must be positive")
	case c.CWMin < 1 || c.CWMax < c.CWMin:
		return fmt.Errorf("mac: invalid contention window [%d, %d]", c.CWMin, c.CWMax)
	case c.RetryLimit < 0:
		return fmt.Errorf("mac: RetryLimit must be non-negative")
	case c.QueueCap < 1:
		return fmt.Errorf("mac: QueueCap must be at least 1")
	}
	return nil
}

// InActiveWindow reports whether duty-cycled nodes are scheduled awake at t.
func (c Config) InActiveWindow(t sim.Time) bool {
	return t%c.SleepPeriod < c.ActiveWindow
}

// WindowStart returns the start of the schedule period containing t.
func (c Config) WindowStart(t sim.Time) sim.Time {
	return t - t%c.SleepPeriod
}

// NextWindowStart returns the first schedule-period boundary strictly
// after t.
func (c Config) NextWindowStart(t sim.Time) sim.Time {
	return c.WindowStart(t) + c.SleepPeriod
}

// BroadcastTime returns the earliest time at or after t that is suitable
// for broadcasting to duty-cycled listeners: within an active window with at
// least a quarter of the window remaining.
func (c Config) BroadcastTime(t sim.Time) sim.Time {
	if t%c.SleepPeriod < c.ActiveWindow*3/4 {
		return t
	}
	return c.NextWindowStart(t)
}

// Stats aggregates per-node link-layer counters.
type Stats struct {
	UnicastSent    uint64 // data frames put on the air (including retries)
	BroadcastSent  uint64
	AcksSent       uint64
	Delivered      uint64 // payloads handed to the upper layer
	Duplicates     uint64 // retransmissions filtered by the dedup cache
	AckTimeouts    uint64
	Drops          uint64 // unicasts abandoned after RetryLimit
	QueueDrops     uint64 // frames rejected by a full queue
	BusyDeferrals  uint64 // carrier-sense backoffs
	SleepDeferrals uint64 // sleep postponed to flush the queue
}

// frameKind discriminates MAC frame types.
type frameKind uint8

const (
	kindData frameKind = iota + 1
	kindAck
)

// header is the MAC framing around upper-layer payloads.
type header struct {
	Kind    frameKind
	Seq     uint16
	Payload any
}

// outgoing is a queued transmission.
type outgoing struct {
	dst     radio.NodeID
	payload any
	size    int // on-air size including MAC header
	seq     uint16
	retries int
	done    func(ok bool)
}

// MAC is a single node's link layer. Construct with New; the zero value is
// unusable. All methods must be called from within the simulation loop.
type MAC struct {
	eng   *sim.Engine
	radio *radio.Radio
	cfg   Config
	role  Role
	rng   *rand.Rand

	recv func(src radio.NodeID, payload any)

	queue    []*outgoing
	current  *outgoing
	inflight bool
	cw       int

	attemptTimer *sim.Timer
	ackTimer     *sim.Timer
	sleepTimer   *sim.Timer

	overrideUntil sim.Time
	started       bool
	seq           uint16
	lastSeq       map[radio.NodeID]uint16
	stats         Stats
}

// New attaches a MAC to a radio. The radio's frame handler is taken over by
// the MAC. Call Start before running the simulation.
func New(eng *sim.Engine, r *radio.Radio, cfg Config, role Role) *MAC {
	if err := cfg.Validate(); err != nil {
		panic(err)
	}
	m := &MAC{
		eng:     eng,
		radio:   r,
		cfg:     cfg,
		role:    role,
		rng:     eng.RNG("mac"),
		cw:      cfg.CWMin,
		lastSeq: make(map[radio.NodeID]uint16),
	}
	return m
}

// Radio returns the underlying radio.
func (m *MAC) Radio() *radio.Radio { return m.radio }

// Role returns the node's power management class.
func (m *MAC) Role() Role { return m.role }

// Config returns the link-layer configuration.
func (m *MAC) Config() Config { return m.cfg }

// Stats returns a snapshot of the node's link-layer counters.
func (m *MAC) Stats() Stats { return m.stats }

// OnReceive registers the upper-layer delivery callback.
func (m *MAC) OnReceive(fn func(src radio.NodeID, payload any)) { m.recv = fn }

// Awake reports whether the radio is currently powered.
func (m *MAC) Awake() bool { return m.radio.On() }

// Start arms the duty-cycle schedule. It must be called exactly once, at
// simulation time zero, after construction.
func (m *MAC) Start() {
	if m.started {
		panic("mac: Start called twice")
	}
	m.started = true
	m.radio.OnFrame(m.onFrame)
	if m.role == RoleAlwaysOn {
		m.radio.SetOn(true)
		return
	}
	m.windowTick()
}

// windowTick fires at each schedule-period boundary for duty-cycled nodes.
func (m *MAC) windowTick() {
	m.radio.SetOn(true)
	m.kick()
	m.scheduleSleepCheck(m.eng.Now() + m.cfg.ActiveWindow)
	m.eng.After(m.cfg.SleepPeriod, m.windowTick)
}

// scheduleSleepCheck arranges a single pending maybeSleep at time at,
// replacing any earlier one that would fire sooner than needed.
func (m *MAC) scheduleSleepCheck(at sim.Time) {
	if m.sleepTimer != nil && !m.sleepTimer.Canceled() {
		if m.sleepTimer.At() >= at {
			return
		}
		m.eng.Cancel(m.sleepTimer)
	}
	m.sleepTimer = m.eng.Schedule(at, m.maybeSleep)
}

// maybeSleep powers the radio down if no schedule window, override, or
// pending traffic keeps the node awake.
func (m *MAC) maybeSleep() {
	if m.role == RoleAlwaysOn {
		return
	}
	now := m.eng.Now()
	if m.cfg.InActiveWindow(now) {
		m.scheduleSleepCheck(m.cfg.WindowStart(now) + m.cfg.ActiveWindow)
		return
	}
	if now < m.overrideUntil {
		m.scheduleSleepCheck(m.overrideUntil)
		return
	}
	if m.radio.Transmitting() || m.current != nil || len(m.queue) > 0 {
		// Flush in-flight traffic before sleeping; a real node drains its
		// transmit FIFO first.
		m.stats.SleepDeferrals++
		m.scheduleSleepCheck(now + time.Millisecond)
		return
	}
	m.radio.SetOn(false)
}

// WakeUntil powers the node on immediately (if needed) and keeps it awake at
// least until the given time.
func (m *MAC) WakeUntil(until sim.Time) {
	if m.role == RoleAlwaysOn {
		return
	}
	if until > m.overrideUntil {
		m.overrideUntil = until
	}
	if !m.radio.On() {
		m.radio.SetOn(true)
		m.kick()
	}
	m.scheduleSleepCheck(m.overrideUntil)
}

// WakeAt schedules a wake override for the future: the node powers on at
// time at and stays awake until the given time. The returned timer may be
// canceled to revoke the wake-up (MobiQuery's cancel messages use this).
func (m *MAC) WakeAt(at, until sim.Time) *sim.Timer {
	return m.eng.Schedule(at, func() { m.WakeUntil(until) })
}

// Send queues a unicast payload for dst with link-layer acknowledgement and
// retries. done, if non-nil, is invoked with the delivery outcome: true once
// the ACK arrives, false when the frame is dropped after RetryLimit
// retransmissions or a queue overflow.
func (m *MAC) Send(dst radio.NodeID, payload any, size int, done func(ok bool)) {
	if dst == radio.Broadcast {
		panic("mac: Send requires a unicast destination; use Broadcast")
	}
	m.enqueue(&outgoing{dst: dst, payload: payload, size: size + m.cfg.HeaderSize, done: done})
}

// Broadcast queues a one-hop broadcast. Broadcasts are unacknowledged and
// delivered only to neighbours whose radios are on for the whole frame.
func (m *MAC) Broadcast(payload any, size int) {
	m.enqueue(&outgoing{dst: radio.Broadcast, payload: payload, size: size + m.cfg.HeaderSize})
}

func (m *MAC) enqueue(o *outgoing) {
	if len(m.queue) >= m.cfg.QueueCap {
		m.stats.QueueDrops++
		if o.done != nil {
			done := o.done
			m.eng.After(0, func() { done(false) })
		}
		return
	}
	m.seq++
	o.seq = m.seq
	m.queue = append(m.queue, o)
	m.kick()
}

// kick starts servicing the queue if the MAC is idle.
func (m *MAC) kick() {
	if m.current != nil || len(m.queue) == 0 || !m.radio.On() {
		return
	}
	m.current = m.queue[0]
	copy(m.queue, m.queue[1:])
	m.queue = m.queue[:len(m.queue)-1]
	m.cw = m.cfg.CWMin
	m.backoff()
}

// backoff schedules the next transmission attempt after DIFS plus a random
// number of slots drawn from the current contention window.
func (m *MAC) backoff() {
	delay := m.cfg.DIFS + time.Duration(m.rng.Intn(m.cw))*m.cfg.SlotTime
	m.attemptTimer = m.eng.After(delay, m.attempt)
}

// widen doubles the contention window up to CWMax.
func (m *MAC) widen() {
	m.cw *= 2
	if m.cw > m.cfg.CWMax {
		m.cw = m.cfg.CWMax
	}
}

// attempt transmits the current frame if the channel is clear.
func (m *MAC) attempt() {
	if m.current == nil || m.inflight {
		return
	}
	if !m.radio.On() {
		// Radio slept mid-backoff; resume on next wake via kick.
		return
	}
	if m.radio.Transmitting() {
		// An ACK transmission is in progress; retry shortly after.
		m.attemptTimer = m.eng.After(m.cfg.SIFS, m.attempt)
		return
	}
	if m.radio.CarrierSense() {
		m.stats.BusyDeferrals++
		m.widen()
		m.backoff()
		return
	}
	o := m.current
	hdr := header{Kind: kindData, Seq: o.seq, Payload: o.payload}
	m.inflight = true
	air := m.radio.Transmit(radio.Frame{Dst: o.dst, Size: o.size, Payload: hdr})
	if o.dst == radio.Broadcast {
		m.stats.BroadcastSent++
		m.eng.After(air, func() {
			if m.current == o {
				m.current = nil
				m.inflight = false
				m.kick()
			}
		})
		return
	}
	m.stats.UnicastSent++
	timeout := air + m.cfg.SIFS + m.radio.Airtime(m.cfg.AckSize) +
		2*m.radio.PropagationDelay() + 4*m.cfg.SlotTime
	m.ackTimer = m.eng.After(timeout, func() { m.ackTimeout(o) })
}

// ackTimeout handles a missing acknowledgement for frame o.
func (m *MAC) ackTimeout(o *outgoing) {
	if m.current != o {
		return
	}
	m.stats.AckTimeouts++
	m.inflight = false
	if o.retries >= m.cfg.RetryLimit {
		m.stats.Drops++
		m.current = nil
		if o.done != nil {
			o.done(false)
		}
		m.kick()
		return
	}
	o.retries++
	m.widen()
	m.backoff()
}

// onFrame is the radio delivery handler.
func (m *MAC) onFrame(f radio.Frame) {
	hdr, ok := f.Payload.(header)
	if !ok {
		return
	}
	switch hdr.Kind {
	case kindAck:
		if f.Dst != m.radio.ID() {
			return
		}
		o := m.current
		if o != nil && o.dst == f.Src && hdr.Seq == o.seq {
			m.eng.Cancel(m.ackTimer)
			m.current = nil
			m.inflight = false
			if o.done != nil {
				o.done(true)
			}
			m.kick()
		}
	case kindData:
		if f.Dst == radio.Broadcast {
			m.deliver(f.Src, hdr.Payload)
			return
		}
		if f.Dst != m.radio.ID() {
			return
		}
		m.sendAck(f.Src, hdr.Seq)
		if last, seen := m.lastSeq[f.Src]; seen && last == hdr.Seq {
			m.stats.Duplicates++
			return
		}
		m.lastSeq[f.Src] = hdr.Seq
		m.deliver(f.Src, hdr.Payload)
	}
}

// sendAck transmits an acknowledgement after SIFS, bypassing carrier sense
// (SIFS priority, as in 802.11).
func (m *MAC) sendAck(dst radio.NodeID, seq uint16) {
	m.eng.After(m.cfg.SIFS, func() {
		if !m.radio.On() || m.radio.Transmitting() {
			return // sender will retry
		}
		m.stats.AcksSent++
		m.radio.Transmit(radio.Frame{
			Dst:     dst,
			Size:    m.cfg.AckSize,
			Payload: header{Kind: kindAck, Seq: seq},
		})
	})
}

func (m *MAC) deliver(src radio.NodeID, payload any) {
	m.stats.Delivered++
	if m.recv != nil {
		m.recv(src, payload)
	}
}
