package mac

import (
	"testing"
	"time"

	"mobiquery/internal/geom"
	"mobiquery/internal/radio"
	"mobiquery/internal/sim"
)

// rig bundles an engine, medium and a set of MACs for link-layer tests.
type rig struct {
	eng *sim.Engine
	med *radio.Medium
}

func newRig(seed int64) *rig {
	eng := sim.NewEngine(seed)
	med := radio.NewMedium(eng, geom.Square(450), radio.DefaultParams())
	return &rig{eng: eng, med: med}
}

func (r *rig) node(id radio.NodeID, pos geom.Point, cfg Config, role Role) *MAC {
	rad := r.med.Attach(id, pos, nil)
	m := New(r.eng, rad, cfg, role)
	m.Start()
	return m
}

type inbox struct {
	msgs []any
	srcs []radio.NodeID
}

func (ib *inbox) recv(src radio.NodeID, payload any) {
	ib.srcs = append(ib.srcs, src)
	ib.msgs = append(ib.msgs, payload)
}

func TestConfigValidate(t *testing.T) {
	good := DefaultConfig(3 * time.Second)
	if err := good.Validate(); err != nil {
		t.Fatalf("default config invalid: %v", err)
	}
	tests := []struct {
		name   string
		mutate func(*Config)
	}{
		{"zero active window", func(c *Config) { c.ActiveWindow = 0 }},
		{"sleep shorter than active", func(c *Config) { c.SleepPeriod = 50 * time.Millisecond }},
		{"zero slot", func(c *Config) { c.SlotTime = 0 }},
		{"cw inverted", func(c *Config) { c.CWMax = 1 }},
		{"negative retries", func(c *Config) { c.RetryLimit = -1 }},
		{"zero queue", func(c *Config) { c.QueueCap = 0 }},
	}
	for _, tt := range tests {
		t.Run(tt.name, func(t *testing.T) {
			c := DefaultConfig(3 * time.Second)
			tt.mutate(&c)
			if c.Validate() == nil {
				t.Error("want validation error")
			}
		})
	}
}

func TestWindowHelpers(t *testing.T) {
	c := DefaultConfig(3 * time.Second)
	if !c.InActiveWindow(0) || !c.InActiveWindow(99*time.Millisecond) {
		t.Error("start of period should be in active window")
	}
	if c.InActiveWindow(100 * time.Millisecond) {
		t.Error("active window is half-open")
	}
	if c.InActiveWindow(time.Second) {
		t.Error("mid-period should be asleep")
	}
	if !c.InActiveWindow(3 * time.Second) {
		t.Error("next period start should be awake")
	}
	if got := c.WindowStart(4 * time.Second); got != 3*time.Second {
		t.Errorf("WindowStart(4s) = %v, want 3s", got)
	}
	if got := c.NextWindowStart(4 * time.Second); got != 6*time.Second {
		t.Errorf("NextWindowStart(4s) = %v, want 6s", got)
	}
	if got := c.NextWindowStart(3 * time.Second); got != 6*time.Second {
		t.Errorf("NextWindowStart(3s) = %v, want 6s (strictly after)", got)
	}
}

func TestBroadcastTime(t *testing.T) {
	c := DefaultConfig(3 * time.Second)
	if got := c.BroadcastTime(10 * time.Millisecond); got != 10*time.Millisecond {
		t.Errorf("early in window: BroadcastTime = %v, want now", got)
	}
	// Past 3/4 of the window: wait for the next one.
	if got := c.BroadcastTime(80 * time.Millisecond); got != 3*time.Second {
		t.Errorf("late in window: BroadcastTime = %v, want 3s", got)
	}
	if got := c.BroadcastTime(time.Second); got != 3*time.Second {
		t.Errorf("mid-sleep: BroadcastTime = %v, want 3s", got)
	}
}

func TestUnicastDeliveryWithAck(t *testing.T) {
	r := newRig(1)
	cfg := DefaultConfig(3 * time.Second)
	a := r.node(0, geom.Pt(0, 0), cfg, RoleAlwaysOn)
	b := r.node(1, geom.Pt(50, 0), cfg, RoleAlwaysOn)
	var got inbox
	b.OnReceive(got.recv)

	var acked, called bool
	r.eng.Schedule(0, func() {
		a.Send(1, "hello", 60, func(ok bool) { called, acked = true, ok })
	})
	r.eng.Run(time.Second)

	if len(got.msgs) != 1 || got.msgs[0] != "hello" || got.srcs[0] != 0 {
		t.Fatalf("receiver inbox = %v from %v", got.msgs, got.srcs)
	}
	if !called || !acked {
		t.Errorf("done callback: called=%v ok=%v", called, acked)
	}
	if s := a.Stats(); s.UnicastSent != 1 || s.Drops != 0 {
		t.Errorf("sender stats = %+v", s)
	}
	if s := b.Stats(); s.AcksSent != 1 || s.Delivered != 1 {
		t.Errorf("receiver stats = %+v", s)
	}
}

func TestBroadcastDelivery(t *testing.T) {
	r := newRig(1)
	cfg := DefaultConfig(3 * time.Second)
	a := r.node(0, geom.Pt(100, 100), cfg, RoleAlwaysOn)
	b := r.node(1, geom.Pt(150, 100), cfg, RoleAlwaysOn)
	c := r.node(2, geom.Pt(100, 150), cfg, RoleAlwaysOn)
	far := r.node(3, geom.Pt(400, 400), cfg, RoleAlwaysOn)
	var ib, ic, ifar inbox
	b.OnReceive(ib.recv)
	c.OnReceive(ic.recv)
	far.OnReceive(ifar.recv)

	r.eng.Schedule(0, func() { a.Broadcast("announce", 60) })
	r.eng.Run(time.Second)

	if len(ib.msgs) != 1 || len(ic.msgs) != 1 {
		t.Errorf("in-range receivers got %d/%d messages, want 1/1", len(ib.msgs), len(ic.msgs))
	}
	if len(ifar.msgs) != 0 {
		t.Error("out-of-range node received broadcast")
	}
	// Broadcasts are not acknowledged.
	if s := b.Stats(); s.AcksSent != 0 {
		t.Errorf("broadcast was acked: %+v", s)
	}
}

func TestUnicastToSleepingNodeDrops(t *testing.T) {
	r := newRig(1)
	cfg := DefaultConfig(3 * time.Second)
	a := r.node(0, geom.Pt(0, 0), cfg, RoleAlwaysOn)
	b := r.node(1, geom.Pt(50, 0), cfg, RoleDutyCycled)
	var got inbox
	b.OnReceive(got.recv)

	var ok, called bool
	// Send mid-sleep (well outside the 100ms active window).
	r.eng.Schedule(time.Second, func() {
		a.Send(1, "x", 60, func(res bool) { called, ok = true, res })
	})
	r.eng.Run(2 * time.Second)

	if !called || ok {
		t.Errorf("done = (%v, %v), want called with failure", called, ok)
	}
	if len(got.msgs) != 0 {
		t.Error("sleeping node received unicast")
	}
	s := a.Stats()
	if s.Drops != 1 {
		t.Errorf("Drops = %d, want 1", s.Drops)
	}
	if s.AckTimeouts != uint64(cfg.RetryLimit)+1 {
		t.Errorf("AckTimeouts = %d, want %d", s.AckTimeouts, cfg.RetryLimit+1)
	}
}

func TestDutyCycleSchedule(t *testing.T) {
	r := newRig(1)
	cfg := DefaultConfig(3 * time.Second)
	b := r.node(1, geom.Pt(50, 0), cfg, RoleDutyCycled)

	samples := []struct {
		at    sim.Time
		awake bool
	}{
		{50 * time.Millisecond, true},   // first active window
		{200 * time.Millisecond, false}, // asleep after window
		{2900 * time.Millisecond, false},
		{3050 * time.Millisecond, true}, // second window
		{4 * time.Second, false},
	}
	for _, s := range samples {
		s := s
		r.eng.Schedule(s.at, func() {
			if b.Awake() != s.awake {
				t.Errorf("at %v: awake = %v, want %v", s.at, b.Awake(), s.awake)
			}
		})
	}
	r.eng.Run(5 * time.Second)
}

func TestAlwaysOnNeverSleeps(t *testing.T) {
	r := newRig(1)
	cfg := DefaultConfig(3 * time.Second)
	a := r.node(0, geom.Pt(0, 0), cfg, RoleAlwaysOn)
	for _, at := range []sim.Time{0, time.Second, 10 * time.Second} {
		r.eng.Schedule(at, func() {
			if !a.Awake() {
				t.Errorf("always-on node asleep at %v", r.eng.Now())
			}
		})
	}
	r.eng.Run(11 * time.Second)
}

func TestWakeUntilOverride(t *testing.T) {
	r := newRig(1)
	cfg := DefaultConfig(3 * time.Second)
	b := r.node(1, geom.Pt(50, 0), cfg, RoleDutyCycled)

	r.eng.Schedule(time.Second, func() { b.WakeUntil(1500 * time.Millisecond) })
	r.eng.Schedule(1200*time.Millisecond, func() {
		if !b.Awake() {
			t.Error("override should keep node awake at 1.2s")
		}
	})
	r.eng.Schedule(1600*time.Millisecond, func() {
		if b.Awake() {
			t.Error("node should sleep again after override expires")
		}
	})
	r.eng.Run(2 * time.Second)
}

func TestWakeAtSchedulesFutureWake(t *testing.T) {
	r := newRig(1)
	cfg := DefaultConfig(3 * time.Second)
	b := r.node(1, geom.Pt(50, 0), cfg, RoleDutyCycled)

	b.WakeAt(2*time.Second, 2200*time.Millisecond)
	r.eng.Schedule(1900*time.Millisecond, func() {
		if b.Awake() {
			t.Error("node awake before WakeAt time")
		}
	})
	r.eng.Schedule(2100*time.Millisecond, func() {
		if !b.Awake() {
			t.Error("node not awake during WakeAt override")
		}
	})
	r.eng.Schedule(2400*time.Millisecond, func() {
		if b.Awake() {
			t.Error("node still awake after WakeAt override")
		}
	})
	r.eng.Run(3 * time.Second)
}

func TestWakeAtCancel(t *testing.T) {
	r := newRig(1)
	cfg := DefaultConfig(3 * time.Second)
	b := r.node(1, geom.Pt(50, 0), cfg, RoleDutyCycled)

	tm := b.WakeAt(2*time.Second, 2500*time.Millisecond)
	r.eng.Schedule(time.Second, func() { r.eng.Cancel(tm) })
	r.eng.Schedule(2100*time.Millisecond, func() {
		if b.Awake() {
			t.Error("canceled WakeAt still woke node")
		}
	})
	r.eng.Run(3 * time.Second)
}

func TestUnicastDuringActiveWindow(t *testing.T) {
	r := newRig(1)
	cfg := DefaultConfig(3 * time.Second)
	a := r.node(0, geom.Pt(0, 0), cfg, RoleAlwaysOn)
	b := r.node(1, geom.Pt(50, 0), cfg, RoleDutyCycled)
	var got inbox
	b.OnReceive(got.recv)

	var ok bool
	// Send right at the start of the second active window.
	r.eng.Schedule(3*time.Second+time.Millisecond, func() {
		a.Send(1, "in-window", 60, func(res bool) { ok = res })
	})
	r.eng.Run(4 * time.Second)
	if !ok || len(got.msgs) != 1 {
		t.Errorf("in-window unicast: ok=%v msgs=%v", ok, got.msgs)
	}
}

func TestBroadcastMissedWhileAsleep(t *testing.T) {
	r := newRig(1)
	cfg := DefaultConfig(3 * time.Second)
	a := r.node(0, geom.Pt(0, 0), cfg, RoleAlwaysOn)
	b := r.node(1, geom.Pt(50, 0), cfg, RoleDutyCycled)
	var got inbox
	b.OnReceive(got.recv)

	r.eng.Schedule(time.Second, func() { a.Broadcast("miss-me", 60) })
	r.eng.Run(2 * time.Second)
	if len(got.msgs) != 0 {
		t.Error("sleeping node received broadcast")
	}
}

func TestContendingSendersBothDeliver(t *testing.T) {
	r := newRig(3)
	cfg := DefaultConfig(3 * time.Second)
	hub := r.node(0, geom.Pt(100, 100), cfg, RoleAlwaysOn)
	a := r.node(1, geom.Pt(150, 100), cfg, RoleAlwaysOn)
	b := r.node(2, geom.Pt(100, 150), cfg, RoleAlwaysOn)
	var got inbox
	hub.OnReceive(got.recv)

	oks := 0
	done := func(ok bool) {
		if ok {
			oks++
		}
	}
	// Both senders queue at the same instant; CSMA must serialize them.
	r.eng.Schedule(0, func() {
		a.Send(0, "from-a", 200, done)
		b.Send(0, "from-b", 200, done)
	})
	r.eng.Run(time.Second)
	if oks != 2 || len(got.msgs) != 2 {
		t.Errorf("oks=%d inbox=%v", oks, got.msgs)
	}
}

func TestHiddenTerminalRecoveredByRetry(t *testing.T) {
	r := newRig(5)
	cfg := DefaultConfig(3 * time.Second)
	// a and b are out of range of each other (210 m apart) but both reach
	// the hub: the classic hidden-terminal collision, recovered by ARQ.
	hub := r.node(0, geom.Pt(105, 100), cfg, RoleAlwaysOn)
	a := r.node(1, geom.Pt(0, 100), cfg, RoleAlwaysOn)
	b := r.node(2, geom.Pt(210, 100), cfg, RoleAlwaysOn)
	var got inbox
	hub.OnReceive(got.recv)

	oks := 0
	r.eng.Schedule(0, func() {
		a.Send(0, "a", 500, func(ok bool) {
			if ok {
				oks++
			}
		})
		b.Send(0, "b", 500, func(ok bool) {
			if ok {
				oks++
			}
		})
	})
	r.eng.Run(time.Second)
	if oks != 2 {
		t.Errorf("hidden-terminal delivery oks = %d, want 2 after retries", oks)
	}
}

func TestQueueOverflowDrops(t *testing.T) {
	r := newRig(1)
	cfg := DefaultConfig(3 * time.Second)
	cfg.QueueCap = 2
	a := r.node(0, geom.Pt(0, 0), cfg, RoleAlwaysOn)
	r.node(1, geom.Pt(50, 0), cfg, RoleAlwaysOn)

	fails := 0
	r.eng.Schedule(0, func() {
		for i := 0; i < 5; i++ {
			a.Send(1, i, 60, func(ok bool) {
				if !ok {
					fails++
				}
			})
		}
	})
	r.eng.Run(time.Second)
	// Queue of 2 plus one in flight: 3 accepted, 2 rejected.
	if got := a.Stats().QueueDrops; got != 2 {
		t.Errorf("QueueDrops = %d, want 2", got)
	}
	if fails != 2 {
		t.Errorf("failure callbacks = %d, want 2", fails)
	}
}

func TestDuplicateSuppression(t *testing.T) {
	r := newRig(1)
	cfg := DefaultConfig(3 * time.Second)
	a := r.node(0, geom.Pt(0, 0), cfg, RoleAlwaysOn)
	b := r.node(1, geom.Pt(50, 0), cfg, RoleDutyCycled)
	var got inbox
	b.OnReceive(got.recv)

	// Keep the receiver awake to get the data frame, but force its ACK to
	// be lost by having the receiver's ack transmission collide: we emulate
	// ACK loss by powering the *sender* region... Simpler determinism: send
	// the same payload twice; MAC seq differs so both must be delivered.
	var okFirst bool
	r.eng.Schedule(0, func() {
		b.WakeUntil(time.Second)
		a.Send(1, "p1", 60, func(ok bool) { okFirst = ok })
		a.Send(1, "p1", 60, nil)
	})
	r.eng.Run(time.Second)
	if !okFirst {
		t.Fatal("first send failed")
	}
	if len(got.msgs) != 2 {
		t.Errorf("distinct frames with same payload delivered %d times, want 2", len(got.msgs))
	}
	if d := b.Stats().Duplicates; d != 0 {
		t.Errorf("Duplicates = %d, want 0", d)
	}
}

func TestStartTwicePanics(t *testing.T) {
	r := newRig(1)
	rad := r.med.Attach(9, geom.Pt(0, 0), nil)
	m := New(r.eng, rad, DefaultConfig(3*time.Second), RoleAlwaysOn)
	m.Start()
	defer func() {
		if recover() == nil {
			t.Error("second Start should panic")
		}
	}()
	m.Start()
}

func TestSendBroadcastAddressPanics(t *testing.T) {
	r := newRig(1)
	m := r.node(0, geom.Pt(0, 0), DefaultConfig(3*time.Second), RoleAlwaysOn)
	defer func() {
		if recover() == nil {
			t.Error("Send to Broadcast should panic")
		}
	}()
	m.Send(radio.Broadcast, "x", 10, nil)
}

func TestManyBroadcastsWithinWindowAllHeard(t *testing.T) {
	// A burst of broadcasts queued at a window start must mostly fit inside
	// the 100ms active window: this is the property MQ-JIT's recruit
	// messages rely on.
	r := newRig(7)
	cfg := DefaultConfig(3 * time.Second)
	var senders []*MAC
	for i := 0; i < 10; i++ {
		senders = append(senders, r.node(radio.NodeID(i), geom.Pt(100+float64(i), 100), cfg, RoleAlwaysOn))
	}
	sleeper := r.node(99, geom.Pt(100, 150), cfg, RoleDutyCycled)
	var got inbox
	sleeper.OnReceive(got.recv)

	r.eng.Schedule(3*time.Second, func() {
		for i, s := range senders {
			s.Broadcast(i, 72)
		}
	})
	r.eng.Run(4 * time.Second)
	if len(got.msgs) < 9 {
		t.Errorf("sleeper heard %d/10 window broadcasts", len(got.msgs))
	}
}

func TestRoleString(t *testing.T) {
	if RoleAlwaysOn.String() != "always-on" || RoleDutyCycled.String() != "duty-cycled" {
		t.Error("role names wrong")
	}
	if Role(9).String() != "Role(9)" {
		t.Error("unknown role formatting wrong")
	}
}

func BenchmarkUnicastRoundTrip(b *testing.B) {
	r := newRig(1)
	cfg := DefaultConfig(3 * time.Second)
	a := r.node(0, geom.Pt(0, 0), cfg, RoleAlwaysOn)
	r.node(1, geom.Pt(50, 0), cfg, RoleAlwaysOn)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		r.eng.Schedule(r.eng.Now(), func() { a.Send(1, i, 60, nil) })
		r.eng.Run(r.eng.Now() + 5*time.Millisecond)
	}
}
