package pyramid

import (
	"cmp"
	"fmt"
	"math"
	"slices"
	"sync"
	"sync/atomic"
	"time"

	"mobiquery/internal/core"
	"mobiquery/internal/field"
	"mobiquery/internal/geom"
	"mobiquery/internal/sim"
)

// DefaultLevels is the number of rollup levels above the cell layer when
// Config.Levels is zero — five resolutions in total, each tile 2× coarser
// than the one below.
const DefaultLevels = 4

// DefaultEpochs is the epoch-ring depth when Config.Epochs is zero.
const DefaultEpochs = 4

// Config parameterizes a Pyramid. Fresh, Sample, and Field fix the
// evaluation semantics an epoch is built under; ServeWindow declines any
// request that does not match them exactly, so a serve can never silently
// answer under different freshness or sampling rules than the cold scan it
// replaces.
type Config struct {
	// Levels is the number of rollup levels above the cells (0 selects
	// DefaultLevels). It is clamped so the coarsest tile never exceeds the
	// grid.
	Levels int
	// Epochs is the ring depth: how many recent period boundaries keep
	// their per-tile aggregates servable (0 selects DefaultEpochs). Late
	// evaluations and lookbacks older than the ring fall back to the cold
	// scan.
	Epochs int
	// Fresh is the freshness window (Tfresh) epochs are built under; zero
	// disables the window, exactly as in core.TemporalSpec.
	Fresh time.Duration
	// Sample is the node sampling schedule, the same function installed as
	// the engine's Sampler. Nil means readings are taken at the boundary
	// itself (the engine's no-sampler semantics).
	Sample func(id int32, at sim.Time) (sim.Time, bool)
	// Field is what the sensors measure.
	Field field.Field
}

// Validate reports configuration errors.
func (c Config) Validate() error {
	switch {
	case c.Levels < 0:
		return fmt.Errorf("pyramid: levels %d must be non-negative", c.Levels)
	case c.Epochs < 0:
		return fmt.Errorf("pyramid: epoch ring depth %d must be non-negative", c.Epochs)
	case c.Fresh < 0:
		return fmt.Errorf("pyramid: freshness window %v must be non-negative", c.Fresh)
	case c.Field == nil:
		return fmt.Errorf("pyramid: config needs a field")
	}
	return nil
}

// cellAgg is one tile's (or cell's) partial aggregate for one epoch: the
// standard decomposable Count/Sum/Min/Max record plus the accounting a cold
// scan keeps (total and stale node counts, contributor staleness bounds).
// The zero value means "no nodes here"; min/max are meaningful only while
// count > 0, mirroring core.Partial's empty semantics.
type cellAgg struct {
	nodes, stale int32
	count        int32
	sum          float64
	min, max     float64
	maxStale     time.Duration
	newest       sim.Time
}

// epoch is the pyramid state frozen at one period boundary: level 0 holds
// one cellAgg per grid cell, each higher level one per 2×-coarser tile.
// Buffers are reused across ring rotations; ready is the publication gate
// (set with release semantics after the rollup, checked with acquire before
// any read).
type epoch struct {
	due         sim.Time
	gridVersion uint64
	startOK     bool
	clean       bool
	ready       atomic.Bool
	lv          [][]cellAgg
	ingested    atomic.Int64
}

// build coordinates one cooperative epoch ingest: concurrent EnsureEpoch
// callers for the same boundary pull cell rows off the shared cursor and
// build them in parallel (the ingest analogue of the grid's row-band
// sharding — writers touch disjoint row stripes, so no locks are needed on
// the hot path); whoever completes the last row runs the rollup and
// publishes the epoch.
type build struct {
	e    *epoch
	rows atomic.Int64
	done atomic.Int64
	fin  chan struct{}
}

// Stats is a snapshot of a pyramid's lifetime counters.
type Stats struct {
	// Builds counts epoch ingests; DirtyBuilds those whose clean-bracket
	// version check failed (their epochs decline every serve).
	Builds      uint64
	DirtyBuilds uint64
	// Served counts successful ServeWindow calls; the Miss counters the
	// declines, by reason: no epoch ingested for the boundary, a freshness
	// window the pyramid was not built under, or grid mutations since
	// ingest.
	Served        uint64
	MissNoEpoch   uint64
	MissFreshness uint64
	MissVersion   uint64
	// NodesIngested counts node readings folded during epoch builds and
	// FringeNodes those disk-tested on the fringe during serves — together
	// the pyramid's total node-visit cost. ServedAreaNodes counts the
	// in-area nodes its serves accounted for, i.e. the node visits a cold
	// scan would have spent on the same evaluations.
	NodesIngested   uint64
	FringeNodes     uint64
	ServedAreaNodes uint64
	// CoveredTiles and FringeCells count decomposition output across all
	// serves.
	CoveredTiles uint64
	FringeCells  uint64
}

// Pyramid is a multiresolution aggregate index over a geom.ShardedGrid: a
// ring of recent epochs, each holding per-cell partial aggregates rolled up
// across ~4–6 resolution levels, built once per query-period boundary and
// shared by every query on the same (period, freshness, schedule) class.
// EnsureEpoch ingests a boundary (cooperatively across callers); ServeWindow
// answers whole-disk aggregates from covered coarse tiles plus a disk-tested
// fringe, declining whenever it cannot prove equality with the cold scan.
// All methods are safe for concurrent use.
type Pyramid struct {
	grid     *geom.ShardedGrid
	cg       cellGeom
	maxLevel int
	lw, lh   []int // per-level tile-space dims
	fresh    time.Duration
	sample   func(id int32, at sim.Time) (sim.Time, bool)
	fld      field.Field

	// mu excludes ring rotation (write) from serves and epoch lookups
	// (read); bmu coordinates build starts. Lock order: bmu before mu.
	mu     sync.RWMutex
	ring   []*epoch
	bmu    sync.Mutex
	builds map[sim.Time]*build

	// version counts epoch publications and ring rotations — the pyramid's
	// own mutation counter, so tests can bracket serve sequences the way
	// grid sweeps bracket SnapshotVersion.
	version atomic.Uint64

	sBuilds, sDirty                 atomic.Uint64
	sServed, sNoEpoch, sFresh, sVer atomic.Uint64
	sIngested, sFringe, sArea       atomic.Uint64
	sTiles, sCells                  atomic.Uint64
}

// New creates a pyramid over grid. The grid's cell layer is the pyramid's
// level 0; cfg fixes the evaluation semantics (see Config).
func New(grid *geom.ShardedGrid, cfg Config) (*Pyramid, error) {
	if err := cfg.Validate(); err != nil {
		return nil, err
	}
	if cfg.Levels == 0 {
		cfg.Levels = DefaultLevels
	}
	if cfg.Epochs == 0 {
		cfg.Epochs = DefaultEpochs
	}
	cg := geometryOf(grid)
	p := &Pyramid{
		grid:     grid,
		cg:       cg,
		maxLevel: cg.maxLevels(cfg.Levels),
		fresh:    cfg.Fresh,
		sample:   cfg.Sample,
		fld:      cfg.Field,
		ring:     make([]*epoch, cfg.Epochs),
		builds:   make(map[sim.Time]*build),
	}
	for i := range p.ring {
		p.ring[i] = &epoch{}
	}
	p.lw = make([]int, p.maxLevel+1)
	p.lh = make([]int, p.maxLevel+1)
	for lv := 0; lv <= p.maxLevel; lv++ {
		p.lw[lv], p.lh[lv] = cg.levelDims(lv)
	}
	return p, nil
}

// Levels returns the number of resolution levels, including the cell layer.
func (p *Pyramid) Levels() int { return p.maxLevel + 1 }

// Version returns the pyramid's mutation counter: it advances on every
// epoch publication and ring rotation, and is stable while no ingest runs.
func (p *Pyramid) Version() uint64 { return p.version.Load() }

// Stats returns a snapshot of the lifetime counters.
func (p *Pyramid) Stats() Stats {
	return Stats{
		Builds:          p.sBuilds.Load(),
		DirtyBuilds:     p.sDirty.Load(),
		Served:          p.sServed.Load(),
		MissNoEpoch:     p.sNoEpoch.Load(),
		MissFreshness:   p.sFresh.Load(),
		MissVersion:     p.sVer.Load(),
		NodesIngested:   p.sIngested.Load(),
		FringeNodes:     p.sFringe.Load(),
		ServedAreaNodes: p.sArea.Load(),
		CoveredTiles:    p.sTiles.Load(),
		FringeCells:     p.sCells.Load(),
	}
}

// findEpoch returns the ready epoch for boundary due, or nil. Caller holds
// p.mu (either mode).
func (p *Pyramid) findEpoch(due sim.Time) *epoch {
	for _, e := range p.ring {
		if e.ready.Load() && e.due == due {
			return e
		}
	}
	return nil
}

// EnsureEpoch ingests the per-tile aggregates for period boundary due,
// making them servable until the ring rotates past them. Calling it for an
// already-ingested boundary is a cheap no-op, so every query of a class can
// call it before evaluating; concurrent callers for the same boundary
// cooperate on the build (each takes rows off a shared cursor) and all
// return once the epoch is published.
func (p *Pyramid) EnsureEpoch(due sim.Time) {
	p.mu.RLock()
	e := p.findEpoch(due)
	p.mu.RUnlock()
	if e != nil {
		return
	}
	p.bmu.Lock()
	p.mu.RLock()
	e = p.findEpoch(due)
	p.mu.RUnlock()
	if e != nil {
		p.bmu.Unlock()
		return
	}
	b, ok := p.builds[due]
	if !ok {
		p.mu.Lock()
		ep := p.rotate(due)
		p.mu.Unlock()
		ep.gridVersion, ep.startOK = p.grid.SnapshotVersion()
		b = &build{e: ep, fin: make(chan struct{})}
		p.builds[due] = b
	}
	p.bmu.Unlock()
	total := int64(p.cg.rows)
	for {
		row := b.rows.Add(1) - 1
		if row >= total {
			break
		}
		p.buildRow(b.e, int(row))
		if b.done.Add(1) == total {
			p.finishBuild(due, b)
		}
	}
	<-b.fin
}

// rotate recycles a ring slot for boundary due and returns it unpublished.
// Caller holds p.bmu and p.mu (write); the write lock excludes serves, so
// no reader can observe the slot mid-reset.
func (p *Pyramid) rotate(due sim.Time) *epoch {
	victim := -1
	for i, e := range p.ring {
		if p.inFlight(e) {
			continue
		}
		if victim < 0 || e.due < p.ring[victim].due || !e.ready.Load() && p.ring[victim].ready.Load() {
			victim = i
		}
	}
	if victim < 0 {
		// Every slot hosts an in-flight build (ring depth < concurrent
		// boundaries); grow rather than corrupt one.
		p.ring = append(p.ring, &epoch{})
		victim = len(p.ring) - 1
	}
	e := p.ring[victim]
	e.ready.Store(false)
	e.due = due
	e.clean, e.startOK = false, false
	e.ingested.Store(0)
	if e.lv == nil {
		e.lv = make([][]cellAgg, p.maxLevel+1)
		for lv := range e.lv {
			e.lv[lv] = make([]cellAgg, p.lw[lv]*p.lh[lv])
		}
	} else {
		for lv := range e.lv {
			clear(e.lv[lv])
		}
	}
	p.version.Add(1)
	return e
}

// inFlight reports whether e is owned by an unfinished build. Caller holds
// p.bmu.
func (p *Pyramid) inFlight(e *epoch) bool {
	for _, b := range p.builds {
		if b.e == e {
			return true
		}
	}
	return false
}

// cellEntry is one grid item captured during ingest.
type cellEntry struct {
	id  int32
	pos geom.Point
}

func entryByID(a, b cellEntry) int { return cmp.Compare(a.id, b.id) }

// entryPool recycles per-row ingest scratch across builds and pyramids.
var entryPool = sync.Pool{New: func() any { return new([]cellEntry) }}

// buildRow ingests one cell row of an epoch: per cell, the bucket is
// captured, sorted by id (bucket order depends on insertion interleaving,
// which is not deterministic), and folded into the cell's aggregate with
// exactly the cold scan's freshness classification.
func (p *Pyramid) buildRow(e *epoch, cy int) {
	scratch := entryPool.Get().(*[]cellEntry)
	visited := int64(0)
	for cx := 0; cx < p.cg.cols; cx++ {
		ents := (*scratch)[:0]
		p.grid.VisitCell(cx, cy, func(id int32, pos geom.Point) {
			ents = append(ents, cellEntry{id: id, pos: pos})
		})
		*scratch = ents
		if len(ents) == 0 {
			continue
		}
		visited += int64(len(ents))
		slices.SortFunc(ents, entryByID)
		agg := cellAgg{min: math.Inf(1), max: math.Inf(-1)}
		for _, en := range ents {
			agg.nodes++
			t, tok := e.due, true
			if p.sample != nil {
				t, tok = p.sample(en.id, e.due)
			}
			if !tok || (p.fresh > 0 && e.due-t > p.fresh) || t > e.due {
				agg.stale++
				continue
			}
			v := p.fld.Sample(en.pos, t)
			agg.count++
			agg.sum += v
			if v < agg.min {
				agg.min = v
			}
			if v > agg.max {
				agg.max = v
			}
			if age := e.due - t; age > agg.maxStale {
				agg.maxStale = age
			}
			if t > agg.newest {
				agg.newest = t
			}
		}
		e.lv[0][cy*p.cg.cols+cx] = agg
	}
	e.ingested.Add(visited)
	entryPool.Put(scratch)
}

// mergeChild folds one child tile into a parent aggregate, in the same
// guarded style the serve path uses: min/max/staleness only ever come from
// tiles with contributing readings.
func mergeChild(agg *cellAgg, c *cellAgg) {
	if c.nodes == 0 {
		return
	}
	agg.nodes += c.nodes
	agg.stale += c.stale
	if c.count == 0 {
		return
	}
	agg.count += c.count
	agg.sum += c.sum
	if c.min < agg.min {
		agg.min = c.min
	}
	if c.max > agg.max {
		agg.max = c.max
	}
	if c.maxStale > agg.maxStale {
		agg.maxStale = c.maxStale
	}
	if c.newest > agg.newest {
		agg.newest = c.newest
	}
}

// finishBuild rolls the cell layer up the levels, closes the clean-bracket
// version check, and publishes the epoch.
func (p *Pyramid) finishBuild(due sim.Time, b *build) {
	e := b.e
	for lv := 1; lv <= p.maxLevel; lv++ {
		w, h := p.lw[lv], p.lh[lv]
		cw, ch := p.lw[lv-1], p.lh[lv-1]
		child := e.lv[lv-1]
		for ty := 0; ty < h; ty++ {
			for tx := 0; tx < w; tx++ {
				agg := cellAgg{min: math.Inf(1), max: math.Inf(-1)}
				for dy := 0; dy < 2; dy++ {
					for dx := 0; dx < 2; dx++ {
						cx, cy := 2*tx+dx, 2*ty+dy
						if cx < cw && cy < ch {
							mergeChild(&agg, &child[cy*cw+cx])
						}
					}
				}
				e.lv[lv][ty*w+tx] = agg
			}
		}
	}
	v1, ok1 := p.grid.SnapshotVersion()
	e.clean = e.startOK && ok1 && v1 == e.gridVersion
	p.sBuilds.Add(1)
	if !e.clean {
		p.sDirty.Add(1)
	}
	p.sIngested.Add(uint64(e.ingested.Load()))
	e.ready.Store(true)
	p.version.Add(1)
	p.bmu.Lock()
	delete(p.builds, due)
	p.bmu.Unlock()
	close(b.fin)
}

// fringeHit is one disk-tested fringe node awaiting the id-ordered fold.
type fringeHit struct {
	id     int32
	pos    geom.Point
	sample sim.Time
}

func fringeByID(a, b fringeHit) int { return cmp.Compare(a.id, b.id) }

// fringePool recycles per-serve fringe scratch.
var fringePool = sync.Pool{New: func() any { return new([]fringeHit) }}

// ServeWindow answers the freshness-windowed aggregate of the disk
// (center, radius) at period boundary due, implementing core.AggIndex. It
// declines (ok=false) unless it can prove the answer equals the cold scan:
// the boundary's epoch must be in the ring, built under the same freshness
// window, with a clean ingest bracket and no grid mutation since. Covered
// tiles contribute their rolled-up partials in deterministic coarse-to-fine
// recursion order; fringe nodes are disk-tested and folded in ascending id
// order, so the result is identical whatever the shard and worker sizing.
func (p *Pyramid) ServeWindow(due sim.Time, center geom.Point, radius float64, fresh time.Duration) (core.AggServe, bool) {
	if fresh != p.fresh {
		p.sFresh.Add(1)
		return core.AggServe{}, false
	}
	p.mu.RLock()
	defer p.mu.RUnlock()
	e := p.findEpoch(due)
	if e == nil {
		p.sNoEpoch.Add(1)
		return core.AggServe{}, false
	}
	if !e.clean || p.grid.Version() != e.gridVersion {
		p.sVer.Add(1)
		return core.AggServe{}, false
	}
	sv := core.AggServe{Data: core.NewPartial()}
	r2 := radius * radius
	scratch := fringePool.Get().(*[]fringeHit)
	hits := (*scratch)[:0]
	fringeVisited := 0
	covered, fringe := coverDisk(p.cg, p.maxLevel, center, radius,
		func(level, tx, ty int) {
			a := &e.lv[level][ty*p.lw[level]+tx]
			if a.nodes == 0 {
				return
			}
			sv.AreaNodes += int(a.nodes)
			sv.StaleNodes += int(a.stale)
			if a.count == 0 {
				return
			}
			sv.Data.Count += int(a.count)
			sv.Data.Sum += a.sum
			if a.min < sv.Data.Min {
				sv.Data.Min = a.min
			}
			if a.max > sv.Data.Max {
				sv.Data.Max = a.max
			}
			if a.maxStale > sv.MaxStaleness {
				sv.MaxStaleness = a.maxStale
			}
			if a.newest > sv.Newest {
				sv.Newest = a.newest
			}
		},
		func(cx, cy int) {
			p.grid.VisitCell(cx, cy, func(id int32, pos geom.Point) {
				fringeVisited++
				if pos.Dist2(center) > r2 {
					return
				}
				sv.AreaNodes++
				t, tok := due, true
				if p.sample != nil {
					t, tok = p.sample(id, due)
				}
				if !tok || (p.fresh > 0 && due-t > p.fresh) || t > due {
					sv.StaleNodes++
					return
				}
				hits = append(hits, fringeHit{id: id, pos: pos, sample: t})
			})
		})
	slices.SortFunc(hits, fringeByID)
	for i := range hits {
		h := &hits[i]
		v := p.fld.Sample(h.pos, h.sample)
		sv.Data.Count++
		sv.Data.Sum += v
		if v < sv.Data.Min {
			sv.Data.Min = v
		}
		if v > sv.Data.Max {
			sv.Data.Max = v
		}
		if age := due - h.sample; age > sv.MaxStaleness {
			sv.MaxStaleness = age
		}
		if h.sample > sv.Newest {
			sv.Newest = h.sample
		}
	}
	*scratch = hits
	fringePool.Put(scratch)
	p.sServed.Add(1)
	p.sTiles.Add(uint64(covered))
	p.sCells.Add(uint64(fringe))
	p.sFringe.Add(uint64(fringeVisited))
	p.sArea.Add(uint64(sv.AreaNodes))
	return sv, true
}
