package pyramid

import (
	"math"

	"mobiquery/internal/geom"
)

// Index is a static read-only spatial index over a fixed set of positions
// that answers radius queries through the same disk decomposition the live
// pyramid uses: fully covered tiles enumerate their cells with no per-node
// distance test (the tile rect proves containment), only the fringe is
// tested node by node. It satisfies metrics.NodeIndex, and its results are
// member-set identical to a flat distance scan — covered tiles hold only
// non-edge cells, whose stored nodes are exactly the points of their rects.
type Index struct {
	grid     *geom.ShardedGrid
	cg       cellGeom
	maxLevel int
	pos      []geom.Point
}

// NewIndex builds an Index with node id i at positions[i]. cell is the grid
// cell size (values around rq/8 give radius-rq queries a useful tile
// hierarchy); non-positive values fall back to 1. levels is the number of
// rollup levels above the cells (0 selects DefaultLevels); it is clamped to
// the grid size.
func NewIndex(positions []geom.Point, cell float64, levels int) *Index {
	var region geom.Rect
	if len(positions) > 0 {
		region = geom.Rect{MinX: positions[0].X, MinY: positions[0].Y, MaxX: positions[0].X, MaxY: positions[0].Y}
		for _, p := range positions[1:] {
			region.MinX = math.Min(region.MinX, p.X)
			region.MinY = math.Min(region.MinY, p.Y)
			region.MaxX = math.Max(region.MaxX, p.X)
			region.MaxY = math.Max(region.MaxY, p.Y)
		}
	}
	if cell <= 0 {
		cell = 1
	}
	if levels == 0 {
		levels = DefaultLevels
	}
	g := geom.NewShardedGrid(region, cell, 1)
	for i, p := range positions {
		g.Insert(int32(i), p)
	}
	cg := geometryOf(g)
	return &Index{
		grid:     g,
		cg:       cg,
		maxLevel: cg.maxLevels(levels),
		pos:      append([]geom.Point(nil), positions...),
	}
}

// Within appends the ids of all items within radius r of p (inclusive) to
// dst and returns the extended slice.
func (ix *Index) Within(dst []int32, p geom.Point, r float64) []int32 {
	r2 := r * r
	coverDisk(ix.cg, ix.maxLevel, p, r,
		func(level, tx, ty int) {
			c0x, c0y := tx<<level, ty<<level
			c1x := min(c0x+1<<level-1, ix.cg.cols-1)
			c1y := min(c0y+1<<level-1, ix.cg.rows-1)
			for cy := c0y; cy <= c1y; cy++ {
				for cx := c0x; cx <= c1x; cx++ {
					ix.grid.VisitCell(cx, cy, func(id int32, _ geom.Point) {
						dst = append(dst, id)
					})
				}
			}
		},
		func(cx, cy int) {
			ix.grid.VisitCell(cx, cy, func(id int32, pos geom.Point) {
				if pos.Dist2(p) <= r2 {
					dst = append(dst, id)
				}
			})
		})
	return dst
}

// Levels returns the number of resolution levels, including the cell layer.
func (ix *Index) Levels() int { return ix.maxLevel + 1 }

// Position returns the stored position of id.
func (ix *Index) Position(id int32) (geom.Point, bool) {
	if id < 0 || int(id) >= len(ix.pos) {
		return geom.Point{}, false
	}
	return ix.pos[id], true
}
