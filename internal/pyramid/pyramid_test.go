package pyramid

import (
	"math"
	"math/rand"
	"sync"
	"testing"
	"time"

	"mobiquery/internal/core"
	"mobiquery/internal/field"
	"mobiquery/internal/geom"
	"mobiquery/internal/sim"
)

// quantField is a position/time-dependent field whose values are multiples
// of 1/64 with bounded magnitude, so every partial sum is exactly
// representable and float addition is associative over them: flat and
// pyramid folds must agree bitwise, not just approximately.
var quantField = field.Func(func(p geom.Point, t sim.Time) float64 {
	q := math.Floor(p.X/16+p.Y/32) + math.Floor(float64(t/time.Millisecond)/256)
	return math.Mod(q, 512) / 64
})

// testSampler is a deterministic per-node schedule with 1s period and a
// hash-spread phase; every 17th node has no sample at all.
func testSampler(id int32, at sim.Time) (sim.Time, bool) {
	if id%17 == 0 {
		return 0, false
	}
	phase := sim.Time(uint64(id)*2654435761%1000) * sim.Time(time.Millisecond)
	if at < phase {
		return 0, false
	}
	period := sim.Time(time.Second)
	return (at-phase)/period*period + phase, true
}

// flatServe is the reference cold scan: VisitWithin over the grid, the
// engine's exact staleness classification, hits folded in ascending id
// order.
func flatServe(g *geom.ShardedGrid, due sim.Time, center geom.Point, radius float64, fresh time.Duration,
	sample func(int32, sim.Time) (sim.Time, bool), fld field.Field) core.AggServe {
	type hit struct {
		id int32
		v  float64
		t  sim.Time
	}
	var hits []hit
	sv := core.AggServe{Data: core.NewPartial()}
	g.VisitWithin(center, radius, func(id int32, pos geom.Point) {
		sv.AreaNodes++
		t, ok := due, true
		if sample != nil {
			t, ok = sample(id, due)
		}
		if !ok || (fresh > 0 && due-t > fresh) || t > due {
			sv.StaleNodes++
			return
		}
		hits = append(hits, hit{id: id, v: fld.Sample(pos, t), t: t})
	})
	for i := 1; i < len(hits); i++ {
		for j := i; j > 0 && hits[j].id < hits[j-1].id; j-- {
			hits[j], hits[j-1] = hits[j-1], hits[j]
		}
	}
	for _, h := range hits {
		sv.Data.Count++
		sv.Data.Sum += h.v
		if h.v < sv.Data.Min {
			sv.Data.Min = h.v
		}
		if h.v > sv.Data.Max {
			sv.Data.Max = h.v
		}
		if age := due - h.t; age > sv.MaxStaleness {
			sv.MaxStaleness = age
		}
		if h.t > sv.Newest {
			sv.Newest = h.t
		}
	}
	return sv
}

func sameServe(t *testing.T, ctx string, got, want core.AggServe) {
	t.Helper()
	if got.AreaNodes != want.AreaNodes || got.StaleNodes != want.StaleNodes {
		t.Fatalf("%s: accounting mismatch: got area=%d stale=%d, want area=%d stale=%d",
			ctx, got.AreaNodes, got.StaleNodes, want.AreaNodes, want.StaleNodes)
	}
	if got.Data.Count != want.Data.Count {
		t.Fatalf("%s: count %d, want %d", ctx, got.Data.Count, want.Data.Count)
	}
	if math.Float64bits(got.Data.Sum) != math.Float64bits(want.Data.Sum) {
		t.Fatalf("%s: sum %v (bits %x), want %v (bits %x)",
			ctx, got.Data.Sum, math.Float64bits(got.Data.Sum), want.Data.Sum, math.Float64bits(want.Data.Sum))
	}
	if math.Float64bits(got.Data.Min) != math.Float64bits(want.Data.Min) ||
		math.Float64bits(got.Data.Max) != math.Float64bits(want.Data.Max) {
		t.Fatalf("%s: min/max %v/%v, want %v/%v", ctx, got.Data.Min, got.Data.Max, want.Data.Min, want.Data.Max)
	}
	if got.MaxStaleness != want.MaxStaleness || got.Newest != want.Newest {
		t.Fatalf("%s: staleness %v newest %v, want %v %v", ctx, got.MaxStaleness, got.Newest, want.MaxStaleness, want.Newest)
	}
}

func fillGrid(g *geom.ShardedGrid, n int, seed int64) {
	rng := rand.New(rand.NewSource(seed))
	r := g.Region()
	for i := 0; i < n; i++ {
		g.Insert(int32(i), geom.Pt(
			r.MinX+rng.Float64()*(r.MaxX-r.MinX),
			r.MinY+rng.Float64()*(r.MaxY-r.MinY)))
	}
}

func TestServeWindowMatchesFlatScan(t *testing.T) {
	region := geom.Rect{MinX: 0, MinY: 0, MaxX: 2000, MaxY: 2000}
	const fresh = 700 * time.Millisecond
	for _, shards := range []int{1, 16} {
		g := geom.NewShardedGrid(region, 62.5, shards)
		fillGrid(g, 4000, 7)
		p, err := New(g, Config{Fresh: fresh, Sample: testSampler, Field: quantField})
		if err != nil {
			t.Fatal(err)
		}
		due := sim.Time(5 * time.Second)
		p.EnsureEpoch(due)
		rng := rand.New(rand.NewSource(11))
		for trial := 0; trial < 60; trial++ {
			radius := 100 + rng.Float64()*700
			center := geom.Pt(rng.Float64()*2400-200, rng.Float64()*2400-200)
			got, ok := p.ServeWindow(due, center, radius, fresh)
			if !ok {
				t.Fatalf("shards=%d trial %d: serve declined on a clean matching epoch", shards, trial)
			}
			want := flatServe(g, due, center, radius, fresh, testSampler, quantField)
			sameServe(t, "serve", got, want)
		}
		st := p.Stats()
		if st.Builds != 1 || st.Served != 60 || st.CoveredTiles == 0 {
			t.Fatalf("shards=%d: stats %+v: want 1 build, 60 serves, covered tiles", shards, st)
		}
	}
}

// TestServeWindowEdgeCases pins the aggregate corner semantics the flat
// path defines: empty areas yield NaN Min/Max/Avg, NaN readings poison Sum
// but never win Min/Max, a single reading averages to itself exactly.
func TestServeWindowEdgeCases(t *testing.T) {
	region := geom.Rect{MinX: 0, MinY: 0, MaxX: 1000, MaxY: 1000}
	g := geom.NewShardedGrid(region, 31.25, 4)
	// Nodes only in the left half; node 3's position yields NaN readings.
	rng := rand.New(rand.NewSource(3))
	for i := 0; i < 500; i++ {
		g.Insert(int32(i), geom.Pt(rng.Float64()*450, rng.Float64()*1000))
	}
	g.Insert(9000, geom.Pt(960, 123)) // lone node in the right half
	fld := field.Func(func(p geom.Point, t sim.Time) float64 {
		if int(p.Y)%5 == 0 {
			return math.NaN()
		}
		return quantField.Sample(p, t)
	})
	p, err := New(g, Config{Fresh: 700 * time.Millisecond, Sample: testSampler, Field: fld})
	if err != nil {
		t.Fatal(err)
	}
	due := sim.Time(3 * time.Second)
	p.EnsureEpoch(due)

	check := func(name string, center geom.Point, radius float64) core.AggServe {
		t.Helper()
		got, ok := p.ServeWindow(due, center, radius, 700*time.Millisecond)
		if !ok {
			t.Fatalf("%s: serve declined", name)
		}
		sameServe(t, name, got, flatServe(g, due, center, radius, 700*time.Millisecond, testSampler, fld))
		return got
	}

	// Empty area: no nodes at all; Min/Max/Avg must come out NaN.
	empty := check("empty", geom.Pt(700, 700), 150)
	if empty.Data.Count != 0 || empty.AreaNodes != 0 {
		t.Fatalf("empty area served %d nodes", empty.AreaNodes)
	}
	for _, k := range []core.AggKind{core.AggMin, core.AggMax, core.AggAvg} {
		if v := empty.Data.Value(k); !math.IsNaN(v) {
			t.Fatalf("empty area agg %v = %v, want NaN", k, v)
		}
	}
	if empty.Data.Value(core.AggCount) != 0 {
		t.Fatalf("empty area count = %v", empty.Data.Value(core.AggCount))
	}

	// NaN readings: dense half, field NaN on some rows. Sum poisons, Min/Max
	// ignore NaN (comparisons are false), and the pyramid must reproduce
	// both behaviors bit for bit.
	nan := check("nan-readings", geom.Pt(250, 500), 400)
	if nan.Data.Count == 0 || !math.IsNaN(nan.Data.Sum) {
		t.Fatalf("nan-readings: count=%d sum=%v, want NaN sum over >0 readings", nan.Data.Count, nan.Data.Sum)
	}
	if math.IsNaN(nan.Data.Min) || math.IsNaN(nan.Data.Max) {
		t.Fatalf("nan-readings: min/max %v/%v should exclude NaN", nan.Data.Min, nan.Data.Max)
	}

	// Single reading: Avg must equal the reading exactly.
	single := check("single", geom.Pt(960, 123), 60)
	if single.Data.Count != 1 {
		t.Fatalf("single: count=%d, want 1", single.Data.Count)
	}
	samp, _ := testSampler(9000, due)
	want := fld.Sample(geom.Pt(960, 123), samp)
	if avg := single.Data.Value(core.AggAvg); avg != want {
		t.Fatalf("single: avg=%v, want %v", avg, want)
	}
}

// TestServeWindowGates exercises every decline path: unknown boundary,
// mismatched freshness window, and grid mutation after ingest.
func TestServeWindowGates(t *testing.T) {
	region := geom.Rect{MinX: 0, MinY: 0, MaxX: 1000, MaxY: 1000}
	g := geom.NewShardedGrid(region, 31.25, 4)
	fillGrid(g, 800, 5)
	p, err := New(g, Config{Fresh: time.Second, Sample: testSampler, Field: quantField})
	if err != nil {
		t.Fatal(err)
	}
	due := sim.Time(2 * time.Second)
	center, radius := geom.Pt(500, 500), 300.0

	if _, ok := p.ServeWindow(due, center, radius, time.Second); ok {
		t.Fatal("served before any epoch was ingested")
	}
	p.EnsureEpoch(due)
	v := p.Version()
	if _, ok := p.ServeWindow(due+1, center, radius, time.Second); ok {
		t.Fatal("served a boundary that was never ingested")
	}
	if _, ok := p.ServeWindow(due, center, radius, 2*time.Second); ok {
		t.Fatal("served under a different freshness window")
	}
	if _, ok := p.ServeWindow(due, center, radius, time.Second); !ok {
		t.Fatal("declined a clean matching serve")
	}
	if p.Version() != v {
		t.Fatal("serves must not advance the pyramid version")
	}

	g.Insert(5000, geom.Pt(500, 500))
	if _, ok := p.ServeWindow(due, center, radius, time.Second); ok {
		t.Fatal("served from an epoch predating a grid mutation")
	}
	p.EnsureEpoch(due + sim.Time(time.Second))
	if p.Version() == v {
		t.Fatal("ingest must advance the pyramid version")
	}
	got, ok := p.ServeWindow(due+sim.Time(time.Second), center, radius, time.Second)
	if !ok {
		t.Fatal("declined after re-ingest")
	}
	sameServe(t, "re-ingest", got,
		flatServe(g, due+sim.Time(time.Second), center, radius, time.Second, testSampler, quantField))

	st := p.Stats()
	if st.MissNoEpoch != 2 || st.MissFreshness != 1 || st.MissVersion != 1 || st.Served != 2 || st.Builds != 2 {
		t.Fatalf("stats %+v: want 2 no-epoch, 1 freshness, 1 version misses, 2 serves, 2 builds", st)
	}
}

// TestEnsureEpochConcurrent has many goroutines demand the same boundary at
// once: they must cooperate on a single build and all observe the published
// epoch, with results identical to the flat scan.
func TestEnsureEpochConcurrent(t *testing.T) {
	region := geom.Rect{MinX: 0, MinY: 0, MaxX: 2000, MaxY: 2000}
	g := geom.NewShardedGrid(region, 62.5, 8)
	fillGrid(g, 3000, 9)
	p, err := New(g, Config{Fresh: 700 * time.Millisecond, Sample: testSampler, Field: quantField})
	if err != nil {
		t.Fatal(err)
	}
	due := sim.Time(4 * time.Second)
	var wg sync.WaitGroup
	for i := 0; i < 8; i++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			p.EnsureEpoch(due)
			if _, ok := p.ServeWindow(due, geom.Pt(1000, 1000), 500, 700*time.Millisecond); !ok {
				t.Error("serve declined after EnsureEpoch returned")
			}
		}()
	}
	wg.Wait()
	if st := p.Stats(); st.Builds != 1 {
		t.Fatalf("%d builds for one boundary, want 1 cooperative build", st.Builds)
	}
	got, _ := p.ServeWindow(due, geom.Pt(1000, 1000), 500, 700*time.Millisecond)
	sameServe(t, "concurrent", got, flatServe(g, due, geom.Pt(1000, 1000), 500, 700*time.Millisecond, testSampler, quantField))
}

// TestIndexWithinMatchesFlat checks the static pyramid Index against the
// grid's own flat radius scan over random disks.
func TestIndexWithinMatchesFlat(t *testing.T) {
	rng := rand.New(rand.NewSource(21))
	positions := make([]geom.Point, 2500)
	for i := range positions {
		positions[i] = geom.Pt(rng.Float64()*1500, rng.Float64()*1500)
	}
	ix := NewIndex(positions, 200.0/8, 0)
	if ix.Levels() < 3 {
		t.Fatalf("index built only %d levels", ix.Levels())
	}
	var buf []int32
	for trial := 0; trial < 80; trial++ {
		radius := 50 + rng.Float64()*400
		center := geom.Pt(rng.Float64()*1900-200, rng.Float64()*1900-200)
		buf = ix.Within(buf[:0], center, radius)
		got := make(map[int32]bool, len(buf))
		for _, id := range buf {
			got[id] = true
		}
		if len(got) != len(buf) {
			t.Fatalf("trial %d: Within returned %d ids with duplicates", trial, len(buf))
		}
		r2 := radius * radius
		want := 0
		for i, pos := range positions {
			if pos.Dist2(center) <= r2 {
				want++
				if !got[int32(i)] {
					t.Fatalf("trial %d: node %d at %v missing from Within(%v, %v)", trial, i, pos, center, radius)
				}
			}
		}
		if want != len(buf) {
			t.Fatalf("trial %d: Within returned %d ids, brute force found %d", trial, len(buf), want)
		}
		pos, ok := ix.Position(int32(trial))
		if !ok || pos != positions[trial] {
			t.Fatalf("Position(%d) = %v,%v", trial, pos, ok)
		}
	}
}
