// Package pyramid maintains a multiresolution tile pyramid of partial
// aggregates over a geom.ShardedGrid, answering large-area Count/Sum/Min/
// Max/Avg queries by decomposing the query disk into a handful of fully
// covered coarse tiles plus a fringe of boundary cells scanned flat — the
// multiresolution aggregate-index construction (per-cell partials rolled up
// across resolutions) that turns an O(area) radius scan into roughly
// O(perimeter + log area) work once the per-epoch ingest is amortized
// across queries.
//
// Exactness is the design center, in the spirit of the corridor cache: a
// pyramid serve must be provably equal to the cold radius scan it replaces.
// The decomposition guarantees member-set equality (every node the cold
// scan would fold is accounted exactly once — covered tiles hold only
// in-disk nodes, the fringe is disk-tested node by node, edge cells are
// never covered because clamping makes their extent unbounded), and the
// epoch gate guarantees state equality (same boundary, same freshness
// window, same sampling schedule, node index unchanged since ingest).
// Anything unprovable is declined and the caller falls back to the cold
// scan with honest accounting.
package pyramid

import (
	"mobiquery/internal/geom"
)

// cellGeom is the cell-space geometry a decomposition runs over, copied
// from the grid so the recursion depends only on region/cellSize/dims —
// never on shard count, which is what makes decompositions identical across
// ServiceConfig sizings.
type cellGeom struct {
	region     geom.Rect
	cell       float64
	cols, rows int
}

func geometryOf(g *geom.ShardedGrid) cellGeom {
	cols, rows := g.CellCount()
	return cellGeom{region: g.Region(), cell: g.CellSize(), cols: cols, rows: rows}
}

// maxLevels returns the number of rollup levels above the cells worth
// keeping: coarser than the whole grid is useless.
func (cg cellGeom) maxLevels(want int) int {
	lv := 0
	for lv < want && (cg.cols>>(lv+1)) > 0 && (cg.rows>>(lv+1)) > 0 {
		lv++
	}
	return lv
}

// levelDims returns the tile-space dimensions of level lv (level 0 = cells).
func (cg cellGeom) levelDims(lv int) (w, h int) {
	s := 1 << lv
	return (cg.cols + s - 1) / s, (cg.rows + s - 1) / s
}

// cover is one disk decomposition in flight.
type cover struct {
	cellGeom
	center                    geom.Point
	r2                        float64
	minCX, maxCX              int
	minCY, maxCY              int
	tileFn                    func(level, tx, ty int)
	cellFn                    func(cx, cy int)
	coveredTiles, fringeCells int
	prunedTiles               int
}

// coverDisk decomposes the radius-r disk around center into fully covered
// tiles (reported to tileFn, coarsest first in deterministic recursion
// order) and fringe cells (reported to cellFn) whose nodes must be
// disk-tested individually. The union of the two exactly partitions the
// in-disk portion of the cell box VisitWithin scans:
//
//   - a covered tile lies entirely inside the disk and contains no edge
//     cell, so every node stored in it is in-disk (non-edge cells hold
//     exactly the points of their rect);
//   - a pruned tile lies entirely outside the disk and contains no edge
//     cell, so every node in it would fail the cold scan's distance test;
//   - everything else — boundary-straddling tiles down to single cells,
//     and every edge cell (whose clamped extent is unbounded outward, so
//     no containment can be proven from its rect) — is fringe.
//
// It returns the covered-tile and fringe-cell counts.
func coverDisk(cg cellGeom, maxLevel int, center geom.Point, r float64, tileFn func(level, tx, ty int), cellFn func(cx, cy int)) (covered, fringe int) {
	c := cover{
		cellGeom: cg,
		center:   center,
		r2:       r * r,
		tileFn:   tileFn,
		cellFn:   cellFn,
	}
	// The same clamped bounding box VisitWithin and VisitCellsInBox walk.
	c.minCX = int((center.X - r - cg.region.MinX) / cg.cell)
	c.maxCX = int((center.X + r - cg.region.MinX) / cg.cell)
	c.minCY = int((center.Y - r - cg.region.MinY) / cg.cell)
	c.maxCY = int((center.Y + r - cg.region.MinY) / cg.cell)
	if c.minCX < 0 {
		c.minCX = 0
	}
	if c.minCY < 0 {
		c.minCY = 0
	}
	if c.maxCX >= cg.cols {
		c.maxCX = cg.cols - 1
	}
	if c.maxCY >= cg.rows {
		c.maxCY = cg.rows - 1
	}
	if c.maxCX < c.minCX || c.maxCY < c.minCY {
		return 0, 0
	}
	for ty := c.minCY >> maxLevel; ty <= c.maxCY>>maxLevel; ty++ {
		for tx := c.minCX >> maxLevel; tx <= c.maxCX>>maxLevel; tx++ {
			c.visit(maxLevel, tx, ty)
		}
	}
	return c.coveredTiles, c.fringeCells
}

func (c *cover) visit(level, tx, ty int) {
	c0x, c0y := tx<<level, ty<<level
	c1x := c0x + 1<<level - 1
	c1y := c0y + 1<<level - 1
	if c1x > c.cols-1 {
		c1x = c.cols - 1
	}
	if c1y > c.rows-1 {
		c1y = c.rows - 1
	}
	// Outside the scanned box: the cold scan never looks here.
	if c0x > c.maxCX || c1x < c.minCX || c0y > c.maxCY || c1y < c.minCY {
		return
	}
	// An edge-touching tile can never be classified by its rect: clamped
	// cells hold nodes arbitrarily far outside it.
	edge := c0x == 0 || c0y == 0 || c1x == c.cols-1 || c1y == c.rows-1
	if !edge {
		rect := geom.Rect{
			MinX: c.region.MinX + float64(c0x)*c.cell,
			MinY: c.region.MinY + float64(c0y)*c.cell,
			MaxX: c.region.MinX + float64(c1x+1)*c.cell,
			MaxY: c.region.MinY + float64(c1y+1)*c.cell,
		}
		min2, max2 := rectDist2(rect, c.center)
		if min2 > c.r2 {
			// Entirely outside the disk: every node here fails the cold
			// scan's distance test, so skipping it cannot change results.
			c.prunedTiles++
			return
		}
		if max2 <= c.r2 && c0x >= c.minCX && c1x <= c.maxCX && c0y >= c.minCY && c1y <= c.maxCY {
			c.coveredTiles++
			c.tileFn(level, tx, ty)
			return
		}
	}
	if level == 0 {
		c.fringeCells++
		c.cellFn(c0x, c0y)
		return
	}
	c.visit(level-1, 2*tx, 2*ty)
	c.visit(level-1, 2*tx+1, 2*ty)
	c.visit(level-1, 2*tx, 2*ty+1)
	c.visit(level-1, 2*tx+1, 2*ty+1)
}

// rectDist2 returns the squared distances from p to the nearest and
// farthest points of rect (0 for the nearest when p is inside).
func rectDist2(rect geom.Rect, p geom.Point) (min2, max2 float64) {
	var nx, fx float64
	switch {
	case p.X < rect.MinX:
		nx = rect.MinX - p.X
	case p.X > rect.MaxX:
		nx = p.X - rect.MaxX
	}
	if d := p.X - rect.MinX; d > fx {
		fx = d
	}
	if d := rect.MaxX - p.X; d > fx {
		fx = d
	}
	var ny, fy float64
	switch {
	case p.Y < rect.MinY:
		ny = rect.MinY - p.Y
	case p.Y > rect.MaxY:
		ny = p.Y - rect.MaxY
	}
	if d := p.Y - rect.MinY; d > fy {
		fy = d
	}
	if d := rect.MaxY - p.Y; d > fy {
		fy = d
	}
	return nx*nx + ny*ny, fx*fx + fy*fy
}
