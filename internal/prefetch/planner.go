package prefetch

import (
	"fmt"
	"math"
	"sync"
	"sync/atomic"
	"time"

	"mobiquery/internal/analysis"
	"mobiquery/internal/geom"
	"mobiquery/internal/mobility"
	"mobiquery/internal/sim"
)

// DefaultPrefetchSpeed is the Section 5.2 vprfh estimate for MICA2-class
// hardware (100 m pickup spacing, 5 hops, 60-byte messages, 5 kbit/s
// effective bandwidth): roughly 208 m/s, far above any mobile user.
var DefaultPrefetchSpeed = analysis.PrefetchSpeed(100, 5, 60, 5000)

// Config fixes the quantities a Planner needs: the subscription's temporal
// contract, the field's duty cycle, and the strategy.
type Config struct {
	// Strategy selects how far ahead chains are dispatched.
	Strategy Strategy
	// Radius is the query radius Rq: a prefetched reading is served only to
	// evaluations of nodes inside the predicted circle of this radius.
	Radius float64
	// Period, Deadline, and Fresh are the subscription's temporal contract
	// (Tperiod, the deadline slack, Tfresh).
	Period   time.Duration
	Deadline time.Duration
	Fresh    time.Duration
	// Sleep is the sensor duty-cycle period (Tsleep): how long a sleeping
	// node may take to act on a prefetch message. The session service uses
	// its NetworkConfig.SamplePeriod.
	Sleep time.Duration
	// T0 is the subscription epoch: period k comes due at T0 + k*Period.
	T0 sim.Time
	// UserSpeed and PrefetchSpeed feed the equation-16 warmup bound. Zero
	// UserSpeed estimates the speed from the motion profile; zero
	// PrefetchSpeed selects DefaultPrefetchSpeed.
	UserSpeed     float64
	PrefetchSpeed float64
}

// Validate reports configuration errors.
func (c Config) Validate() error {
	if err := c.Strategy.Validate(); err != nil {
		return err
	}
	switch {
	case !c.Strategy.Prefetching():
		return fmt.Errorf("prefetch: a planner needs a prefetching strategy, not %v", c.Strategy)
	case c.Radius <= 0:
		return fmt.Errorf("prefetch: radius %v must be positive", c.Radius)
	case c.Period <= 0:
		return fmt.Errorf("prefetch: period %v must be positive", c.Period)
	case c.Deadline < 0 || c.Fresh < 0 || c.Sleep < 0:
		return fmt.Errorf("prefetch: deadline, freshness, and sleep must be non-negative")
	case c.UserSpeed < 0 || c.PrefetchSpeed < 0:
		return fmt.Errorf("prefetch: speeds must be non-negative")
	}
	return nil
}

// holdBound is the equation-10 margin Tsleep + 2*Tfresh: the slack the
// forward time reserves for waking a node and collecting its reading, and
// therefore the longest a prefetched reading may be held before the
// boundary it serves.
func (c Config) holdBound() time.Duration { return c.Sleep + 2*c.Fresh }

// normalized fills derived defaults: the prefetch speed and Greedy's
// minimal safe lookahead ceil((Tsleep+2*Tfresh)/Tperiod)+1 — one more than
// the equation-12 storage constant, the smallest window that still meets
// every equation-10 forward deadline.
func (c Config) normalized() Config {
	if c.PrefetchSpeed <= 0 {
		c.PrefetchSpeed = DefaultPrefetchSpeed
	}
	if c.Strategy.Kind == Greedy && c.Strategy.Lookahead == 0 {
		q := analysis.QueryParams{Period: c.Period, Fresh: c.Fresh, Sleep: c.Sleep}
		c.Strategy.Lookahead = analysis.StorageJIT(q)
	}
	return c
}

// Entry is one period's plan: where the query area will be, when the chain
// serving it is dispatched and captures its readings, and the hold-time
// ledger bounding how long those readings may be served.
type Entry struct {
	// K is the 1-based period index, due at Due.
	K   int
	Due sim.Time
	// Center is the predicted pickup point: the profile's position at Due.
	Center geom.Point
	// LaunchAt is when the chain for this period is dispatched; OnTime
	// reports that it met the equation-10 forward deadline
	// (k-1)*Tperiod - Tsleep - 2*Tfresh, so the answer is staged at the
	// pickup point by the boundary.
	LaunchAt sim.Time
	OnTime   bool
	// ReadyAt is when the period's answer is available at the pickup point:
	// the boundary itself when OnTime, launch + Tsleep + 2*Tfresh when the
	// chain went out late (a warmup period).
	ReadyAt sim.Time
	// CaptureAt is when the in-area nodes take the reading served for this
	// period: the boundary under JIT, the opening of the freshness window
	// under Greedy. HoldUntil = CaptureAt + Tsleep + 2*Tfresh is the
	// equation-10 ledger: past it the prefetched reading may not be served.
	CaptureAt sim.Time
	HoldUntil sim.Time
}

// Planner is one subscription's prefetch plan: a pure function of the
// governing motion profile, the plan epoch (when that profile arrived), and
// the configuration — so the same subscribe/replan/advance sequence always
// yields the same plans regardless of shard or worker count. All methods
// are safe for concurrent use; Replan may race evaluations, which then see
// either the old or the new plan.
type Planner struct {
	cfg    Config
	hold   time.Duration
	served atomic.Int64

	// memo caches the most recently resolved (due, Entry): windowed
	// evaluation asks for the same boundary once per in-area node, so one
	// computation serves the whole visit. Replan invalidates it.
	memo atomic.Pointer[entryMemo]

	mu          sync.RWMutex
	profile     mobility.Profile
	epoch       sim.Time
	warmupUntil sim.Time
	replans     int
}

// entryMemo is one resolved boundary lookup.
type entryMemo struct {
	due sim.Time
	e   Entry
	ok  bool
}

// NewPlanner builds the plan for a subscription from its initial motion
// profile, effective at the subscription epoch cfg.T0.
func NewPlanner(cfg Config, profile mobility.Profile) (*Planner, error) {
	if err := cfg.Validate(); err != nil {
		return nil, err
	}
	cfg = cfg.normalized()
	p := &Planner{cfg: cfg, hold: cfg.holdBound()}
	p.install(profile, cfg.T0)
	return p, nil
}

// Replan replaces the governing motion profile at virtual time now: the
// user's actual motion diverged (a waypoint update) or a fresher prediction
// arrived. Chains for boundaries past now are re-dispatched from the new
// epoch, which restarts the equation-16 warmup clock — exactly the paper's
// cost of a motion change.
func (p *Planner) Replan(profile mobility.Profile, now sim.Time) {
	p.mu.Lock()
	defer p.mu.Unlock()
	p.replans++
	p.install(profile, now)
	// Drop the cached boundary. An evaluation racing this Replan may still
	// publish the old plan's entry for the boundary it is mid-way through —
	// one whole, consistent entry, which is exactly the documented "sees
	// either the old or the new plan" — and every later boundary misses the
	// memo and recomputes against the new plan.
	p.memo.Store(nil)
}

// install records the profile and epoch and derives the warmup horizon.
// Caller holds mu (or owns p exclusively during construction).
func (p *Planner) install(profile mobility.Profile, now sim.Time) {
	p.profile = profile
	p.epoch = now
	ts := profile.TS
	if ts < now {
		ts = now
	}
	p.warmupUntil = ts + p.warmupInterval(profile)
}

// warmupInterval evaluates the equation-16 bound Tw for the profile's
// advance time Ta, clamping the speed ratio away from the poles (a
// stationary user warms up fastest; a user outrunning the prefetch speed
// never stops warming up, which the clamp turns into a very long bound
// rather than a panic).
func (p *Planner) warmupInterval(profile mobility.Profile) time.Duration {
	q := analysis.QueryParams{Period: p.cfg.Period, Fresh: p.cfg.Fresh, Sleep: p.cfg.Sleep}
	vp := p.cfg.PrefetchSpeed
	vu := p.cfg.UserSpeed
	if vu <= 0 {
		vu = profile.Path.VelAt(profile.TS).Len()
	}
	if vu <= 0 || math.IsNaN(vu) {
		vu = 1e-3
	}
	if vu >= vp {
		vu = vp * (1 - 1e-3)
	}
	return analysis.WarmupInterval(q, profile.AdvanceTime(), vu, vp)
}

// kFor inverts due = T0 + k*Period; ok is false when due is not one of this
// subscription's period boundaries.
func (p *Planner) kFor(due sim.Time) (int, bool) {
	d := due - p.cfg.T0
	if d <= 0 || d%p.cfg.Period != 0 {
		return 0, false
	}
	return int(d / p.cfg.Period), true
}

// entryLocked computes period k's plan under the current profile and epoch.
// Caller holds mu (read or write). ok is false outside the plan's coverage:
// k < 1, a boundary before the profile takes effect, or one past its
// validity (a profile with zero Validity covers all future boundaries).
func (p *Planner) entryLocked(k int) (Entry, bool) {
	if k < 1 {
		return Entry{}, false
	}
	due := p.cfg.T0 + sim.Time(k)*p.cfg.Period
	if due < p.profile.TS {
		return Entry{}, false
	}
	if p.profile.Validity > 0 && due > p.profile.Expiry() {
		return Entry{}, false
	}
	q := analysis.QueryParams{Period: p.cfg.Period, Fresh: p.cfg.Fresh, Sleep: p.cfg.Sleep}
	forwardBy := p.cfg.T0 + analysis.PrefetchForwardTime(q, k)
	var launch sim.Time
	switch p.cfg.Strategy.Kind {
	case JIT:
		launch = forwardBy
	case Greedy:
		launch = due - sim.Time(p.cfg.Strategy.Lookahead)*p.cfg.Period
	}
	if launch < p.epoch {
		launch = p.epoch
	}
	e := Entry{
		K:        k,
		Due:      due,
		Center:   p.profile.PredictAt(due),
		LaunchAt: launch,
		OnTime:   launch <= forwardBy,
	}
	e.ReadyAt = due
	if !e.OnTime {
		e.ReadyAt = launch + sim.Time(p.hold)
	}
	e.CaptureAt = due
	if p.cfg.Strategy.Kind == Greedy {
		e.CaptureAt = due - sim.Time(p.cfg.Fresh)
		if e.CaptureAt < launch {
			e.CaptureAt = launch
		}
		if e.CaptureAt > due {
			e.CaptureAt = due
		}
	}
	e.HoldUntil = e.CaptureAt + sim.Time(p.hold)
	return e, true
}

// EntryFor returns the plan entry whose period comes due at the given
// boundary; ok is false when the boundary is outside the plan's coverage.
// Repeated lookups of one boundary — the per-node calls of a windowed
// evaluation — hit the memo and skip the plan math.
func (p *Planner) EntryFor(due sim.Time) (Entry, bool) {
	if m := p.memo.Load(); m != nil && m.due == due {
		return m.e, m.ok
	}
	p.mu.RLock()
	var (
		e  Entry
		ok bool
	)
	if k, kok := p.kFor(due); kok {
		e, ok = p.entryLocked(k)
	}
	p.mu.RUnlock()
	p.memo.Store(&entryMemo{due: due, e: e, ok: ok})
	return e, ok
}

// PeriodStatus returns the plan's view of the period due at `due` in one
// snapshot — the core engine's PrefetchPlan hook. staged reports a chain
// that met its equation-10 forward deadline with readings inside the
// hold-time ledger (ready is then the boundary); warmup marks a covered
// boundary whose chain launched too late, the mechanical form of the
// paper's equation-16 warmup regime after a new profile. For the standard
// slow-user settings the mechanical warmup and the closed-form bound agree
// exactly (pinned by tests); the bound itself, rounded to whole periods
// and widened by the speed ratio, is reported as Stats().WarmupUntil.
// Resolving everything from a single Entry keeps staged and warmup an
// exact partition of covered periods even when a Replan races the call.
func (p *Planner) PeriodStatus(due sim.Time) (ready sim.Time, staged, warmup bool) {
	e, ok := p.EntryFor(due)
	if !ok {
		return 0, false, false
	}
	if !e.OnTime || e.Due-e.CaptureAt > sim.Time(p.hold) {
		return 0, false, true
	}
	return e.ReadyAt, true, false
}

// ReadyAt reports when the prefetched answer for the period due at `due`
// was staged at the user's pickup point; ok is false when the period has
// no usable prefetch (uncovered, or a warmup period whose chain missed the
// equation-10 forward deadline).
func (p *Planner) ReadyAt(due sim.Time) (sim.Time, bool) {
	ready, staged, _ := p.PeriodStatus(due)
	return ready, staged
}

// Warmup reports whether a period due at `due` is still warming up: a
// covered boundary whose chain missed its equation-10 forward deadline, so
// its result falls back to on-demand collection (see PeriodStatus).
func (p *Planner) Warmup(due sim.Time) bool {
	_, _, warmup := p.PeriodStatus(due)
	return warmup
}

// Sampler wraps the field's node sampling schedule with the plan: a node
// inside the predicted pickup area of an on-time period is served its
// prefetched reading (captured at the plan's capture time, subject to the
// hold-time ledger), anything else falls through to the base schedule. The
// third result reports whether the reading came from the plan. The returned
// sampler has the shape of the engine's per-query AreaSampler.
//
// The sampler itself keeps no ledger — an atomic increment per in-area
// reading was measurable on dense Advance batches. The driver folds each
// evaluation's WindowResult.Prefetched into the served counter once per
// period via NoteServed.
func (p *Planner) Sampler(base func(id int32, at sim.Time) (sim.Time, bool)) func(id int32, pos geom.Point, at sim.Time) (sim.Time, bool, bool) {
	return func(id int32, pos geom.Point, at sim.Time) (sim.Time, bool, bool) {
		e, ok := p.EntryFor(at)
		if ok && e.OnTime && at <= e.HoldUntil && pos.Within(e.Center, p.cfg.Radius) {
			return e.CaptureAt, true, true
		}
		if base == nil {
			return at, true, false
		}
		t, ok := base(id, at)
		return t, ok, false
	}
}

// NoteServed folds one evaluation's prefetched-contributor count into the
// served ledger. Drivers call it once per period with the evaluation's
// Prefetched count — replacing the per-reading atomic increment the
// sampler used to pay on the evaluation hot path.
func (p *Planner) NoteServed(n int) {
	if n > 0 {
		p.served.Add(int64(n))
	}
}

// Outstanding counts the chains dispatched but not yet consumed at virtual
// time `at` — the live analogue of the paper's storage metric (equations
// 11 and 12: bounded by the lookahead under Greedy, by the equation-12
// constant under JIT).
func (p *Planner) Outstanding(at sim.Time) int {
	p.mu.RLock()
	defer p.mu.RUnlock()
	k := int((at-p.cfg.T0)/p.cfg.Period) + 1
	if k < 1 {
		k = 1
	}
	n := 0
	for ; ; k++ {
		e, ok := p.entryLocked(k)
		if !ok {
			break
		}
		// LaunchAt is non-decreasing in k, so the first future launch ends
		// the outstanding window.
		if e.LaunchAt > at {
			break
		}
		n++
	}
	return n
}

// Stats is a snapshot of the planner's ledger.
type Stats struct {
	// Strategy echoes the normalized strategy (Greedy's default lookahead
	// resolved).
	Strategy Strategy
	// Replans counts profile replacements since the subscription opened.
	Replans int
	// Served counts prefetched readings handed to windowed evaluations.
	Served int64
	// WarmupUntil is the end of the current equation-16 warmup interval;
	// periods due before it are flagged Warmup.
	WarmupUntil sim.Time
	// Epoch is when the governing profile was installed.
	Epoch sim.Time

	// The corridor counters describe the subscription's spatial corridor
	// cache when one is attached; the session layer fills them from
	// corridor.Cache.Stats (the planner itself never touches them, so they
	// stay zero on a bare Planner). CorridorHits counts periods served
	// from a warm staged buffer, CorridorMisses cold-scan fallbacks,
	// CorridorMispredicts boundaries at which the user's actual position
	// escaped the corridor (each of which forced an immediate re-plan),
	// and CorridorStaged snapshots built over the subscription's lifetime.
	CorridorHits        int64
	CorridorMisses      int64
	CorridorMispredicts int64
	CorridorStaged      int64
}

// Stats returns the planner's ledger snapshot.
func (p *Planner) Stats() Stats {
	p.mu.RLock()
	defer p.mu.RUnlock()
	return Stats{
		Strategy:    p.cfg.Strategy,
		Replans:     p.replans,
		Served:      p.served.Load(),
		WarmupUntil: p.warmupUntil,
		Epoch:       p.epoch,
	}
}
