// Package prefetch plans predictive sampling along a mobile user's motion
// profile for the live session path: the bridge between the paper's
// prefetching protocol (Section 4) and closed-form timing analysis
// (Section 5) on one side, and the streaming query engine on the other.
//
// A Planner is attached to one subscription. From the subscriber's motion
// profile it derives, for every upcoming period boundary, where the query
// area will be (the pickup point), when the prefetch chain for that period
// must be dispatched (the equation-10 forward time), when the in-area nodes
// capture their readings, and how long those prefetched readings may be
// served (the equation-10 hold-time ledger). The engine consults the plan
// two ways: a per-query sampler serves planned nodes their prefetched
// reading timestamps during windowed evaluation, and the PrefetchPlan hooks
// let EvaluateDue credit a period staged at the pickup point by its
// boundary as evaluated at the boundary rather than at the clock tick that
// collected it. Periods inside the equation-16 warmup interval after a new
// profile fall back to on-demand behavior and are flagged Warmup.
package prefetch

import "fmt"

// Kind selects the prefetching strategy of a live subscription.
type Kind int

const (
	// OnDemand disables prefetching: readings come from the node sampling
	// schedule as-is and periods are evaluated at the clock tick that
	// collects them. The zero value, and exactly the pre-planner behavior.
	OnDemand Kind = iota
	// JIT is the paper's just-in-time prefetching: each period's chain is
	// dispatched at the latest safe moment (equation 10) and its readings
	// are captured at the boundary itself, so storage ahead of the user
	// stays at the equation-12 constant and readings arrive fresh.
	JIT
	// Greedy dispatches chains as soon as the plan window allows and
	// captures readings when the freshness window opens, holding them until
	// the boundary — more chains outstanding (equation 11) and staler
	// readings, in exchange for the simplest possible timing.
	Greedy
)

// String implements fmt.Stringer.
func (k Kind) String() string {
	switch k {
	case OnDemand:
		return "on-demand"
	case JIT:
		return "jit"
	case Greedy:
		return "greedy"
	default:
		return fmt.Sprintf("Kind(%d)", int(k))
	}
}

// Valid reports whether k names a strategy.
func (k Kind) Valid() bool { return k >= OnDemand && k <= Greedy }

// Strategy selects how a subscription prefetches: the kind plus Greedy's
// lookahead. The zero value is OnDemand, today's behavior.
type Strategy struct {
	Kind Kind
	// Lookahead is how many periods ahead Greedy keeps chains dispatched
	// (the k of Greedy(k)). Zero selects the smallest lookahead that still
	// stages every period by its equation-10 forward deadline,
	// ceil((Tsleep+2*Tfresh)/Tperiod)+1. A positive lookahead below that
	// is legal but can never stage a period on time — the regime the
	// paper's Section 5 analysis warns about — so every result stays in
	// on-demand fallback with Warmup set for the subscription's lifetime.
	// Meaningful only for Greedy.
	Lookahead int
}

// Prefetching reports whether the strategy plans ahead at all.
func (s Strategy) Prefetching() bool { return s.Kind != OnDemand }

// String implements fmt.Stringer.
func (s Strategy) String() string {
	if s.Kind == Greedy && s.Lookahead > 0 {
		return fmt.Sprintf("greedy(%d)", s.Lookahead)
	}
	return s.Kind.String()
}

// Validate reports strategy errors.
func (s Strategy) Validate() error {
	if !s.Kind.Valid() {
		return fmt.Errorf("prefetch: unknown strategy kind %d", int(s.Kind))
	}
	if s.Lookahead < 0 {
		return fmt.Errorf("prefetch: lookahead %d must be non-negative", s.Lookahead)
	}
	if s.Lookahead > 0 && s.Kind != Greedy {
		return fmt.Errorf("prefetch: lookahead is meaningful only for the greedy strategy")
	}
	return nil
}
