package prefetch

import (
	"testing"
	"time"

	"mobiquery/internal/analysis"
	"mobiquery/internal/geom"
	"mobiquery/internal/mobility"
	"mobiquery/internal/sim"
)

// testConfig is the shared rig: 1 s periods, 1 s freshness, 3 s duty cycle
// — an equation-10 margin (hold bound) of 5 s.
func testConfig(s Strategy) Config {
	return Config{
		Strategy: s,
		Radius:   50,
		Period:   time.Second,
		Fresh:    time.Second,
		Sleep:    3 * time.Second,
	}
}

// eastbound is a user walking +x at 1 m/s from the origin, predicted
// exactly from t=0 with no advance notice (Ta = 0).
func eastbound() mobility.Profile {
	return mobility.Profile{
		Path:      mobility.LinearPath(geom.Pt(0, 0), geom.V(1, 0), 0, 100*time.Second),
		TS:        0,
		Generated: 0,
		Version:   1,
	}
}

func TestStrategyValidate(t *testing.T) {
	good := []Strategy{{}, {Kind: JIT}, {Kind: Greedy}, {Kind: Greedy, Lookahead: 4}}
	for _, s := range good {
		if err := s.Validate(); err != nil {
			t.Errorf("%v: unexpected error %v", s, err)
		}
	}
	bad := []Strategy{{Kind: Kind(9)}, {Kind: Greedy, Lookahead: -1}, {Kind: JIT, Lookahead: 2}}
	for _, s := range bad {
		if s.Validate() == nil {
			t.Errorf("%+v: expected a validation error", s)
		}
	}
	if JITStrategyString := (Strategy{Kind: JIT}).String(); JITStrategyString != "jit" {
		t.Errorf("String() = %q", JITStrategyString)
	}
	if s := (Strategy{Kind: Greedy, Lookahead: 3}).String(); s != "greedy(3)" {
		t.Errorf("String() = %q", s)
	}
}

func TestConfigValidate(t *testing.T) {
	if err := testConfig(Strategy{Kind: JIT}).Validate(); err != nil {
		t.Fatalf("valid config rejected: %v", err)
	}
	bad := []func(*Config){
		func(c *Config) { c.Strategy = Strategy{} }, // on-demand needs no planner
		func(c *Config) { c.Radius = 0 },
		func(c *Config) { c.Period = 0 },
		func(c *Config) { c.Fresh = -1 },
		func(c *Config) { c.Sleep = -1 },
		func(c *Config) { c.UserSpeed = -1 },
	}
	for i, mutate := range bad {
		cfg := testConfig(Strategy{Kind: JIT})
		mutate(&cfg)
		if _, err := NewPlanner(cfg, eastbound()); err == nil {
			t.Errorf("mutation %d: expected a configuration error", i)
		}
	}
}

// TestJITEquation10Staging pins the equation-10 forward deadlines: with a
// 5 s margin over 1 s periods, a profile arriving at t=0 cannot stage
// periods 1-5 on time, and stages every period from 6 on.
func TestJITEquation10Staging(t *testing.T) {
	p, err := NewPlanner(testConfig(Strategy{Kind: JIT}), eastbound())
	if err != nil {
		t.Fatal(err)
	}
	for k := 1; k <= 5; k++ {
		due := sim.Time(k) * time.Second
		e, ok := p.EntryFor(due)
		if !ok {
			t.Fatalf("period %d: no entry", k)
		}
		if e.OnTime {
			t.Errorf("period %d staged on time inside the equation-10 margin", k)
		}
		if _, ok := p.ReadyAt(due); ok {
			t.Errorf("period %d: ReadyAt should refuse a late chain", k)
		}
	}
	e, ok := p.EntryFor(6 * time.Second)
	if !ok || !e.OnTime {
		t.Fatalf("period 6 should be the first staged on time (entry %+v, ok %v)", e, ok)
	}
	if e.LaunchAt != 0 {
		t.Errorf("period 6 launch = %v, want 0 (the equation-10 instant)", e.LaunchAt)
	}
	if ready, ok := p.ReadyAt(6 * time.Second); !ok || ready != 6*time.Second {
		t.Errorf("ReadyAt(6s) = %v/%v, want 6s/true", ready, ok)
	}
	// JIT captures at the boundary: fresh readings, hold bound 5 s out.
	if e.CaptureAt != 6*time.Second || e.HoldUntil != 11*time.Second {
		t.Errorf("capture/hold = %v/%v, want 6s/11s", e.CaptureAt, e.HoldUntil)
	}
	// Period 7 launches exactly one period later.
	e7, _ := p.EntryFor(7 * time.Second)
	if e7.LaunchAt != time.Second {
		t.Errorf("period 7 launch = %v, want 1s", e7.LaunchAt)
	}
}

// TestWarmupMatchesEquation16 pins the warmup flag to the closed form: the
// analysis bound and the plan's first on-time period must agree.
func TestWarmupMatchesEquation16(t *testing.T) {
	p, err := NewPlanner(testConfig(Strategy{Kind: JIT}), eastbound())
	if err != nil {
		t.Fatal(err)
	}
	q := analysis.QueryParams{Period: time.Second, Fresh: time.Second, Sleep: 3 * time.Second}
	tw := analysis.WarmupInterval(q, 0, 1, DefaultPrefetchSpeed)
	if tw <= 0 {
		t.Fatal("zero-advance profile should have a warmup interval")
	}
	for k := 1; k <= 10; k++ {
		due := sim.Time(k) * time.Second
		want := due < tw
		if got := p.Warmup(due); got != want {
			t.Errorf("Warmup(period %d) = %v, want %v (Tw = %v)", k, got, want, tw)
		}
	}
}

// TestNoGapBetweenWarmupAndStaging pins the contract the session API
// documents: every covered period is either staged on time or flagged
// Warmup — including when the equation-10 margin is not an integer
// multiple of the period, where the rounded equation-16 bound alone would
// leave the last unstaged period unflagged.
func TestNoGapBetweenWarmupAndStaging(t *testing.T) {
	for _, sleep := range []time.Duration{3 * time.Second, 3300 * time.Millisecond, 4700 * time.Millisecond} {
		cfg := testConfig(Strategy{Kind: JIT})
		cfg.Sleep = sleep
		p, err := NewPlanner(cfg, eastbound())
		if err != nil {
			t.Fatal(err)
		}
		for k := 1; k <= 20; k++ {
			due := sim.Time(k) * time.Second
			_, staged := p.ReadyAt(due)
			if !staged && !p.Warmup(due) {
				t.Errorf("sleep %v: period %d is neither staged nor warmup", sleep, k)
			}
			if staged && p.Warmup(due) {
				t.Errorf("sleep %v: period %d is both staged and warmup", sleep, k)
			}
		}
	}
}

// TestGreedyCaptureAndDefaultLookahead pins Greedy's early capture (the
// freshness-window opening) and its derived minimal lookahead.
func TestGreedyCaptureAndDefaultLookahead(t *testing.T) {
	p, err := NewPlanner(testConfig(Strategy{Kind: Greedy}), eastbound())
	if err != nil {
		t.Fatal(err)
	}
	q := analysis.QueryParams{Period: time.Second, Fresh: time.Second, Sleep: 3 * time.Second}
	wantLook := analysis.StorageJIT(q) // ceil((S+2F)/P)+1 = 6
	if got := p.Stats().Strategy.Lookahead; got != wantLook {
		t.Fatalf("default lookahead = %d, want %d", got, wantLook)
	}
	e, ok := p.EntryFor(8 * time.Second)
	if !ok || !e.OnTime {
		t.Fatalf("period 8 should be staged (entry %+v)", e)
	}
	// Captured when the freshness window opens, one second before due, and
	// held: the ledger closes the window 5 s after capture.
	if e.CaptureAt != 7*time.Second || e.HoldUntil != 12*time.Second {
		t.Errorf("capture/hold = %v/%v, want 7s/12s", e.CaptureAt, e.HoldUntil)
	}
	if e.LaunchAt != 2*time.Second {
		t.Errorf("launch = %v, want due - lookahead = 2s", e.LaunchAt)
	}
}

// TestOutstandingMatchesStorageBounds pins the live storage ledger to the
// paper's equations 11/12: JIT holds the constant bound, Greedy its
// lookahead.
func TestOutstandingMatchesStorageBounds(t *testing.T) {
	q := analysis.QueryParams{Period: time.Second, Fresh: time.Second, Sleep: 3 * time.Second}
	jit, err := NewPlanner(testConfig(Strategy{Kind: JIT}), eastbound())
	if err != nil {
		t.Fatal(err)
	}
	at := 20 * time.Second // well past warmup
	if got, want := jit.Outstanding(at), analysis.StorageJIT(q); got != want {
		t.Errorf("JIT outstanding = %d, want the equation-12 constant %d", got, want)
	}
	gp, err := NewPlanner(testConfig(Strategy{Kind: Greedy, Lookahead: 20}), eastbound())
	if err != nil {
		t.Fatal(err)
	}
	if got := gp.Outstanding(at); got != 20 {
		t.Errorf("Greedy(20) outstanding = %d, want 20", got)
	}
}

// TestReplanRestartsWarmup pins the re-plan semantics: a new profile moves
// the epoch, so near boundaries lose their staging and warm up again.
func TestReplanRestartsWarmup(t *testing.T) {
	p, err := NewPlanner(testConfig(Strategy{Kind: JIT}), eastbound())
	if err != nil {
		t.Fatal(err)
	}
	if _, ok := p.ReadyAt(10 * time.Second); !ok {
		t.Fatal("period 10 should be staged before the replan")
	}
	// The user turned at t=8s: straight-line profile from (8, 0) north.
	turned := mobility.Profile{
		Path:      mobility.LinearPath(geom.Pt(8, 0), geom.V(0, 1), 8*time.Second, 9*time.Second),
		TS:        8 * time.Second,
		Generated: 8 * time.Second,
		Version:   2,
	}
	p.Replan(turned, 8*time.Second)
	if st := p.Stats(); st.Replans != 1 || st.Epoch != 8*time.Second {
		t.Fatalf("stats after replan = %+v", st)
	}
	if _, ok := p.ReadyAt(10 * time.Second); ok {
		t.Error("period 10 still staged after the replan re-dispatched its chain")
	}
	if !p.Warmup(10 * time.Second) {
		t.Error("period 10 should be inside the restarted warmup interval")
	}
	// Far enough out the new plan is staged again, centered on the new path.
	e, ok := p.EntryFor(16 * time.Second)
	if !ok || !e.OnTime {
		t.Fatalf("period 16 should re-stage under the new profile (entry %+v)", e)
	}
	if want := geom.Pt(8, 8); e.Center.Dist(want) > 1e-9 {
		t.Errorf("re-planned center = %v, want %v", e.Center, want)
	}
}

// TestProfileValidityBoundsPlan pins the coverage rule: boundaries past a
// finite profile validity have no plan entries.
func TestProfileValidityBoundsPlan(t *testing.T) {
	prof := eastbound()
	prof.Validity = 3 * time.Second
	p, err := NewPlanner(testConfig(Strategy{Kind: JIT}), prof)
	if err != nil {
		t.Fatal(err)
	}
	if _, ok := p.EntryFor(3 * time.Second); !ok {
		t.Error("boundary at the validity edge should be covered")
	}
	if _, ok := p.EntryFor(4 * time.Second); ok {
		t.Error("boundary past the profile validity should not be planned")
	}
	if _, ok := p.EntryFor(1500 * time.Millisecond); ok {
		t.Error("a non-boundary instant should never have an entry")
	}
}

// TestSamplerServesPlannedAreaOnly pins the membership rule: prefetched
// readings go only to nodes inside the predicted pickup circle of a staged
// period; everything else falls through to the base schedule.
func TestSamplerServesPlannedAreaOnly(t *testing.T) {
	p, err := NewPlanner(testConfig(Strategy{Kind: JIT}), eastbound())
	if err != nil {
		t.Fatal(err)
	}
	base := func(id int32, at sim.Time) (sim.Time, bool) { return at - 2*time.Second, true }
	s := p.Sampler(base)

	due := 8 * time.Second // staged; predicted center (8, 0), radius 50
	if ts, ok, pf := s(1, geom.Pt(10, 5), due); !ok || !pf || ts != due {
		t.Errorf("in-area node: got (%v, %v, %v), want prefetched capture at the boundary", ts, ok, pf)
	}
	if ts, ok, pf := s(2, geom.Pt(200, 0), due); !ok || pf || ts != 6*time.Second {
		t.Errorf("out-of-area node: got (%v, %v, %v), want the base schedule", ts, ok, pf)
	}
	// A warmup period's chain is late: even in-area nodes use the schedule.
	if _, _, pf := s(1, geom.Pt(2, 0), 2*time.Second); pf {
		t.Error("warmup period served a prefetched reading")
	}
	// The sampler itself keeps no ledger; the driver folds evaluation
	// counts in once per period.
	if st := p.Stats(); st.Served != 0 {
		t.Errorf("sampler touched the served ledger: %d", st.Served)
	}
	p.NoteServed(1)
	p.NoteServed(0)
	p.NoteServed(-3) // defensive: never decrements
	if st := p.Stats(); st.Served != 1 {
		t.Errorf("served ledger = %d, want 1", st.Served)
	}
	// Without a base sampler the fallback is the instantaneous oracle.
	s0 := p.Sampler(nil)
	if ts, ok, pf := s0(3, geom.Pt(500, 500), due); !ok || pf || ts != due {
		t.Errorf("nil base fallback: got (%v, %v, %v)", ts, ok, pf)
	}
}

// TestStationaryUserWarmsUp guards the speed-ratio clamps: a stationary
// profile (zero velocity) must not panic in the equation-16 evaluation.
func TestStationaryUserWarmsUp(t *testing.T) {
	prof := mobility.Profile{Path: mobility.Stationary(geom.Pt(5, 5), 0)}
	p, err := NewPlanner(testConfig(Strategy{Kind: JIT}), prof)
	if err != nil {
		t.Fatal(err)
	}
	if !p.Warmup(time.Second) {
		t.Error("first period should still warm up: the chain cannot precede the profile")
	}
	if p.Warmup(time.Hour) {
		t.Error("a stationary user should eventually leave warmup")
	}
}
