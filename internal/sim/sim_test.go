package sim

import (
	"testing"
	"testing/quick"
	"time"
)

func TestScheduleOrdering(t *testing.T) {
	e := NewEngine(1)
	var order []int
	e.Schedule(3*time.Second, func() { order = append(order, 3) })
	e.Schedule(1*time.Second, func() { order = append(order, 1) })
	e.Schedule(2*time.Second, func() { order = append(order, 2) })
	e.Run(10 * time.Second)
	if len(order) != 3 || order[0] != 1 || order[1] != 2 || order[2] != 3 {
		t.Errorf("events fired in order %v, want [1 2 3]", order)
	}
	if e.Now() != 10*time.Second {
		t.Errorf("clock = %v, want 10s", e.Now())
	}
}

func TestSimultaneousEventsFIFO(t *testing.T) {
	e := NewEngine(1)
	var order []int
	for i := 0; i < 10; i++ {
		i := i
		e.Schedule(time.Second, func() { order = append(order, i) })
	}
	e.Run(time.Second)
	for i, v := range order {
		if v != i {
			t.Fatalf("simultaneous events reordered: %v", order)
		}
	}
}

func TestAfterRelative(t *testing.T) {
	e := NewEngine(1)
	var firedAt Time
	e.Schedule(5*time.Second, func() {
		e.After(2*time.Second, func() { firedAt = e.Now() })
	})
	e.Run(time.Minute)
	if firedAt != 7*time.Second {
		t.Errorf("After fired at %v, want 7s", firedAt)
	}
}

func TestAfterNegativeClamps(t *testing.T) {
	e := NewEngine(1)
	var firedAt Time = -1
	e.Schedule(5*time.Second, func() {
		e.After(-3*time.Second, func() { firedAt = e.Now() })
	})
	e.Run(time.Minute)
	if firedAt != 5*time.Second {
		t.Errorf("negative After fired at %v, want 5s (clamped)", firedAt)
	}
}

func TestSchedulePastPanics(t *testing.T) {
	e := NewEngine(1)
	e.Schedule(10*time.Second, func() {})
	e.Run(time.Minute)
	defer func() {
		if recover() == nil {
			t.Error("scheduling in the past should panic")
		}
	}()
	e.Schedule(time.Second, func() {})
}

func TestScheduleNilPanics(t *testing.T) {
	e := NewEngine(1)
	defer func() {
		if recover() == nil {
			t.Error("scheduling nil callback should panic")
		}
	}()
	e.Schedule(time.Second, nil)
}

func TestCancel(t *testing.T) {
	e := NewEngine(1)
	fired := false
	tm := e.Schedule(time.Second, func() { fired = true })
	e.Cancel(tm)
	e.Cancel(tm) // double cancel is a no-op
	e.Cancel(nil)
	e.Run(time.Minute)
	if fired {
		t.Error("canceled timer fired")
	}
	if !tm.Canceled() {
		t.Error("Canceled() = false after Cancel")
	}
}

func TestCancelFromWithinEvent(t *testing.T) {
	e := NewEngine(1)
	fired := false
	var victim *Timer
	victim = e.Schedule(2*time.Second, func() { fired = true })
	e.Schedule(1*time.Second, func() { e.Cancel(victim) })
	e.Run(time.Minute)
	if fired {
		t.Error("timer canceled mid-run still fired")
	}
}

func TestRunStopsAtHorizon(t *testing.T) {
	e := NewEngine(1)
	fired := false
	e.Schedule(10*time.Second, func() { fired = true })
	e.Run(5 * time.Second)
	if fired {
		t.Error("event beyond horizon fired")
	}
	if e.Now() != 5*time.Second {
		t.Errorf("clock = %v, want 5s", e.Now())
	}
	e.Run(15 * time.Second)
	if !fired {
		t.Error("event not fired after extending horizon")
	}
}

func TestHalt(t *testing.T) {
	e := NewEngine(1)
	count := 0
	for i := 1; i <= 10; i++ {
		e.Schedule(Time(i)*time.Second, func() {
			count++
			if count == 3 {
				e.Halt()
			}
		})
	}
	e.Run(time.Minute)
	if count != 3 {
		t.Errorf("count = %d after Halt, want 3", count)
	}
	// Run can resume after a halt.
	e.Run(time.Minute)
	if count != 10 {
		t.Errorf("count = %d after resume, want 10", count)
	}
}

func TestStep(t *testing.T) {
	e := NewEngine(1)
	count := 0
	e.Schedule(time.Second, func() { count++ })
	e.Schedule(2*time.Second, func() { count++ })
	if !e.Step() || count != 1 {
		t.Fatalf("first Step: count=%d", count)
	}
	if !e.Step() || count != 2 {
		t.Fatalf("second Step: count=%d", count)
	}
	if e.Step() {
		t.Error("Step on empty queue should return false")
	}
}

func TestPending(t *testing.T) {
	e := NewEngine(1)
	a := e.Schedule(time.Second, func() {})
	e.Schedule(2*time.Second, func() {})
	if e.Pending() != 2 {
		t.Errorf("Pending = %d, want 2", e.Pending())
	}
	e.Cancel(a)
	if e.Pending() != 1 {
		t.Errorf("Pending after cancel = %d, want 1", e.Pending())
	}
}

func TestEventsFired(t *testing.T) {
	e := NewEngine(1)
	for i := 1; i <= 5; i++ {
		e.Schedule(Time(i)*time.Millisecond, func() {})
	}
	e.Run(time.Second)
	if e.EventsFired() != 5 {
		t.Errorf("EventsFired = %d, want 5", e.EventsFired())
	}
}

func TestRNGStreamsIndependentOfCreationOrder(t *testing.T) {
	e1 := NewEngine(99)
	e2 := NewEngine(99)
	// Create streams in different orders; sequences must match per name.
	a1 := e1.RNG("mac").Int63()
	b1 := e1.RNG("mobility").Int63()
	b2 := e2.RNG("mobility").Int63()
	a2 := e2.RNG("mac").Int63()
	if a1 != a2 || b1 != b2 {
		t.Errorf("streams depend on creation order: (%d,%d) vs (%d,%d)", a1, b1, a2, b2)
	}
	// Same name returns the same stream instance.
	if e1.RNG("mac") != e1.RNG("mac") {
		t.Error("RNG should return a cached stream per name")
	}
}

func TestRNGStreamsDifferAcrossSeeds(t *testing.T) {
	x := NewEngine(1).RNG("mac").Int63()
	y := NewEngine(2).RNG("mac").Int63()
	if x == y {
		t.Error("different seeds produced identical stream output")
	}
}

// TestDeterminism runs a randomized workload twice with the same seed and
// requires identical traces.
func TestDeterminism(t *testing.T) {
	runTrace := func(seed int64) []Time {
		e := NewEngine(seed)
		rng := e.RNG("load")
		var trace []Time
		var spawn func()
		spawn = func() {
			trace = append(trace, e.Now())
			if len(trace) < 500 {
				e.After(time.Duration(rng.Intn(1000))*time.Millisecond, spawn)
				if rng.Intn(3) == 0 {
					e.After(time.Duration(rng.Intn(1000))*time.Millisecond, spawn)
				}
			}
		}
		e.Schedule(0, spawn)
		e.Run(time.Hour)
		return trace
	}
	a := runTrace(12345)
	b := runTrace(12345)
	if len(a) != len(b) {
		t.Fatalf("trace lengths differ: %d vs %d", len(a), len(b))
	}
	for i := range a {
		if a[i] != b[i] {
			t.Fatalf("traces diverge at %d: %v vs %v", i, a[i], b[i])
		}
	}
}

// Property: for any batch of non-negative delays scheduled up front, events
// fire in non-decreasing time order.
func TestQuickMonotonicFiring(t *testing.T) {
	f := func(delays []uint16) bool {
		e := NewEngine(7)
		var fireTimes []Time
		for _, d := range delays {
			e.Schedule(Time(d)*time.Millisecond, func() {
				fireTimes = append(fireTimes, e.Now())
			})
		}
		e.Run(time.Duration(1<<16) * time.Millisecond)
		if len(fireTimes) != len(delays) {
			return false
		}
		for i := 1; i < len(fireTimes); i++ {
			if fireTimes[i] < fireTimes[i-1] {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 100}); err != nil {
		t.Error(err)
	}
}

func BenchmarkScheduleRun(b *testing.B) {
	e := NewEngine(1)
	rng := e.RNG("bench")
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		e.After(time.Duration(rng.Intn(1000))*time.Microsecond, func() {})
		if i%1024 == 1023 {
			e.Run(e.Now() + time.Second)
		}
	}
	e.Run(e.Now() + time.Hour)
}
