// Package sim implements the deterministic discrete-event simulation engine
// that underpins the MobiQuery reproduction.
//
// The engine maintains a virtual clock and a priority queue of events.
// Events scheduled for the same instant fire in scheduling order, making
// every run a pure function of its inputs and RNG seed. This mirrors the
// ns-2 execution model the paper used, while remaining bit-for-bit
// reproducible.
//
// Node behaviour is expressed as callbacks reacting to events (packet
// arrivals, timers, wake-ups). Parallelism across *runs* is provided by the
// experiment harness, not inside a single engine.
package sim

import (
	"container/heap"
	"fmt"
	"math/rand"
	"time"
)

// Time is an instant of virtual time, measured as a duration since the start
// of the simulation.
type Time = time.Duration

// Timer is a handle to a scheduled event, usable for cancellation.
type Timer struct {
	at       Time
	seq      uint64
	fn       func()
	canceled bool
	index    int // heap index, -1 once popped
}

// At returns the virtual time the timer is scheduled to fire.
func (t *Timer) At() Time { return t.at }

// Canceled reports whether the timer has been canceled.
func (t *Timer) Canceled() bool { return t.canceled }

// Engine is a discrete-event simulator. The zero value is not usable;
// construct with NewEngine.
type Engine struct {
	now      Time
	queue    timerHeap
	seq      uint64
	rootSeed int64
	streams  map[string]*rand.Rand
	fired    uint64
	halted   bool
}

// NewEngine returns an engine with its virtual clock at zero and all RNG
// streams derived deterministically from seed.
func NewEngine(seed int64) *Engine {
	return &Engine{
		rootSeed: seed,
		streams:  make(map[string]*rand.Rand),
	}
}

// Now returns the current virtual time.
func (e *Engine) Now() Time { return e.now }

// EventsFired returns the number of events executed so far, for
// instrumentation and determinism checks.
func (e *Engine) EventsFired() uint64 { return e.fired }

// RNG returns a named random stream. Streams are created lazily and
// deterministically: the same engine seed and stream name always yield the
// same sequence, regardless of creation order of other streams. Components
// should use distinct names (e.g. "mac", "deploy", "mobility") so adding a
// consumer in one subsystem does not perturb another.
func (e *Engine) RNG(name string) *rand.Rand {
	if r, ok := e.streams[name]; ok {
		return r
	}
	// Derive the stream seed from the name via an FNV-style fold mixed with
	// the root source, keeping streams independent of creation order.
	var h uint64 = 1469598103934665603
	for i := 0; i < len(name); i++ {
		h ^= uint64(name[i])
		h *= 1099511628211
	}
	r := rand.New(rand.NewSource(int64(h) ^ e.rootSeed))
	e.streams[name] = r
	return r
}

// Schedule runs fn at virtual time at. Scheduling in the past (before Now)
// panics: it always indicates a protocol bug, and silently reordering events
// would destroy determinism.
func (e *Engine) Schedule(at Time, fn func()) *Timer {
	if at < e.now {
		panic(fmt.Sprintf("sim: schedule at %v before now %v", at, e.now))
	}
	if fn == nil {
		panic("sim: schedule with nil callback")
	}
	t := &Timer{at: at, seq: e.seq, fn: fn}
	e.seq++
	heap.Push(&e.queue, t)
	return t
}

// After runs fn after delay d from the current virtual time. Negative delays
// are clamped to zero.
func (e *Engine) After(d time.Duration, fn func()) *Timer {
	if d < 0 {
		d = 0
	}
	return e.Schedule(e.now+d, fn)
}

// Cancel prevents a scheduled timer from firing. Canceling a nil, fired, or
// already-canceled timer is a no-op.
func (e *Engine) Cancel(t *Timer) {
	if t == nil || t.canceled {
		return
	}
	t.canceled = true
	t.fn = nil // release captured state promptly
	if t.index >= 0 {
		heap.Remove(&e.queue, t.index)
	}
}

// Halt stops the current Run after the in-flight event completes.
func (e *Engine) Halt() { e.halted = true }

// Run executes events in timestamp order until the queue empties or the
// next event is later than until. The clock finishes at until (or at the
// last event if the queue drains first and exceeds it).
func (e *Engine) Run(until Time) {
	e.halted = false
	for e.queue.Len() > 0 && !e.halted {
		next := e.queue[0]
		if next.at > until {
			break
		}
		heap.Pop(&e.queue)
		if next.canceled {
			continue
		}
		e.now = next.at
		fn := next.fn
		next.fn = nil
		e.fired++
		fn()
	}
	if e.now < until && !e.halted {
		e.now = until
	}
}

// Step executes exactly one pending event, if any, and reports whether an
// event was executed. Used by tests that need fine-grained control.
func (e *Engine) Step() bool {
	for e.queue.Len() > 0 {
		next := heap.Pop(&e.queue).(*Timer)
		if next.canceled {
			continue
		}
		e.now = next.at
		fn := next.fn
		next.fn = nil
		e.fired++
		fn()
		return true
	}
	return false
}

// Pending returns the number of events waiting in the queue (including
// not-yet-compacted canceled entries are excluded).
func (e *Engine) Pending() int {
	n := 0
	for _, t := range e.queue {
		if !t.canceled {
			n++
		}
	}
	return n
}

// timerHeap orders timers by (time, sequence) so simultaneous events fire in
// the order they were scheduled — the determinism guarantee.
type timerHeap []*Timer

func (h timerHeap) Len() int { return len(h) }

func (h timerHeap) Less(i, j int) bool {
	if h[i].at != h[j].at {
		return h[i].at < h[j].at
	}
	return h[i].seq < h[j].seq
}

func (h timerHeap) Swap(i, j int) {
	h[i], h[j] = h[j], h[i]
	h[i].index = i
	h[j].index = j
}

func (h *timerHeap) Push(x any) {
	t := x.(*Timer)
	t.index = len(*h)
	*h = append(*h, t)
}

func (h *timerHeap) Pop() any {
	old := *h
	n := len(old)
	t := old[n-1]
	old[n-1] = nil
	t.index = -1
	*h = old[:n-1]
	return t
}
