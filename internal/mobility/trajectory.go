// Package mobility models the mobile user of a spatiotemporal query: ground
// truth trajectories (the random-direction course of the paper's
// evaluation), motion profiles with the paper's (ts, Tv, tg) timing model,
// and the motion-profile generators compared in Section 6 — an oracle, a
// planner-style exact profiler with configurable advance time Ta, and a
// history-based GPS predictor with location error.
package mobility

import (
	"fmt"
	"math"
	"math/rand"
	"sort"
	"time"

	"mobiquery/internal/geom"
	"mobiquery/internal/sim"
)

// Waypoint is a (time, position) sample of a piecewise-linear path.
type Waypoint struct {
	T sim.Time
	P geom.Point
}

// Trajectory is a piecewise-linear path through space. Between waypoints
// position is interpolated linearly; before the first waypoint it clamps,
// and past the last waypoint it extrapolates with the final segment's
// velocity (a motion profile keeps predicting "straight ahead").
type Trajectory struct {
	wps []Waypoint
}

// NewTrajectory builds a trajectory from waypoints, which must be in
// strictly increasing time order.
func NewTrajectory(wps []Waypoint) Trajectory {
	if len(wps) == 0 {
		panic("mobility: trajectory needs at least one waypoint")
	}
	for i := 1; i < len(wps); i++ {
		if wps[i].T <= wps[i-1].T {
			panic(fmt.Sprintf("mobility: waypoint times not increasing at %d", i))
		}
	}
	return Trajectory{wps: append([]Waypoint(nil), wps...)}
}

// LinearPath is a trajectory moving from start at constant velocity v
// (meters/second) over [t0, t1].
func LinearPath(start geom.Point, v geom.Vec, t0, t1 sim.Time) Trajectory {
	if t1 <= t0 {
		panic("mobility: LinearPath needs t1 > t0")
	}
	end := start.Add(v.Scale((t1 - t0).Seconds()))
	return NewTrajectory([]Waypoint{{T: t0, P: start}, {T: t1, P: end}})
}

// Stationary is a trajectory that stays at p from t0 on.
func Stationary(p geom.Point, t0 sim.Time) Trajectory {
	return Trajectory{wps: []Waypoint{{T: t0, P: p}}}
}

// Start returns the first waypoint time.
func (tr Trajectory) Start() sim.Time { return tr.wps[0].T }

// End returns the last waypoint time.
func (tr Trajectory) End() sim.Time { return tr.wps[len(tr.wps)-1].T }

// Waypoints returns a copy of the underlying waypoints.
func (tr Trajectory) Waypoints() []Waypoint {
	return append([]Waypoint(nil), tr.wps...)
}

// segmentAt returns the index of the segment containing t: the largest i
// with wps[i].T <= t, clamped to a valid segment start.
func (tr Trajectory) segmentAt(t sim.Time) int {
	i := sort.Search(len(tr.wps), func(k int) bool { return tr.wps[k].T > t }) - 1
	if i < 0 {
		i = 0
	}
	if i >= len(tr.wps)-1 {
		i = len(tr.wps) - 2
	}
	return i
}

// PosAt returns the position at time t (clamping before the start,
// extrapolating past the end).
func (tr Trajectory) PosAt(t sim.Time) geom.Point {
	if t <= tr.wps[0].T || len(tr.wps) == 1 {
		return tr.wps[0].P
	}
	i := tr.segmentAt(t)
	a, b := tr.wps[i], tr.wps[i+1]
	frac := float64(t-a.T) / float64(b.T-a.T)
	return a.P.Lerp(b.P, frac)
}

// VelAt returns the velocity (m/s) at time t: the containing segment's
// velocity, zero for single-waypoint trajectories, and the final segment's
// velocity past the end.
func (tr Trajectory) VelAt(t sim.Time) geom.Vec {
	if len(tr.wps) == 1 {
		return geom.Vec{}
	}
	i := tr.segmentAt(t)
	a, b := tr.wps[i], tr.wps[i+1]
	return b.P.Sub(a.P).Scale(1 / (b.T - a.T).Seconds())
}

// Slice returns the sub-trajectory covering [t0, t1], with interpolated
// endpoints. t1 must exceed t0.
func (tr Trajectory) Slice(t0, t1 sim.Time) Trajectory {
	if t1 <= t0 {
		panic("mobility: Slice needs t1 > t0")
	}
	out := []Waypoint{{T: t0, P: tr.PosAt(t0)}}
	for _, w := range tr.wps {
		if w.T > t0 && w.T < t1 {
			out = append(out, w)
		}
	}
	out = append(out, Waypoint{T: t1, P: tr.PosAt(t1)})
	return Trajectory{wps: out}
}

// CourseSpec configures the random-direction ground-truth course used in
// the paper's evaluation: the user starts at a region corner and picks a
// new random heading and speed every ChangeInterval, reflecting off region
// boundaries.
type CourseSpec struct {
	Region         geom.Rect
	Start          geom.Point
	SpeedMin       float64 // m/s
	SpeedMax       float64 // m/s
	ChangeInterval time.Duration
	Duration       time.Duration
}

// Validate reports specification errors.
func (s CourseSpec) Validate() error {
	switch {
	case s.Region.Width() <= 0 || s.Region.Height() <= 0:
		return fmt.Errorf("mobility: empty region")
	case s.SpeedMin <= 0 || s.SpeedMax < s.SpeedMin:
		return fmt.Errorf("mobility: invalid speed range [%v, %v]", s.SpeedMin, s.SpeedMax)
	case s.ChangeInterval <= 0:
		return fmt.Errorf("mobility: ChangeInterval must be positive")
	case s.Duration <= 0:
		return fmt.Errorf("mobility: Duration must be positive")
	}
	return nil
}

// Course is a ground-truth user trajectory plus the instants at which the
// motion pattern changed (heading/speed re-draws).
type Course struct {
	Trajectory
	Changes []sim.Time // strictly increasing, excludes t=0
}

// NewRandomCourse generates a course per spec. The same rng state yields
// the same course.
func NewRandomCourse(spec CourseSpec, rng *rand.Rand) Course {
	if err := spec.Validate(); err != nil {
		panic(err)
	}
	pos := spec.Region.Clamp(spec.Start)
	wps := []Waypoint{{T: 0, P: pos}}
	var changes []sim.Time
	now := sim.Time(0)
	for now < spec.Duration {
		if now > 0 {
			changes = append(changes, now)
		}
		speed := spec.SpeedMin + rng.Float64()*(spec.SpeedMax-spec.SpeedMin)
		dir := geom.FromAngle(rng.Float64() * 2 * math.Pi).Scale(speed)
		legEnd := now + spec.ChangeInterval
		if legEnd > spec.Duration {
			legEnd = spec.Duration
		}
		pos, now = advanceWithReflection(&wps, spec.Region, pos, dir, now, legEnd)
	}
	return Course{Trajectory: Trajectory{wps: wps}, Changes: changes}
}

// advanceWithReflection walks from pos at velocity v from t0 to t1,
// appending waypoints at each boundary bounce, and returns the final
// position and time.
func advanceWithReflection(wps *[]Waypoint, region geom.Rect, pos geom.Point, v geom.Vec, t0, t1 sim.Time) (geom.Point, sim.Time) {
	now := pos
	t := t0
	for t < t1 {
		remain := (t1 - t).Seconds()
		hit := remain
		// Time to each wall along the current heading.
		if v.DX > 0 {
			hit = math.Min(hit, (region.MaxX-now.X)/v.DX)
		} else if v.DX < 0 {
			hit = math.Min(hit, (region.MinX-now.X)/v.DX)
		}
		if v.DY > 0 {
			hit = math.Min(hit, (region.MaxY-now.Y)/v.DY)
		} else if v.DY < 0 {
			hit = math.Min(hit, (region.MinY-now.Y)/v.DY)
		}
		if hit < 0 {
			hit = 0
		}
		step := sim.Time(hit * float64(time.Second))
		if step <= 0 {
			// On (or within float noise of) a wall: reflect and continue
			// without advancing. If reflection cannot change the heading
			// (float noise placed us just inside the wall), nudge onto it.
			reflected := region.Reflect(now, v)
			if reflected == v {
				now = snapToWall(region, now)
				reflected = region.Reflect(now, v)
			}
			if reflected == v || reflected.Len() == 0 {
				break // degenerate geometry; stop extending this leg
			}
			v = reflected
			continue
		}
		now = region.Clamp(now.Add(v.Scale(hit)))
		t += step
		*wps = append(*wps, Waypoint{T: t, P: now})
		if t < t1 {
			v = region.Reflect(now, v)
		}
	}
	return now, t1
}

// snapToWall moves a point sitting within float noise of a region boundary
// exactly onto it, so Reflect recognizes the wall contact.
func snapToWall(region geom.Rect, p geom.Point) geom.Point {
	const eps = 1e-9
	if p.X-region.MinX < eps {
		p.X = region.MinX
	}
	if region.MaxX-p.X < eps {
		p.X = region.MaxX
	}
	if p.Y-region.MinY < eps {
		p.Y = region.MinY
	}
	if region.MaxY-p.Y < eps {
		p.Y = region.MaxY
	}
	return p
}
