package mobility_test

// Property tests of the GPS predictor's advertised error bounds — the
// contract the corridor cache's GPSErrorModel inflation is built on. The
// external test package lets the test close the loop against
// internal/corridor without an import cycle.

import (
	"math/rand"
	"testing"
	"time"

	"mobiquery/internal/corridor"
	"mobiquery/internal/geom"
	"mobiquery/internal/mobility"
	"mobiquery/internal/sim"
)

// activeProfile returns the latest profile delivered at or before t, and
// whether one exists.
func activeProfile(profiles []mobility.TimedProfile, t sim.Time) (mobility.Profile, bool) {
	var cur mobility.Profile
	ok := false
	for _, tp := range profiles {
		if tp.Deliver > t {
			break
		}
		cur, ok = tp.Profile, true
	}
	return cur, ok
}

// maxSegmentSpeed returns the largest leg speed of a course.
func maxSegmentSpeed(c mobility.Course) float64 {
	wps := c.Waypoints()
	max := 0.0
	for i := 1; i < len(wps); i++ {
		v := wps[i].P.Sub(wps[i-1].P).Scale(1 / (wps[i].T - wps[i-1].T).Seconds()).Len()
		if v > max {
			max = v
		}
	}
	return max
}

// pausingCourse is a hand-built course with a pause leg (the user stands
// still between 10 s and 20 s) and a final leg the predictor must track
// through extrapolation.
func pausingCourse() mobility.Course {
	tr := mobility.NewTrajectory([]mobility.Waypoint{
		{T: 0, P: geom.Pt(100, 100)},
		{T: 10 * time.Second, P: geom.Pt(140, 100)}, // 4 m/s east
		{T: 20 * time.Second, P: geom.Pt(140, 100)}, // pause
		{T: 35 * time.Second, P: geom.Pt(140, 160)}, // 4 m/s north
	})
	return mobility.Course{
		Trajectory: tr,
		Changes:    []sim.Time{10 * time.Second, 20 * time.Second},
	}
}

// checkPredictorBounds asserts the two advertised properties over one
// course:
//
//  1. At every GPS sampling instant with an active profile, the predicted
//     position is within threshold+err of the truth (the re-profiling
//     invariant: a larger divergence would have triggered a new profile,
//     whose own error is at most the reading error).
//  2. At every instant — between samples, across pause legs, through
//     extrapolation past the profile's nominal path — the prediction stays
//     within corridor.GPSErrorModel's inflation of the truth, so a
//     corridor inflated by it always covers the true query area.
func checkPredictorBounds(t *testing.T, course mobility.Course, sampling time.Duration, gpsErr float64, seed int64) {
	t.Helper()
	g := mobility.GPSPredictor{
		Course:   course,
		Sampling: sampling,
		Err:      gpsErr,
		RNG:      rand.New(rand.NewSource(seed)),
	}
	profiles := g.Profiles()
	if len(profiles) == 0 {
		t.Fatalf("seed %d: predictor produced no profiles", seed)
	}
	threshold := mobility.DefaultThreshold(gpsErr)
	maxSpeed := maxSegmentSpeed(course)
	model := corridor.GPSErrorModel(gpsErr, threshold, maxSpeed, sampling)
	const eps = 1e-9

	// Property 1: sampling-instant error within threshold+err.
	for ti := sim.Time(0); ti <= course.End(); ti += sim.Time(sampling) {
		prof, ok := activeProfile(profiles, ti)
		if !ok {
			continue
		}
		if d := prof.PredictAt(ti).Dist(course.PosAt(ti)); d > threshold+gpsErr+eps {
			t.Fatalf("seed %d: sampling instant %v error %.3f m exceeds threshold+err %.3f",
				seed, ti, d, threshold+gpsErr)
		}
	}

	// Property 2: the corridor inflation covers the truth everywhere.
	step := 100 * time.Millisecond
	worst := 0.0
	for ti := sim.Time(0); ti <= course.End(); ti += sim.Time(step) {
		prof, ok := activeProfile(profiles, ti)
		if !ok {
			continue
		}
		d := prof.PredictAt(ti).Dist(course.PosAt(ti))
		if d > worst {
			worst = d
		}
		bound := model.Inflation(ti - prof.Generated)
		if d > bound+eps {
			t.Fatalf("seed %d: instant %v prediction error %.3f m escapes the corridor inflation %.3f (model %+v)",
				seed, ti, d, bound, model)
		}
	}
	if worst == 0 {
		t.Fatalf("seed %d: zero worst-case error; the property is vacuous", seed)
	}
}

// TestGPSPredictorErrorBoundsRandomCourses runs the property over many
// random-direction courses with the paper's Section 6.3 settings.
func TestGPSPredictorErrorBoundsRandomCourses(t *testing.T) {
	for seed := int64(1); seed <= 20; seed++ {
		rng := rand.New(rand.NewSource(seed))
		course := mobility.NewRandomCourse(mobility.CourseSpec{
			Region:         geom.Square(450),
			Start:          geom.Pt(200, 200),
			SpeedMin:       1,
			SpeedMax:       5,
			ChangeInterval: 10 * time.Second,
			Duration:       120 * time.Second,
		}, rng)
		checkPredictorBounds(t, course, 2*time.Second, 5, seed)
	}
}

// TestGPSPredictorErrorBoundsPaperSettings uses the paper's 8 s sampling
// and both published error radii.
func TestGPSPredictorErrorBoundsPaperSettings(t *testing.T) {
	for _, gpsErr := range []float64{5, 10} {
		for seed := int64(1); seed <= 5; seed++ {
			rng := rand.New(rand.NewSource(100 + seed))
			course := mobility.NewRandomCourse(mobility.CourseSpec{
				Region:         geom.Square(450),
				Start:          geom.Pt(50, 50),
				SpeedMin:       3,
				SpeedMax:       5,
				ChangeInterval: 42 * time.Second,
				Duration:       200 * time.Second,
			}, rng)
			checkPredictorBounds(t, course, 8*time.Second, gpsErr, seed)
		}
	}
}

// TestGPSPredictorErrorBoundsPauseLeg runs the property over a course with
// a pause leg: the predictor must converge onto the stationary stretch and
// the bound must hold through both transitions.
func TestGPSPredictorErrorBoundsPauseLeg(t *testing.T) {
	for seed := int64(1); seed <= 10; seed++ {
		checkPredictorBounds(t, pausingCourse(), 2*time.Second, 5, seed)
	}
}

// TestCorridorInflationCoversTrueArea closes the loop spatially: for a
// query radius Rq, every point of the true query disk lies inside the
// predicted disk inflated by the model — the exact precondition of a warm
// corridor serve being bit-identical to the cold scan.
func TestCorridorInflationCoversTrueArea(t *testing.T) {
	const rq = 150.0
	rng := rand.New(rand.NewSource(42))
	course := mobility.NewRandomCourse(mobility.CourseSpec{
		Region:         geom.Square(1000),
		Start:          geom.Pt(400, 400),
		SpeedMin:       2,
		SpeedMax:       5,
		ChangeInterval: 8 * time.Second,
		Duration:       60 * time.Second,
	}, rng)
	g := mobility.GPSPredictor{
		Course:   course,
		Sampling: 2 * time.Second,
		Err:      5,
		RNG:      rand.New(rand.NewSource(43)),
	}
	profiles := g.Profiles()
	model := corridor.GPSErrorModel(5, 0, maxSegmentSpeed(course), 2*time.Second)
	covered := 0
	for due := sim.Time(time.Second); due <= course.End(); due += sim.Time(time.Second) {
		prof, ok := activeProfile(profiles, due)
		if !ok {
			continue
		}
		covered++
		predicted := prof.PredictAt(due)
		actual := course.PosAt(due)
		inflated := rq + model.Inflation(due-prof.Generated)
		// Disk containment: dist(centers) + Rq <= inflated radius.
		if actual.Dist(predicted)+rq > inflated {
			t.Fatalf("boundary %v: true disk escapes the inflated corridor (centers %.2f m apart, inflation %.2f)",
				due, actual.Dist(predicted), inflated-rq)
		}
	}
	if covered == 0 {
		t.Fatal("no boundaries covered; the property is vacuous")
	}
}
