package mobility

import (
	"math"
	"math/rand"
	"testing"
	"testing/quick"
	"time"

	"mobiquery/internal/geom"
	"mobiquery/internal/sim"
)

func sec(s float64) sim.Time { return sim.Time(s * float64(time.Second)) }

func TestLinearPathPosAt(t *testing.T) {
	tr := LinearPath(geom.Pt(0, 0), geom.V(2, 0), 0, sec(10))
	tests := []struct {
		at   sim.Time
		want geom.Point
	}{
		{0, geom.Pt(0, 0)},
		{sec(5), geom.Pt(10, 0)},
		{sec(10), geom.Pt(20, 0)},
		{sec(15), geom.Pt(30, 0)}, // extrapolates
		{-sec(5), geom.Pt(0, 0)},  // clamps before start
	}
	for _, tt := range tests {
		if got := tr.PosAt(tt.at); got.Dist(tt.want) > 1e-9 {
			t.Errorf("PosAt(%v) = %v, want %v", tt.at, got, tt.want)
		}
	}
}

func TestVelAt(t *testing.T) {
	tr := NewTrajectory([]Waypoint{
		{T: 0, P: geom.Pt(0, 0)},
		{T: sec(10), P: geom.Pt(10, 0)},
		{T: sec(20), P: geom.Pt(10, 30)},
	})
	if got := tr.VelAt(sec(5)); got.Sub(geom.V(1, 0)).Len() > 1e-9 {
		t.Errorf("VelAt(5s) = %v, want (1,0)", got)
	}
	if got := tr.VelAt(sec(15)); got.Sub(geom.V(0, 3)).Len() > 1e-9 {
		t.Errorf("VelAt(15s) = %v, want (0,3)", got)
	}
	// Past the end: final segment velocity.
	if got := tr.VelAt(sec(100)); got.Sub(geom.V(0, 3)).Len() > 1e-9 {
		t.Errorf("VelAt(100s) = %v, want (0,3)", got)
	}
	if got := Stationary(geom.Pt(1, 1), 0).VelAt(sec(5)); got != (geom.Vec{}) {
		t.Errorf("stationary VelAt = %v", got)
	}
}

func TestSlice(t *testing.T) {
	tr := NewTrajectory([]Waypoint{
		{T: 0, P: geom.Pt(0, 0)},
		{T: sec(10), P: geom.Pt(10, 0)},
		{T: sec(20), P: geom.Pt(10, 10)},
	})
	s := tr.Slice(sec(5), sec(15))
	if s.Start() != sec(5) || s.End() != sec(15) {
		t.Fatalf("Slice bounds [%v, %v]", s.Start(), s.End())
	}
	if got := s.PosAt(sec(5)); got.Dist(geom.Pt(5, 0)) > 1e-9 {
		t.Errorf("slice start pos = %v", got)
	}
	if got := s.PosAt(sec(10)); got.Dist(geom.Pt(10, 0)) > 1e-9 {
		t.Errorf("slice keeps interior waypoint: %v", got)
	}
	if got := s.PosAt(sec(15)); got.Dist(geom.Pt(10, 5)) > 1e-9 {
		t.Errorf("slice end pos = %v", got)
	}
}

// TestSliceEdges pins the boundary behavior the prefetch planner leans on:
// slices clamped before the start, slices that end exactly on a waypoint,
// slices entirely past the end (pure extrapolation), and degenerate
// zero-length spatial segments.
func TestSliceEdges(t *testing.T) {
	tr := NewTrajectory([]Waypoint{
		{T: sec(10), P: geom.Pt(0, 0)},
		{T: sec(20), P: geom.Pt(10, 0)},
	})
	// Slicing from before the first waypoint clamps to the start position.
	s := tr.Slice(sec(0), sec(15))
	if got := s.PosAt(sec(5)); got.Dist(geom.Pt(0, 0)) > 1e-9 {
		t.Errorf("pre-start slice should clamp: PosAt(5s) = %v", got)
	}
	// A slice ending exactly on a waypoint keeps strictly increasing times
	// (the interior loop excludes t1 itself) and the interpolated endpoint.
	s = tr.Slice(sec(12), sec(20))
	if s.End() != sec(20) {
		t.Errorf("slice end = %v", s.End())
	}
	wps := s.Waypoints()
	for i := 1; i < len(wps); i++ {
		if wps[i].T <= wps[i-1].T {
			t.Fatalf("slice to a waypoint produced non-increasing times: %+v", wps)
		}
	}
	// A slice entirely past the end extrapolates with the final velocity.
	s = tr.Slice(sec(30), sec(40))
	if got := s.PosAt(sec(40)); got.Dist(geom.Pt(30, 0)) > 1e-9 {
		t.Errorf("past-end slice: PosAt(40s) = %v, want (30, 0)", got)
	}
	// Zero-length spatial segments (a pause) interpolate in place.
	pause := NewTrajectory([]Waypoint{
		{T: 0, P: geom.Pt(5, 5)},
		{T: sec(10), P: geom.Pt(5, 5)},
		{T: sec(20), P: geom.Pt(15, 5)},
	})
	if got := pause.VelAt(sec(5)); got.Len() != 0 {
		t.Errorf("paused segment velocity = %v, want zero", got)
	}
	if got := pause.Slice(sec(2), sec(8)).PosAt(sec(5)); got.Dist(geom.Pt(5, 5)) > 1e-9 {
		t.Errorf("slice inside a pause moved: %v", got)
	}
	// Slice rejects empty windows.
	defer func() {
		if recover() == nil {
			t.Error("Slice(t, t) should panic")
		}
	}()
	tr.Slice(sec(12), sec(12))
}

// TestProfileExpiryEdges pins expiry semantics: prediction keeps
// extrapolating past Expiry (the claim ends, not the math), a zero-advance
// profile has Ta = 0, and the planner-facing zero-Validity convention
// leaves Expiry degenerate rather than panicking.
func TestProfileExpiryEdges(t *testing.T) {
	p := Profile{
		Path:      LinearPath(geom.Pt(0, 0), geom.V(2, 0), 0, sec(10)),
		TS:        0,
		Validity:  10 * time.Second,
		Generated: 0,
	}
	if p.AdvanceTime() != 0 {
		t.Errorf("zero-advance profile Ta = %v", p.AdvanceTime())
	}
	if got := p.PredictAt(p.Expiry() + sec(5)); got.Dist(geom.Pt(30, 0)) > 1e-9 {
		t.Errorf("prediction past expiry = %v, want straight-ahead (30, 0)", got)
	}
	unbounded := Profile{Path: Stationary(geom.Pt(1, 1), 0)}
	if unbounded.Expiry() != unbounded.TS {
		t.Errorf("zero-validity Expiry = %v, want TS", unbounded.Expiry())
	}
}

// TestExactProfilerZeroLengthLeg pins the leg-boundary edge: a motion
// change recorded at the course end makes a zero-length final leg, which
// the profiler must skip without emitting an empty profile.
func TestExactProfilerZeroLengthLeg(t *testing.T) {
	tr := NewTrajectory([]Waypoint{
		{T: 0, P: geom.Pt(0, 0)},
		{T: sec(10), P: geom.Pt(10, 0)},
	})
	c := Course{Trajectory: tr, Changes: []sim.Time{sec(5), sec(10)}}
	ps := ExactProfiler{Course: c, Ta: sec(2)}.Profiles()
	if len(ps) != 2 { // legs [0,5) and [5,10); the zero-length [10,10) is dropped
		t.Fatalf("profiles = %d, want 2 (zero-length leg skipped)", len(ps))
	}
	for _, tp := range ps {
		if tp.Profile.Validity <= 0 {
			t.Errorf("emitted a profile with non-positive validity: %+v", tp.Profile)
		}
	}
}

// TestGPSPredictorExpiryCoversCourse pins the predictor's validity
// bookkeeping: every emitted profile expires strictly after its effective
// time, and the last profile's path still covers the course end (the
// predictor extends the nominal path one sampling period past it).
func TestGPSPredictorExpiryCoversCourse(t *testing.T) {
	c := NewRandomCourse(courseSpec(), rand.New(rand.NewSource(11)))
	ps := GPSPredictor{Course: c, Sampling: 8 * time.Second, Err: 5, RNG: rand.New(rand.NewSource(2))}.Profiles()
	if len(ps) == 0 {
		t.Fatal("no profiles")
	}
	for i, tp := range ps {
		if tp.Profile.Validity <= 0 {
			t.Fatalf("profile %d validity %v", i, tp.Profile.Validity)
		}
		if tp.Profile.Expiry() <= tp.Profile.TS {
			t.Fatalf("profile %d expires at %v, before its ts %v", i, tp.Profile.Expiry(), tp.Profile.TS)
		}
	}
	last := ps[len(ps)-1].Profile
	if last.Expiry() < c.End() {
		t.Errorf("last profile expires at %v, before the course end %v", last.Expiry(), c.End())
	}
}

// TestGPSPredictorLateCourseChange pins detection at the last leg boundary:
// a motion change inside the final sampling window still yields a profile
// whose ts never exceeds the course end.
func TestGPSPredictorLateCourseChange(t *testing.T) {
	spec := courseSpec()
	spec.Duration = 84 * time.Second // not a multiple of the 8 s sampling
	c := NewRandomCourse(spec, rand.New(rand.NewSource(12)))
	ps := GPSPredictor{Course: c, Sampling: 8 * time.Second, Err: 0, RNG: rand.New(rand.NewSource(3))}.Profiles()
	for i, tp := range ps {
		if tp.Profile.TS > c.End() {
			t.Errorf("profile %d effective at %v, past the course end %v", i, tp.Profile.TS, c.End())
		}
		if tp.Deliver != tp.Profile.Generated {
			t.Errorf("profile %d delivered at %v but generated at %v", i, tp.Deliver, tp.Profile.Generated)
		}
	}
}

func TestNewTrajectoryValidation(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Error("non-increasing waypoints should panic")
		}
	}()
	NewTrajectory([]Waypoint{{T: sec(1)}, {T: sec(1)}})
}

func courseSpec() CourseSpec {
	return CourseSpec{
		Region:         geom.Square(450),
		Start:          geom.Pt(0, 0),
		SpeedMin:       3,
		SpeedMax:       5,
		ChangeInterval: 50 * time.Second,
		Duration:       400 * time.Second,
	}
}

func TestRandomCourseStaysInRegion(t *testing.T) {
	for seed := int64(0); seed < 10; seed++ {
		c := NewRandomCourse(courseSpec(), rand.New(rand.NewSource(seed)))
		for dt := sim.Time(0); dt <= sec(400); dt += sec(1) {
			p := c.PosAt(dt)
			if !courseSpec().Region.Contains(p) {
				t.Fatalf("seed %d: position %v at %v outside region", seed, p, dt)
			}
		}
	}
}

func TestRandomCourseSpeedWithinRange(t *testing.T) {
	c := NewRandomCourse(courseSpec(), rand.New(rand.NewSource(3)))
	for dt := sec(1); dt < sec(399); dt += sec(7) {
		v := c.VelAt(dt).Len()
		if v < 2.99 || v > 5.01 {
			t.Errorf("speed %v at %v outside [3, 5]", v, dt)
		}
	}
}

func TestRandomCourseChangeTimes(t *testing.T) {
	c := NewRandomCourse(courseSpec(), rand.New(rand.NewSource(4)))
	// 400s duration, change every 50s: changes at 50..350.
	if len(c.Changes) != 7 {
		t.Fatalf("changes = %v, want 7 instants", c.Changes)
	}
	for i, ch := range c.Changes {
		if ch != sec(50*float64(i+1)) {
			t.Errorf("change %d at %v, want %v", i, ch, sec(50*float64(i+1)))
		}
	}
}

func TestRandomCourseDeterministic(t *testing.T) {
	a := NewRandomCourse(courseSpec(), rand.New(rand.NewSource(9)))
	b := NewRandomCourse(courseSpec(), rand.New(rand.NewSource(9)))
	for dt := sim.Time(0); dt <= sec(400); dt += sec(13) {
		if a.PosAt(dt) != b.PosAt(dt) {
			t.Fatal("same seed produced different courses")
		}
	}
}

func TestQuickCourseContinuity(t *testing.T) {
	// Positions never jump by more than max speed times the step.
	f := func(seed int64) bool {
		c := NewRandomCourse(courseSpec(), rand.New(rand.NewSource(seed)))
		prev := c.PosAt(0)
		for dt := sec(0.5); dt <= sec(400); dt += sec(0.5) {
			p := c.PosAt(dt)
			if p.Dist(prev) > 5*0.5+1e-6 {
				return false
			}
			prev = p
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 20}); err != nil {
		t.Error(err)
	}
}

func TestProfileTimingParams(t *testing.T) {
	p := Profile{
		Path:      LinearPath(geom.Pt(0, 0), geom.V(1, 0), sec(10), sec(30)),
		TS:        sec(10),
		Validity:  20 * time.Second,
		Generated: sec(4),
	}
	if got := p.AdvanceTime(); got != 6*time.Second {
		t.Errorf("AdvanceTime = %v, want 6s", got)
	}
	if got := p.Expiry(); got != sec(30) {
		t.Errorf("Expiry = %v, want 30s", got)
	}
	if got := p.PredictAt(sec(20)); got.Dist(geom.Pt(10, 0)) > 1e-9 {
		t.Errorf("PredictAt = %v", got)
	}
}

func TestOracleProfiler(t *testing.T) {
	c := NewRandomCourse(courseSpec(), rand.New(rand.NewSource(5)))
	ps := OracleProfiler{Course: c}.Profiles()
	if len(ps) != 1 || ps[0].Deliver != 0 {
		t.Fatalf("oracle profiles = %+v", ps)
	}
	// The oracle's prediction is exact everywhere.
	for dt := sec(1); dt < sec(400); dt += sec(37) {
		if ps[0].Profile.PredictAt(dt).Dist(c.PosAt(dt)) > 1e-9 {
			t.Errorf("oracle mispredicts at %v", dt)
		}
	}
}

func TestExactProfilerPositiveTa(t *testing.T) {
	c := NewRandomCourse(courseSpec(), rand.New(rand.NewSource(6)))
	ps := ExactProfiler{Course: c, Ta: 6 * time.Second}.Profiles()
	if len(ps) != 8 { // leg 0 plus 7 changes
		t.Fatalf("profiles = %d, want 8", len(ps))
	}
	if ps[0].Deliver != 0 {
		t.Errorf("first profile delivered at %v, want 0 (clamped)", ps[0].Deliver)
	}
	// Subsequent profiles arrive Ta before their legs start.
	for _, tp := range ps[1:] {
		if tp.Profile.TS-tp.Deliver != sec(6) {
			t.Errorf("profile ts %v delivered %v: advance != 6s", tp.Profile.TS, tp.Deliver)
		}
		// Exact within the leg.
		mid := tp.Profile.TS + sec(25)
		if tp.Profile.PredictAt(mid).Dist(c.PosAt(mid)) > 1e-9 {
			t.Errorf("exact profile mispredicts its own leg at %v", mid)
		}
	}
}

func TestExactProfilerNegativeTa(t *testing.T) {
	c := NewRandomCourse(courseSpec(), rand.New(rand.NewSource(7)))
	ps := ExactProfiler{Course: c, Ta: -8 * time.Second}.Profiles()
	for _, tp := range ps[1:] {
		if tp.Deliver-tp.Profile.TS != sec(8) {
			t.Errorf("negative Ta: profile ts %v delivered %v", tp.Profile.TS, tp.Deliver)
		}
	}
}

func TestGPSPredictorErrorFree(t *testing.T) {
	c := NewRandomCourse(courseSpec(), rand.New(rand.NewSource(8)))
	ps := GPSPredictor{Course: c, Sampling: 8 * time.Second, Err: 0, RNG: rand.New(rand.NewSource(1))}.Profiles()
	if len(ps) == 0 {
		t.Fatal("no profiles")
	}
	// Error-free: exactly one profile per straight stretch (the first fix
	// pair), reissued only after changes/bounces — never on noise.
	if len(ps) > 3*len(c.Changes)+3 {
		t.Errorf("error-free predictor reissued too often: %d profiles for %d changes",
			len(ps), len(c.Changes))
	}
	for _, tp := range ps {
		if tp.Deliver != tp.Profile.TS {
			t.Errorf("GPS profile should take effect at delivery")
		}
		// Error-free samples on a straight stretch: prediction matches
		// truth until the first change or boundary bounce after TS (the
		// straight-line predictor cannot know about walls). A bounce inside
		// the sampling window itself corrupts the velocity estimate, so
		// skip those. Profiles issued mid-stretch track the current leg.
		isChange := func(at sim.Time) bool {
			for _, ch := range c.Changes {
				if at == ch {
					return true
				}
			}
			return false
		}
		sampledAcrossBounce := false
		checkUntil := tp.Profile.Expiry()
		for _, ch := range c.Changes {
			if ch > tp.Profile.TS-sec(8) && ch <= tp.Profile.TS {
				sampledAcrossBounce = true // velocity estimate spans a change
				break
			}
			if ch > tp.Profile.TS && ch < checkUntil {
				checkUntil = ch
				break
			}
		}
		for _, w := range c.Waypoints() {
			if isChange(w.T) {
				continue
			}
			if w.T > tp.Profile.TS-sec(8) && w.T <= tp.Profile.TS {
				sampledAcrossBounce = true
				break
			}
			if w.T > tp.Profile.TS && w.T < checkUntil {
				checkUntil = w.T // first bounce inside the leg
				break
			}
		}
		if sampledAcrossBounce {
			continue
		}
		for at := tp.Profile.TS; at < checkUntil; at += sec(5) {
			if tp.Profile.PredictAt(at).Dist(c.PosAt(at)) > 1e-6 {
				t.Errorf("error-free GPS mispredicts at %v", at)
				break
			}
		}
	}
}

func TestGPSPredictorErrorBounded(t *testing.T) {
	c := NewRandomCourse(courseSpec(), rand.New(rand.NewSource(9)))
	ps := GPSPredictor{Course: c, Sampling: 8 * time.Second, Err: 10, RNG: rand.New(rand.NewSource(2))}.Profiles()
	if len(ps) == 0 {
		t.Fatal("no profiles")
	}
	for _, tp := range ps {
		// At its effective time the prediction is within GPS error of truth.
		d := tp.Profile.PredictAt(tp.Profile.TS).Dist(c.PosAt(tp.Profile.TS))
		if d > 10+1e-9 {
			t.Errorf("initial prediction error %v m exceeds GPS error bound", d)
		}
	}
}

func TestGPSPredictorDivergenceMonitor(t *testing.T) {
	// On a long straight course with noisy fixes, the predictor must
	// reissue profiles when velocity-estimate error accumulates, keeping
	// the prediction error bounded near the threshold.
	course := Course{Trajectory: LinearPath(geom.Pt(0, 225), geom.V(4, 0), 0, sec(400))}
	ps := GPSPredictor{Course: course, Sampling: 8 * time.Second, Err: 10, RNG: rand.New(rand.NewSource(5))}.Profiles()
	if len(ps) < 2 {
		t.Fatalf("divergence monitor never reissued: %d profiles", len(ps))
	}
	// Between consecutive profiles, prediction error at the handover point
	// stays within threshold + noise.
	for i := 1; i < len(ps); i++ {
		at := ps[i].Deliver
		d := ps[i-1].Profile.PredictAt(at).Dist(course.PosAt(at))
		if d > (20+10)+10+4*8+1e-9 { // threshold + reading noise + one sample of drift
			t.Errorf("divergence %v m at reissue %d exceeds plausible bound", d, i)
		}
	}
}

func TestGPSPredictorDeterministicWithSeed(t *testing.T) {
	c := NewRandomCourse(courseSpec(), rand.New(rand.NewSource(10)))
	a := GPSPredictor{Course: c, Sampling: 8 * time.Second, Err: 5, RNG: rand.New(rand.NewSource(3))}.Profiles()
	b := GPSPredictor{Course: c, Sampling: 8 * time.Second, Err: 5, RNG: rand.New(rand.NewSource(3))}.Profiles()
	if len(a) != len(b) {
		t.Fatal("profile counts differ")
	}
	for i := range a {
		if a[i].Profile.PredictAt(sec(100)) != b[i].Profile.PredictAt(sec(100)) {
			t.Fatal("same seed produced different GPS profiles")
		}
	}
}

func TestFixedProfiler(t *testing.T) {
	want := []TimedProfile{{Deliver: sec(1)}}
	got := FixedProfiler(want).Profiles()
	if len(got) != 1 || got[0].Deliver != sec(1) {
		t.Errorf("FixedProfiler = %+v", got)
	}
}

func TestCourseShortLastLeg(t *testing.T) {
	// Duration not a multiple of the change interval: last leg truncated.
	spec := courseSpec()
	spec.Duration = 120 * time.Second
	c := NewRandomCourse(spec, rand.New(rand.NewSource(11)))
	if c.End() != sec(120) {
		t.Errorf("End = %v, want 120s", c.End())
	}
	if len(c.Changes) != 2 {
		t.Errorf("changes = %v, want [50s 100s]", c.Changes)
	}
}

func TestReflectionKeepsDistanceBudget(t *testing.T) {
	// Even with reflections, total travel per leg equals speed * time.
	spec := courseSpec()
	spec.Start = geom.Pt(445, 445) // near a corner to force bounces
	c := NewRandomCourse(spec, rand.New(rand.NewSource(12)))
	wps := c.Waypoints()
	legDist := 0.0
	legStart := sim.Time(0)
	var speed float64
	for i := 1; i < len(wps); i++ {
		seg := wps[i].P.Dist(wps[i-1].P)
		dt := (wps[i].T - wps[i-1].T).Seconds()
		if dt <= 0 {
			t.Fatal("non-increasing waypoints")
		}
		segSpeed := seg / dt
		if speed == 0 {
			speed = segSpeed
		}
		legDist += seg
		if wps[i].T >= legStart+sec(50) || i == len(wps)-1 {
			wantDist := speed * (wps[i].T - legStart).Seconds()
			if math.Abs(legDist-wantDist) > 1e-6*wantDist+1e-9 {
				t.Fatalf("leg ending %v traveled %v, want %v", wps[i].T, legDist, wantDist)
			}
			legStart = wps[i].T
			legDist = 0
			speed = 0
		}
	}
}
