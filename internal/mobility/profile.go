package mobility

import (
	"fmt"
	"math/rand"
	"time"

	"mobiquery/internal/geom"
	"mobiquery/internal/sim"
)

// Profile is a motion profile per Section 4.1.2 of the paper: a predicted
// path annotated with the three timing parameters (ts, Tv, tg).
type Profile struct {
	// Path predicts the user's position from TS onward; past its last
	// waypoint it extrapolates with the final velocity.
	Path Trajectory
	// TS is when the profile takes effect (ts).
	TS sim.Time
	// Validity is the interval the prediction is claimed to hold (Tv).
	Validity time.Duration
	// Generated is when the profile was created (tg).
	Generated sim.Time
	// Version orders profiles; a higher version supersedes lower ones.
	Version int
}

// AdvanceTime returns Ta = ts - tg: positive when the profile is available
// before it takes effect (a motion planner), negative when it arrives after
// the fact (a history-based predictor).
func (p Profile) AdvanceTime() time.Duration { return p.TS - p.Generated }

// Expiry returns ts + Tv.
func (p Profile) Expiry() sim.Time { return p.TS + p.Validity }

// PredictAt returns the predicted user position at time t.
func (p Profile) PredictAt(t sim.Time) geom.Point { return p.Path.PosAt(t) }

// TimedProfile pairs a profile with the instant the proxy receives it.
type TimedProfile struct {
	Deliver sim.Time
	Profile Profile
}

// Profiler produces the sequence of motion profiles the proxy will receive
// over a run. Profiles are precomputed — they depend only on the course and
// the profiler's own randomness — which keeps runs deterministic.
type Profiler interface {
	// Profiles returns profiles ordered by delivery time.
	Profiles() []TimedProfile
}

// OracleProfiler delivers a single exact profile of the entire course at
// time zero: the "accurate motion profiles" setting of Section 6.2.
type OracleProfiler struct {
	Course Course
}

// Profiles implements Profiler.
func (o OracleProfiler) Profiles() []TimedProfile {
	return []TimedProfile{{
		Deliver: 0,
		Profile: Profile{
			Path:      o.Course.Trajectory,
			TS:        0,
			Validity:  o.Course.End(),
			Generated: 0,
			Version:   1,
		},
	}}
}

// ExactProfiler models the Section 6.3 "advance time" experiments: at every
// motion change the proxy receives an exact profile of the new leg, Ta
// before the change occurs (Ta < 0 means after). This matches a motion
// planner for Ta > 0 and an idealized error-free predictor for Ta < 0.
type ExactProfiler struct {
	Course Course
	Ta     time.Duration
}

// Profiles implements Profiler.
func (e ExactProfiler) Profiles() []TimedProfile {
	legs := legStarts(e.Course)
	out := make([]TimedProfile, 0, len(legs))
	for i, ts := range legs {
		legEnd := e.Course.End()
		if i+1 < len(legs) {
			legEnd = legs[i+1]
		}
		if legEnd <= ts {
			continue
		}
		deliver := ts - e.Ta
		if deliver < 0 {
			deliver = 0
		}
		out = append(out, TimedProfile{
			Deliver: deliver,
			Profile: Profile{
				Path:      e.Course.Slice(ts, legEnd),
				TS:        ts,
				Validity:  legEnd - ts,
				Generated: deliver,
				Version:   i + 1,
			},
		})
	}
	return out
}

// GPSPredictor models the Section 4.1.1 history-based motion predictor used
// in the Section 6.3 "location error" experiments. The proxy samples GPS
// every Sampling seconds, each reading carrying a uniform error within a
// disk of radius Err meters. Whenever the latest reading diverges from the
// active profile's prediction by more than Threshold (or no profile exists
// yet), it estimates a velocity from the last two readings and issues a new
// straight-line profile — so a motion change is detected within roughly one
// sampling period (the paper's "provided to MQ-JIT 8 s after a motion
// change occurs"), and drift during long straight legs is also corrected.
type GPSPredictor struct {
	Course   Course
	Sampling time.Duration // GPS sampling period delta (paper: 8 s)
	Err      float64       // max location error in meters (paper: 5 or 10)
	// Threshold is the divergence (m) that triggers a new profile; zero
	// selects a default that stays above the GPS noise floor.
	Threshold float64
	RNG       *rand.Rand
}

// DefaultThreshold returns the re-profiling divergence threshold a
// GPSPredictor with the given error radius uses when Threshold is zero:
// re-profiling on pure measurement noise is wasted warmup, so the default
// stays above the worst-case reading disagreement. Exported so error
// models built on the predictor (corridor inflation, experiment bounds)
// share one definition.
func DefaultThreshold(err float64) float64 { return 20 + err }

// Profiles implements Profiler.
func (g GPSPredictor) Profiles() []TimedProfile {
	if g.Sampling <= 0 {
		panic(fmt.Sprintf("mobility: GPS sampling period %v must be positive", g.Sampling))
	}
	if g.Err < 0 {
		panic("mobility: GPS error must be non-negative")
	}
	threshold := g.Threshold
	if threshold <= 0 {
		threshold = DefaultThreshold(g.Err)
	}
	var out []TimedProfile
	var cur Profile
	haveProfile := false
	var prevT sim.Time
	var prevP geom.Point
	havePrev := false
	version := 0
	for t := sim.Time(0); t <= g.Course.End(); t += sim.Time(g.Sampling) {
		r := g.reading(t)
		diverged := !haveProfile || r.Dist(cur.PredictAt(t)) > threshold
		if diverged && havePrev {
			vel := r.Sub(prevP).Scale(1 / (t - prevT).Seconds())
			version++
			// The path nominally runs to the session end; PredictAt
			// extrapolates past it with the same velocity regardless.
			end := g.Course.End() + sim.Time(g.Sampling)
			if end <= t {
				end = t + sim.Time(g.Sampling)
			}
			cur = Profile{
				Path:      LinearPath(r, vel, t, end),
				TS:        t,
				Validity:  end - t,
				Generated: t,
				Version:   version,
			}
			haveProfile = true
			out = append(out, TimedProfile{Deliver: t, Profile: cur})
		}
		prevT, prevP, havePrev = t, r, true
	}
	return out
}

// reading samples the true position at t with GPS error.
func (g GPSPredictor) reading(t sim.Time) geom.Point {
	p := g.Course.PosAt(t)
	if g.Err <= 0 {
		return p
	}
	return geom.UniformInDisk(g.RNG, p, g.Err)
}

// legStarts returns the start instants of every motion leg, including 0.
func legStarts(c Course) []sim.Time {
	out := make([]sim.Time, 0, len(c.Changes)+1)
	out = append(out, 0)
	out = append(out, c.Changes...)
	return out
}

// FixedProfiler returns exactly the supplied profiles; used by tests and by
// applications that drive MobiQuery with externally computed plans.
type FixedProfiler []TimedProfile

// Profiles implements Profiler.
func (f FixedProfiler) Profiles() []TimedProfile { return f }
