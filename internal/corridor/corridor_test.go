package corridor

import (
	"math/rand"
	"testing"
	"time"

	"mobiquery/internal/geom"
	"mobiquery/internal/mobility"
	"mobiquery/internal/sim"
)

func testGrid(n int, seed int64) *geom.ShardedGrid {
	rng := rand.New(rand.NewSource(seed))
	region := geom.Square(1000)
	g := geom.NewShardedGrid(region, 100, 8)
	for i := 0; i < n; i++ {
		g.Insert(int32(i), region.UniformPoint(rng))
	}
	return g
}

func lineProfile(start geom.Point, vx, vy float64, ts sim.Time) mobility.Profile {
	return mobility.Profile{
		Path:      mobility.LinearPath(start, geom.V(vx, vy), ts, ts+time.Second),
		TS:        ts,
		Generated: ts,
		Version:   1,
	}
}

func testConfig() Config {
	return Config{
		Lookahead: 4,
		Model:     ErrorModel{Base: 30},
		Radius:    150,
		Period:    time.Second,
	}
}

func TestConfigValidate(t *testing.T) {
	if err := testConfig().Validate(); err != nil {
		t.Fatalf("valid config rejected: %v", err)
	}
	bad := []func(*Config){
		func(c *Config) { c.Lookahead = 0 },
		func(c *Config) { c.Radius = 0 },
		func(c *Config) { c.Period = 0 },
		func(c *Config) { c.Model.Base = -1 },
		func(c *Config) { c.Model.Growth = -1 },
	}
	for i, mutate := range bad {
		cfg := testConfig()
		mutate(&cfg)
		if _, err := NewCache(cfg, testGrid(10, 1)); err == nil {
			t.Errorf("mutation %d: expected a configuration error", i)
		}
	}
	if _, err := NewCache(testConfig(), nil); err == nil {
		t.Error("nil grid accepted")
	}
}

func TestStagingWindow(t *testing.T) {
	g := testGrid(500, 1)
	c, err := NewCache(testConfig(), g)
	if err != nil {
		t.Fatal(err)
	}
	if got := c.StagedBoundaries(); len(got) != 0 {
		t.Fatalf("staged %v before any profile", got)
	}
	c.SetProfile(lineProfile(geom.Pt(200, 200), 3, 1, 0), 0)
	if got := c.StagedBoundaries(); len(got) != 4 || got[0] != 1 || got[3] != 4 {
		t.Fatalf("initial window = %v, want [1 2 3 4]", got)
	}
	if st := c.Stats(); st.StagedBoundaries != 4 {
		t.Errorf("staged counter = %d, want 4", st.StagedBoundaries)
	}
	// Advancing past boundary 2 keeps 2 (may still be collecting), drops 1,
	// and tops up through boundary 6.
	c.StageThrough(2100 * time.Millisecond)
	if got := c.StagedBoundaries(); len(got) != 5 || got[0] != 2 || got[4] != 6 {
		t.Fatalf("advanced window = %v, want [2 3 4 5 6]", got)
	}
	cells := c.Corridor()
	if len(cells) == 0 {
		t.Fatal("swept corridor is empty")
	}
	for _, cell := range cells {
		if cell.Until < cell.From {
			t.Fatalf("cell %+v has inverted validity", cell)
		}
		if cell.Until < 2*time.Second || cell.Until > 6*time.Second {
			t.Fatalf("cell %+v serves a boundary outside the window", cell)
		}
	}
}

// TestWarmServeMatchesColdScan is the bit-identity property the whole
// subsystem rests on: for any actual position within the error model of
// the prediction, the staged visit enumerates exactly the nodes a cold
// VisitWithin over the actual circle finds.
func TestWarmServeMatchesColdScan(t *testing.T) {
	g := testGrid(800, 2)
	cfg := testConfig()
	c, err := NewCache(cfg, g)
	if err != nil {
		t.Fatal(err)
	}
	start := geom.Pt(300, 300)
	c.SetProfile(lineProfile(start, 4, 2, 0), 0)
	rng := rand.New(rand.NewSource(3))
	for k := 1; k <= cfg.Lookahead; k++ {
		due := sim.Time(k) * cfg.Period
		predicted := start.Add(geom.V(4, 2).Scale(due.Seconds()))
		// The actual user strays from the prediction, but within the model.
		actual := geom.UniformInDisk(rng, predicted, cfg.Model.Base)
		want := map[int32]geom.Point{}
		g.VisitWithin(actual, cfg.Radius, func(id int32, pos geom.Point) { want[id] = pos })
		got := map[int32]geom.Point{}
		prev := int32(-1)
		served := c.VisitStaged(due, actual, cfg.Radius, func(id int32, pos geom.Point) {
			if id <= prev {
				t.Fatalf("boundary %d: staged visit out of id order (%d after %d)", k, id, prev)
			}
			prev = id
			got[id] = pos
		})
		if !served {
			t.Fatalf("boundary %d: staged visit refused within the error model", k)
		}
		if len(got) != len(want) {
			t.Fatalf("boundary %d: warm %d nodes vs cold %d", k, len(got), len(want))
		}
		for id, pos := range want {
			if got[id] != pos {
				t.Fatalf("boundary %d: node %d at %v warm vs %v cold", k, id, got[id], pos)
			}
		}
	}
	if st := c.Stats(); st.Hits != int64(cfg.Lookahead) || st.Mispredicts != 0 {
		t.Errorf("ledger = %+v, want %d hits and no mispredicts", st, cfg.Lookahead)
	}
}

func TestMispredictDetectedAndTaken(t *testing.T) {
	g := testGrid(300, 4)
	cfg := testConfig()
	c, err := NewCache(cfg, g)
	if err != nil {
		t.Fatal(err)
	}
	c.SetProfile(lineProfile(geom.Pt(200, 200), 3, 0, 0), 0)
	// The user actually turned hard: far outside Base=30 m of the
	// prediction at boundary 1.
	actual := geom.Pt(600, 600)
	calls := 0
	if c.VisitStaged(time.Second, actual, cfg.Radius, func(int32, geom.Point) { calls++ }) {
		t.Fatal("mispredicted boundary served warm")
	}
	if calls != 0 {
		t.Fatalf("refused visit still streamed %d nodes", calls)
	}
	st := c.Stats()
	if st.Mispredicts != 1 || st.Hits != 0 {
		t.Fatalf("ledger = %+v, want one mispredict", st)
	}
	at, pos, ok := c.TakeMispredict()
	if !ok || at != time.Second || pos != actual {
		t.Fatalf("TakeMispredict = %v %v %v, want the observed escape", at, pos, ok)
	}
	if _, _, ok := c.TakeMispredict(); ok {
		t.Error("TakeMispredict did not clear")
	}
	// Off-boundary and unknown dues are plain misses, not mispredicts.
	if c.VisitStaged(1500*time.Millisecond, actual, cfg.Radius, func(int32, geom.Point) {}) {
		t.Error("off-boundary due served warm")
	}
	if got := c.Stats(); got.Mispredicts != 1 {
		t.Errorf("off-boundary miss counted as mispredict: %+v", got)
	}
}

func TestGridChurnInvalidatesStage(t *testing.T) {
	g := testGrid(300, 5)
	cfg := testConfig()
	c, err := NewCache(cfg, g)
	if err != nil {
		t.Fatal(err)
	}
	start := geom.Pt(400, 400)
	c.SetProfile(lineProfile(start, 0, 0, 0), 0)
	// A node moves after staging: the snapshot no longer proves exactness.
	g.Move(7, geom.Pt(401, 401))
	if c.VisitStaged(time.Second, start, cfg.Radius, func(int32, geom.Point) {}) {
		t.Fatal("stale stage served warm after grid churn")
	}
	st := c.Stats()
	if st.StaleStages != 1 {
		t.Fatalf("ledger = %+v, want one stale stage", st)
	}
	// Restaging under the new grid serves warm again and matches cold.
	c.StageThrough(0)
	want := 0
	g.VisitWithin(start, cfg.Radius, func(int32, geom.Point) { want++ })
	got := 0
	if !c.VisitStaged(time.Second, start, cfg.Radius, func(int32, geom.Point) { got++ }) {
		t.Fatal("restaged boundary refused")
	}
	if got != want {
		t.Fatalf("restaged visit found %d nodes, cold scan %d", got, want)
	}
}

func TestProfileCoverageBoundsStaging(t *testing.T) {
	g := testGrid(200, 6)
	cfg := testConfig()
	cfg.Lookahead = 8
	c, err := NewCache(cfg, g)
	if err != nil {
		t.Fatal(err)
	}
	// A profile taking effect at 3 s with 2 s validity covers boundaries 3,
	// 4, and 5 only.
	p := lineProfile(geom.Pt(100, 100), 1, 1, 3*time.Second)
	p.Validity = 2 * time.Second
	c.SetProfile(p, 0)
	if got := c.StagedBoundaries(); len(got) != 3 || got[0] != 3 || got[2] != 5 {
		t.Fatalf("staged %v, want [3 4 5]", got)
	}
}

func TestGPSErrorModel(t *testing.T) {
	m := GPSErrorModel(5, 25, 4, 8*time.Second)
	if want := 25 + 15 + 64.0; m.Base != want || m.Growth != 0 {
		t.Errorf("model = %+v, want Base %v Growth 0", m, want)
	}
	// Zero threshold selects the predictor's default 20+err.
	m = GPSErrorModel(10, 0, 2, 4*time.Second)
	if want := 30 + 30 + 16.0; m.Base != want {
		t.Errorf("defaulted model = %+v, want Base %v", m, want)
	}
	if infl := m.Inflation(-time.Second); infl != m.Base {
		t.Errorf("negative age inflation = %v, want clamp to Base %v", infl, m.Base)
	}
	grow := ErrorModel{Base: 10, Growth: 2}
	if infl := grow.Inflation(3 * time.Second); infl != 16 {
		t.Errorf("Inflation(3s) = %v, want 16", infl)
	}
}
