// Package corridor is the spatial half of predictive prefetching: it turns
// a mobile user's (possibly noisy) motion profile into an error-inflated
// spatial corridor — the geom.ShardedGrid cells the predicted query area
// sweeps over the next few period boundaries, each with a validity interval
// — and stages per-boundary node snapshots from those cells ahead of time,
// so the engine's windowed evaluation serves staged periods from a warm,
// contiguous, presorted buffer instead of a cold grid radius scan.
//
// The cache is honest about prediction error. Every staged snapshot records
// the inflated circle it covers and the grid version it was cut at; at
// serve time the user's *actual* query circle must fit inside the staged
// circle and the grid must be unchanged, otherwise the evaluation falls
// back to the cold scan — so a warm serve is bit-identical to the cold one
// by construction. An actual position outside the corridor is a
// *mispredict*: it is counted, surfaced through TakeMispredict so the
// session layer can re-plan immediately from ground truth, and the period
// keeps the honest on-demand accounting the prefetch planner's
// whole-answer-staged credit rule demands.
package corridor

import (
	"fmt"
	"slices"
	"sync"
	"sync/atomic"
	"time"

	"mobiquery/internal/geom"
	"mobiquery/internal/mobility"
	"mobiquery/internal/sim"
)

// collectSlack widens every staged circle by a hair beyond the computed
// inflation, so float rounding in the triangle inequality — coverage is
// checked with one Dist while membership is checked with Dist2 — can never
// exclude a node the cold scan would include.
const collectSlack = 1e-6

// ErrorModel bounds how far a predicted position may sit from the user's
// true position: a fixed Base plus Growth per second of prediction age
// (time since the governing profile was generated). The corridor inflates
// each predicted query circle by the bound, so the true query area stays
// inside the staged area as long as the model holds; a prediction that
// escapes the bound is detected at serve time as a mispredict.
type ErrorModel struct {
	// Base is the fixed location-error bound in meters (e.g. the GPS error
	// radius plus the predictor's re-profiling threshold).
	Base float64
	// Growth inflates the bound with prediction age, in meters per second.
	Growth float64
}

// Validate reports model errors.
func (m ErrorModel) Validate() error {
	if m.Base < 0 || m.Growth < 0 {
		return fmt.Errorf("corridor: error model must be non-negative, got %+v", m)
	}
	return nil
}

// Inflation returns the error bound for a prediction of the given age.
func (m ErrorModel) Inflation(age time.Duration) float64 {
	if age < 0 {
		age = 0
	}
	return m.Base + m.Growth*age.Seconds()
}

// GPSErrorModel returns the ErrorModel covering a mobility.GPSPredictor's
// worst-case prediction error against a user moving at up to maxSpeed m/s.
// The predictor re-profiles whenever a reading diverges from the prediction
// by more than threshold (zero selects the predictor's own default,
// 20+err), and each reading errs by at most err, so at every sampling
// instant the prediction is within threshold+err of the truth; between two
// checks — one sampling period apart — the prediction and the truth
// separate at most at the sum of their speeds, and the velocity estimated
// from two noisy readings errs by up to 2*err/sampling. Summed:
//
//	bound = threshold + 3*err + 2*maxSpeed*sampling
//
// constant in prediction age, hence Growth 0. The bound is proven as a
// property test in internal/mobility.
func GPSErrorModel(err, threshold, maxSpeed float64, sampling time.Duration) ErrorModel {
	if threshold <= 0 {
		threshold = mobility.DefaultThreshold(err)
	}
	return ErrorModel{Base: threshold + 3*err + 2*maxSpeed*sampling.Seconds()}
}

// Config fixes the quantities a Cache needs: the subscription's spatial and
// temporal shape plus the error model of its predictions.
type Config struct {
	// Lookahead is how many period boundaries ahead the corridor sweeps and
	// stages; it must be at least 1 (a zero lookahead means "no corridor" —
	// don't build a cache at all).
	Lookahead int
	// Model bounds the prediction error the corridor absorbs.
	Model ErrorModel
	// Radius is the query radius Rq.
	Radius float64
	// Period is the subscription period; boundary k is due at T0+k*Period.
	Period time.Duration
	// T0 is the subscription epoch.
	T0 sim.Time
}

// Validate reports configuration errors.
func (c Config) Validate() error {
	if err := c.Model.Validate(); err != nil {
		return err
	}
	switch {
	case c.Lookahead < 1:
		return fmt.Errorf("corridor: lookahead %d must be at least 1", c.Lookahead)
	case c.Radius <= 0:
		return fmt.Errorf("corridor: radius %v must be positive", c.Radius)
	case c.Period <= 0:
		return fmt.Errorf("corridor: period %v must be positive", c.Period)
	}
	return nil
}

// StagedNode is one sensor in a staged snapshot.
type StagedNode struct {
	ID  int32
	Pos geom.Point
}

// stage is one boundary's staged snapshot: the inflated circle it covers,
// the grid version it was cut at, and the in-circle nodes in ascending id
// order — the warm, contiguous buffer evaluation iterates.
type stage struct {
	k       int
	due     sim.Time
	center  geom.Point
	radius  float64 // cfg.Radius + inflation (+ collectSlack)
	builtAt sim.Time
	version uint64
	dirty   bool // a writer raced the snapshot; never serve it
	cells   []cellKey
	nodes   []StagedNode
}

type cellKey struct{ cx, cy int }

// Cell is one grid cell of the swept corridor, with the interval over
// which its staged contents serve boundaries: From is when the earliest
// snapshot touching it was cut, Until the latest boundary it serves.
type Cell struct {
	CX, CY      int
	From, Until sim.Time
}

// Stats is the cache's ledger. Hits and Misses partition evaluations the
// engine asked the cache about: a hit was served warm from a staged
// snapshot, a miss fell back to the cold scan (no snapshot for the
// boundary, a snapshot invalidated by grid churn — counted again in
// StaleStages — or a mispredict, counted again in Mispredicts).
type Stats struct {
	Hits        int64
	Misses      int64
	Mispredicts int64
	StaleStages int64
	// StagedBoundaries counts snapshots built over the cache's lifetime.
	StagedBoundaries int64
}

// Cache is one subscription's corridor: it consumes the subscriber's
// predicted motion profiles as they arrive, keeps the next Lookahead
// boundaries staged, and serves the engine's evaluations through the
// core.CorridorWarmer hook (VisitStaged). All methods are safe for
// concurrent use; a SetProfile racing an evaluation leaves the evaluation
// on whichever snapshot it resolved — whole and consistent either way.
type Cache struct {
	cfg  Config
	grid *geom.ShardedGrid

	mu          sync.Mutex
	profile     mobility.Profile
	haveProfile bool
	stages      map[int]*stage
	// free recycles retired stage buffers: a steady-state subscription
	// builds one snapshot per period, and without reuse the node and cell
	// slices of every dropped stage would be fresh garbage.
	free []*stage
	// pending mispredict: the most recent actual position observed outside
	// the corridor, for the session layer to re-plan from.
	mispredicted  bool
	mispredictAt  sim.Time
	mispredictPos geom.Point

	hits        atomic.Int64
	misses      atomic.Int64
	mispredicts atomic.Int64
	staleStages atomic.Int64
	staged      atomic.Int64
}

// NewCache builds an empty corridor cache over the engine's node grid. It
// stages nothing until a profile arrives via SetProfile.
func NewCache(cfg Config, grid *geom.ShardedGrid) (*Cache, error) {
	if err := cfg.Validate(); err != nil {
		return nil, err
	}
	if grid == nil {
		return nil, fmt.Errorf("corridor: cache needs a grid")
	}
	return &Cache{cfg: cfg, grid: grid, stages: make(map[int]*stage)}, nil
}

// kFor inverts due = T0 + k*Period; ok is false when due is not one of the
// subscription's boundaries.
func (c *Cache) kFor(due sim.Time) (int, bool) {
	d := due - c.cfg.T0
	if d <= 0 || d%c.cfg.Period != 0 {
		return 0, false
	}
	return int(d / c.cfg.Period), true
}

// nextK returns the index of the first boundary strictly after now.
func (c *Cache) nextK(now sim.Time) int {
	if now < c.cfg.T0 {
		return 1
	}
	return int((now-c.cfg.T0)/c.cfg.Period) + 1
}

// SetProfile replaces the governing motion profile at virtual time now — a
// fresher prediction arrived, or a mispredict forced a ground-truth
// correction — and immediately re-sweeps the corridor: every staged
// boundary is dropped and the next Lookahead boundaries are restaged under
// the new prediction.
func (c *Cache) SetProfile(p mobility.Profile, now sim.Time) {
	c.mu.Lock()
	defer c.mu.Unlock()
	c.profile = p
	c.haveProfile = true
	for k, st := range c.stages {
		c.retireLocked(st)
		delete(c.stages, k)
	}
	c.stageWindowLocked(now)
}

// retireLocked returns a dropped stage's buffers to the freelist. Caller
// holds mu and must also delete it from c.stages.
func (c *Cache) retireLocked(st *stage) {
	if len(c.free) < 8 {
		c.free = append(c.free, st)
	}
}

// blankLocked returns a zeroed stage with recycled buffers. Caller holds mu.
func (c *Cache) blankLocked() *stage {
	if n := len(c.free); n > 0 {
		st := c.free[n-1]
		c.free = c.free[:n-1]
		*st = stage{cells: st.cells[:0], nodes: st.nodes[:0]}
		return st
	}
	return &stage{}
}

// StageThrough tops the corridor up at virtual time now: boundaries the
// user has passed are dropped and any unstaged boundary of the next
// Lookahead window is swept and staged. Call it after each boundary
// evaluation — staging for boundary k+1 then happens ahead of k+1's due
// time, which is what makes the buffer warm rather than merely cached.
func (c *Cache) StageThrough(now sim.Time) {
	c.mu.Lock()
	defer c.mu.Unlock()
	c.stageWindowLocked(now)
}

// stageWindowLocked drops consumed stages and stages the missing
// boundaries of [nextK, nextK+Lookahead-1]. Caller holds mu.
func (c *Cache) stageWindowLocked(now sim.Time) {
	if !c.haveProfile {
		return
	}
	next := c.nextK(now)
	for k, st := range c.stages {
		// Keep the boundary currently being collected (due may equal now);
		// anything a full period behind is consumed.
		if st.due+c.cfg.Period < now {
			c.retireLocked(st)
			delete(c.stages, k)
		}
	}
	for k := next; k < next+c.cfg.Lookahead; k++ {
		if _, ok := c.stages[k]; ok {
			continue
		}
		if st := c.buildStage(k, now); st != nil {
			c.stages[k] = st
			c.staged.Add(1)
		}
	}
}

// buildStage sweeps and snapshots one boundary: the corridor cells of the
// inflated predicted circle, their bucket contents filtered to the circle,
// sorted by id. Returns nil when the profile does not cover the boundary.
// Caller holds mu.
func (c *Cache) buildStage(k int, now sim.Time) *stage {
	due := c.cfg.T0 + sim.Time(k)*c.cfg.Period
	if due < c.profile.TS {
		return nil
	}
	if c.profile.Validity > 0 && due > c.profile.Expiry() {
		return nil
	}
	center := c.profile.PredictAt(due)
	r := c.cfg.Radius + c.cfg.Model.Inflation(due-c.profile.Generated) + collectSlack
	st := c.blankLocked()
	st.k, st.due, st.center, st.radius, st.builtAt = k, due, center, r, now
	r2 := r * r
	// Clean-bracket snapshot: SnapshotVersion must return ok with equal
	// versions on both sides of the cell sweep — no mutation completed in
	// between and none was in flight at either edge — so the staged
	// buffer is one consistent grid state, the precondition for serving
	// it as a bit-identical replacement of the cold scan.
	for attempt := 0; attempt < 2; attempt++ {
		v0, ok0 := c.grid.SnapshotVersion()
		st.cells = st.cells[:0]
		st.nodes = st.nodes[:0]
		c.grid.VisitCellsInBox(center, r, func(cx, cy int) {
			st.cells = append(st.cells, cellKey{cx, cy})
			c.grid.VisitCell(cx, cy, func(id int32, pos geom.Point) {
				if pos.Dist2(center) <= r2 {
					st.nodes = append(st.nodes, StagedNode{ID: id, Pos: pos})
				}
			})
		})
		v1, ok1 := c.grid.SnapshotVersion()
		if ok0 && ok1 && v0 == v1 {
			st.version = v0
			st.dirty = false
			break
		}
		st.dirty = true // racing writers both attempts: stage unserveable
	}
	slices.SortFunc(st.nodes, func(a, b StagedNode) int {
		if a.ID < b.ID {
			return -1
		}
		if a.ID > b.ID {
			return 1
		}
		return 0
	})
	return st
}

// VisitStaged implements the engine's CorridorWarmer hook: it streams the
// staged nodes of the boundary due at `due` that fall inside the actual
// query circle (center, radius) and reports true, or reports false without
// calling fn when the evaluation must fall back to the cold scan — no
// snapshot, a snapshot outdated by grid churn, or the actual circle
// escaping the staged circle (a mispredict, recorded for TakeMispredict).
// A warm serve enumerates exactly the nodes the cold scan would.
func (c *Cache) VisitStaged(due sim.Time, center geom.Point, radius float64, fn func(id int32, pos geom.Point)) bool {
	c.mu.Lock()
	k, ok := c.kFor(due)
	if !ok {
		c.mu.Unlock()
		c.misses.Add(1)
		return false
	}
	st := c.stages[k]
	if st == nil {
		c.mu.Unlock()
		c.misses.Add(1)
		return false
	}
	// The plain Version suffices here: the snapshot bracket already proved
	// consistency, equality proves no mutation has completed since, and a
	// mutation merely in flight cannot matter — the serve reads only the
	// snapshot, which remains a recent consistent grid state (the same
	// guarantee a cold scan racing that writer gets).
	if st.dirty || c.grid.Version() != st.version {
		c.retireLocked(st)
		delete(c.stages, k)
		c.mu.Unlock()
		c.staleStages.Add(1)
		c.misses.Add(1)
		return false
	}
	// Coverage: every point within `radius` of the actual center must lie
	// within the staged circle (triangle inequality; collectSlack absorbs
	// the float error of the two distance computations).
	if center.Dist(st.center)+radius > st.radius {
		c.mispredicted = true
		c.mispredictAt = due
		c.mispredictPos = center
		c.mu.Unlock()
		c.mispredicts.Add(1)
		c.misses.Add(1)
		return false
	}
	r2 := radius * radius
	for i := range st.nodes {
		if st.nodes[i].Pos.Dist2(center) <= r2 {
			fn(st.nodes[i].ID, st.nodes[i].Pos)
		}
	}
	c.mu.Unlock()
	c.hits.Add(1)
	return true
}

// TakeMispredict returns and clears the most recent mispredict: the
// boundary at which the user's actual position escaped the corridor, and
// that position. The session layer re-plans from it (ground truth beats a
// broken prediction) — the immediate-replan half of the mispredict
// contract; the accounting half happened already, because the mispredicted
// evaluation was served cold.
func (c *Cache) TakeMispredict() (at sim.Time, actual geom.Point, ok bool) {
	c.mu.Lock()
	defer c.mu.Unlock()
	if !c.mispredicted {
		return 0, geom.Point{}, false
	}
	c.mispredicted = false
	return c.mispredictAt, c.mispredictPos, true
}

// Corridor returns the swept corridor as of the staged window: every grid
// cell touched by a staged boundary's inflated circle, with the validity
// interval [earliest snapshot cut, latest boundary served] merged across
// boundaries. Cells are ordered by (CY, CX). Introspection only — the
// serve path never touches this.
func (c *Cache) Corridor() []Cell {
	c.mu.Lock()
	defer c.mu.Unlock()
	merged := make(map[cellKey]Cell)
	for _, st := range c.stages {
		for _, ck := range st.cells {
			cell, ok := merged[ck]
			if !ok {
				cell = Cell{CX: ck.cx, CY: ck.cy, From: st.builtAt, Until: st.due}
			} else {
				if st.builtAt < cell.From {
					cell.From = st.builtAt
				}
				if st.due > cell.Until {
					cell.Until = st.due
				}
			}
			merged[ck] = cell
		}
	}
	out := make([]Cell, 0, len(merged))
	for _, cell := range merged {
		out = append(out, cell)
	}
	slices.SortFunc(out, func(a, b Cell) int {
		if a.CY != b.CY {
			return a.CY - b.CY
		}
		return a.CX - b.CX
	})
	return out
}

// StagedBoundaries returns the boundary indices currently staged, in
// ascending order.
func (c *Cache) StagedBoundaries() []int {
	c.mu.Lock()
	defer c.mu.Unlock()
	out := make([]int, 0, len(c.stages))
	for k := range c.stages {
		out = append(out, k)
	}
	slices.Sort(out)
	return out
}

// Stats returns the cache's ledger snapshot.
func (c *Cache) Stats() Stats {
	return Stats{
		Hits:             c.hits.Load(),
		Misses:           c.misses.Load(),
		Mispredicts:      c.mispredicts.Load(),
		StaleStages:      c.staleStages.Load(),
		StagedBoundaries: c.staged.Load(),
	}
}
