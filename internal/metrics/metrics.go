// Package metrics evaluates MobiQuery runs against the paper's performance
// metrics (Section 6): per-query data fidelity, success ratio, storage
// (prefetch length), and summary statistics with 95% confidence intervals.
package metrics

import (
	"math"
	"sort"
	"time"

	"mobiquery/internal/core"
	"mobiquery/internal/geom"
	"mobiquery/internal/mobility"
	"mobiquery/internal/pyramid"
	"mobiquery/internal/radio"
	"mobiquery/internal/sim"
)

// FidelityThreshold is the paper's success-ratio fidelity cutoff (95%).
const FidelityThreshold = 0.95

// QueryRecord is the evaluated outcome of one query period.
type QueryRecord struct {
	K            int
	Deadline     sim.Time
	Received     bool
	OnTime       bool
	Arrival      sim.Time
	Latency      time.Duration  // arrival minus period start; 0 if missing
	AreaNodes    int            // sensor nodes inside the true query area
	Contributors int            // contributors inside the true query area
	Missing      []radio.NodeID // in-area nodes that did not contribute
	Value        float64        // the aggregate under the query's function
	Fidelity     float64        // contributors / nodes in the TRUE query area
	// TargetFidelity scores the result against the area it actually
	// targeted (the circle around its pickup point). It equals Fidelity
	// under exact motion profiles and forgives prediction drift under
	// noisy ones; the paper's fidelity definition is ambiguous between the
	// two readings, so both are reported.
	TargetFidelity float64
	Success        bool // OnTime && Fidelity >= threshold
	TargetSuccess  bool // OnTime && TargetFidelity >= threshold
}

// NodeIndex is a read-only spatial index of sensor-node positions. Both
// *geom.Grid and *geom.ShardedGrid satisfy it; node ids are the int32 ids
// stored in the index.
type NodeIndex interface {
	// Within appends the ids of all items within radius r of p (inclusive)
	// to dst and returns the extended slice.
	Within(dst []int32, p geom.Point, r float64) []int32
	// Position returns the stored position of id.
	Position(id int32) (geom.Point, bool)
}

// indexPositions builds a NodeIndex over a dense position slice (node id i
// at positions[i]). It returns a pyramid-decomposed index sized so that
// radius-rq queries cover most of their area with coarse tiles and only
// disk-test a thin fringe, instead of testing every candidate node.
func indexPositions(positions []geom.Point, rq float64) NodeIndex {
	return pyramid.NewIndex(positions, rq/8, 0)
}

// Evaluate scores gateway results against ground truth: the true query area
// is the circle of radius rq around the user's actual position at each
// deadline, and fidelity is the fraction of its sensor nodes whose readings
// reached the user (Section 6's definition).
func Evaluate(results []core.PeriodResult, course mobility.Course, positions []geom.Point, rq float64, period time.Duration) []QueryRecord {
	return EvaluateAgg(results, course, positions, rq, period, core.AggAvg)
}

// EvaluateAgg is Evaluate with an explicit aggregation function used to
// compute each record's Value. It indexes the positions once instead of
// scanning all of them every period.
func EvaluateAgg(results []core.PeriodResult, course mobility.Course, positions []geom.Point, rq float64, period time.Duration, agg core.AggKind) []QueryRecord {
	return EvaluateAggIndexed(results, course, indexPositions(positions, rq), rq, period, agg)
}

// EvaluateAggIndexed is EvaluateAgg over a prebuilt spatial index of the
// sensor positions. Several users of one run can be evaluated concurrently
// against a shared index: the function only reads from it.
func EvaluateAggIndexed(results []core.PeriodResult, course mobility.Course, idx NodeIndex, rq float64, period time.Duration, agg core.AggKind) []QueryRecord {
	out := make([]QueryRecord, 0, len(results))
	var buf []int32
	for _, pr := range results {
		rec := QueryRecord{
			K:        pr.K,
			Deadline: pr.Deadline,
			Received: pr.Received,
			OnTime:   pr.Received && pr.OnTime,
			Arrival:  pr.Arrival,
		}
		if pr.Received {
			rec.Value = pr.Data.Value(agg)
		}
		userPos := course.PosAt(pr.Deadline)
		buf = idx.Within(buf[:0], userPos, rq)
		inArea := make(map[radio.NodeID]bool, len(buf))
		for _, id := range buf {
			inArea[radio.NodeID(id)] = true
		}
		rec.AreaNodes = len(inArea)
		seen := make(map[radio.NodeID]bool)
		if pr.Received {
			rec.Latency = pr.Arrival - (pr.Deadline - sim.Time(period))
			for _, id := range pr.Data.Contribs {
				if inArea[id] && !seen[id] {
					seen[id] = true
					rec.Contributors++
				}
			}
		}
		if pr.Received {
			targetHits := 0
			tseen := make(map[radio.NodeID]bool, len(pr.Data.Contribs))
			for _, id := range pr.Data.Contribs {
				pos, ok := idx.Position(int32(id))
				if !ok {
					continue
				}
				if pos.Within(pr.Pickup, rq) && !tseen[id] {
					tseen[id] = true
					targetHits++
				}
			}
			targetNodes := len(idx.Within(buf[:0], pr.Pickup, rq))
			if targetNodes > 0 {
				rec.TargetFidelity = float64(targetHits) / float64(targetNodes)
			} else {
				rec.TargetFidelity = 1
			}
		}
		for id := range inArea {
			if !seen[id] {
				rec.Missing = append(rec.Missing, id)
			}
		}
		sort.Slice(rec.Missing, func(i, j int) bool { return rec.Missing[i] < rec.Missing[j] })
		if rec.AreaNodes > 0 {
			rec.Fidelity = float64(rec.Contributors) / float64(rec.AreaNodes)
		} else {
			rec.Fidelity = 1 // empty area: vacuously perfect
		}
		rec.Success = rec.OnTime && rec.Fidelity >= FidelityThreshold
		rec.TargetSuccess = rec.OnTime && rec.TargetFidelity >= FidelityThreshold
		out = append(out, rec)
	}
	return out
}

// SuccessRatio returns the fraction of records that met the deadline with
// fidelity at or above the threshold.
func SuccessRatio(records []QueryRecord) float64 {
	if len(records) == 0 {
		return 0
	}
	n := 0
	for _, r := range records {
		if r.Success {
			n++
		}
	}
	return float64(n) / float64(len(records))
}

// TargetSuccessRatio is SuccessRatio computed against each result's
// targeted area rather than the user's true area (see TargetFidelity).
func TargetSuccessRatio(records []QueryRecord) float64 {
	if len(records) == 0 {
		return 0
	}
	n := 0
	for _, r := range records {
		if r.TargetSuccess {
			n++
		}
	}
	return float64(n) / float64(len(records))
}

// MeanFidelity returns the average fidelity across records (missing results
// count as zero fidelity).
func MeanFidelity(records []QueryRecord) float64 {
	if len(records) == 0 {
		return 0
	}
	var sum float64
	for _, r := range records {
		sum += r.Fidelity
	}
	return sum / float64(len(records))
}

// Mean returns the arithmetic mean of xs (0 for empty input).
func Mean(xs []float64) float64 {
	if len(xs) == 0 {
		return 0
	}
	var s float64
	for _, x := range xs {
		s += x
	}
	return s / float64(len(xs))
}

// tTable holds two-sided 97.5% Student-t quantiles for small sample sizes
// (index = degrees of freedom), as used for the paper's 95% confidence
// intervals over 3-5 runs.
var tTable = []float64{0, 12.706, 4.303, 3.182, 2.776, 2.571, 2.447, 2.365, 2.306, 2.262, 2.228}

// MeanCI95 returns the mean of xs and the half-width of its 95% confidence
// interval (0 for fewer than two samples).
func MeanCI95(xs []float64) (mean, halfWidth float64) {
	mean = Mean(xs)
	n := len(xs)
	if n < 2 {
		return mean, 0
	}
	var ss float64
	for _, x := range xs {
		d := x - mean
		ss += d * d
	}
	sd := math.Sqrt(ss / float64(n-1))
	df := n - 1
	t := 1.96
	if df < len(tTable) {
		t = tTable[df]
	}
	return mean, t * sd / math.Sqrt(float64(n))
}

// Percentile returns the pth percentile (0..100) of xs by nearest-rank.
func Percentile(xs []float64, p float64) float64 {
	if len(xs) == 0 {
		return 0
	}
	sorted := append([]float64(nil), xs...)
	sort.Float64s(sorted)
	if p <= 0 {
		return sorted[0]
	}
	if p >= 100 {
		return sorted[len(sorted)-1]
	}
	rank := int(math.Ceil(p/100*float64(len(sorted)))) - 1
	if rank < 0 {
		rank = 0
	}
	return sorted[rank]
}
