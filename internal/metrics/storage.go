package metrics

import (
	"time"

	"mobiquery/internal/radio"
	"mobiquery/internal/sim"
)

// StorageTracker measures the storage cost of a query session (Section
// 5.2): how many query trees each node holds and how far ahead of the user
// the prefetching process has built trees (the prefetch length).
//
// Wire Add/Remove to core.Hooks.OnTreeUp/OnTreeDown.
type StorageTracker struct {
	t0     sim.Time
	period time.Duration

	live        map[radio.NodeID]int
	maxPerNode  int
	setups      int
	plSum       float64
	plMax       int
	distinctMax int
	distinct    map[int]int // live period index -> node count
}

// NewStorageTracker tracks a query issued at t0 with the given period.
func NewStorageTracker(t0 sim.Time, period time.Duration) *StorageTracker {
	return &StorageTracker{
		t0:       t0,
		period:   period,
		live:     make(map[radio.NodeID]int),
		distinct: make(map[int]int),
	}
}

// Add records a tree instantiation for period k on a node at time at.
func (st *StorageTracker) Add(node radio.NodeID, k int, at sim.Time) {
	st.live[node]++
	if st.live[node] > st.maxPerNode {
		st.maxPerNode = st.live[node]
	}
	st.setups++
	// Prefetch length: how many periods ahead of the user this tree is.
	current := 0
	if at > st.t0 {
		current = int((at - st.t0) / st.period)
	}
	pl := k - current
	if pl < 0 {
		pl = 0
	}
	st.plSum += float64(pl)
	if pl > st.plMax {
		st.plMax = pl
	}
	st.distinct[k]++
	if len(st.distinct) > st.distinctMax {
		st.distinctMax = len(st.distinct)
	}
}

// Remove records a tree teardown for period k on a node.
func (st *StorageTracker) Remove(node radio.NodeID, k int, _ sim.Time) {
	st.live[node]--
	if st.live[node] <= 0 {
		delete(st.live, node)
	}
	st.distinct[k]--
	if st.distinct[k] <= 0 {
		delete(st.distinct, k)
	}
}

// MaxTreesPerNode returns the peak number of simultaneous trees on any
// single node.
func (st *StorageTracker) MaxTreesPerNode() int { return st.maxPerNode }

// MaxPrefetchLength returns the worst-case observed prefetch length in
// periods — the paper's PL metric.
func (st *StorageTracker) MaxPrefetchLength() int { return st.plMax }

// MeanPrefetchLength returns the mean prefetch length across setups.
func (st *StorageTracker) MeanPrefetchLength() float64 {
	if st.setups == 0 {
		return 0
	}
	return st.plSum / float64(st.setups)
}

// MaxLivePeriods returns the peak number of distinct periods with live
// trees anywhere in the network.
func (st *StorageTracker) MaxLivePeriods() int { return st.distinctMax }

// Setups returns the total number of (node, tree) instantiations.
func (st *StorageTracker) Setups() int { return st.setups }
