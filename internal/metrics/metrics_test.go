package metrics

import (
	"math"
	"testing"
	"time"

	"mobiquery/internal/core"
	"mobiquery/internal/geom"
	"mobiquery/internal/mobility"
	"mobiquery/internal/radio"
	"mobiquery/internal/sim"
)

func sec(s float64) sim.Time { return sim.Time(s * float64(time.Second)) }

func evalFixture() ([]core.PeriodResult, mobility.Course, []geom.Point) {
	course := mobility.Course{Trajectory: mobility.Stationary(geom.Pt(100, 100), 0)}
	positions := []geom.Point{
		geom.Pt(100, 100), // 0: in area
		geom.Pt(150, 100), // 1: in area
		geom.Pt(100, 160), // 2: in area
		geom.Pt(400, 400), // 3: far outside
	}
	mk := func(k int, contribs []radio.NodeID, onTime bool) core.PeriodResult {
		p := core.NewPartial()
		for _, id := range contribs {
			p.AddReading(id, 1)
		}
		return core.PeriodResult{
			K: k, Deadline: sec(float64(2 * k)), Received: true,
			Arrival: sec(float64(2*k) - 0.05), OnTime: onTime, Data: p,
		}
	}
	results := []core.PeriodResult{
		mk(1, []radio.NodeID{0, 1, 2}, true),    // full fidelity
		mk(2, []radio.NodeID{0, 1}, true),       // 2/3
		mk(3, []radio.NodeID{0, 1, 2, 3}, true), // outside contributor ignored
		mk(4, []radio.NodeID{0}, false),         // late
		{K: 5, Deadline: sec(10)},               // missing
	}
	return results, course, positions
}

func TestEvaluate(t *testing.T) {
	results, course, positions := evalFixture()
	recs := Evaluate(results, course, positions, 170, 2*time.Second)
	if len(recs) != 5 {
		t.Fatalf("records = %d", len(recs))
	}
	if recs[0].Fidelity != 1 || !recs[0].Success {
		t.Errorf("rec 1 = %+v", recs[0])
	}
	if math.Abs(recs[1].Fidelity-2.0/3) > 1e-12 || recs[1].Success {
		t.Errorf("rec 2 fidelity = %v", recs[1].Fidelity)
	}
	if len(recs[1].Missing) != 1 || recs[1].Missing[0] != 2 {
		t.Errorf("rec 2 missing = %v", recs[1].Missing)
	}
	if recs[2].Fidelity != 1 || recs[2].Contributors != 3 {
		t.Errorf("rec 3: out-of-area contributor should not count: %+v", recs[2])
	}
	if recs[3].Success || !recs[3].Received {
		t.Errorf("late result must not succeed: %+v", recs[3])
	}
	if recs[4].Received || recs[4].Fidelity != 0 || recs[4].Success {
		t.Errorf("missing result: %+v", recs[4])
	}
	if recs[0].AreaNodes != 3 {
		t.Errorf("area nodes = %d, want 3", recs[0].AreaNodes)
	}
}

func TestEvaluateDedupContributors(t *testing.T) {
	course := mobility.Course{Trajectory: mobility.Stationary(geom.Pt(0, 0), 0)}
	positions := []geom.Point{geom.Pt(0, 0), geom.Pt(10, 0)}
	p := core.NewPartial()
	p.AddReading(0, 1)
	p.AddReading(0, 2) // duplicate contributor
	results := []core.PeriodResult{{
		K: 1, Deadline: sec(2), Received: true, Arrival: sec(1.9), OnTime: true, Data: p,
	}}
	recs := Evaluate(results, course, positions, 50, 2*time.Second)
	if recs[0].Contributors != 1 {
		t.Errorf("duplicate contributor counted twice: %d", recs[0].Contributors)
	}
}

func TestEvaluateEmptyArea(t *testing.T) {
	course := mobility.Course{Trajectory: mobility.Stationary(geom.Pt(0, 0), 0)}
	results := []core.PeriodResult{{K: 1, Deadline: sec(2), Received: true, OnTime: true, Arrival: sec(2)}}
	recs := Evaluate(results, course, nil, 150, 2*time.Second)
	if recs[0].Fidelity != 1 {
		t.Errorf("empty area fidelity = %v, want vacuous 1", recs[0].Fidelity)
	}
}

func TestSuccessRatioAndMeanFidelity(t *testing.T) {
	recs := []QueryRecord{
		{Success: true, Fidelity: 1},
		{Success: false, Fidelity: 0.5},
		{Success: true, Fidelity: 0.96},
		{Success: false, Fidelity: 0},
	}
	if got := SuccessRatio(recs); got != 0.5 {
		t.Errorf("SuccessRatio = %v", got)
	}
	if got := MeanFidelity(recs); math.Abs(got-0.615) > 1e-12 {
		t.Errorf("MeanFidelity = %v", got)
	}
	if SuccessRatio(nil) != 0 || MeanFidelity(nil) != 0 {
		t.Error("empty inputs should give 0")
	}
}

func TestMeanCI95(t *testing.T) {
	mean, ci := MeanCI95([]float64{1, 1, 1, 1, 1})
	if mean != 1 || ci != 0 {
		t.Errorf("constant sample: mean=%v ci=%v", mean, ci)
	}
	mean, ci = MeanCI95([]float64{0.9, 1.0, 1.1})
	if math.Abs(mean-1.0) > 1e-12 {
		t.Errorf("mean = %v", mean)
	}
	// sd = 0.1, t(0.975,2) = 4.303: ci = 4.303*0.1/sqrt(3) ~ 0.2484.
	if math.Abs(ci-0.2484) > 1e-3 {
		t.Errorf("ci = %v, want ~0.248", ci)
	}
	if _, ci = MeanCI95([]float64{5}); ci != 0 {
		t.Error("single sample should give 0 CI")
	}
	// Large samples fall back to the normal quantile.
	xs := make([]float64, 50)
	for i := range xs {
		xs[i] = float64(i % 2)
	}
	if _, ci = MeanCI95(xs); ci <= 0 {
		t.Error("large-sample CI should be positive")
	}
}

func TestMean(t *testing.T) {
	if got := Mean([]float64{1, 2, 3}); got != 2 {
		t.Errorf("Mean = %v", got)
	}
	if got := Mean(nil); got != 0 {
		t.Errorf("Mean(nil) = %v", got)
	}
}

func TestPercentile(t *testing.T) {
	xs := []float64{5, 1, 3, 2, 4}
	if got := Percentile(xs, 0); got != 1 {
		t.Errorf("p0 = %v", got)
	}
	if got := Percentile(xs, 100); got != 5 {
		t.Errorf("p100 = %v", got)
	}
	if got := Percentile(xs, 50); got != 3 {
		t.Errorf("p50 = %v", got)
	}
	if got := Percentile(nil, 50); got != 0 {
		t.Errorf("empty percentile = %v", got)
	}
	// Input must stay unsorted (no mutation).
	if xs[0] != 5 {
		t.Error("Percentile mutated its input")
	}
}

func TestStorageTracker(t *testing.T) {
	st := NewStorageTracker(sec(0.5), 2*time.Second)
	// At t=1s the user is in period 0; trees for k=3 and k=4 go up.
	st.Add(10, 3, sec(1))
	st.Add(10, 4, sec(1))
	st.Add(11, 3, sec(1))
	if got := st.MaxTreesPerNode(); got != 2 {
		t.Errorf("MaxTreesPerNode = %d", got)
	}
	if got := st.MaxPrefetchLength(); got != 4 {
		t.Errorf("MaxPrefetchLength = %d, want 4", got)
	}
	if got := st.MaxLivePeriods(); got != 2 {
		t.Errorf("MaxLivePeriods = %d", got)
	}
	if got := st.Setups(); got != 3 {
		t.Errorf("Setups = %d", got)
	}
	st.Remove(10, 3, sec(6))
	st.Remove(11, 3, sec(6))
	st.Remove(10, 4, sec(8))
	if got := st.MaxLivePeriods(); got != 2 {
		t.Errorf("MaxLivePeriods after removal should remember the peak: %d", got)
	}
	if mean := st.MeanPrefetchLength(); mean <= 0 {
		t.Errorf("MeanPrefetchLength = %v", mean)
	}
	if NewStorageTracker(0, time.Second).MeanPrefetchLength() != 0 {
		t.Error("empty tracker mean should be 0")
	}
}
