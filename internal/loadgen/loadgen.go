// Package loadgen is the closed/open-loop worker harness that drives a
// mobiquery-serve front-end and measures its SLOs: subscribe latency,
// per-period delivery lateness, drop counts, and sustained
// subscriptions/sec, reported as the machine-readable SLO_pr.json
// artifact CI trends and gates (cmd/mobiquery-slocmp).
//
// The run is phased. A warmup window absorbs connection setup and cold
// caches; the steady window is what the gates read; an optional
// elasticity wave — a burst of extra workers resubscribing mid-run —
// shows how subscribe latency behaves as load steps up, so scaling is
// reported as a curve (steady vs wave percentiles), not a point.
//
// Workers are seeded: worker i derives its query spec (radius), start
// position, motion (linear or a GPS-predicted course through the
// mobility profilers) and strategy (on-demand or JIT) from Seed+i alone,
// so two runs against equal servers subscribe identical workloads. The
// measured latencies are wall-clock and as noisy as the host; the gates
// compare them with generous floors.
package loadgen

import (
	"bytes"
	"context"
	"encoding/json"
	"fmt"
	"io"
	"math"
	"math/rand"
	"net/http"
	"os"
	"slices"
	"sync"
	"time"

	"mobiquery/internal/obs"
	"mobiquery/internal/wire"
)

// TraceLog is the client side of a traced run: every traced period's
// server span joined with the client's own stamps, in arrival order —
// the TRACE_pr.ndjson artifact mobiquery-tracestat validates.
type TraceLog struct {
	Spans []wire.ClientSpan
}

// WriteFile writes the log as NDJSON, one ClientSpan per line.
func (t *TraceLog) WriteFile(path string) error {
	f, err := os.Create(path)
	if err != nil {
		return err
	}
	enc := wire.NewEncoder(f)
	for i := range t.Spans {
		if err := enc.Encode(&t.Spans[i]); err != nil {
			f.Close()
			return err
		}
	}
	return f.Close()
}

// ReadTraceLog loads a TRACE_pr.ndjson artifact.
func ReadTraceLog(path string) (*TraceLog, error) {
	f, err := os.Open(path)
	if err != nil {
		return nil, err
	}
	defer f.Close()
	dec := wire.NewDecoder(f)
	var t TraceLog
	for {
		var cs wire.ClientSpan
		if err := dec.Decode(&cs); err != nil {
			if err == io.EOF {
				return &t, nil
			}
			return nil, fmt.Errorf("loadgen: %s: %w", path, err)
		}
		t.Spans = append(t.Spans, cs)
	}
}

// Config shapes one load-generation run.
type Config struct {
	// Addr is the server base URL (http://host:port).
	Addr string `json:"addr"`
	// Workers is the closed-loop worker count (open loop: the in-flight
	// cap). Each closed-loop worker subscribes, drains the stream to its
	// end, and immediately resubscribes.
	Workers int `json:"workers"`
	// OpenLoop switches from closed-loop workers to open-loop arrivals:
	// subscriptions start at Rate per second regardless of completions.
	OpenLoop bool `json:"open_loop,omitempty"`
	// Rate is the open-loop arrival rate, subscriptions per second.
	Rate float64 `json:"rate,omitempty"`
	// Warmup is excluded from the steady-phase percentiles; Duration is
	// the measured window after it.
	Warmup   time.Duration `json:"warmup_ns"`
	Duration time.Duration `json:"duration_ns"`
	// WaveWorkers extra workers join WaveAt after the steady window opens
	// (the elasticity phase); 0 disables the wave.
	WaveWorkers int           `json:"wave_workers,omitempty"`
	WaveAt      time.Duration `json:"wave_at_ns,omitempty"`
	// Seed derives every worker's query field and motion.
	Seed int64 `json:"seed"`

	// Query shaping: each subscription draws its radius from
	// [RadiusMin, RadiusMax] and runs for Lifetime (periods of Period,
	// Deadline slack, Freshness window) before resubscribing.
	Period    time.Duration `json:"period_ns"`
	Deadline  time.Duration `json:"deadline_ns"`
	Freshness time.Duration `json:"freshness_ns"`
	Lifetime  time.Duration `json:"lifetime_ns"`
	RadiusMin float64       `json:"radius_min_m"`
	RadiusMax float64       `json:"radius_max_m"`
	// Region bounds worker motion; match the server's field side.
	Region float64 `json:"region_m"`
	// JITEvery makes every Nth subscription use the JIT prefetching
	// strategy (0 = never); CourseEvery gives every Nth a GPS-predicted
	// random course instead of linear motion (0 = never).
	JITEvery    int `json:"jit_every,omitempty"`
	CourseEvery int `json:"course_every,omitempty"`
	// LargeEvery gives every Nth subscription the fixed LargeRadius
	// instead of a draw from [RadiusMin, RadiusMax] (0 = never). Large
	// subscriptions always run on-demand — region-scale aggregate disks
	// are the tile-pyramid workload, and the server only attaches the
	// pyramid to non-prefetching queries.
	LargeEvery  int     `json:"large_every,omitempty"`
	LargeRadius float64 `json:"large_radius_m,omitempty"`
	// TraceEvery mints a trace context on every Nth subscription (0 =
	// never): the server echoes each traced period's lifecycle span on its
	// result frame, and the client joins its own send/ack/receive stamps
	// into the TraceLog (TRACE_pr.ndjson). Trace ids derive from Seed and
	// the subscription number, so traced runs are reproducible too.
	TraceEvery int `json:"trace_every,omitempty"`
}

// Validate reports configuration errors.
func (c Config) Validate() error {
	switch {
	case c.Addr == "":
		return fmt.Errorf("loadgen: Addr must be set")
	case c.Workers <= 0:
		return fmt.Errorf("loadgen: Workers must be positive, got %d", c.Workers)
	case c.OpenLoop && c.Rate <= 0:
		return fmt.Errorf("loadgen: open loop needs a positive Rate, got %v", c.Rate)
	case c.Duration <= 0:
		return fmt.Errorf("loadgen: Duration must be positive, got %v", c.Duration)
	case c.Warmup < 0 || c.WaveAt < 0 || c.WaveWorkers < 0:
		return fmt.Errorf("loadgen: Warmup, WaveAt, and WaveWorkers must be non-negative")
	case c.WaveWorkers > 0 && c.WaveAt >= c.Duration:
		return fmt.Errorf("loadgen: WaveAt %v must fall inside Duration %v", c.WaveAt, c.Duration)
	case c.Period <= 0 || c.Lifetime < c.Period:
		return fmt.Errorf("loadgen: need 0 < Period <= Lifetime, got %v/%v", c.Period, c.Lifetime)
	case c.RadiusMin <= 0 || c.RadiusMax < c.RadiusMin:
		return fmt.Errorf("loadgen: need 0 < RadiusMin <= RadiusMax, got %v/%v", c.RadiusMin, c.RadiusMax)
	case c.Region <= 0:
		return fmt.Errorf("loadgen: Region must be positive, got %v", c.Region)
	case c.JITEvery < 0 || c.CourseEvery < 0 || c.LargeEvery < 0 || c.TraceEvery < 0:
		return fmt.Errorf("loadgen: JITEvery, CourseEvery, LargeEvery, and TraceEvery must be non-negative")
	case c.LargeEvery > 0 && c.LargeRadius <= 0:
		return fmt.Errorf("loadgen: LargeEvery %d needs a positive LargeRadius, got %v", c.LargeEvery, c.LargeRadius)
	}
	return nil
}

// Phases of a run.
const (
	PhaseWarmup = "warmup"
	PhaseSteady = "steady"
	PhaseWave   = "wave"
)

// Latency summarizes one latency distribution in milliseconds.
type Latency struct {
	Count int     `json:"count"`
	P50   float64 `json:"p50"`
	P95   float64 `json:"p95"`
	P99   float64 `json:"p99"`
	Max   float64 `json:"max"`
}

// Phase is the per-phase slice of the report. SubscribeLatencyMS is
// request start to ack frame; DeliveryLatenessMS is how far behind its
// period deadline each result reached the client (clock anchored at the
// ack, clamped at zero); Late counts results the server itself marked
// late.
type Phase struct {
	Subscribes         int     `json:"subscribes"`
	Results            int     `json:"results"`
	Late               int     `json:"late"`
	Dropped            int     `json:"dropped"`
	Errors             int     `json:"errors"`
	SubscribeLatencyMS Latency `json:"subscribe_latency_ms"`
	DeliveryLatenessMS Latency `json:"delivery_lateness_ms"`
}

// Totals is the run-level summary. SubsPerSec is completed subscriptions
// per second of the steady+wave window — the sustained throughput
// headline.
type Totals struct {
	Subscribes int     `json:"subscribes"`
	Results    int     `json:"results"`
	Late       int     `json:"late"`
	Dropped    int     `json:"dropped"`
	Errors     int     `json:"errors"`
	SubsPerSec float64 `json:"subs_per_sec"`
}

// Report is the SLO_pr.json schema, versioned so the comparer can reject
// incompatible artifacts.
type Report struct {
	Schema        int               `json:"schema"`
	GeneratedUnix int64             `json:"generated_unix"`
	Config        Config            `json:"config"`
	Phases        map[string]*Phase `json:"phases"`
	Totals        Totals            `json:"totals"`
}

// Schema is the current Report schema version.
const Schema = 1

// WriteFile writes the report as indented JSON.
func (r *Report) WriteFile(path string) error {
	b, err := json.MarshalIndent(r, "", "  ")
	if err != nil {
		return err
	}
	return os.WriteFile(path, append(b, '\n'), 0o644)
}

// ReadReport loads and version-checks a report file.
func ReadReport(path string) (*Report, error) {
	b, err := os.ReadFile(path)
	if err != nil {
		return nil, err
	}
	var r Report
	if err := json.Unmarshal(b, &r); err != nil {
		return nil, fmt.Errorf("loadgen: %s: %w", path, err)
	}
	if r.Schema != Schema {
		return nil, fmt.Errorf("loadgen: %s: schema %d, want %d", path, r.Schema, Schema)
	}
	return &r, nil
}

// Client speaks the wire protocol to a serve front-end.
type Client struct {
	Base string
	HTTP *http.Client
}

// Stream is one live subscribe stream.
type Stream struct {
	Ack  wire.Frame
	dec  *wire.Decoder
	body interface{ Close() error }
}

// Subscribe opens a stream and decodes the ack frame.
func (c *Client) Subscribe(ctx context.Context, req wire.SubscribeRequest) (*Stream, error) {
	body, err := json.Marshal(req)
	if err != nil {
		return nil, err
	}
	hr, err := http.NewRequestWithContext(ctx, http.MethodPost, c.Base+"/v1/subscribe", bytes.NewReader(body))
	if err != nil {
		return nil, err
	}
	resp, err := c.HTTP.Do(hr)
	if err != nil {
		return nil, err
	}
	if resp.StatusCode != http.StatusOK {
		resp.Body.Close()
		return nil, fmt.Errorf("loadgen: subscribe: status %s", resp.Status)
	}
	st := &Stream{dec: wire.NewDecoder(resp.Body), body: resp.Body}
	if err := st.dec.Decode(&st.Ack); err != nil {
		resp.Body.Close()
		return nil, fmt.Errorf("loadgen: subscribe ack: %w", err)
	}
	if st.Ack.Type != wire.FrameAck {
		resp.Body.Close()
		return nil, fmt.Errorf("loadgen: first frame is %q, want ack", st.Ack.Type)
	}
	return st, nil
}

// Next returns the next frame on the stream.
func (s *Stream) Next() (wire.Frame, error) {
	var f wire.Frame
	err := s.dec.Decode(&f)
	return f, err
}

// Close releases the stream (the server tears the subscription down).
func (s *Stream) Close() { s.body.Close() }

// WaitReady polls the server's health endpoint until it answers or the
// timeout expires — serialization point for freshly spawned servers.
func WaitReady(client *http.Client, base string, timeout time.Duration) error {
	deadline := time.Now().Add(timeout)
	var last error
	for time.Now().Before(deadline) {
		resp, err := client.Get(base + "/healthz")
		if err == nil {
			resp.Body.Close()
			if resp.StatusCode == http.StatusOK {
				return nil
			}
			err = fmt.Errorf("status %s", resp.Status)
		}
		last = err
		time.Sleep(50 * time.Millisecond)
	}
	return fmt.Errorf("loadgen: server at %s not ready after %v: %w", base, timeout, last)
}

// collector accumulates phase-attributed samples under one lock; worker
// hot paths batch nothing because smoke-scale sample counts are small.
type collector struct {
	mu     sync.Mutex
	phases map[string]*phaseAcc
	// spans is the run's joined client+server trace log, in arrival order
	// (empty without Config.TraceEvery).
	spans []wire.ClientSpan
}

type phaseAcc struct {
	subLat  []float64
	lateNss []float64
	Phase
}

func newCollector() *collector {
	return &collector{phases: map[string]*phaseAcc{
		PhaseWarmup: {}, PhaseSteady: {}, PhaseWave: {},
	}}
}

func (c *collector) acc(phase string) *phaseAcc { return c.phases[phase] }

// worker is one subscriber loop. class is PhaseWave for wave workers,
// PhaseSteady otherwise; samples taken before warmupEnd land in warmup.
type worker struct {
	class   string
	cfg     Config
	client  *Client
	col     *collector
	started time.Time
	warmup  time.Duration
}

// phase attributes a sample taken now.
func (w *worker) phase() string {
	if w.class == PhaseWave {
		return PhaseWave
	}
	if time.Since(w.started) < w.warmup {
		return PhaseWarmup
	}
	return PhaseSteady
}

// request derives the seeded subscribe request for global subscription n.
func request(cfg Config, n int) wire.SubscribeRequest {
	rng := rand.New(rand.NewSource(cfg.Seed + int64(n)))
	spec := wire.Spec{
		RadiusM:     cfg.RadiusMin + rng.Float64()*(cfg.RadiusMax-cfg.RadiusMin),
		PeriodNS:    int64(cfg.Period),
		DeadlineNS:  int64(cfg.Deadline),
		FreshnessNS: int64(cfg.Freshness),
		LifetimeNS:  int64(cfg.Lifetime),
	}
	if cfg.JITEvery > 0 && n%cfg.JITEvery == 0 {
		spec.Strategy = "jit"
	}
	if cfg.LargeEvery > 0 && n%cfg.LargeEvery == 0 {
		spec.RadiusM = cfg.LargeRadius
		spec.Strategy = ""
	}
	// Keep starts away from the boundary so query areas stay populated.
	x := cfg.Region * (0.2 + 0.6*rng.Float64())
	y := cfg.Region * (0.2 + 0.6*rng.Float64())
	motion := wire.Motion{Kind: "linear", XM: x, YM: y}
	heading := 2 * math.Pi * rng.Float64()
	speed := 1 + 3*rng.Float64()
	motion.VXMPS = speed * math.Cos(heading)
	motion.VYMPS = speed * math.Sin(heading)
	if cfg.TraceEvery > 0 && n%cfg.TraceEvery == 0 {
		spec.TraceID = wire.FormatID(traceIDFor(cfg.Seed, n))
	}
	if cfg.CourseEvery > 0 && n%cfg.CourseEvery == 0 {
		motion = wire.Motion{
			Kind: "course", XM: x, YM: y,
			Seed:             cfg.Seed + int64(n),
			RegionSideM:      cfg.Region,
			SpeedMinMPS:      1,
			SpeedMaxMPS:      4,
			ChangeIntervalNS: int64(5 * cfg.Period),
			DurationNS:       int64(4 * cfg.Lifetime),
			GPSSeed:          cfg.Seed + int64(n) + 1,
			GPSSamplingNS:    int64(cfg.Period / 2),
			GPSErrM:          5,
		}
	}
	return wire.SubscribeRequest{Spec: spec, Motion: motion}
}

// traceIDFor mints the deterministic, non-zero trace id of global
// subscription n in a run seeded with seed.
func traceIDFor(seed int64, n int) uint64 {
	tid := uint64(obs.MintSpanID(obs.TraceID(seed), n+1))
	if tid == 0 {
		tid = 1 // 0 means untraced; the finalizer all but never lands here
	}
	return tid
}

// runOnce executes one full subscription lifecycle and records it.
func (w *worker) runOnce(ctx context.Context, n int) {
	req := request(w.cfg, n)
	phase := w.phase()
	t0 := time.Now()
	st, err := w.client.Subscribe(ctx, req)
	if err != nil {
		if ctx.Err() != nil {
			return // the run window closed mid-subscribe: not a server fault
		}
		w.col.mu.Lock()
		w.col.acc(phase).Errors++
		w.col.mu.Unlock()
		time.Sleep(50 * time.Millisecond) // do not hammer a sick server
		return
	}
	defer st.Close()
	ackAt := time.Now()
	subLatMS := float64(ackAt.Sub(t0)) / float64(time.Millisecond)

	var results, late int
	var lateNss []float64
	var spans []wire.ClientSpan
	var dropped int
	for {
		f, err := st.Next()
		recvAt := time.Now()
		if err != nil {
			break // disconnect or shutdown mid-stream: keep what we saw
		}
		if f.Type == wire.FrameEnd {
			if f.Stats != nil {
				dropped = f.Stats.Dropped
			}
			break
		}
		if f.Type != wire.FrameResult {
			continue
		}
		if f.Result.Trace != nil {
			// A traced period: join the server's echoed span with this
			// stream's client-side stamps.
			spans = append(spans, wire.ClientSpan{
				Sub:    st.Ack.ID,
				SendNS: t0.UnixNano(),
				AckNS:  ackAt.UnixNano(),
				RecvNS: recvAt.UnixNano(),
				Server: *f.Result.Trace,
			})
		}
		// The ack anchors the clock: result k is due (Deadline - ackNow)
		// after the ack, modulo one server tick. Early arrivals clamp to
		// zero — the SLO is about lag, not tick phase.
		expected := ackAt.Add(time.Duration(f.Result.DeadlineNS - st.Ack.NowNS))
		lat := time.Since(expected)
		if lat < 0 {
			lat = 0
		}
		lateNss = append(lateNss, float64(lat)/float64(time.Millisecond))
		results++
		if !f.Result.OnTime {
			late++
		}
	}

	w.col.mu.Lock()
	a := w.col.acc(phase)
	a.Subscribes++
	a.subLat = append(a.subLat, subLatMS)
	a.lateNss = append(a.lateNss, lateNss...)
	a.Results += results
	a.Late += late
	a.Dropped += dropped
	w.col.spans = append(w.col.spans, spans...)
	w.col.mu.Unlock()
}

// Run executes the configured load against the server and assembles the
// report plus the run's trace log (empty, never nil, without
// Config.TraceEvery). It returns once the run window has elapsed and
// every worker has drained.
func Run(ctx context.Context, cfg Config) (*Report, *TraceLog, error) {
	if err := cfg.Validate(); err != nil {
		return nil, nil, err
	}
	client := &Client{Base: cfg.Addr, HTTP: &http.Client{}}
	col := newCollector()
	start := time.Now()
	runCtx, cancel := context.WithDeadline(ctx, start.Add(cfg.Warmup+cfg.Duration))
	defer cancel()

	var wg sync.WaitGroup
	var n counter // global subscription counter feeding the seeded generator

	closedLoop := func(w *worker) {
		defer wg.Done()
		for runCtx.Err() == nil {
			w.runOnce(runCtx, n.next())
		}
	}
	for i := 0; i < cfg.Workers; i++ {
		w := &worker{class: PhaseSteady, cfg: cfg, client: client, col: col, started: start, warmup: cfg.Warmup}
		wg.Add(1)
		if cfg.OpenLoop {
			go w.openLoop(runCtx, &wg, &n)
		} else {
			go closedLoop(w)
		}
	}
	if cfg.WaveWorkers > 0 {
		wg.Add(1)
		go func() {
			defer wg.Done()
			select {
			case <-runCtx.Done():
				return
			case <-time.After(cfg.Warmup + cfg.WaveAt):
			}
			for i := 0; i < cfg.WaveWorkers; i++ {
				w := &worker{class: PhaseWave, cfg: cfg, client: client, col: col, started: start, warmup: cfg.Warmup}
				wg.Add(1)
				go closedLoop(w)
			}
		}()
	}
	wg.Wait()

	rep := &Report{
		Schema:        Schema,
		GeneratedUnix: time.Now().Unix(),
		Config:        cfg,
		Phases:        make(map[string]*Phase, len(col.phases)),
	}
	measured := 0
	for name, acc := range col.phases {
		acc.SubscribeLatencyMS = summarize(acc.subLat)
		acc.DeliveryLatenessMS = summarize(acc.lateNss)
		p := acc.Phase
		rep.Phases[name] = &p
		rep.Totals.Subscribes += p.Subscribes
		rep.Totals.Results += p.Results
		rep.Totals.Late += p.Late
		rep.Totals.Dropped += p.Dropped
		rep.Totals.Errors += p.Errors
		if name != PhaseWarmup {
			measured += p.Subscribes
		}
	}
	rep.Totals.SubsPerSec = float64(measured) / cfg.Duration.Seconds()
	return rep, &TraceLog{Spans: col.spans}, nil
}

// openLoop starts subscriptions at cfg.Rate/Workers per second from this
// worker (the aggregate across workers is cfg.Rate), not waiting for
// completions; each runs to its end on its own goroutine.
func (w *worker) openLoop(ctx context.Context, wg *sync.WaitGroup, n *counter) {
	defer wg.Done()
	interval := time.Duration(float64(time.Second) * float64(w.cfg.Workers) / w.cfg.Rate)
	tick := time.NewTicker(interval)
	defer tick.Stop()
	var inner sync.WaitGroup
	defer inner.Wait()
	for {
		select {
		case <-ctx.Done():
			return
		case <-tick.C:
			inner.Add(1)
			go func(id int) {
				defer inner.Done()
				w.runOnce(ctx, id)
			}(n.next())
		}
	}
}

// counter is a concurrency-safe increasing id.
type counter struct {
	mu sync.Mutex
	n  int
}

func (c *counter) next() int {
	c.mu.Lock()
	defer c.mu.Unlock()
	c.n++
	return c.n - 1
}

// summarize computes the percentile block of one sample set.
func summarize(samples []float64) Latency {
	if len(samples) == 0 {
		return Latency{}
	}
	s := slices.Clone(samples)
	slices.Sort(s)
	pick := func(q float64) float64 {
		i := int(math.Ceil(q*float64(len(s)))) - 1
		if i < 0 {
			i = 0
		}
		return s[i]
	}
	return Latency{
		Count: len(s),
		P50:   pick(0.50),
		P95:   pick(0.95),
		P99:   pick(0.99),
		Max:   s[len(s)-1],
	}
}
