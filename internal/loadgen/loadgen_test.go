package loadgen

import (
	"context"
	"net/http/httptest"
	"path/filepath"
	"testing"
	"time"

	"mobiquery"
	"mobiquery/internal/server"
)

// startServer stands a real-time served service up for loadgen to hit.
func startServer(t *testing.T) *httptest.Server {
	t.Helper()
	nc := mobiquery.DefaultNetworkConfig()
	nc.Nodes = 300
	nc.SamplePeriod = 20 * time.Millisecond
	svc, err := mobiquery.Open(context.Background(), nc,
		mobiquery.WithRealTime(10*time.Millisecond), mobiquery.WithResultBuffer(64))
	if err != nil {
		t.Fatalf("Open: %v", err)
	}
	ts := httptest.NewServer(server.New(svc, server.Options{}))
	t.Cleanup(func() {
		ts.Close()
		svc.Close()
	})
	return ts
}

func smokeConfig(addr string) Config {
	return Config{
		Addr:        addr,
		Workers:     3,
		Warmup:      200 * time.Millisecond,
		Duration:    time.Second,
		WaveWorkers: 2,
		WaveAt:      400 * time.Millisecond,
		Seed:        1,
		Period:      50 * time.Millisecond,
		Deadline:    40 * time.Millisecond,
		Freshness:   50 * time.Millisecond,
		Lifetime:    200 * time.Millisecond,
		RadiusMin:   100,
		RadiusMax:   180,
		Region:      450,
		JITEvery:    2,
		CourseEvery: 3,
		LargeEvery:  4,
		LargeRadius: 200,
		TraceEvery:  2,
	}
}

func TestRunClosedLoopWithWave(t *testing.T) {
	ts := startServer(t)
	if err := WaitReady(ts.Client(), ts.URL, 5*time.Second); err != nil {
		t.Fatalf("WaitReady: %v", err)
	}
	rep, traces, err := Run(context.Background(), smokeConfig(ts.URL))
	if err != nil {
		t.Fatalf("Run: %v", err)
	}
	if rep.Schema != Schema {
		t.Errorf("schema %d, want %d", rep.Schema, Schema)
	}
	for _, name := range []string{PhaseWarmup, PhaseSteady, PhaseWave} {
		if rep.Phases[name] == nil {
			t.Fatalf("phase %q missing from the report", name)
		}
	}
	steady := rep.Phases[PhaseSteady]
	if steady.Subscribes == 0 || steady.Results == 0 {
		t.Fatalf("steady phase saw no traffic: %+v", steady)
	}
	if rep.Phases[PhaseWave].Subscribes == 0 {
		t.Errorf("wave phase saw no traffic: %+v", rep.Phases[PhaseWave])
	}
	if steady.Errors != 0 {
		t.Errorf("steady phase errors: %+v", steady)
	}
	for name, p := range rep.Phases {
		for _, l := range []Latency{p.SubscribeLatencyMS, p.DeliveryLatenessMS} {
			if l.P50 > l.P95 || l.P95 > l.P99 || l.P99 > l.Max {
				t.Errorf("phase %s: percentiles out of order: %+v", name, l)
			}
			if l.Count > 0 && l.Max < 0 {
				t.Errorf("phase %s: negative latency: %+v", name, l)
			}
		}
	}
	var subs, results int
	for _, p := range rep.Phases {
		subs += p.Subscribes
		results += p.Results
	}
	if rep.Totals.Subscribes != subs || rep.Totals.Results != results {
		t.Errorf("totals %+v do not add up to phases (%d subs, %d results)", rep.Totals, subs, results)
	}
	if rep.Totals.SubsPerSec <= 0 {
		t.Errorf("sustained rate %v, want positive", rep.Totals.SubsPerSec)
	}

	// The artifact round-trips through disk.
	path := filepath.Join(t.TempDir(), "SLO_pr.json")
	if err := rep.WriteFile(path); err != nil {
		t.Fatalf("WriteFile: %v", err)
	}
	got, err := ReadReport(path)
	if err != nil {
		t.Fatalf("ReadReport: %v", err)
	}
	if got.Totals != rep.Totals {
		t.Errorf("totals changed on disk: %+v vs %+v", got.Totals, rep.Totals)
	}

	// TraceEvery joined client stamps onto echoed server spans, and the
	// trace log round-trips through disk.
	if len(traces.Spans) == 0 {
		t.Fatal("traced run collected no client spans")
	}
	for i, cs := range traces.Spans {
		if cs.Server.TraceID == "" || cs.Server.SpanID == "" {
			t.Fatalf("span %d missing trace context: %+v", i, cs.Server)
		}
		if cs.SendNS > cs.AckNS || cs.AckNS > cs.RecvNS {
			t.Fatalf("span %d client stamps out of order: %+v", i, cs)
		}
		if cs.Server.WireNS == 0 {
			t.Fatalf("span %d missing the server wire-write stamp: %+v", i, cs.Server)
		}
	}
	tpath := filepath.Join(t.TempDir(), "TRACE_pr.ndjson")
	if err := traces.WriteFile(tpath); err != nil {
		t.Fatalf("TraceLog.WriteFile: %v", err)
	}
	tgot, err := ReadTraceLog(tpath)
	if err != nil {
		t.Fatalf("ReadTraceLog: %v", err)
	}
	if len(tgot.Spans) != len(traces.Spans) || tgot.Spans[0] != traces.Spans[0] {
		t.Errorf("trace log changed on disk: %d vs %d spans", len(tgot.Spans), len(traces.Spans))
	}
}

func TestRunOpenLoop(t *testing.T) {
	ts := startServer(t)
	cfg := smokeConfig(ts.URL)
	cfg.OpenLoop = true
	cfg.Rate = 20
	cfg.WaveWorkers = 0
	cfg.Duration = 600 * time.Millisecond
	rep, _, err := Run(context.Background(), cfg)
	if err != nil {
		t.Fatalf("Run: %v", err)
	}
	if rep.Totals.Subscribes == 0 || rep.Totals.Results == 0 {
		t.Fatalf("open loop saw no traffic: %+v", rep.Totals)
	}
}

func TestSeededRequestsAreDeterministic(t *testing.T) {
	cfg := smokeConfig("http://unused")
	for n := 0; n < 8; n++ {
		a, b := request(cfg, n), request(cfg, n)
		if a != b {
			t.Errorf("request %d not deterministic:\n%+v\n%+v", n, a, b)
		}
	}
	// JITEvery/CourseEvery select the strategies they promise.
	if request(cfg, 2).Spec.Strategy != "jit" {
		t.Error("subscription 2 should be JIT under JITEvery=2")
	}
	if request(cfg, 3).Motion.Kind != "course" {
		t.Error("subscription 3 should ride a course under CourseEvery=3")
	}
	if r := request(cfg, 1); r.Spec.Strategy != "" || r.Motion.Kind != "linear" {
		t.Errorf("subscription 1 should be plain linear on-demand: %+v", r)
	}
	// LargeEvery pins the radius and forces on-demand, even where the
	// JITEvery stripe coincides (n=4 is both JITEvery=2 and LargeEvery=4).
	if r := request(cfg, 4); r.Spec.RadiusM != cfg.LargeRadius || r.Spec.Strategy != "" {
		t.Errorf("subscription 4 should be a large on-demand disk: %+v", r.Spec)
	}
	if r := request(cfg, 2); r.Spec.RadiusM == cfg.LargeRadius {
		t.Error("subscription 2 should draw from [RadiusMin, RadiusMax]")
	}
	// TraceEvery mints deterministic trace ids on its stripe only.
	if request(cfg, 2).Spec.TraceID == "" {
		t.Error("subscription 2 should carry a trace context under TraceEvery=2")
	}
	if request(cfg, 1).Spec.TraceID != "" {
		t.Error("subscription 1 should be untraced under TraceEvery=2")
	}
}

func TestConfigValidation(t *testing.T) {
	good := smokeConfig("http://x")
	if err := good.Validate(); err != nil {
		t.Fatalf("good config rejected: %v", err)
	}
	mutations := []func(*Config){
		func(c *Config) { c.Addr = "" },
		func(c *Config) { c.Workers = 0 },
		func(c *Config) { c.OpenLoop = true; c.Rate = 0 },
		func(c *Config) { c.Duration = 0 },
		func(c *Config) { c.WaveAt = c.Duration },
		func(c *Config) { c.Period = 0 },
		func(c *Config) { c.Lifetime = c.Period / 2 },
		func(c *Config) { c.RadiusMin = 0 },
		func(c *Config) { c.RadiusMax = c.RadiusMin - 1 },
		func(c *Config) { c.Region = 0 },
		func(c *Config) { c.LargeEvery = -1 },
		func(c *Config) { c.LargeRadius = 0 },
	}
	for i, mut := range mutations {
		c := good
		mut(&c)
		if err := c.Validate(); err == nil {
			t.Errorf("mutation %d should be rejected: %+v", i, c)
		}
	}
}

func TestReadReportRejectsWrongSchema(t *testing.T) {
	path := filepath.Join(t.TempDir(), "bad.json")
	rep := &Report{Schema: Schema + 1}
	if err := rep.WriteFile(path); err != nil {
		t.Fatalf("WriteFile: %v", err)
	}
	if _, err := ReadReport(path); err == nil {
		t.Error("wrong schema should be rejected")
	}
}
