// Package energy provides radio power modelling and per-node energy
// accounting for the MobiQuery simulator.
//
// The model follows Section 6.4 of the paper, which uses the measured power
// draw of a Cabletron 802.11 card: transmitting 1400 mW, receiving 1000 mW,
// idle 830 mW, sleeping 130 mW. A Meter integrates power over the time each
// node spends in each radio state, giving exact energy figures for the
// Figure 8 reproduction.
package energy

import (
	"fmt"
	"time"

	"mobiquery/internal/sim"
)

// Mode is a radio operating state.
type Mode int

// Radio modes, from cheapest to most expensive.
const (
	ModeSleep Mode = iota + 1
	ModeIdle
	ModeRx
	ModeTx
	numModes
)

// String returns the lower-case mode name.
func (m Mode) String() string {
	switch m {
	case ModeSleep:
		return "sleep"
	case ModeIdle:
		return "idle"
	case ModeRx:
		return "rx"
	case ModeTx:
		return "tx"
	default:
		return fmt.Sprintf("Mode(%d)", int(m))
	}
}

// Profile gives the power draw, in watts, of each radio mode.
type Profile struct {
	Tx, Rx, Idle, Sleep float64
}

// Cabletron80211 is the power profile used in the paper's evaluation
// (Section 6.4): 1400/1000/830/130 mW for tx/rx/idle/sleep.
func Cabletron80211() Profile {
	return Profile{Tx: 1.400, Rx: 1.000, Idle: 0.830, Sleep: 0.130}
}

// Power returns the draw of mode m in watts.
func (p Profile) Power(m Mode) float64 {
	switch m {
	case ModeSleep:
		return p.Sleep
	case ModeIdle:
		return p.Idle
	case ModeRx:
		return p.Rx
	case ModeTx:
		return p.Tx
	default:
		return 0
	}
}

// Meter integrates a single node's energy use across radio mode changes.
// The zero value is not usable; construct with NewMeter.
type Meter struct {
	profile  Profile
	clock    func() sim.Time
	mode     Mode
	since    sim.Time
	duration [numModes]time.Duration
}

// NewMeter returns a meter that reads virtual time from clock. The node
// starts in mode initial at the current clock reading.
func NewMeter(profile Profile, clock func() sim.Time, initial Mode) *Meter {
	return &Meter{
		profile: profile,
		clock:   clock,
		mode:    initial,
		since:   clock(),
	}
}

// Mode returns the current radio mode.
func (m *Meter) Mode() Mode { return m.mode }

// SetMode switches the radio to mode, attributing the elapsed interval to
// the previous mode. Switching to the current mode is a no-op.
func (m *Meter) SetMode(mode Mode) {
	if mode == m.mode {
		return
	}
	m.accumulate()
	m.mode = mode
}

func (m *Meter) accumulate() {
	now := m.clock()
	m.duration[m.mode] += now - m.since
	m.since = now
}

// ModeTime returns the total time spent in mode, including the in-progress
// interval.
func (m *Meter) ModeTime(mode Mode) time.Duration {
	d := m.duration[mode]
	if mode == m.mode {
		d += m.clock() - m.since
	}
	return d
}

// TotalTime returns the sum of time across all modes; by construction it
// equals the elapsed virtual time since the meter was created.
func (m *Meter) TotalTime() time.Duration {
	var total time.Duration
	for mode := ModeSleep; mode < numModes; mode++ {
		total += m.ModeTime(mode)
	}
	return total
}

// Energy returns the total energy consumed so far, in joules.
func (m *Meter) Energy() float64 {
	var j float64
	for mode := ModeSleep; mode < numModes; mode++ {
		j += m.profile.Power(mode) * m.ModeTime(mode).Seconds()
	}
	return j
}

// AveragePower returns the mean power draw in watts since the meter was
// created. It returns zero before any time has elapsed.
func (m *Meter) AveragePower() float64 {
	total := m.TotalTime().Seconds()
	if total <= 0 {
		return 0
	}
	return m.Energy() / total
}

// Report is an immutable snapshot of a meter.
type Report struct {
	Energy       float64 // joules
	AveragePower float64 // watts
	Sleep        time.Duration
	Idle         time.Duration
	Rx           time.Duration
	Tx           time.Duration
}

// Snapshot captures the meter's current totals.
func (m *Meter) Snapshot() Report {
	return Report{
		Energy:       m.Energy(),
		AveragePower: m.AveragePower(),
		Sleep:        m.ModeTime(ModeSleep),
		Idle:         m.ModeTime(ModeIdle),
		Rx:           m.ModeTime(ModeRx),
		Tx:           m.ModeTime(ModeTx),
	}
}

// Aggregate averages a set of reports; it is used to compute the paper's
// "average power consumption per sleeping node" metric. Aggregating an
// empty slice returns a zero Report.
func Aggregate(reports []Report) Report {
	if len(reports) == 0 {
		return Report{}
	}
	var out Report
	for _, r := range reports {
		out.Energy += r.Energy
		out.AveragePower += r.AveragePower
		out.Sleep += r.Sleep
		out.Idle += r.Idle
		out.Rx += r.Rx
		out.Tx += r.Tx
	}
	n := len(reports)
	out.Energy /= float64(n)
	out.AveragePower /= float64(n)
	out.Sleep /= time.Duration(n)
	out.Idle /= time.Duration(n)
	out.Rx /= time.Duration(n)
	out.Tx /= time.Duration(n)
	return out
}
