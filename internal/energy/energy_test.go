package energy

import (
	"math"
	"testing"
	"testing/quick"
	"time"

	"mobiquery/internal/sim"
)

// fakeClock is a manually advanced virtual clock.
type fakeClock struct{ now sim.Time }

func (c *fakeClock) read() sim.Time          { return c.now }
func (c *fakeClock) advance(d time.Duration) { c.now += d }

func almostEqual(a, b, eps float64) bool { return math.Abs(a-b) <= eps }

func TestProfilePower(t *testing.T) {
	p := Cabletron80211()
	tests := []struct {
		mode Mode
		want float64
	}{
		{ModeTx, 1.4},
		{ModeRx, 1.0},
		{ModeIdle, 0.83},
		{ModeSleep, 0.13},
		{Mode(0), 0},
	}
	for _, tt := range tests {
		if got := p.Power(tt.mode); got != tt.want {
			t.Errorf("Power(%v) = %v, want %v", tt.mode, got, tt.want)
		}
	}
}

func TestModeString(t *testing.T) {
	names := map[Mode]string{ModeSleep: "sleep", ModeIdle: "idle", ModeRx: "rx", ModeTx: "tx"}
	for m, want := range names {
		if m.String() != want {
			t.Errorf("%d.String() = %q, want %q", m, m.String(), want)
		}
	}
	if Mode(99).String() != "Mode(99)" {
		t.Errorf("unknown mode String = %q", Mode(99).String())
	}
}

func TestMeterSingleMode(t *testing.T) {
	clk := &fakeClock{}
	m := NewMeter(Cabletron80211(), clk.read, ModeSleep)
	clk.advance(10 * time.Second)
	if got := m.ModeTime(ModeSleep); got != 10*time.Second {
		t.Errorf("sleep time = %v, want 10s", got)
	}
	if got := m.Energy(); !almostEqual(got, 1.3, 1e-9) {
		t.Errorf("Energy = %v J, want 1.3 J", got)
	}
	if got := m.AveragePower(); !almostEqual(got, 0.13, 1e-9) {
		t.Errorf("AveragePower = %v W, want 0.13 W", got)
	}
}

func TestMeterModeTransitions(t *testing.T) {
	clk := &fakeClock{}
	m := NewMeter(Cabletron80211(), clk.read, ModeIdle)
	clk.advance(2 * time.Second) // 2s idle
	m.SetMode(ModeTx)
	clk.advance(1 * time.Second) // 1s tx
	m.SetMode(ModeRx)
	clk.advance(3 * time.Second) // 3s rx
	m.SetMode(ModeSleep)
	clk.advance(4 * time.Second) // 4s sleep

	if got := m.ModeTime(ModeIdle); got != 2*time.Second {
		t.Errorf("idle = %v", got)
	}
	if got := m.ModeTime(ModeTx); got != 1*time.Second {
		t.Errorf("tx = %v", got)
	}
	if got := m.ModeTime(ModeRx); got != 3*time.Second {
		t.Errorf("rx = %v", got)
	}
	if got := m.ModeTime(ModeSleep); got != 4*time.Second {
		t.Errorf("sleep = %v", got)
	}
	wantJ := 0.83*2 + 1.4*1 + 1.0*3 + 0.13*4
	if got := m.Energy(); !almostEqual(got, wantJ, 1e-9) {
		t.Errorf("Energy = %v, want %v", got, wantJ)
	}
	if m.TotalTime() != 10*time.Second {
		t.Errorf("TotalTime = %v, want 10s", m.TotalTime())
	}
}

func TestSetModeSameIsNoop(t *testing.T) {
	clk := &fakeClock{}
	m := NewMeter(Cabletron80211(), clk.read, ModeIdle)
	clk.advance(time.Second)
	m.SetMode(ModeIdle)
	clk.advance(time.Second)
	if got := m.ModeTime(ModeIdle); got != 2*time.Second {
		t.Errorf("idle = %v, want 2s", got)
	}
}

func TestAveragePowerZeroTime(t *testing.T) {
	clk := &fakeClock{}
	m := NewMeter(Cabletron80211(), clk.read, ModeIdle)
	if got := m.AveragePower(); got != 0 {
		t.Errorf("AveragePower with no elapsed time = %v, want 0", got)
	}
}

func TestSnapshot(t *testing.T) {
	clk := &fakeClock{}
	m := NewMeter(Cabletron80211(), clk.read, ModeRx)
	clk.advance(5 * time.Second)
	s := m.Snapshot()
	if s.Rx != 5*time.Second || !almostEqual(s.Energy, 5.0, 1e-9) {
		t.Errorf("Snapshot = %+v", s)
	}
	if !almostEqual(s.AveragePower, 1.0, 1e-9) {
		t.Errorf("Snapshot.AveragePower = %v", s.AveragePower)
	}
}

func TestAggregate(t *testing.T) {
	r1 := Report{Energy: 2, AveragePower: 0.2, Sleep: 2 * time.Second}
	r2 := Report{Energy: 4, AveragePower: 0.4, Sleep: 4 * time.Second}
	got := Aggregate([]Report{r1, r2})
	if !almostEqual(got.Energy, 3, 1e-12) || !almostEqual(got.AveragePower, 0.3, 1e-12) {
		t.Errorf("Aggregate = %+v", got)
	}
	if got.Sleep != 3*time.Second {
		t.Errorf("Aggregate.Sleep = %v", got.Sleep)
	}
	if z := Aggregate(nil); z != (Report{}) {
		t.Errorf("Aggregate(nil) = %+v, want zero", z)
	}
}

// Property: mode durations always sum to elapsed time, and energy is
// bounded by [sleepPower, txPower] x elapsed.
func TestQuickTimeConservation(t *testing.T) {
	profile := Cabletron80211()
	f := func(steps []uint8) bool {
		clk := &fakeClock{}
		m := NewMeter(profile, clk.read, ModeSleep)
		var elapsed time.Duration
		for _, s := range steps {
			d := time.Duration(s%100) * time.Millisecond
			clk.advance(d)
			elapsed += d
			m.SetMode(Mode(s%4) + ModeSleep)
		}
		if m.TotalTime() != elapsed {
			return false
		}
		e := m.Energy()
		lo := profile.Sleep * elapsed.Seconds()
		hi := profile.Tx * elapsed.Seconds()
		return e >= lo-1e-9 && e <= hi+1e-9
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Error(err)
	}
}

func TestMeterWithEngineClock(t *testing.T) {
	e := sim.NewEngine(1)
	m := NewMeter(Cabletron80211(), e.Now, ModeIdle)
	e.Schedule(2*time.Second, func() { m.SetMode(ModeSleep) })
	e.Run(10 * time.Second)
	if got := m.ModeTime(ModeIdle); got != 2*time.Second {
		t.Errorf("idle = %v, want 2s", got)
	}
	if got := m.ModeTime(ModeSleep); got != 8*time.Second {
		t.Errorf("sleep = %v, want 8s", got)
	}
}
