// Package netstack provides the network layer of the MobiQuery simulator:
// node runtime objects, port-based message demultiplexing, scoped flooding
// over the always-on backbone, and greedy geographic forwarding with area
// anycast (the SPEED-style primitive the paper uses to deliver prefetch
// messages to pickup points).
//
// Bodies carried in messages are shared by reference between sender and
// receivers for efficiency; handlers must treat them as immutable.
package netstack

import (
	"fmt"
	"math/rand"
	"sort"
	"time"

	"mobiquery/internal/energy"
	"mobiquery/internal/geom"
	"mobiquery/internal/mac"
	"mobiquery/internal/radio"
	"mobiquery/internal/sim"
)

// Port identifies an upper-layer protocol endpoint on a node.
type Port uint8

// Envelope size overheads, in bytes, added to body sizes for airtime
// accounting.
const (
	plainOverhead = 4
	floodOverhead = 16
	geoOverhead   = 16
)

// Handler consumes a message delivered to a port. src is the one-hop sender
// (the last relay for flooded or routed messages).
type Handler func(src radio.NodeID, body any)

// FloodHandler consumes a flooded message. relay is the neighbour the copy
// arrived from (used for parent selection when building query trees), and
// hops counts relay hops from the origin (0 = heard the origin itself).
type FloodHandler func(relay radio.NodeID, origin radio.NodeID, body any, hops int)

// Stats counts network-layer events across all nodes.
type Stats struct {
	FloodsStarted   uint64
	FloodRelays     uint64
	GeoSent         uint64
	GeoDelivered    uint64
	GeoBestEffort   uint64 // delivered at closest reachable node, outside radius
	GeoDropped      uint64 // max hops exceeded or all next hops failed
	GeoLinkFailures uint64 // per-hop delivery failures rerouted or dropped
}

// Network owns the medium and all node runtimes for one simulation.
type Network struct {
	eng         *sim.Engine
	med         *radio.Medium
	macCfg      mac.Config
	profile     energy.Profile
	nodes       map[radio.NodeID]*Node
	order       []radio.NodeID // deterministic iteration order
	neighbors   map[radio.NodeID][]neighbor
	frozen      bool
	stats       Stats
	nextFloodID uint32
	floodJitter time.Duration
	rng         *rand.Rand
}

// neighbor is a precomputed static neighbour table entry.
type neighbor struct {
	id   radio.NodeID
	pos  geom.Point
	role mac.Role
}

// NewNetwork creates an empty network over a fresh medium.
func NewNetwork(eng *sim.Engine, region geom.Rect, radioParams radio.Params, macCfg mac.Config) *Network {
	return &Network{
		eng:         eng,
		med:         radio.NewMedium(eng, region, radioParams),
		macCfg:      macCfg,
		profile:     energy.Cabletron80211(),
		nodes:       make(map[radio.NodeID]*Node),
		neighbors:   make(map[radio.NodeID][]neighbor),
		floodJitter: 15 * time.Millisecond,
		rng:         eng.RNG("netstack"),
	}
}

// SetFloodJitter adjusts the random assessment delay applied before flood
// rebroadcasts. Hidden-terminal relays whose rebroadcasts would otherwise
// start within one airtime of each other collide at common neighbours; the
// jitter (a standard WSN broadcast technique) decorrelates them.
func (nw *Network) SetFloodJitter(d time.Duration) {
	if d < 0 {
		d = 0
	}
	nw.floodJitter = d
}

// Engine returns the simulation engine.
func (nw *Network) Engine() *sim.Engine { return nw.eng }

// Medium returns the shared radio medium.
func (nw *Network) Medium() *radio.Medium { return nw.med }

// Region returns the deployment region.
func (nw *Network) Region() geom.Rect { return nw.med.Region() }

// MACConfig returns the link-layer configuration shared by all nodes.
func (nw *Network) MACConfig() mac.Config { return nw.macCfg }

// Stats returns a snapshot of network-layer counters.
func (nw *Network) Stats() Stats { return nw.stats }

// AddNode creates a sensor node at pos with the given power-management
// role. Nodes must be added before Start.
func (nw *Network) AddNode(id radio.NodeID, pos geom.Point, role mac.Role) *Node {
	return nw.add(id, pos, role, true)
}

// AddProxy creates the mobile user's proxy device: always on, never used as
// a routing relay (it moves), and excluded from static neighbour tables.
func (nw *Network) AddProxy(id radio.NodeID, pos geom.Point) *Node {
	return nw.add(id, pos, mac.RoleAlwaysOn, false)
}

func (nw *Network) add(id radio.NodeID, pos geom.Point, role mac.Role, relay bool) *Node {
	if nw.frozen {
		panic("netstack: AddNode after Start")
	}
	if _, dup := nw.nodes[id]; dup {
		panic(fmt.Sprintf("netstack: duplicate node %d", id))
	}
	rad := nw.med.Attach(id, pos, nil)
	meter := energy.NewMeter(nw.profile, nw.eng.Now, energy.ModeIdle)
	rad.SetMeter(meter)
	n := &Node{
		id:       id,
		net:      nw,
		mac:      mac.New(nw.eng, rad, nw.macCfg, role),
		relay:    relay,
		handlers: make(map[Port]Handler),
		floods:   make(map[Port]FloodHandler),
		seen:     make(map[floodKey]struct{}),
	}
	n.mac.OnReceive(n.onReceive)
	nw.nodes[id] = n
	nw.order = append(nw.order, id)
	return n
}

// Node returns the node with the given id, or nil.
func (nw *Network) Node(id radio.NodeID) *Node { return nw.nodes[id] }

// NodeIDs returns all node ids in creation order.
func (nw *Network) NodeIDs() []radio.NodeID {
	return append([]radio.NodeID(nil), nw.order...)
}

// InRange reports whether two nodes are currently within radio range.
func (nw *Network) InRange(a, b radio.NodeID) bool { return nw.med.InRange(a, b) }

// NodesWithin returns the ids of relay-capable sensor nodes within radius r
// of p, sorted by id for determinism.
func (nw *Network) NodesWithin(p geom.Point, r float64) []radio.NodeID {
	ids := nw.med.NodesWithin(nil, p, r)
	out := ids[:0]
	for _, id := range ids {
		if n := nw.nodes[id]; n != nil && n.relay {
			out = append(out, id)
		}
	}
	sort.Slice(out, func(i, j int) bool { return out[i] < out[j] })
	return out
}

// Start freezes the topology, builds neighbour tables, and arms every
// node's MAC schedule. Call exactly once at simulation time zero.
func (nw *Network) Start() {
	if nw.frozen {
		panic("netstack: Start called twice")
	}
	nw.frozen = true
	nw.buildNeighborTables()
	for _, id := range nw.order {
		nw.nodes[id].mac.Start()
	}
}

// buildNeighborTables precomputes, for every relay node, its relay
// neighbours within communication range, sorted by id. The topology of
// sensor nodes is static (only the proxy moves), so one pass suffices; this
// models the neighbour discovery every WSN routing layer performs at
// deployment time.
func (nw *Network) buildNeighborTables() {
	rangeM := nw.med.Params().Range
	for _, id := range nw.order {
		n := nw.nodes[id]
		if !n.relay {
			continue
		}
		ids := nw.med.NodesWithin(nil, n.Pos(), rangeM)
		tbl := make([]neighbor, 0, len(ids))
		for _, nid := range ids {
			if nid == id {
				continue
			}
			nb := nw.nodes[nid]
			if nb == nil || !nb.relay {
				continue
			}
			tbl = append(tbl, neighbor{id: nid, pos: nb.Pos(), role: nb.Role()})
		}
		sort.Slice(tbl, func(i, j int) bool { return tbl[i].id < tbl[j].id })
		nw.neighbors[id] = tbl
	}
}

// Neighbors returns the ids of node id's relay neighbours (empty before
// Start).
func (nw *Network) Neighbors(id radio.NodeID) []radio.NodeID {
	tbl := nw.neighbors[id]
	out := make([]radio.NodeID, len(tbl))
	for i, nb := range tbl {
		out[i] = nb.id
	}
	return out
}

// floodKey identifies a flood instance for duplicate suppression.
type floodKey struct {
	origin radio.NodeID
	seq    uint32
}

// floodEnvelope is the on-air representation of a flooded message.
type floodEnvelope struct {
	Origin radio.NodeID
	Seq    uint32
	Scope  geom.Circle
	Port   Port
	Body   any
	Size   int
	Hops   int
}

// geoEnvelope is the on-air representation of a geographically routed
// message.
type geoEnvelope struct {
	Target  geom.Point
	Radius  float64
	Port    Port
	Body    any
	Size    int
	Hops    int
	MaxHops int
}

// plainEnvelope carries a direct one-hop message.
type plainEnvelope struct {
	Port Port
	Body any
}

// Node is one device's network runtime: a MAC plus protocol demux.
type Node struct {
	id       radio.NodeID
	net      *Network
	mac      *mac.MAC
	relay    bool
	handlers map[Port]Handler
	floods   map[Port]FloodHandler
	seen     map[floodKey]struct{}
}

// ID returns the node id.
func (n *Node) ID() radio.NodeID { return n.id }

// Pos returns the node's current position.
func (n *Node) Pos() geom.Point { return n.mac.Radio().Pos() }

// Move relocates the node (used by the proxy only).
func (n *Node) Move(p geom.Point) { n.mac.Radio().Move(p) }

// Role returns the node's power-management role.
func (n *Node) Role() mac.Role { return n.mac.Role() }

// MAC exposes the link layer (wake overrides, stats).
func (n *Node) MAC() *mac.MAC { return n.mac }

// Meter returns the node's energy meter.
func (n *Node) Meter() *energy.Meter { return n.mac.Radio().Meter() }

// Handle registers the handler for direct and geographically routed
// messages on a port. Registering twice panics.
func (n *Node) Handle(port Port, h Handler) {
	if _, dup := n.handlers[port]; dup {
		panic(fmt.Sprintf("netstack: node %d: duplicate handler for port %d", n.id, port))
	}
	n.handlers[port] = h
}

// HandleFlood registers the handler for flooded messages on a port.
func (n *Node) HandleFlood(port Port, h FloodHandler) {
	if _, dup := n.floods[port]; dup {
		panic(fmt.Sprintf("netstack: node %d: duplicate flood handler for port %d", n.id, port))
	}
	n.floods[port] = h
}

// Send transmits a one-hop unicast with link-layer retries. done (optional)
// reports the link-layer outcome.
func (n *Node) Send(dst radio.NodeID, port Port, body any, size int, done func(ok bool)) {
	n.mac.Send(dst, plainEnvelope{Port: port, Body: body}, size+plainOverhead, done)
}

// Broadcast transmits a one-hop broadcast.
func (n *Node) Broadcast(port Port, body any, size int) {
	n.mac.Broadcast(plainEnvelope{Port: port, Body: body}, size+plainOverhead)
}

// StartFlood floods body to every node inside scope, relayed by always-on
// nodes within scope. Delivery to this node's own flood handler happens
// immediately.
func (n *Node) StartFlood(scope geom.Circle, port Port, body any, size int) {
	nw := n.net
	nw.nextFloodID++
	nw.stats.FloodsStarted++
	env := floodEnvelope{
		Origin: n.id,
		Seq:    nw.nextFloodID,
		Scope:  scope,
		Port:   port,
		Body:   body,
		Size:   size,
	}
	n.seen[floodKey{env.Origin, env.Seq}] = struct{}{}
	if h := n.floods[port]; h != nil {
		h(n.id, n.id, body, 0)
	}
	n.mac.Broadcast(env, size+floodOverhead)
}

// GeoSend routes body toward target with greedy geographic forwarding over
// always-on relay neighbours, delivering to the first node within radius of
// target (area anycast). If the greedy walk reaches a node with no closer
// neighbour, the message is delivered there best-effort.
func (n *Node) GeoSend(target geom.Point, radius float64, port Port, body any, size int) {
	n.net.stats.GeoSent++
	env := &geoEnvelope{
		Target:  target,
		Radius:  radius,
		Port:    port,
		Body:    body,
		Size:    size,
		MaxHops: 64,
	}
	n.routeGeo(env)
}

// routeGeo delivers env locally or forwards it one greedy hop.
func (n *Node) routeGeo(env *geoEnvelope) {
	if n.Pos().Within(env.Target, env.Radius) {
		n.net.stats.GeoDelivered++
		n.deliver(env.Port, n.id, env.Body)
		return
	}
	if env.Hops >= env.MaxHops {
		n.net.stats.GeoDropped++
		return
	}
	n.tryNextHop(env, nil)
}

// tryNextHop attempts forwarding to the best not-yet-failed neighbour with
// strict progress toward the target. Link failures fall back to the next
// candidate; with no candidates left the message is delivered here
// best-effort (the caller becomes the collector, per the paper's provision
// that Rp "may vary depending on the density").
func (n *Node) tryNextHop(env *geoEnvelope, failed map[radio.NodeID]bool) {
	myDist := n.Pos().Dist(env.Target)
	var best radio.NodeID = -1
	bestDist := myDist
	for _, nb := range n.relayNeighbors() {
		if nb.role != mac.RoleAlwaysOn || failed[nb.id] {
			continue
		}
		if d := nb.pos.Dist(env.Target); d < bestDist {
			best, bestDist = nb.id, d
		}
	}
	if best < 0 {
		n.net.stats.GeoBestEffort++
		n.deliver(env.Port, n.id, env.Body)
		return
	}
	fwd := *env
	fwd.Hops++
	n.mac.Send(best, fwd, env.Size+geoOverhead, func(ok bool) {
		if ok {
			return
		}
		n.net.stats.GeoLinkFailures++
		if failed == nil {
			failed = make(map[radio.NodeID]bool)
		}
		failed[best] = true
		n.tryNextHop(env, failed)
	})
}

// relayNeighbors returns the node's forwarding candidates: the static
// table for fixed sensor nodes, or a live range query for the mobile proxy
// (whose neighbourhood changes as it moves).
func (n *Node) relayNeighbors() []neighbor {
	if n.relay {
		return n.net.neighbors[n.id]
	}
	ids := n.net.med.NodesWithin(nil, n.Pos(), n.net.med.Params().Range)
	tbl := make([]neighbor, 0, len(ids))
	for _, id := range ids {
		if id == n.id {
			continue
		}
		nb := n.net.nodes[id]
		if nb == nil || !nb.relay {
			continue
		}
		tbl = append(tbl, neighbor{id: id, pos: nb.Pos(), role: nb.Role()})
	}
	sort.Slice(tbl, func(i, j int) bool { return tbl[i].id < tbl[j].id })
	return tbl
}

// onReceive demultiplexes MAC deliveries.
func (n *Node) onReceive(src radio.NodeID, payload any) {
	switch env := payload.(type) {
	case plainEnvelope:
		n.deliver(env.Port, src, env.Body)
	case floodEnvelope:
		n.onFlood(src, env)
	case geoEnvelope:
		env.Hops++ // count the hop just taken
		n.routeGeo(&env)
	}
}

// onFlood handles one copy of a flooded message.
func (n *Node) onFlood(relay radio.NodeID, env floodEnvelope) {
	key := floodKey{env.Origin, env.Seq}
	if _, dup := n.seen[key]; dup {
		return
	}
	n.seen[key] = struct{}{}
	if h := n.floods[env.Port]; h != nil {
		h(relay, env.Origin, env.Body, env.Hops+1)
	}
	// Only always-on nodes inside the scope relay the flood; duty-cycled
	// nodes are leaves (they would burn energy staying awake to relay).
	if n.Role() != mac.RoleAlwaysOn || !n.relay || !env.Scope.Contains(n.Pos()) {
		return
	}
	n.net.stats.FloodRelays++
	fwd := env
	fwd.Hops++
	if j := n.net.floodJitter; j > 0 {
		delay := time.Duration(n.net.rng.Int63n(int64(j)))
		n.net.eng.After(delay, func() { n.mac.Broadcast(fwd, env.Size+floodOverhead) })
		return
	}
	n.mac.Broadcast(fwd, env.Size+floodOverhead)
}

// deliver hands a message body to the registered port handler.
func (n *Node) deliver(port Port, src radio.NodeID, body any) {
	if h := n.handlers[port]; h != nil {
		h(src, body)
	}
}

// ResetFloodCache clears the duplicate-suppression cache. Long-running
// simulations call this between query sessions to bound memory.
func (n *Node) ResetFloodCache() {
	n.seen = make(map[floodKey]struct{})
}

// Airtime exposes the medium airtime for a payload of the given size plus
// envelope and MAC overheads; used by upper layers to size timeouts.
func (nw *Network) Airtime(bodySize int) time.Duration {
	return nw.med.Params().Airtime(bodySize + plainOverhead + nw.macCfg.HeaderSize)
}
