package netstack

import (
	"testing"
	"time"

	"mobiquery/internal/geom"
	"mobiquery/internal/mac"
	"mobiquery/internal/radio"
	"mobiquery/internal/sim"
)

const (
	portTest  Port = 1
	portFlood Port = 2
)

func newNet(seed int64) (*sim.Engine, *Network) {
	eng := sim.NewEngine(seed)
	nw := NewNetwork(eng, geom.Square(450), radio.DefaultParams(), mac.DefaultConfig(3*time.Second))
	return eng, nw
}

func TestSendAndPortDemux(t *testing.T) {
	eng, nw := newNet(1)
	a := nw.AddNode(0, geom.Pt(0, 0), mac.RoleAlwaysOn)
	b := nw.AddNode(1, geom.Pt(50, 0), mac.RoleAlwaysOn)

	var gotBody any
	var gotSrc radio.NodeID = -2
	var otherPort bool
	b.Handle(portTest, func(src radio.NodeID, body any) { gotSrc, gotBody = src, body })
	b.Handle(portTest+1, func(radio.NodeID, any) { otherPort = true })
	nw.Start()

	var ok bool
	eng.Schedule(0, func() { a.Send(1, portTest, "payload", 40, func(res bool) { ok = res }) })
	eng.Run(time.Second)

	if gotBody != "payload" || gotSrc != 0 || !ok {
		t.Errorf("delivery: body=%v src=%v ok=%v", gotBody, gotSrc, ok)
	}
	if otherPort {
		t.Error("message leaked to wrong port")
	}
}

func TestBroadcastDemux(t *testing.T) {
	eng, nw := newNet(1)
	a := nw.AddNode(0, geom.Pt(100, 100), mac.RoleAlwaysOn)
	b := nw.AddNode(1, geom.Pt(150, 100), mac.RoleAlwaysOn)
	count := 0
	b.Handle(portTest, func(radio.NodeID, any) { count++ })
	nw.Start()
	eng.Schedule(0, func() { a.Broadcast(portTest, "hi", 30) })
	eng.Run(time.Second)
	if count != 1 {
		t.Errorf("broadcast delivered %d times, want 1", count)
	}
}

func TestDuplicateHandlerPanics(t *testing.T) {
	_, nw := newNet(1)
	a := nw.AddNode(0, geom.Pt(0, 0), mac.RoleAlwaysOn)
	a.Handle(portTest, func(radio.NodeID, any) {})
	defer func() {
		if recover() == nil {
			t.Error("duplicate Handle should panic")
		}
	}()
	a.Handle(portTest, func(radio.NodeID, any) {})
}

func TestFloodReachesScopeOverMultipleHops(t *testing.T) {
	eng, nw := newNet(1)
	// A chain of always-on nodes 80 m apart; range is 105 m so floods must
	// relay hop by hop.
	var nodes []*Node
	for i := 0; i < 5; i++ {
		nodes = append(nodes, nw.AddNode(radio.NodeID(i), geom.Pt(float64(i)*80, 100), mac.RoleAlwaysOn))
	}
	got := make(map[radio.NodeID]int)
	hops := make(map[radio.NodeID]int)
	for _, n := range nodes {
		n := n
		n.HandleFlood(portFlood, func(relay, origin radio.NodeID, body any, h int) {
			got[n.ID()]++
			hops[n.ID()] = h
			if origin != 0 {
				t.Errorf("origin = %v, want 0", origin)
			}
			if body != "setup" {
				t.Errorf("body = %v", body)
			}
		})
	}
	nw.Start()
	scope := geom.Circle{C: geom.Pt(160, 100), R: 400}
	eng.Schedule(0, func() { nodes[0].StartFlood(scope, portFlood, "setup", 50) })
	eng.Run(time.Second)

	for i := 0; i < 5; i++ {
		if got[radio.NodeID(i)] != 1 {
			t.Errorf("node %d delivered %d times, want exactly 1 (dedup)", i, got[radio.NodeID(i)])
		}
	}
	if hops[0] != 0 {
		t.Errorf("origin hops = %d, want 0", hops[0])
	}
	if hops[4] < 2 {
		t.Errorf("far node hops = %d, want >= 2", hops[4])
	}
}

func TestFloodScopeLimitsRelaying(t *testing.T) {
	eng, nw := newNet(1)
	// Node 2 is outside the scope: it may hear the flood from node 1 but
	// must not relay it to node 3.
	n0 := nw.AddNode(0, geom.Pt(0, 100), mac.RoleAlwaysOn)
	nw.AddNode(1, geom.Pt(80, 100), mac.RoleAlwaysOn)
	nw.AddNode(2, geom.Pt(160, 100), mac.RoleAlwaysOn)
	n3 := nw.AddNode(3, geom.Pt(240, 100), mac.RoleAlwaysOn)
	reached3 := false
	n3.HandleFlood(portFlood, func(_, _ radio.NodeID, _ any, _ int) { reached3 = true })
	nw.Start()

	scope := geom.Circle{C: geom.Pt(0, 100), R: 100} // only nodes 0 and 1 inside
	eng.Schedule(0, func() { n0.StartFlood(scope, portFlood, "x", 50) })
	eng.Run(time.Second)
	if reached3 {
		t.Error("flood escaped its scope through an out-of-scope relay")
	}
}

func TestFloodNotRelayedByDutyCycledNodes(t *testing.T) {
	eng, nw := newNet(1)
	n0 := nw.AddNode(0, geom.Pt(0, 100), mac.RoleAlwaysOn)
	// Node 1 is duty-cycled: awake at t=0 (active window) so it hears the
	// flood, but as a leaf it must not relay.
	nw.AddNode(1, geom.Pt(80, 100), mac.RoleDutyCycled)
	n2 := nw.AddNode(2, geom.Pt(160, 100), mac.RoleAlwaysOn)
	reached2 := false
	n2.HandleFlood(portFlood, func(_, _ radio.NodeID, _ any, _ int) { reached2 = true })
	nw.Start()

	scope := geom.Circle{C: geom.Pt(80, 100), R: 300}
	eng.Schedule(time.Millisecond, func() { n0.StartFlood(scope, portFlood, "x", 50) })
	eng.Run(time.Second)
	if reached2 {
		t.Error("duty-cycled node relayed a flood")
	}
}

func TestGeoSendDeliversWithinRadius(t *testing.T) {
	eng, nw := newNet(1)
	var nodes []*Node
	for i := 0; i < 6; i++ {
		nodes = append(nodes, nw.AddNode(radio.NodeID(i), geom.Pt(float64(i)*80, 100), mac.RoleAlwaysOn))
	}
	var deliveredAt radio.NodeID = -1
	for _, n := range nodes {
		n := n
		n.Handle(portTest, func(src radio.NodeID, body any) {
			deliveredAt = n.ID()
			if body != "prefetch" {
				t.Errorf("body = %v", body)
			}
		})
	}
	nw.Start()

	target := geom.Pt(400, 100) // node 5 sits exactly there
	eng.Schedule(0, func() { nodes[0].GeoSend(target, 40, portTest, "prefetch", 60) })
	eng.Run(time.Second)

	if deliveredAt != 5 {
		t.Errorf("anycast delivered at node %d, want 5", deliveredAt)
	}
	if nw.Stats().GeoDelivered != 1 {
		t.Errorf("stats = %+v", nw.Stats())
	}
}

func TestGeoSendLocalDelivery(t *testing.T) {
	eng, nw := newNet(1)
	a := nw.AddNode(0, geom.Pt(100, 100), mac.RoleAlwaysOn)
	hit := false
	a.Handle(portTest, func(radio.NodeID, any) { hit = true })
	nw.Start()
	eng.Schedule(0, func() { a.GeoSend(geom.Pt(110, 100), 50, portTest, "x", 10) })
	eng.Run(time.Second)
	if !hit {
		t.Error("GeoSend within radius of self should deliver locally")
	}
	if nw.Stats().GeoSent != 1 || nw.Stats().GeoDelivered != 1 {
		t.Errorf("stats = %+v", nw.Stats())
	}
}

func TestGeoSendBestEffortAtVoid(t *testing.T) {
	eng, nw := newNet(1)
	// Two nodes near the origin; the target is far away with no relay
	// toward it. The walk should stop at the node closest to the target.
	a := nw.AddNode(0, geom.Pt(0, 100), mac.RoleAlwaysOn)
	b := nw.AddNode(1, geom.Pt(80, 100), mac.RoleAlwaysOn)
	var deliveredAt radio.NodeID = -1
	for _, n := range []*Node{a, b} {
		n := n
		n.Handle(portTest, func(radio.NodeID, any) { deliveredAt = n.ID() })
	}
	nw.Start()
	eng.Schedule(0, func() { a.GeoSend(geom.Pt(440, 100), 10, portTest, "x", 10) })
	eng.Run(time.Second)
	if deliveredAt != 1 {
		t.Errorf("best-effort delivery at node %d, want 1 (closest)", deliveredAt)
	}
	if nw.Stats().GeoBestEffort != 1 {
		t.Errorf("stats = %+v", nw.Stats())
	}
}

func TestGeoSendReroutesAroundDeadLink(t *testing.T) {
	eng, nw := newNet(1)
	a := nw.AddNode(0, geom.Pt(0, 100), mac.RoleAlwaysOn)
	// b is the greedy choice; c is the detour. After Start, b is moved out
	// of range so the a->b link fails and routing must fall back to c.
	b := nw.AddNode(1, geom.Pt(90, 100), mac.RoleAlwaysOn)
	c := nw.AddNode(2, geom.Pt(70, 140), mac.RoleAlwaysOn)
	d := nw.AddNode(3, geom.Pt(150, 140), mac.RoleAlwaysOn)
	var deliveredAt radio.NodeID = -1
	for _, n := range []*Node{a, b, c, d} {
		n := n
		n.Handle(portTest, func(radio.NodeID, any) { deliveredAt = n.ID() })
	}
	nw.Start()
	eng.Schedule(0, func() {
		b.Move(geom.Pt(400, 400)) // stale neighbour table entry
		a.GeoSend(geom.Pt(150, 140), 20, portTest, "x", 10)
	})
	eng.Run(2 * time.Second)
	if deliveredAt != 3 {
		t.Errorf("delivered at node %d, want 3 via detour", deliveredAt)
	}
	if nw.Stats().GeoLinkFailures == 0 {
		t.Error("expected a recorded link failure")
	}
}

func TestNeighborsSortedAndFiltered(t *testing.T) {
	_, nw := newNet(1)
	nw.AddNode(3, geom.Pt(100, 100), mac.RoleAlwaysOn)
	nw.AddNode(1, geom.Pt(150, 100), mac.RoleAlwaysOn)
	nw.AddNode(2, geom.Pt(100, 160), mac.RoleDutyCycled)
	nw.AddProxy(99, geom.Pt(110, 100))
	nw.AddNode(4, geom.Pt(400, 400), mac.RoleAlwaysOn) // out of range
	nw.Start()

	got := nw.Neighbors(3)
	want := []radio.NodeID{1, 2}
	if len(got) != len(want) || got[0] != want[0] || got[1] != want[1] {
		t.Errorf("Neighbors(3) = %v, want %v (sorted, no proxy, no far node)", got, want)
	}
}

func TestNodesWithinExcludesProxy(t *testing.T) {
	_, nw := newNet(1)
	nw.AddNode(0, geom.Pt(100, 100), mac.RoleAlwaysOn)
	nw.AddNode(1, geom.Pt(120, 100), mac.RoleDutyCycled)
	nw.AddProxy(99, geom.Pt(105, 100))
	got := nw.NodesWithin(geom.Pt(100, 100), 50)
	if len(got) != 2 || got[0] != 0 || got[1] != 1 {
		t.Errorf("NodesWithin = %v, want [0 1]", got)
	}
}

func TestAddAfterStartPanics(t *testing.T) {
	_, nw := newNet(1)
	nw.AddNode(0, geom.Pt(0, 0), mac.RoleAlwaysOn)
	nw.Start()
	defer func() {
		if recover() == nil {
			t.Error("AddNode after Start should panic")
		}
	}()
	nw.AddNode(1, geom.Pt(1, 1), mac.RoleAlwaysOn)
}

func TestDuplicateNodePanics(t *testing.T) {
	_, nw := newNet(1)
	nw.AddNode(0, geom.Pt(0, 0), mac.RoleAlwaysOn)
	defer func() {
		if recover() == nil {
			t.Error("duplicate AddNode should panic")
		}
	}()
	nw.AddNode(0, geom.Pt(1, 1), mac.RoleAlwaysOn)
}

func TestResetFloodCacheAllowsRedelivery(t *testing.T) {
	eng, nw := newNet(1)
	a := nw.AddNode(0, geom.Pt(0, 100), mac.RoleAlwaysOn)
	b := nw.AddNode(1, geom.Pt(80, 100), mac.RoleAlwaysOn)
	count := 0
	b.HandleFlood(portFlood, func(_, _ radio.NodeID, _ any, _ int) { count++ })
	nw.Start()
	scope := geom.Circle{C: geom.Pt(40, 100), R: 200}
	eng.Schedule(0, func() { a.StartFlood(scope, portFlood, "x", 10) })
	eng.Schedule(100*time.Millisecond, func() {
		b.ResetFloodCache()
		a.StartFlood(scope, portFlood, "y", 10)
	})
	eng.Run(time.Second)
	if count != 2 {
		t.Errorf("flood deliveries = %d, want 2", count)
	}
}

func TestProxyMoveTracksRange(t *testing.T) {
	eng, nw := newNet(1)
	nw.AddNode(0, geom.Pt(0, 0), mac.RoleAlwaysOn)
	p := nw.AddProxy(99, geom.Pt(400, 400))
	nw.Start()
	if nw.InRange(0, 99) {
		t.Error("proxy should start out of range")
	}
	eng.Schedule(0, func() { p.Move(geom.Pt(50, 0)) })
	eng.Run(time.Millisecond)
	if !nw.InRange(0, 99) {
		t.Error("moved proxy should be in range")
	}
}

func TestNodeIDsOrder(t *testing.T) {
	_, nw := newNet(1)
	nw.AddNode(5, geom.Pt(0, 0), mac.RoleAlwaysOn)
	nw.AddNode(2, geom.Pt(1, 1), mac.RoleAlwaysOn)
	ids := nw.NodeIDs()
	if len(ids) != 2 || ids[0] != 5 || ids[1] != 2 {
		t.Errorf("NodeIDs = %v, want creation order [5 2]", ids)
	}
}
