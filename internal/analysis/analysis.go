// Package analysis implements the closed-form results of the paper's
// Section 5: the just-in-time prefetch forwarding time (eq. 10), storage
// cost of greedy vs. just-in-time prefetching (eqs. 11-13), the warmup
// interval bound (eq. 16), and the network contention analysis (eqs. 17-18
// and the v* speed threshold). The experiment harness cross-checks these
// formulas against simulation.
package analysis

import (
	"fmt"
	"math"
	"time"
)

// QueryParams bundles the quantities the Section 5 formulas share.
type QueryParams struct {
	Period time.Duration // Tperiod
	Fresh  time.Duration // Tfresh
	Sleep  time.Duration // Tsleep
}

// Validate reports parameter errors.
func (q QueryParams) Validate() error {
	if q.Period <= 0 || q.Fresh <= 0 || q.Sleep <= 0 {
		return fmt.Errorf("analysis: Period, Fresh, Sleep must all be positive")
	}
	return nil
}

// PrefetchForwardTime returns the equation (10) upper bound on when the
// (k-1)th collector must forward the prefetch message, relative to the
// query issue time: (k-1)*Tperiod - Tsleep - 2*Tfresh.
func PrefetchForwardTime(q QueryParams, k int) time.Duration {
	return time.Duration(k-1)*q.Period - q.Sleep - 2*q.Fresh
}

// PrefetchSpeed returns vprfh in meters/second for a prefetch hop of the
// given distance, hop count, message size (bytes) and effective bandwidth
// (bits/second) — the Section 5.2 estimate.
func PrefetchSpeed(distanceM float64, hops int, messageBytes int, effectiveBandwidth float64) float64 {
	if distanceM <= 0 || hops <= 0 || messageBytes <= 0 || effectiveBandwidth <= 0 {
		panic("analysis: PrefetchSpeed arguments must be positive")
	}
	perHop := float64(messageBytes*8) / effectiveBandwidth // seconds
	return distanceM / (float64(hops) * perHop)
}

// MetersPerSecondToMPH converts m/s to miles per hour, the unit the paper
// quotes for vprfh and v*.
func MetersPerSecondToMPH(ms float64) float64 { return ms * 3600 / 1609.344 }

// StorageGreedy returns PLgp, the worst-case number of query trees set up
// ahead of the user under greedy prefetching (eq. 11).
func StorageGreedy(q QueryParams, lifetime time.Duration, userSpeed, prefetchSpeed float64) int {
	if userSpeed <= 0 || prefetchSpeed <= 0 {
		panic("analysis: speeds must be positive")
	}
	total := int(lifetime / q.Period)
	visited := int(float64(lifetime/q.Period) * userSpeed / prefetchSpeed)
	return total - visited
}

// StorageJIT returns PLjit, the constant number of query trees set up ahead
// of the user under just-in-time prefetching (eq. 12):
// ceil((Tsleep + 2*Tfresh)/Tperiod) + 1.
func StorageJIT(q QueryParams) int {
	return int(math.Ceil(float64(q.Sleep+2*q.Fresh)/float64(q.Period))) + 1
}

// StorageCrossover returns the minimum query lifetime Td beyond which
// greedy prefetching stores more than just-in-time prefetching (eq. 13).
func StorageCrossover(q QueryParams, userSpeed, prefetchSpeed float64) time.Duration {
	if userSpeed <= 0 || prefetchSpeed <= 0 || userSpeed >= prefetchSpeed {
		panic("analysis: need 0 < userSpeed < prefetchSpeed")
	}
	num := float64(q.Sleep + 2*q.Fresh + q.Period)
	return time.Duration(num / (1 - userSpeed/prefetchSpeed))
}

// WarmupPeriods returns the equation (16) bound on the number of query
// periods in the warmup interval after a motion profile with advance time
// Ta is issued. Zero means no warmup.
func WarmupPeriods(q QueryParams, ta time.Duration, userSpeed, prefetchSpeed float64) int {
	if userSpeed <= 0 || prefetchSpeed <= 0 || userSpeed >= prefetchSpeed {
		panic("analysis: need 0 < userSpeed < prefetchSpeed")
	}
	ratio := 1 - userSpeed/prefetchSpeed
	num := float64(q.Sleep+2*q.Fresh) - ratio*float64(ta)
	den := float64(q.Period) * ratio
	k := int(math.Ceil(num / den))
	if k < 0 {
		k = 0
	}
	return k
}

// WarmupInterval returns Tw = k*Tperiod per equation (16).
func WarmupInterval(q QueryParams, ta time.Duration, userSpeed, prefetchSpeed float64) time.Duration {
	return time.Duration(WarmupPeriods(q, ta, userSpeed, prefetchSpeed)) * q.Period
}

// WarmupZeroAdvance returns the advance time Ta at which the warmup
// interval vanishes: (2*Tfresh + Tsleep)/(1 - vuser/vprfh).
func WarmupZeroAdvance(q QueryParams, userSpeed, prefetchSpeed float64) time.Duration {
	if userSpeed <= 0 || prefetchSpeed <= 0 || userSpeed >= prefetchSpeed {
		panic("analysis: need 0 < userSpeed < prefetchSpeed")
	}
	return time.Duration(float64(2*q.Fresh+q.Sleep) / (1 - userSpeed/prefetchSpeed))
}

// ContentionParams extends QueryParams with the geometry of Section 5.4.
type ContentionParams struct {
	QueryParams
	QueryRadius float64 // Rq
	CommRange   float64 // Rc
}

// SpatialInterferers returns Ms (eq. 17): the number of trees whose roots
// lie close enough to interfere with a given tree's setup.
func (c ContentionParams) SpatialInterferers(userSpeed float64) int {
	if userSpeed <= 0 {
		panic("analysis: userSpeed must be positive")
	}
	return int(math.Ceil((4*c.QueryRadius + 2*c.CommRange) / (userSpeed * c.Period.Seconds())))
}

// TemporalInterferersGreedy returns the eq. (18) bound on Mt-gp: trees
// whose setup overlaps in time under greedy prefetching.
func (c ContentionParams) TemporalInterferersGreedy(userSpeed, prefetchSpeed float64) int {
	if userSpeed <= 0 || prefetchSpeed <= 0 {
		panic("analysis: speeds must be positive")
	}
	num := (c.Sleep + c.Fresh).Seconds() * prefetchSpeed
	den := c.Period.Seconds() * userSpeed
	return int(math.Ceil(num / den))
}

// TemporalInterferersJIT returns Mt-jit = ceil(Ttree/Tperiod) with the
// paper's Ttree <= Tsleep + Tfresh bound.
func (c ContentionParams) TemporalInterferersJIT() int {
	return int(math.Ceil(float64(c.Sleep+c.Fresh) / float64(c.Period)))
}

// InterferenceGreedy returns Mgp = min(Mt-gp, Ms).
func (c ContentionParams) InterferenceGreedy(userSpeed, prefetchSpeed float64) int {
	ms := c.SpatialInterferers(userSpeed)
	mt := c.TemporalInterferersGreedy(userSpeed, prefetchSpeed)
	if mt < ms {
		return mt
	}
	return ms
}

// InterferenceJIT returns Mjit = min(Mt-jit, Ms).
func (c ContentionParams) InterferenceJIT(userSpeed float64) int {
	ms := c.SpatialInterferers(userSpeed)
	mt := c.TemporalInterferersJIT()
	if mt < ms {
		return mt
	}
	return ms
}

// CriticalSpeed returns v* = (2*Rc + 4*Rq)/(Tsleep + Tfresh) in m/s: below
// it just-in-time prefetching has strictly lower contention than greedy
// (Section 5.4's case analysis).
func (c ContentionParams) CriticalSpeed() float64 {
	return (2*c.CommRange + 4*c.QueryRadius) / (c.Sleep + c.Fresh).Seconds()
}

// ContentionRegime classifies the Section 5.4 case analysis for the given
// speeds, returning a short human-readable verdict.
func (c ContentionParams) ContentionRegime(userSpeed, prefetchSpeed float64) string {
	vstar := c.CriticalSpeed()
	switch {
	case userSpeed > vstar:
		return "user faster than v*: JIT and greedy contention equal (both spatially limited)"
	case prefetchSpeed > vstar:
		return "user below v*: JIT contention strictly lower (temporally limited) than greedy (spatially limited)"
	default:
		return "prefetch speed below v*: JIT temporally limited, greedy temporally limited, JIT still lower"
	}
}
