package analysis

import (
	"math"
	"testing"
	"time"
)

// sec is a shorthand for durations in seconds.
func sec(s float64) time.Duration { return time.Duration(s * float64(time.Second)) }

// paperStorageParams are the Section 5.2 worked example: a human walking at
// 4 m/s, query every 10 s for 600 s, Tfresh 5 s, Tsleep 15 s.
func paperStorageParams() QueryParams {
	return QueryParams{Period: 10 * time.Second, Fresh: 5 * time.Second, Sleep: 15 * time.Second}
}

func TestPrefetchForwardTime(t *testing.T) {
	q := QueryParams{Period: 2 * time.Second, Fresh: time.Second, Sleep: 15 * time.Second}
	// Equation (10): tsend(k-1) <= (k-1)*2 - 15 - 2.
	if got := PrefetchForwardTime(q, 10); got != sec(18-17) {
		t.Errorf("PrefetchForwardTime(10) = %v, want 1s", got)
	}
	if got := PrefetchForwardTime(q, 1); got != sec(-17) {
		t.Errorf("PrefetchForwardTime(1) = %v, want -17s (warmup)", got)
	}
}

func TestPrefetchSpeedPaperExample(t *testing.T) {
	// Section 5.2: 100 m, 5 hops, 60-byte message, 5 kbps effective
	// bandwidth: vprfh ~ 469 mph.
	v := PrefetchSpeed(100, 5, 60, 5000)
	mph := MetersPerSecondToMPH(v)
	if math.Abs(mph-466) > 10 {
		t.Errorf("vprfh = %.0f mph, paper quotes ~469 mph", mph)
	}
}

func TestStorageJITPaperExample(t *testing.T) {
	// Section 5.2: Tsleep=15, Tfresh=5, Tperiod=10 -> PLjit = ceil(25/10)+1 = 4.
	if got := StorageJIT(paperStorageParams()); got != 4 {
		t.Errorf("PLjit = %d, want 4 (paper example)", got)
	}
}

func TestStorageJITEvaluationSettings(t *testing.T) {
	// The evaluation settings: Tperiod=2s, Tfresh=1s.
	tests := []struct {
		sleep time.Duration
		want  int
	}{
		{3 * time.Second, 4},
		{9 * time.Second, 7},
		{15 * time.Second, 10},
	}
	for _, tt := range tests {
		q := QueryParams{Period: 2 * time.Second, Fresh: time.Second, Sleep: tt.sleep}
		if got := StorageJIT(q); got != tt.want {
			t.Errorf("PLjit(sleep=%v) = %d, want %d", tt.sleep, got, tt.want)
		}
	}
}

func TestStorageGreedyPaperExample(t *testing.T) {
	// Section 5.2: 4 m/s user, 600 s query, vprfh >> vuser: PLgp ~ 58-60
	// ("as high as 58"), i.e. nearly all 60 trees outstanding.
	q := paperStorageParams()
	vprfh := PrefetchSpeed(100, 5, 60, 5000) // ~210 m/s
	got := StorageGreedy(q, 600*time.Second, 4, vprfh)
	if got < 58 || got > 60 {
		t.Errorf("PLgp = %d, paper quotes 58", got)
	}
	// The paper's storage ratio: about 14.5x JIT.
	ratio := float64(got) / float64(StorageJIT(q))
	if ratio < 14 || ratio > 15.1 {
		t.Errorf("storage ratio = %.1f, paper quotes 14.5", ratio)
	}
}

func TestStorageCrossover(t *testing.T) {
	q := paperStorageParams()
	vprfh := 210.0
	td := StorageCrossover(q, 4, vprfh)
	// Eq. (13): (15+10+10)/(1-4/210) ~ 35.7s.
	if td < sec(35) || td > sec(37) {
		t.Errorf("crossover Td = %v, want about 35.7s", td)
	}
	// Beyond the crossover, greedy stores more.
	if gp := StorageGreedy(q, 600*time.Second, 4, vprfh); gp <= StorageJIT(q) {
		t.Errorf("beyond crossover greedy (%d) should exceed JIT (%d)", gp, StorageJIT(q))
	}
}

func TestWarmupBoundPaperApproximation(t *testing.T) {
	// Section 5.3: with vprfh >> vuser, Tw ~ Tsleep + 2*Tfresh - Ta.
	q := QueryParams{Period: 2 * time.Second, Fresh: time.Second, Sleep: 9 * time.Second}
	for _, ta := range []time.Duration{-8 * time.Second, 0, 6 * time.Second} {
		tw := WarmupInterval(q, ta, 4, 200)
		approx := q.Sleep + 2*q.Fresh - ta
		if diff := (tw - approx).Abs(); diff > q.Period {
			t.Errorf("Ta=%v: Tw=%v vs approximation %v differ by more than one period", ta, tw, approx)
		}
	}
}

func TestWarmupZeroAtLargeAdvance(t *testing.T) {
	q := QueryParams{Period: 2 * time.Second, Fresh: time.Second, Sleep: 9 * time.Second}
	zero := WarmupZeroAdvance(q, 4, 200)
	// Paper: "about 11 seconds for a sleep period of 9 seconds".
	if zero < sec(11) || zero > sec(11.5) {
		t.Errorf("zero-warmup Ta = %v, paper quotes about 11s", zero)
	}
	if k := WarmupPeriods(q, zero+time.Second, 4, 200); k != 0 {
		t.Errorf("warmup with Ta beyond threshold = %d periods, want 0", k)
	}
	if k := WarmupPeriods(q, -8*time.Second, 4, 200); k <= 0 {
		t.Errorf("negative Ta must give positive warmup, got %d", k)
	}
}

func TestWarmupMonotoneInTa(t *testing.T) {
	q := QueryParams{Period: 2 * time.Second, Fresh: time.Second, Sleep: 15 * time.Second}
	prev := math.MaxInt
	for ta := -10; ta <= 20; ta += 2 {
		k := WarmupPeriods(q, time.Duration(ta)*time.Second, 4, 200)
		if k > prev {
			t.Fatalf("warmup not monotone: Ta=%ds gives %d > previous %d", ta, k, prev)
		}
		prev = k
	}
}

// paperContention is the Section 5.4 worked example: Rc=50, Rq=150,
// Tsleep=9s, Tfresh=3s, Tperiod=5s.
func paperContention() ContentionParams {
	return ContentionParams{
		QueryParams: QueryParams{Period: 5 * time.Second, Fresh: 3 * time.Second, Sleep: 9 * time.Second},
		QueryRadius: 150,
		CommRange:   50,
	}
}

func TestCriticalSpeedPaperExample(t *testing.T) {
	// v* = (2*50 + 4*150)/(9+3) = 58.33 m/s ~ 131 mph.
	c := paperContention()
	mph := MetersPerSecondToMPH(c.CriticalSpeed())
	if math.Abs(mph-130.5) > 2 {
		t.Errorf("v* = %.1f mph, paper quotes ~131 mph", mph)
	}
}

func TestInterferencePaperExample(t *testing.T) {
	// Paper: walking at 4 m/s with query every 5s: about 4 interfering
	// trees under JIT, 35 under greedy.
	c := paperContention()
	jit := c.InterferenceJIT(4)
	if jit < 3 || jit > 4 {
		t.Errorf("Mjit = %d, paper quotes about 4", jit)
	}
	gp := c.InterferenceGreedy(4, 200)
	if gp < 30 || gp > 40 {
		t.Errorf("Mgp = %d, paper quotes about 35", gp)
	}
	if jit >= gp {
		t.Errorf("JIT interference (%d) must be below greedy (%d) for walking users", jit, gp)
	}
}

func TestInterferenceEqualAboveCriticalSpeed(t *testing.T) {
	c := paperContention()
	fast := c.CriticalSpeed() * 1.5
	// Above v* both schemes hit the spatial limit Ms.
	if c.InterferenceJIT(fast) != c.InterferenceGreedy(fast, fast*10) {
		t.Error("above v*, JIT and greedy interference should coincide")
	}
}

func TestContentionRegime(t *testing.T) {
	c := paperContention()
	if got := c.ContentionRegime(4, 200); got == "" || got[0:4] != "user" {
		t.Errorf("regime for walking user = %q", got)
	}
	fast := c.CriticalSpeed() * 2
	if got := c.ContentionRegime(fast, fast*10); got == "" {
		t.Error("regime for fast user empty")
	}
}

func TestValidate(t *testing.T) {
	if err := (QueryParams{}).Validate(); err == nil {
		t.Error("zero params should fail validation")
	}
	if err := paperStorageParams().Validate(); err != nil {
		t.Errorf("paper params invalid: %v", err)
	}
}

func TestPanicsOnBadArguments(t *testing.T) {
	mustPanic := func(name string, f func()) {
		defer func() {
			if recover() == nil {
				t.Errorf("%s should panic", name)
			}
		}()
		f()
	}
	q := paperStorageParams()
	mustPanic("PrefetchSpeed", func() { PrefetchSpeed(0, 5, 60, 5000) })
	mustPanic("StorageGreedy", func() { StorageGreedy(q, time.Minute, 0, 10) })
	mustPanic("StorageCrossover", func() { StorageCrossover(q, 10, 5) })
	mustPanic("WarmupPeriods", func() { WarmupPeriods(q, 0, 5, 5) })
	mustPanic("SpatialInterferers", func() { paperContention().SpatialInterferers(0) })
}
