package ccp

import (
	"math/rand"
	"testing"

	"mobiquery/internal/deploy"
	"mobiquery/internal/geom"
)

func paperTopology(seed int64) deploy.Topology {
	rng := rand.New(rand.NewSource(seed))
	return deploy.Uniform(geom.Square(450), 200, rng)
}

func TestSelectCoversAndConnects(t *testing.T) {
	cfg := DefaultConfig()
	for seed := int64(1); seed <= 5; seed++ {
		topo := paperTopology(seed)
		res := Select(topo.Region, topo.Positions, cfg, rand.New(rand.NewSource(seed)))
		if err := Verify(topo.Region, topo.Positions, res.Active, cfg); err != nil {
			t.Errorf("seed %d: %v", seed, err)
		}
		if res.NumActive == 0 || res.NumActive == topo.Len() {
			t.Errorf("seed %d: degenerate backbone size %d of %d", seed, res.NumActive, topo.Len())
		}
	}
}

func TestBackboneFractionReasonable(t *testing.T) {
	// With 200 nodes at Rs=50 in 450x450, a sensible cover uses well under
	// 60% of nodes and at least the area lower bound (~26 disks).
	cfg := DefaultConfig()
	topo := paperTopology(7)
	res := Select(topo.Region, topo.Positions, cfg, rand.New(rand.NewSource(7)))
	frac := float64(res.NumActive) / float64(topo.Len())
	if frac < 0.10 || frac > 0.60 {
		t.Errorf("backbone fraction = %.2f (%d nodes), want within [0.10, 0.60]",
			frac, res.NumActive)
	}
}

func TestSelectDeterministic(t *testing.T) {
	cfg := DefaultConfig()
	topo := paperTopology(3)
	a := Select(topo.Region, topo.Positions, cfg, rand.New(rand.NewSource(9)))
	b := Select(topo.Region, topo.Positions, cfg, rand.New(rand.NewSource(9)))
	for i := range a.Active {
		if a.Active[i] != b.Active[i] {
			t.Fatalf("selection differs at node %d for identical seeds", i)
		}
	}
}

func TestSelectEmpty(t *testing.T) {
	cfg := DefaultConfig()
	res := Select(geom.Square(450), nil, cfg, rand.New(rand.NewSource(1)))
	if res.NumActive != 0 || len(res.Active) != 0 {
		t.Errorf("empty selection = %+v", res)
	}
}

func TestSingleNodeStaysActive(t *testing.T) {
	cfg := DefaultConfig()
	res := Select(geom.Square(100), []geom.Point{geom.Pt(50, 50)}, cfg, rand.New(rand.NewSource(1)))
	if !res.Active[0] {
		t.Error("a lone node must stay active")
	}
}

func TestRedundantClusterSleepsSomeNodes(t *testing.T) {
	// Many co-located nodes: almost all should be able to sleep.
	cfg := DefaultConfig()
	pts := make([]geom.Point, 20)
	for i := range pts {
		pts[i] = geom.Pt(50+float64(i%5), 50+float64(i/5))
	}
	res := Select(geom.Square(100), pts, cfg, rand.New(rand.NewSource(1)))
	if res.NumActive > 4 {
		t.Errorf("tight cluster kept %d nodes active, want <= 4", res.NumActive)
	}
	if err := Verify(geom.Square(100), pts, res.Active, cfg); err != nil {
		t.Error(err)
	}
}

func TestSparseLineAllActive(t *testing.T) {
	// Nodes spaced exactly at 2*Rs cannot cover for each other.
	cfg := DefaultConfig()
	pts := []geom.Point{geom.Pt(50, 50), geom.Pt(150, 50), geom.Pt(250, 50)}
	res := Select(geom.Square(300), pts, cfg, rand.New(rand.NewSource(1)))
	if res.NumActive != 3 {
		t.Errorf("sparse line kept %d active, want 3", res.NumActive)
	}
}

func TestConnectivityRepairBridgesGap(t *testing.T) {
	// Two dense clusters far apart with a chain of sparse bridge nodes:
	// the bridge must be activated to connect the backbone.
	cfg := DefaultConfig()
	var pts []geom.Point
	for i := 0; i < 9; i++ {
		pts = append(pts, geom.Pt(30+float64(i%3)*20, 30+float64(i/3)*20))
	}
	for i := 0; i < 9; i++ {
		pts = append(pts, geom.Pt(370+float64(i%3)*20, 370+float64(i/3)*20))
	}
	// Bridge chain (each diagonal hop is 99 m < Rc).
	for i := 1; i <= 4; i++ {
		pts = append(pts, geom.Pt(70+float64(i)*70, 70+float64(i)*70))
	}
	res := Select(geom.Square(450), pts, cfg, rand.New(rand.NewSource(2)))
	if c := components(pts, res.Active, cfg.CommRange); c.count != 1 {
		t.Errorf("backbone has %d components after repair", c.count)
	}
}

func TestVerifyDetectsUncovered(t *testing.T) {
	cfg := DefaultConfig()
	pts := []geom.Point{geom.Pt(50, 50), geom.Pt(300, 300)}
	active := []bool{true, false} // node 1's area uncovered
	if err := Verify(geom.Square(450), pts, active, cfg); err == nil {
		t.Error("Verify should detect the uncovered region")
	}
}

func TestVerifyDetectsPartition(t *testing.T) {
	cfg := DefaultConfig()
	cfg.GridStep = 500 // effectively skip the coverage portion
	pts := []geom.Point{geom.Pt(0, 0), geom.Pt(400, 400)}
	active := []bool{true, true}
	if err := Verify(geom.Square(450), pts, active, cfg); err == nil {
		t.Error("Verify should detect the partitioned backbone")
	}
}

func TestVerifyLengthMismatch(t *testing.T) {
	cfg := DefaultConfig()
	if err := Verify(geom.Square(10), []geom.Point{{}}, nil, cfg); err == nil {
		t.Error("Verify should reject mismatched lengths")
	}
}

func TestConfigValidate(t *testing.T) {
	bad := []Config{
		{SensingRange: 0, CommRange: 1, PerimeterSamples: 8, GridStep: 1},
		{SensingRange: 1, CommRange: 0, PerimeterSamples: 8, GridStep: 1},
		{SensingRange: 1, CommRange: 1, PerimeterSamples: 2, GridStep: 1},
		{SensingRange: 1, CommRange: 1, PerimeterSamples: 8, GridStep: 0},
	}
	for i, c := range bad {
		if c.Validate() == nil {
			t.Errorf("config %d should fail validation", i)
		}
	}
	if err := DefaultConfig().Validate(); err != nil {
		t.Errorf("default config invalid: %v", err)
	}
}

func BenchmarkSelect200Nodes(b *testing.B) {
	cfg := DefaultConfig()
	topo := paperTopology(1)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		Select(topo.Region, topo.Positions, cfg, rand.New(rand.NewSource(int64(i))))
	}
}
