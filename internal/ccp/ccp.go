// Package ccp implements a Coverage Configuration Protocol in the spirit of
// Wang et al. (SenSys 2003), which the paper uses as its power management
// substrate. CCP selects a subset of nodes to stay active (the backbone)
// such that the deployment region remains sensing-covered; the remaining
// nodes may duty-cycle.
//
// Because the paper's setting satisfies Rc >= 2*Rs (105 m >= 2*50 m),
// sensing coverage implies communication connectivity of the active set
// (CCP's main theorem). This implementation checks the node-disk coverage
// eligibility rule at sampled points rather than at exact disk intersection
// points — an approximation — and therefore runs two safety-net repair
// passes afterwards: a region-grid coverage patch and a connectivity patch.
package ccp

import (
	"fmt"
	"math"
	"math/rand"

	"mobiquery/internal/geom"
)

// Config holds the coverage protocol's parameters.
type Config struct {
	// SensingRange is each node's sensing radius Rs (paper: 50 m).
	SensingRange float64
	// CommRange is the communication radius Rc (paper: 105 m).
	CommRange float64
	// PerimeterSamples is the number of points sampled on a node's sensing
	// perimeter for the eligibility check.
	PerimeterSamples int
	// GridStep is the sample spacing for the global coverage repair pass.
	GridStep float64
}

// DefaultConfig returns the paper's evaluation settings.
func DefaultConfig() Config {
	return Config{SensingRange: 50, CommRange: 105, PerimeterSamples: 16, GridStep: 15}
}

// Validate reports configuration errors.
func (c Config) Validate() error {
	switch {
	case c.SensingRange <= 0:
		return fmt.Errorf("ccp: SensingRange must be positive")
	case c.CommRange <= 0:
		return fmt.Errorf("ccp: CommRange must be positive")
	case c.PerimeterSamples < 4:
		return fmt.Errorf("ccp: PerimeterSamples must be at least 4")
	case c.GridStep <= 0:
		return fmt.Errorf("ccp: GridStep must be positive")
	}
	return nil
}

// Result describes a backbone selection.
type Result struct {
	// Active[i] reports whether node i must stay always-on.
	Active []bool
	// NumActive is the backbone size.
	NumActive int
	// CoverageRepairs counts nodes re-activated by the global coverage
	// patch (0 when the eligibility pass alone sufficed).
	CoverageRepairs int
	// ConnectivityRepairs counts nodes activated to reconnect components.
	ConnectivityRepairs int
}

// Select computes the active backbone for the given node positions. The rng
// determines the (deterministic, seed-dependent) withdrawal order, matching
// CCP's randomized back-off timers.
func Select(region geom.Rect, positions []geom.Point, cfg Config, rng *rand.Rand) Result {
	if err := cfg.Validate(); err != nil {
		panic(err)
	}
	n := len(positions)
	active := make([]bool, n)
	for i := range active {
		active[i] = true
	}
	res := Result{Active: active}
	if n == 0 {
		return res
	}

	// Withdrawal pass: in random order, each node sleeps if its sensing
	// disk is covered by the remaining active nodes.
	order := rng.Perm(n)
	grid := geom.NewGrid(region, cfg.SensingRange)
	for i, p := range positions {
		grid.Insert(int32(i), p)
	}
	var buf []int32
	for _, i := range order {
		if diskCovered(i, positions, active, region, cfg, grid, &buf) {
			active[i] = false
		}
	}

	// Coverage repair: every grid sample point coverable by some node must
	// be covered by an active node.
	res.CoverageRepairs = repairCoverage(region, positions, active, cfg, grid, &buf)

	// Connectivity repair: with Rc >= 2*Rs this should be a no-op, but the
	// sampled eligibility rule can leave rare corner gaps.
	res.ConnectivityRepairs = repairConnectivity(positions, active, cfg)

	for _, a := range active {
		if a {
			res.NumActive++
		}
	}
	return res
}

// diskCovered reports whether node i's sensing disk (clipped to the region)
// is covered by the sensing disks of other active nodes. Coverage is tested
// at the disk center and at sampled perimeter points.
func diskCovered(i int, positions []geom.Point, active []bool, region geom.Rect, cfg Config, grid *geom.Grid, buf *[]int32) bool {
	p := positions[i]
	// Candidate coverers: active nodes within 2*Rs of p.
	*buf = grid.Within((*buf)[:0], p, 2*cfg.SensingRange)
	cands := (*buf)[:0]
	for _, id := range *buf {
		if int(id) != i && active[id] {
			cands = append(cands, id)
		}
	}
	if len(cands) == 0 {
		return false
	}
	covered := func(q geom.Point) bool {
		for _, id := range cands {
			if positions[id].Within(q, cfg.SensingRange) {
				return true
			}
		}
		return false
	}
	if !covered(p) {
		return false
	}
	for k := 0; k < cfg.PerimeterSamples; k++ {
		theta := 2 * math.Pi * float64(k) / float64(cfg.PerimeterSamples)
		q := p.Add(geom.FromAngle(theta).Scale(cfg.SensingRange * 0.999))
		if !region.Contains(q) {
			continue // points outside the region need no coverage
		}
		if !covered(q) {
			return false
		}
	}
	return true
}

// repairCoverage re-activates nodes until every coverable grid sample point
// is covered, returning the number of re-activations.
func repairCoverage(region geom.Rect, positions []geom.Point, active []bool, cfg Config, grid *geom.Grid, buf *[]int32) int {
	repairs := 0
	for x := region.MinX + cfg.GridStep/2; x <= region.MaxX; x += cfg.GridStep {
		for y := region.MinY + cfg.GridStep/2; y <= region.MaxY; y += cfg.GridStep {
			q := geom.Pt(x, y)
			*buf = grid.Within((*buf)[:0], q, cfg.SensingRange)
			if len(*buf) == 0 {
				continue // deployment hole: nobody can cover this point
			}
			coveredBy := -1
			bestInactive := -1
			bestDist := math.MaxFloat64
			for _, id := range *buf {
				if active[id] {
					coveredBy = int(id)
					break
				}
				if d := positions[id].Dist2(q); d < bestDist {
					bestInactive, bestDist = int(id), d
				}
			}
			if coveredBy < 0 {
				active[bestInactive] = true
				repairs++
			}
		}
	}
	return repairs
}

// repairConnectivity activates additional nodes until the active set forms
// a single connected component under the communication range, returning the
// number of activations. It gives up (leaving the network partitioned) only
// when no inactive node can reduce the gap, which cannot happen for
// deployments dense enough to be covered.
func repairConnectivity(positions []geom.Point, active []bool, cfg Config) int {
	repairs := 0
	for {
		comp := components(positions, active, cfg.CommRange)
		if comp.count <= 1 {
			return repairs
		}
		// Closest pair of active nodes across two different components.
		bestA, bestB := -1, -1
		bestDist := math.MaxFloat64
		for i := range positions {
			if !active[i] {
				continue
			}
			for j := i + 1; j < len(positions); j++ {
				if !active[j] || comp.id[i] == comp.id[j] {
					continue
				}
				if d := positions[i].Dist2(positions[j]); d < bestDist {
					bestA, bestB, bestDist = i, j, d
				}
			}
		}
		if bestA < 0 {
			return repairs
		}
		// Activate the inactive node that best bridges the gap.
		bridge := -1
		bridgeScore := math.MaxFloat64
		for i := range positions {
			if active[i] {
				continue
			}
			score := positions[i].Dist(positions[bestA]) + positions[i].Dist(positions[bestB])
			if score < bridgeScore {
				bridge, bridgeScore = i, score
			}
		}
		if bridge < 0 {
			return repairs // nothing left to activate
		}
		active[bridge] = true
		repairs++
	}
}

// componentSet labels nodes with connected-component ids.
type componentSet struct {
	id    []int
	count int
}

// components computes connected components of the active nodes under the
// given communication range.
func components(positions []geom.Point, active []bool, commRange float64) componentSet {
	n := len(positions)
	parent := make([]int, n)
	for i := range parent {
		parent[i] = i
	}
	var find func(int) int
	find = func(x int) int {
		for parent[x] != x {
			parent[x] = parent[parent[x]]
			x = parent[x]
		}
		return x
	}
	for i := 0; i < n; i++ {
		if !active[i] {
			continue
		}
		for j := i + 1; j < n; j++ {
			if !active[j] {
				continue
			}
			if positions[i].Within(positions[j], commRange) {
				parent[find(i)] = find(j)
			}
		}
	}
	cs := componentSet{id: make([]int, n)}
	seen := make(map[int]int)
	for i := 0; i < n; i++ {
		if !active[i] {
			cs.id[i] = -1
			continue
		}
		root := find(i)
		label, ok := seen[root]
		if !ok {
			label = cs.count
			seen[root] = label
			cs.count++
		}
		cs.id[i] = label
	}
	return cs
}

// Verify checks that the active selection covers every coverable grid point
// of the region and forms a connected communication graph. It returns nil
// when both invariants hold.
func Verify(region geom.Rect, positions []geom.Point, active []bool, cfg Config) error {
	if len(active) != len(positions) {
		return fmt.Errorf("ccp: active mask length %d != positions %d", len(active), len(positions))
	}
	grid := geom.NewGrid(region, cfg.SensingRange)
	for i, p := range positions {
		grid.Insert(int32(i), p)
	}
	var buf []int32
	for x := region.MinX + cfg.GridStep/2; x <= region.MaxX; x += cfg.GridStep {
		for y := region.MinY + cfg.GridStep/2; y <= region.MaxY; y += cfg.GridStep {
			q := geom.Pt(x, y)
			buf = grid.Within(buf[:0], q, cfg.SensingRange)
			if len(buf) == 0 {
				continue
			}
			ok := false
			for _, id := range buf {
				if active[id] {
					ok = true
					break
				}
			}
			if !ok {
				return fmt.Errorf("ccp: point %v uncovered by active set", q)
			}
		}
	}
	anyActive := false
	for _, a := range active {
		if a {
			anyActive = true
			break
		}
	}
	if anyActive {
		if c := components(positions, active, cfg.CommRange); c.count > 1 {
			return fmt.Errorf("ccp: active set has %d components, want 1", c.count)
		}
	}
	return nil
}
