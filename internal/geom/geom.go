// Package geom provides the 2-D geometric primitives used throughout the
// MobiQuery simulator: points, vectors, circles, rectangles, linear
// interpolation along paths, and uniform random sampling.
//
// All coordinates are in meters. The package is purely computational and has
// no dependencies on the simulation engine.
package geom

import (
	"fmt"
	"math"
	"math/rand"
)

// Point is a location in the 2-D plane, in meters.
type Point struct {
	X, Y float64
}

// Pt is shorthand for Point{x, y}.
func Pt(x, y float64) Point { return Point{X: x, Y: y} }

// String renders the point with centimeter precision.
func (p Point) String() string { return fmt.Sprintf("(%.2f, %.2f)", p.X, p.Y) }

// Add returns the point translated by v.
func (p Point) Add(v Vec) Point { return Point{p.X + v.DX, p.Y + v.DY} }

// Sub returns the vector from q to p.
func (p Point) Sub(q Point) Vec { return Vec{p.X - q.X, p.Y - q.Y} }

// Dist returns the Euclidean distance between p and q.
func (p Point) Dist(q Point) float64 {
	return math.Hypot(p.X-q.X, p.Y-q.Y)
}

// Dist2 returns the squared Euclidean distance between p and q. It avoids
// the square root for hot-path range comparisons.
func (p Point) Dist2(q Point) float64 {
	dx, dy := p.X-q.X, p.Y-q.Y
	return dx*dx + dy*dy
}

// Within reports whether q lies within radius r of p (inclusive).
func (p Point) Within(q Point, r float64) bool {
	return p.Dist2(q) <= r*r
}

// Lerp linearly interpolates between p and q; t=0 yields p, t=1 yields q.
// t outside [0,1] extrapolates along the same line.
func (p Point) Lerp(q Point, t float64) Point {
	return Point{p.X + (q.X-p.X)*t, p.Y + (q.Y-p.Y)*t}
}

// Vec is a displacement or velocity in the 2-D plane.
type Vec struct {
	DX, DY float64
}

// V is shorthand for Vec{dx, dy}.
func V(dx, dy float64) Vec { return Vec{DX: dx, DY: dy} }

// Add returns the component-wise sum of v and w.
func (v Vec) Add(w Vec) Vec { return Vec{v.DX + w.DX, v.DY + w.DY} }

// Sub returns the component-wise difference of v and w.
func (v Vec) Sub(w Vec) Vec { return Vec{v.DX - w.DX, v.DY - w.DY} }

// Scale returns v multiplied by s.
func (v Vec) Scale(s float64) Vec { return Vec{v.DX * s, v.DY * s} }

// Len returns the Euclidean length of v.
func (v Vec) Len() float64 { return math.Hypot(v.DX, v.DY) }

// Dot returns the dot product of v and w.
func (v Vec) Dot(w Vec) float64 { return v.DX*w.DX + v.DY*w.DY }

// Unit returns the unit vector in the direction of v. The zero vector is
// returned unchanged.
func (v Vec) Unit() Vec {
	l := v.Len()
	if l == 0 {
		return Vec{}
	}
	return Vec{v.DX / l, v.DY / l}
}

// Angle returns the direction of v in radians, in (-π, π].
func (v Vec) Angle() float64 { return math.Atan2(v.DY, v.DX) }

// FromAngle returns the unit vector pointing in direction theta (radians).
func FromAngle(theta float64) Vec {
	return Vec{math.Cos(theta), math.Sin(theta)}
}

// Circle is a disk of radius R centered at C.
type Circle struct {
	C Point
	R float64
}

// Contains reports whether p lies inside or on the circle.
func (c Circle) Contains(p Point) bool { return c.C.Within(p, c.R) }

// Intersects reports whether two circles overlap (inclusive of tangency).
func (c Circle) Intersects(d Circle) bool {
	return c.C.Within(d.C, c.R+d.R)
}

// Area returns the area of the circle in square meters.
func (c Circle) Area() float64 { return math.Pi * c.R * c.R }

// Rect is an axis-aligned rectangle [MinX,MaxX] x [MinY,MaxY].
type Rect struct {
	MinX, MinY, MaxX, MaxY float64
}

// NewRect returns the rectangle spanning the given corners regardless of
// argument order.
func NewRect(x0, y0, x1, y1 float64) Rect {
	return Rect{
		MinX: math.Min(x0, x1), MinY: math.Min(y0, y1),
		MaxX: math.Max(x0, x1), MaxY: math.Max(y0, y1),
	}
}

// Square returns the square [0,side] x [0,side]; the standard deployment
// region shape used by the paper (450 m x 450 m).
func Square(side float64) Rect { return Rect{0, 0, side, side} }

// Width returns the horizontal extent of r.
func (r Rect) Width() float64 { return r.MaxX - r.MinX }

// Height returns the vertical extent of r.
func (r Rect) Height() float64 { return r.MaxY - r.MinY }

// Area returns the area of r in square meters.
func (r Rect) Area() float64 { return r.Width() * r.Height() }

// Contains reports whether p lies inside r (inclusive of the boundary).
func (r Rect) Contains(p Point) bool {
	return p.X >= r.MinX && p.X <= r.MaxX && p.Y >= r.MinY && p.Y <= r.MaxY
}

// Clamp returns the nearest point to p inside r.
func (r Rect) Clamp(p Point) Point {
	return Point{
		X: math.Max(r.MinX, math.Min(r.MaxX, p.X)),
		Y: math.Max(r.MinY, math.Min(r.MaxY, p.Y)),
	}
}

// Center returns the midpoint of r.
func (r Rect) Center() Point {
	return Point{(r.MinX + r.MaxX) / 2, (r.MinY + r.MaxY) / 2}
}

// Corners returns the four corners of r in counter-clockwise order starting
// from (MinX, MinY).
func (r Rect) Corners() [4]Point {
	return [4]Point{
		{r.MinX, r.MinY}, {r.MaxX, r.MinY},
		{r.MaxX, r.MaxY}, {r.MinX, r.MaxY},
	}
}

// UniformPoint samples a point uniformly at random inside r.
func (r Rect) UniformPoint(rng *rand.Rand) Point {
	return Point{
		X: r.MinX + rng.Float64()*r.Width(),
		Y: r.MinY + rng.Float64()*r.Height(),
	}
}

// UniformInDisk samples a point uniformly at random inside the disk of
// radius radius centered at c. It is used for GPS error injection.
func UniformInDisk(rng *rand.Rand, c Point, radius float64) Point {
	// Inverse-CDF sampling: radius must be sqrt-distributed for a uniform
	// density over the disk area.
	r := radius * math.Sqrt(rng.Float64())
	theta := rng.Float64() * 2 * math.Pi
	return Point{c.X + r*math.Cos(theta), c.Y + r*math.Sin(theta)}
}

// Reflect bounces a direction vector off the boundary of r for a mover at p.
// It flips the X component if p is outside the horizontal extent and the Y
// component if outside the vertical extent, returning the adjusted
// direction. Used by the random-direction mobility model.
func (r Rect) Reflect(p Point, dir Vec) Vec {
	out := dir
	if (p.X <= r.MinX && dir.DX < 0) || (p.X >= r.MaxX && dir.DX > 0) {
		out.DX = -out.DX
	}
	if (p.Y <= r.MinY && dir.DY < 0) || (p.Y >= r.MaxY && dir.DY > 0) {
		out.DY = -out.DY
	}
	return out
}
