package geom

import (
	"math"
	"math/rand"
	"sync"
	"testing"
)

func TestShardedGridMatchesGrid(t *testing.T) {
	// Randomized insert/move/remove traffic must leave the sharded grid
	// answering range queries identically to the serial reference grid.
	rng := rand.New(rand.NewSource(7))
	region := Square(450)
	for _, shards := range []int{1, 3, 16, 1000} {
		ref := NewGrid(region, 105)
		sg := NewShardedGrid(region, 105, shards)
		for step := 0; step < 2000; step++ {
			id := int32(rng.Intn(300))
			switch rng.Intn(4) {
			case 0:
				sg.Remove(id)
				ref.Remove(id)
			default:
				p := region.UniformPoint(rng)
				sg.Insert(id, p)
				ref.Insert(id, p)
			}
		}
		if sg.Len() != ref.Len() {
			t.Fatalf("shards=%d: Len = %d, want %d", shards, sg.Len(), ref.Len())
		}
		for trial := 0; trial < 50; trial++ {
			center := region.UniformPoint(rng)
			radius := rng.Float64() * 250
			got := sorted(sg.Within(nil, center, radius))
			want := sorted(ref.Within(nil, center, radius))
			if len(got) != len(want) {
				t.Fatalf("shards=%d trial %d: got %d ids, want %d", shards, trial, len(got), len(want))
			}
			for i := range got {
				if got[i] != want[i] {
					t.Fatalf("shards=%d trial %d: got %v, want %v", shards, trial, got, want)
				}
			}
		}
	}
}

func TestShardedGridQueryStraddlesShardBoundary(t *testing.T) {
	// With 10 m cells and 4 shards over a 100 m square, the first shard
	// boundary sits at y≈30. A query circle centered on it must pull items
	// from both sides.
	g := NewShardedGrid(Square(100), 10, 4)
	g.Insert(1, Pt(50, 25)) // shard 0
	g.Insert(2, Pt(50, 35)) // shard 1
	g.Insert(3, Pt(50, 95)) // far shard
	got := sorted(g.Within(nil, Pt(50, 30), 8))
	if len(got) != 2 || got[0] != 1 || got[1] != 2 {
		t.Errorf("straddling query = %v, want [1 2]", got)
	}
	// A radius covering the whole region must cross every shard.
	if got := g.Within(nil, Pt(50, 50), 200); len(got) != 3 {
		t.Errorf("full-region query = %v, want all 3 items", got)
	}
}

func TestShardedGridItemsOnRegionBorder(t *testing.T) {
	g := NewShardedGrid(Square(100), 10, 4)
	g.Insert(1, Pt(0, 0))
	g.Insert(2, Pt(100, 100)) // exactly on the max corner
	g.Insert(3, Pt(0, 100))
	g.Insert(4, Pt(100, 0))
	g.Insert(5, Pt(-3, 50)) // clamped into the edge cells, like Grid
	g.Insert(6, Pt(50, 104))
	for id := int32(1); id <= 6; id++ {
		p, ok := g.Position(id)
		if !ok {
			t.Fatalf("Position(%d) missing", id)
		}
		found := false
		for _, got := range g.Within(nil, p, 0.001) {
			if got == id {
				found = true
			}
		}
		if !found {
			t.Errorf("border item %d at %v not returned by Within", id, p)
		}
	}
	if got := sorted(g.Within(nil, Pt(100, 100), 0)); len(got) != 1 || got[0] != 2 {
		t.Errorf("zero-radius corner query = %v, want [2]", got)
	}
}

func TestShardedGridUnknownIDs(t *testing.T) {
	g := NewShardedGrid(Square(100), 10, 4)
	g.Remove(42) // removing an absent id is a no-op
	if g.Len() != 0 {
		t.Errorf("Len after removing unknown id = %d", g.Len())
	}
	g.Move(42, Pt(10, 10)) // moving an unknown id inserts it, as with Grid
	if p, ok := g.Position(42); !ok || p != Pt(10, 10) {
		t.Errorf("Position after Move of unknown id = %v, %v", p, ok)
	}
	if g.Len() != 1 {
		t.Errorf("Len = %d, want 1", g.Len())
	}
	g.Remove(42)
	g.Remove(42)
	if _, ok := g.Position(42); ok || g.Len() != 0 {
		t.Error("remove of known-then-unknown id left state behind")
	}
}

func TestShardedGridMoveAcrossShards(t *testing.T) {
	g := NewShardedGrid(Square(100), 10, 4)
	g.Insert(9, Pt(50, 5))
	g.Move(9, Pt(50, 95)) // bottom band to top band
	if ids := g.Within(nil, Pt(50, 5), 10); len(ids) != 0 {
		t.Errorf("item still visible in old shard: %v", ids)
	}
	if ids := g.Within(nil, Pt(50, 95), 1); len(ids) != 1 || ids[0] != 9 {
		t.Errorf("item not visible in new shard: %v", ids)
	}
}

func TestShardedGridConcurrentChurn(t *testing.T) {
	// Writers churn disjoint id ranges while readers run radius queries;
	// run with -race to exercise the lock-free read path. Every reader must
	// see only fully formed entries (ids in range, positions inside the
	// region's clamp envelope).
	region := Square(450)
	g := NewShardedGrid(region, 105, 8)
	const writers = 4
	const perWriter = 200
	var writerWG, readerWG sync.WaitGroup
	stop := make(chan struct{})
	for w := 0; w < writers; w++ {
		writerWG.Add(1)
		go func(w int) {
			defer writerWG.Done()
			rng := rand.New(rand.NewSource(int64(w)))
			base := int32(w * perWriter)
			for i := 0; i < 3000; i++ {
				id := base + int32(rng.Intn(perWriter))
				switch rng.Intn(5) {
				case 0:
					g.Remove(id)
				default:
					g.Insert(id, region.UniformPoint(rng))
				}
			}
		}(w)
	}
	for r := 0; r < 4; r++ {
		readerWG.Add(1)
		go func(r int) {
			defer readerWG.Done()
			rng := rand.New(rand.NewSource(int64(100 + r)))
			var buf []int32
			for {
				select {
				case <-stop:
					return
				default:
				}
				buf = g.Within(buf[:0], region.UniformPoint(rng), rng.Float64()*300)
				for _, id := range buf {
					if id < 0 || id >= writers*perWriter {
						t.Errorf("reader saw malformed id %d", id)
						return
					}
				}
				_ = g.Len()
				_, _ = g.Position(int32(rng.Intn(writers * perWriter)))
			}
		}(r)
	}
	writerWG.Wait()
	close(stop)
	readerWG.Wait()
	// The final state must be internally consistent: every stored item is
	// findable at its position.
	for id := int32(0); id < writers*perWriter; id++ {
		p, ok := g.Position(id)
		if !ok {
			continue
		}
		found := false
		for _, got := range g.Within(nil, p, 0.001) {
			if got == id {
				found = true
			}
		}
		if !found {
			t.Errorf("item %d at %v lost from its cell after churn", id, p)
		}
	}
}

func TestShardedGridVersionAdvancesOnMutation(t *testing.T) {
	g := NewShardedGrid(Square(100), 10, 4)
	v0 := g.Version()
	g.Insert(1, Pt(10, 10))
	v1 := g.Version()
	if v1 <= v0 {
		t.Fatalf("insert did not advance the version (%d -> %d)", v0, v1)
	}
	g.Insert(1, Pt(10, 10)) // no-op move: position unchanged
	if g.Version() != v1 {
		t.Errorf("no-op insert advanced the version (%d -> %d)", v1, g.Version())
	}
	g.Move(1, Pt(90, 90))
	v2 := g.Version()
	if v2 <= v1 {
		t.Errorf("move did not advance the version (%d -> %d)", v1, v2)
	}
	g.Remove(42) // absent id: no mutation
	if g.Version() != v2 {
		t.Errorf("no-op remove advanced the version (%d -> %d)", v2, g.Version())
	}
	g.Remove(1)
	if g.Version() <= v2 {
		t.Errorf("remove did not advance the version (%d -> %d)", v2, g.Version())
	}
	// Reads never mutate.
	v3 := g.Version()
	g.Within(nil, Pt(50, 50), 200)
	g.VisitCellsInBox(Pt(50, 50), 200, func(int, int) {})
	g.VisitCell(0, 0, func(int32, Point) {})
	if g.Version() != v3 {
		t.Error("read paths advanced the version")
	}
	// With no writer in flight, SnapshotVersion is ok and agrees with
	// Version; two consecutive clean reads bracket an empty sweep.
	sv0, ok0 := g.SnapshotVersion()
	sv1, ok1 := g.SnapshotVersion()
	if !ok0 || !ok1 || sv0 != v3 || sv0 != sv1 {
		t.Errorf("SnapshotVersion = (%d,%v)/(%d,%v), want clean %d twice", sv0, ok0, sv1, ok1, v3)
	}
}

// TestShardedGridCellSweepMatchesVisitWithin pins the corridor cache's core
// assumption: collecting every cell of VisitCellsInBox and filtering by
// distance yields exactly the VisitWithin result — for interior disks,
// disks poking past the region, and clamped out-of-region items.
func TestShardedGridCellSweepMatchesVisitWithin(t *testing.T) {
	rng := rand.New(rand.NewSource(11))
	region := Square(450)
	g := NewShardedGrid(region, 105, 8)
	for i := 0; i < 300; i++ {
		g.Insert(int32(i), region.UniformPoint(rng))
	}
	g.Insert(1000, Pt(-20, 225)) // clamped into an edge cell
	g.Insert(1001, Pt(470, 470))
	for trial := 0; trial < 100; trial++ {
		center := Pt(rng.Float64()*550-50, rng.Float64()*550-50)
		radius := rng.Float64() * 250
		want := map[int32]Point{}
		g.VisitWithin(center, radius, func(id int32, pos Point) { want[id] = pos })
		got := map[int32]Point{}
		r2 := radius * radius
		g.VisitCellsInBox(center, radius, func(cx, cy int) {
			g.VisitCell(cx, cy, func(id int32, pos Point) {
				if pos.Dist2(center) <= r2 {
					got[id] = pos
				}
			})
		})
		if len(got) != len(want) {
			t.Fatalf("trial %d: cell sweep found %d items, VisitWithin %d", trial, len(got), len(want))
		}
		for id, pos := range want {
			if got[id] != pos {
				t.Fatalf("trial %d: item %d at %v vs %v", trial, id, got[id], pos)
			}
		}
	}
}

func TestShardedGridCellRect(t *testing.T) {
	g := NewShardedGrid(Square(100), 10, 4)
	g.Insert(7, Pt(34, 56))
	var cells []Rect
	g.VisitCellsInBox(Pt(34, 56), 0, func(cx, cy int) {
		cells = append(cells, g.CellRect(cx, cy))
	})
	if len(cells) != 1 {
		t.Fatalf("zero-radius box spans %d cells, want 1", len(cells))
	}
	if !cells[0].Contains(Pt(34, 56)) {
		t.Errorf("CellRect %v does not contain the item's position", cells[0])
	}
	if w, h := cells[0].Width(), cells[0].Height(); w != 10 || h != 10 {
		t.Errorf("cell extent = %vx%v, want 10x10", w, h)
	}
}

func BenchmarkShardedGridWithin(b *testing.B) {
	rng := rand.New(rand.NewSource(1))
	region := Square(450)
	g := NewShardedGrid(region, 105, 8)
	for i := 0; i < 200; i++ {
		g.Insert(int32(i), region.UniformPoint(rng))
	}
	var buf []int32
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		buf = g.Within(buf[:0], Pt(225, 225), 105)
	}
}

func TestShardedGridVisitCellsInBoxMatchesBruteForce(t *testing.T) {
	// Property pin for the tile-decomposition prerequisite: for any box
	// that intersects the region, the cells VisitCellsInBox enumerates must
	// be exactly those whose effective extent intersects the box, where
	// edge cells extend unboundedly outward (cellOf clamps out-of-region
	// points into them). Centers are drawn so the box frequently spills
	// past every region edge, exercising the clamping; boxes entirely
	// outside the region are out of contract (VisitWithin never scans them
	// — a query disk can only reach a clamped item if it also reaches the
	// region).
	rng := rand.New(rand.NewSource(42))
	for _, cellSize := range []float64{7, 33, 105} {
		g := NewShardedGrid(Square(450), cellSize, 0)
		cols, rows := g.CellCount()
		region := g.Region()
		for trial := 0; trial < 300; trial++ {
			radius := rng.Float64() * 300
			center := Pt(rng.Float64()*(450+1.6*radius)-0.8*radius,
				rng.Float64()*(450+1.6*radius)-0.8*radius)
			got := make(map[[2]int]bool)
			g.VisitCellsInBox(center, radius, func(cx, cy int) {
				if got[[2]int{cx, cy}] {
					t.Fatalf("cell (%d,%d) visited twice", cx, cy)
				}
				got[[2]int{cx, cy}] = true
			})
			boxMinX, boxMaxX := center.X-radius, center.X+radius
			boxMinY, boxMaxY := center.Y-radius, center.Y+radius
			want := 0
			for cy := 0; cy < rows; cy++ {
				for cx := 0; cx < cols; cx++ {
					r := g.CellRect(cx, cy)
					// Edge cells absorb everything clamped past the region.
					minX, maxX, minY, maxY := r.MinX, r.MaxX, r.MinY, r.MaxY
					if cx == 0 {
						minX = math.Inf(-1)
					}
					if cx == cols-1 {
						maxX = math.Inf(1)
					}
					if cy == 0 {
						minY = math.Inf(-1)
					}
					if cy == rows-1 {
						maxY = math.Inf(1)
					}
					overlap := minX <= boxMaxX && boxMinX < maxX && minY <= boxMaxY && boxMinY < maxY
					if overlap {
						want++
					}
					if overlap != got[[2]int{cx, cy}] {
						t.Fatalf("cell=%v center=%v r=%v cell (%d,%d): visited=%v, brute force says %v",
							cellSize, center, radius, cx, cy, got[[2]int{cx, cy}], overlap)
					}
				}
			}
			if len(got) != want {
				t.Fatalf("visited %d cells, brute force found %d", len(got), want)
			}
			_ = region
		}
	}
}
