package geom

import (
	"math"
	"math/rand"
	"testing"
	"testing/quick"
)

func almostEqual(a, b, eps float64) bool { return math.Abs(a-b) <= eps }

func TestPointDist(t *testing.T) {
	tests := []struct {
		name string
		p, q Point
		want float64
	}{
		{"same point", Pt(1, 2), Pt(1, 2), 0},
		{"unit x", Pt(0, 0), Pt(1, 0), 1},
		{"unit y", Pt(0, 0), Pt(0, 1), 1},
		{"3-4-5", Pt(0, 0), Pt(3, 4), 5},
		{"negative coords", Pt(-3, -4), Pt(0, 0), 5},
	}
	for _, tt := range tests {
		t.Run(tt.name, func(t *testing.T) {
			if got := tt.p.Dist(tt.q); !almostEqual(got, tt.want, 1e-12) {
				t.Errorf("Dist(%v, %v) = %v, want %v", tt.p, tt.q, got, tt.want)
			}
			if got := tt.p.Dist2(tt.q); !almostEqual(got, tt.want*tt.want, 1e-9) {
				t.Errorf("Dist2(%v, %v) = %v, want %v", tt.p, tt.q, got, tt.want*tt.want)
			}
		})
	}
}

func TestDist2MatchesDist(t *testing.T) {
	f := func(ax, ay, bx, by float64) bool {
		// Constrain to a sane coordinate range to avoid overflow noise.
		a := Pt(math.Mod(ax, 1e6), math.Mod(ay, 1e6))
		b := Pt(math.Mod(bx, 1e6), math.Mod(by, 1e6))
		d := a.Dist(b)
		return almostEqual(d*d, a.Dist2(b), 1e-6*(1+d*d))
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestWithin(t *testing.T) {
	p := Pt(0, 0)
	if !p.Within(Pt(3, 4), 5) {
		t.Error("point at distance 5 should be within radius 5 (inclusive)")
	}
	if p.Within(Pt(3, 4), 4.999) {
		t.Error("point at distance 5 should not be within radius 4.999")
	}
}

func TestLerp(t *testing.T) {
	p, q := Pt(0, 0), Pt(10, 20)
	if got := p.Lerp(q, 0); got != p {
		t.Errorf("Lerp(0) = %v, want %v", got, p)
	}
	if got := p.Lerp(q, 1); got != q {
		t.Errorf("Lerp(1) = %v, want %v", got, q)
	}
	if got := p.Lerp(q, 0.5); got != Pt(5, 10) {
		t.Errorf("Lerp(0.5) = %v, want (5,10)", got)
	}
	// Extrapolation beyond the segment.
	if got := p.Lerp(q, 2); got != Pt(20, 40) {
		t.Errorf("Lerp(2) = %v, want (20,40)", got)
	}
}

func TestVecOps(t *testing.T) {
	v := V(3, 4)
	if got := v.Len(); got != 5 {
		t.Errorf("Len = %v, want 5", got)
	}
	u := v.Unit()
	if !almostEqual(u.Len(), 1, 1e-12) {
		t.Errorf("Unit().Len() = %v, want 1", u.Len())
	}
	if got := (Vec{}).Unit(); got != (Vec{}) {
		t.Errorf("zero vector Unit = %v, want zero", got)
	}
	if got := v.Scale(2); got != V(6, 8) {
		t.Errorf("Scale(2) = %v, want (6,8)", got)
	}
	if got := v.Add(V(1, 1)); got != V(4, 5) {
		t.Errorf("Add = %v, want (4,5)", got)
	}
	if got := v.Sub(V(1, 1)); got != V(2, 3) {
		t.Errorf("Sub = %v, want (2,3)", got)
	}
	if got := v.Dot(V(1, 0)); got != 3 {
		t.Errorf("Dot = %v, want 3", got)
	}
}

func TestFromAngleRoundTrip(t *testing.T) {
	for _, theta := range []float64{0, math.Pi / 4, math.Pi / 2, -math.Pi / 2, 3} {
		v := FromAngle(theta)
		if !almostEqual(v.Len(), 1, 1e-12) {
			t.Errorf("FromAngle(%v) not unit length", theta)
		}
		if !almostEqual(v.Angle(), theta, 1e-12) {
			t.Errorf("Angle(FromAngle(%v)) = %v", theta, v.Angle())
		}
	}
}

func TestCircle(t *testing.T) {
	c := Circle{C: Pt(0, 0), R: 10}
	if !c.Contains(Pt(10, 0)) {
		t.Error("boundary point should be contained")
	}
	if c.Contains(Pt(10.01, 0)) {
		t.Error("outside point should not be contained")
	}
	d := Circle{C: Pt(19, 0), R: 9}
	if !c.Intersects(d) {
		t.Error("circles at distance 19 with radii 10+9 should touch")
	}
	e := Circle{C: Pt(19.1, 0), R: 9}
	if c.Intersects(e) {
		t.Error("circles at distance 19.1 with radii 10+9 should not intersect")
	}
	if !almostEqual(c.Area(), math.Pi*100, 1e-9) {
		t.Errorf("Area = %v", c.Area())
	}
}

func TestRect(t *testing.T) {
	r := NewRect(10, 20, 0, 5)
	if r != (Rect{0, 5, 10, 20}) {
		t.Fatalf("NewRect did not normalize corners: %+v", r)
	}
	if r.Width() != 10 || r.Height() != 15 {
		t.Errorf("Width/Height = %v/%v, want 10/15", r.Width(), r.Height())
	}
	if r.Area() != 150 {
		t.Errorf("Area = %v, want 150", r.Area())
	}
	if !r.Contains(Pt(0, 5)) || !r.Contains(Pt(10, 20)) {
		t.Error("rect should contain its corners")
	}
	if r.Contains(Pt(-0.1, 10)) {
		t.Error("rect should not contain points outside")
	}
	if got := r.Clamp(Pt(-5, 100)); got != Pt(0, 20) {
		t.Errorf("Clamp = %v, want (0,20)", got)
	}
	if got := r.Center(); got != Pt(5, 12.5) {
		t.Errorf("Center = %v, want (5,12.5)", got)
	}
	corners := r.Corners()
	want := [4]Point{{0, 5}, {10, 5}, {10, 20}, {0, 20}}
	if corners != want {
		t.Errorf("Corners = %v, want %v", corners, want)
	}
}

func TestSquare(t *testing.T) {
	s := Square(450)
	if s.Width() != 450 || s.Height() != 450 {
		t.Errorf("Square(450) = %+v", s)
	}
	if !s.Contains(Pt(0, 0)) || !s.Contains(Pt(450, 450)) {
		t.Error("square should contain its corners")
	}
}

func TestUniformPointInRect(t *testing.T) {
	rng := rand.New(rand.NewSource(1))
	r := NewRect(5, 10, 15, 30)
	for i := 0; i < 1000; i++ {
		p := r.UniformPoint(rng)
		if !r.Contains(p) {
			t.Fatalf("sample %v outside rect %+v", p, r)
		}
	}
}

func TestUniformInDisk(t *testing.T) {
	rng := rand.New(rand.NewSource(2))
	c := Pt(100, 100)
	const radius = 10.0
	inner := 0
	const n = 20000
	for i := 0; i < n; i++ {
		p := UniformInDisk(rng, c, radius)
		if !c.Within(p, radius) {
			t.Fatalf("sample %v outside disk", p)
		}
		if c.Within(p, radius/2) {
			inner++
		}
	}
	// Uniform density: inner disk of half radius holds one quarter of the
	// samples in expectation.
	frac := float64(inner) / n
	if frac < 0.22 || frac > 0.28 {
		t.Errorf("inner-disk fraction = %v, want about 0.25", frac)
	}
}

func TestReflect(t *testing.T) {
	r := Square(100)
	tests := []struct {
		name string
		p    Point
		dir  Vec
		want Vec
	}{
		{"interior unchanged", Pt(50, 50), V(1, 1), V(1, 1)},
		{"east wall flips x", Pt(100, 50), V(1, 0), V(-1, 0)},
		{"west wall flips x", Pt(0, 50), V(-1, 0.5), V(1, 0.5)},
		{"north wall flips y", Pt(50, 100), V(0.5, 1), V(0.5, -1)},
		{"corner flips both", Pt(100, 100), V(1, 1), V(-1, -1)},
		{"moving away unchanged", Pt(100, 50), V(-1, 0), V(-1, 0)},
	}
	for _, tt := range tests {
		t.Run(tt.name, func(t *testing.T) {
			if got := r.Reflect(tt.p, tt.dir); got != tt.want {
				t.Errorf("Reflect(%v, %v) = %v, want %v", tt.p, tt.dir, got, tt.want)
			}
		})
	}
}
