package geom

import (
	"math/rand"
	"sort"
	"testing"
	"testing/quick"
)

func sorted(ids []int32) []int32 {
	out := append([]int32(nil), ids...)
	sort.Slice(out, func(i, j int) bool { return out[i] < out[j] })
	return out
}

func TestGridInsertAndWithin(t *testing.T) {
	g := NewGrid(Square(100), 10)
	g.Insert(1, Pt(10, 10))
	g.Insert(2, Pt(20, 10))
	g.Insert(3, Pt(90, 90))

	got := sorted(g.Within(nil, Pt(10, 10), 15))
	want := []int32{1, 2}
	if len(got) != len(want) || got[0] != 1 || got[1] != 2 {
		t.Errorf("Within = %v, want %v", got, want)
	}
	if ids := g.Within(nil, Pt(50, 50), 5); len(ids) != 0 {
		t.Errorf("Within empty region = %v, want none", ids)
	}
	if g.Len() != 3 {
		t.Errorf("Len = %d, want 3", g.Len())
	}
}

func TestGridWithinInclusiveBoundary(t *testing.T) {
	g := NewGrid(Square(100), 7)
	g.Insert(1, Pt(0, 0))
	g.Insert(2, Pt(10, 0))
	if got := g.Within(nil, Pt(0, 0), 10); len(got) != 2 {
		t.Errorf("radius exactly at distance should include boundary node, got %v", got)
	}
}

func TestGridMove(t *testing.T) {
	g := NewGrid(Square(100), 10)
	g.Insert(7, Pt(5, 5))
	g.Move(7, Pt(95, 95))
	if ids := g.Within(nil, Pt(5, 5), 10); len(ids) != 0 {
		t.Errorf("moved node still found at old position: %v", ids)
	}
	if ids := g.Within(nil, Pt(95, 95), 1); len(ids) != 1 || ids[0] != 7 {
		t.Errorf("moved node not found at new position: %v", ids)
	}
	p, ok := g.Position(7)
	if !ok || p != Pt(95, 95) {
		t.Errorf("Position = %v, %v", p, ok)
	}
}

func TestGridUnknownIDs(t *testing.T) {
	g := NewGrid(Square(100), 10)
	g.Remove(5) // removing an absent id is a no-op
	if g.Len() != 0 {
		t.Errorf("Len after removing unknown id = %d", g.Len())
	}
	g.Move(5, Pt(30, 30)) // moving an unknown id inserts it
	if p, ok := g.Position(5); !ok || p != Pt(30, 30) {
		t.Errorf("Position after Move of unknown id = %v, %v", p, ok)
	}
	if ids := g.Within(nil, Pt(30, 30), 1); len(ids) != 1 || ids[0] != 5 {
		t.Errorf("moved-in unknown id not findable: %v", ids)
	}
}

func TestGridRemove(t *testing.T) {
	g := NewGrid(Square(100), 10)
	g.Insert(1, Pt(50, 50))
	g.Remove(1)
	g.Remove(1) // removing twice is a no-op
	if g.Len() != 0 {
		t.Errorf("Len after remove = %d", g.Len())
	}
	if ids := g.Within(nil, Pt(50, 50), 50); len(ids) != 0 {
		t.Errorf("removed node still present: %v", ids)
	}
	if _, ok := g.Position(1); ok {
		t.Error("Position should report absence after Remove")
	}
}

func TestGridOutOfRegionClamped(t *testing.T) {
	// Items slightly outside the region (mobile proxy near the boundary)
	// must still be stored and findable.
	g := NewGrid(Square(100), 10)
	g.Insert(1, Pt(-5, -5))
	g.Insert(2, Pt(105, 105))
	if ids := g.Within(nil, Pt(0, 0), 10); len(ids) != 1 || ids[0] != 1 {
		t.Errorf("out-of-region item not found: %v", ids)
	}
	if ids := g.Within(nil, Pt(100, 100), 10); len(ids) != 1 || ids[0] != 2 {
		t.Errorf("out-of-region item not found: %v", ids)
	}
}

// TestGridMatchesBruteForce cross-checks grid range queries against a naive
// scan on random configurations.
func TestGridMatchesBruteForce(t *testing.T) {
	rng := rand.New(rand.NewSource(42))
	region := Square(450)
	for trial := 0; trial < 50; trial++ {
		g := NewGrid(region, 105)
		pts := make(map[int32]Point)
		n := 50 + rng.Intn(150)
		for i := 0; i < n; i++ {
			p := region.UniformPoint(rng)
			g.Insert(int32(i), p)
			pts[int32(i)] = p
		}
		center := region.UniformPoint(rng)
		radius := rng.Float64() * 200
		got := sorted(g.Within(nil, center, radius))
		var want []int32
		for id, p := range pts {
			if p.Within(center, radius) {
				want = append(want, id)
			}
		}
		want = sorted(want)
		if len(got) != len(want) {
			t.Fatalf("trial %d: got %d ids, want %d", trial, len(got), len(want))
		}
		for i := range got {
			if got[i] != want[i] {
				t.Fatalf("trial %d: got %v, want %v", trial, got, want)
			}
		}
	}
}

func TestGridQuickInsertFindable(t *testing.T) {
	g := NewGrid(Square(1000), 50)
	f := func(id int32, x, y float64) bool {
		if id < 0 {
			id = -id
		}
		p := Square(1000).Clamp(Pt(x, y))
		g.Insert(id, p)
		ids := g.Within(nil, p, 0.001)
		for _, got := range ids {
			if got == id {
				return true
			}
		}
		return false
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Error(err)
	}
}

func BenchmarkGridWithin(b *testing.B) {
	rng := rand.New(rand.NewSource(1))
	region := Square(450)
	g := NewGrid(region, 105)
	for i := 0; i < 200; i++ {
		g.Insert(int32(i), region.UniformPoint(rng))
	}
	var buf []int32
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		buf = g.Within(buf[:0], Pt(225, 225), 105)
	}
}
