package geom

import "math"

// Grid is a spatial hash over a rectangular region that supports efficient
// "all items within radius r of point p" queries. The wireless medium uses
// it to find candidate receivers without scanning every node.
//
// Items are identified by small non-negative integer IDs (node IDs). The
// zero value is not usable; construct with NewGrid.
type Grid struct {
	region Rect
	cell   float64
	cols   int
	rows   int
	cells  [][]int32
	where  map[int32]Point
}

// NewGrid creates a grid over region with the given cell size. Cell size
// should be on the order of the typical query radius; the communication
// range is a good choice.
func NewGrid(region Rect, cellSize float64) *Grid {
	if cellSize <= 0 {
		panic("geom: grid cell size must be positive")
	}
	cols := int(math.Ceil(region.Width()/cellSize)) + 1
	rows := int(math.Ceil(region.Height()/cellSize)) + 1
	if cols < 1 {
		cols = 1
	}
	if rows < 1 {
		rows = 1
	}
	return &Grid{
		region: region,
		cell:   cellSize,
		cols:   cols,
		rows:   rows,
		cells:  make([][]int32, cols*rows),
		where:  make(map[int32]Point),
	}
}

func (g *Grid) index(p Point) int {
	cx := int((p.X - g.region.MinX) / g.cell)
	cy := int((p.Y - g.region.MinY) / g.cell)
	if cx < 0 {
		cx = 0
	}
	if cx >= g.cols {
		cx = g.cols - 1
	}
	if cy < 0 {
		cy = 0
	}
	if cy >= g.rows {
		cy = g.rows - 1
	}
	return cy*g.cols + cx
}

// Insert adds id at position p. Inserting an existing id moves it.
func (g *Grid) Insert(id int32, p Point) {
	if old, ok := g.where[id]; ok {
		if old == p {
			return
		}
		g.remove(id, old)
	}
	g.where[id] = p
	idx := g.index(p)
	g.cells[idx] = append(g.cells[idx], id)
}

// Move updates the position of id. It is equivalent to Insert.
func (g *Grid) Move(id int32, p Point) { g.Insert(id, p) }

// Remove deletes id from the grid. Removing an absent id is a no-op.
func (g *Grid) Remove(id int32) {
	p, ok := g.where[id]
	if !ok {
		return
	}
	g.remove(id, p)
	delete(g.where, id)
}

func (g *Grid) remove(id int32, p Point) {
	idx := g.index(p)
	bucket := g.cells[idx]
	for i, v := range bucket {
		if v == id {
			bucket[i] = bucket[len(bucket)-1]
			g.cells[idx] = bucket[:len(bucket)-1]
			return
		}
	}
}

// Position returns the stored position of id.
func (g *Grid) Position(id int32) (Point, bool) {
	p, ok := g.where[id]
	return p, ok
}

// Len returns the number of items stored.
func (g *Grid) Len() int { return len(g.where) }

// Within appends to dst the ids of all items within radius r of p
// (inclusive) and returns the extended slice. Results are in no particular
// order; callers that need determinism must sort.
func (g *Grid) Within(dst []int32, p Point, r float64) []int32 {
	minCX := int((p.X - r - g.region.MinX) / g.cell)
	maxCX := int((p.X + r - g.region.MinX) / g.cell)
	minCY := int((p.Y - r - g.region.MinY) / g.cell)
	maxCY := int((p.Y + r - g.region.MinY) / g.cell)
	if minCX < 0 {
		minCX = 0
	}
	if minCY < 0 {
		minCY = 0
	}
	if maxCX >= g.cols {
		maxCX = g.cols - 1
	}
	if maxCY >= g.rows {
		maxCY = g.rows - 1
	}
	r2 := r * r
	for cy := minCY; cy <= maxCY; cy++ {
		for cx := minCX; cx <= maxCX; cx++ {
			for _, id := range g.cells[cy*g.cols+cx] {
				if g.where[id].Dist2(p) <= r2 {
					dst = append(dst, id)
				}
			}
		}
	}
	return dst
}
