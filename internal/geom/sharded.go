package geom

import (
	"math"
	"sync"
	"sync/atomic"
)

// ShardedGrid is a concurrency-safe spatial hash with the same query API as
// Grid, built for many independent writers and readers: the cell space is
// partitioned into horizontal shards with one write lock each, cell buckets
// are immutable snapshots published through atomic pointers (radius queries
// never take a lock), and the id→position index is striped by id hash so
// position updates for different items rarely contend.
//
// Consistency model: every individual cell read observes a fully formed
// bucket. A move that crosses cells is not atomic with respect to readers —
// a radius query racing with the move may miss the moving item for that one
// call (it is removed from the old cell before it appears in the new one,
// so an item is never reported twice). Items never vanish from Position.
//
// The zero value is not usable; construct with NewShardedGrid.
type ShardedGrid struct {
	region     Rect
	cell       float64
	cols, rows int

	rowsPerShard int
	shards       []gridShard

	stripes []posStripe

	// version counts bucket mutations (inserts, moves, removals) and
	// writers the mutations currently in flight. A reader that snapshots
	// cell buckets brackets the sweep with SnapshotVersion: equal clean
	// reads prove the snapshot reflects one consistent grid state — the
	// corridor cache stakes warm-path bit-identity on this. The version
	// alone is not enough: a writer stalled between its two bumps would
	// leave the counter steady over a half-applied move, which is what
	// the writers gate exists to catch.
	version atomic.Uint64
	writers atomic.Int64
}

// shardEntry is one item in a cell bucket. Positions are stored inline so
// the read path never touches the striped index.
type shardEntry struct {
	id int32
	p  Point
}

// gridShard owns a horizontal band of cell rows. The mutex serializes
// writers; readers go straight to the atomic bucket pointers.
type gridShard struct {
	mu    sync.Mutex
	row0  int // first global cell row owned by this shard
	cells []atomic.Pointer[[]shardEntry]
}

// posStripe is one stripe of the id→position index.
type posStripe struct {
	mu    sync.RWMutex
	where map[int32]Point
}

// DefaultShards is the shard count used when NewShardedGrid is given a
// non-positive count. It trades lock granularity against per-shard overhead
// for fields in the 10⁴–10⁵ node range.
const DefaultShards = 16

// NewShardedGrid creates a sharded grid over region with the given cell
// size and shard count (<=0 selects DefaultShards). The shard count is
// capped at the number of cell rows; cell size should be on the order of
// the typical query radius.
func NewShardedGrid(region Rect, cellSize float64, shardCount int) *ShardedGrid {
	if cellSize <= 0 {
		panic("geom: grid cell size must be positive")
	}
	cols := int(math.Ceil(region.Width()/cellSize)) + 1
	rows := int(math.Ceil(region.Height()/cellSize)) + 1
	if cols < 1 {
		cols = 1
	}
	if rows < 1 {
		rows = 1
	}
	if shardCount <= 0 {
		shardCount = DefaultShards
	}
	if shardCount > rows {
		shardCount = rows
	}
	rps := (rows + shardCount - 1) / shardCount
	// Rounding the band height up can leave the last bands empty; shrink the
	// shard count so every shard owns at least one row.
	shardCount = (rows + rps - 1) / rps
	g := &ShardedGrid{
		region:       region,
		cell:         cellSize,
		cols:         cols,
		rows:         rows,
		rowsPerShard: rps,
		shards:       make([]gridShard, shardCount),
		stripes:      make([]posStripe, shardCount),
	}
	for s := range g.shards {
		row0 := s * rps
		bandRows := rps
		if row0+bandRows > rows {
			bandRows = rows - row0
		}
		g.shards[s].row0 = row0
		g.shards[s].cells = make([]atomic.Pointer[[]shardEntry], bandRows*cols)
	}
	for s := range g.stripes {
		g.stripes[s].where = make(map[int32]Point)
	}
	return g
}

// Shards returns the number of spatial shards.
func (g *ShardedGrid) Shards() int { return len(g.shards) }

// Region returns the rectangle the grid was constructed over. Items may be
// stored outside it: cellOf clamps out-of-region points into edge cells.
func (g *ShardedGrid) Region() Rect { return g.region }

// CellSize returns the edge length of one grid cell.
func (g *ShardedGrid) CellSize() float64 { return g.cell }

// CellCount returns the cell-space dimensions: cells are addressed
// (cx, cy) with 0 <= cx < cols and 0 <= cy < rows. Together with CellSize
// and Region this is the addressing contract tile pyramids build on: cell
// (cx, cy) nominally spans CellRect(cx, cy), except that edge cells
// (cx or cy at 0 or the last index) extend unboundedly outward.
func (g *ShardedGrid) CellCount() (cols, rows int) { return g.cols, g.rows }

// Version returns the grid's mutation counter: it advances on every insert,
// move, and removal, and is stable while no writer runs. Comparing two
// Version reads detects completed mutations between them; use
// SnapshotVersion when taking a multi-bucket snapshot, which additionally
// rejects moments with a writer mid-mutation.
func (g *ShardedGrid) Version() uint64 { return g.version.Load() }

// SnapshotVersion returns the current version for bracketing a bucket
// snapshot; ok is false while any writer is mid-mutation, when a sweep
// could observe a half-applied move (an item absent from both its old and
// new cell). A snapshot is consistent iff SnapshotVersion returned ok with
// equal versions immediately before and after the sweep: a writer wholly
// inside the bracket moves the version, and one overlapping either edge
// trips the writers gate.
func (g *ShardedGrid) SnapshotVersion() (version uint64, ok bool) {
	if g.writers.Load() != 0 {
		return 0, false
	}
	return g.version.Load(), true
}

// cellOf returns the clamped cell coordinates of p, mirroring Grid.index.
func (g *ShardedGrid) cellOf(p Point) (cx, cy int) {
	cx = int((p.X - g.region.MinX) / g.cell)
	cy = int((p.Y - g.region.MinY) / g.cell)
	if cx < 0 {
		cx = 0
	}
	if cx >= g.cols {
		cx = g.cols - 1
	}
	if cy < 0 {
		cy = 0
	}
	if cy >= g.rows {
		cy = g.rows - 1
	}
	return cx, cy
}

func (g *ShardedGrid) shardFor(cy int) *gridShard {
	return &g.shards[cy/g.rowsPerShard]
}

// slot returns the shard-local bucket for global cell (cx, cy).
func (sh *gridShard) slot(cols, cx, cy int) *atomic.Pointer[[]shardEntry] {
	return &sh.cells[(cy-sh.row0)*cols+cx]
}

func (g *ShardedGrid) stripe(id int32) *posStripe {
	// Cheap avalanche over the id; ids are often sequential, and taking the
	// low bits directly would map neighbouring nodes to the same stripe.
	h := uint32(id) * 2654435761
	return &g.stripes[h%uint32(len(g.stripes))]
}

// addToCell publishes a new bucket for p's cell with id appended.
func (g *ShardedGrid) addToCell(id int32, p Point) {
	cx, cy := g.cellOf(p)
	sh := g.shardFor(cy)
	sh.mu.Lock()
	slot := sh.slot(g.cols, cx, cy)
	old := slot.Load()
	var next []shardEntry
	if old != nil {
		next = make([]shardEntry, len(*old), len(*old)+1)
		copy(next, *old)
	}
	next = append(next, shardEntry{id: id, p: p})
	slot.Store(&next)
	sh.mu.Unlock()
}

// removeFromCell publishes a new bucket for p's cell with id removed.
func (g *ShardedGrid) removeFromCell(id int32, p Point) {
	cx, cy := g.cellOf(p)
	sh := g.shardFor(cy)
	sh.mu.Lock()
	slot := sh.slot(g.cols, cx, cy)
	old := slot.Load()
	if old != nil {
		next := make([]shardEntry, 0, len(*old)-1)
		for _, e := range *old {
			if e.id != id {
				next = append(next, e)
			}
		}
		slot.Store(&next)
	}
	sh.mu.Unlock()
}

// Insert adds id at position p. Inserting an existing id moves it. Distinct
// ids may be inserted concurrently; calls for the same id must be
// externally ordered (last writer wins otherwise).
func (g *ShardedGrid) Insert(id int32, p Point) {
	st := g.stripe(id)
	st.mu.Lock()
	old, existed := st.where[id]
	if existed && old == p {
		st.mu.Unlock()
		return
	}
	st.where[id] = p
	// The stripe lock doubles as the per-item move lock: holding it across
	// the cell updates keeps racing writers to the same id from interleaving
	// their remove/add pairs. Shard locks are only ever taken one at a time
	// under a stripe lock, so the lock order is acyclic.
	// Writers gate up, version bumped on both sides of the bucket writes:
	// a snapshot reader (SnapshotVersion) rejects any moment a mutation is
	// in flight and any bracket a completed mutation moved the version in.
	g.writers.Add(1)
	g.version.Add(1)
	if existed {
		g.removeFromCell(id, old)
	}
	g.addToCell(id, p)
	g.version.Add(1)
	g.writers.Add(-1)
	st.mu.Unlock()
}

// Move updates the position of id. It is equivalent to Insert.
func (g *ShardedGrid) Move(id int32, p Point) { g.Insert(id, p) }

// Remove deletes id from the grid. Removing an absent id is a no-op.
func (g *ShardedGrid) Remove(id int32) {
	st := g.stripe(id)
	st.mu.Lock()
	p, ok := st.where[id]
	if !ok {
		st.mu.Unlock()
		return
	}
	delete(st.where, id)
	g.writers.Add(1)
	g.version.Add(1)
	g.removeFromCell(id, p)
	g.version.Add(1)
	g.writers.Add(-1)
	st.mu.Unlock()
}

// Position returns the stored position of id.
func (g *ShardedGrid) Position(id int32) (Point, bool) {
	st := g.stripe(id)
	st.mu.RLock()
	p, ok := st.where[id]
	st.mu.RUnlock()
	return p, ok
}

// Len returns the number of items stored.
func (g *ShardedGrid) Len() int {
	n := 0
	for s := range g.stripes {
		st := &g.stripes[s]
		st.mu.RLock()
		n += len(st.where)
		st.mu.RUnlock()
	}
	return n
}

// Within appends to dst the ids of all items within radius r of p
// (inclusive) and returns the extended slice. The read path takes no locks:
// it walks immutable bucket snapshots, so it runs concurrently with any
// number of writers and other readers. Results are in no particular order;
// callers that need determinism must sort.
func (g *ShardedGrid) Within(dst []int32, p Point, r float64) []int32 {
	g.VisitWithin(p, r, func(id int32, _ Point) {
		dst = append(dst, id)
	})
	return dst
}

// VisitWithin calls fn for every item within radius r of p (inclusive),
// passing the item's stored position. Like Within it takes no locks, so it
// is the preferred read path when the caller needs positions: it avoids one
// striped-index lookup per result.
func (g *ShardedGrid) VisitWithin(p Point, r float64, fn func(id int32, pos Point)) {
	minCX := int((p.X - r - g.region.MinX) / g.cell)
	maxCX := int((p.X + r - g.region.MinX) / g.cell)
	minCY := int((p.Y - r - g.region.MinY) / g.cell)
	maxCY := int((p.Y + r - g.region.MinY) / g.cell)
	if minCX < 0 {
		minCX = 0
	}
	if minCY < 0 {
		minCY = 0
	}
	if maxCX >= g.cols {
		maxCX = g.cols - 1
	}
	if maxCY >= g.rows {
		maxCY = g.rows - 1
	}
	r2 := r * r
	for cy := minCY; cy <= maxCY; cy++ {
		sh := g.shardFor(cy)
		base := (cy - sh.row0) * g.cols
		for cx := minCX; cx <= maxCX; cx++ {
			bucket := sh.cells[base+cx].Load()
			if bucket == nil {
				continue
			}
			for _, e := range *bucket {
				if e.p.Dist2(p) <= r2 {
					fn(e.id, e.p)
				}
			}
		}
	}
}

// VisitCellsInBox calls fn for every cell a radius-r query around p scans —
// the same clamped bounding box VisitWithin walks. It is the cell-sweep
// primitive of the corridor cache: collecting exactly these cells for a
// disk guarantees the collection is a superset of any VisitWithin over a
// disk contained in it, including the clamped edge cells that hold items
// lying outside the region.
func (g *ShardedGrid) VisitCellsInBox(p Point, r float64, fn func(cx, cy int)) {
	minCX := int((p.X - r - g.region.MinX) / g.cell)
	maxCX := int((p.X + r - g.region.MinX) / g.cell)
	minCY := int((p.Y - r - g.region.MinY) / g.cell)
	maxCY := int((p.Y + r - g.region.MinY) / g.cell)
	if minCX < 0 {
		minCX = 0
	}
	if minCY < 0 {
		minCY = 0
	}
	if maxCX >= g.cols {
		maxCX = g.cols - 1
	}
	if maxCY >= g.rows {
		maxCY = g.rows - 1
	}
	for cy := minCY; cy <= maxCY; cy++ {
		for cx := minCX; cx <= maxCX; cx++ {
			fn(cx, cy)
		}
	}
}

// VisitCell streams the items of one cell. Like VisitWithin it takes no
// locks — the bucket is an immutable snapshot — so it runs concurrently
// with writers; bracket a multi-cell sweep with Version reads to detect
// racing mutations. Out-of-range cell coordinates are a no-op.
func (g *ShardedGrid) VisitCell(cx, cy int, fn func(id int32, pos Point)) {
	if cx < 0 || cx >= g.cols || cy < 0 || cy >= g.rows {
		return
	}
	sh := g.shardFor(cy)
	bucket := sh.slot(g.cols, cx, cy).Load()
	if bucket == nil {
		return
	}
	for _, e := range *bucket {
		fn(e.id, e.p)
	}
}

// CellRect returns the spatial extent of cell (cx, cy). Edge cells extend
// past the region boundary: cellOf clamps out-of-region points into them,
// so their effective extent is unbounded outward — CellRect reports the
// nominal grid-aligned rectangle.
func (g *ShardedGrid) CellRect(cx, cy int) Rect {
	return Rect{
		MinX: g.region.MinX + float64(cx)*g.cell,
		MinY: g.region.MinY + float64(cy)*g.cell,
		MaxX: g.region.MinX + float64(cx+1)*g.cell,
		MaxY: g.region.MinY + float64(cy+1)*g.cell,
	}
}
