package mobiquery

import (
	"crypto/sha256"
	"fmt"
	"testing"
	"time"
)

// goldenDigest folds the pre-redesign fields of batch results into a
// digest. It deliberately enumerates fields instead of hashing the structs,
// so the streaming-only additions to QueryResult cannot perturb it: the
// digest covers exactly what the pre-redesign API returned.
func goldenDigest(results []Result) string {
	h := sha256.New()
	for _, res := range results {
		fmt.Fprintf(h, "%g|%g|%g|%g|%d|%d\n",
			res.SuccessRatio, res.MeanFidelity,
			res.PowerPerSleepingNode, res.PowerPerBackboneNode,
			res.MaxPrefetchLength, res.BackboneNodes)
		for _, q := range res.Queries {
			fmt.Fprintf(h, "%d|%v|%t|%t|%g|%d|%d|%g|%t\n",
				q.K, q.Deadline, q.Received, q.OnTime,
				q.Value, q.Contributors, q.AreaNodes, q.Fidelity, q.Success)
		}
	}
	return fmt.Sprintf("%x", h.Sum(nil))
}

// The digests below were captured from the pre-redesign mobiquery.go
// (commit eb3faee) running the same configurations. The compat wrappers
// must reproduce them byte for byte.
const (
	goldenRun  = "af320d311384bc64738492af09117d3351740e8d01b5d6a8b79a746ebb4a6b0e"
	goldenTeam = "f3186ad5fabf0312e138f70e7318f1034c098ae0821b647c8f4d4ae593929a34"
)

// TestRunMatchesPreRedesignGolden pins the compat guarantee: the batch API
// routed through the new error-returning core produces output identical to
// the pre-redesign implementation.
func TestRunMatchesPreRedesignGolden(t *testing.T) {
	if got := goldenDigest([]Result{Run(quickSim())}); got != goldenRun {
		t.Errorf("Run digest = %s, want pre-redesign %s", got, goldenRun)
	}
}

func TestRunTeamMatchesPreRedesignGolden(t *testing.T) {
	team := RunTeam(quickSim(), []TeamMember{
		{QueryID: 1, Scheme: JIT, Start: Pt(50, 100), VelocityX: 4},
		{QueryID: 2, Scheme: JIT, Start: Pt(400, 350), VelocityX: -4},
	})
	if got := goldenDigest(team); got != goldenTeam {
		t.Errorf("RunTeam digest = %s, want pre-redesign %s", got, goldenTeam)
	}
}

func TestRunEReportsErrors(t *testing.T) {
	s := DefaultSimulation()
	s.Nodes = 0
	if _, err := RunE(s); err == nil {
		t.Error("RunE of an invalid simulation should error")
	}
	c := DefaultScaleConfig()
	c.Users = 0
	if _, err := RunScaleE(c); err == nil {
		t.Error("RunScaleE of an invalid config should error")
	}
	if _, err := RunTeamE(DefaultSimulation(), nil); err == nil {
		t.Error("RunTeamE with no members should error")
	}
	if _, err := RunTeamE(DefaultSimulation(), []TeamMember{{QueryID: 0}}); err == nil {
		t.Error("RunTeamE with a zero QueryID should error")
	}
	if _, err := RunTeamE(DefaultSimulation(), []TeamMember{
		{QueryID: 1, Scheme: JIT}, {QueryID: 1, Scheme: JIT},
	}); err == nil {
		t.Error("RunTeamE with duplicate QueryIDs should error")
	}
}

func TestRunPanicsDelegateToErrorVariants(t *testing.T) {
	bad := DefaultSimulation()
	bad.Nodes = 0
	assertPanics(t, "Run", func() { Run(bad) })
	badScale := DefaultScaleConfig()
	badScale.Users = 0
	assertPanics(t, "RunScale", func() { RunScale(badScale) })
	assertPanics(t, "RunTeam", func() { RunTeam(bad, []TeamMember{{QueryID: 1, Scheme: JIT}}) })
}

func assertPanics(t *testing.T, name string, fn func()) {
	t.Helper()
	defer func() {
		if recover() == nil {
			t.Errorf("%s with invalid config should panic", name)
		}
	}()
	fn()
}

// TestRunEMatchesRun pins that the error variant and the panicking wrapper
// return the same thing for a valid configuration.
func TestRunEMatchesRun(t *testing.T) {
	s := quickSim()
	s.Duration = 30 * time.Second
	s.Lifetime = 26 * time.Second
	viaE, err := RunE(s)
	if err != nil {
		t.Fatalf("RunE: %v", err)
	}
	if a, b := goldenDigest([]Result{viaE}), goldenDigest([]Result{Run(s)}); a != b {
		t.Errorf("RunE and Run disagree: %s vs %s", a, b)
	}
}
