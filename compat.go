package mobiquery

import (
	"fmt"

	"mobiquery/internal/experiment"
	"mobiquery/internal/geom"
)

// This file is the batch compatibility surface: the pre-session one-shot
// entry points, kept byte-identical for existing callers. Each panicking
// function is a one-line wrapper over its error-returning variant.

// convertRunResult maps an internal run result onto the public Result.
func convertRunResult(rr experiment.RunResult) Result {
	out := Result{
		SuccessRatio:         rr.SuccessRatio,
		MeanFidelity:         rr.MeanFidelity,
		PowerPerSleepingNode: rr.PowerSleeper,
		PowerPerBackboneNode: rr.PowerBackbone,
		MaxPrefetchLength:    rr.MaxPrefetchLength,
		BackboneNodes:        rr.BackboneNodes,
		Queries:              make([]QueryResult, 0, len(rr.Records)),
	}
	for _, r := range rr.Records {
		out.Queries = append(out.Queries, QueryResult{
			K:            r.K,
			Deadline:     r.Deadline,
			Received:     r.Received,
			OnTime:       r.OnTime,
			Value:        r.Value,
			Contributors: r.Contributors,
			AreaNodes:    r.AreaNodes,
			Fidelity:     r.Fidelity,
			Success:      r.Success,
		})
	}
	return out
}

// RunE executes the simulation to completion through the discrete-event
// stack, reporting configuration errors instead of panicking.
func RunE(s Simulation) (Result, error) {
	sc := s.scenario()
	if err := sc.Validate(); err != nil {
		return Result{}, err
	}
	return convertRunResult(experiment.Run(sc)), nil
}

// Run executes the simulation to completion. It panics on invalid
// configuration; RunE is the error-returning variant.
func Run(s Simulation) Result {
	res, err := RunE(s)
	if err != nil {
		panic(err)
	}
	return res
}

// RunScaleE executes the scale scenario to completion, reporting
// configuration errors instead of panicking.
func RunScaleE(c ScaleConfig) (ScaleResult, error) {
	sc := c.scale()
	if err := sc.Validate(); err != nil {
		return ScaleResult{}, err
	}
	r := experiment.RunScale(sc)
	return ScaleResult{
		Evaluations:   r.Evaluations,
		MeanAreaNodes: r.MeanArea,
		MeanValue:     r.MeanValue,
		Checksum:      r.Checksum,
		Elapsed:       r.Elapsed,
	}, nil
}

// RunScale executes the scale scenario to completion. It panics on invalid
// configuration; RunScaleE is the error-returning variant.
func RunScale(c ScaleConfig) ScaleResult {
	res, err := RunScaleE(c)
	if err != nil {
		panic(err)
	}
	return res
}

// RunTeamE runs base's network with several concurrent mobile users and
// returns one Result per member, in order, reporting configuration errors
// instead of panicking. The members share the sensor network, so their
// query traffic contends: the paper's storage and contention analysis
// (Section 5) is about exactly this load.
func RunTeamE(base Simulation, members []TeamMember) ([]Result, error) {
	sc := base.scenario()
	if err := sc.Validate(); err != nil {
		return nil, err
	}
	if len(members) == 0 {
		return nil, fmt.Errorf("mobiquery: team needs at least one member")
	}
	users := make([]experiment.UserSpec, len(members))
	seen := make(map[uint32]bool, len(members))
	for i, m := range members {
		if m.QueryID == 0 || seen[m.QueryID] {
			return nil, fmt.Errorf("mobiquery: member %d needs a unique non-zero QueryID", i)
		}
		seen[m.QueryID] = true
		users[i] = experiment.UserSpec{
			QueryID:  m.QueryID,
			Scheme:   m.Scheme,
			Start:    m.Start,
			Velocity: geom.V(m.VelocityX, m.VelocityY),
		}
	}
	rrs := experiment.RunMulti(sc, users)
	out := make([]Result, len(rrs))
	for i, rr := range rrs {
		out[i] = convertRunResult(rr)
	}
	return out, nil
}

// RunTeam runs base's network with several concurrent mobile users and
// returns one Result per member, in order. It panics on invalid
// configuration; RunTeamE is the error-returning variant.
func RunTeam(base Simulation, members []TeamMember) []Result {
	res, err := RunTeamE(base, members)
	if err != nil {
		panic(err)
	}
	return res
}
