package mobiquery

// Session-path tests of corridor prefetching: warm serves are bit-identical
// to cold scans, a zero lookahead is exactly the pre-corridor behavior,
// results are invariant to engine sizing, and noisy GPS-predicted motion
// produces mispredicts that re-plan immediately while keeping honest
// accounting.

import (
	"context"
	"testing"
	"time"
)

// corridorSpec is prefetchSpec plus a corridor: 3 boundaries of lookahead
// under a small error bound (the synthesized profiles of plain motion
// sources are exact up to float noise).
func corridorSpec(lookahead int) QuerySpec {
	spec := prefetchSpec(JITStrategy())
	spec.Corridor = CorridorSpec{Lookahead: lookahead, ErrorModel: ErrorModel{Base: 2}}
	return spec
}

// stripCorridorHit zeroes the one field allowed to differ between a warm
// and a cold serve.
func stripCorridorHit(rs []QueryResult) []QueryResult {
	out := append([]QueryResult(nil), rs...)
	for i := range out {
		out[i].CorridorHit = false
	}
	return out
}

// TestCorridorWarmServesIdenticalResults runs a corridor subscription and a
// plain-JIT twin over the same service and clock: every period's values
// must match exactly (the corridor only changes how nodes are enumerated),
// the corridor twin must actually serve warm periods, and its ledger must
// show them.
func TestCorridorWarmServesIdenticalResults(t *testing.T) {
	svc, err := Open(context.Background(), sleepyNetwork(), WithResultBuffer(64))
	if err != nil {
		t.Fatal(err)
	}
	defer svc.Close()
	motion := func() MotionSource { return LinearMotion(Pt(200, 200), 2, 1) }
	plain, err := svc.Subscribe(context.Background(), prefetchSpec(JITStrategy()), motion())
	if err != nil {
		t.Fatal(err)
	}
	warm, err := svc.Subscribe(context.Background(), corridorSpec(3), motion())
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 100; i++ {
		if err := svc.Advance(300 * time.Millisecond); err != nil {
			t.Fatal(err)
		}
	}
	pr, wr := drain(plain), drain(warm)
	if len(pr) != 30 || len(wr) != 30 {
		t.Fatalf("streamed %d/%d periods, want 30 each", len(pr), len(wr))
	}
	hits := 0
	for i := range wr {
		if wr[i].CorridorHit {
			hits++
		}
		stripped := wr[i]
		stripped.CorridorHit = false
		if stripped != pr[i] {
			t.Fatalf("period %d diverged between corridor and plain JIT:\nwarm %+v\ncold %+v", i+1, wr[i], pr[i])
		}
		if pr[i].CorridorHit {
			t.Fatalf("period %d: corridor-less subscription reports a hit", i+1)
		}
	}
	if hits == 0 {
		t.Fatal("corridor subscription never served a warm period")
	}
	st, ok := warm.PrefetchStats()
	if !ok {
		t.Fatal("corridor subscription has no planner stats")
	}
	if st.CorridorHits != int64(hits) {
		t.Errorf("ledger hits = %d, results show %d", st.CorridorHits, hits)
	}
	if st.CorridorHits+st.CorridorMisses != 30 {
		t.Errorf("hits %d + misses %d != 30 evaluations", st.CorridorHits, st.CorridorMisses)
	}
	if st.CorridorStaged == 0 {
		t.Error("ledger shows no staged boundaries")
	}
	if st.CorridorMispredicts != 0 {
		t.Errorf("exact synthesized profiles produced %d mispredicts", st.CorridorMispredicts)
	}
	if pst, _ := plain.PrefetchStats(); pst.CorridorHits != 0 || pst.CorridorStaged != 0 {
		t.Errorf("plain subscription carries corridor counters: %+v", pst)
	}
}

// TestCorridorLookaheadZeroIsDisabled pins the nil-hook contract: a spec
// with Corridor.Lookahead 0 behaves exactly like one without a corridor —
// same results, no corridor counters.
func TestCorridorLookaheadZeroIsDisabled(t *testing.T) {
	run := func(spec QuerySpec) ([]QueryResult, PrefetchStats) {
		svc, err := Open(context.Background(), sleepyNetwork(), WithResultBuffer(64))
		if err != nil {
			t.Fatal(err)
		}
		defer svc.Close()
		sub, err := svc.Subscribe(context.Background(), spec, LinearMotion(Pt(150, 250), 1, 2))
		if err != nil {
			t.Fatal(err)
		}
		for i := 0; i < 60; i++ {
			if err := svc.Advance(300 * time.Millisecond); err != nil {
				t.Fatal(err)
			}
		}
		st, _ := sub.PrefetchStats()
		return drain(sub), st
	}
	zero := corridorSpec(0)
	zero.Corridor.ErrorModel = ErrorModel{} // lookahead 0 ignores the model
	gotR, gotS := run(zero)
	wantR, wantS := run(prefetchSpec(JITStrategy()))
	if len(gotR) != len(wantR) {
		t.Fatalf("%d results vs %d", len(gotR), len(wantR))
	}
	for i := range gotR {
		if gotR[i] != wantR[i] {
			t.Fatalf("period %d diverged with a zero-lookahead corridor:\n got %+v\nwant %+v", i+1, gotR[i], wantR[i])
		}
	}
	if gotS != wantS {
		t.Errorf("zero-lookahead stats %+v differ from corridor-less %+v", gotS, wantS)
	}
}

// TestCorridorInvariantAcrossEngineSizing extends the concurrency
// invariant to the corridor path: shard and worker counts never change a
// corridor subscription's results — including which periods were served
// warm.
func TestCorridorInvariantAcrossEngineSizing(t *testing.T) {
	run := func(shards, workers int) []QueryResult {
		nc := sleepyNetwork()
		nc.Service = ServiceConfig{Shards: shards, Workers: workers}
		svc, err := Open(context.Background(), nc, WithResultBuffer(64))
		if err != nil {
			t.Fatal(err)
		}
		defer svc.Close()
		var subs []*Subscription
		for i := 0; i < 4; i++ {
			look := i % 3 // mix of disabled and enabled corridors
			sub, err := svc.Subscribe(context.Background(), corridorSpec(look),
				LinearMotion(Pt(120+40*float64(i), 160), 2, -1))
			if err != nil {
				t.Fatal(err)
			}
			subs = append(subs, sub)
		}
		for i := 0; i < 40; i++ {
			if err := svc.Advance(300 * time.Millisecond); err != nil {
				t.Fatal(err)
			}
		}
		var all []QueryResult
		for _, sub := range subs {
			all = append(all, drain(sub)...)
		}
		return all
	}
	ref := run(0, 0)
	warmRef := 0
	for _, r := range ref {
		if r.CorridorHit {
			warmRef++
		}
	}
	if warmRef == 0 {
		t.Fatal("reference run served no warm periods; the invariance check is vacuous")
	}
	for _, cfg := range [][2]int{{1, 1}, {16, 3}} {
		got := run(cfg[0], cfg[1])
		if len(got) != len(ref) {
			t.Fatalf("shards=%d workers=%d: %d results vs %d", cfg[0], cfg[1], len(got), len(ref))
		}
		for i := range got {
			if got[i] != ref[i] {
				t.Fatalf("shards=%d workers=%d: result %d diverged:\n got %+v\nwant %+v", cfg[0], cfg[1], i, got[i], ref[i])
			}
		}
	}
}

// TestGPSPredictedMotionMispredicts drives a corridor subscription from a
// noisy GPS predictor over a turning course with a deliberately tight
// error model: straight stretches serve warm, sharp prediction misses are
// detected as mispredicts (served cold, with an immediate re-plan), and
// the stream never wedges.
func TestGPSPredictedMotionMispredicts(t *testing.T) {
	src, err := GPSPredictedMotion(CourseConfig{
		Seed:           7,
		RegionSide:     450,
		Start:          Pt(220, 220),
		SpeedMin:       3,
		SpeedMax:       5,
		ChangeInterval: 5 * time.Second,
		Duration:       90 * time.Second,
	}, GPSConfig{Seed: 11, Sampling: 2 * time.Second, Error: 5})
	if err != nil {
		t.Fatal(err)
	}
	svc, err := Open(context.Background(), sleepyNetwork(), WithResultBuffer(128))
	if err != nil {
		t.Fatal(err)
	}
	defer svc.Close()
	spec := prefetchSpec(JITStrategy())
	spec.Corridor = CorridorSpec{Lookahead: 3, ErrorModel: ErrorModel{Base: 25}}
	sub, err := svc.Subscribe(context.Background(), spec, src)
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 90; i++ {
		if err := svc.Advance(time.Second); err != nil {
			t.Fatal(err)
		}
	}
	results := drain(sub)
	if len(results) != 90 {
		t.Fatalf("streamed %d periods, want 90", len(results))
	}
	st, ok := sub.PrefetchStats()
	if !ok {
		t.Fatal("no planner stats")
	}
	if st.CorridorHits == 0 {
		t.Error("noisy predictions never served a warm period; the model is uselessly tight")
	}
	if st.CorridorMispredicts == 0 {
		t.Error("a tight model over noisy predictions produced no mispredicts; the detection path is untested")
	}
	if st.Replans == 0 {
		t.Error("neither the predictor stream nor mispredicts re-planned")
	}
	// Honest accounting: a fully staged, credited period is warm; the
	// ledger's warm count matches the per-result flags.
	hits := 0
	for _, r := range results {
		if r.CorridorHit {
			hits++
		}
	}
	if int64(hits) != st.CorridorHits {
		t.Errorf("per-result warm count %d vs ledger %d", hits, st.CorridorHits)
	}
}

// TestGPSPredictedMotionValidation pins constructor errors.
func TestGPSPredictedMotionValidation(t *testing.T) {
	good := CourseConfig{Seed: 1, RegionSide: 450, Start: Pt(10, 10), SpeedMin: 1, SpeedMax: 2,
		ChangeInterval: 5 * time.Second, Duration: 30 * time.Second}
	if _, err := GPSPredictedMotion(good, GPSConfig{Sampling: time.Second}); err != nil {
		t.Fatalf("valid config rejected: %v", err)
	}
	bad := good
	bad.SpeedMin = 0
	if _, err := GPSPredictedMotion(bad, GPSConfig{Sampling: time.Second}); err == nil {
		t.Error("zero SpeedMin accepted")
	}
	if _, err := GPSPredictedMotion(good, GPSConfig{Sampling: 0}); err == nil {
		t.Error("zero GPS sampling accepted")
	}
	if _, err := GPSPredictedMotion(good, GPSConfig{Sampling: time.Second, Error: -1}); err == nil {
		t.Error("negative GPS error accepted")
	}
}

// TestCorridorRequiresPrefetchingStrategy pins validation: a corridor on an
// on-demand spec is rejected, as are negative lookaheads and models.
func TestCorridorRequiresPrefetchingStrategy(t *testing.T) {
	svc, err := Open(context.Background(), sleepyNetwork())
	if err != nil {
		t.Fatal(err)
	}
	defer svc.Close()
	spec := prefetchSpec(OnDemandStrategy())
	spec.Corridor = CorridorSpec{Lookahead: 2}
	if _, err := svc.Subscribe(context.Background(), spec, StaticPosition(Pt(225, 225))); err == nil {
		t.Error("corridor without a prefetching strategy accepted")
	}
	spec = prefetchSpec(JITStrategy())
	spec.Corridor = CorridorSpec{Lookahead: -1}
	if _, err := svc.Subscribe(context.Background(), spec, StaticPosition(Pt(225, 225))); err == nil {
		t.Error("negative lookahead accepted")
	}
	spec = prefetchSpec(JITStrategy())
	spec.Corridor = CorridorSpec{Lookahead: 2, ErrorModel: ErrorModel{Base: -1}}
	if _, err := svc.Subscribe(context.Background(), spec, StaticPosition(Pt(225, 225))); err == nil {
		t.Error("negative error model accepted")
	}
}

// TestCorridorReplanRacesAdvance hammers waypoint updates (which re-sweep
// the corridor) against the service clock; run under -race. The stream
// must keep delivering and the ledger must stay coherent.
func TestCorridorReplanRacesAdvance(t *testing.T) {
	svc, err := Open(context.Background(), sleepyNetwork(), WithResultBuffer(256))
	if err != nil {
		t.Fatal(err)
	}
	defer svc.Close()
	var subs []*Subscription
	for i := 0; i < 6; i++ {
		sub, err := svc.Subscribe(context.Background(), corridorSpec(3),
			LinearMotion(Pt(120+30*float64(i), 200), 2, 1))
		if err != nil {
			t.Fatal(err)
		}
		subs = append(subs, sub)
	}
	done := make(chan struct{})
	go func() {
		defer close(done)
		for i := 0; i < 150; i++ {
			sub := subs[i%len(subs)]
			if err := sub.UpdateWaypoint(Pt(150+float64(i), 210)); err != nil {
				return
			}
		}
	}()
	for i := 0; i < 60; i++ {
		if err := svc.Advance(300 * time.Millisecond); err != nil {
			t.Fatal(err)
		}
	}
	<-done
	for _, sub := range subs {
		if sub.Stats().Delivered == 0 {
			t.Fatal("stream wedged under concurrent corridor replans")
		}
		st, ok := sub.PrefetchStats()
		if !ok || st.CorridorStaged == 0 {
			t.Fatalf("corridor ledger empty under churn: %+v/%v", st, ok)
		}
	}
}
