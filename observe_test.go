package mobiquery

import (
	"context"
	"strings"
	"testing"
	"time"

	"mobiquery/internal/obs"
)

// smallSpec is centerSpec shrunk below the pyramid attachment threshold so
// its periods are served cold (on-demand), pinning the cold class.
func smallSpec() QuerySpec {
	spec := centerSpec()
	spec.Radius = 50
	return spec
}

// TestTraceSpans pins the period lifecycle tracer end to end on a manual
// clock: one span per delivered period, stamps in stage order, cold class
// for a plain on-demand subscription, delivered outcome, and ring eviction
// at depth.
func TestTraceSpans(t *testing.T) {
	svc := mustOpen(t, WithAlignedSampling(), WithTraceDepth(4))
	sub, err := svc.Subscribe(context.Background(), smallSpec(), StaticPosition(Pt(225, 225)))
	if err != nil {
		t.Fatalf("Subscribe: %v", err)
	}
	const periods = 6
	for i := 0; i < periods; i++ {
		if err := svc.Advance(2 * time.Second); err != nil {
			t.Fatalf("Advance: %v", err)
		}
	}
	spans := sub.TraceSpans(nil)
	if len(spans) != 4 {
		t.Fatalf("got %d spans, want ring depth 4", len(spans))
	}
	for i, sp := range spans {
		wantK := periods - 4 + i + 1
		if sp.K != wantK {
			t.Errorf("span %d: K = %d, want %d", i, sp.K, wantK)
		}
		if sp.Due != time.Duration(sp.K)*2*time.Second {
			t.Errorf("span %d: due %v, want %v", i, sp.Due, time.Duration(sp.K)*2*time.Second)
		}
		if sp.Class != obs.ClassCold {
			t.Errorf("span %d: class %v, want cold", i, sp.Class)
		}
		if sp.Outcome != obs.OutcomeDelivered {
			t.Errorf("span %d: outcome %v, want delivered", i, sp.Outcome)
		}
		if !(sp.ArmedNS <= sp.PoppedNS && sp.PoppedNS <= sp.EvalStartNS &&
			sp.EvalStartNS <= sp.EvalEndNS && sp.EvalEndNS <= sp.DeliveredNS) {
			t.Errorf("span %d: stamps out of stage order: %+v", i, sp)
		}
	}
	// Consecutive spans chain: period k+1's armed stamp is period k's
	// evaluation end.
	for i := 1; i < len(spans); i++ {
		if spans[i].ArmedNS != spans[i-1].EvalEndNS {
			t.Errorf("span %d armed %d != span %d eval end %d",
				i, spans[i].ArmedNS, i-1, spans[i-1].EvalEndNS)
		}
	}
}

// TestTraceDisabled pins WithTraceDepth(0): no ring, empty snapshots, and
// the service still delivers.
func TestTraceDisabled(t *testing.T) {
	svc := mustOpen(t, WithAlignedSampling(), WithTraceDepth(0))
	sub, err := svc.Subscribe(context.Background(), centerSpec(), StaticPosition(Pt(225, 225)))
	if err != nil {
		t.Fatalf("Subscribe: %v", err)
	}
	if err := svc.Advance(2 * time.Second); err != nil {
		t.Fatalf("Advance: %v", err)
	}
	if got := sub.TraceSpans(nil); len(got) != 0 {
		t.Fatalf("tracing disabled but got %d spans", len(got))
	}
	if st := svc.Stats(); st.Delivered != 1 {
		t.Fatalf("delivered = %d, want 1", st.Delivered)
	}
}

// TestServiceStatsInto pins the reuse variant: identical to Stats, reusing
// the SchedStripeLens backing array, allocation-free once warm.
func TestServiceStatsInto(t *testing.T) {
	svc := mustOpen(t, WithAlignedSampling())
	if _, err := svc.Subscribe(context.Background(), centerSpec(), StaticPosition(Pt(225, 225))); err != nil {
		t.Fatalf("Subscribe: %v", err)
	}
	if err := svc.Advance(2 * time.Second); err != nil {
		t.Fatalf("Advance: %v", err)
	}
	var into ServiceStats
	svc.StatsInto(&into)
	direct := svc.Stats()
	if into.Now != direct.Now || into.Subscribers != direct.Subscribers ||
		into.Delivered != direct.Delivered || into.SchedLen != direct.SchedLen ||
		into.SchedStripes != direct.SchedStripes ||
		len(into.SchedStripeLens) != len(direct.SchedStripeLens) {
		t.Fatalf("StatsInto = %+v, Stats = %+v", into, direct)
	}
	before := &into.SchedStripeLens[0]
	if allocs := testing.AllocsPerRun(100, func() { svc.StatsInto(&into) }); allocs != 0 {
		t.Fatalf("warm StatsInto allocates %v per run", allocs)
	}
	if &into.SchedStripeLens[0] != before {
		t.Fatalf("warm StatsInto replaced the SchedStripeLens backing array")
	}
}

// TestServiceMetricsExposition pins the service registry: deterministic
// counters after a manual-clock run, validator-clean exposition, and the
// scrape-time ledger agreeing with Stats.
func TestServiceMetricsExposition(t *testing.T) {
	svc := mustOpen(t, WithAlignedSampling())
	sub, err := svc.Subscribe(context.Background(), smallSpec(), StaticPosition(Pt(225, 225)))
	if err != nil {
		t.Fatalf("Subscribe: %v", err)
	}
	for i := 0; i < 3; i++ {
		if err := svc.Advance(time.Second); err != nil {
			t.Fatalf("Advance: %v", err)
		}
	}
	var sb strings.Builder
	if err := svc.Metrics().WritePrometheus(&sb); err != nil {
		t.Fatalf("WritePrometheus: %v", err)
	}
	out := sb.String()
	if _, _, err := obs.ValidateExposition(strings.NewReader(out)); err != nil {
		t.Fatalf("exposition invalid: %v\n%s", err, out)
	}
	st := svc.Stats()
	if st.Delivered != 1 {
		t.Fatalf("delivered = %d, want 1 (3 x 1s over a 2s period)", st.Delivered)
	}
	for _, want := range []string{
		"mobiquery_advance_ticks_total 3\n",
		"mobiquery_advance_idle_ticks_total 2\n",
		`mobiquery_periods_evaluated_total{class="cold"} 1` + "\n",
		"mobiquery_results_delivered_total 1\n",
		"mobiquery_subscribers 1\n",
		"mobiquery_virtual_time_ns 3000000000\n",
		"mobiquery_advance_pop_batch_count 1\n",
	} {
		if !strings.Contains(out, want) {
			t.Fatalf("exposition missing %q:\n%s", want, out)
		}
	}
	_ = sub
}
