package mobiquery

import (
	"context"
	"math"
	"runtime"
	"testing"
	"time"
)

// testNetwork is the shared small field: 200 nodes over 450 m, sampling
// once per second, constant readings of 20.
func testNetwork() NetworkConfig { return DefaultNetworkConfig() }

// centerSpec is a query over the middle of the field that comfortably
// covers many nodes.
func centerSpec() QuerySpec {
	return QuerySpec{
		Radius:    150,
		Period:    2 * time.Second,
		Freshness: time.Second,
	}
}

func mustOpen(t *testing.T, opts ...Option) *Service {
	t.Helper()
	svc, err := Open(context.Background(), testNetwork(), opts...)
	if err != nil {
		t.Fatalf("Open: %v", err)
	}
	t.Cleanup(func() { svc.Close() })
	return svc
}

func TestOpenReturnsConfigErrors(t *testing.T) {
	bad := []NetworkConfig{
		{Nodes: 0, RegionSide: 100},
		{Nodes: 10, RegionSide: 0},
		{Nodes: 10, RegionSide: 100, SamplePeriod: -1},
		{Nodes: 10, RegionSide: 100, Service: ServiceConfig{Shards: -1}},
	}
	for i, nc := range bad {
		if _, err := Open(context.Background(), nc); err == nil {
			t.Errorf("config %d: expected an error, got a service", i)
		}
	}
	if _, err := Open(context.Background(), testNetwork(), WithResultBuffer(0)); err == nil {
		t.Error("zero result buffer should be an error")
	}
	if _, err := Open(context.Background(), testNetwork(), WithRealTime(-time.Second)); err == nil {
		t.Error("negative tick should be an error")
	}
}

func TestSubscribeReturnsSpecErrors(t *testing.T) {
	svc := mustOpen(t)
	src := StaticPosition(Pt(225, 225))
	bad := []QuerySpec{
		{Radius: 0, Period: time.Second},
		{Radius: 100, Period: 0},
		{Radius: 100, Period: time.Second, Deadline: -1},
		{Radius: 100, Period: time.Second, Freshness: 2 * time.Second},
		{Radius: 100, Period: time.Second, Aggregate: AggKind(99)},
		{Radius: 100, Period: 2 * time.Second, Lifetime: time.Second},
	}
	for i, spec := range bad {
		if _, err := svc.Subscribe(context.Background(), spec, src); err == nil {
			t.Errorf("spec %d (%+v): expected an error", i, spec)
		}
	}
	if _, err := svc.Subscribe(context.Background(), centerSpec(), nil); err == nil {
		t.Error("nil motion source should be an error")
	}
	svc.Close()
	if _, err := svc.Subscribe(context.Background(), centerSpec(), src); err == nil {
		t.Error("subscribe on a closed service should be an error")
	}
	if err := svc.Advance(time.Second); err == nil {
		t.Error("advance on a closed service should be an error")
	}
}

func TestSubscriptionStreamsPerPeriodResults(t *testing.T) {
	svc := mustOpen(t, WithAlignedSampling())
	sub, err := svc.Subscribe(context.Background(), centerSpec(), StaticPosition(Pt(225, 225)))
	if err != nil {
		t.Fatalf("Subscribe: %v", err)
	}
	for i := 0; i < 3; i++ {
		if err := svc.Advance(2 * time.Second); err != nil {
			t.Fatalf("Advance: %v", err)
		}
	}
	sub.Close()
	var got []QueryResult
	for r := range sub.Results() {
		got = append(got, r)
	}
	if len(got) != 3 {
		t.Fatalf("received %d results, want 3", len(got))
	}
	for i, r := range got {
		if r.K != i+1 || r.Deadline != time.Duration(i+1)*2*time.Second {
			t.Errorf("result %d: header K=%d deadline=%v", i, r.K, r.Deadline)
		}
		if !r.Received || !r.OnTime || r.Lateness != 0 {
			t.Errorf("result %d: delivery flags %+v", i, r)
		}
		if r.EvaluatedAt != r.Deadline {
			t.Errorf("result %d: evaluated at %v, want at the deadline %v", i, r.EvaluatedAt, r.Deadline)
		}
		// Aligned sampling and a deadline on a whole second: readings are
		// taken exactly at the deadline, so nothing is stale.
		if r.MaxStaleness != 0 || r.StaleNodes != 0 {
			t.Errorf("result %d: staleness %v / %d stale nodes, want none", i, r.MaxStaleness, r.StaleNodes)
		}
		if r.Value != 20 || r.Contributors == 0 || r.Contributors != r.AreaNodes {
			t.Errorf("result %d: value %v from %d/%d nodes", i, r.Value, r.Contributors, r.AreaNodes)
		}
		if r.Fidelity != 1 || !r.Success {
			t.Errorf("result %d: fidelity %v success %v", i, r.Fidelity, r.Success)
		}
	}
	st := sub.Stats()
	if st.Delivered != 3 || st.Dropped != 0 || st.Late != 0 || st.NextPeriod != 4 {
		t.Errorf("stats = %+v", st)
	}
}

// TestStalenessPinned pins the freshness ledger exactly: with aligned 1 s
// sampling and a 2.5 s period, every reading is 500 ms old at the
// deadline. A window of 1 s admits them all; a window of 400 ms excludes
// every node.
func TestStalenessPinned(t *testing.T) {
	spec := centerSpec()
	spec.Period = 2500 * time.Millisecond
	src := StaticPosition(Pt(225, 225))

	svc := mustOpen(t, WithAlignedSampling())
	sub, err := svc.Subscribe(context.Background(), spec, src)
	if err != nil {
		t.Fatal(err)
	}
	svc.Advance(spec.Period)
	r := <-sub.Results()
	if r.MaxStaleness != 500*time.Millisecond {
		t.Errorf("MaxStaleness = %v, want exactly 500ms", r.MaxStaleness)
	}
	if r.StaleNodes != 0 || r.Contributors == 0 || r.Fidelity != 1 {
		t.Errorf("1s window rejected readings: %+v", r)
	}

	strict := spec
	strict.Freshness = 400 * time.Millisecond
	svc2 := mustOpen(t, WithAlignedSampling())
	sub2, err := svc2.Subscribe(context.Background(), strict, src)
	if err != nil {
		t.Fatal(err)
	}
	svc2.Advance(spec.Period)
	r2 := <-sub2.Results()
	if r2.Contributors != 0 || r2.StaleNodes != r.AreaNodes || r2.Fidelity != 0 {
		t.Errorf("400ms window: %d contributors, %d stale of %d area nodes, fidelity %v",
			r2.Contributors, r2.StaleNodes, r2.AreaNodes, r2.Fidelity)
	}
	if !math.IsNaN(r2.Value) {
		t.Errorf("Avg over zero fresh readings = %v, want NaN", r2.Value)
	}
	if r2.Success {
		t.Error("a result with zero fidelity cannot be a success")
	}
}

// TestLatenessPinned pins the deadline ledger exactly: one coarse 6 s
// advance over a 2 s period makes periods 1 and 2 late by 4 s and 2 s
// while period 3 lands on time.
func TestLatenessPinned(t *testing.T) {
	svc := mustOpen(t, WithAlignedSampling())
	sub, err := svc.Subscribe(context.Background(), centerSpec(), StaticPosition(Pt(225, 225)))
	if err != nil {
		t.Fatal(err)
	}
	svc.Advance(6 * time.Second)
	want := []struct {
		onTime   bool
		lateness time.Duration
	}{
		{false, 4 * time.Second},
		{false, 2 * time.Second},
		{true, 0},
	}
	for i, w := range want {
		r := <-sub.Results()
		if r.K != i+1 || r.OnTime != w.onTime || r.Lateness != w.lateness {
			t.Errorf("result %d: K=%d onTime=%v lateness=%v, want onTime=%v lateness=%v",
				i, r.K, r.OnTime, r.Lateness, w.onTime, w.lateness)
		}
		if r.EvaluatedAt != 6*time.Second {
			t.Errorf("result %d evaluated at %v, want 6s", i, r.EvaluatedAt)
		}
		if !w.onTime && r.Success {
			t.Errorf("result %d: late result marked success", i)
		}
	}
	if st := sub.Stats(); st.Late != 2 || st.Delivered != 3 {
		t.Errorf("stats = %+v, want 2 late of 3", st)
	}

	// A deadline slack wider than the overshoot forgives the same pattern.
	slack := centerSpec()
	slack.Deadline = 4 * time.Second
	svc2 := mustOpen(t, WithAlignedSampling())
	sub2, _ := svc2.Subscribe(context.Background(), slack, StaticPosition(Pt(225, 225)))
	svc2.Advance(6 * time.Second)
	for i := 0; i < 3; i++ {
		if r := <-sub2.Results(); !r.OnTime || r.Lateness != 0 {
			t.Errorf("slack result %d: onTime=%v lateness=%v, want forgiven", i, r.OnTime, r.Lateness)
		}
	}
}

// TestChurnDoesNotAffectOtherSubscribers is the acceptance invariant:
// a subscriber's stream is identical whether it runs alone or while other
// users join and leave around it.
func TestChurnDoesNotAffectOtherSubscribers(t *testing.T) {
	spec := centerSpec()
	spec.Period = time.Second
	spec.Freshness = 500 * time.Millisecond
	motion := func() MotionSource { return LinearMotion(Pt(50, 100), 4, 0) }

	collect := func(sub *Subscription) []QueryResult {
		sub.Close()
		var out []QueryResult
		for r := range sub.Results() {
			out = append(out, r)
		}
		return out
	}

	// Reference: the subscriber alone, ten 1 s steps.
	ref, err := Open(context.Background(), testNetwork())
	if err != nil {
		t.Fatal(err)
	}
	defer ref.Close()
	solo, err := ref.Subscribe(context.Background(), spec, motion())
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 10; i++ {
		ref.Advance(time.Second)
	}
	want := collect(solo)
	if len(want) != 10 {
		t.Fatalf("reference stream has %d results, want 10", len(want))
	}

	// Same field, same subscriber, same clock — but two other users join,
	// stream, and leave mid-run.
	churny, err := Open(context.Background(), testNetwork())
	if err != nil {
		t.Fatal(err)
	}
	defer churny.Close()
	watched, err := churny.Subscribe(context.Background(), spec, motion())
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 3; i++ {
		churny.Advance(time.Second)
	}
	guest1, err := churny.Subscribe(context.Background(), centerSpec(), StaticPosition(Pt(225, 225)))
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 3; i++ {
		churny.Advance(time.Second)
	}
	guest2, err := churny.Subscribe(context.Background(), spec, LinearMotion(Pt(400, 400), -3, -3))
	if err != nil {
		t.Fatal(err)
	}
	guest1.Close()
	for i := 0; i < 4; i++ {
		churny.Advance(time.Second)
	}
	guest2.Close()
	got := collect(watched)

	if len(got) != len(want) {
		t.Fatalf("stream length %d with churn, %d alone", len(got), len(want))
	}
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("result %d diverged under churn:\n  with churn: %+v\n  alone:      %+v", i, got[i], want[i])
		}
	}
	if churny.Subscribers() != 0 {
		t.Errorf("subscribers after all closed = %d", churny.Subscribers())
	}
}

func TestUpdateWaypointOverridesMotion(t *testing.T) {
	svc := mustOpen(t, WithAlignedSampling())
	sub, err := svc.Subscribe(context.Background(), centerSpec(), StaticPosition(Pt(225, 225)))
	if err != nil {
		t.Fatal(err)
	}
	svc.Advance(2 * time.Second)
	if r := <-sub.Results(); r.AreaNodes == 0 {
		t.Fatal("query over the field center found no nodes")
	}
	// The user reports they actually walked far outside the field.
	if err := sub.UpdateWaypoint(Pt(5000, 5000)); err != nil {
		t.Fatal(err)
	}
	svc.Advance(2 * time.Second)
	r := <-sub.Results()
	if r.AreaNodes != 0 || r.Contributors != 0 {
		t.Errorf("after moving out of the field: %d area nodes, %d contributors", r.AreaNodes, r.Contributors)
	}
	if r.Fidelity != 1 {
		t.Errorf("empty-area fidelity = %v, want the vacuous 1", r.Fidelity)
	}
	sub.Close()
	if err := sub.UpdateWaypoint(Pt(0, 0)); err == nil {
		t.Error("waypoint update on a closed subscription should be an error")
	}
}

func TestBackpressureDropsInsteadOfStalling(t *testing.T) {
	svc := mustOpen(t, WithResultBuffer(2))
	sub, err := svc.Subscribe(context.Background(), centerSpec(), StaticPosition(Pt(225, 225)))
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 4; i++ {
		svc.Advance(2 * time.Second)
	}
	st := sub.Stats()
	if st.Delivered != 2 || st.Dropped != 2 {
		t.Fatalf("stats = %+v, want 2 delivered / 2 dropped", st)
	}
	// The two oldest results survived; the overflow was discarded newest.
	if r := <-sub.Results(); r.K != 1 {
		t.Errorf("first buffered result is K=%d, want 1", r.K)
	}
	if r := <-sub.Results(); r.K != 2 {
		t.Errorf("second buffered result is K=%d, want 2", r.K)
	}
}

// TestDropAccountingUnderFullBuffer pins the Subscribe contract for slow
// consumers: every period is accounted exactly once — delivered or
// dropped, never both, never lost — NextPeriod keeps advancing past drops,
// and a drained buffer resumes delivery with the periods that overflowed
// counted only in Dropped.
func TestDropAccountingUnderFullBuffer(t *testing.T) {
	svc := mustOpen(t, WithResultBuffer(1))
	sub, err := svc.Subscribe(context.Background(), centerSpec(), StaticPosition(Pt(225, 225)))
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 5; i++ {
		if err := svc.Advance(2 * time.Second); err != nil {
			t.Fatal(err)
		}
	}
	st := sub.Stats()
	if st.Delivered != 1 || st.Dropped != 4 {
		t.Fatalf("stats = %+v, want 1 delivered / 4 dropped", st)
	}
	if st.Delivered+st.Dropped != st.NextPeriod-1 {
		t.Fatalf("accounting leak: %d delivered + %d dropped != %d periods evaluated",
			st.Delivered, st.Dropped, st.NextPeriod-1)
	}
	// The oldest result survived; the overflow was discarded newest-first.
	if r := <-sub.Results(); r.K != 1 {
		t.Errorf("buffered result is K=%d, want 1", r.K)
	}
	// Draining made room: the next period delivers again and the dropped
	// periods stay dropped (K jumps over them).
	if err := svc.Advance(2 * time.Second); err != nil {
		t.Fatal(err)
	}
	if r := <-sub.Results(); r.K != 6 {
		t.Errorf("post-drain result is K=%d, want 6", r.K)
	}
	st = sub.Stats()
	if st.Delivered != 2 || st.Dropped != 4 || st.NextPeriod != 7 {
		t.Fatalf("post-drain stats = %+v, want 2 delivered / 4 dropped / next 7", st)
	}
}

func TestLifetimeEndsSubscription(t *testing.T) {
	spec := centerSpec()
	spec.Lifetime = 4 * time.Second // two periods
	svc := mustOpen(t)
	sub, err := svc.Subscribe(context.Background(), spec, StaticPosition(Pt(225, 225)))
	if err != nil {
		t.Fatal(err)
	}
	svc.Advance(10 * time.Second)
	var ks []int
	for r := range sub.Results() {
		ks = append(ks, r.K)
	}
	if len(ks) != 2 || ks[0] != 1 || ks[1] != 2 {
		t.Fatalf("lifetime-bounded stream delivered %v, want [1 2]", ks)
	}
	if svc.Subscribers() != 0 {
		t.Errorf("expired subscription still counted: %d", svc.Subscribers())
	}
}

// TestLifetimeClosesAtExactBoundary is the regression guard for the
// stream staying open forever when the clock stops exactly at
// t0+Lifetime: the final period's delivery must also close the channel.
func TestLifetimeClosesAtExactBoundary(t *testing.T) {
	spec := centerSpec()
	spec.Lifetime = 4 * time.Second // two periods
	svc := mustOpen(t)
	sub, err := svc.Subscribe(context.Background(), spec, StaticPosition(Pt(225, 225)))
	if err != nil {
		t.Fatal(err)
	}
	svc.Advance(2 * time.Second)
	svc.Advance(2 * time.Second) // clock now exactly at the lifetime
	var ks []int
	for r := range sub.Results() { // must terminate without more advances
		ks = append(ks, r.K)
	}
	if len(ks) != 2 {
		t.Fatalf("delivered %v, want both periods before the channel closed", ks)
	}
	if svc.Subscribers() != 0 {
		t.Errorf("expired subscription still counted: %d", svc.Subscribers())
	}
}

// TestSubscribeWatcherDoesNotLeak pins that the per-subscription context
// watcher exits when the subscription closes, not only when the whole
// service shuts down.
func TestSubscribeWatcherDoesNotLeak(t *testing.T) {
	svc := mustOpen(t)
	before := runtime.NumGoroutine()
	ctx := context.Background()
	for i := 0; i < 50; i++ {
		sub, err := svc.Subscribe(ctx, centerSpec(), StaticPosition(Pt(225, 225)))
		if err != nil {
			t.Fatal(err)
		}
		sub.Close()
	}
	deadline := time.Now().Add(5 * time.Second)
	for {
		if n := runtime.NumGoroutine(); n <= before+5 {
			return
		} else if time.Now().After(deadline) {
			t.Fatalf("goroutines grew from %d to %d after 50 subscribe/close cycles", before, n)
		}
		time.Sleep(10 * time.Millisecond)
	}
}

func TestContextCancellationClosesSubscription(t *testing.T) {
	svc := mustOpen(t)
	ctx, cancel := context.WithCancel(context.Background())
	sub, err := svc.Subscribe(ctx, centerSpec(), StaticPosition(Pt(225, 225)))
	if err != nil {
		t.Fatal(err)
	}
	cancel()
	deadline := time.After(5 * time.Second)
	for {
		select {
		case _, open := <-sub.Results():
			if !open {
				if svc.Subscribers() != 0 {
					t.Errorf("canceled subscription still registered")
				}
				return
			}
		case <-deadline:
			t.Fatal("subscription did not close after context cancellation")
		}
	}
}

func TestContextCancellationClosesService(t *testing.T) {
	ctx, cancel := context.WithCancel(context.Background())
	svc, err := Open(ctx, testNetwork())
	if err != nil {
		t.Fatal(err)
	}
	cancel()
	deadline := time.Now().Add(5 * time.Second)
	for svc.Advance(time.Second) == nil {
		if time.Now().After(deadline) {
			t.Fatal("service did not close after context cancellation")
		}
		time.Sleep(time.Millisecond)
	}
}

// TestRealTimeDrive smoke-tests the wall-clock driver: results stream
// without any Advance call.
func TestRealTimeDrive(t *testing.T) {
	svc, err := Open(context.Background(), testNetwork(),
		WithRealTime(2*time.Millisecond), WithAlignedSampling())
	if err != nil {
		t.Fatal(err)
	}
	defer svc.Close()
	spec := QuerySpec{Radius: 150, Period: 10 * time.Millisecond}
	sub, err := svc.Subscribe(context.Background(), spec, StaticPosition(Pt(225, 225)))
	if err != nil {
		t.Fatal(err)
	}
	deadline := time.After(10 * time.Second)
	for i := 0; i < 2; i++ {
		select {
		case r := <-sub.Results():
			if r.Value != 20 {
				t.Errorf("streamed value = %v, want 20", r.Value)
			}
		case <-deadline:
			t.Fatal("real-time service delivered nothing")
		}
	}
}

func TestServiceCloseIsIdempotent(t *testing.T) {
	svc := mustOpen(t)
	sub, err := svc.Subscribe(context.Background(), centerSpec(), StaticPosition(Pt(225, 225)))
	if err != nil {
		t.Fatal(err)
	}
	if err := svc.Close(); err != nil {
		t.Fatal(err)
	}
	if err := svc.Close(); err != nil {
		t.Fatal(err)
	}
	if err := sub.Close(); err != nil {
		t.Fatal(err)
	}
	if _, open := <-sub.Results(); open {
		t.Error("results channel still open after service close")
	}
}
