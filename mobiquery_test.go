package mobiquery

import (
	"math"
	"testing"
	"time"
)

func quickSim() Simulation {
	s := DefaultSimulation()
	s.Duration = 60 * time.Second
	s.Lifetime = 56 * time.Second
	s.SleepPeriod = 3 * time.Second
	return s
}

func TestDefaultSimulationValid(t *testing.T) {
	if err := DefaultSimulation().Validate(); err != nil {
		t.Fatalf("default simulation invalid: %v", err)
	}
}

func TestValidateRejectsBadConfig(t *testing.T) {
	s := DefaultSimulation()
	s.Nodes = 0
	if s.Validate() == nil {
		t.Error("zero nodes should fail validation")
	}
	s = DefaultSimulation()
	s.Freshness = 2 * s.Period
	if s.Validate() == nil {
		t.Error("freshness above period should fail validation")
	}
}

func TestRunEndToEnd(t *testing.T) {
	res := Run(quickSim())
	if len(res.Queries) != 28 {
		t.Fatalf("queries = %d, want 28", len(res.Queries))
	}
	if res.SuccessRatio <= 0.5 {
		t.Errorf("JIT success ratio = %.2f, want high", res.SuccessRatio)
	}
	if res.BackboneNodes == 0 || res.BackboneNodes >= 200 {
		t.Errorf("backbone = %d", res.BackboneNodes)
	}
	if res.PowerPerSleepingNode <= 0.13 || res.PowerPerBackboneNode < 0.8 {
		t.Errorf("power = %.3f / %.3f", res.PowerPerSleepingNode, res.PowerPerBackboneNode)
	}
	for i, q := range res.Queries {
		if q.K != i+1 {
			t.Fatalf("query order broken at %d", i)
		}
		if q.Received && q.Fidelity > 0.5 && (math.IsNaN(q.Value) || q.Value != 20) {
			t.Errorf("k=%d: uniform field value = %v, want 20", q.K, q.Value)
		}
	}
}

func TestRunDeterministic(t *testing.T) {
	a := Run(quickSim())
	b := Run(quickSim())
	if a.SuccessRatio != b.SuccessRatio || a.MeanFidelity != b.MeanFidelity {
		t.Error("same simulation config produced different results")
	}
}

func TestSchemeComparison(t *testing.T) {
	jit := quickSim()
	np := quickSim()
	np.Scheme = NP
	rj, rn := Run(jit), Run(np)
	if rj.SuccessRatio <= rn.SuccessRatio {
		t.Errorf("JIT (%.2f) should beat NP (%.2f)", rj.SuccessRatio, rn.SuccessRatio)
	}
}

func TestJITStorageBound(t *testing.T) {
	// Equation (12) with the paper's Section 5.2 example.
	if got := JITStorageBound(15*time.Second, 5*time.Second, 10*time.Second); got != 4 {
		t.Errorf("JITStorageBound = %d, want 4", got)
	}
	// The evaluation settings.
	if got := JITStorageBound(15*time.Second, time.Second, 2*time.Second); got != 10 {
		t.Errorf("JITStorageBound = %d, want 10", got)
	}
}

func TestWarmupBound(t *testing.T) {
	w := WarmupBound(9*time.Second, time.Second, 2*time.Second, 0)
	// ~ Tsleep + 2*Tfresh = 11s, rounded up to periods.
	if w < 10*time.Second || w > 13*time.Second {
		t.Errorf("WarmupBound(Ta=0) = %v, want ~11-12s", w)
	}
	if w := WarmupBound(9*time.Second, time.Second, 2*time.Second, 20*time.Second); w != 0 {
		t.Errorf("WarmupBound(Ta=20s) = %v, want 0", w)
	}
}

func TestFieldHelpers(t *testing.T) {
	if got := UniformField(42).Sample(Pt(1, 2), 0); got != 42 {
		t.Errorf("UniformField = %v", got)
	}
	if got := GradientField(10, 1, 0).Sample(Pt(5, 0), 0); got != 15 {
		t.Errorf("GradientField = %v", got)
	}
	plume := PlumeField(Pt(0, 0), 100, 10, 1, 0)
	if got := plume.Sample(Pt(0, 0), 0); got != 100 {
		t.Errorf("PlumeField peak = %v", got)
	}
	if got := plume.Sample(Pt(60, 0), 60*time.Second); got != 100 {
		t.Errorf("PlumeField drift = %v", got)
	}
}

func TestSuccessThreshold(t *testing.T) {
	if SuccessThreshold != 0.95 {
		t.Errorf("SuccessThreshold = %v, want the paper's 0.95", SuccessThreshold)
	}
}

func TestRunTeam(t *testing.T) {
	base := quickSim()
	results := RunTeam(base, []TeamMember{
		{QueryID: 1, Scheme: JIT, Start: Pt(50, 100), VelocityX: 4},
		{QueryID: 2, Scheme: JIT, Start: Pt(400, 350), VelocityX: -4},
	})
	if len(results) != 2 {
		t.Fatalf("results = %d", len(results))
	}
	for i, res := range results {
		if res.SuccessRatio < 0.5 {
			t.Errorf("member %d success = %.2f under concurrency", i, res.SuccessRatio)
		}
		if len(res.Queries) == 0 {
			t.Errorf("member %d has no query results", i)
		}
	}
}

func TestServiceConfigThreadsThrough(t *testing.T) {
	s := quickSim()
	s.Service = ServiceConfig{Shards: 4, Workers: 2}
	if err := s.Validate(); err != nil {
		t.Fatalf("valid service config rejected: %v", err)
	}
	s.Service.Workers = -1
	if s.Validate() == nil {
		t.Error("negative workers should fail validation")
	}
	s.Service = ServiceConfig{Shards: -1}
	if s.Validate() == nil {
		t.Error("negative shards should fail validation")
	}
}

func TestRunTeamWithServiceConfig(t *testing.T) {
	// The concurrency knobs must not change results: a team run with an
	// explicit engine sizing matches the default sizing exactly.
	base := quickSim()
	members := []TeamMember{
		{QueryID: 1, Scheme: JIT, Start: Pt(50, 100), VelocityX: 4},
		{QueryID: 2, Scheme: JIT, Start: Pt(400, 350), VelocityX: -4},
	}
	ref := RunTeam(base, members)
	tuned := base
	tuned.Service = ServiceConfig{Shards: 32, Workers: 8}
	got := RunTeam(tuned, members)
	if len(got) != len(ref) {
		t.Fatalf("result count %d, want %d", len(got), len(ref))
	}
	for i := range got {
		if got[i].SuccessRatio != ref[i].SuccessRatio || got[i].MeanFidelity != ref[i].MeanFidelity {
			t.Errorf("member %d: tuned engine changed results: %+v vs %+v", i, got[i], ref[i])
		}
	}
}

func TestRunScalePublicAPI(t *testing.T) {
	c := DefaultScaleConfig()
	if err := c.Validate(); err != nil {
		t.Fatalf("default scale config invalid: %v", err)
	}
	c.Nodes = 2000
	c.Users = 200
	c.RegionSide = 2000
	c.Rounds = 2
	c.Field = UniformField(7)
	sharded := RunScale(c)
	if sharded.Evaluations != 400 {
		t.Fatalf("Evaluations = %d, want 400", sharded.Evaluations)
	}
	if sharded.MeanValue != 7 {
		t.Errorf("MeanValue = %v, want 7", sharded.MeanValue)
	}
	serial := c
	serial.Serial = true
	if got := RunScale(serial); got.Checksum != sharded.Checksum || got.MeanAreaNodes != sharded.MeanAreaNodes {
		t.Errorf("serial run %+v diverges from sharded %+v", got, sharded)
	}
	c.Users = 0
	if c.Validate() == nil {
		t.Error("zero users should fail validation")
	}
}
