// Package mobiquery is a library reproduction of "A Spatiotemporal Query
// Service for Mobile Users in Sensor Networks" (Lu, Xing, Chipara, Fok,
// Bhattacharya; ICDCS 2005), grown into a long-lived query service.
//
// MobiQuery lets a mobile user periodically pull aggregated sensor readings
// from a circular area around their current position, with per-period
// deadlines and data-freshness guarantees, while sensor nodes run extremely
// low duty cycles. Its core idea is just-in-time prefetching: the query is
// relayed between "pickup points" along the user's predicted path and held
// at each hop until the latest safe moment (the paper's equation 10), so
// sleeping nodes wake exactly when their readings are needed.
//
// The package has two entry styles:
//
// The session API (service.go, subscription.go) runs MobiQuery as a
// service: Open stands up the sharded query engine over a sensor field
// once, then any number of mobile users Subscribe and Unsubscribe while it
// runs, each receiving one aggregate result per query period over a
// channel, evaluated under the period/deadline/freshness contract of their
// QuerySpec:
//
//	svc, err := mobiquery.Open(ctx, mobiquery.DefaultNetworkConfig())
//	sub, err := svc.Subscribe(ctx, spec, mobiquery.LinearMotion(start, 4, 0))
//	for r := range sub.Results() { ... }
//
// The batch API (compat.go) wraps the complete discrete-event reproduction
// of the paper's stack — radio medium, CSMA/PSM link layer, CCP coverage
// backbone, geographic routing, motion prediction, and the MobiQuery
// protocol — behind one-shot calls:
//
//	cfg := mobiquery.DefaultSimulation()
//	cfg.SleepPeriod = 15 * time.Second
//	result, err := mobiquery.RunE(cfg)
//	fmt.Println(result.SuccessRatio)
//
// For reproducing the paper's figures, see internal/experiment via the
// cmd/mobiquery-experiments binary; for the closed-form Section 5 analysis,
// see cmd/mobiquery-analysis.
package mobiquery

import (
	"time"

	"mobiquery/internal/analysis"
	"mobiquery/internal/core"
	"mobiquery/internal/experiment"
	"mobiquery/internal/field"
	"mobiquery/internal/geom"
	"mobiquery/internal/metrics"
	"mobiquery/internal/prefetch"
	"mobiquery/internal/pyramid"
)

// Scheme selects the prefetching strategy.
type Scheme = core.Scheme

// Available schemes: just-in-time prefetching (the paper's contribution),
// greedy prefetching, and the no-prefetching baseline.
const (
	JIT = core.SchemeJIT
	GP  = core.SchemeGP
	NP  = core.SchemeNP
)

// Profiler selects how motion profiles are produced.
type Profiler = experiment.ProfilerKind

// Available profilers: an oracle (exact full path at t=0), a planner-style
// exact profiler with configurable advance time, and a history-based GPS
// predictor with location error.
const (
	Oracle       = experiment.ProfilerOracle
	Planner      = experiment.ProfilerExact
	GPSPredictor = experiment.ProfilerGPS
)

// AggKind selects the aggregation function of a query result.
type AggKind = core.AggKind

// Aggregation functions for query results.
const (
	Count = core.AggCount
	Sum   = core.AggSum
	Min   = core.AggMin
	Max   = core.AggMax
	Avg   = core.AggAvg
)

// Field is a scalar sensor field sampled by the nodes.
type Field = field.Field

// Point is a 2-D location in meters.
type Point = geom.Point

// Pt constructs a Point.
func Pt(x, y float64) Point { return geom.Pt(x, y) }

// UniformField returns a constant sensor field.
func UniformField(v float64) Field { return field.Uniform{Value: v} }

// GradientField returns a planar ramp field.
func GradientField(base float64, slopeX, slopeY float64) Field {
	return field.Gradient{Base: base, Slope: geom.V(slopeX, slopeY)}
}

// PlumeField returns a Gaussian hot spot drifting at (driftX, driftY) m/s —
// a toy wild-fire front for the paper's motivating scenario.
func PlumeField(center Point, amplitude, sigma, driftX, driftY float64) Field {
	return field.GaussianPlume{Center: center, Amplitude: amplitude, Sigma: sigma, Drift: geom.V(driftX, driftY)}
}

// ServiceConfig exposes the concurrency knobs of the sharded multi-user
// query engine: how many spatial shards the sensor index is split into and
// how many workers dispatch independent users' work. The zero value selects
// sane defaults (geom.DefaultShards spatial shards, one worker per core).
// Concurrency never changes results — only wall time.
type ServiceConfig struct {
	// Shards is the spatial shard count of the node index (0 = auto).
	Shards int
	// Workers is the dispatch worker-pool width (0 = one per core).
	Workers int
}

// DefaultServiceConfig returns the automatic sizing (shards and workers
// chosen from the host).
func DefaultServiceConfig() ServiceConfig { return ServiceConfig{} }

// Simulation configures one batch MobiQuery run through the discrete-event
// stack. Construct with DefaultSimulation and override fields as needed.
type Simulation struct {
	// Seed makes the run reproducible.
	Seed int64

	// Nodes is the sensor count; RegionSide the square field edge (m).
	Nodes      int
	RegionSide float64

	// SleepPeriod is the PSM duty-cycle period (3-15 s in the paper);
	// nodes are awake for ActiveWindow at the start of each.
	SleepPeriod  time.Duration
	ActiveWindow time.Duration

	// Scheme is the prefetching strategy.
	Scheme Scheme

	// QueryRadius (Rq), Period, Freshness, and Lifetime define the
	// spatiotemporal query.
	QueryRadius float64
	Period      time.Duration
	Freshness   time.Duration
	Lifetime    time.Duration
	Aggregate   core.AggKind

	// SpeedMin/SpeedMax bound the user's speed; the course changes heading
	// every ChangeInterval for Duration.
	SpeedMin       float64
	SpeedMax       float64
	ChangeInterval time.Duration
	Duration       time.Duration

	// Profiler selects motion-profile generation; AdvanceTime is Ta for
	// the planner; GPSError the location error (m) for the GPS predictor.
	Profiler    Profiler
	AdvanceTime time.Duration
	GPSError    float64

	// Field is what the sensors measure.
	Field Field

	// Service sizes the concurrent multi-user query engine.
	Service ServiceConfig
}

// DefaultSimulation returns the paper's Section 6.1 settings: 200 nodes in
// 450 m x 450 m, 2 s query period, 1 s freshness, 150 m query radius, a
// walking user, 15 s sleep period, and just-in-time prefetching.
func DefaultSimulation() Simulation {
	sc := experiment.Default()
	return Simulation{
		Seed:           sc.Seed,
		Nodes:          sc.Nodes,
		RegionSide:     sc.RegionSide,
		SleepPeriod:    sc.SleepPeriod,
		ActiveWindow:   sc.ActiveWindow,
		Scheme:         sc.Scheme,
		QueryRadius:    sc.Spec.Radius,
		Period:         sc.Spec.Period,
		Freshness:      sc.Spec.Fresh,
		Lifetime:       sc.Spec.Lifetime,
		Aggregate:      sc.Spec.Agg,
		SpeedMin:       sc.SpeedMin,
		SpeedMax:       sc.SpeedMax,
		ChangeInterval: sc.ChangeInterval,
		Duration:       sc.Duration,
		Profiler:       sc.Profiler,
		AdvanceTime:    sc.AdvanceTime,
		GPSError:       sc.GPSError,
		Field:          sc.Field,
		Service:        ServiceConfig{Shards: sc.Shards, Workers: sc.Workers},
	}
}

// scenario converts the public configuration to the internal one.
func (s Simulation) scenario() experiment.Scenario {
	sc := experiment.Default()
	sc.Seed = s.Seed
	sc.Nodes = s.Nodes
	sc.RegionSide = s.RegionSide
	sc.SleepPeriod = s.SleepPeriod
	sc.ActiveWindow = s.ActiveWindow
	sc.Scheme = s.Scheme
	sc.Spec.Radius = s.QueryRadius
	sc.Spec.Period = s.Period
	sc.Spec.Fresh = s.Freshness
	sc.Spec.Lifetime = s.Lifetime
	sc.Spec.Agg = s.Aggregate
	sc.SpeedMin = s.SpeedMin
	sc.SpeedMax = s.SpeedMax
	sc.ChangeInterval = s.ChangeInterval
	sc.Duration = s.Duration
	sc.Profiler = s.Profiler
	sc.AdvanceTime = s.AdvanceTime
	sc.GPSError = s.GPSError
	sc.Field = s.Field
	sc.Shards = s.Service.Shards
	sc.Workers = s.Service.Workers
	return sc
}

// Validate reports configuration errors without running anything.
func (s Simulation) Validate() error { return s.scenario().Validate() }

// QueryResult is the outcome of one query period, both in batch Results
// and on a Subscription's stream.
type QueryResult struct {
	// K is the 1-based period index; the result was due at Deadline
	// (virtual time from the start of the run or session).
	K        int
	Deadline time.Duration
	// Received and OnTime report delivery; Value is the aggregate under
	// the configured function and Contributors the number of distinct
	// in-area nodes whose readings reached the user.
	Received     bool
	OnTime       bool
	Value        float64
	Contributors int
	AreaNodes    int
	Fidelity     float64
	Success      bool

	// The remaining fields are populated only on the streaming path
	// (Service.Subscribe), which evaluates the temporal contract
	// explicitly; batch runs leave them zero.

	// EvaluatedAt is when the service actually computed the result;
	// Lateness is EvaluatedAt - Deadline when that exceeds the spec's
	// deadline slack (OnTime is then false).
	EvaluatedAt time.Duration
	Lateness    time.Duration
	// StaleNodes counts in-area sensors excluded because their newest
	// reading missed the freshness window; MaxStaleness is the age, at the
	// deadline, of the oldest reading that did contribute.
	StaleNodes   int
	MaxStaleness time.Duration

	// Warmup marks a period inside the equation-16 warmup interval after
	// Subscribe or a re-plan: the subscription's prefetch chains were not
	// yet staged, so the result fell back to on-demand collection.
	// PrefetchedNodes counts contributors served from prefetched readings
	// staged along the motion profile. Both stay zero under the on-demand
	// strategy.
	Warmup          bool
	PrefetchedNodes int
	// CorridorHit marks a period whose node enumeration was served from
	// the subscription's warm corridor stage rather than a cold index
	// scan (identical values, cheaper evaluation). Always false without a
	// QuerySpec.Corridor.
	CorridorHit bool
	// PyramidHit marks a period whose aggregate was served from the
	// service's hierarchical tile pyramid — the query disk decomposed into
	// covered coarse tiles plus a disk-tested fringe — instead of a flat
	// area scan. The served member set is provably identical to the flat
	// scan's (anything unprovable falls back cold, leaving this false);
	// only Sum-derived values may differ in float-addition grouping.
	PyramidHit bool
	// WindowPeriods is the number of period evaluations merged into this
	// result under QuerySpec.Window (fewer than Window during the first
	// results); 0 for ordinary single-period results.
	WindowPeriods int

	// Trace is the period's completed server-side lifecycle span, set only
	// when the subscription carries a trace context (QuerySpec.Trace != 0)
	// so untraced sessions pay nothing for it. The network front-end echoes
	// it on the result frame, letting the client join its own receive
	// timestamp onto the server's segment chain.
	Trace *PeriodSpan
}

// PrefetchStats is a prefetching subscription's planner ledger
// (Subscription.PrefetchStats): replans, prefetched readings served, and
// the end of the current equation-16 warmup interval.
type PrefetchStats = prefetch.Stats

// PyramidStats is the aggregate tile pyramid's ledger
// (Service.PyramidStats): epoch builds, served evaluations, declines by
// reason, and the node-visit accounting that prices pyramid serves against
// the flat scans they replace.
type PyramidStats = pyramid.Stats

// Result summarizes a batch run.
type Result struct {
	// Queries holds one entry per query period.
	Queries []QueryResult
	// SuccessRatio is the fraction of periods delivered on time with
	// fidelity of at least 95% (the paper's headline metric).
	SuccessRatio float64
	// MeanFidelity averages fidelity across periods.
	MeanFidelity float64
	// PowerPerSleepingNode and PowerPerBackboneNode are mean radio power
	// draws in watts.
	PowerPerSleepingNode float64
	PowerPerBackboneNode float64
	// MaxPrefetchLength is the peak number of query trees built ahead of
	// the user (the paper's storage metric, equation 11/12).
	MaxPrefetchLength int
	// BackboneNodes counts the always-on CCP backbone.
	BackboneNodes int
}

// SuccessThreshold is the fidelity cutoff used for SuccessRatio.
const SuccessThreshold = metrics.FidelityThreshold

// ScaleConfig configures the multi-user scale scenario: many mobile users
// issuing instantaneous area queries over a large sensor field, driven
// directly through the sharded concurrent query engine (no radio
// simulation). Construct with DefaultScaleConfig and override as needed.
type ScaleConfig struct {
	// Seed makes the run reproducible.
	Seed int64
	// Nodes sensors over a RegionSide × RegionSide square; Users concurrent
	// mobile users each querying a circle of QueryRadius.
	Nodes       int
	Users       int
	RegionSide  float64
	QueryRadius float64
	// Each of Rounds rounds moves every user Step meters and re-evaluates
	// every query area.
	Step   float64
	Rounds int
	// Service sizes the engine; Serial forces the single-threaded dispatch
	// baseline for comparison.
	Service ServiceConfig
	Serial  bool
	// Field is what the sensors measure.
	Field Field
}

// DefaultScaleConfig returns the headline scale scenario: 10k concurrent
// users over a 100k-node field in a 10 km square.
func DefaultScaleConfig() ScaleConfig {
	c := experiment.DefaultScale()
	return ScaleConfig{
		Seed:        c.Seed,
		Nodes:       c.Nodes,
		Users:       c.Users,
		RegionSide:  c.RegionSide,
		QueryRadius: c.Radius,
		Step:        c.Step,
		Rounds:      c.Rounds,
		Field:       c.Field,
	}
}

func (c ScaleConfig) scale() experiment.ScaleConfig {
	return experiment.ScaleConfig{
		Seed:       c.Seed,
		Nodes:      c.Nodes,
		Users:      c.Users,
		RegionSide: c.RegionSide,
		Radius:     c.QueryRadius,
		Step:       c.Step,
		Rounds:     c.Rounds,
		Shards:     c.Service.Shards,
		Workers:    c.Service.Workers,
		Serial:     c.Serial,
		Field:      c.Field,
	}
}

// Validate reports configuration errors without running anything.
func (c ScaleConfig) Validate() error { return c.scale().Validate() }

// ScaleResult summarizes a scale run. All fields except Elapsed are pure
// functions of the configuration, independent of sharding and worker count.
type ScaleResult struct {
	// Evaluations is Users × Rounds completed area evaluations.
	Evaluations int
	// MeanAreaNodes is the mean in-area sensor count per evaluation;
	// MeanValue the mean Avg aggregate over non-empty areas.
	MeanAreaNodes float64
	MeanValue     float64
	// Checksum is an order-independent integer digest of every per-user
	// result. Two runs of the same configuration must agree on it
	// regardless of Service sizing and Serial — compare serial and sharded
	// runs to verify the engine's concurrency invariant.
	Checksum uint64
	// Elapsed is the wall time of the dispatch phase.
	Elapsed time.Duration
}

// TeamMember configures one user in a multi-user simulation. Each member
// issues an independent spatiotemporal query (the base Simulation's query
// parameters) while walking a straight line from Start at the given
// velocity, with an exact motion profile.
type TeamMember struct {
	// QueryID must be unique and non-zero.
	QueryID uint32
	// Scheme is the member's prefetching strategy.
	Scheme Scheme
	// Start is the member's initial position; VelocityX/Y its speed (m/s).
	Start                Point
	VelocityX, VelocityY float64
}

// JITStorageBound returns the paper's equation (12) bound on the number of
// query trees held ahead of the user under just-in-time prefetching.
func JITStorageBound(sleepPeriod, freshness, period time.Duration) int {
	return analysis.StorageJIT(analysis.QueryParams{Period: period, Fresh: freshness, Sleep: sleepPeriod})
}

// WarmupBound returns the equation (16) bound on the warmup interval after
// a motion profile with advance time ta arrives, assuming the prefetch
// message travels much faster than the user.
func WarmupBound(sleepPeriod, freshness, period, ta time.Duration) time.Duration {
	q := analysis.QueryParams{Period: period, Fresh: freshness, Sleep: sleepPeriod}
	return analysis.WarmupInterval(q, ta, 4, 4000)
}
