package mobiquery

// Session-path tests of the prefetch planner: strategy selection on
// QuerySpec, equation-16 warmup on Subscribe, equation-10 staging versus
// on-demand tick accounting, hold-time staleness under Greedy, and
// re-planning on UpdateWaypoint.

import (
	"context"
	"testing"
	"time"
)

// sleepyNetwork is a field with a long duty cycle relative to the tests'
// freshness windows: nodes refresh every 3 s, so on-demand evaluation sees
// mostly stale readings while prefetched periods stay fresh.
func sleepyNetwork() NetworkConfig {
	nc := DefaultNetworkConfig()
	nc.SamplePeriod = 3 * time.Second
	return nc
}

// prefetchSpec is the shared contract: 1 s periods with 100 ms deadline
// slack and a 1 s freshness window (equation-10 margin Tsleep+2Tfresh=5 s).
func prefetchSpec(s Strategy) QuerySpec {
	return QuerySpec{
		Radius:    150,
		Period:    time.Second,
		Deadline:  100 * time.Millisecond,
		Freshness: time.Second,
		Strategy:  s,
	}
}

// drain closes the subscription and collects everything it streamed.
func drain(sub *Subscription) []QueryResult {
	sub.Close()
	var out []QueryResult
	for r := range sub.Results() {
		out = append(out, r)
	}
	return out
}

// TestPrefetchReducesLatenessAndStaleness is the headline property: against
// the same sleepy field and the same coarse 300 ms service clock, the JIT
// subscriber's post-warmup periods are staged at their boundaries (on time,
// fully fresh, served from prefetched readings) while the on-demand twin
// keeps accumulating late periods from tick misalignment and stale
// exclusions from the 3 s duty cycle.
func TestPrefetchReducesLatenessAndStaleness(t *testing.T) {
	svc, err := Open(context.Background(), sleepyNetwork(), WithResultBuffer(64))
	if err != nil {
		t.Fatal(err)
	}
	defer svc.Close()

	motion := func() MotionSource { return LinearMotion(Pt(200, 200), 2, 1) }
	onDemand, err := svc.Subscribe(context.Background(), prefetchSpec(OnDemandStrategy()), motion())
	if err != nil {
		t.Fatal(err)
	}
	jit, err := svc.Subscribe(context.Background(), prefetchSpec(JITStrategy()), motion())
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 100; i++ { // 30 virtual seconds in 300 ms ticks
		if err := svc.Advance(300 * time.Millisecond); err != nil {
			t.Fatal(err)
		}
	}
	od, jt := drain(onDemand), drain(jit)
	if len(od) != 30 || len(jt) != 30 {
		t.Fatalf("streamed %d/%d periods, want 30 each", len(od), len(jt))
	}

	lateOD, lateJIT, staleOD := 0, 0, 0
	for i := range od {
		if !od[i].OnTime {
			lateOD++
		}
		staleOD += od[i].StaleNodes
		if od[i].Warmup || od[i].PrefetchedNodes != 0 {
			t.Fatalf("on-demand period %d carries prefetch fields: %+v", i+1, od[i])
		}
	}
	sawWarmup := false
	for i := range jt {
		if !jt[i].OnTime {
			lateJIT++
		}
		if jt[i].Warmup {
			sawWarmup = true
			continue
		}
		// Post-warmup: staged at the boundary, fully fresh, all prefetched.
		if !jt[i].OnTime || jt[i].EvaluatedAt != jt[i].Deadline {
			t.Errorf("staged period %d evaluated at %v (deadline %v)", jt[i].K, jt[i].EvaluatedAt, jt[i].Deadline)
		}
		if jt[i].StaleNodes != 0 || jt[i].MaxStaleness != 0 {
			t.Errorf("staged period %d stale: %d nodes / %v", jt[i].K, jt[i].StaleNodes, jt[i].MaxStaleness)
		}
		if jt[i].PrefetchedNodes == 0 || jt[i].PrefetchedNodes != jt[i].Contributors {
			t.Errorf("staged period %d served %d prefetched of %d contributors", jt[i].K, jt[i].PrefetchedNodes, jt[i].Contributors)
		}
	}
	if !sawWarmup {
		t.Error("a zero-advance subscription should start in warmup (equation 16)")
	}
	if jt[len(jt)-1].Warmup {
		t.Error("warmup never ended over 30 periods")
	}
	if staleOD == 0 {
		t.Error("the sleepy field produced no stale exclusions on demand; the comparison is vacuous")
	}
	if lateOD == 0 {
		t.Error("the misaligned clock produced no late on-demand periods; the comparison is vacuous")
	}
	if lateJIT >= lateOD {
		t.Errorf("JIT late periods (%d) not below on-demand (%d)", lateJIT, lateOD)
	}
	if _, ok := onDemand.PrefetchStats(); ok {
		t.Error("on-demand subscription reports planner stats")
	}
	if st, ok := jit.PrefetchStats(); !ok || st.Served == 0 {
		t.Errorf("JIT planner ledger = %+v/%v, want served readings", st, ok)
	}
}

// TestGreedyHoldsReadings pins Greedy's capture semantics: readings are
// taken when the freshness window opens and held to the boundary, so
// post-warmup periods are on time but exactly Freshness old — the
// equation-10 hold ledger in action.
func TestGreedyHoldsReadings(t *testing.T) {
	svc, err := Open(context.Background(), sleepyNetwork(), WithResultBuffer(64))
	if err != nil {
		t.Fatal(err)
	}
	defer svc.Close()
	spec := prefetchSpec(GreedyStrategy(0))
	sub, err := svc.Subscribe(context.Background(), spec, LinearMotion(Pt(200, 200), 2, 1))
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 20; i++ {
		if err := svc.Advance(time.Second); err != nil {
			t.Fatal(err)
		}
	}
	post := 0
	for _, r := range drain(sub) {
		if r.Warmup {
			continue
		}
		post++
		if !r.OnTime || r.PrefetchedNodes == 0 {
			t.Errorf("period %d: on-time %v, %d prefetched", r.K, r.OnTime, r.PrefetchedNodes)
		}
		if r.MaxStaleness != spec.Freshness {
			t.Errorf("period %d: held reading age %v, want the window-open capture %v", r.K, r.MaxStaleness, spec.Freshness)
		}
	}
	if post == 0 {
		t.Fatal("no post-warmup periods observed")
	}
}

// TestFreshnessBeyondPeriodOnlyForPrefetch pins the relaxed validation: a
// freshness window outliving the period is rejected on demand (the paper's
// feasibility assumption) but legal under a prefetching strategy, whose
// hold windows span periods by design.
func TestFreshnessBeyondPeriodOnlyForPrefetch(t *testing.T) {
	svc, err := Open(context.Background(), sleepyNetwork())
	if err != nil {
		t.Fatal(err)
	}
	defer svc.Close()
	spec := prefetchSpec(OnDemandStrategy())
	spec.Freshness = 3 * time.Second // > the 1 s period
	if _, err := svc.Subscribe(context.Background(), spec, StaticPosition(Pt(225, 225))); err == nil {
		t.Fatal("freshness beyond the period should be rejected for on-demand sampling")
	}
	spec.Strategy = JITStrategy()
	sub, err := svc.Subscribe(context.Background(), spec, StaticPosition(Pt(225, 225)))
	if err != nil {
		t.Fatalf("prefetching spec with freshness > period rejected: %v", err)
	}
	sub.Close()
	// Strategy validation still applies.
	spec.Strategy = Strategy{Lookahead: 3} // lookahead without greedy
	if _, err := svc.Subscribe(context.Background(), spec, StaticPosition(Pt(225, 225))); err == nil {
		t.Fatal("lookahead on a non-greedy strategy should be rejected")
	}
}

// TestUpdateWaypointReplans pins the re-plan path: a ground-truth waypoint
// update restarts the equation-16 warmup clock, and the planner ledger
// counts the replan.
func TestUpdateWaypointReplans(t *testing.T) {
	svc, err := Open(context.Background(), sleepyNetwork(), WithResultBuffer(64))
	if err != nil {
		t.Fatal(err)
	}
	defer svc.Close()
	sub, err := svc.Subscribe(context.Background(), prefetchSpec(JITStrategy()), LinearMotion(Pt(150, 150), 2, 1))
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 10; i++ {
		if err := svc.Advance(time.Second); err != nil {
			t.Fatal(err)
		}
	}
	// The user actually turned: report ground truth off the predicted path.
	if err := sub.UpdateWaypoint(Pt(300, 150)); err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 15; i++ {
		if err := svc.Advance(time.Second); err != nil {
			t.Fatal(err)
		}
	}
	st, ok := sub.PrefetchStats()
	if !ok || st.Replans != 1 {
		t.Fatalf("planner stats after update = %+v/%v, want one replan", st, ok)
	}
	results := drain(sub)
	if len(results) != 25 {
		t.Fatalf("streamed %d periods, want 25", len(results))
	}
	// Period 10 (pre-update) had left warmup; period 11 is back in it.
	if results[9].Warmup {
		t.Error("period 10 should have left the initial warmup")
	}
	if !results[10].Warmup {
		t.Error("period 11 should re-enter warmup after the waypoint replan")
	}
	if results[24].Warmup {
		t.Error("warmup never ended after the replan")
	}
	if results[24].PrefetchedNodes == 0 {
		t.Error("post-replan staged period served no prefetched readings")
	}
}

// TestReplanRacesAdvance hammers the replan path from a second goroutine
// while the service clock runs: waypoint updates re-plan planners mid-batch
// and must never race evaluation (run under -race) or wedge the stream.
func TestReplanRacesAdvance(t *testing.T) {
	svc, err := Open(context.Background(), sleepyNetwork(), WithResultBuffer(256))
	if err != nil {
		t.Fatal(err)
	}
	defer svc.Close()
	var subs []*Subscription
	for i := 0; i < 8; i++ {
		sub, err := svc.Subscribe(context.Background(), prefetchSpec(JITStrategy()),
			LinearMotion(Pt(100+30*float64(i), 200), 2, 1))
		if err != nil {
			t.Fatal(err)
		}
		subs = append(subs, sub)
	}
	done := make(chan struct{})
	go func() {
		defer close(done)
		for i := 0; i < 200; i++ {
			sub := subs[i%len(subs)]
			if err := sub.UpdateWaypoint(Pt(150+float64(i), 210)); err != nil {
				return // subscription closed under us: fine
			}
		}
	}()
	for i := 0; i < 60; i++ {
		if err := svc.Advance(300 * time.Millisecond); err != nil {
			t.Fatal(err)
		}
	}
	<-done
	for _, sub := range subs {
		if st, ok := sub.PrefetchStats(); !ok || st.Replans == 0 {
			t.Fatalf("planner saw no replans (%+v, %v)", st, ok)
		}
		if sub.Stats().Delivered == 0 {
			t.Fatal("stream wedged under concurrent replans")
		}
	}
}

// TestPrefetchInvariantAcrossEngineSizing pins the concurrency invariant on
// the new path: shard and worker counts never change prefetched results.
func TestPrefetchInvariantAcrossEngineSizing(t *testing.T) {
	run := func(shards, workers int) []QueryResult {
		nc := sleepyNetwork()
		nc.Service = ServiceConfig{Shards: shards, Workers: workers}
		svc, err := Open(context.Background(), nc, WithResultBuffer(64))
		if err != nil {
			t.Fatal(err)
		}
		defer svc.Close()
		var subs []*Subscription
		for i := 0; i < 4; i++ {
			strat := JITStrategy()
			if i%2 == 1 {
				strat = GreedyStrategy(0)
			}
			sub, err := svc.Subscribe(context.Background(), prefetchSpec(strat),
				LinearMotion(Pt(100+50*float64(i), 150), 2, -1))
			if err != nil {
				t.Fatal(err)
			}
			subs = append(subs, sub)
		}
		for i := 0; i < 40; i++ {
			if err := svc.Advance(300 * time.Millisecond); err != nil {
				t.Fatal(err)
			}
		}
		var all []QueryResult
		for _, sub := range subs {
			all = append(all, drain(sub)...)
		}
		return all
	}
	ref := run(0, 0)
	for _, cfg := range [][2]int{{1, 1}, {16, 3}} {
		got := run(cfg[0], cfg[1])
		if len(got) != len(ref) {
			t.Fatalf("shards=%d workers=%d: %d results vs %d", cfg[0], cfg[1], len(got), len(ref))
		}
		for i := range got {
			if got[i] != ref[i] {
				t.Fatalf("shards=%d workers=%d: result %d diverged:\n got %+v\nwant %+v", cfg[0], cfg[1], i, got[i], ref[i])
			}
		}
	}
}
