package main

import (
	"bytes"
	"crypto/tls"
	"crypto/x509"
	"encoding/json"
	"net/http"
	"syscall"
	"testing"
	"time"

	"mobiquery/internal/wire"
)

// startServe runs the binary's run() on a free port with a manual clock
// and returns the base URL plus the exit-error channel.
func startServe(t *testing.T, extra ...string) (string, chan error) {
	t.Helper()
	ready := make(chan string, 1)
	errc := make(chan error, 1)
	args := append([]string{"-addr", "127.0.0.1:0", "-tick", "0", "-nodes", "150", "-drain-grace", "100ms"}, extra...)
	go func() { errc <- run(args, ready) }()
	select {
	case base := <-ready:
		return base, errc
	case err := <-errc:
		t.Fatalf("serve exited before ready: %v", err)
	case <-time.After(10 * time.Second):
		t.Fatal("serve never became ready")
	}
	return "", nil
}

func TestServeEndToEndWithGracefulDrain(t *testing.T) {
	base, errc := startServe(t)

	resp, err := http.Get(base + "/healthz")
	if err != nil {
		t.Fatalf("healthz: %v", err)
	}
	var h wire.Health
	json.NewDecoder(resp.Body).Decode(&h)
	resp.Body.Close()
	if !h.OK {
		t.Fatalf("health %+v", h)
	}

	// One short subscription, driven by the manual clock.
	req := wire.SubscribeRequest{
		Spec: wire.Spec{
			RadiusM:    150,
			PeriodNS:   int64(time.Second),
			LifetimeNS: int64(2 * time.Second),
		},
		Motion: wire.Motion{Kind: "static", XM: 225, YM: 225},
	}
	body, _ := json.Marshal(req)
	sresp, err := http.Post(base+"/v1/subscribe", "application/json", bytes.NewReader(body))
	if err != nil {
		t.Fatalf("subscribe: %v", err)
	}
	defer sresp.Body.Close()
	dec := wire.NewDecoder(sresp.Body)
	var ack wire.Frame
	if err := dec.Decode(&ack); err != nil || ack.Type != wire.FrameAck {
		t.Fatalf("ack: %+v err=%v", ack, err)
	}
	adv, _ := json.Marshal(wire.AdvanceRequest{DNS: int64(3 * time.Second)})
	aresp, err := http.Post(base+"/v1/advance", "application/json", bytes.NewReader(adv))
	if err != nil {
		t.Fatalf("advance: %v", err)
	}
	aresp.Body.Close()
	var sawResults, sawEnd int
	for sawEnd == 0 {
		var f wire.Frame
		if err := dec.Decode(&f); err != nil {
			t.Fatalf("stream: %v after %d results", err, sawResults)
		}
		switch f.Type {
		case wire.FrameResult:
			sawResults++
		case wire.FrameEnd:
			sawEnd++
		}
	}
	if sawResults != 2 {
		t.Errorf("saw %d results, want 2", sawResults)
	}

	// SIGTERM drains and exits cleanly.
	if err := syscall.Kill(syscall.Getpid(), syscall.SIGTERM); err != nil {
		t.Fatalf("kill: %v", err)
	}
	select {
	case err := <-errc:
		if err != nil {
			t.Fatalf("serve exited with %v", err)
		}
	case <-time.After(10 * time.Second):
		t.Fatal("serve did not exit on SIGTERM")
	}
}

func TestServeRejectsBadConfig(t *testing.T) {
	if err := run([]string{"-nodes", "0"}, nil); err == nil {
		t.Error("zero nodes should be an error")
	}
	if err := run([]string{"-buffer", "0"}, nil); err == nil {
		t.Error("zero buffer should be an error")
	}
	if err := run([]string{"-not-a-flag"}, nil); err == nil {
		t.Error("unknown flag should be an error")
	}
}

// TestPprofListenerIsolated pins the -pprof contract: the profiler
// answers on its own listener and the public mux never serves it.
func TestPprofListenerIsolated(t *testing.T) {
	pprofAddr, psrv, err := startPprof("127.0.0.1:0")
	if err != nil {
		t.Fatalf("startPprof: %v", err)
	}
	defer psrv.Close()
	resp, err := http.Get("http://" + pprofAddr + "/debug/pprof/cmdline")
	if err != nil {
		t.Fatalf("pprof cmdline: %v", err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Errorf("pprof cmdline: status %d, want 200", resp.StatusCode)
	}

	base, errc := startServe(t, "-pprof", "127.0.0.1:0")
	resp, err = http.Get(base + "/debug/pprof/cmdline")
	if err != nil {
		t.Fatalf("public pprof probe: %v", err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusNotFound {
		t.Errorf("public mux serves pprof: status %d, want 404", resp.StatusCode)
	}
	// /metrics rides the public mux.
	resp, err = http.Get(base + "/metrics")
	if err != nil {
		t.Fatalf("metrics: %v", err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Errorf("metrics: status %d, want 200", resp.StatusCode)
	}
	syscall.Kill(syscall.Getpid(), syscall.SIGTERM)
	<-errc
}

func TestSelfSignedCertServesTLS(t *testing.T) {
	cert, err := selfSignedCert()
	if err != nil {
		t.Fatalf("selfSignedCert: %v", err)
	}
	leaf, err := x509.ParseCertificate(cert.Certificate[0])
	if err != nil {
		t.Fatalf("parse: %v", err)
	}
	if err := leaf.VerifyHostname("127.0.0.1"); err != nil {
		t.Errorf("cert does not cover loopback: %v", err)
	}

	base, errc := startServe(t, "-tls-self")
	hc := &http.Client{Transport: &http.Transport{
		TLSClientConfig:   &tls.Config{InsecureSkipVerify: true},
		ForceAttemptHTTP2: true,
	}}
	resp, err := hc.Get(base + "/healthz")
	if err != nil {
		t.Fatalf("healthz over TLS: %v", err)
	}
	defer resp.Body.Close()
	if resp.ProtoMajor != 2 {
		t.Errorf("served %s, want HTTP/2 over TLS", resp.Proto)
	}
	syscall.Kill(syscall.Getpid(), syscall.SIGTERM)
	<-errc
}
